// Reproduces Table 2, Transaction Processing row:
//   MVCC + logging        -> high efficiency, low scalability
//   2PC + Raft + logging  -> high scalability, low efficiency
//
// Efficiency: single-client commit latency and single-node throughput of a
// key-value update mix. Scalability: throughput as the system grows — the
// MVCC engine is one node (flat), the distributed engine adds shards
// (virtual-time throughput grows).

#include "bench_util.h"

namespace htap {
namespace bench {
namespace {

Schema KvSchema() {
  return Schema({{"id", Type::kInt64}, {"v", Type::kInt64}});
}

/// Local MVCC engine: ops/sec and mean commit latency.
std::pair<double, double> RunMvcc(int txns) {
  auto db = MakeDb(ArchitectureKind::kRowPlusInMemoryColumn, 1, false);
  db->CreateTable("kv", KvSchema());
  Random rng(1);
  Stopwatch sw;
  for (int i = 0; i < txns; ++i) {
    auto txn = db->Begin();
    txn->Insert("kv", Row{Value(static_cast<int64_t>(i)),
                          Value(static_cast<int64_t>(rng.Uniform(100)))});
    txn->Commit();
  }
  const double secs = sw.ElapsedSeconds();
  return {txns / secs, secs / txns * 1e6};
}

/// Distributed engine with N shards: virtual-time ops/sec and mean commit
/// latency (8 concurrent logical clients).
std::pair<double, double> RunDist(int shards, int txns, bool multi_shard) {
  sim::SimEnv env(9);
  sim::DistributedDb::Options opts;
  opts.num_shards = shards;
  opts.learner_merge_interval = 0;
  sim::DistributedDb db(&env, opts);
  db.RegisterTable(1, KvSchema());
  db.Bootstrap();
  const Micros start = env.Now();
  int done = 0;
  Micros latency_sum = 0;
  std::function<void(int)> issue = [&](int i) {
    std::vector<sim::WriteOp> writes;
    writes.push_back(sim::WriteOp{1, ChangeOp::kInsert, i * 7 + 1,
                                  Row{Value(int64_t{i}), Value(int64_t{i})}});
    if (multi_shard)
      writes.push_back(
          sim::WriteOp{1, ChangeOp::kInsert, i * 7 + 3,
                       Row{Value(int64_t{i + 1000000}), Value(int64_t{i})}});
    const Micros t0 = env.Now();
    db.ExecuteTxn(std::move(writes), [&, i, t0](bool) {
      latency_sum += env.Now() - t0;
      ++done;
      if (i + 8 < txns) issue(i + 8);
    });
  };
  for (int c = 0; c < 8 && c < txns; ++c) issue(c);
  while (done < txns) env.RunUntil(env.Now() + 1000);
  const double secs = static_cast<double>(env.Now() - start) / 1e6;
  return {txns / secs, static_cast<double>(latency_sum) / txns};
}

}  // namespace
}  // namespace bench
}  // namespace htap

int main() {
  using namespace htap;
  using namespace htap::bench;
  std::printf("Table 2 / TP row — transaction-processing techniques\n\n");
  std::printf("%-28s | %12s | %14s | notes\n", "Technique", "txn/sec",
              "commit latency");
  PrintRule(100);

  const auto [mvcc_tps, mvcc_lat] = RunMvcc(20000);
  std::printf("%-28s | %12.0f | %11.1f us | single node, wall clock\n",
              "MVCC+Logging", mvcc_tps, mvcc_lat);

  double tps1 = 0;
  for (int shards : {1, 2, 4, 8}) {
    const auto [tps, lat] = RunDist(shards, 400, /*multi_shard=*/false);
    if (shards == 1) tps1 = tps;
    std::printf("%-22s %2dsh | %12.0f | %11.1f us | virtual time, %0.1fx vs 1 shard\n",
                "2PC+Raft+Logging", shards, tps, lat, tps / tps1);
  }
  const auto [xtps, xlat] = RunDist(4, 300, /*multi_shard=*/true);
  std::printf("%-22s 2PC  | %12.0f | %11.1f us | cross-shard (4 shards)\n",
              "2PC+Raft+Logging", xtps, xlat);

  PrintRule(100);
  std::printf(
      "\nPaper's claim: MVCC+logging = high efficiency / low scalability;\n"
      "2PC+Raft+logging = high scalability / low efficiency. Expected shape:\n"
      "MVCC latency << Raft quorum latency; distributed throughput grows\n"
      "with shards while a single node cannot scale out.\n");
  return 0;
}
