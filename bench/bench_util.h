// Shared helpers for the table/figure harnesses.

#ifndef HTAP_BENCH_BENCH_UTIL_H_
#define HTAP_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "benchlib/chbench.h"
#include "benchlib/driver.h"
#include "core/database.h"

namespace htap {
namespace bench {

/// Fresh database of the given architecture with a scratch data dir.
inline std::unique_ptr<Database> MakeDb(ArchitectureKind arch,
                                        int dist_shards = 3,
                                        bool background_sync = true,
                                        size_t parallel_scan_threads = 0) {
  static int counter = 0;
  const std::string dir =
      "/tmp/htap_bench_" + std::to_string(getpid()) + "_" +
      std::to_string(counter++);
  std::system(("mkdir -p " + dir).c_str());
  DatabaseOptions opts;
  opts.architecture = arch;
  opts.data_dir = dir;
  opts.background_sync = background_sync;
  opts.sync_interval_micros = 10000;
  opts.dist.num_shards = dist_shards;
  opts.dist.learner_merge_interval = 20000;
  opts.parallel_scan_threads = parallel_scan_threads;
  // Architecture (c) is the disk-based RDBMS: commits flush the WAL.
  if (arch == ArchitectureKind::kDiskRowPlusDistributedColumn)
    opts.sync_on_commit = true;
  auto res = Database::Open(opts);
  if (!res.ok()) {
    std::fprintf(stderr, "open failed: %s\n", res.status().ToString().c_str());
    std::abort();
  }
  return std::move(*res);
}

inline const char* ShortArchName(ArchitectureKind k) {
  switch (k) {
    case ArchitectureKind::kRowPlusInMemoryColumn: return "(a) Row+IMC";
    case ArchitectureKind::kDistributedRowPlusColumnReplica:
      return "(b) DistRow+ColReplica";
    case ArchitectureKind::kDiskRowPlusDistributedColumn:
      return "(c) DiskRow+IMCS";
    case ArchitectureKind::kColumnPlusDeltaRow: return "(d) Col+DeltaRow";
  }
  return "?";
}

inline const ArchitectureKind kAllArchitectures[] = {
    ArchitectureKind::kRowPlusInMemoryColumn,
    ArchitectureKind::kDistributedRowPlusColumnReplica,
    ArchitectureKind::kDiskRowPlusDistributedColumn,
    ArchitectureKind::kColumnPlusDeltaRow,
};

/// Maps a measured value onto the paper's High/Medium/Low vocabulary given
/// two thresholds (descending).
inline const char* Band(double v, double high, double medium) {
  return v >= high ? "High" : (v >= medium ? "Medium" : "Low");
}
/// Same but smaller-is-better (e.g. freshness lag).
inline const char* BandInv(double v, double high, double medium) {
  return v <= high ? "High" : (v <= medium ? "Medium" : "Low");
}

inline void PrintRule(int width = 118) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace bench
}  // namespace htap

#endif  // HTAP_BENCH_BENCH_UTIL_H_
