// Reproduces Figure 1 of the paper: the four storage architectures' data
// flows. For each preset this harness executes one transaction and one
// analytical query and prints the observed path of the data — from the
// write-side store, through the delta/log staging, into the column store
// the query reads — together with the live component statistics that prove
// each hop happened.

#include "bench_util.h"

namespace htap {
namespace bench {
namespace {

void Banner(ArchitectureKind arch, const char* caption) {
  PrintRule(96);
  std::printf("%s — %s\n", ShortArchName(arch), caption);
  PrintRule(96);
}

Schema KvSchema() {
  return Schema({{"id", Type::kInt64}, {"v", Type::kInt64}});
}

void RunOne(ArchitectureKind arch, const char* caption) {
  Banner(arch, caption);
  auto db = MakeDb(arch, /*dist_shards=*/2, /*background_sync=*/false);
  db->CreateTable("kv", KvSchema());

  // One committed transaction.
  auto txn = db->Begin();
  for (int i = 0; i < 8; ++i)
    txn->Insert("kv", Row{Value(static_cast<int64_t>(i)), Value(int64_t{100})});
  txn->Commit();
  std::printf("  [1] txn committed: 8 inserts (commits=%llu)\n",
              static_cast<unsigned long long>(db->Stats().commits));

  FreshnessInfo f = db->Freshness("kv");
  std::printf(
      "  [2] staged in delta/log: pending=%zu, visible csn=%llu / committed "
      "csn=%llu\n",
      f.pending_delta_entries, static_cast<unsigned long long>(f.visible_csn),
      static_cast<unsigned long long>(f.committed_csn));

  // Fresh query BEFORE any merge: the delta union supplies the rows.
  QueryPlan count;
  count.table = "kv";
  count.aggs = {AggSpec::Count("n")};
  count.path = PathHint::kForceColumn;  // showcase the delta+column union
  QueryExecInfo xi;
  if (arch == ArchitectureKind::kDistributedRowPlusColumnReplica)
    db->ForceSync("kv");  // replication must reach the learner first
  auto res = db->Query(count, &xi);
  std::printf("  [3] fresh query path: %s -> count=%lld (delta rows unioned: "
              "%zu)\n",
              xi.access_path.c_str(),
              static_cast<long long>(res->rows[0].Get(0).AsInt64()),
              xi.scan.delta_rows_emitted);

  // Explicit synchronization: delta -> column store.
  db->ForceSync("kv");
  f = db->Freshness("kv");
  std::printf(
      "  [4] after merge: pending=%zu, visible csn=%llu (lag=%llu)\n",
      f.pending_delta_entries, static_cast<unsigned long long>(f.visible_csn),
      static_cast<unsigned long long>(f.csn_lag));

  QueryExecInfo xi2;
  res = db->Query(count, &xi2);
  std::printf(
      "  [5] post-merge query path: %s -> count=%lld (main rows: %zu, "
      "groups skipped: %zu)\n\n",
      xi2.access_path.c_str(),
      static_cast<long long>(res->rows[0].Get(0).AsInt64()),
      xi2.scan.main_rows_emitted, xi2.scan.groups_skipped);
}

}  // namespace
}  // namespace bench
}  // namespace htap

int main() {
  using namespace htap;
  using namespace htap::bench;
  std::printf("Figure 1 — storage architectures of HTAP databases: observed "
              "data flows\n\n");
  RunOne(ArchitectureKind::kRowPlusInMemoryColumn,
         "primary row store -> in-memory delta -> in-memory column store");
  RunOne(ArchitectureKind::kDistributedRowPlusColumnReplica,
         "Raft log -> row replicas + learner log-delta -> columnar replica");
  RunOne(ArchitectureKind::kDiskRowPlusDistributedColumn,
         "disk row heap (buffer pool) -> staged delta -> loaded-column IMCS");
  RunOne(ArchitectureKind::kColumnPlusDeltaRow,
         "delta row store (L1 -> L2) -> Main column store");
  return 0;
}
