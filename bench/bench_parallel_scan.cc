// Morsel-driven parallel scan & aggregation scaling curve.
//
// Measures ScanHtap (column scan + delta union, double-typed filter) and
// HashAggregate (partial tables + merge) throughput at 1/2/4/8 workers over
// the engine-style AP pool, verifying that every parallel result is
// identical to the serial one. Emits one JSON line per point so the curve
// can be plotted / regression-tracked:
//
//   {"bench":"parallel_scan","threads":4,"scan_rows_per_sec":...,
//    "scan_speedup":...,"agg_rows_per_sec":...,"agg_speedup":...}
//
// Speedup expectations depend on the host: with >= 4 cores the 4-thread
// point should clear 2x; on a single-core host the curve is flat and only
// the identity checks are meaningful.

#include <algorithm>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "delta/delta.h"
#include "exec/executor.h"

namespace htap {
namespace bench {
namespace {

constexpr size_t kRows = 256 * 1024;
constexpr size_t kGroupRows = 4096;
constexpr int kReps = 5;

Schema BenchSchema() {
  return Schema({{"id", Type::kInt64}, {"v", Type::kInt64},
                 {"cat", Type::kString}, {"price", Type::kDouble}});
}

struct Point {
  double scan_sec = 0;
  double agg_sec = 0;
};

Point RunPoint(const ColumnTable& table, const InMemoryDeltaStore& delta,
               size_t threads, const std::vector<Row>& serial_scan,
               const std::vector<Row>& serial_agg) {
  std::unique_ptr<ThreadPool> pool;
  ExecContext exec;
  if (threads > 1) {
    pool = std::make_unique<ThreadPool>(threads, "bench-ap");
    exec = ExecContext{pool.get(), threads};
  }
  const Predicate pred = Predicate::Ge(3, Value(10.0));
  const std::vector<AggSpec> aggs = {AggSpec::Count("n"), AggSpec::Sum(3, "s"),
                                     AggSpec::Max(1, "mx")};

  Point p;
  std::vector<Row> rows;
  for (int rep = -1; rep < kReps; ++rep) {  // rep -1 = warmup
    Stopwatch sw;
    rows = ScanHtap(table, &delta, kMaxCSN - 1, pred, {}, exec, nullptr);
    if (rep >= 0) p.scan_sec += sw.ElapsedSeconds();
  }
  if (rows != serial_scan) {
    std::fprintf(stderr, "FATAL: parallel scan result differs at %zu threads\n",
                 threads);
    std::abort();
  }
  std::vector<Row> agg;
  for (int rep = -1; rep < kReps; ++rep) {
    Stopwatch sw;
    agg = HashAggregate(rows, {2}, aggs, exec);
    if (rep >= 0) p.agg_sec += sw.ElapsedSeconds();
  }
  auto less = [](const Row& a, const Row& b) {
    return a.ToString() < b.ToString();
  };
  std::sort(agg.begin(), agg.end(), less);
  std::vector<Row> want = serial_agg;
  std::sort(want.begin(), want.end(), less);
  if (agg != want) {
    std::fprintf(stderr, "FATAL: parallel agg result differs at %zu threads\n",
                 threads);
    std::abort();
  }
  p.scan_sec /= kReps;
  p.agg_sec /= kReps;
  return p;
}

}  // namespace
}  // namespace bench
}  // namespace htap

int main() {
  using namespace htap;
  using namespace htap::bench;

  ColumnTable table(BenchSchema());
  {
    std::vector<Row> batch;
    batch.reserve(kGroupRows);
    for (size_t i = 0; i < kRows; ++i) {
      const auto id = static_cast<Key>(i);
      batch.push_back(Row{Value(id), Value(static_cast<int64_t>(i % 101)),
                          Value(i % 2 ? "odd" : "even"),
                          Value(static_cast<double>(i % 1000) * 0.5)});
      if (batch.size() == kGroupRows) {
        table.AppendBatch(batch, 1);
        batch.clear();
      }
    }
  }
  InMemoryDeltaStore delta;
  for (Key id = 0; id < 2000; ++id) {
    DeltaEntry e;
    e.op = ChangeOp::kUpdate;
    e.key = id * 100;
    e.row = Row{Value(id * 100), Value(int64_t{1}), Value("patched"),
                Value(999.0)};
    e.csn = 2;
    delta.Append(e);
  }

  std::printf("Morsel-driven parallel scan & aggregation "
              "(%zu rows, %zu-row groups, %d reps/point)\n",
              kRows, kGroupRows, kReps);
  std::printf("host hardware_concurrency = %u\n\n",
              std::thread::hardware_concurrency());

  const auto serial_scan = ScanHtap(table, &delta, kMaxCSN - 1,
                                    Predicate::Ge(3, Value(10.0)), {});
  const auto serial_agg = HashAggregate(
      serial_scan, {2},
      {AggSpec::Count("n"), AggSpec::Sum(3, "s"), AggSpec::Max(1, "mx")});
  const Point serial = RunPoint(table, delta, 1, serial_scan, serial_agg);

  std::printf("%8s | %12s | %12s | %8s | %12s | %8s\n", "threads",
              "scan ms", "scan Mrows/s", "scan x", "agg Mrows/s", "agg x");
  PrintRule(78);
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    const Point p = threads == 1
                        ? serial
                        : RunPoint(table, delta, threads, serial_scan,
                                   serial_agg);
    const double scan_rps = static_cast<double>(kRows) / p.scan_sec;
    const double agg_rps =
        static_cast<double>(serial_scan.size()) / p.agg_sec;
    std::printf("%8zu | %12.2f | %12.2f | %8.2f | %12.2f | %8.2f\n", threads,
                p.scan_sec * 1e3, scan_rps / 1e6, serial.scan_sec / p.scan_sec,
                agg_rps / 1e6, serial.agg_sec / p.agg_sec);
    std::printf("{\"bench\":\"parallel_scan\",\"threads\":%zu,"
                "\"scan_rows_per_sec\":%.0f,\"scan_speedup\":%.3f,"
                "\"agg_rows_per_sec\":%.0f,\"agg_speedup\":%.3f}\n",
                threads, scan_rps, serial.scan_sec / p.scan_sec, agg_rps,
                serial.agg_sec / p.agg_sec);
  }
  PrintRule(78);
  std::printf("\nAll parallel results verified byte-identical to serial "
              "(scan) / set-identical (aggregate).\n");
  return 0;
}
