// Reproduces the survey's central claim (§1, §2.3(2), §2.4): the trade-off
// between workload isolation and data freshness — "what percentage of
// performance degradation the systems should pay in order to maintain the
// data freshness".
//
// Sweep: on architecture (a), vary the merge cadence from "never during
// the run" (maximum isolation: OLAP reads only the merged store, OLTP is
// undisturbed by merges) to "continuous" (maximum freshness). At each
// point, measure OLTP throughput and the staleness OLAP observes. The
// second sweep flips the AP scan mode to delta-union scans, showing the
// same trade-off paid in interference instead of staleness.

#include "bench_util.h"

namespace htap {
namespace bench {
namespace {

struct Point {
  double sync_interval_ms;
  double tp_tpm;
  double lag_ms;
};

Point RunPoint(Micros sync_interval, bool fresh_scans) {
  static int counter = 1000;
  const std::string dir =
      "/tmp/htap_curve_" + std::to_string(getpid()) + "_" +
      std::to_string(counter++);
  std::system(("mkdir -p " + dir).c_str());
  DatabaseOptions opts;
  opts.data_dir = dir;
  opts.background_sync = sync_interval > 0;
  opts.sync_interval_micros = sync_interval;
  opts.sync_entry_threshold = 0;  // cadence only
  auto db = std::move(*Database::Open(opts));

  ChConfig cfg;
  cfg.warehouses = 2;
  cfg.districts_per_warehouse = 4;
  cfg.customers_per_district = 40;
  cfg.items = 200;
  cfg.initial_orders_per_district = 15;
  CreateChTables(db.get());
  LoadChData(db.get(), cfg);
  db->ForceSyncAll();

  DriverConfig dc;
  dc.oltp_clients = 2;
  dc.olap_clients = 1;
  dc.olap_require_fresh = fresh_scans;
  dc.olap_think_micros = 15000;  // fixed ~66 q/s arrival rate
  dc.duration_micros = 900'000;
  const DriverReport rep = RunMixedWorkload(db.get(), cfg, dc);

  Point p;
  p.sync_interval_ms =
      sync_interval > 0 ? static_cast<double>(sync_interval) / 1000.0 : -1;
  p.tp_tpm = rep.tpm_total;
  // Staleness the OLAP class actually observed (merged-store lag when the
  // scans are stale-mode; ~0 when they union the delta).
  p.lag_ms = fresh_scans
                 ? rep.avg_freshness_lag_micros / 1000.0
                 : static_cast<double>(
                       db->Freshness("orderline").time_lag_micros) /
                       1000.0;
  return p;
}

}  // namespace
}  // namespace bench
}  // namespace htap

int main() {
  using namespace htap;
  using namespace htap::bench;

  std::printf(
      "Isolation-vs-freshness trade-off curve (architecture (a))\n"
      "OLAP reads the merged column store only; merge cadence varies.\n\n");
  std::printf("%-18s | %12s | %14s | %s\n", "merge cadence", "TP txn/min",
              "staleness ms", "TP retained vs no-merge");
  PrintRule(84);

  const Micros cadences[] = {0, 200000, 50000, 10000, 2000};
  double baseline = 0;
  for (Micros cadence : cadences) {
    const Point p = RunPoint(cadence, /*fresh_scans=*/false);
    if (cadence == 0) baseline = p.tp_tpm;
    char label[32];
    if (cadence == 0)
      snprintf(label, sizeof(label), "never");
    else
      snprintf(label, sizeof(label), "every %.0f ms", p.sync_interval_ms);
    std::printf("%-18s | %12.0f | %14.2f | %6.1f%%\n", label, p.tp_tpm,
                p.lag_ms, baseline > 0 ? 100.0 * p.tp_tpm / baseline : 100.0);
  }
  PrintRule(84);

  std::printf(
      "\nSame workload, but OLAP unions the in-memory delta (always fresh; "
      "the price moves into interference):\n");
  const Point fresh = RunPoint(50000, /*fresh_scans=*/true);
  std::printf("%-18s | %12.0f | %14.2f | %6.1f%%\n", "delta-union scans",
              fresh.tp_tpm, fresh.lag_ms,
              baseline > 0 ? 100.0 * fresh.tp_tpm / baseline : 100.0);
  std::printf(
      "\nExpected shape: staleness falls monotonically with merge cadence "
      "(the freshness axis), and demanding zero staleness via delta-union "
      "scans shifts the cost into TP interference (the isolation axis). On "
      "multi-core hosts the merge cadence itself also taxes TP; on a "
      "single core that term is within run-to-run noise (see "
      "EXPERIMENTS.md).\n");
  return 0;
}
