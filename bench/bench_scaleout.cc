// Table 1 as curves: scale-out throughput and freshness of the survey's
// architecture (b) on the sim cluster (DESIGN.md §14, EXPERIMENTS.md).
//
// Two sweeps, all in virtual time (deterministic, host-independent — the
// JSON below is byte-identical across runs and machines for a given seed):
//
//  * Scaling curve: the sharded TPC-C-style workload at 1/3/5/9 shards —
//    tpmC, commit latency, learner freshness lag vs node count.
//  * Fault curve: 3 shards under increasing message loss, plus a leader
//    crash and a leader partition mid-run — throughput degrades, nothing
//    is lost: after heal + drain the cluster must converge (learner rows
//    byte-equal to leader rows, columnar scan included).
//
// `bench_scaleout smoke` runs a reduced matrix for CI; the gate re-runs it
// and byte-compares the output (determinism) and feeds the JSON to
// scripts/check_bench_regression.py (tight thresholds — no hardware noise).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "sim/workload.h"

namespace htap {
namespace bench {
namespace {

using sim::DistributedDb;
using sim::SimEnv;
using sim::TpccTables;
using sim::TpccWorkload;
using sim::WorkloadOptions;

struct FaultPlan {
  double drop = 0.0;      // message-loss probability during the run
  bool crash = false;     // crash shard 0's leader at 25%, restart at 70%
  bool partition = false; // isolate shard's leader at 40%, heal at 70%
};

struct RunResult {
  sim::WorkloadStats w;
  sim::ClusterStats c;
  bool converged = false;
  bool state_equal = false;  // learner rows == leader rows on all tables
};

RunResult RunConfig(int shards, int clients, Micros duration, uint64_t seed,
                    const FaultPlan& faults) {
  SimEnv env(seed);
  DistributedDb::Options opts;
  opts.num_shards = shards;
  opts.learner_merge_interval = 50000;
  DistributedDb db(&env, opts);

  WorkloadOptions wopts;
  wopts.warehouses = std::max(4, shards * 2);
  wopts.clients = clients;
  wopts.seed = seed * 1000003 + static_cast<uint64_t>(shards);
  TpccWorkload workload(&db, wopts);
  workload.RegisterTables();
  db.Bootstrap();
  workload.Load();

  if (faults.drop > 0) db.SetMessageLoss(faults.drop);
  if (faults.crash)
    env.Schedule(duration / 4, [&db] { db.CrashShardLeader(0); });
  if (faults.partition)
    env.Schedule(2 * duration / 5, [&db, shards] {
      const int shard = shards > 1 ? 1 : 0;
      sim::RaftNode* leader = db.shard_group(shard)->leader();
      if (leader != nullptr) db.IsolateNode(shard, leader->id());
    });
  if (faults.crash || faults.partition)
    env.Schedule(7 * duration / 10, [&db] {
      db.HealNetwork();
      db.RestartDeadNodes();
    });

  workload.Run(duration);

  // Heal everything and drain to convergence: committed work must survive.
  db.SetMessageLoss(0);
  db.HealNetwork();
  db.RestartDeadNodes();
  RunResult r;
  const Micros conv_deadline = env.Now() + 60'000'000;
  while (!db.Converged() && env.Now() < conv_deadline)
    env.RunUntil(env.Now() + 10'000);
  r.converged = db.Converged();
  db.SyncLearners();

  r.state_equal = true;
  const uint32_t tables[] = {TpccTables::kWarehouse,  TpccTables::kDistrict,
                             TpccTables::kCustomer,   TpccTables::kOrder,
                             TpccTables::kOrderLine,  TpccTables::kStock};
  for (uint32_t t : tables) {
    const auto leader_rows = db.LeaderRows(t);
    if (db.LearnerRows(t) != leader_rows) r.state_equal = false;
    // The columnar path must expose the same row set after the merge.
    if (db.AnalyticalScan(t, Predicate::True(), {}, /*include_delta=*/false)
            .size() != leader_rows.size())
      r.state_equal = false;
  }

  r.w = workload.stats();
  r.c = db.GetClusterStats();
  return r;
}

void EmitScalingRecord(int shards, int clients, Micros duration,
                       const RunResult& r) {
  const int nodes = shards * 4 + 2;  // 3 voters + learner per shard, gw, tso
  std::printf(
      "{\"bench\":\"scaleout\",\"shards\":%d,\"nodes\":%d,\"clients\":%d,"
      "\"virtual_secs\":%.1f,\"tpmc\":%.1f,\"committed\":%llu,"
      "\"aborted\":%llu,\"cross_shard\":%llu,\"repl_lag_ms\":%.3f,"
      "\"merge_lag_ms\":%.3f,\"txn_p50_ms\":%.3f,\"txn_p99_ms\":%.3f}\n",
      shards, nodes, clients, static_cast<double>(duration) / 1e6, r.w.TpmC(),
      static_cast<unsigned long long>(r.w.committed()),
      static_cast<unsigned long long>(r.w.aborted()),
      static_cast<unsigned long long>(r.w.cross_shard_issued),
      static_cast<double>(r.w.repl_lag_max) / 1000.0,
      static_cast<double>(r.w.merge_lag_max) / 1000.0,
      static_cast<double>(r.c.commit_latency.Quantile(0.5)) / 1000.0,
      static_cast<double>(r.c.commit_latency.Quantile(0.99)) / 1000.0);
}

void EmitFaultRecord(int shards, int clients, Micros duration,
                     const FaultPlan& f, const RunResult& r) {
  std::printf(
      "{\"bench\":\"scaleout_faults\",\"shards\":%d,\"clients\":%d,"
      "\"drop_pct\":%.1f,\"crash\":%s,\"partition\":%s,\"converged\":%s,"
      "\"state_equal\":%s,\"tpmc\":%.1f,\"committed\":%llu,\"aborted\":%llu,"
      "\"client_retries\":%llu,\"rpc_retries\":%llu,\"resolver_retries\":%llu,"
      "\"elections\":%llu,\"msgs_dropped\":%llu,\"txn_p99_ms\":%.3f}\n",
      shards, clients, f.drop * 100.0, f.crash ? "true" : "false",
      f.partition ? "true" : "false", r.converged ? "true" : "false",
      r.state_equal ? "true" : "false", r.w.TpmC(),
      static_cast<unsigned long long>(r.w.committed()),
      static_cast<unsigned long long>(r.w.aborted()),
      static_cast<unsigned long long>(r.w.client_retries),
      static_cast<unsigned long long>(r.c.rpc_retries),
      static_cast<unsigned long long>(r.c.resolver_retries),
      static_cast<unsigned long long>([&] {
        unsigned long long e = 0;
        for (const auto& s : r.c.shards) e += s.elections_started;
        return e;
      }()),
      static_cast<unsigned long long>(r.c.messages_dropped),
      static_cast<double>(r.c.commit_latency.Quantile(0.99)) / 1000.0);
  (void)duration;
}

int RunAll(bool smoke) {
  bool ok = true;

  // ---- Scaling curve: tpmC and freshness vs shard count. Offered load
  // scales with the cluster (8 closed-loop terminals per shard), keeping
  // every config below leader-CPU saturation so the curve measures
  // capacity, not queueing collapse. ----
  const std::vector<int> shard_counts =
      smoke ? std::vector<int>{1, 3} : std::vector<int>{1, 3, 5, 9};
  const Micros duration = smoke ? 500'000 : 2'000'000;
  std::printf("# scaleout: tpmC / freshness vs shards (virtual time)\n");
  for (int shards : shard_counts) {
    const int clients = 8 * shards;
    const RunResult r = RunConfig(shards, clients, duration, 11, FaultPlan{});
    EmitScalingRecord(shards, clients, duration, r);
    if (!r.converged || !r.state_equal || r.w.committed() == 0) {
      std::fprintf(stderr,
                   "FAIL scaleout shards=%d: converged=%d state_equal=%d "
                   "committed=%llu\n",
                   shards, r.converged, r.state_equal,
                   static_cast<unsigned long long>(r.w.committed()));
      ok = false;
    }
  }

  // ---- Fault curve: throughput under loss/crash/partition; no lost
  // committed work (converged + state_equal must hold after heal). ----
  const std::vector<FaultPlan> plans =
      smoke ? std::vector<FaultPlan>{{0.01, true, true}}
            : std::vector<FaultPlan>{{0.0, true, true},
                                     {0.005, true, true},
                                     {0.02, true, true}};
  const int fault_shards = 3;
  const int fault_clients = smoke ? 16 : 24;
  std::printf("# scaleout_faults: loss/crash/partition, then converge\n");
  for (const FaultPlan& f : plans) {
    const RunResult r = RunConfig(fault_shards, fault_clients, duration, 11, f);
    EmitFaultRecord(fault_shards, fault_clients, duration, f, r);
    if (!r.converged || !r.state_equal || r.w.committed() == 0) {
      std::fprintf(stderr,
                   "FAIL scaleout_faults drop=%.3f: converged=%d "
                   "state_equal=%d committed=%llu\n",
                   f.drop, r.converged, r.state_equal,
                   static_cast<unsigned long long>(r.w.committed()));
      ok = false;
    }
  }

  if (!ok) {
    std::fprintf(stderr,
                 "FAIL: a run lost committed work or failed to converge\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace htap

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "smoke") == 0;
  return htap::bench::RunAll(smoke);
}
