// Reproduces §2.3's benchmark practice: a full CH-benCHmark run with the
// standard execution rule (OLTP and OLAP classes run concurrently for a
// fixed window) and the combined metrics the section discusses — the
// tpmC-like NewOrder rate and the QphH-like analytical rate — plus a
// per-query latency table, on the default architecture (a).

#include "bench_util.h"

int main() {
  using namespace htap;
  using namespace htap::bench;

  std::printf("CH-benCHmark-style end-to-end run (architecture (a))\n\n");

  ChConfig cfg;
  cfg.warehouses = 2;
  cfg.districts_per_warehouse = 6;
  cfg.customers_per_district = 60;
  cfg.items = 400;
  cfg.initial_orders_per_district = 25;

  auto db = MakeDb(ArchitectureKind::kRowPlusInMemoryColumn);
  CreateChTables(db.get());
  Stopwatch load_sw;
  LoadChData(db.get(), cfg);
  std::printf("loaded %d warehouses in %.2fs\n\n", cfg.warehouses,
              load_sw.ElapsedSeconds());

  DriverConfig dc;
  dc.oltp_clients = 2;
  dc.olap_clients = 1;
  dc.duration_micros = 2'000'000;
  const DriverReport report = RunMixedWorkload(db.get(), cfg, dc);

  std::printf("Mixed run: %s\n\n", report.ToString().c_str());
  std::printf("Headline metrics (the two the benchmarks combine):\n");
  std::printf("  tpmC-like (NewOrder/min): %10.0f\n", report.tpmc);
  std::printf("  QphH-like (queries/hour): %10.0f\n\n", report.qph);

  // Per-query latency table over the final state. For join queries the
  // "join ms" column reports the time spent inside the (radix-partitioned)
  // hash join operator itself, and the batch-pipeline counters (DESIGN.md
  // §13) show whether the query ran batch-native: input batches consumed,
  // rows whose payloads were late-materialized, and columnar spill pages
  // written/read (0 unless a spill budget forced the grace path). Counters
  // come from the last run; latencies are medians of 5.
  db->ForceSyncAll();
  std::printf("%-6s | %10s | %9s | %8s | %7s | %9s | %8s | %s\n", "query",
              "median ms", "join ms", "rows", "batches", "late rows",
              "spill pg", "description");
  PrintRule(118);
  for (const ChQuery& q : ChQueries()) {
    std::vector<double> ms, join_ms;
    size_t rows = 0;
    QueryExecInfo last;
    for (int i = 0; i < 5; ++i) {
      Stopwatch sw;
      QueryExecInfo info;
      auto res = db->Query(q.plan, &info);
      ms.push_back(sw.ElapsedSeconds() * 1000);
      join_ms.push_back(info.join.seconds * 1000);
      if (res.ok()) rows = res->rows.size();
      last = info;
    }
    std::sort(ms.begin(), ms.end());
    std::sort(join_ms.begin(), join_ms.end());
    if (q.plan.has_join)
      std::printf("%-6s | %10.2f | %9.2f | %8zu | %7zu | %9zu | %8zu | %s\n",
                  q.name.c_str(), ms[ms.size() / 2],
                  join_ms[join_ms.size() / 2], rows, last.join.join_batches,
                  last.join.rows_late_materialized,
                  last.join.spill_pages_written + last.join.spill_pages_read,
                  q.description.c_str());
    else
      std::printf("%-6s | %10.2f | %9s | %8zu | %7s | %9s | %8s | %s\n",
                  q.name.c_str(), ms[ms.size() / 2], "-", rows, "-", "-", "-",
                  q.description.c_str());
  }
  PrintRule(118);

  // Multi-join SQL variants: the queries whose CH originals touch three or
  // more tables run their full chain through the SQL front end. The exec
  // info shows how the plan-time statistics path ordered the joins and how
  // far its estimates were from the actual step cardinalities.
  std::printf("\nMulti-join SQL chains (plan-time statistics ordering):\n\n");
  for (const ChQuery& q : ChQueries()) {
    if (q.sql.empty()) continue;
    QueryExecInfo info;
    Stopwatch sw;
    auto res = db->ExecuteSql(q.sql, &info);
    const double total_ms = sw.ElapsedSeconds() * 1000;
    if (!res.ok()) {
      std::printf("%-6s FAILED: %s\n", q.name.c_str(),
                  res.status().ToString().c_str());
      continue;
    }
    std::printf("%-6s %zu joins, %.2f ms, %zu result rows — %s\n",
                q.name.c_str(), info.join_steps.size(), total_ms,
                res->rows.size(),
                info.join_used_catalog_stats
                    ? "catalog stats (plan-time order)"
                    : "sampling fallback (exec-time order)");
    if (info.join_used_catalog_stats)
      std::printf("       stats age: %llu commits\n",
                  static_cast<unsigned long long>(info.join_stats_age_csns));
    if (info.vectorized)
      std::printf("       batch pipeline: %zu batches, %zu rows "
                  "late-materialized, %zu spill pages\n",
                  info.join.join_batches, info.join.rows_late_materialized,
                  info.join.spill_pages_written + info.join.spill_pages_read);
    for (size_t s = 0; s < info.join_order.size(); ++s) {
      const double est =
          s < info.join_est_rows.size() ? info.join_est_rows[s] : 0;
      const size_t act =
          s < info.join_actual_rows.size() ? info.join_actual_rows[s] : 0;
      const double qerr =
          est > 0 && act > 0
              ? (est > static_cast<double>(act) ? est / act : act / est)
              : 0;
      std::printf("       step %zu: clause #%zu, est %.0f rows, actual %zu "
                  "(q-error %.2f)\n",
                  s, info.join_order[s], est, act, qerr);
    }
  }
  return 0;
}
