// Vectorized scan kernel: compressed-domain predicate evaluation
// (src/exec/segment_filter.h) vs decode-then-filter, per encoding.
//
// For each encoding the bench builds segments shaped to that encoding's
// sweet spot (low-cardinality strings for DICTIONARY, long runs for RLE,
// narrow-range ints for FOR, high-entropy doubles for PLAIN), then times a
// selective predicate two ways over the same segments:
//
//   direct   FilterSegmentSelection + GatherSegment — the predicate runs in
//            the encoding's own domain (code-space compares, run-granular
//            walks, zone-map-pruned unpack loops)
//   decode   Segment::Decode to a ColumnVector, then the scalar
//            Value::Compare loop — the row-at-a-time engine's path
//
// One JSON line per (encoding, mode) for the regression gate, plus a
// speedup line per encoding:
//
//   {"bench":"vectorized_scan","encoding":"RLE","mode":"direct",
//    "rows":...,"hits":...,"rows_per_sec":...}
//   {"bench":"vectorized_scan_speedup","encoding":"RLE",
//    "direct_vs_decode":...}
//
// `bench_vectorized_scan smoke` (the CI configuration) runs a 4x smaller
// dataset and additionally ENFORCES the PR's acceptance bar: the direct
// path must beat decode-then-filter by >= 3x on the dictionary and RLE
// shapes (re-measured once before failing, to ride out scheduler blips).
// Both paths are identity-checked against each other on every shape.

#include <cstring>

#include "bench_util.h"
#include "exec/segment_filter.h"

namespace htap {
namespace bench {
namespace {

constexpr size_t kSegmentRows = 64 * 1024;

struct Shape {
  const char* name;
  EncodingType encoding;
  CmpOp op;
  Value literal;
  std::vector<Segment> segments;
  size_t rows = 0;
};

std::vector<Segment> BuildSegments(const ColumnVector& all, EncodingType enc) {
  std::vector<Segment> segs;
  for (size_t start = 0; start < all.size(); start += kSegmentRows) {
    const size_t n = std::min(kSegmentRows, all.size() - start);
    ColumnVector slice(all.type());
    slice.Reserve(n);
    for (size_t i = 0; i < n; ++i) slice.AppendValue(all.GetValue(start + i));
    segs.push_back(Segment::BuildWithEncoding(slice, enc));
  }
  return segs;
}

std::vector<Shape> MakeShapes(size_t rows) {
  std::vector<Shape> shapes;
  {
    // DICTIONARY: 8 distinct strings, predicate keeps 1/8.
    ColumnVector v(Type::kString);
    v.Reserve(rows);
    for (size_t i = 0; i < rows; ++i)
      v.AppendString("category-" + std::to_string(i % 8));
    shapes.push_back({"DICTIONARY", EncodingType::kDictionary, CmpOp::kEq,
                      Value("category-3"), BuildSegments(v, EncodingType::kDictionary),
                      rows});
  }
  {
    // RLE: runs of 512, 64 distinct run values, predicate keeps 1/64.
    ColumnVector v(Type::kInt64);
    v.Reserve(rows);
    for (size_t i = 0; i < rows; ++i)
      v.AppendInt64(static_cast<int64_t>((i / 512) % 64));
    shapes.push_back({"RLE", EncodingType::kRle, CmpOp::kEq,
                      Value(int64_t{7}), BuildSegments(v, EncodingType::kRle),
                      rows});
  }
  {
    // FOR_BITPACK: uniform 12-bit range (zone maps cannot skip), predicate
    // keeps the top ~3%.
    ColumnVector v(Type::kInt64);
    v.Reserve(rows);
    uint64_t x = 0x9e3779b97f4a7c15ull;
    for (size_t i = 0; i < rows; ++i) {
      x ^= x << 13; x ^= x >> 7; x ^= x << 17;
      v.AppendInt64(1000000 + static_cast<int64_t>(x % 4096));
    }
    shapes.push_back({"FOR_BITPACK", EncodingType::kForBitPack, CmpOp::kGe,
                      Value(int64_t{1000000 + 3968}),
                      BuildSegments(v, EncodingType::kForBitPack), rows});
  }
  {
    // PLAIN: high-entropy doubles, predicate keeps ~5%.
    ColumnVector v(Type::kDouble);
    v.Reserve(rows);
    uint64_t x = 0x2545f4914f6cdd1dull;
    for (size_t i = 0; i < rows; ++i) {
      x ^= x << 13; x ^= x >> 7; x ^= x << 17;
      v.AppendDouble(static_cast<double>(x % 100000) * 0.001);
    }
    shapes.push_back({"PLAIN", EncodingType::kPlain, CmpOp::kLt, Value(5.0),
                      BuildSegments(v, EncodingType::kPlain), rows});
  }
  return shapes;
}

/// Compressed-domain path: refine a full selection per segment, gather the
/// survivors. Returns total hits.
size_t RunDirect(const Shape& s, ColumnVector* out) {
  size_t hits = 0;
  for (const Segment& seg : s.segments) {
    std::vector<uint32_t> sel;
    if (!SegmentCanSkip(seg, s.op, s.literal)) {
      sel.resize(seg.size());
      for (size_t i = 0; i < seg.size(); ++i)
        sel[i] = static_cast<uint32_t>(i);
      FilterSegmentSelection(seg, s.op, s.literal, &sel);
    }
    hits += sel.size();
    GatherSegment(seg, sel, out);
  }
  return hits;
}

/// Row-at-a-time reference: decode the segment, scalar Value::Compare loop.
size_t RunDecode(const Shape& s, ColumnVector* out) {
  size_t hits = 0;
  for (const Segment& seg : s.segments) {
    const ColumnVector v = seg.Decode();
    for (size_t i = 0; i < v.size(); ++i) {
      if (v.IsNull(i)) continue;
      const Value val = v.GetValue(i);
      if (CmpKeep(val.Compare(s.literal), s.op)) {
        out->AppendValue(val);
        ++hits;
      }
    }
  }
  return hits;
}

struct Measured {
  double direct_rps = 0;
  double decode_rps = 0;
  size_t hits = 0;
};

Measured MeasureShape(const Shape& s, int reps) {
  Measured m;
  double direct_sec = 0, decode_sec = 0;
  size_t direct_hits = 0, decode_hits = 0;
  for (int rep = -1; rep < reps; ++rep) {  // rep -1 = warmup
    ColumnVector direct_out(s.segments[0].type());
    Stopwatch sw;
    direct_hits = RunDirect(s, &direct_out);
    const double ds = sw.ElapsedSeconds();

    ColumnVector decode_out(s.segments[0].type());
    Stopwatch sw2;
    decode_hits = RunDecode(s, &decode_out);
    const double rs = sw2.ElapsedSeconds();
    if (rep >= 0) {
      direct_sec += ds;
      decode_sec += rs;
    }
    // Identity check: both paths must materialize the same survivors.
    if (direct_hits != decode_hits ||
        direct_out.size() != decode_out.size()) {
      std::fprintf(stderr, "FATAL: %s hit mismatch (%zu vs %zu)\n", s.name,
                   direct_hits, decode_hits);
      std::abort();
    }
    for (size_t i = 0; i < direct_out.size(); ++i) {
      if (direct_out.GetValue(i) != decode_out.GetValue(i)) {
        std::fprintf(stderr, "FATAL: %s value mismatch at %zu\n", s.name, i);
        std::abort();
      }
    }
  }
  m.hits = direct_hits;
  m.direct_rps = static_cast<double>(s.rows) * reps / direct_sec;
  m.decode_rps = static_cast<double>(s.rows) * reps / decode_sec;
  return m;
}

}  // namespace
}  // namespace bench
}  // namespace htap

int main(int argc, char** argv) {
  using namespace htap;
  using namespace htap::bench;

  const bool smoke = argc > 1 && std::strcmp(argv[1], "smoke") == 0;
  const size_t rows = smoke ? 2 * 1024 * 1024 : 8 * 1024 * 1024;
  const int reps = smoke ? 2 : 3;

  std::printf("Vectorized scan kernel: compressed-domain filter vs "
              "decode-then-filter (%zu rows/encoding, %d reps%s)\n\n",
              rows, reps, smoke ? ", smoke" : "");
  std::printf("%12s | %10s | %14s | %14s | %8s\n", "encoding", "hits",
              "direct Mrows/s", "decode Mrows/s", "speedup");
  PrintRule(70);

  const std::vector<Shape> shapes = MakeShapes(rows);
  bool bar_failed = false;
  for (const Shape& s : shapes) {
    Measured m = MeasureShape(s, reps);
    const bool enforce = std::strcmp(s.name, "DICTIONARY") == 0 ||
                         std::strcmp(s.name, "RLE") == 0;
    if (smoke && enforce && m.direct_rps < 3.0 * m.decode_rps) {
      // One re-measure before failing: CI runners get descheduled.
      m = MeasureShape(s, reps);
    }
    const double speedup = m.direct_rps / m.decode_rps;
    std::printf("%12s | %10zu | %14.1f | %14.1f | %7.1fx\n", s.name, m.hits,
                m.direct_rps / 1e6, m.decode_rps / 1e6, speedup);
    std::printf("{\"bench\":\"vectorized_scan\",\"encoding\":\"%s\","
                "\"mode\":\"direct\",\"rows\":%zu,\"hits\":%zu,"
                "\"rows_per_sec\":%.0f}\n",
                s.name, s.rows, m.hits, m.direct_rps);
    std::printf("{\"bench\":\"vectorized_scan\",\"encoding\":\"%s\","
                "\"mode\":\"decode\",\"rows\":%zu,\"hits\":%zu,"
                "\"rows_per_sec\":%.0f}\n",
                s.name, s.rows, m.hits, m.decode_rps);
    std::printf("{\"bench\":\"vectorized_scan_speedup\",\"encoding\":\"%s\","
                "\"direct_vs_decode\":%.2f}\n",
                s.name, speedup);
    if (smoke && enforce && speedup < 3.0) {
      std::fprintf(stderr,
                   "FAIL: %s direct path %.2fx decode (acceptance bar 3x)\n",
                   s.name, speedup);
      bar_failed = true;
    }
  }
  PrintRule(70);
  std::printf("\nAll direct-path results verified identical to "
              "decode-then-filter.\n");
  if (bar_failed) return 1;
  return 0;
}
