// Google-benchmark microbenchmarks for the individual substrates: B+-tree
// operations, column encodings, columnar vs row scans, MVCC transaction
// path, WAL append, and Raft replication (virtual-time cost per commit).

#include <benchmark/benchmark.h>

#include "columnar/column_table.h"
#include "common/random.h"
#include "exec/executor.h"
#include "index/btree.h"
#include "sim/raft.h"
#include "storage/mvcc_row_store.h"
#include "txn/txn_manager.h"
#include "wal/wal.h"

namespace htap {
namespace {

// ---- B+-tree ----------------------------------------------------------

void BM_BTreeInsert(benchmark::State& state) {
  Random rng(1);
  for (auto _ : state) {
    state.PauseTiming();
    BTree tree(static_cast<int>(state.range(0)));
    state.ResumeTiming();
    for (int i = 0; i < 10000; ++i)
      tree.Insert(static_cast<Key>(rng.Next64() % 1000000), i);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_BTreeInsert)->Arg(16)->Arg(64)->Arg(256);

void BM_BTreeLookup(benchmark::State& state) {
  BTree tree(64);
  Random rng(2);
  for (int i = 0; i < 100000; ++i) tree.Insert(i, static_cast<uint64_t>(i));
  uint64_t v;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.Lookup(static_cast<Key>(rng.Uniform(100000)), &v));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeLookup);

void BM_BTreeScan(benchmark::State& state) {
  BTree tree(64);
  for (int i = 0; i < 100000; ++i) tree.Insert(i, static_cast<uint64_t>(i));
  for (auto _ : state) {
    uint64_t sum = 0;
    tree.ScanAll([&](Key, uint64_t v) {
      sum += v;
      return true;
    });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_BTreeScan);

// ---- Encodings --------------------------------------------------------

ColumnVector MakeIntColumn(size_t n, uint64_t range) {
  Random rng(3);
  ColumnVector v(Type::kInt64);
  v.Reserve(n);
  for (size_t i = 0; i < n; ++i)
    v.AppendInt64(static_cast<int64_t>(rng.Uniform(range)));
  return v;
}

void BM_Encode(benchmark::State& state) {
  const auto enc = static_cast<EncodingType>(state.range(0));
  const ColumnVector v = MakeIntColumn(65536, 1000);
  for (auto _ : state) {
    EncodedColumn out = Encode(v, enc);
    benchmark::DoNotOptimize(out.num_values);
  }
  state.SetItemsProcessed(state.iterations() * 65536);
}
BENCHMARK(BM_Encode)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_DecodeScan(benchmark::State& state) {
  const auto enc = static_cast<EncodingType>(state.range(0));
  const EncodedColumn col = Encode(MakeIntColumn(65536, 1000), enc);
  for (auto _ : state) {
    const ColumnVector v = Decode(col);
    benchmark::DoNotOptimize(v.size());
  }
  state.SetItemsProcessed(state.iterations() * 65536);
}
BENCHMARK(BM_DecodeScan)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

// ---- Scans -------------------------------------------------------------

Schema ScanSchema() {
  return Schema({{"id", Type::kInt64}, {"a", Type::kInt64},
                 {"b", Type::kInt64}, {"c", Type::kInt64}});
}

void BM_ColumnScanFiltered(benchmark::State& state) {
  ColumnTable table(ScanSchema());
  Random rng(4);
  std::vector<Row> rows;
  for (int i = 0; i < 100000; ++i)
    rows.push_back(Row{Value(static_cast<int64_t>(i)),
                       Value(static_cast<int64_t>(rng.Uniform(100))),
                       Value(static_cast<int64_t>(rng.Uniform(1000000))),
                       Value(static_cast<int64_t>(i % 7))});
  table.AppendBatch(rows, 1);
  const Predicate pred = Predicate::Eq(1, Value(int64_t{42}));
  for (auto _ : state) {
    auto out = ScanHtap(table, nullptr, kMaxCSN - 1, pred, {0});
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_ColumnScanFiltered);

void BM_RowScanFiltered(benchmark::State& state) {
  TransactionManager mgr;
  MvccRowStore store(1, ScanSchema(), &mgr, nullptr);
  Random rng(4);
  auto txn = mgr.Begin();
  for (int i = 0; i < 100000; ++i)
    store.Insert(txn.get(),
                 Row{Value(static_cast<int64_t>(i)),
                     Value(static_cast<int64_t>(rng.Uniform(100))),
                     Value(static_cast<int64_t>(rng.Uniform(1000000))),
                     Value(static_cast<int64_t>(i % 7))});
  mgr.Commit(txn.get());
  const Predicate pred = Predicate::Eq(1, Value(int64_t{42}));
  for (auto _ : state) {
    auto out = ScanRowStore(store, mgr.CurrentSnapshot(), pred, {0});
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_RowScanFiltered);

// ---- MVCC + WAL -------------------------------------------------------

void BM_MvccTxnCommit(benchmark::State& state) {
  TransactionManager mgr;
  MvccRowStore store(1, ScanSchema(), &mgr, nullptr);
  int64_t k = 0;
  for (auto _ : state) {
    auto txn = mgr.Begin();
    store.Insert(txn.get(), Row{Value(k), Value(k), Value(k), Value(k)});
    mgr.Commit(txn.get());
    ++k;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MvccTxnCommit);

void BM_MvccVisibilityCheck(benchmark::State& state) {
  TransactionManager mgr;
  MvccRowStore store(1, ScanSchema(), &mgr, nullptr);
  // A hot key with a deep version chain.
  {
    auto txn = mgr.Begin();
    store.Insert(txn.get(), Row{Value(int64_t{1}), Value(int64_t{0}),
                                Value(int64_t{0}), Value(int64_t{0})});
    mgr.Commit(txn.get());
  }
  for (int64_t i = 0; i < 64; ++i) {
    auto txn = mgr.Begin();
    store.Update(txn.get(),
                 Row{Value(int64_t{1}), Value(i), Value(i), Value(i)});
    mgr.Commit(txn.get());
  }
  const Snapshot old_snap{2, 0};  // forces a deep chain walk
  Row out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Get(old_snap, 1, &out));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MvccVisibilityCheck);

void BM_WalAppend(benchmark::State& state) {
  WalWriter wal({});
  WalRecord rec;
  rec.type = WalRecordType::kInsert;
  rec.txn_id = 1;
  rec.table_id = 1;
  rec.key = 7;
  rec.row = Row{Value(int64_t{7}), Value(int64_t{8}), Value("abcdefgh"),
                Value(3.14)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(wal.Append(rec));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(static_cast<int64_t>(wal.TailLsn()));
}
BENCHMARK(BM_WalAppend);

// ---- Raft (virtual time per committed entry) --------------------------

void BM_RaftReplicateCommit(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::SimEnv env(5);
    sim::SimNetwork net(&env, {});
    sim::RaftGroup group(&env, &net, {0, 1, 2}, {}, sim::RaftConfig{},
                         nullptr);
    sim::RaftNode* leader = group.WaitForLeader();
    state.ResumeTiming();
    int committed = 0;
    for (int i = 0; i < 100; ++i)
      leader->Propose("x", [&](bool ok, uint64_t) { committed += ok; });
    while (committed < 100) env.RunUntil(env.Now() + 1000);
    benchmark::DoNotOptimize(committed);
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_RaftReplicateCommit);

}  // namespace
}  // namespace htap

BENCHMARK_MAIN();
