// Reproduces Table 2, Analytical Processing row:
//   in-memory delta + column scan -> high freshness, large memory
//   log-based delta + column scan -> scalable staging, low freshness
//   pure column scan              -> high efficiency, low freshness
//
// Setup: one table with a merged columnar base plus a stream of unmerged
// committed updates staged in each delta design. Each technique answers
// the same aggregate query; we report latency, how many of the freshest
// changes the answer reflects, and staging memory.

#include "bench_util.h"

namespace htap {
namespace bench {
namespace {

Schema WideSchema() {
  std::vector<ColumnDef> cols = {{"id", Type::kInt64}};
  for (int i = 0; i < 7; ++i)
    cols.emplace_back("c" + std::to_string(i), Type::kInt64);
  return Schema(cols);
}

Row MakeRow(Key id, int64_t v) {
  Row r{Value(id)};
  for (int i = 0; i < 7; ++i) r.Append(Value(v + i));
  return r;
}

struct TechniqueResult {
  double query_ms = 0;
  size_t visible_fresh_rows = 0;  // of the unmerged tail
  size_t staging_bytes = 0;
  uint64_t extra_decode_bytes = 0;
};

constexpr size_t kBaseRows = 60000;
constexpr size_t kTailRows = 6000;  // committed but unmerged

template <typename DeltaT>
TechniqueResult RunWith(DeltaT* delta, const ColumnTable& table,
                        bool union_delta) {
  // The query: count rows with id >= kBaseRows (i.e. only the fresh tail
  // qualifies) plus a broad aggregate over a base column.
  TechniqueResult out;
  Stopwatch sw;
  const Predicate pred = Predicate::Ge(0, Value(static_cast<int64_t>(0)));
  ScanStats stats;
  const auto rows =
      ScanHtap(table, union_delta ? delta : nullptr, kMaxCSN - 1, pred,
               {0}, &stats);
  out.query_ms = sw.ElapsedSeconds() * 1000.0;
  for (const Row& r : rows)
    if (r.Get(0).AsInt64() >= static_cast<int64_t>(kBaseRows))
      ++out.visible_fresh_rows;
  out.staging_bytes = delta->MemoryBytes();
  return out;
}

}  // namespace
}  // namespace bench
}  // namespace htap

int main() {
  using namespace htap;
  using namespace htap::bench;
  std::printf("Table 2 / AP row — analytical-processing techniques\n");
  std::printf("Base: %zu merged rows; %zu committed-but-unmerged updates\n\n",
              kBaseRows, kTailRows);

  const Schema schema = WideSchema();

  // Build the merged base.
  ColumnTable table(schema);
  {
    std::vector<Row> base;
    base.reserve(kBaseRows);
    for (size_t i = 0; i < kBaseRows; ++i)
      base.push_back(MakeRow(static_cast<Key>(i), static_cast<int64_t>(i)));
    table.AppendBatch(base, /*up_to_csn=*/1);
  }

  // Stage the unmerged tail into each delta design.
  InMemoryDeltaStore mem_delta;
  L1L2DeltaStore l1l2(schema, 2048);
  LogDeltaStore log_delta;
  {
    std::vector<DeltaEntry> batch;
    for (size_t i = 0; i < kTailRows; ++i) {
      DeltaEntry e;
      e.op = ChangeOp::kInsert;
      e.key = static_cast<Key>(kBaseRows + i);
      e.row = MakeRow(e.key, static_cast<int64_t>(i));
      e.csn = 2 + i;
      mem_delta.Append(e);
      l1l2.Append(e);
      batch.push_back(e);
      if (batch.size() == 512) {
        log_delta.AppendFile(batch);
        batch.clear();
      }
    }
    if (!batch.empty()) log_delta.AppendFile(batch);
  }

  std::printf("%-34s | %9s | %12s | %11s | paper's cells\n", "Technique",
              "query ms", "fresh rows", "staging KiB");
  PrintRule(110);

  auto in_mem = RunWith(&mem_delta, table, true);
  std::printf("%-34s | %9.2f | %7zu/%zu | %11.1f | high freshness / large memory\n",
              "in-memory delta + column scan", in_mem.query_ms,
              in_mem.visible_fresh_rows, kTailRows,
              in_mem.staging_bytes / 1024.0);

  auto hana = RunWith(&l1l2, table, true);
  std::printf("%-34s | %9.2f | %7zu/%zu | %11.1f | (L1/L2 variant of the above)\n",
              "L1+L2 delta + column scan", hana.query_ms,
              hana.visible_fresh_rows, kTailRows, hana.staging_bytes / 1024.0);

  const uint64_t decoded_before = log_delta.bytes_decoded();
  auto log_scan = RunWith(&log_delta, table, true);
  std::printf("%-34s | %9.2f | %7zu/%zu | %11.1f | + %.1f KiB decoded per query\n",
              "log-based delta + column scan", log_scan.query_ms,
              log_scan.visible_fresh_rows, kTailRows,
              log_scan.staging_bytes / 1024.0,
              (log_delta.bytes_decoded() - decoded_before) / 1024.0);

  auto pure = RunWith(&mem_delta, table, false);
  std::printf("%-34s | %9.2f | %7zu/%zu | %11.1f | high efficiency / low freshness\n",
              "pure column scan (no delta)", pure.query_ms,
              pure.visible_fresh_rows, kTailRows, 0.0);

  PrintRule(110);
  std::printf(
      "\nExpected shape: delta-union scans see all %zu fresh rows; the pure\n"
      "column scan sees none. The log-based variant pays file decoding on\n"
      "every read; the in-memory variants pay resident staging memory.\n",
      kTailRows);
  return 0;
}
