// TP front-end scaling curve (DESIGN.md §15): optimistic latch coupling +
// sharded commits vs the single-latch designs they replaced.
//
// Section 1 ("index") runs a deterministic mixed lookup/insert/churn
// workload over two primary-key indexes holding the same data:
//
//   * olc    — the production OLC B+-tree (latch-free validated readers,
//              per-node version latches, EBR reclamation)
//   * coarse — std::map under one RWLatch, the pre-§15 design: every
//              lookup takes the latch shared, every mutation exclusive
//
// at 1/2/4/8 threads. The workload is a pure function of the operation
// index, so the final index contents are independent of thread count and
// tree type; an FNV-1a hash over the full key/payload scan is compared
// across every (tree, threads) cell and the bench aborts on any mismatch
// (byte-identical results across thread counts). One JSON line per cell:
//
//   {"bench":"tp_scaling","section":"index","tree":"olc","threads":4,
//    "ops_per_sec":...}
//
// plus one ratio line per thread count:
//
//   {"bench":"tp_scaling","section":"index_ratio","threads":4,
//    "olc_vs_coarse":...}
//
// Section 2 ("txn") drives NewOrder/Payment-style transactions (snapshot
// read both rows, update both rows, commit) through the sharded-commit
// TransactionManager + MvccRowStore at 1/2/4/8 threads, each thread over a
// disjoint account partition. Total balance is conserved and checked after
// every cell. One JSON line per thread count:
//
//   {"bench":"tp_scaling","section":"txn","threads":4,"txns_per_sec":...}
//
// plus the retention summary (throughput at max threads / throughput at 1
// thread — >= 1 means the commit path does not collapse under threads;
// > 1 needs real cores):
//
//   {"bench":"tp_scaling","section":"txn_scaling","threads_max":8,
//    "scaling_efficiency":...}
//
// `bench_tp_scaling smoke` is the CI configuration: a smaller workload and
// fewer reps, ENFORCING the OLC-vs-coarse acceptance bar at 8 threads
// (re-measured once before failing, like bench_parallel_join, to ride out
// scheduler blips). The bar is host-aware, same policy as
// bench_parallel_join's speedup bar: with >= 4 cores the coarse latch pays
// for serialized writers and futex convoys on top of its per-op cost, and
// the full 3x bar applies; on a 1–2 core host threads only time-slice, the
// measurable gap is per-op cost alone (~3x +/- scheduler noise), so the
// hard bar drops to 2x and the checked-in BENCH_baseline.json row (via
// check_bench_regression.py) carries the 3x evidence.

#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/clock.h"
#include "common/latch.h"
#include "index/btree.h"
#include "storage/mvcc_row_store.h"
#include "txn/txn_manager.h"

namespace htap {
namespace bench {
namespace {

// ---------------------------------------------------------------------------
// Section 1: index scaling
// ---------------------------------------------------------------------------

/// The pre-§15 baseline: one reader/writer latch around an ordered map.
class CoarseTree {
 public:
  bool Insert(Key key, uint64_t value) {
    WriteGuard g(latch_);
    return map_.emplace(key, value).second;
  }
  bool Erase(Key key) {
    WriteGuard g(latch_);
    return map_.erase(key) > 0;
  }
  bool Lookup(Key key, uint64_t* value) const {
    ReadGuard g(latch_);
    auto it = map_.find(key);
    if (it == map_.end()) return false;
    *value = it->second;
    return true;
  }
  // Same std::function call shape as the production BTree API, so neither
  // side gets an inlining advantage in the comparison.
  void Scan(Key lo, Key hi,
            const std::function<bool(Key, uint64_t)>& visit) const {
    ReadGuard g(latch_);
    for (auto it = map_.lower_bound(lo); it != map_.end() && it->first <= hi;
         ++it)
      if (!visit(it->first, it->second)) return;
  }
  void ScanAll(const std::function<bool(Key, uint64_t)>& visit) const {
    ReadGuard g(latch_);
    for (const auto& [k, v] : map_)
      if (!visit(k, v)) return;
  }

 private:
  mutable RWLatch latch_;
  std::map<Key, uint64_t> map_;
};

constexpr uint64_t PayloadOf(Key k) {
  return static_cast<uint64_t>(k) * 2 + 1;
}

/// Operation `i` of the index workload, a pure function of `i` — the shape
/// of a NewOrder/Payment index profile:
///   i % 10 <= 5 : point lookup of a preloaded key
///   i % 10 == 6/7 : short range scan (~32 entries, an order-line fetch)
///   i % 10 == 8 : insert of a unique new key (kept)
///   i % 10 == 9 : insert + erase of a unique key (structural churn)
/// Preloaded keys are even; op-generated keys are odd, so the final
/// contents are exactly preload + the i%10==8 keys for ANY thread count.
template <typename Tree>
void RunOp(Tree* tree, size_t i, size_t preload) {
  uint64_t payload;
  switch (i % 10) {
    case 6:
    case 7: {
      const Key lo = static_cast<Key>(2 * ((i * 31) % preload));
      tree->Scan(lo, lo + 63, [](Key k, uint64_t p) {
        if (p != PayloadOf(k)) {
          std::fprintf(stderr, "FATAL: scan payload mismatch at key %lld\n",
                       static_cast<long long>(k));
          std::abort();
        }
        return true;
      });
      break;
    }
    case 8: {
      const Key k = static_cast<Key>(2 * i + 1);
      tree->Insert(k, PayloadOf(k));
      break;
    }
    case 9: {
      const Key k = static_cast<Key>(2 * i + 1);
      tree->Insert(k, PayloadOf(k));
      tree->Erase(k);
      break;
    }
    default: {
      const Key k = static_cast<Key>(2 * ((i * 31) % preload));
      if (tree->Lookup(k, &payload) && payload != PayloadOf(k)) {
        std::fprintf(stderr, "FATAL: lookup payload mismatch at key %lld\n",
                     static_cast<long long>(k));
        std::abort();
      }
      break;
    }
  }
}

/// FNV-1a over the full ordered (key, payload) stream.
template <typename Tree>
uint64_t ContentHash(const Tree& tree) {
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](uint64_t x) {
    for (int b = 0; b < 8; ++b) {
      h ^= (x >> (8 * b)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  tree.ScanAll([&](Key k, uint64_t p) {
    mix(static_cast<uint64_t>(k));
    mix(p);
    return true;
  });
  return h;
}

struct IndexCell {
  double ops_per_sec = 0;
  uint64_t content_hash = 0;
};

template <typename Tree>
IndexCell RunIndexCell(size_t threads, size_t preload, size_t ops, int reps) {
  IndexCell cell;
  for (int rep = 0; rep < reps; ++rep) {
    Tree tree;
    for (size_t p = 0; p < preload; ++p) {
      const Key k = static_cast<Key>(2 * p);
      tree.Insert(k, PayloadOf(k));
    }
    // Start barrier: exclude thread spawn (milliseconds on a loaded host,
    // a fixed cost that would bias the faster tree's short cells).
    std::atomic<size_t> ready{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> workers;
    for (size_t t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        ready.fetch_add(1, std::memory_order_acq_rel);
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        // Contiguous block per thread: op identity is thread-independent.
        const size_t lo = ops * t / threads;
        const size_t hi = ops * (t + 1) / threads;
        for (size_t i = lo; i < hi; ++i) RunOp(&tree, i, preload);
      });
    }
    while (ready.load(std::memory_order_acquire) < threads)
      std::this_thread::yield();
    Stopwatch sw;
    go.store(true, std::memory_order_release);
    for (auto& w : workers) w.join();
    const double sec = sw.ElapsedSeconds();
    cell.ops_per_sec += static_cast<double>(ops) / sec;
    cell.content_hash = ContentHash(tree);
  }
  cell.ops_per_sec /= reps;
  return cell;
}

// ---------------------------------------------------------------------------
// Section 2: transactional scaling (sharded commits)
// ---------------------------------------------------------------------------

Schema AccountSchema() {
  return Schema({{"id", Type::kInt64}, {"balance", Type::kInt64}});
}

constexpr int64_t kInitialBalance = 1000;

/// Payment-style transfers: each thread owns a disjoint account partition,
/// so no transaction ever aborts and every cell commits exactly `txns`
/// transactions. Returns txns/sec.
double RunTxnCell(size_t threads, size_t accounts, size_t txns) {
  TransactionManager mgr(nullptr);
  MvccRowStore store(1, AccountSchema(), &mgr, nullptr);
  {
    auto txn = mgr.Begin();
    for (size_t a = 0; a < accounts; ++a) {
      if (!store.Insert(txn.get(), Row{Value(static_cast<Key>(a)),
                                       Value(kInitialBalance)})
               .ok()) {
        std::fprintf(stderr, "FATAL: account preload failed\n");
        std::abort();
      }
    }
    if (!mgr.Commit(txn.get()).ok()) std::abort();
  }

  Stopwatch sw;
  std::vector<std::thread> workers;
  for (size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      const size_t part = accounts / threads;
      const size_t base = t * part;
      const size_t n = txns / threads;
      for (size_t i = 0; i < n; ++i) {
        const Key from = static_cast<Key>(base + (i * 7) % part);
        const Key to = static_cast<Key>(base + (i * 7 + 1 + i % (part - 1)) %
                                                   part);
        const int64_t amount = 1 + static_cast<int64_t>(i % 9);
        // Retry loop, like a real TP driver: even with disjoint partitions
        // a transfer can conflict transiently, because the visible
        // watermark is the min per-shard frontier — a straggler commit on
        // another shard briefly hides this thread's own previous commit,
        // and first-updater-wins then rejects the stale update
        // (DESIGN.md §15). The straggler finishing unblocks the retry.
        for (int attempt = 0;; ++attempt) {
          if (attempt >= 1'000'000) {
            std::fprintf(stderr, "FATAL: transfer starved of retries\n");
            std::abort();
          }
          auto txn = mgr.Begin();
          Row a, b;
          if (!store.Get(txn->snapshot(), from, &a).ok() ||
              !store.Get(txn->snapshot(), to, &b).ok()) {
            mgr.Abort(txn.get());
            std::this_thread::yield();
            continue;
          }
          if (!store
                   .Update(txn.get(), Row{Value(from),
                                          Value(a.Get(1).AsInt64() - amount)})
                   .ok() ||
              !store
                   .Update(txn.get(),
                           Row{Value(to), Value(b.Get(1).AsInt64() + amount)})
                   .ok() ||
              !mgr.Commit(txn.get()).ok()) {
            mgr.Abort(txn.get());
            std::this_thread::yield();
            continue;
          }
          break;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  const double sec = sw.ElapsedSeconds();

  // Conservation: the committed state sums to the preloaded total.
  int64_t sum = 0;
  Row out;
  for (size_t a = 0; a < accounts; ++a) {
    if (!store.Get(mgr.CurrentSnapshot(), static_cast<Key>(a), &out).ok())
      std::abort();
    sum += out.Get(1).AsInt64();
  }
  if (sum != static_cast<int64_t>(accounts) * kInitialBalance) {
    std::fprintf(stderr, "FATAL: balance total drifted (%lld)\n",
                 static_cast<long long>(sum));
    std::abort();
  }
  return static_cast<double>(txns) / sec;
}

}  // namespace
}  // namespace bench
}  // namespace htap

int main(int argc, char** argv) {
  using namespace htap;
  using namespace htap::bench;

  const bool smoke = argc > 1 && std::strcmp(argv[1], "smoke") == 0;
  const size_t preload = smoke ? 50'000 : 200'000;
  const size_t index_ops = smoke ? 200'000 : 400'000;
  const size_t accounts = 1024;
  const size_t txns = smoke ? 8'000 : 32'000;
  const int reps = smoke ? 2 : 3;
  const size_t kThreadCounts[] = {1, 2, 4, 8};
  const size_t max_threads = 8;
  // Host-aware acceptance bar (see header comment): the full 3x needs real
  // cores for the coarse latch's serialization to show; a time-slicing host
  // can only measure the per-op gap, gated at 2x here and at 3x-with-25%-
  // tolerance by check_bench_regression.py against BENCH_baseline.json.
  const bool real_cores = std::thread::hardware_concurrency() >= 4;
  const double bar = real_cores ? 3.0 : 2.0;

  std::printf("TP front-end scaling: OLC B+-tree + sharded commits "
              "(%zu preload, %zu index ops, %zu txns, %d reps%s)\n",
              preload, index_ops, txns, reps, smoke ? ", smoke" : "");
  std::printf("host hardware_concurrency = %u\n\n",
              std::thread::hardware_concurrency());

  // ---- Section 1: index ------------------------------------------------
  std::printf("%8s | %12s | %12s | %12s\n", "threads", "olc Mops/s",
              "coarse Mops/s", "olc/coarse");
  PrintRule(56);
  uint64_t expect_hash = 0;
  double ratio_at_max = 0;
  for (int attempt = 0; attempt < 2; ++attempt) {
    for (size_t threads : kThreadCounts) {
      const IndexCell olc =
          RunIndexCell<BTree>(threads, preload, index_ops, reps);
      const IndexCell coarse =
          RunIndexCell<CoarseTree>(threads, preload, index_ops, reps);
      if (expect_hash == 0) expect_hash = olc.content_hash;
      if (olc.content_hash != expect_hash ||
          coarse.content_hash != expect_hash) {
        std::fprintf(stderr,
                     "FATAL: index contents differ across thread counts "
                     "(threads=%zu olc=%016llx coarse=%016llx want=%016llx)\n",
                     threads,
                     static_cast<unsigned long long>(olc.content_hash),
                     static_cast<unsigned long long>(coarse.content_hash),
                     static_cast<unsigned long long>(expect_hash));
        return 1;
      }
      const double ratio = olc.ops_per_sec / coarse.ops_per_sec;
      if (threads == max_threads) ratio_at_max = ratio;
      std::printf("%8zu | %12.2f | %12.2f | %12.2f\n", threads,
                  olc.ops_per_sec / 1e6, coarse.ops_per_sec / 1e6, ratio);
      std::printf("{\"bench\":\"tp_scaling\",\"section\":\"index\","
                  "\"tree\":\"olc\",\"threads\":%zu,\"ops_per_sec\":%.0f}\n",
                  threads, olc.ops_per_sec);
      std::printf("{\"bench\":\"tp_scaling\",\"section\":\"index\","
                  "\"tree\":\"coarse\",\"threads\":%zu,"
                  "\"ops_per_sec\":%.0f}\n",
                  threads, coarse.ops_per_sec);
      std::printf("{\"bench\":\"tp_scaling\",\"section\":\"index_ratio\","
                  "\"threads\":%zu,\"olc_vs_coarse\":%.3f}\n", threads,
                  ratio);
    }
    if (!smoke || ratio_at_max >= bar) break;
    std::printf("(olc/coarse %.2fx below the %.0fx bar at %zu threads — "
                "re-measuring)\n",
                ratio_at_max, bar, max_threads);
  }
  PrintRule(56);
  if (smoke && ratio_at_max < bar) {
    std::fprintf(stderr,
                 "FAIL: OLC tree %.2fx of coarse-latch tree at %zu threads "
                 "after re-measure (acceptance bar is %.0fx with %u cores)\n",
                 ratio_at_max, max_threads, bar,
                 std::thread::hardware_concurrency());
    return 1;
  }

  // ---- Section 2: txn --------------------------------------------------
  std::printf("\n%8s | %12s | %10s\n", "threads", "txns/s", "retention");
  PrintRule(38);
  double tps_at_1 = 0, tps_at_max = 0;
  for (size_t threads : kThreadCounts) {
    double tps = 0;
    for (int rep = 0; rep < reps; ++rep)
      tps += RunTxnCell(threads, accounts, txns);
    tps /= reps;
    if (threads == 1) tps_at_1 = tps;
    if (threads == max_threads) tps_at_max = tps;
    std::printf("%8zu | %12.0f | %10.2f\n", threads, tps, tps / tps_at_1);
    std::printf("{\"bench\":\"tp_scaling\",\"section\":\"txn\","
                "\"threads\":%zu,\"txns_per_sec\":%.0f}\n", threads, tps);
  }
  PrintRule(38);
  const double efficiency = tps_at_max / tps_at_1;
  std::printf("{\"bench\":\"tp_scaling\",\"section\":\"txn_scaling\","
              "\"threads_max\":%zu,\"scaling_efficiency\":%.3f}\n",
              max_threads, efficiency);

  std::printf("\nAll index contents byte-identical across thread counts and "
              "tree types; balance totals conserved.\n");
  return 0;
}
