// Reproduces Table 1 of the paper: the qualitative comparison of the four
// HTAP storage architectures on TP throughput, AP throughput, TP/AP
// scalability, workload isolation, and data freshness — as *measured*
// quantities, each mapped back onto the paper's High/Medium/Low bands.
//
// Methodology (details in EXPERIMENTS.md):
//  * TP/AP throughput: CH-benCHmark mixed run, wall-clock rates; bands are
//    relative to the best architecture in this run.
//  * Isolation: TP throughput retained when OLAP runs concurrently. For
//    the simulated cluster (b), TP rates compare in virtual time, since
//    its OLAP runs on learner nodes that cost no cluster CPU.
//  * Freshness: lag between a commit and its visibility to the AP scan
//    path the workload actually uses (delta-union scans are fresh by
//    construction; the distributed learner lags by log shipping).
//  * TP scalability: (b) measured across 1->4 shards in virtual time;
//    single-node architectures are bounded by one machine (1.0x).
//  * AP scalability: (b) gains a learner per shard; (c)'s IMCS cluster
//    partitions reads (modeled); (a)/(d) share the TP node.

#include "bench_util.h"

namespace htap {
namespace bench {
namespace {

struct ArchResult {
  double tp_only_tpm = 0;    // isolation baseline (virtual time for (b))
  double tp_mixed_tpm = 0;   // same clock as tp_only_tpm
  double tp_wall_tpm = 0;    // wall clock (for the throughput column)
  double ap_qph = 0;
  double isolation_pct = 0;
  double freshness_ms = 0;
  double tp_scal = 1.0;
  double ap_scal = 1.0;
};

ChConfig SmallCh() {
  ChConfig cfg;
  cfg.warehouses = 2;
  cfg.districts_per_warehouse = 4;
  cfg.customers_per_district = 40;
  cfg.items = 200;
  cfg.initial_orders_per_district = 20;
  return cfg;
}

double DistVirtualTps(int shards, int txns) {
  sim::SimEnv env(3);
  sim::DistributedDb::Options opts;
  opts.num_shards = shards;
  opts.learner_merge_interval = 0;
  sim::DistributedDb db(&env, opts);
  db.RegisterTable(1, Schema({{"id", Type::kInt64}, {"v", Type::kInt64}}));
  db.Bootstrap();
  const Micros start = env.Now();
  int done = 0;
  std::function<void(int)> issue = [&](int i) {
    db.ExecuteTxn({sim::WriteOp{1, ChangeOp::kInsert, i,
                                Row{Value(int64_t{i}), Value(int64_t{i})}}},
                  [&, i](bool) {
                    ++done;
                    if (i + 8 < txns) issue(i + 8);
                  });
  };
  for (int c = 0; c < 8 && c < txns; ++c) issue(c);
  while (done < txns) env.RunUntil(env.Now() + 1000);
  return txns / (static_cast<double>(env.Now() - start) / 1e6);
}

/// Runs one phase; returns (tpm on the isolation clock, wall tpm, report).
struct PhaseOut {
  double iso_tpm;
  double wall_tpm;
  DriverReport report;
};

PhaseOut RunPhase(ArchitectureKind arch, const ChConfig& cfg,
                  int olap_clients) {
  auto db = MakeDb(arch);
  CreateChTables(db.get());
  LoadChData(db.get(), cfg);
  const bool dist =
      arch == ArchitectureKind::kDistributedRowPlusColumnReplica;
  Micros v0 = 0;
  auto* deng = dist ? static_cast<DistributedHtapEngine*>(db->engine())
                    : nullptr;
  if (dist) v0 = deng->env()->Now();
  DriverConfig dc;
  dc.oltp_clients = 2;
  dc.olap_clients = olap_clients;
  dc.duration_micros = 1'200'000;
  const DriverReport rep = RunMixedWorkload(db.get(), cfg, dc);
  PhaseOut out;
  out.report = rep;
  out.wall_tpm = rep.tpm_total;
  if (dist) {
    const double vsecs =
        static_cast<double>(deng->env()->Now() - v0) / 1e6;
    out.iso_tpm = vsecs > 0 ? rep.txns_committed / vsecs * 60.0 : 0;
  } else {
    out.iso_tpm = rep.tpm_total;
  }
  return out;
}

ArchResult RunArch(ArchitectureKind arch) {
  ArchResult r;
  const ChConfig cfg = SmallCh();

  const PhaseOut tp_only = RunPhase(arch, cfg, /*olap_clients=*/0);
  const PhaseOut mixed = RunPhase(arch, cfg, /*olap_clients=*/1);
  r.tp_only_tpm = tp_only.iso_tpm;
  r.tp_mixed_tpm = mixed.iso_tpm;
  r.tp_wall_tpm = mixed.wall_tpm;
  r.ap_qph = mixed.report.qph;
  r.freshness_ms = mixed.report.avg_freshness_lag_micros / 1000.0;
  r.isolation_pct =
      r.tp_only_tpm > 0 ? 100.0 * r.tp_mixed_tpm / r.tp_only_tpm : 0;
  if (r.isolation_pct > 100) r.isolation_pct = 100;

  if (arch == ArchitectureKind::kDistributedRowPlusColumnReplica) {
    const double t1 = DistVirtualTps(1, 240);
    const double t4 = DistVirtualTps(4, 240);
    r.tp_scal = t4 / t1;
    r.ap_scal = 4.0;  // one columnar learner per shard
  } else if (arch == ArchitectureKind::kDiskRowPlusDistributedColumn) {
    r.tp_scal = 1.0;
    r.ap_scal = 2.0;  // IMCS cluster partitions (modeled)
  }
  return r;
}

}  // namespace
}  // namespace bench
}  // namespace htap

int main() {
  using namespace htap;
  using namespace htap::bench;

  std::printf(
      "Table 1 — A classification of HTAP architectures (measured)\n"
      "Workload: CH-benCHmark mix; see EXPERIMENTS.md for methodology.\n\n");

  const char* paper_rows[] = {
      "paper: High High Medium Low Low High",
      "paper: Medium Medium High High High Low",
      "paper: Medium Medium Medium High High Medium",
      "paper: Medium High Low Medium Low High",
  };

  ArchResult results[4];
  double max_tp = 0, max_ap = 0;
  for (int i = 0; i < 4; ++i) {
    results[i] = RunArch(kAllArchitectures[i]);
    max_tp = std::max(max_tp, results[i].tp_wall_tpm);
    max_ap = std::max(max_ap, results[i].ap_qph);
  }

  std::printf("%-24s | %10s %10s | %7s %7s | %8s | %9s | measured bands vs paper\n",
              "Architecture", "TP txn/min", "AP q/h", "TPscal", "APscal",
              "Isol %", "Fresh ms");
  PrintRule(134);
  for (int i = 0; i < 4; ++i) {
    const ArchResult& r = results[i];
    std::printf(
        "%-24s | %10.0f %10.0f | %6.1fx %6.1fx | %7.1f%% | %9.3f | %s %s %s %s %s %s   [%s]\n",
        ShortArchName(kAllArchitectures[i]), r.tp_wall_tpm, r.ap_qph,
        r.tp_scal, r.ap_scal, r.isolation_pct, r.freshness_ms,
        Band(r.tp_wall_tpm / max_tp, 0.60, 0.05),
        Band(r.ap_qph / max_ap, 0.40, 0.08), Band(r.tp_scal, 2.0, 1.3),
        Band(r.ap_scal, 3.0, 1.5), Band(r.isolation_pct, 85, 60),
        BandInv(r.freshness_ms, 1.0, 100.0), paper_rows[i]);
  }
  PrintRule(134);
  std::printf(
      "\nNotes: bands for throughput are relative to the best architecture "
      "in this run. (b)'s isolation compares virtual-time TP rates (its "
      "OLAP runs on learner nodes). Freshness is the visibility lag of the "
      "scan path the queries used (delta-union scans are fresh by design; "
      "the learner lags by replication). See EXPERIMENTS.md for "
      "paper-vs-measured discussion.\n");
  return 0;
}
