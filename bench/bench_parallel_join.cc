// Radix-partitioned parallel hash join scaling curve.
//
// Joins a ~2M-row probe side against a ~1M-row build side at 1/2/4/8
// workers over the engine-style AP pool, verifying every parallel result is
// byte-identical to the serial join. Emits one JSON line per point so the
// curve can be plotted / regression-tracked (same shape as
// bench_parallel_scan):
//
//   {"bench":"parallel_join","threads":4,"build_rows":...,"probe_rows":...,
//    "output_rows":...,"probe_rows_per_sec":...,"speedup":...}
//
// A second section sweeps the grace join's spill budget (DESIGN.md §9) at a
// fixed thread count, shrinking the budget from "everything resident" to
// 1/16 of the build footprint and reporting the join-time / spill-volume
// curve, one JSON line per point:
//
//   {"bench":"grace_join","threads":4,"budget_bytes":...,"join_ms":...,
//    "partitions_spilled":...,"spill_bytes_written":...,
//    "spill_bytes_read":...,"max_recursion":...}
//
// A third section compares the row and batch join probes (DESIGN.md §13)
// over the same ColumnTables, whose low-cardinality string join keys
// dictionary-encode: the row side scans to Rows and extracts keys from
// boxed Values, the batch side scans to ColumnBatches and extracts keys
// straight off the typed vectors; both probe the identical
// HashJoinPairsKeys kernel and are pair-for-pair identity-checked. One JSON
// line:
//
//   {"bench":"batch_join","threads":1,"build_rows":...,"probe_rows":...,
//    "output_pairs":...,"row_probe_rows_per_sec":...,
//    "batch_probe_rows_per_sec":...,"batch_vs_row":...}
//
// `bench_parallel_join smoke` runs one iteration over a 4x smaller dataset
// (still above the serial-fallback threshold) and a single spill point —
// the CI configuration. Speedup expectations depend on the host: with >= 4
// cores the 4-thread point should clear 1.5x; on a single-core host the
// curve is flat and only the identity checks are meaningful. The batch-join
// section additionally ENFORCES this PR's acceptance bar in smoke mode: the
// batch probe must beat the row probe by >= 1.5x on the dictionary-encoded
// keys (re-measured once before failing, to ride out scheduler blips).

#include <algorithm>
#include <cstring>
#include <string>

#include "bench_util.h"
#include "columnar/column_table.h"
#include "common/thread_pool.h"
#include "exec/executor.h"

namespace htap {
namespace bench {
namespace {

// Batch-vs-row section: a fact -> dim join on a low-cardinality STRING key
// so the key segments dictionary-encode (ChooseEncoding picks kDictionary
// below the NDV <= n/4 threshold). Column 0 is the unique PK AppendBatch
// keys row groups on.
Schema BatchFactSchema() {
  return Schema({{"id", Type::kInt64}, {"sku", Type::kString},
                 {"qty", Type::kInt64}, {"note", Type::kString}});
}

Schema BatchDimSchema() {
  return Schema({{"id", Type::kInt64}, {"sku", Type::kString},
                 {"weight", Type::kDouble}});
}

std::string SkuName(size_t k) { return "sku-" + std::to_string(k); }

/// Fills a ColumnTable in 64K-row groups (the sync pipeline's granularity)
/// and verifies every `key_col` segment dictionary-encoded — the property
/// the batch-vs-row bar is measured on. (ColumnTable holds a latch, so it
/// is filled in place rather than returned.)
void FillColumnTable(ColumnTable* table, std::vector<Row> rows, int key_col) {
  constexpr size_t kGroupRows = 64 * 1024;
  for (size_t lo = 0; lo < rows.size(); lo += kGroupRows) {
    const size_t hi = std::min(rows.size(), lo + kGroupRows);
    table->AppendBatch(
        std::vector<Row>(rows.begin() + lo, rows.begin() + hi), /*csn=*/1);
  }
  for (size_t g = 0; g < table->num_groups(); ++g) {
    if (table->group(g)->columns[key_col].encoding() !=
        EncodingType::kDictionary) {
      std::fprintf(stderr,
                   "FATAL: batch-join key column not dictionary-encoded\n");
      std::abort();
    }
  }
}

struct ProbeTiming {
  double sec = 0;          // scan + key extraction + probe, averaged
  JoinPairs pairs;         // identity-checked across routes
  JoinStats stats;
};

/// Row route: materialize full Rows (the pre-§13 pipeline always carried
/// every column to the join), extract keys from boxed Values, probe.
ProbeTiming RowProbe(const ColumnTable& probe, const ColumnTable& build,
                     int key_col, int reps) {
  ExecContext exec;
  ProbeTiming t;
  const Predicate all;
  for (int rep = -1; rep < reps; ++rep) {  // rep -1 = warmup
    Stopwatch sw;
    const auto build_rows = ScanHtap(build, nullptr, kMaxCSN, all, {});
    const auto probe_rows = ScanHtap(probe, nullptr, kMaxCSN, all, {});
    const auto build_keys = ExtractJoinKeys(build_rows, key_col);
    const auto probe_keys = ExtractJoinKeys(probe_rows, key_col);
    t.stats = JoinStats{};
    t.pairs = HashJoinPairsKeys(probe_keys, build_keys, exec, &t.stats);
    if (rep >= 0) t.sec += sw.ElapsedSeconds();
  }
  t.sec /= reps;
  return t;
}

/// Batch route (DESIGN.md §13): scan only the key column into
/// ColumnBatches — late materialization means the probe needs nothing
/// else — extract keys off the typed vectors, probe the identical kernel.
ProbeTiming BatchProbe(const ColumnTable& probe, const ColumnTable& build,
                       int key_col, int reps) {
  ExecContext exec;
  ProbeTiming t;
  const Predicate all;
  const std::vector<int> keys_only{key_col};
  for (int rep = -1; rep < reps; ++rep) {
    Stopwatch sw;
    const auto build_batches =
        ScanHtapBatches(build, nullptr, kMaxCSN, all, keys_only, exec);
    const auto probe_batches =
        ScanHtapBatches(probe, nullptr, kMaxCSN, all, keys_only, exec);
    const auto build_keys = ExtractJoinKeys(build_batches, 0);
    const auto probe_keys = ExtractJoinKeys(probe_batches, 0);
    t.stats = JoinStats{};
    t.pairs = HashJoinPairsKeys(probe_keys, build_keys, exec, &t.stats);
    if (rep >= 0) t.sec += sw.ElapsedSeconds();
  }
  t.sec /= reps;
  return t;
}

struct Point {
  double sec = 0;
  JoinStats stats;
};

Point RunPoint(const std::vector<Row>& probe, const std::vector<Row>& build,
               size_t threads, int reps, const std::vector<Row>* reference,
               size_t spill_budget = 0) {
  std::unique_ptr<ThreadPool> pool;
  ExecContext exec;
  if (threads > 1) {
    pool = std::make_unique<ThreadPool>(threads, "bench-join-ap");
    exec.pool = pool.get();
    exec.max_parallelism = threads;
  }
  exec.join_spill_budget_bytes = spill_budget;
  Point p;
  std::vector<Row> out;
  for (int rep = -1; rep < reps; ++rep) {  // rep -1 = warmup
    Stopwatch sw;
    out = HashJoin(probe, build, 1, 0, exec, &p.stats);
    if (rep >= 0) p.sec += sw.ElapsedSeconds();
  }
  if (reference != nullptr && out != *reference) {
    std::fprintf(stderr, "FATAL: parallel join result differs at %zu threads\n",
                 threads);
    std::abort();
  }
  p.sec /= reps;
  return p;
}

}  // namespace
}  // namespace bench
}  // namespace htap

int main(int argc, char** argv) {
  using namespace htap;
  using namespace htap::bench;

  const bool smoke = argc > 1 && std::strcmp(argv[1], "smoke") == 0;
  const size_t build_rows = smoke ? 256 * 1024 : 1024 * 1024;
  const size_t probe_rows = 2 * build_rows;
  const int reps = smoke ? 1 : 3;

  std::vector<Row> build;
  build.reserve(build_rows);
  for (size_t i = 0; i < build_rows; ++i)
    build.push_back(Row{Value(static_cast<int64_t>(i)),
                        Value(static_cast<int64_t>(i % 23)),
                        Value(1.0 + static_cast<double>(i % 100))});
  std::vector<Row> probe;
  probe.reserve(probe_rows);
  for (size_t i = 0; i < probe_rows; ++i)
    probe.push_back(Row{Value(static_cast<int64_t>(i)),
                        Value(static_cast<int64_t>((i * 7) % build_rows)),
                        Value(static_cast<int64_t>(1 + i % 10)),
                        Value(static_cast<double>(i % 997) * 0.5)});

  std::printf("Radix-partitioned parallel hash join "
              "(%zu build rows, %zu probe rows, %d reps/point%s)\n",
              build_rows, probe_rows, reps, smoke ? ", smoke" : "");
  std::printf("host hardware_concurrency = %u\n\n",
              std::thread::hardware_concurrency());

  const auto reference = HashJoin(probe, build, 1, 0);
  const Point serial = RunPoint(probe, build, 1, reps, &reference);

  std::printf("%8s | %10s | %10s | %13s | %8s\n", "threads", "parts",
              "join ms", "probe Mrows/s", "speedup");
  PrintRule(64);
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    const Point p = threads == 1
                        ? serial
                        : RunPoint(probe, build, threads, reps, &reference);
    const double rps = static_cast<double>(probe_rows) / p.sec;
    const double speedup = serial.sec / p.sec;
    std::printf("%8zu | %10zu | %10.2f | %13.2f | %8.2f\n", threads,
                p.stats.partitions, p.sec * 1e3, rps / 1e6, speedup);
    std::printf("{\"bench\":\"parallel_join\",\"threads\":%zu,"
                "\"build_rows\":%zu,\"probe_rows\":%zu,\"output_rows\":%zu,"
                "\"probe_rows_per_sec\":%.0f,\"speedup\":%.3f}\n",
                threads, build.size(), probe.size(), p.stats.output_rows, rps,
                speedup);
  }
  PrintRule(64);

  // Grace (out-of-core) sweep: same join, shrinking spill budget. Every
  // point is identity-checked against the unspilled serial reference.
  const size_t build_bytes = EstimateRowsBytes(build);
  const size_t grace_threads = 4;
  std::vector<size_t> budgets;
  if (smoke)
    budgets = {build_bytes / 4};
  else
    budgets = {build_bytes / 2, build_bytes / 4, build_bytes / 16};
  std::printf("\nGrace join spill-budget sweep "
              "(%zu threads, build footprint %.1f MiB)\n",
              grace_threads, static_cast<double>(build_bytes) / (1 << 20));
  std::printf("%12s | %10s | %8s | %12s | %12s | %6s\n", "budget MiB",
              "join ms", "spilled", "written MiB", "read MiB", "rec");
  PrintRule(76);
  for (size_t budget : budgets) {
    const Point p =
        RunPoint(probe, build, grace_threads, reps, &reference, budget);
    std::printf("%12.1f | %10.2f | %8zu | %12.1f | %12.1f | %6zu\n",
                static_cast<double>(budget) / (1 << 20), p.sec * 1e3,
                p.stats.partitions_spilled,
                static_cast<double>(p.stats.spill_bytes_written) / (1 << 20),
                static_cast<double>(p.stats.spill_bytes_read) / (1 << 20),
                p.stats.spill_max_recursion);
    std::printf("{\"bench\":\"grace_join\",\"threads\":%zu,"
                "\"budget_bytes\":%zu,\"join_ms\":%.2f,"
                "\"partitions_spilled\":%zu,\"spill_bytes_written\":%zu,"
                "\"spill_bytes_read\":%zu,\"max_recursion\":%zu}\n",
                grace_threads, budget, p.sec * 1e3,
                p.stats.partitions_spilled, p.stats.spill_bytes_written,
                p.stats.spill_bytes_read, p.stats.spill_max_recursion);
  }
  PrintRule(76);

  // Batch-vs-row probe on dictionary-encoded string keys (DESIGN.md §13).
  // Both routes run scan + key extraction + probe end-to-end; pair vectors
  // must be identical. Smoke mode enforces the acceptance bar
  // (batch >= 1.5x row), re-measuring once before failing so a scheduler
  // blip does not flake CI.
  {
    const size_t bj_build = smoke ? 64 * 1024 : 256 * 1024;
    const size_t bj_probe = 2 * bj_build;
    const size_t bj_keys = bj_build / 8;  // NDV well under the dict threshold
    const int key_col = 1;
    std::vector<Row> dim_rows;
    dim_rows.reserve(bj_build);
    for (size_t i = 0; i < bj_build; ++i)
      dim_rows.push_back(Row{Value(static_cast<int64_t>(i)),
                             Value(SkuName(i % bj_keys)),
                             Value(0.25 * static_cast<double>(i % 53))});
    std::vector<Row> fact_rows;
    fact_rows.reserve(bj_probe);
    for (size_t i = 0; i < bj_probe; ++i)
      fact_rows.push_back(Row{Value(static_cast<int64_t>(i)),
                              Value(SkuName((i * 7) % bj_keys)),
                              Value(static_cast<int64_t>(1 + i % 9)),
                              Value("order note " + std::to_string(i % 17))});
    ColumnTable dim(BatchDimSchema());
    FillColumnTable(&dim, std::move(dim_rows), key_col);
    ColumnTable fact(BatchFactSchema());
    FillColumnTable(&fact, std::move(fact_rows), key_col);

    std::printf("\nBatch vs row join probe "
                "(dictionary STRING key, %zu distinct, serial)\n", bj_keys);
    std::printf("%8s | %12s | %13s | %12s\n", "route", "probe ms",
                "probe Mrows/s", "batch/row");
    PrintRule(56);
    ProbeTiming row = RowProbe(fact, dim, key_col, reps);
    ProbeTiming batch = BatchProbe(fact, dim, key_col, reps);
    if (batch.pairs != row.pairs) {
      std::fprintf(stderr,
                   "FATAL: batch join pairs differ from row join pairs\n");
      std::abort();
    }
    double ratio = row.sec / batch.sec;
    if (smoke && ratio < 1.5) {
      std::printf("(batch/row %.2fx below the 1.5x bar — re-measuring)\n",
                  ratio);
      row = RowProbe(fact, dim, key_col, reps);
      batch = BatchProbe(fact, dim, key_col, reps);
      ratio = row.sec / batch.sec;
    }
    const double row_rps = static_cast<double>(bj_probe) / row.sec;
    const double batch_rps = static_cast<double>(bj_probe) / batch.sec;
    std::printf("%8s | %12.2f | %13.2f | %12s\n", "row", row.sec * 1e3,
                row_rps / 1e6, "1.00");
    std::printf("%8s | %12.2f | %13.2f | %12.2f\n", "batch", batch.sec * 1e3,
                batch_rps / 1e6, ratio);
    std::printf("{\"bench\":\"batch_join\",\"threads\":1,"
                "\"build_rows\":%zu,\"probe_rows\":%zu,\"output_pairs\":%zu,"
                "\"row_probe_rows_per_sec\":%.0f,"
                "\"batch_probe_rows_per_sec\":%.0f,"
                "\"batch_vs_row\":%.3f}\n",
                bj_build, bj_probe, batch.pairs.size(), row_rps, batch_rps,
                ratio);
    PrintRule(56);
    if (smoke && ratio < 1.5) {
      std::fprintf(stderr,
                   "FAIL: batch probe %.2fx of row probe after re-measure "
                   "(acceptance bar is 1.5x on dictionary-encoded keys)\n",
                   ratio);
      return 1;
    }
  }

  std::printf("\nAll parallel, grace, and batch join results verified "
              "byte-identical to serial.\n");
  return 0;
}
