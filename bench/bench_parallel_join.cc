// Radix-partitioned parallel hash join scaling curve.
//
// Joins a ~2M-row probe side against a ~1M-row build side at 1/2/4/8
// workers over the engine-style AP pool, verifying every parallel result is
// byte-identical to the serial join. Emits one JSON line per point so the
// curve can be plotted / regression-tracked (same shape as
// bench_parallel_scan):
//
//   {"bench":"parallel_join","threads":4,"build_rows":...,"probe_rows":...,
//    "output_rows":...,"probe_rows_per_sec":...,"speedup":...}
//
// A second section sweeps the grace join's spill budget (DESIGN.md §9) at a
// fixed thread count, shrinking the budget from "everything resident" to
// 1/16 of the build footprint and reporting the join-time / spill-volume
// curve, one JSON line per point:
//
//   {"bench":"grace_join","threads":4,"budget_bytes":...,"join_ms":...,
//    "partitions_spilled":...,"spill_bytes_written":...,
//    "spill_bytes_read":...,"max_recursion":...}
//
// `bench_parallel_join smoke` runs one iteration over a 4x smaller dataset
// (still above the serial-fallback threshold) and a single spill point —
// the CI configuration. Speedup expectations depend on the host: with >= 4
// cores the 4-thread point should clear 1.5x; on a single-core host the
// curve is flat and only the identity checks are meaningful.

#include <cstring>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "exec/executor.h"

namespace htap {
namespace bench {
namespace {

Schema FactSchema() {
  return Schema({{"id", Type::kInt64}, {"fk", Type::kInt64},
                 {"qty", Type::kInt64}, {"amount", Type::kDouble}});
}

Schema DimSchema() {
  return Schema({{"id", Type::kInt64}, {"category", Type::kInt64},
                 {"price", Type::kDouble}});
}

struct Point {
  double sec = 0;
  JoinStats stats;
};

Point RunPoint(const std::vector<Row>& probe, const std::vector<Row>& build,
               size_t threads, int reps, const std::vector<Row>* reference,
               size_t spill_budget = 0) {
  std::unique_ptr<ThreadPool> pool;
  ExecContext exec;
  if (threads > 1) {
    pool = std::make_unique<ThreadPool>(threads, "bench-join-ap");
    exec.pool = pool.get();
    exec.max_parallelism = threads;
  }
  exec.join_spill_budget_bytes = spill_budget;
  Point p;
  std::vector<Row> out;
  for (int rep = -1; rep < reps; ++rep) {  // rep -1 = warmup
    Stopwatch sw;
    out = HashJoin(probe, build, 1, 0, exec, &p.stats);
    if (rep >= 0) p.sec += sw.ElapsedSeconds();
  }
  if (reference != nullptr && out != *reference) {
    std::fprintf(stderr, "FATAL: parallel join result differs at %zu threads\n",
                 threads);
    std::abort();
  }
  p.sec /= reps;
  return p;
}

}  // namespace
}  // namespace bench
}  // namespace htap

int main(int argc, char** argv) {
  using namespace htap;
  using namespace htap::bench;

  const bool smoke = argc > 1 && std::strcmp(argv[1], "smoke") == 0;
  const size_t build_rows = smoke ? 256 * 1024 : 1024 * 1024;
  const size_t probe_rows = 2 * build_rows;
  const int reps = smoke ? 1 : 3;

  std::vector<Row> build;
  build.reserve(build_rows);
  for (size_t i = 0; i < build_rows; ++i)
    build.push_back(Row{Value(static_cast<int64_t>(i)),
                        Value(static_cast<int64_t>(i % 23)),
                        Value(1.0 + static_cast<double>(i % 100))});
  std::vector<Row> probe;
  probe.reserve(probe_rows);
  for (size_t i = 0; i < probe_rows; ++i)
    probe.push_back(Row{Value(static_cast<int64_t>(i)),
                        Value(static_cast<int64_t>((i * 7) % build_rows)),
                        Value(static_cast<int64_t>(1 + i % 10)),
                        Value(static_cast<double>(i % 997) * 0.5)});

  std::printf("Radix-partitioned parallel hash join "
              "(%zu build rows, %zu probe rows, %d reps/point%s)\n",
              build_rows, probe_rows, reps, smoke ? ", smoke" : "");
  std::printf("host hardware_concurrency = %u\n\n",
              std::thread::hardware_concurrency());

  const auto reference = HashJoin(probe, build, 1, 0);
  const Point serial = RunPoint(probe, build, 1, reps, &reference);

  std::printf("%8s | %10s | %10s | %13s | %8s\n", "threads", "parts",
              "join ms", "probe Mrows/s", "speedup");
  PrintRule(64);
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    const Point p = threads == 1
                        ? serial
                        : RunPoint(probe, build, threads, reps, &reference);
    const double rps = static_cast<double>(probe_rows) / p.sec;
    const double speedup = serial.sec / p.sec;
    std::printf("%8zu | %10zu | %10.2f | %13.2f | %8.2f\n", threads,
                p.stats.partitions, p.sec * 1e3, rps / 1e6, speedup);
    std::printf("{\"bench\":\"parallel_join\",\"threads\":%zu,"
                "\"build_rows\":%zu,\"probe_rows\":%zu,\"output_rows\":%zu,"
                "\"probe_rows_per_sec\":%.0f,\"speedup\":%.3f}\n",
                threads, build.size(), probe.size(), p.stats.output_rows, rps,
                speedup);
  }
  PrintRule(64);

  // Grace (out-of-core) sweep: same join, shrinking spill budget. Every
  // point is identity-checked against the unspilled serial reference.
  const size_t build_bytes = EstimateRowsBytes(build);
  const size_t grace_threads = 4;
  std::vector<size_t> budgets;
  if (smoke)
    budgets = {build_bytes / 4};
  else
    budgets = {build_bytes / 2, build_bytes / 4, build_bytes / 16};
  std::printf("\nGrace join spill-budget sweep "
              "(%zu threads, build footprint %.1f MiB)\n",
              grace_threads, static_cast<double>(build_bytes) / (1 << 20));
  std::printf("%12s | %10s | %8s | %12s | %12s | %6s\n", "budget MiB",
              "join ms", "spilled", "written MiB", "read MiB", "rec");
  PrintRule(76);
  for (size_t budget : budgets) {
    const Point p =
        RunPoint(probe, build, grace_threads, reps, &reference, budget);
    std::printf("%12.1f | %10.2f | %8zu | %12.1f | %12.1f | %6zu\n",
                static_cast<double>(budget) / (1 << 20), p.sec * 1e3,
                p.stats.partitions_spilled,
                static_cast<double>(p.stats.spill_bytes_written) / (1 << 20),
                static_cast<double>(p.stats.spill_bytes_read) / (1 << 20),
                p.stats.spill_max_recursion);
    std::printf("{\"bench\":\"grace_join\",\"threads\":%zu,"
                "\"budget_bytes\":%zu,\"join_ms\":%.2f,"
                "\"partitions_spilled\":%zu,\"spill_bytes_written\":%zu,"
                "\"spill_bytes_read\":%zu,\"max_recursion\":%zu}\n",
                grace_threads, budget, p.sec * 1e3,
                p.stats.partitions_spilled, p.stats.spill_bytes_written,
                p.stats.spill_bytes_read, p.stats.spill_max_recursion);
  }
  PrintRule(76);
  std::printf("\nAll parallel and grace join results verified "
              "byte-identical to serial.\n");
  return 0;
}
