// Reproduces Table 2, Query Optimization row:
//   in-memory column selection -> high memory utility, lower AP throughput
//       when the needed columns are not loaded
//   hybrid row/column scan     -> high AP throughput (picks the best path)
//   CPU/GPU acceleration       -> high AP throughput, low TP throughput
//
// Part 1 sweeps the column advisor's memory budget on architecture (c) and
// measures query latency for hot-column vs cold-column queries.
// Part 2 compares forced-row, forced-column, and hybrid (auto) execution
// for a point query and an analytical query on architecture (a).
// Part 3 models the heterogeneous CPU/GPU split: a device executor with
// kernel-launch latency + high scan bandwidth vs. the task-parallel CPU
// path, for OLAP and OLTP separately.
// Part 4 measures how far the plan-time statistics path misestimates join
// cardinalities when the fact table's value distribution is skewed: the
// uniform-distribution assumption behind the catalog stats is exact on
// uniform data and off by ~an order of magnitude under skew (q-error from
// QueryExecInfo's estimated vs. actual rows per join step).

#include "bench_util.h"
#include "benchlib/adapt.h"

namespace htap {
namespace bench {
namespace {

double MedianQueryMs(Database* db, const QueryPlan& plan, int reps) {
  std::vector<double> ms;
  for (int i = 0; i < reps; ++i) {
    Stopwatch sw;
    auto res = db->Query(plan);
    if (!res.ok()) return -1;
    ms.push_back(sw.ElapsedSeconds() * 1000);
  }
  std::sort(ms.begin(), ms.end());
  return ms[ms.size() / 2];
}

// ---- Part 3: the modeled device executor --------------------------------

/// A data-parallel "GPU" column scanner: pays a fixed kernel-launch latency
/// per query, then scans at a bandwidth multiple of the CPU path; point
/// operations gain nothing (no task parallelism) and pay transfer costs.
struct DeviceModel {
  double launch_overhead_ms = 0.25;   // kernel launch + transfer setup
  double scan_speedup = 8.0;          // effective bandwidth ratio
  double point_op_penalty = 4.0;      // TP ops are latency-bound
};

}  // namespace
}  // namespace bench
}  // namespace htap

int main() {
  using namespace htap;
  using namespace htap::bench;
  std::printf("Table 2 / QO row — query-optimization techniques\n\n");

  // ---- Part 1: workload-driven column selection (architecture (c)) ----
  {
    std::printf("[1] In-memory column selection (Heatwave/Oracle-21c style)\n");
    AdaptConfig acfg;
    acfg.wide_rows = 20000;
    acfg.wide_cols = 24;
    auto db = MakeDb(ArchitectureKind::kDiskRowPlusDistributedColumn, 1,
                     false);
    SetupAdapt(db.get(), acfg);
    auto* engine = static_cast<DiskHtapEngine*>(db->engine());
    const TableInfo* info = db->catalog()->Find("adapt_wide");

    // Hot workload touches the first 4 payload columns.
    const QueryPlan hot = WideScanPlan(acfg, 4);
    for (int i = 0; i < 12; ++i) db->Query(hot);
    QueryPlan cold = WideScanPlan(acfg, 4);
    cold.aggs.clear();
    for (int c = 20; c < 24; ++c)
      cold.aggs.push_back(AggSpec::Sum(1 + c, "sum"));

    std::printf("    %-22s | %10s | %12s | %s\n", "memory budget",
                "hot qry ms", "cold qry ms", "loaded columns");
    // One database per budget point (the budget is fixed at open time).
    for (const size_t budget_kib : {64u, 1024u, 65536u}) {
      char tmpl[] = "/tmp/htap_qo_XXXXXX";
      std::string dir = mkdtemp(tmpl);
      DatabaseOptions opts;
      opts.architecture = ArchitectureKind::kDiskRowPlusDistributedColumn;
      opts.data_dir = dir;
      opts.background_sync = false;
      opts.column_memory_budget_bytes = budget_kib * 1024;
      auto bdb = std::move(*Database::Open(opts));
      SetupAdapt(bdb.get(), acfg);
      auto* beng = static_cast<DiskHtapEngine*>(bdb->engine());
      const TableInfo* binfo = bdb->catalog()->Find("adapt_wide");
      for (int i = 0; i < 12; ++i) bdb->Query(hot);  // heat the advisor
      auto sel = beng->RefreshColumnSelection(*binfo);
      const double hot_ms = MedianQueryMs(bdb.get(), hot, 5);
      const double cold_ms = MedianQueryMs(bdb.get(), cold, 5);
      std::printf("    %19zu KiB | %10.2f | %12.2f | %zu of %d loaded (%.0f%% heat)\n",
                  budget_kib, hot_ms, cold_ms,
                  sel.ok() ? sel->columns.size() : 0, acfg.wide_cols + 1,
                  sel.ok() ? sel->heat_covered * 100 : 0);
      bdb.reset();
      std::system(("rm -rf " + dir).c_str());
    }
    std::printf("    -> loaded-column queries push down; unloaded columns "
                "fall back to the disk heap (the paper's caveat).\n\n");
    (void)engine;
    (void)info;
  }

  // ---- Part 2: hybrid row/column scan (architecture (a)) ----------------
  {
    std::printf("[2] Hybrid row/column scan (TiDB / SQL Server style)\n");
    AdaptConfig acfg;
    acfg.wide_rows = 30000;
    acfg.wide_cols = 24;
    auto db = MakeDb(ArchitectureKind::kRowPlusInMemoryColumn, 1, false);
    SetupAdapt(db.get(), acfg);
    db->ForceSync("adapt_wide");

    QueryPlan point;
    point.table = "adapt_wide";
    point.where = Predicate::Eq(0, Value(int64_t{777}));
    QueryPlan analytic = WideScanPlan(acfg, 2);

    std::printf("    %-24s | %12s | %12s\n", "plan", "point ms",
                "analytic ms");
    for (PathHint hint :
         {PathHint::kForceRow, PathHint::kForceColumn, PathHint::kAuto}) {
      QueryPlan p1 = point, p2 = analytic;
      p1.path = hint;
      p2.path = hint;
      const char* name = hint == PathHint::kForceRow      ? "forced row"
                         : hint == PathHint::kForceColumn ? "forced column"
                                                          : "hybrid (cost-based)";
      std::printf("    %-24s | %12.3f | %12.3f\n", name,
                  MedianQueryMs(db.get(), p1, 7),
                  MedianQueryMs(db.get(), p2, 7));
    }
    QueryExecInfo xi1, xi2;
    QueryPlan p1 = point, p2 = analytic;
    db->Query(p1, &xi1);
    db->Query(p2, &xi2);
    std::printf("    -> hybrid chose '%s' for the point query and '%s' for "
                "the analytic one.\n\n",
                xi1.access_path.c_str(), xi2.access_path.c_str());
  }

  // ---- Part 3: CPU/GPU acceleration (modeled device executor) -----------
  {
    std::printf("[3] CPU/GPU acceleration (RateupDB / Caldera model)\n");
    AdaptConfig acfg;
    acfg.wide_rows = 30000;
    acfg.wide_cols = 24;
    auto db = MakeDb(ArchitectureKind::kRowPlusInMemoryColumn, 1, false);
    SetupAdapt(db.get(), acfg);
    db->ForceSync("adapt_wide");
    const DeviceModel gpu;

    const double cpu_scan_ms =
        MedianQueryMs(db.get(), WideScanPlan(acfg, 8), 5);
    const double gpu_scan_ms =
        gpu.launch_overhead_ms + cpu_scan_ms / gpu.scan_speedup;

    Random rng(11);
    Stopwatch sw;
    for (int i = 0; i < 2000; ++i) NarrowPointUpdate(db.get(), acfg, &rng);
    const double cpu_tp_ms = sw.ElapsedSeconds() * 1000 / 2000;
    const double gpu_tp_ms = cpu_tp_ms * gpu.point_op_penalty;

    std::printf("    %-18s | %12s | %12s\n", "executor", "OLAP scan ms",
                "OLTP txn ms");
    std::printf("    %-18s | %12.3f | %12.4f\n", "CPU (task-par.)",
                cpu_scan_ms, cpu_tp_ms);
    std::printf("    %-18s | %12.3f | %12.4f\n", "GPU (data-par.)",
                gpu_scan_ms, gpu_tp_ms);
    std::printf("    -> the device wins the scan %.1fx but loses OLTP %.1fx "
                "(high AP, low TP — the paper's cells).\n",
                cpu_scan_ms / gpu_scan_ms, gpu_tp_ms / cpu_tp_ms);
  }

  // ---- Part 4: join misestimation under skew (plan-time stats) ----------
  {
    std::printf("\n[4] Plan-time join estimates vs. actuals under skew\n");
    std::printf("    %-8s | %-6s | %12s | %12s | %8s\n", "dataset", "step",
                "est rows", "actual rows", "q-error");
    for (const bool skewed : {false, true}) {
      auto db = MakeDb(ArchitectureKind::kRowPlusInMemoryColumn, 1, false);
      db->ExecuteSql("CREATE TABLE dim_a (a_id INT64 PRIMARY KEY, "
                     "a_val INT64)");
      db->ExecuteSql("CREATE TABLE dim_b (b_id INT64 PRIMARY KEY, "
                     "b_val INT64)");
      db->ExecuteSql("CREATE TABLE fact (f_id INT64 PRIMARY KEY, "
                     "f_a INT64, f_b INT64, f_val INT64)");
      {
        auto txn = db->Begin();
        for (int64_t i = 1; i <= 100; ++i) {
          txn->Insert("dim_a", Row{Value(i), Value(i % 7)});
          txn->Insert("dim_b", Row{Value(i), Value(i % 5)});
        }
        txn->Commit();
      }
      // f_val spans [1, 100]. Uniform: every value equally likely, so the
      // min/max-based selectivity estimate for f_val <= 10 is exact.
      // Skewed: 90% of rows sit at f_val = 1, so the same estimate is ~9x
      // under the truth.
      Random rng(42);
      constexpr int64_t kFactRows = 20000;
      for (int64_t i = 1; i <= kFactRows;) {
        auto txn = db->Begin();
        for (int64_t j = 0; j < 500 && i <= kFactRows; ++j, ++i) {
          const int64_t val =
              skewed ? (rng.Uniform(10) == 0
                            ? 1 + static_cast<int64_t>(rng.Uniform(100))
                            : 1)
                     : 1 + static_cast<int64_t>(rng.Uniform(100));
          txn->Insert("fact",
                      Row{Value(i), Value(1 + static_cast<int64_t>(i % 100)),
                          Value(1 + static_cast<int64_t>((i / 100) % 100)),
                          Value(val)});
        }
        txn->Commit();
      }
      db->ForceSyncAll();  // publishes catalog stats for all three tables

      QueryExecInfo info;
      auto res = db->ExecuteSql(
          "SELECT COUNT(*) AS n FROM fact "
          "JOIN dim_a ON f_a = a_id "
          "JOIN dim_b ON f_b = b_id "
          "WHERE f_val <= 10",
          &info);
      if (!res.ok()) {
        std::printf("    query failed: %s\n", res.status().ToString().c_str());
        continue;
      }
      const char* label = skewed ? "skewed" : "uniform";
      for (size_t s = 0; s < info.join_order.size(); ++s) {
        const double est =
            s < info.join_est_rows.size() ? info.join_est_rows[s] : 0;
        const size_t act =
            s < info.join_actual_rows.size() ? info.join_actual_rows[s] : 0;
        const double qerr =
            est > 0 && act > 0
                ? (est > static_cast<double>(act) ? est / act : act / est)
                : 0;
        std::printf("    %-8s | %-6zu | %12.0f | %12zu | %8.2f\n", label, s,
                    est, act, qerr);
      }
      std::printf("    %-8s   planner: %s, stats age %llu commits\n", label,
                  info.join_used_catalog_stats ? "catalog stats" : "fallback",
                  static_cast<unsigned long long>(info.join_stats_age_csns));
    }
    std::printf("    -> uniform data keeps q-error ~1; skew breaks the "
                "uniformity assumption the estimates rest on.\n");
  }
  return 0;
}
