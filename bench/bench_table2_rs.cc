// Reproduces Table 2, Resource Scheduling row:
//   freshness-driven scheduling -> high freshness, lower throughput
//   workload-driven scheduling  -> high throughput, lower freshness
//   (static split as the baseline)
//
// Setup: architecture (a) with background merges disabled; the scheduler
// owns the only merge trigger. OLTP clients stream updates, OLAP clients
// run aggregates; an OLAP burst arrives mid-run. We report throughput of
// both classes and the freshness of the merged column store.

#include "bench_util.h"
#include "sched/scheduler.h"

namespace htap {
namespace bench {
namespace {

struct PolicyResult {
  uint64_t oltp_done = 0;
  uint64_t olap_done = 0;
  double avg_merged_lag_ms = 0;
  double max_merged_lag_ms = 0;
  uint64_t mode_switches = 0;
};

PolicyResult RunPolicy(SchedulingPolicy policy) {
  auto db = MakeDb(ArchitectureKind::kRowPlusInMemoryColumn, 1,
                   /*background_sync=*/false);
  db->CreateTable("t", Schema({{"id", Type::kInt64}, {"v", Type::kInt64}}));
  for (int i = 0; i < 20000; ++i)
    db->InsertRow("t", Row{Value(static_cast<int64_t>(i)),
                           Value(static_cast<int64_t>(i))});
  db->ForceSync("t");

  ResourceScheduler::Options opts;
  opts.policy = policy;
  opts.oltp_threads = 2;
  opts.olap_threads = 2;
  opts.adjust_interval_micros = 2000;
  opts.freshness_sla_micros = 15000;
  ResourceScheduler sched(
      opts, [&] { return db->Freshness("t").time_lag_micros; },
      [&] { db->ForceSync("t"); });

  std::atomic<uint64_t> lag_sum{0}, lag_max{0}, lag_n{0};
  std::atomic<bool> stop{false};

  // OLTP feeder.
  std::thread tp_feeder([&] {
    Random rng(1);
    while (!stop.load()) {
      sched.SubmitOltp([&db, k = static_cast<Key>(rng.Uniform(20000)),
                        v = static_cast<int64_t>(rng.Next64() % 1000)] {
        db->UpdateRow("t", Row{Value(k), Value(v)});
      });
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  });
  // OLAP feeder (with a burst in the middle third). The plan outlives the
  // feeder thread: queued tasks may still run during the final drain.
  QueryPlan plan;
  plan.table = "t";
  plan.aggs = {AggSpec::Sum(1, "s")};
  // Scheduler experiments read the *merged* store: the scheduler's merge
  // policy is exactly what is under test.
  plan.require_fresh = false;
  std::thread ap_feeder([&] {
    Stopwatch sw;
    while (!stop.load()) {
      const bool burst = sw.ElapsedMicros() > 250000 &&
                         sw.ElapsedMicros() < 500000;
      sched.SubmitOlap([&] {
        db->Query(plan);
        const Micros lag = db->Freshness("t").time_lag_micros;
        lag_sum.fetch_add(static_cast<uint64_t>(lag));
        lag_n.fetch_add(1);
        uint64_t cur = lag_max.load();
        while (static_cast<uint64_t>(lag) > cur &&
               !lag_max.compare_exchange_weak(cur, static_cast<uint64_t>(lag))) {
        }
      });
      std::this_thread::sleep_for(
          std::chrono::microseconds(burst ? 300 : 2000));
    }
  });

  std::this_thread::sleep_for(std::chrono::microseconds(750000));
  stop.store(true);
  tp_feeder.join();
  ap_feeder.join();
  sched.Drain();
  sched.Stop();

  PolicyResult r;
  r.oltp_done = sched.oltp_completed();
  r.olap_done = sched.olap_completed();
  r.avg_merged_lag_ms =
      lag_n.load() > 0
          ? static_cast<double>(lag_sum.load()) / lag_n.load() / 1000.0
          : 0;
  r.max_merged_lag_ms = static_cast<double>(lag_max.load()) / 1000.0;
  r.mode_switches = sched.mode_switches();
  return r;
}

// The AP-quota knob: the scheduler mirrors its OLAP concurrency quota onto
// the engine's morsel pool (ResourceScheduler::Options::ap_scan_pool), so
// throttling OLAP shrinks intra-query scan parallelism, not just query
// admission. Here we turn the knob directly and measure parallel scan+agg
// throughput at each setting.
void RunQuotaCurve() {
  auto db = MakeDb(ArchitectureKind::kRowPlusInMemoryColumn, 1,
                   /*background_sync=*/false, /*parallel_scan_threads=*/4);
  db->CreateTable("t", Schema({{"id", Type::kInt64}, {"v", Type::kInt64}}));
  for (int i = 0; i < 60000; ++i)
    db->InsertRow("t", Row{Value(static_cast<int64_t>(i)),
                           Value(static_cast<int64_t>(i % 1000))});
  db->ForceSync("t");
  ThreadPool* pool = db->ap_scan_pool();
  if (pool == nullptr) {
    std::printf("\n(engine has no AP pool; skipping quota curve)\n");
    return;
  }

  QueryPlan plan;
  plan.table = "t";
  plan.aggs = {AggSpec::Sum(1, "s"), AggSpec::Count("n")};
  plan.require_fresh = false;

  std::printf("\nAP concurrency quota vs parallel scan+agg throughput "
              "(4-thread morsel pool)\n");
  std::printf("%-10s | %12s | %10s\n", "quota", "queries/s", "relative");
  PrintRule(40);
  double base = 0;
  for (size_t quota : {size_t{4}, size_t{2}, size_t{1}}) {
    pool->SetConcurrencyQuota(quota);
    db->Query(plan);  // warmup
    Stopwatch sw;
    int n = 0;
    while (sw.ElapsedMicros() < 300000) {
      db->Query(plan);
      ++n;
    }
    const double qps = n / sw.ElapsedSeconds();
    if (base == 0) base = qps;
    std::printf("%-10zu | %12.1f | %9.2fx\n", quota, qps, qps / base);
  }
  pool->SetConcurrencyQuota(0);
  PrintRule(40);
  std::printf("Expected shape (multi-core host): halving the quota halves "
              "the morsels in flight, so throughput falls toward the serial "
              "rate — the scheduler's OLAP throttle now costs analytics real "
              "CPU instead of only queueing whole queries.\n");
}

}  // namespace
}  // namespace bench
}  // namespace htap

int main() {
  using namespace htap;
  using namespace htap::bench;
  std::printf("Table 2 / RS row — resource-scheduling techniques\n");
  std::printf("0.75s mixed run with an OLAP burst; merges happen only when "
              "the policy triggers them\n\n");
  std::printf("%-22s | %10s | %10s | %12s | %12s | %6s\n", "Policy",
              "OLTP done", "OLAP done", "avg lag ms", "max lag ms",
              "mode sw");
  PrintRule(96);
  for (SchedulingPolicy policy :
       {SchedulingPolicy::kStatic, SchedulingPolicy::kWorkloadDriven,
        SchedulingPolicy::kFreshnessDriven}) {
    const PolicyResult r = RunPolicy(policy);
    std::printf("%-22s | %10llu | %10llu | %12.2f | %12.2f | %6llu\n",
                SchedulingPolicyName(policy),
                static_cast<unsigned long long>(r.oltp_done),
                static_cast<unsigned long long>(r.olap_done),
                r.avg_merged_lag_ms, r.max_merged_lag_ms,
                static_cast<unsigned long long>(r.mode_switches));
  }
  PrintRule(96);
  std::printf(
      "\nExpected shape (paper): the freshness-driven policy keeps lag near "
      "its SLA at some throughput cost; the workload-driven policy "
      "maximizes completed work but lets the column store go stale.\n");
  RunQuotaCurve();
  return 0;
}
