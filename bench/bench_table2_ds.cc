// Reproduces Table 2, Data Synchronization row:
//   in-memory delta merge          -> high efficiency, low scalability
//   log-based delta merge          -> scalable staging, high merge cost
//   rebuild from primary row store -> small staging memory, high load cost
//
// Setup: a populated MVCC row store; a burst of committed updates staged
// through each DS design; one synchronization brings the column store
// current. We report merge latency, rows moved, and staging memory held
// before the merge.

#include "bench_util.h"
#include "sync/sync.h"

namespace htap {
namespace bench {
namespace {

Schema KvSchema() {
  return Schema({{"id", Type::kInt64}, {"a", Type::kInt64},
                 {"b", Type::kInt64}, {"c", Type::kInt64}});
}

Row MakeRow(Key id, int64_t v) {
  return Row{Value(id), Value(v), Value(v * 2), Value(v * 3)};
}

constexpr size_t kBaseRows = 40000;
constexpr size_t kBurst = 20000;

struct Harness {
  TransactionManager mgr;
  std::unique_ptr<MvccRowStore> rows;
  ColumnTable table{KvSchema()};

  Harness() {
    rows = std::make_unique<MvccRowStore>(1, KvSchema(), &mgr, nullptr);
  }

  void LoadBase() {
    for (size_t i = 0; i < kBaseRows; i += 1000) {
      auto t = mgr.Begin();
      for (size_t j = i; j < i + 1000 && j < kBaseRows; ++j)
        rows->Insert(t.get(), MakeRow(static_cast<Key>(j), 1));
      mgr.Commit(t.get());
    }
  }

  /// Applies the burst through a sink into `delta_append`.
  void RunBurst(const std::function<void(const ChangeEvent&)>& delta_append) {
    Random rng(4);
    for (size_t i = 0; i < kBurst; i += 500) {
      auto t = mgr.Begin();
      for (size_t j = 0; j < 500; ++j) {
        const Key k = static_cast<Key>(rng.Uniform(kBaseRows));
        rows->Update(t.get(), MakeRow(k, static_cast<int64_t>(i + j)));
      }
      mgr.Commit(t.get());
      for (const ChangeEvent& ev : t->changes()) delta_append(ev);
    }
  }
};

}  // namespace
}  // namespace bench
}  // namespace htap

int main() {
  using namespace htap;
  using namespace htap::bench;
  std::printf("Table 2 / DS row — data-synchronization techniques\n");
  std::printf("Base %zu rows; burst of %zu committed updates, then one sync\n\n",
              kBaseRows, kBurst);
  std::printf("%-30s | %10s | %10s | %12s | paper's cells\n", "Technique",
              "merge ms", "rows moved", "staging KiB");
  PrintRule(104);

  {  // In-memory delta merge.
    Harness h;
    h.LoadBase();
    InMemoryDeltaStore delta;
    DataSynchronizer sync(
        SyncStrategy::kInMemoryMerge, &h.table,
        std::make_unique<DeltaSourceAdapter<InMemoryDeltaStore>>(&delta));
    // Base reaches the column store first (as a prior merge would have).
    h.RunBurst([&](const ChangeEvent& ev) {
      DeltaEntry e{ev.op, ev.key, ev.row, ev.csn};
      delta.Append(e);
    });
    const size_t staging = delta.MemoryBytes();
    Stopwatch sw;
    sync.SyncTo(h.mgr.LastCommittedCsn());
    std::printf("%-30s | %10.2f | %10llu | %12.1f | high efficiency / low scalability\n",
                "in-memory delta merge", sw.ElapsedSeconds() * 1000,
                static_cast<unsigned long long>(sync.stats().entries_merged),
                staging / 1024.0);
  }

  {  // Log-based delta merge.
    Harness h;
    h.LoadBase();
    LogDeltaStore delta;
    DataSynchronizer sync(
        SyncStrategy::kLogMerge, &h.table,
        std::make_unique<DeltaSourceAdapter<LogDeltaStore>>(&delta));
    std::vector<DeltaEntry> file;
    h.RunBurst([&](const ChangeEvent& ev) {
      file.push_back(DeltaEntry{ev.op, ev.key, ev.row, ev.csn});
      if (file.size() == 512) {
        delta.AppendFile(file);
        file.clear();
      }
    });
    if (!file.empty()) delta.AppendFile(file);
    const size_t staging = delta.MemoryBytes();
    Stopwatch sw;
    sync.SyncTo(h.mgr.LastCommittedCsn());
    std::printf("%-30s | %10.2f | %10llu | %12.1f | scalable staging / high merge cost\n",
                "log-based delta merge", sw.ElapsedSeconds() * 1000,
                static_cast<unsigned long long>(sync.stats().entries_merged),
                staging / 1024.0);
  }

  {  // Rebuild from the primary row store.
    Harness h;
    h.LoadBase();
    DataSynchronizer sync(&h.table, h.rows.get());
    h.RunBurst([](const ChangeEvent&) {});  // nothing staged at all
    Stopwatch sw;
    sync.SyncTo(h.mgr.LastCommittedCsn());
    std::printf("%-30s | %10.2f | %10llu | %12.1f | small memory / high load cost\n",
                "rebuild from primary rows", sw.ElapsedSeconds() * 1000,
                static_cast<unsigned long long>(sync.stats().rows_loaded),
                0.0);
  }

  PrintRule(104);
  std::printf(
      "\nExpected shape: the merges move only the %zu changed rows (the\n"
      "log variant paying extra decode); the rebuild re-loads all %zu rows\n"
      "but holds no staging memory between syncs.\n",
      kBurst, kBaseRows);
  return 0;
}
