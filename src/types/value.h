// The scalar type system: Type tags and the Value runtime box.
//
// htapdb supports three storage types — INT64, DOUBLE, STRING — plus SQL
// NULL. This is enough to express the TPC-C/CH-benCHmark schemas while
// keeping the columnar encodings and expression evaluator focused.

#ifndef HTAP_TYPES_VALUE_H_
#define HTAP_TYPES_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace htap {

/// Storage type of a column.
enum class Type : uint8_t {
  kInt64 = 0,
  kDouble = 1,
  kString = 2,
};

/// Name of a Type for error messages and EXPLAIN output.
const char* TypeName(Type t);

/// A single scalar value, possibly NULL. Small enough to pass by value in
/// row-at-a-time paths; the columnar engine avoids Value entirely.
class Value {
 public:
  /// NULL value.
  Value() : v_(std::monostate{}) {}
  Value(int64_t v) : v_(v) {}             // NOLINT(google-explicit-constructor)
  Value(double v) : v_(v) {}              // NOLINT(google-explicit-constructor)
  Value(std::string v) : v_(std::move(v)) {}  // NOLINT
  Value(const char* v) : v_(std::string(v)) {}  // NOLINT

  static Value Null() { return Value(); }

  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_int64() const { return std::holds_alternative<int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }

  int64_t AsInt64() const { return std::get<int64_t>(v_); }
  double AsDouble() const {
    if (is_int64()) return static_cast<double>(std::get<int64_t>(v_));
    return std::get<double>(v_);
  }
  const std::string& AsString() const { return std::get<std::string>(v_); }

  /// Type tag; NULL values have no type — callers must check is_null() first.
  Type type() const {
    if (is_int64()) return Type::kInt64;
    if (is_double()) return Type::kDouble;
    return Type::kString;
  }

  /// Three-way compare. NULL sorts before everything; numeric types compare
  /// numerically across int64/double.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }
  bool operator<=(const Value& other) const { return Compare(other) <= 0; }
  bool operator>(const Value& other) const { return Compare(other) > 0; }
  bool operator>=(const Value& other) const { return Compare(other) >= 0; }

  /// Stable 64-bit hash (for hash join / aggregate keys).
  uint64_t Hash() const;

  std::string ToString() const;

  /// Binary (de)serialization used by the WAL and log-delta files.
  void EncodeTo(std::string* out) const;
  /// Decodes one value starting at *pos; advances *pos. Returns false on
  /// malformed input.
  static bool DecodeFrom(const std::string& in, size_t* pos, Value* out);

  /// Approximate heap footprint in bytes (for memory accounting).
  size_t MemoryBytes() const {
    return sizeof(Value) + (is_string() ? AsString().capacity() : 0);
  }

 private:
  std::variant<std::monostate, int64_t, double, std::string> v_;
};

/// Typed hash primitives. Each returns exactly what Value::Hash() returns
/// for the same scalar, so vectorized key extraction and batch aggregation
/// can hash without boxing a Value. A double equal to an integer hashes as
/// that integer (join keys stay consistent across numeric types).
uint64_t HashInt64(int64_t v);
uint64_t HashDouble(double v);
uint64_t HashString(const std::string& s);
uint64_t HashNullValue();

}  // namespace htap

#endif  // HTAP_TYPES_VALUE_H_
