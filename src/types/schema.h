// Schema: an ordered list of typed, named columns. Tables in htapdb have an
// INT64 primary key (by convention column 0 unless specified); composite
// business keys are encoded into the INT64 by the workload layer.

#ifndef HTAP_TYPES_SCHEMA_H_
#define HTAP_TYPES_SCHEMA_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "types/value.h"

namespace htap {

/// One column definition.
struct ColumnDef {
  std::string name;
  Type type = Type::kInt64;
  bool nullable = true;

  ColumnDef() = default;
  ColumnDef(std::string n, Type t, bool null_ok = true)
      : name(std::move(n)), type(t), nullable(null_ok) {}
};

/// An immutable ordered set of columns plus the primary-key column index.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> cols, int pk_index = 0)
      : cols_(std::move(cols)), pk_index_(pk_index) {}

  size_t num_columns() const { return cols_.size(); }
  const ColumnDef& column(size_t i) const { return cols_[i]; }
  const std::vector<ColumnDef>& columns() const { return cols_; }

  /// Index of the named column, or -1.
  int FindColumn(const std::string& name) const {
    for (size_t i = 0; i < cols_.size(); ++i)
      if (cols_[i].name == name) return static_cast<int>(i);
    return -1;
  }

  int pk_index() const { return pk_index_; }

  /// Validates that the schema is usable: non-empty, unique names, INT64 PK.
  Status Validate() const {
    if (cols_.empty()) return Status::InvalidArgument("schema has no columns");
    if (pk_index_ < 0 || static_cast<size_t>(pk_index_) >= cols_.size())
      return Status::InvalidArgument("pk index out of range");
    if (cols_[pk_index_].type != Type::kInt64)
      return Status::InvalidArgument("primary key must be INT64");
    for (size_t i = 0; i < cols_.size(); ++i)
      for (size_t j = i + 1; j < cols_.size(); ++j)
        if (cols_[i].name == cols_[j].name)
          return Status::InvalidArgument("duplicate column name: " +
                                         cols_[i].name);
    return Status::OK();
  }

  /// Projection of this schema onto the given column indexes.
  Schema Project(const std::vector<int>& idxs) const {
    std::vector<ColumnDef> out;
    out.reserve(idxs.size());
    for (int i : idxs) out.push_back(cols_[static_cast<size_t>(i)]);
    return Schema(std::move(out), /*pk_index=*/0);
  }

  std::string ToString() const {
    std::string s = "(";
    for (size_t i = 0; i < cols_.size(); ++i) {
      if (i) s += ", ";
      s += cols_[i].name;
      s += " ";
      s += TypeName(cols_[i].type);
      if (static_cast<int>(i) == pk_index_) s += " PK";
    }
    s += ")";
    return s;
  }

 private:
  std::vector<ColumnDef> cols_;
  int pk_index_ = 0;
};

}  // namespace htap

#endif  // HTAP_TYPES_SCHEMA_H_
