#include "types/value.h"

#include <cstring>

namespace htap {

namespace {

// Tags used in the binary encoding.
constexpr uint8_t kTagNull = 0;
constexpr uint8_t kTagInt64 = 1;
constexpr uint8_t kTagDouble = 2;
constexpr uint8_t kTagString = 3;

void PutFixed64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

bool GetFixed64(const std::string& in, size_t* pos, uint64_t* v) {
  if (*pos + 8 > in.size()) return false;
  std::memcpy(v, in.data() + *pos, 8);
  *pos += 8;
  return true;
}

}  // namespace

const char* TypeName(Type t) {
  switch (t) {
    case Type::kInt64: return "INT64";
    case Type::kDouble: return "DOUBLE";
    case Type::kString: return "STRING";
  }
  return "UNKNOWN";
}

int Value::Compare(const Value& other) const {
  // NULL sorts first.
  if (is_null() && other.is_null()) return 0;
  if (is_null()) return -1;
  if (other.is_null()) return 1;

  // Numeric cross-type comparison.
  const bool num_l = is_int64() || is_double();
  const bool num_r = other.is_int64() || other.is_double();
  if (num_l && num_r) {
    if (is_int64() && other.is_int64()) {
      const int64_t a = AsInt64(), b = other.AsInt64();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    const double a = AsDouble(), b = other.AsDouble();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (num_l != num_r) return num_l ? -1 : 1;  // numbers before strings

  const int c = AsString().compare(other.AsString());
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

namespace {

// FNV-1a over the canonical bytes.
uint64_t FnvBytes(const void* data, size_t n, uint64_t h) {
  const auto* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

constexpr uint64_t kFnvSeed = 14695981039346656037ULL;

}  // namespace

uint64_t HashInt64(int64_t v) { return FnvBytes(&v, 8, kFnvSeed ^ 0x11); }

uint64_t HashDouble(double v) {
  // Hash doubles that equal integers identically to the integer to keep
  // join keys consistent across numeric types. The range guard keeps the
  // int64 cast defined; out-of-range doubles cannot equal any int64.
  if (v >= -9223372036854775808.0 && v < 9223372036854775808.0) {
    const auto as_int = static_cast<int64_t>(v);
    if (static_cast<double>(as_int) == v) return HashInt64(as_int);
  }
  return FnvBytes(&v, 8, kFnvSeed ^ 0x22);
}

uint64_t HashString(const std::string& s) {
  return FnvBytes(s.data(), s.size(), kFnvSeed ^ 0x33);
}

uint64_t HashNullValue() { return kFnvSeed; }

uint64_t Value::Hash() const {
  if (is_null()) return HashNullValue();
  if (is_int64()) return HashInt64(AsInt64());
  if (is_double()) return HashDouble(AsDouble());
  return HashString(AsString());
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_int64()) return std::to_string(AsInt64());
  if (is_double()) {
    char buf[32];
    snprintf(buf, sizeof(buf), "%.4f", AsDouble());
    return buf;
  }
  return AsString();
}

void Value::EncodeTo(std::string* out) const {
  if (is_null()) {
    out->push_back(static_cast<char>(kTagNull));
  } else if (is_int64()) {
    out->push_back(static_cast<char>(kTagInt64));
    PutFixed64(out, static_cast<uint64_t>(AsInt64()));
  } else if (is_double()) {
    out->push_back(static_cast<char>(kTagDouble));
    uint64_t bits;
    const double d = AsDouble();
    std::memcpy(&bits, &d, 8);
    PutFixed64(out, bits);
  } else {
    out->push_back(static_cast<char>(kTagString));
    const std::string& s = AsString();
    PutFixed64(out, s.size());
    out->append(s);
  }
}

bool Value::DecodeFrom(const std::string& in, size_t* pos, Value* out) {
  if (*pos >= in.size()) return false;
  const uint8_t tag = static_cast<uint8_t>(in[(*pos)++]);
  switch (tag) {
    case kTagNull:
      *out = Value::Null();
      return true;
    case kTagInt64: {
      uint64_t v;
      if (!GetFixed64(in, pos, &v)) return false;
      *out = Value(static_cast<int64_t>(v));
      return true;
    }
    case kTagDouble: {
      uint64_t bits;
      if (!GetFixed64(in, pos, &bits)) return false;
      double d;
      std::memcpy(&d, &bits, 8);
      *out = Value(d);
      return true;
    }
    case kTagString: {
      uint64_t n;
      if (!GetFixed64(in, pos, &n)) return false;
      if (*pos + n > in.size()) return false;
      *out = Value(in.substr(*pos, n));
      *pos += n;
      return true;
    }
    default:
      return false;
  }
}

}  // namespace htap
