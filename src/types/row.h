// Row: the row-at-a-time tuple representation used by the OLTP path, the
// delta stores, and operator output. The columnar engine converts rows to
// column vectors at merge time.

#ifndef HTAP_TYPES_ROW_H_
#define HTAP_TYPES_ROW_H_

#include <string>
#include <vector>

#include "types/schema.h"
#include "types/value.h"

namespace htap {

/// Primary key type. Composite business keys are packed into 64 bits by the
/// workload layer (see benchlib/keys.h).
using Key = int64_t;

/// A tuple of values. Positional; interpretation requires a Schema.
class Row {
 public:
  Row() = default;
  explicit Row(std::vector<Value> values) : values_(std::move(values)) {}
  Row(std::initializer_list<Value> values) : values_(values) {}

  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  const Value& Get(size_t i) const { return values_[i]; }
  Value& Mutable(size_t i) { return values_[i]; }
  void Set(size_t i, Value v) { values_[i] = std::move(v); }
  void Append(Value v) { values_.push_back(std::move(v)); }

  const std::vector<Value>& values() const { return values_; }

  /// The primary key per the schema.
  Key GetKey(const Schema& schema) const {
    return values_[static_cast<size_t>(schema.pk_index())].AsInt64();
  }

  bool operator==(const Row& other) const { return values_ == other.values_; }

  std::string ToString() const {
    std::string s = "[";
    for (size_t i = 0; i < values_.size(); ++i) {
      if (i) s += ", ";
      s += values_[i].ToString();
    }
    s += "]";
    return s;
  }

  void EncodeTo(std::string* out) const {
    Value(static_cast<int64_t>(values_.size())).EncodeTo(out);
    for (const auto& v : values_) v.EncodeTo(out);
  }

  static bool DecodeFrom(const std::string& in, size_t* pos, Row* out) {
    Value n;
    if (!Value::DecodeFrom(in, pos, &n) || !n.is_int64()) return false;
    const int64_t count = n.AsInt64();
    if (count < 0) return false;
    std::vector<Value> vals;
    vals.reserve(static_cast<size_t>(count));
    for (int64_t i = 0; i < count; ++i) {
      Value v;
      if (!Value::DecodeFrom(in, pos, &v)) return false;
      vals.push_back(std::move(v));
    }
    *out = Row(std::move(vals));
    return true;
  }

  size_t MemoryBytes() const {
    size_t b = sizeof(Row) + values_.capacity() * sizeof(Value);
    for (const auto& v : values_)
      if (v.is_string()) b += v.AsString().capacity();
    return b;
  }

 private:
  std::vector<Value> values_;
};

}  // namespace htap

#endif  // HTAP_TYPES_ROW_H_
