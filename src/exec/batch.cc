#include "exec/batch.h"

#include <numeric>

namespace htap {

namespace {

template <typename T, typename GetFn>
void RefineTyped(CmpOp op, const T& x, const GetFn& get,
                 const ColumnVector& col, std::vector<uint32_t>* sel) {
  const auto run = [&](auto cmp) {
    size_t out = 0;
    for (uint32_t i : *sel) {
      if (col.IsNull(i)) continue;
      if (cmp(get(i), x)) (*sel)[out++] = i;
    }
    sel->resize(out);
  };
  switch (op) {
    case CmpOp::kEq: run([](const T& a, const T& b) { return a == b; }); break;
    case CmpOp::kNe: run([](const T& a, const T& b) { return a != b; }); break;
    case CmpOp::kLt: run([](const T& a, const T& b) { return a < b; }); break;
    case CmpOp::kLe: run([](const T& a, const T& b) { return a <= b; }); break;
    case CmpOp::kGt: run([](const T& a, const T& b) { return a > b; }); break;
    case CmpOp::kGe: run([](const T& a, const T& b) { return a >= b; }); break;
  }
}

/// True when `c` (three-way compare of value vs literal) satisfies op.
bool Keep(int c, CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return c == 0;
    case CmpOp::kNe: return c != 0;
    case CmpOp::kLt: return c < 0;
    case CmpOp::kLe: return c <= 0;
    case CmpOp::kGt: return c > 0;
    case CmpOp::kGe: return c >= 0;
  }
  return false;
}

}  // namespace

ColumnBatch MakeBatch(const Schema& schema, const std::vector<int>& projection,
                      size_t reserve) {
  ColumnBatch b;
  const auto add = [&](size_t c) {
    ColumnVector cv(schema.column(c).type);
    if (reserve > 0) cv.Reserve(reserve);
    b.columns.push_back(std::move(cv));
  };
  if (projection.empty()) {
    b.columns.reserve(schema.num_columns());
    for (size_t c = 0; c < schema.num_columns(); ++c) add(c);
  } else {
    b.columns.reserve(projection.size());
    for (int c : projection) add(static_cast<size_t>(c));
  }
  return b;
}

void FilterBatch(ColumnBatch* batch, int col, CmpOp op, const Value& lit) {
  if (batch->all_active()) {
    batch->sel.resize(batch->rows());
    std::iota(batch->sel.begin(), batch->sel.end(), 0u);
  }
  batch->filtered = true;  // sel is authoritative from here on, even empty
  if (lit.is_null()) {  // comparisons against NULL are false
    batch->sel.clear();
    return;
  }
  const ColumnVector& cv = batch->columns[static_cast<size_t>(col)];
  std::vector<uint32_t>* sel = &batch->sel;

  // Cross-class (numeric vs string) comparisons have one outcome for every
  // non-NULL cell: numbers sort before strings.
  const bool col_numeric = cv.type() != Type::kString;
  const bool lit_numeric = !lit.is_string();
  if (col_numeric != lit_numeric) {
    if (!Keep(col_numeric ? -1 : 1, op)) {
      sel->clear();
      return;
    }
    size_t out = 0;
    for (uint32_t i : *sel)
      if (!cv.IsNull(i)) (*sel)[out++] = i;
    sel->resize(out);
    return;
  }

  switch (cv.type()) {
    case Type::kInt64:
      if (lit.is_int64()) {
        RefineTyped<int64_t>(op, lit.AsInt64(),
                             [&](uint32_t i) { return cv.GetInt64(i); }, cv,
                             sel);
      } else {
        RefineTyped<double>(
            op, lit.AsDouble(),
            [&](uint32_t i) { return static_cast<double>(cv.GetInt64(i)); },
            cv, sel);
      }
      return;
    case Type::kDouble:
      RefineTyped<double>(op, lit.AsDouble(),
                          [&](uint32_t i) { return cv.GetDouble(i); }, cv,
                          sel);
      return;
    case Type::kString:
      RefineTyped<std::string>(
          op, lit.AsString(),
          [&](uint32_t i) -> const std::string& { return cv.GetString(i); },
          cv, sel);
      return;
  }
}

size_t TotalActiveRows(const std::vector<ColumnBatch>& batches) {
  size_t total = 0;
  for (const ColumnBatch& b : batches) total += b.active();
  return total;
}

std::vector<ColumnBatch> RowsToBatches(const std::vector<Row>& rows,
                                       const Schema& schema,
                                       const std::vector<int>& projection,
                                       size_t batch_rows) {
  std::vector<ColumnBatch> out;
  const size_t cap = batch_rows == 0 ? rows.size() : batch_rows;
  for (size_t lo = 0; lo < rows.size(); lo += std::max<size_t>(cap, 1)) {
    const size_t hi = std::min(rows.size(), lo + std::max<size_t>(cap, 1));
    ColumnBatch b = MakeBatch(schema, projection, hi - lo);
    for (size_t i = lo; i < hi; ++i)
      for (size_t c = 0; c < b.columns.size(); ++c)
        b.columns[c].AppendValue(rows[i].Get(c));
    out.push_back(std::move(b));
  }
  return out;
}

std::vector<Row> BatchesToRows(const std::vector<ColumnBatch>& batches) {
  std::vector<Row> out;
  out.reserve(TotalActiveRows(batches));
  for (const ColumnBatch& b : batches) {
    b.ForEachActive([&](size_t i) {
      std::vector<Value> vals;
      vals.reserve(b.columns.size());
      for (const ColumnVector& c : b.columns) vals.push_back(c.GetValue(i));
      out.emplace_back(std::move(vals));
    });
  }
  return out;
}

}  // namespace htap
