// The block executor: scans (row, columnar, HTAP delta+column union),
// hash join, hash aggregation, sort/limit, projection.
//
// Operators materialize their full output — at the scale of this library the
// simplicity is worth more than pipelining, and the benchmark comparisons
// (row vs column vs hybrid access paths) are unaffected because all paths
// share the same materialization discipline.
//
// Scans, aggregation, and the hash join are morsel-driven when given an
// ExecContext with a thread pool: one morsel per row group (column scans),
// key range (row scans), radix partition (join build), or input chunk (join
// probe), per-worker partial state, deterministic merge. See DESIGN.md
// "Intra-query parallelism".

#ifndef HTAP_EXEC_EXECUTOR_H_
#define HTAP_EXEC_EXECUTOR_H_

#include <vector>

#include "columnar/column_table.h"
#include "common/thread_pool.h"
#include "delta/delta.h"
#include "exec/expression.h"
#include "storage/mvcc_row_store.h"
#include "types/row.h"
#include "types/schema.h"

namespace htap {

/// Execution resources for the parallel operators. The default (no pool)
/// runs every operator serially; engines hand their AP morsel pool here to
/// enable intra-query parallelism. The pool is shared across concurrent
/// queries — each operator fans out through its own TaskGroup, so waiting
/// for one query's morsels never blocks on another's.
struct ExecContext {
  ThreadPool* pool = nullptr;   // AP morsel pool; null = serial execution
  size_t max_parallelism = 1;   // target worker count for morsel fan-out

  /// Serial fallback for the partitioned join: builds smaller than this run
  /// the classic single-table join (partitioning a tiny build side costs
  /// more than it wins). Mirrors DatabaseOptions::parallel_join_min_build_rows.
  size_t min_parallel_join_build = 4096;

  /// Test seam: join key hashes are ANDed with this mask before table
  /// insertion and partition selection. Narrow masks force hash collisions
  /// onto the key-confirm path; production code leaves it all-ones.
  uint64_t join_hash_mask = ~0ull;

  bool parallel() const { return pool != nullptr && max_parallelism > 1; }
};

/// Counters a scan fills in; benchmarks and the optimizer's feedback loop
/// read these.
struct ScanStats {
  size_t groups_total = 0;
  size_t groups_skipped = 0;   // zone-map pruning
  size_t main_rows_emitted = 0;
  size_t delta_rows_emitted = 0;
  size_t delta_entries_read = 0;
};

/// A materialized query result.
struct QueryResult {
  Schema schema;
  std::vector<Row> rows;
  ScanStats stats;

  std::string ToString(size_t max_rows = 20) const;
};

/// Scans an MVCC row store at a snapshot. `projection` lists output columns
/// (empty = all).
std::vector<Row> ScanRowStore(const MvccRowStore& store, const Snapshot& snap,
                              const Predicate& pred,
                              const std::vector<int>& projection);

/// Parallel variant: range-partitions the key space into one morsel per
/// worker and merges per-range output in key-range order, so the result
/// equals the serial scan exactly (key order preserved).
std::vector<Row> ScanRowStore(const MvccRowStore& store, const Snapshot& snap,
                              const Predicate& pred,
                              const std::vector<int>& projection,
                              const ExecContext& exec);

/// The HTAP scan: main column store unioned with a delta store at snapshot
/// CSN `snapshot`. Pass delta == nullptr for a pure column scan (the
/// SingleStore-style technique — fast, but blind to unmerged changes).
///
/// Correctness contract (tested as the delta/column-union invariant): the
/// result equals scanning a row-store snapshot at `snapshot`, provided
/// every change with csn <= snapshot is in the column store or the delta.
std::vector<Row> ScanHtap(const ColumnTable& table, const DeltaReader* delta,
                          CSN snapshot, const Predicate& pred,
                          const std::vector<int>& projection,
                          ScanStats* stats = nullptr);

/// Morsel-driven variant: each row group is one morsel (plus one morsel for
/// the delta-override partition), fanned out across `exec.pool` and merged
/// in row-group order — output is byte-identical to the serial scan.
std::vector<Row> ScanHtap(const ColumnTable& table, const DeltaReader* delta,
                          CSN snapshot, const Predicate& pred,
                          const std::vector<int>& projection,
                          const ExecContext& exec, ScanStats* stats);

/// Counters the hash join fills in; benchmarks and EXPLAIN read these.
struct JoinStats {
  size_t build_rows = 0;
  size_t probe_rows = 0;
  size_t output_rows = 0;
  size_t partitions = 1;   // radix partition count (1 = unpartitioned build)
  bool parallel = false;   // took the radix-partitioned path
  double seconds = 0;      // wall time inside the operator
};

/// Hash inner-equi-join: emits left ++ right rows. Builds on `right`.
/// Output order is nested-loop order — left rows in input order, and for
/// each left row its matches in right (build) input order.
std::vector<Row> HashJoin(const std::vector<Row>& left,
                          const std::vector<Row>& right, int left_col,
                          int right_col);

/// Radix-partitioned parallel variant: build rows scatter into partitions
/// by key-hash radix (one morsel per input chunk, per-chunk buffers merged
/// in chunk order), each partition's table builds as an independent morsel,
/// and probe morsels stream left chunks against the matching partition with
/// per-morsel output concatenated in morsel order — byte-identical to the
/// serial join. Falls back to the serial path below
/// `exec.min_parallel_join_build` build rows.
std::vector<Row> HashJoin(const std::vector<Row>& left,
                          const std::vector<Row>& right, int left_col,
                          int right_col, const ExecContext& exec,
                          JoinStats* stats = nullptr);

/// Hash aggregation. With empty `group_cols`, emits one global row. Output
/// row layout: group values then one value per AggSpec.
std::vector<Row> HashAggregate(const std::vector<Row>& rows,
                               const std::vector<int>& group_cols,
                               const std::vector<AggSpec>& aggs);

/// Parallel variant: workers build partial hash tables over disjoint row
/// ranges; a final single-threaded combine merges them (group output order
/// is unspecified, as with the serial variant).
std::vector<Row> HashAggregate(const std::vector<Row>& rows,
                               const std::vector<int>& group_cols,
                               const std::vector<AggSpec>& aggs,
                               const ExecContext& exec);

/// Sorts by `col` (ascending unless `desc`), keeps first `limit` rows
/// (limit == 0 means all).
void SortLimit(std::vector<Row>* rows, int col, bool desc, size_t limit);

/// Keeps only `projection` columns of each row.
std::vector<Row> Project(const std::vector<Row>& rows,
                         const std::vector<int>& projection);

}  // namespace htap

#endif  // HTAP_EXEC_EXECUTOR_H_
