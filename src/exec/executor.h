// The block executor: scans (row, columnar, HTAP delta+column union),
// hash join, hash aggregation, sort/limit, projection.
//
// Operators materialize their full output — at the scale of this library the
// simplicity is worth more than pipelining, and the benchmark comparisons
// (row vs column vs hybrid access paths) are unaffected because all paths
// share the same materialization discipline.
//
// Map of this header (each operator links its DESIGN.md section):
//
//   ScanRowStore / ScanHtap    serial + morsel-driven scans ....... DESIGN §7
//   HashAggregate              serial + partial-table parallel .... DESIGN §7
//   HashJoinPairs / HashJoin   hash equi-join; three regimes ...... DESIGN §§8–9
//     - serial: one chained table (small builds)
//     - radix-partitioned parallel: scatter/build/probe morsels
//     - grace (out-of-core): oversized partitions spill both sides' join
//       keys as columnar (index, key) pages to temporary on-disk runs
//       (src/storage/spill_file.h) and join partition-at-a-time,
//       recursively re-partitioning skewed partitions; triggered by
//       ExecContext::join_spill_budget_bytes. Payload columns never spill
//       — materialization happens after the pair set is final (§13).
//   MaterializeJoinPairs       (probe,build) index pairs -> rows
//   SortLimit / Project        output shaping
//
// Scans, aggregation, and the hash join are morsel-driven when given an
// ExecContext with a thread pool: one morsel per row group (column scans),
// key range (row scans), radix partition (join build), or input chunk (join
// probe), per-worker partial state, deterministic merge.
//
// Determinism contract: every operator here returns output byte-identical
// to its serial execution at any thread count, and the joins additionally
// match a nested-loop reference (probe rows in input order; per probe row,
// matches in build-input order). Build-side and join-order selection live
// one layer up (src/opt/join_planner.h, applied by core/query_runner.cc),
// which restores the same nested-loop order after reordering.

#ifndef HTAP_EXEC_EXECUTOR_H_
#define HTAP_EXEC_EXECUTOR_H_

#include <string>
#include <utility>
#include <vector>

#include "columnar/column_table.h"
#include "common/thread_pool.h"
#include "delta/delta.h"
#include "exec/batch.h"
#include "exec/expression.h"
#include "storage/mvcc_row_store.h"
#include "types/row.h"
#include "types/schema.h"

namespace htap {

/// Execution resources for the parallel operators. The default (no pool)
/// runs every operator serially; engines hand their AP morsel pool here to
/// enable intra-query parallelism. The pool is shared across concurrent
/// queries — each operator fans out through its own TaskGroup, so waiting
/// for one query's morsels never blocks on another's.
struct ExecContext {
  ThreadPool* pool = nullptr;   // AP morsel pool; null = serial execution
  size_t max_parallelism = 1;   // target worker count for morsel fan-out

  /// Serial fallback for the partitioned join: builds smaller than this run
  /// the classic single-table join (partitioning a tiny build side costs
  /// more than it wins). Mirrors DatabaseOptions::parallel_join_min_build_rows.
  size_t min_parallel_join_build = 4096;

  /// Test seam: join key hashes are ANDed with this mask before table
  /// insertion and partition selection. Narrow masks force hash collisions
  /// onto the key-confirm path (and, with the low radix bits zeroed, funnel
  /// every build row into one partition to exercise the grace join's
  /// recursive re-partitioning); production code leaves it all-ones.
  uint64_t join_hash_mask = ~0ull;

  /// Grace-join spill budget: when the estimated build-side footprint of a
  /// hash join exceeds this, the join radix-partitions (even without a
  /// pool) and spills partitions that do not fit to temporary on-disk runs,
  /// joining them partition-at-a-time (DESIGN.md §9). 0 = unlimited — never
  /// spill. Mirrors DatabaseOptions::join_spill_budget_bytes.
  size_t join_spill_budget_bytes = 0;

  /// Directory for spill runs (htap-spill-*). Empty = DefaultSpillDir().
  std::string join_spill_dir;

  /// Plan-time statistics inputs (DESIGN.md §10). `committed_csn` is the
  /// engine's commit frontier at query start; catalog statistics whose
  /// as_of_csn trails it by more than `stats_staleness_csns` commits are
  /// considered stale, and the join planner falls back to its
  /// execution-time sampling path. committed_csn == 0 means "unknown
  /// frontier" and disables the staleness check (direct RunPlan callers).
  CSN committed_csn = 0;
  uint64_t stats_staleness_csns = 65536;

  /// Rows per ColumnBatch emitted by the vectorized scan (DESIGN.md §12).
  /// Mirrors DatabaseOptions::vectorized_batch_rows; 0 = one batch per row
  /// group.
  size_t batch_rows = 4096;

  /// Batch-native joins with late materialization (DESIGN.md §13). Mirrors
  /// DatabaseOptions::vectorized_join; the query runner additionally
  /// requires every join input to scan as batches and the planner's
  /// materialization cost model to prefer the late regime.
  bool vectorized_join = true;

  bool parallel() const { return pool != nullptr && max_parallelism > 1; }
};

/// Counters a scan fills in; benchmarks and the optimizer's feedback loop
/// read these.
struct ScanStats {
  size_t groups_total = 0;
  size_t groups_skipped = 0;   // zone-map pruning
  size_t main_rows_emitted = 0;
  size_t delta_rows_emitted = 0;
  size_t delta_entries_read = 0;
  /// Main-store positions that entered predicate evaluation (live and not
  /// delta-overridden, in groups the zone maps could not skip). The ratio
  /// main_rows_emitted / rows_considered is the scan's observed
  /// selectivity — the optimizer's feedback signal.
  size_t rows_considered = 0;
};

/// A materialized query result.
struct QueryResult {
  Schema schema;
  std::vector<Row> rows;
  ScanStats stats;

  std::string ToString(size_t max_rows = 20) const;
};

/// Scans an MVCC row store at a snapshot. `projection` lists output columns
/// (empty = all).
std::vector<Row> ScanRowStore(const MvccRowStore& store, const Snapshot& snap,
                              const Predicate& pred,
                              const std::vector<int>& projection);

/// Parallel variant: range-partitions the key space into one morsel per
/// worker and merges per-range output in key-range order, so the result
/// equals the serial scan exactly (key order preserved).
std::vector<Row> ScanRowStore(const MvccRowStore& store, const Snapshot& snap,
                              const Predicate& pred,
                              const std::vector<int>& projection,
                              const ExecContext& exec);

/// The HTAP scan: main column store unioned with a delta store at snapshot
/// CSN `snapshot`. Pass delta == nullptr for a pure column scan (the
/// SingleStore-style technique — fast, but blind to unmerged changes).
///
/// Correctness contract (tested as the delta/column-union invariant): the
/// result equals scanning a row-store snapshot at `snapshot`, provided
/// every change with csn <= snapshot is in the column store or the delta.
std::vector<Row> ScanHtap(const ColumnTable& table, const DeltaReader* delta,
                          CSN snapshot, const Predicate& pred,
                          const std::vector<int>& projection,
                          ScanStats* stats = nullptr);

/// Morsel-driven variant: each row group is one morsel (plus one morsel for
/// the delta-override partition), fanned out across `exec.pool` and merged
/// in row-group order — output is byte-identical to the serial scan.
std::vector<Row> ScanHtap(const ColumnTable& table, const DeltaReader* delta,
                          CSN snapshot, const Predicate& pred,
                          const std::vector<int>& projection,
                          const ExecContext& exec, ScanStats* stats);

/// The vectorized HTAP scan (DESIGN.md §12): identical visibility and
/// predicate semantics to ScanHtap, but predicates evaluate directly on the
/// encoded segments (src/exec/segment_filter.h) and survivors gather into
/// compacted ColumnBatches of at most exec.batch_rows rows instead of
/// materializing Row objects. Batches arrive in row-group order with the
/// delta-override partition last, so BatchesToRows(result) is byte-identical
/// to ScanHtap's output — serial or morsel-parallel, at any thread count.
/// Delta rows must match the table schema's column types (the same
/// invariant the merge path relies on).
std::vector<ColumnBatch> ScanHtapBatches(const ColumnTable& table,
                                         const DeltaReader* delta,
                                         CSN snapshot, const Predicate& pred,
                                         const std::vector<int>& projection,
                                         const ExecContext& exec,
                                         ScanStats* stats = nullptr);

/// Counters the hash join fills in; benchmarks, tests, and EXPLAIN read
/// these. The spill_* group is nonzero only when the grace path ran
/// (ExecContext::join_spill_budget_bytes exceeded).
struct JoinStats {
  size_t build_rows = 0;
  size_t probe_rows = 0;
  size_t output_rows = 0;
  size_t partitions = 1;   // radix partition count (1 = unpartitioned build)
  bool parallel = false;   // fanned morsels onto an AP pool
  bool build_swapped = false;  // planner built on the left side (query_runner)
  size_t partitions_spilled = 0;  // top-level partitions that went to disk
  size_t spill_rows_written = 0;  // key records written across both sides
  size_t spill_bytes_written = 0;
  size_t spill_bytes_read = 0;
  size_t spill_pages_written = 0;  // columnar key pages (DESIGN.md §13)
  size_t spill_pages_read = 0;
  size_t spill_max_recursion = 0;  // deepest re-partition level (0 = none)
  /// Batch-pipeline counters, filled by the query runner's batch join
  /// (DESIGN.md §13), zero on the row path: input ColumnBatches consumed
  /// across all join inputs, and output rows whose payload columns were
  /// gathered only after every join filter ran (late materialization).
  size_t join_batches = 0;
  size_t rows_late_materialized = 0;
  double seconds = 0;      // wall time inside the operator
};

/// One join match: (probe row index, build row index). The pair vector of a
/// join is always in nested-loop order — probe index ascending, and within
/// one probe index, build index ascending (= build input order).
using JoinPairs = std::vector<std::pair<uint32_t, uint32_t>>;

/// Hash inner-equi-join core: probes `probe` against a table built on
/// `build`, returning matching index pairs (NULL keys never match). Picks
/// the serial, radix-partitioned parallel, or grace (spilling) regime from
/// `exec` — see the header comment. The pair order is identical across all
/// regimes and thread counts.
JoinPairs HashJoinPairs(const std::vector<Row>& probe,
                        const std::vector<Row>& build, int probe_col,
                        int build_col, const ExecContext& exec,
                        JoinStats* stats = nullptr);

/// One join input's key column, extracted in a single vectorized pass:
/// typed values plus precomputed Value::Hash-consistent hashes. Invalid
/// slots (NULL keys, or positions past a short row) never match. When a
/// row-extracted column holds a mix of value types, it falls back to boxed
/// Values — equality then runs through Value::Compare, exactly as the
/// row-at-a-time join did.
struct JoinKeyColumn {
  Type type = Type::kInt64;
  bool mixed = false;             // boxed fallback active
  std::vector<int64_t> ints;      // type == kInt64, !mixed
  std::vector<double> doubles;    // type == kDouble, !mixed
  std::vector<std::string> strs;  // type == kString, !mixed
  std::vector<Value> boxed;       // mixed only
  std::vector<uint64_t> hashes;   // unmasked; meaningless at invalid slots
  std::vector<uint8_t> valid;

  size_t size() const { return valid.size(); }
  Value GetValue(size_t i) const;
};

/// Key equality between two extracted columns, matching Value::operator==
/// (cross-type numeric equality included). Both slots must be valid.
bool JoinKeyEquals(const JoinKeyColumn& a, size_t i, const JoinKeyColumn& b,
                   size_t j);

/// Extracts the join key column from rows / from scan batches.
JoinKeyColumn ExtractJoinKeys(const std::vector<Row>& rows, int col);
JoinKeyColumn ExtractJoinKeys(const std::vector<ColumnBatch>& batches,
                              int col);

/// The join core over pre-extracted keys: serial, radix-partitioned
/// parallel, or grace (spilling) regime. The grace path triggers when
/// exec.join_spill_budget_bytes is set and the build side's estimated
/// footprint exceeds it; `build_weights` (parallel to `build`, optional)
/// supplies per-slot footprints — callers joining rows pass Row::MemoryBytes
/// so budget semantics match the historical row spill, batch callers pass
/// payload estimates (EstimateBatchRowBytes), and without weights the key
/// column's own footprint is used. Spilled partitions hold only (input
/// index, key) column-slice pages (src/storage/spill_file.h) — payloads are
/// late-materialized after the join, so they never touch disk. Pair order
/// is the same nested-loop order in every regime.
JoinPairs HashJoinPairsKeys(const JoinKeyColumn& probe,
                            const JoinKeyColumn& build,
                            const ExecContext& exec,
                            JoinStats* stats = nullptr,
                            const std::vector<size_t>* build_weights = nullptr);

/// Materializes join pairs as concatenated rows, one per pair, in pair
/// order: probe ++ build columns, or build ++ probe when
/// `build_side_first` (used by the planner's build-side swap to restore
/// the plan's left ++ right layout). Parallel over `exec` when available.
std::vector<Row> MaterializeJoinPairs(const std::vector<Row>& probe,
                                      const std::vector<Row>& build,
                                      const JoinPairs& pairs,
                                      bool build_side_first = false,
                                      const ExecContext& exec = ExecContext{});

/// Hash inner-equi-join: emits left ++ right rows. Builds on `right`.
/// Output order is nested-loop order — left rows in input order, and for
/// each left row its matches in right (build) input order.
std::vector<Row> HashJoin(const std::vector<Row>& left,
                          const std::vector<Row>& right, int left_col,
                          int right_col);

/// As above with execution resources: radix-partitioned parallel morsels
/// when `exec` has a pool (build rows ≥ exec.min_parallel_join_build), and
/// the out-of-core grace path when exec.join_spill_budget_bytes is set and
/// the build side exceeds it — byte-identical output in every regime.
std::vector<Row> HashJoin(const std::vector<Row>& left,
                          const std::vector<Row>& right, int left_col,
                          int right_col, const ExecContext& exec,
                          JoinStats* stats = nullptr);

/// Estimated in-memory footprint of `rows` (sum of Row::MemoryBytes) — the
/// quantity compared against join_spill_budget_bytes.
size_t EstimateRowsBytes(const std::vector<Row>& rows);

/// Per-active-row footprint estimates for batch join inputs, one entry per
/// dense active position in batch order — the batch pipeline's equivalent
/// of Row::MemoryBytes for grace-budget accounting (same formula, so a
/// given budget spills the batch and row regimes alike).
std::vector<size_t> EstimateBatchRowBytes(
    const std::vector<ColumnBatch>& batches);

/// Hash aggregation. With empty `group_cols`, emits one global row. Output
/// row layout: group values then one value per AggSpec.
std::vector<Row> HashAggregate(const std::vector<Row>& rows,
                               const std::vector<int>& group_cols,
                               const std::vector<AggSpec>& aggs);

/// Parallel variant: workers build partial hash tables over disjoint row
/// ranges; a final single-threaded combine merges them (group output order
/// is unspecified, as with the serial variant).
std::vector<Row> HashAggregate(const std::vector<Row>& rows,
                               const std::vector<int>& group_cols,
                               const std::vector<AggSpec>& aggs,
                               const ExecContext& exec);

/// Batch aggregation: groups and aggregates directly over column batches
/// under their selection vectors — no row materialization. Group hashing
/// and aggregate-state updates use the typed hash/compare primitives, which
/// match the Value-based ones bit for bit, so the output rows equal
/// HashAggregate(BatchesToRows(batches), ...) exactly (same unspecified
/// group order semantics). Parallel over whole batches when exec has a pool.
std::vector<Row> HashAggregate(const std::vector<ColumnBatch>& batches,
                               const std::vector<int>& group_cols,
                               const std::vector<AggSpec>& aggs,
                               const ExecContext& exec);

/// Sorts by `col` (ascending unless `desc`), keeps first `limit` rows
/// (limit == 0 means all).
void SortLimit(std::vector<Row>* rows, int col, bool desc, size_t limit);

/// Keeps only `projection` columns of each row.
std::vector<Row> Project(const std::vector<Row>& rows,
                         const std::vector<int>& projection);

}  // namespace htap

#endif  // HTAP_EXEC_EXECUTOR_H_
