// The block executor: scans (row, columnar, HTAP delta+column union),
// hash join, hash aggregation, sort/limit, projection.
//
// Operators materialize their full output — at the scale of this library the
// simplicity is worth more than pipelining, and the benchmark comparisons
// (row vs column vs hybrid access paths) are unaffected because all paths
// share the same materialization discipline.
//
// Scans and aggregation are morsel-driven when given an ExecContext with a
// thread pool: one morsel per row group (column scans) or key range (row
// scans), per-worker partial state, deterministic merge. See DESIGN.md
// "Intra-query parallelism".

#ifndef HTAP_EXEC_EXECUTOR_H_
#define HTAP_EXEC_EXECUTOR_H_

#include <vector>

#include "columnar/column_table.h"
#include "common/thread_pool.h"
#include "delta/delta.h"
#include "exec/expression.h"
#include "storage/mvcc_row_store.h"
#include "types/row.h"
#include "types/schema.h"

namespace htap {

/// Execution resources for the parallel operators. The default (no pool)
/// runs every operator serially; engines hand their AP morsel pool here to
/// enable intra-query parallelism. The pool is shared across concurrent
/// queries — each operator fans out through its own TaskGroup, so waiting
/// for one query's morsels never blocks on another's.
struct ExecContext {
  ThreadPool* pool = nullptr;   // AP scan pool; null = serial execution
  size_t max_parallelism = 1;   // target worker count for morsel fan-out

  bool parallel() const { return pool != nullptr && max_parallelism > 1; }
};

/// Counters a scan fills in; benchmarks and the optimizer's feedback loop
/// read these.
struct ScanStats {
  size_t groups_total = 0;
  size_t groups_skipped = 0;   // zone-map pruning
  size_t main_rows_emitted = 0;
  size_t delta_rows_emitted = 0;
  size_t delta_entries_read = 0;
};

/// A materialized query result.
struct QueryResult {
  Schema schema;
  std::vector<Row> rows;
  ScanStats stats;

  std::string ToString(size_t max_rows = 20) const;
};

/// Scans an MVCC row store at a snapshot. `projection` lists output columns
/// (empty = all).
std::vector<Row> ScanRowStore(const MvccRowStore& store, const Snapshot& snap,
                              const Predicate& pred,
                              const std::vector<int>& projection);

/// Parallel variant: range-partitions the key space into one morsel per
/// worker and merges per-range output in key-range order, so the result
/// equals the serial scan exactly (key order preserved).
std::vector<Row> ScanRowStore(const MvccRowStore& store, const Snapshot& snap,
                              const Predicate& pred,
                              const std::vector<int>& projection,
                              const ExecContext& exec);

/// The HTAP scan: main column store unioned with a delta store at snapshot
/// CSN `snapshot`. Pass delta == nullptr for a pure column scan (the
/// SingleStore-style technique — fast, but blind to unmerged changes).
///
/// Correctness contract (tested as the delta/column-union invariant): the
/// result equals scanning a row-store snapshot at `snapshot`, provided
/// every change with csn <= snapshot is in the column store or the delta.
std::vector<Row> ScanHtap(const ColumnTable& table, const DeltaReader* delta,
                          CSN snapshot, const Predicate& pred,
                          const std::vector<int>& projection,
                          ScanStats* stats = nullptr);

/// Morsel-driven variant: each row group is one morsel (plus one morsel for
/// the delta-override partition), fanned out across `exec.pool` and merged
/// in row-group order — output is byte-identical to the serial scan.
std::vector<Row> ScanHtap(const ColumnTable& table, const DeltaReader* delta,
                          CSN snapshot, const Predicate& pred,
                          const std::vector<int>& projection,
                          const ExecContext& exec, ScanStats* stats);

/// Hash inner-equi-join: emits left ++ right rows. Builds on `right`.
std::vector<Row> HashJoin(const std::vector<Row>& left,
                          const std::vector<Row>& right, int left_col,
                          int right_col);

/// Hash aggregation. With empty `group_cols`, emits one global row. Output
/// row layout: group values then one value per AggSpec.
std::vector<Row> HashAggregate(const std::vector<Row>& rows,
                               const std::vector<int>& group_cols,
                               const std::vector<AggSpec>& aggs);

/// Parallel variant: workers build partial hash tables over disjoint row
/// ranges; a final single-threaded combine merges them (group output order
/// is unspecified, as with the serial variant).
std::vector<Row> HashAggregate(const std::vector<Row>& rows,
                               const std::vector<int>& group_cols,
                               const std::vector<AggSpec>& aggs,
                               const ExecContext& exec);

/// Sorts by `col` (ascending unless `desc`), keeps first `limit` rows
/// (limit == 0 means all).
void SortLimit(std::vector<Row>* rows, int col, bool desc, size_t limit);

/// Keeps only `projection` columns of each row.
std::vector<Row> Project(const std::vector<Row>& rows,
                         const std::vector<int>& projection);

}  // namespace htap

#endif  // HTAP_EXEC_EXECUTOR_H_
