// The block executor: scans (row, columnar, HTAP delta+column union),
// hash join, hash aggregation, sort/limit, projection.
//
// Operators materialize their full output — at the scale of this library the
// simplicity is worth more than pipelining, and the benchmark comparisons
// (row vs column vs hybrid access paths) are unaffected because all paths
// share the same materialization discipline.

#ifndef HTAP_EXEC_EXECUTOR_H_
#define HTAP_EXEC_EXECUTOR_H_

#include <vector>

#include "columnar/column_table.h"
#include "delta/delta.h"
#include "exec/expression.h"
#include "storage/mvcc_row_store.h"
#include "types/row.h"
#include "types/schema.h"

namespace htap {

/// Counters a scan fills in; benchmarks and the optimizer's feedback loop
/// read these.
struct ScanStats {
  size_t groups_total = 0;
  size_t groups_skipped = 0;   // zone-map pruning
  size_t main_rows_emitted = 0;
  size_t delta_rows_emitted = 0;
  size_t delta_entries_read = 0;
};

/// A materialized query result.
struct QueryResult {
  Schema schema;
  std::vector<Row> rows;
  ScanStats stats;

  std::string ToString(size_t max_rows = 20) const;
};

/// Scans an MVCC row store at a snapshot. `projection` lists output columns
/// (empty = all).
std::vector<Row> ScanRowStore(const MvccRowStore& store, const Snapshot& snap,
                              const Predicate& pred,
                              const std::vector<int>& projection);

/// The HTAP scan: main column store unioned with a delta store at snapshot
/// CSN `snapshot`. Pass delta == nullptr for a pure column scan (the
/// SingleStore-style technique — fast, but blind to unmerged changes).
///
/// Correctness contract (tested as the delta/column-union invariant): the
/// result equals scanning a row-store snapshot at `snapshot`, provided
/// every change with csn <= snapshot is in the column store or the delta.
std::vector<Row> ScanHtap(const ColumnTable& table, const DeltaReader* delta,
                          CSN snapshot, const Predicate& pred,
                          const std::vector<int>& projection,
                          ScanStats* stats = nullptr);

/// Hash inner-equi-join: emits left ++ right rows. Builds on `right`.
std::vector<Row> HashJoin(const std::vector<Row>& left,
                          const std::vector<Row>& right, int left_col,
                          int right_col);

/// Hash aggregation. With empty `group_cols`, emits one global row. Output
/// row layout: group values then one value per AggSpec.
std::vector<Row> HashAggregate(const std::vector<Row>& rows,
                               const std::vector<int>& group_cols,
                               const std::vector<AggSpec>& aggs);

/// Sorts by `col` (ascending unless `desc`), keeps first `limit` rows
/// (limit == 0 means all).
void SortLimit(std::vector<Row>* rows, int col, bool desc, size_t limit);

/// Keeps only `projection` columns of each row.
std::vector<Row> Project(const std::vector<Row>& rows,
                         const std::vector<int>& projection);

}  // namespace htap

#endif  // HTAP_EXEC_EXECUTOR_H_
