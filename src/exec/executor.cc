#include "exec/executor.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdio>
#include <limits>
#include <memory>
#include <unordered_map>
#include <utility>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/status.h"
#include "exec/segment_filter.h"
#include "storage/spill_file.h"

namespace htap {

namespace {

Row ProjectRow(const Row& row, const std::vector<int>& projection) {
  if (projection.empty()) return row;
  Row out;
  for (int c : projection) out.Append(row.Get(static_cast<size_t>(c)));
  return out;
}

/// Read-only state shared by every morsel of one HTAP scan.
struct HtapScanShared {
  const Predicate* pred;
  const std::vector<int>* projection;
  const std::unordered_map<Key, const DeltaEntry*>* overrides;
};

/// Computes one row group's surviving selection: live, non-overridden
/// positions that pass the predicate. Comparison conjuncts evaluate
/// directly on the encoded segments (exec/segment_filter.h) — code-space
/// dictionary compares, per-run RLE, zone-map-pruned FOR — and anything
/// non-conjunctive falls back to row-at-a-time EvalColumns over the
/// survivors. Returns false when zone maps skip the whole group. The row
/// and batch scans share this, so their keep/drop decisions are identical
/// by construction.
bool ComputeGroupSelection(const RowGroup& g, const HtapScanShared& s,
                           std::vector<uint32_t>* sel, ScanStats* st) {
  const Predicate& pred = *s.pred;
  if (pred.CanSkipGroup(g.columns)) {
    ++st->groups_skipped;
    return false;
  }
  // Initial selection: live, non-overridden positions.
  sel->clear();
  sel->reserve(g.num_rows);
  const bool any_deleted = g.deleted.AnySet();
  const auto& overrides = *s.overrides;
  for (uint32_t i = 0; i < g.num_rows; ++i) {
    if (any_deleted && g.deleted.Test(i)) continue;
    if (!overrides.empty() && overrides.count(g.keys[i]) != 0) continue;
    sel->push_back(i);
  }
  st->rows_considered += sel->size();
  // Apply conjuncts column-at-a-time; non-conjunctive parts row-at-a-time.
  bool generic_needed = false;
  for (const Predicate* conj : pred.Conjuncts()) {
    if (conj->kind() == Predicate::Kind::kCompare) {
      const auto col = static_cast<size_t>(conj->column());
      FilterSegmentSelection(g.columns[col], conj->op(), conj->literal(),
                             sel);
    } else {
      generic_needed = true;
    }
  }
  if (generic_needed) {
    size_t o = 0;
    for (uint32_t i : *sel)
      if (pred.EvalColumns(g.columns, i)) (*sel)[o++] = i;
    sel->resize(o);
  }
  return true;
}

/// Scans one row group (one morsel) into `out`/`st`. Caller must hold the
/// table's scan latch shared.
void ScanGroup(const RowGroup& g, const HtapScanShared& s,
               std::vector<Row>* out, ScanStats* st) {
  std::vector<uint32_t> sel;
  if (!ComputeGroupSelection(g, s, &sel, st)) return;
  // Materialize the projection.
  const std::vector<int>& projection = *s.projection;
  for (uint32_t i : sel) {
    Row r;
    if (projection.empty()) {
      for (const auto& col : g.columns) r.Append(col.Get(i));
    } else {
      for (int c : projection)
        r.Append(g.columns[static_cast<size_t>(c)].Get(i));
    }
    out->push_back(std::move(r));
    ++st->main_rows_emitted;
  }
}

/// Batch variant of ScanGroup: gathers the surviving selection into
/// compacted ColumnBatches of at most `batch_rows` rows (0 = whole group),
/// typed per-encoding gathers, no Value boxing.
void ScanGroupBatches(const RowGroup& g, const HtapScanShared& s,
                      size_t batch_rows, std::vector<ColumnBatch>* out,
                      ScanStats* st) {
  std::vector<uint32_t> sel;
  if (!ComputeGroupSelection(g, s, &sel, st)) return;
  if (sel.empty()) return;
  const std::vector<int>& projection = *s.projection;
  const size_t bsz = batch_rows == 0 ? sel.size() : batch_rows;
  for (size_t lo = 0; lo < sel.size(); lo += bsz) {
    const size_t n = std::min(bsz, sel.size() - lo);
    const std::vector<uint32_t> slice(sel.begin() + static_cast<long>(lo),
                                      sel.begin() + static_cast<long>(lo + n));
    ColumnBatch b;
    const auto gather = [&](size_t c) {
      ColumnVector cv(g.columns[c].type());
      cv.Reserve(n);
      GatherSegment(g.columns[c], slice, &cv);
      b.columns.push_back(std::move(cv));
    };
    if (projection.empty()) {
      b.columns.reserve(g.columns.size());
      for (size_t c = 0; c < g.columns.size(); ++c) gather(c);
    } else {
      b.columns.reserve(projection.size());
      for (int c : projection) gather(static_cast<size_t>(c));
    }
    st->main_rows_emitted += n;
    out->push_back(std::move(b));
  }
}

}  // namespace

std::string QueryResult::ToString(size_t max_rows) const {
  std::string s;
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    if (i) s += " | ";
    s += schema.column(i).name;
  }
  s += "\n";
  for (size_t r = 0; r < rows.size() && r < max_rows; ++r) {
    for (size_t i = 0; i < rows[r].size(); ++i) {
      if (i) s += " | ";
      s += rows[r].Get(i).ToString();
    }
    s += "\n";
  }
  if (rows.size() > max_rows)
    s += "... (" + std::to_string(rows.size()) + " rows total)\n";
  return s;
}

std::vector<Row> ScanRowStore(const MvccRowStore& store, const Snapshot& snap,
                              const Predicate& pred,
                              const std::vector<int>& projection) {
  std::vector<Row> out;
  store.Scan(snap, [&](Key, const Row& row) {
    if (pred.Eval(row)) out.push_back(ProjectRow(row, projection));
    return true;
  });
  return out;
}

std::vector<Row> ScanRowStore(const MvccRowStore& store, const Snapshot& snap,
                              const Predicate& pred,
                              const std::vector<int>& projection,
                              const ExecContext& exec) {
  if (!exec.parallel())
    return ScanRowStore(store, snap, pred, projection);
  const std::vector<std::pair<Key, Key>> ranges =
      store.SplitKeyRanges(exec.max_parallelism);
  if (ranges.size() <= 1)
    return ScanRowStore(store, snap, pred, projection);

  std::vector<std::vector<Row>> partial(ranges.size());
  {
    TaskGroup tg(exec.pool);
    for (size_t i = 0; i < ranges.size(); ++i) {
      tg.Run([&, i] {
        store.ScanRange(snap, ranges[i].first, ranges[i].second,
                        [&](Key, const Row& row) {
                          if (pred.Eval(row))
                            partial[i].push_back(ProjectRow(row, projection));
                          return true;
                        });
      });
    }
  }
  size_t total = 0;
  for (const auto& p : partial) total += p.size();
  std::vector<Row> out;
  out.reserve(total);
  for (auto& p : partial)
    for (Row& r : p) out.push_back(std::move(r));
  return out;
}

std::vector<Row> ScanHtap(const ColumnTable& table, const DeltaReader* delta,
                          CSN snapshot, const Predicate& pred,
                          const std::vector<int>& projection,
                          const ExecContext& exec, ScanStats* stats) {
  ScanStats local;
  ScanStats* st = stats != nullptr ? stats : &local;

  // 1. Collect the delta override set: latest visible entry per key.
  std::unordered_map<Key, const DeltaEntry*> overrides;
  std::vector<DeltaEntry> delta_entries;
  if (delta != nullptr) {
    delta->ScanVisible(snapshot, [&](const DeltaEntry& e) {
      delta_entries.push_back(e);
    });
    st->delta_entries_read = delta_entries.size();
    for (const auto& e : delta_entries) overrides[e.key] = &e;
  }

  const HtapScanShared shared{&pred, &projection, &overrides};

  // 2. Scan the main column store, skipping deleted and overridden rows.
  // Hold the table's scan latch for the whole pass so Compact() cannot
  // invalidate group pointers mid-scan. One morsel per row group; merged
  // output preserves row-group order, so serial and parallel scans return
  // identical results.
  ReadGuard table_guard(table.latch());
  const size_t ngroups = table.num_groups_unlocked();
  st->groups_total = ngroups;

  // The delta-override partition is its own morsel: surviving latest-state
  // rows per key, non-deletes, in override-map iteration order (identical
  // for serial and parallel — the map is built identically in both).
  std::vector<Row> delta_out;
  ScanStats delta_st;
  auto delta_morsel = [&] {
    for (const auto& [key, e] : overrides) {
      if (e->op == ChangeOp::kDelete) continue;
      if (!pred.Eval(e->row)) continue;
      delta_out.push_back(ProjectRow(e->row, projection));
      ++delta_st.delta_rows_emitted;
    }
  };

  std::vector<Row> out;
  const size_t workers =
      exec.parallel() && ngroups > 1
          ? std::min(exec.max_parallelism, ngroups)
          : 1;
  if (workers <= 1) {
    for (size_t gi = 0; gi < ngroups; ++gi)
      ScanGroup(*table.group_unlocked(gi), shared, &out, st);
    delta_morsel();
  } else {
    // Workers claim group morsels through a shared cursor; per-group output
    // vectors keep the merge order-deterministic regardless of which worker
    // scanned which group.
    std::vector<std::vector<Row>> partial(ngroups);
    std::vector<ScanStats> wstats(workers);
    std::atomic<size_t> next{0};
    {
      TaskGroup tg(exec.pool);
      tg.Run(delta_morsel);
      for (size_t w = 0; w < workers; ++w) {
        tg.Run([&, w] {
          for (size_t gi = next.fetch_add(1, std::memory_order_relaxed);
               gi < ngroups;
               gi = next.fetch_add(1, std::memory_order_relaxed))
            ScanGroup(*table.group_unlocked(gi), shared, &partial[gi],
                      &wstats[w]);
        });
      }
    }
    for (const ScanStats& ws : wstats) {
      st->groups_skipped += ws.groups_skipped;
      st->main_rows_emitted += ws.main_rows_emitted;
      st->rows_considered += ws.rows_considered;
    }
    size_t total = 0;
    for (const auto& p : partial) total += p.size();
    out.reserve(total + delta_out.size());
    for (auto& p : partial)
      for (Row& r : p) out.push_back(std::move(r));
  }

  // 3. Append the delta partition after the main groups (same position the
  // serial scan has always emitted it).
  st->delta_rows_emitted += delta_st.delta_rows_emitted;
  for (Row& r : delta_out) out.push_back(std::move(r));
  return out;
}

std::vector<Row> ScanHtap(const ColumnTable& table, const DeltaReader* delta,
                          CSN snapshot, const Predicate& pred,
                          const std::vector<int>& projection,
                          ScanStats* stats) {
  return ScanHtap(table, delta, snapshot, pred, projection, ExecContext{},
                  stats);
}

std::vector<ColumnBatch> ScanHtapBatches(const ColumnTable& table,
                                         const DeltaReader* delta,
                                         CSN snapshot, const Predicate& pred,
                                         const std::vector<int>& projection,
                                         const ExecContext& exec,
                                         ScanStats* stats) {
  ScanStats local;
  ScanStats* st = stats != nullptr ? stats : &local;

  // 1. Delta override set, exactly as the row scan builds it.
  std::unordered_map<Key, const DeltaEntry*> overrides;
  std::vector<DeltaEntry> delta_entries;
  if (delta != nullptr) {
    delta->ScanVisible(snapshot, [&](const DeltaEntry& e) {
      delta_entries.push_back(e);
    });
    st->delta_entries_read = delta_entries.size();
    for (const auto& e : delta_entries) overrides[e.key] = &e;
  }

  const HtapScanShared shared{&pred, &projection, &overrides};

  ReadGuard table_guard(table.latch());
  const size_t ngroups = table.num_groups_unlocked();
  st->groups_total = ngroups;

  // 2. The delta-override partition is its own morsel, emitted as typed
  // batches after every main group (the position the row scan has always
  // used). Delta rows append through the schema-typed vectors; rows are in
  // override-map iteration order, identical for serial and parallel.
  const Schema& schema = table.schema();
  std::vector<ColumnBatch> delta_batches;
  ScanStats delta_st;
  auto delta_morsel = [&] {
    ColumnBatch cur;
    for (const auto& [key, e] : overrides) {
      if (e->op == ChangeOp::kDelete) continue;
      if (!pred.Eval(e->row)) continue;
      if (cur.columns.empty())
        cur = MakeBatch(schema, projection, exec.batch_rows);
      if (projection.empty()) {
        for (size_t c = 0; c < cur.columns.size(); ++c)
          cur.columns[c].AppendValue(e->row.Get(c));
      } else {
        for (size_t c = 0; c < projection.size(); ++c)
          cur.columns[c].AppendValue(
              e->row.Get(static_cast<size_t>(projection[c])));
      }
      ++delta_st.delta_rows_emitted;
      if (exec.batch_rows != 0 && cur.rows() >= exec.batch_rows) {
        delta_batches.push_back(std::move(cur));
        cur = ColumnBatch{};
      }
    }
    if (cur.rows() > 0) delta_batches.push_back(std::move(cur));
  };

  // 3. Main groups: one morsel per group, merged in group order — the batch
  // sequence is byte-identical to the serial pass at any thread count.
  std::vector<ColumnBatch> out;
  const size_t workers =
      exec.parallel() && ngroups > 1 ? std::min(exec.max_parallelism, ngroups)
                                     : 1;
  if (workers <= 1) {
    for (size_t gi = 0; gi < ngroups; ++gi)
      ScanGroupBatches(*table.group_unlocked(gi), shared, exec.batch_rows,
                       &out, st);
    delta_morsel();
  } else {
    std::vector<std::vector<ColumnBatch>> partial(ngroups);
    std::vector<ScanStats> wstats(workers);
    std::atomic<size_t> next{0};
    {
      TaskGroup tg(exec.pool);
      tg.Run(delta_morsel);
      for (size_t w = 0; w < workers; ++w) {
        tg.Run([&, w] {
          for (size_t gi = next.fetch_add(1, std::memory_order_relaxed);
               gi < ngroups;
               gi = next.fetch_add(1, std::memory_order_relaxed))
            ScanGroupBatches(*table.group_unlocked(gi), shared,
                             exec.batch_rows, &partial[gi], &wstats[w]);
        });
      }
    }
    for (const ScanStats& ws : wstats) {
      st->groups_skipped += ws.groups_skipped;
      st->main_rows_emitted += ws.main_rows_emitted;
      st->rows_considered += ws.rows_considered;
    }
    size_t total = 0;
    for (const auto& p : partial) total += p.size();
    out.reserve(total + delta_batches.size());
    for (auto& p : partial)
      for (ColumnBatch& b : p) out.push_back(std::move(b));
  }

  st->delta_rows_emitted += delta_st.delta_rows_emitted;
  for (ColumnBatch& b : delta_batches) out.push_back(std::move(b));
  return out;
}

// ---------------------------------------------------------------------------
// Hash join. Three regimes share one pair-emitting core (DESIGN.md §§8–9):
// serial single-table, radix-partitioned parallel, and the grace
// (out-of-core) path that spills oversized partitions to temporary runs.
// ---------------------------------------------------------------------------

namespace {

/// Chained hash table over one radix partition of the build side. Chains
/// preserve build-input order per hash, so probing emits matches exactly in
/// nested-loop order — the property the serial/parallel byte-identity of
/// the join rests on.
class JoinPartitionTable {
 public:
  void Reserve(size_t rows) {
    slots_.reserve(rows);
    entries_.reserve(rows);
  }

  void Insert(uint64_t hash, uint32_t row) {
    const auto e = static_cast<uint32_t>(entries_.size());
    entries_.push_back(Entry{row, kEnd});
    auto [it, fresh] = slots_.try_emplace(hash, Chain{e, e});
    if (!fresh) {
      entries_[it->second.tail].next = e;
      it->second.tail = e;
    }
  }

  template <typename Fn>
  void ForEachHashMatch(uint64_t hash, const Fn& fn) const {
    const auto it = slots_.find(hash);
    if (it == slots_.end()) return;
    for (uint32_t e = it->second.head; e != kEnd; e = entries_[e].next)
      fn(entries_[e].row);
  }

 private:
  static constexpr uint32_t kEnd = 0xffffffffu;
  struct Chain {
    uint32_t head;
    uint32_t tail;
  };
  struct Entry {
    uint32_t row;
    uint32_t next;
  };
  std::unordered_map<uint64_t, Chain> slots_;
  std::vector<Entry> entries_;
};

Row ConcatRows(const Row& l, const Row& r) {
  std::vector<Value> vals;
  vals.reserve(l.size() + r.size());
  vals.insert(vals.end(), l.values().begin(), l.values().end());
  vals.insert(vals.end(), r.values().begin(), r.values().end());
  return Row(std::move(vals));
}

/// Probes key slots [lo, hi) against the partition tables, emitting
/// (probe, build) index pairs. Two passes: a hash-match pre-count sizes the
/// output reservation (overcounting only on hash collisions between unequal
/// keys), then the emit pass confirms key equality — typed, through
/// JoinKeyEquals, no Value boxing.
void ProbePairsRangeKeys(const JoinKeyColumn& probe, size_t lo, size_t hi,
                         const JoinKeyColumn& build,
                         const std::vector<JoinPartitionTable>& parts,
                         uint64_t part_mask, uint64_t hash_mask,
                         JoinPairs* out) {
  size_t estimate = 0;
  for (size_t i = lo; i < hi; ++i) {
    if (!probe.valid[i]) continue;
    const uint64_t h = probe.hashes[i] & hash_mask;
    parts[h & part_mask].ForEachHashMatch(h, [&](uint32_t) { ++estimate; });
  }
  out->reserve(out->size() + estimate);
  for (size_t i = lo; i < hi; ++i) {
    if (!probe.valid[i]) continue;
    const uint64_t h = probe.hashes[i] & hash_mask;
    parts[h & part_mask].ForEachHashMatch(h, [&](uint32_t r) {
      if (!JoinKeyEquals(probe, i, build, r)) return;  // hash collision
      out->emplace_back(static_cast<uint32_t>(i), r);
    });
  }
}

/// Partition count: ~4 independent build morsels per worker for load
/// balance, power of two for mask addressing, capped at 64 so small builds
/// aren't shredded into allocation overhead.
size_t JoinPartitionCount(size_t workers) {
  size_t k = 16;
  while (k < workers * 4 && k < 64) k <<= 1;
  return k;
}

/// Below these sizes a scatter chunk / probe morsel isn't worth a task.
constexpr size_t kMinScatterRowsPerChunk = 8192;
constexpr size_t kMinProbeRowsPerMorsel = 4096;

// ---- grace (out-of-core) path ---------------------------------------------

/// Re-partition fan-out per recursion level: 4 radix bits.
constexpr size_t kSpillSubBits = 4;
constexpr size_t kSpillSubParts = size_t{1} << kSpillSubBits;

/// A partition that never shrinks (one hot key) bottoms out here and is
/// built in memory anyway — correctness over the budget.
constexpr size_t kMaxSpillRecursion = 4;

/// Top-level grace partition cap. Keeps the radix at <= 8 bits, which the
/// join_hash_mask test seam relies on (masking the low 8 bits funnels every
/// row into partition 0 to force recursion).
constexpr size_t kMaxGracePartitions = 256;

/// Spill runs are appended in ~256 KiB slabs, not per record.
constexpr size_t kSpillFlushBytes = 256 * 1024;

/// Top-level grace partition count: the parallel join's partition floor,
/// grown toward 2x the build/budget ratio so a typical partition fits the
/// budget with headroom.
size_t GracePartitionCount(size_t est_bytes, size_t budget, size_t workers) {
  size_t k = JoinPartitionCount(workers);
  const size_t want = 2 * (est_bytes / std::max<size_t>(budget, 1));
  while (k < want && k < kMaxGracePartitions) k <<= 1;
  return k;
}

/// Counters accumulated across the grace write path (concurrent probe
/// morsels append) and the serial read-back/recursion path.
struct SpillCounters {
  std::atomic<size_t> rows_written{0};
  std::atomic<size_t> bytes_written{0};
  std::atomic<size_t> pages_written{0};
  size_t bytes_read = 0;  // serial only
  size_t pages_read = 0;  // serial only
  size_t max_depth = 0;   // serial only
};

/// Accumulates (input index, key) slots from one key column into a
/// SpillPage, encoding into the bound buffer whenever the page's
/// approximate footprint reaches kSpillFlushBytes. The caller reads the
/// rows()/pages() tallies when a buffer goes to disk, then ResetCounters().
class SpillPageWriter {
 public:
  SpillPageWriter(const JoinKeyColumn* keys, std::string* buf)
      : keys_(keys), buf_(buf) {
    ResetPage();
  }

  void Add(uint32_t idx, size_t slot) {
    page_.idx.push_back(idx);
    approx_ += sizeof(uint32_t);
    if (keys_->mixed) {
      const Value& v = keys_->boxed[slot];
      approx_ += v.MemoryBytes();
      page_.vals.push_back(v);
    } else {
      switch (keys_->type) {
        case Type::kInt64:
          page_.ints.push_back(keys_->ints[slot]);
          approx_ += sizeof(int64_t);
          break;
        case Type::kDouble:
          page_.doubles.push_back(keys_->doubles[slot]);
          approx_ += sizeof(double);
          break;
        case Type::kString:
          page_.strs.push_back(keys_->strs[slot]);
          approx_ += sizeof(uint32_t) + page_.strs.back().size();
          break;
      }
    }
    ++rows_;
    if (approx_ >= kSpillFlushBytes) Flush();
  }

  /// Encodes any buffered slots into the bound buffer as one page.
  void Flush() {
    if (page_.idx.empty()) return;
    EncodeSpillPage(page_, buf_);
    ++pages_;
    ResetPage();
  }

  size_t rows() const { return rows_; }
  size_t pages() const { return pages_; }
  void ResetCounters() {
    rows_ = 0;
    pages_ = 0;
  }

 private:
  void ResetPage() {
    page_ = SpillPage{};
    page_.type = keys_->type;
    page_.boxed = keys_->mixed;
    approx_ = 0;
  }

  const JoinKeyColumn* keys_;
  std::string* buf_;
  SpillPage page_;
  size_t approx_ = 0;
  size_t rows_ = 0;
  size_t pages_ = 0;
};

/// A spilled partition rehydrated into batch form: a dense all-valid key
/// column (hashes recomputed through the Value::Hash-consistent typed
/// primitives) plus each slot's index in the original join input.
struct SpilledKeys {
  JoinKeyColumn keys;
  std::vector<uint32_t> idx;
};

/// Reads a whole run of key pages back. A never-opened run (no rows reached
/// it) reads as empty.
Result<SpilledKeys> ReadSpillPages(SpillRun* run, SpillCounters* sc) {
  SpilledKeys out;
  if (!run->is_open()) return out;
  HTAP_ASSIGN_OR_RETURN(const std::string data, run->ReadAll());
  sc->bytes_read += data.size();
  size_t pos = 0;
  bool typed = false;
  while (pos < data.size()) {
    SpillPage page;
    if (!DecodeSpillPage(data, &pos, &page))
      return Status::Corruption("malformed spill page in " + run->path());
    ++sc->pages_read;
    if (!typed) {
      out.keys.type = page.type;
      out.keys.mixed = page.boxed;
      typed = true;
    }
    for (size_t r = 0; r < page.rows(); ++r) {
      out.idx.push_back(page.idx[r]);
      out.keys.valid.push_back(1);  // NULL keys never spill
      if (page.boxed) {
        out.keys.hashes.push_back(page.vals[r].Hash());
        out.keys.boxed.push_back(std::move(page.vals[r]));
      } else {
        switch (page.type) {
          case Type::kInt64:
            out.keys.hashes.push_back(HashInt64(page.ints[r]));
            out.keys.ints.push_back(page.ints[r]);
            break;
          case Type::kDouble:
            out.keys.hashes.push_back(HashDouble(page.doubles[r]));
            out.keys.doubles.push_back(page.doubles[r]);
            break;
          case Type::kString:
            out.keys.hashes.push_back(HashString(page.strs[r]));
            out.keys.strs.push_back(std::move(page.strs[r]));
            break;
        }
      }
    }
  }
  return out;
}

/// Correctness backstop: recomputes one radix partition's pairs straight
/// from the in-memory key columns (which outlive the whole join). Used when
/// the disk fails mid-partition; O(probe + build) per call but always right.
void JoinPartitionInMemoryKeys(const JoinKeyColumn& probe,
                               const JoinKeyColumn& build, uint64_t hash_mask,
                               uint64_t part_mask, size_t part,
                               JoinPairs* out) {
  JoinPartitionTable table;
  for (size_t j = 0; j < build.size(); ++j) {
    if (!build.valid[j]) continue;
    const uint64_t h = build.hashes[j] & hash_mask;
    if ((h & part_mask) != part) continue;
    table.Insert(h, static_cast<uint32_t>(j));
  }
  for (size_t i = 0; i < probe.size(); ++i) {
    if (!probe.valid[i]) continue;
    const uint64_t h = probe.hashes[i] & hash_mask;
    if ((h & part_mask) != part) continue;
    table.ForEachHashMatch(h, [&](uint32_t j) {
      if (!JoinKeyEquals(probe, i, build, j)) return;
      out->emplace_back(static_cast<uint32_t>(i), j);
    });
  }
}

/// Joins one spilled partition, partition-at-a-time. Partition weight is
/// measured through `build_weights` — the per-slot payload footprints of
/// the ORIGINAL build input (spilled records carry their input index, so a
/// partition weighs what its rows would occupy materialized, not the few
/// key bytes on disk). If that weight still exceeds the budget, both runs
/// re-partition on the next kSpillSubBits hash bits (`bit_shift` counts
/// bits already consumed) and recurse; at kMaxSpillRecursion the partition
/// is built regardless. Emits pairs in arbitrary order — the grace driver
/// sorts the full pair set at the end.
Status JoinSpilledPartition(SpillRun build_run, SpillRun probe_run,
                            const std::vector<size_t>& build_weights,
                            const ExecContext& exec, const std::string& dir,
                            size_t bit_shift, size_t depth, SpillCounters* sc,
                            JoinPairs* out) {
  const uint64_t hash_mask = exec.join_hash_mask;

  HTAP_ASSIGN_OR_RETURN(SpilledKeys build, ReadSpillPages(&build_run, sc));
  build_run.Discard();
  size_t build_bytes = 0;
  for (uint32_t idx : build.idx) build_bytes += build_weights[idx];

  if (build_bytes > exec.join_spill_budget_bytes &&
      depth < kMaxSpillRecursion) {
    std::array<SpillRun, kSpillSubParts> bsub;
    std::array<SpillRun, kSpillSubParts> psub;
    std::array<uint8_t, kSpillSubParts> has_build{};
    {
      std::array<std::string, kSpillSubParts> bufs;
      std::vector<SpillPageWriter> writers;
      writers.reserve(kSpillSubParts);
      for (size_t s = 0; s < kSpillSubParts; ++s)
        writers.emplace_back(&build.keys, &bufs[s]);
      for (size_t slot = 0; slot < build.keys.size(); ++slot) {
        const uint64_t h = build.keys.hashes[slot] & hash_mask;
        const size_t s = (h >> bit_shift) & (kSpillSubParts - 1);
        writers[s].Add(build.idx[slot], slot);
        has_build[s] = 1;
      }
      for (size_t s = 0; s < kSpillSubParts; ++s) {
        if (!has_build[s]) continue;
        writers[s].Flush();
        HTAP_RETURN_NOT_OK(
            bsub[s].Open(dir, "b" + std::to_string(depth + 1)));
        HTAP_RETURN_NOT_OK(bsub[s].Append(bufs[s]));
        sc->rows_written.fetch_add(writers[s].rows(),
                                   std::memory_order_relaxed);
        sc->pages_written.fetch_add(writers[s].pages(),
                                    std::memory_order_relaxed);
        sc->bytes_written.fetch_add(bufs[s].size(),
                                    std::memory_order_relaxed);
      }
      build = SpilledKeys{};
    }
    {
      HTAP_ASSIGN_OR_RETURN(SpilledKeys probe, ReadSpillPages(&probe_run, sc));
      probe_run.Discard();
      std::array<std::string, kSpillSubParts> bufs;
      std::vector<SpillPageWriter> writers;
      writers.reserve(kSpillSubParts);
      for (size_t s = 0; s < kSpillSubParts; ++s)
        writers.emplace_back(&probe.keys, &bufs[s]);
      for (size_t slot = 0; slot < probe.keys.size(); ++slot) {
        const uint64_t h = probe.keys.hashes[slot] & hash_mask;
        const size_t s = (h >> bit_shift) & (kSpillSubParts - 1);
        if (!has_build[s]) continue;  // no build rows -> cannot match
        writers[s].Add(probe.idx[slot], slot);
      }
      for (size_t s = 0; s < kSpillSubParts; ++s) {
        if (!has_build[s]) continue;
        writers[s].Flush();
        if (bufs[s].empty()) continue;
        HTAP_RETURN_NOT_OK(
            psub[s].Open(dir, "p" + std::to_string(depth + 1)));
        HTAP_RETURN_NOT_OK(psub[s].Append(bufs[s]));
        sc->rows_written.fetch_add(writers[s].rows(),
                                   std::memory_order_relaxed);
        sc->pages_written.fetch_add(writers[s].pages(),
                                    std::memory_order_relaxed);
        sc->bytes_written.fetch_add(bufs[s].size(),
                                    std::memory_order_relaxed);
      }
    }
    for (size_t s = 0; s < kSpillSubParts; ++s) {
      if (!has_build[s]) continue;
      HTAP_RETURN_NOT_OK(JoinSpilledPartition(
          std::move(bsub[s]), std::move(psub[s]), build_weights, exec, dir,
          bit_shift + kSpillSubBits, depth + 1, sc, out));
    }
    return Status::OK();
  }

  sc->max_depth = std::max(sc->max_depth, depth);
  JoinPartitionTable table;
  table.Reserve(build.keys.size());
  for (size_t j = 0; j < build.keys.size(); ++j)
    table.Insert(build.keys.hashes[j] & hash_mask, static_cast<uint32_t>(j));
  HTAP_ASSIGN_OR_RETURN(const SpilledKeys probe,
                        ReadSpillPages(&probe_run, sc));
  probe_run.Discard();
  for (size_t i = 0; i < probe.keys.size(); ++i) {
    const uint64_t h = probe.keys.hashes[i] & hash_mask;
    table.ForEachHashMatch(h, [&](uint32_t j) {
      if (!JoinKeyEquals(probe.keys, i, build.keys, j)) return;
      out->emplace_back(probe.idx[i], build.idx[j]);
    });
  }
  return Status::OK();
}

/// The grace driver (DESIGN.md §§9, 13): radix-scatter the build side, keep
/// a budget's worth of partitions resident, spill the rest (both sides, as
/// columnar key pages — payloads stay in memory and materialize after the
/// join), then join spilled partitions one at a time. Output order is
/// restored by a final sort of the pair set — valid because (probe, build)
/// pairs are unique and nested-loop order is exactly ascending (probe,
/// build). Runs even without a pool: TaskGroup degrades to inline calls.
JoinPairs GraceJoinPairsKeys(const JoinKeyColumn& probe,
                             const JoinKeyColumn& build,
                             const std::vector<size_t>& weights,
                             const ExecContext& exec, size_t est_build_bytes,
                             JoinStats* js) {
  const size_t budget = exec.join_spill_budget_bytes;
  const std::string& dir = exec.join_spill_dir;  // "" -> DefaultSpillDir()
  const size_t workers = exec.parallel() ? exec.max_parallelism : 1;
  const size_t nparts = GracePartitionCount(est_build_bytes, budget, workers);
  const uint64_t part_mask = nparts - 1;
  const uint64_t hash_mask = exec.join_hash_mask;
  size_t base_bits = 0;
  while ((size_t{1} << base_bits) < nparts) ++base_bits;
  SpillCounters sc;

  // 1. Scatter, as in the radix join, but also tallying per-partition
  // build footprint (payload weights, not key bytes) so the classifier
  // below can pick residents.
  const size_t nchunks =
      std::clamp<size_t>(build.size() / kMinScatterRowsPerChunk, 1, workers);
  const size_t chunk_rows = (build.size() + nchunks - 1) / nchunks;
  std::vector<std::vector<std::vector<std::pair<uint64_t, uint32_t>>>> scatter(
      nchunks);
  std::vector<std::vector<size_t>> chunk_bytes(nchunks);
  {
    TaskGroup tg(exec.pool);
    for (size_t c = 0; c < nchunks; ++c) {
      tg.Run([&, c] {
        auto& buckets = scatter[c];
        auto& bytes = chunk_bytes[c];
        buckets.resize(nparts);
        bytes.assign(nparts, 0);
        const size_t hi = std::min(build.size(), (c + 1) * chunk_rows);
        for (size_t i = c * chunk_rows; i < hi; ++i) {
          if (!build.valid[i]) continue;
          const uint64_t h = build.hashes[i] & hash_mask;
          const size_t p = h & part_mask;
          buckets[p].emplace_back(h, static_cast<uint32_t>(i));
          bytes[p] += weights[i];
        }
      });
    }
  }
  std::vector<size_t> part_bytes(nparts, 0);
  for (const auto& bytes : chunk_bytes)
    for (size_t p = 0; p < nparts; ++p) part_bytes[p] += bytes[p];

  // 2. Classify: walk partitions in index order, keeping them resident
  // while the running total fits the budget. Deterministic, and at least
  // one partition spills whenever the build side exceeds the budget.
  std::vector<uint8_t> resident(nparts, 0);
  size_t resident_bytes = 0;
  for (size_t p = 0; p < nparts; ++p) {
    if (resident_bytes + part_bytes[p] <= budget) {
      resident[p] = 1;
      resident_bytes += part_bytes[p];
    }
  }

  // 3. Write spilled partitions' build runs — one task per partition, in
  // chunk order so each run holds its rows in build-input order. Only the
  // (index, key) column pages go to disk. A write failure (unwritable dir,
  // disk full) reclassifies the partition as resident: the scatter buffers
  // are only released on success, so correctness never depends on the disk.
  std::vector<SpillRun> build_runs(nparts);
  std::vector<SpillRun> probe_runs(nparts);
  std::vector<uint8_t> spill_ok(nparts, 0);
  {
    TaskGroup tg(exec.pool);
    for (size_t p = 0; p < nparts; ++p) {
      if (resident[p]) continue;
      tg.Run([&, p] {
        Status st = build_runs[p].Open(dir, "b" + std::to_string(p));
        std::string buf;
        SpillPageWriter writer(&build, &buf);
        size_t wbytes = 0;
        for (const auto& buckets : scatter) {
          if (!st.ok()) break;
          for (const auto& [h, idx] : buckets[p]) {
            (void)h;
            writer.Add(idx, idx);
            if (buf.size() >= kSpillFlushBytes) {
              wbytes += buf.size();
              st = build_runs[p].Append(buf);
              buf.clear();
              if (!st.ok()) break;
            }
          }
        }
        if (st.ok()) {
          writer.Flush();
          wbytes += buf.size();
          st = build_runs[p].Append(buf);
        }
        if (st.ok()) {
          spill_ok[p] = 1;
          sc.rows_written.fetch_add(writer.rows(), std::memory_order_relaxed);
          sc.pages_written.fetch_add(writer.pages(),
                                     std::memory_order_relaxed);
          sc.bytes_written.fetch_add(wbytes, std::memory_order_relaxed);
        } else {
          build_runs[p].Discard();
        }
      });
    }
  }
  for (size_t p = 0; p < nparts; ++p) {
    if (resident[p]) continue;
    if (spill_ok[p]) {
      for (auto& buckets : scatter)
        std::vector<std::pair<uint64_t, uint32_t>>().swap(buckets[p]);
    } else {
      resident[p] = 1;
    }
  }

  // 4. Build the resident partitions' tables (chunk order, as ever).
  std::vector<JoinPartitionTable> parts(nparts);
  {
    TaskGroup tg(exec.pool);
    for (size_t p = 0; p < nparts; ++p) {
      if (!resident[p]) continue;
      tg.Run([&, p] {
        size_t total = 0;
        for (const auto& buckets : scatter) total += buckets[p].size();
        parts[p].Reserve(total);
        for (const auto& buckets : scatter)
          for (const auto& [h, idx] : buckets[p]) parts[p].Insert(h, idx);
      });
    }
  }

  // 5. Probe, streaming: rows hitting a resident partition emit pairs into
  // per-morsel buffers; rows hitting a spilled partition accumulate into
  // per-morsel key pages, flushed to the partition's probe run under a
  // per-partition mutex. Run write order is irrelevant — page slots carry
  // their probe index and the final sort restores order.
  const size_t nprobe =
      probe.size() == 0
          ? 0
          : std::clamp<size_t>(probe.size() / kMinProbeRowsPerMorsel, 1,
                               workers * 4);
  std::vector<JoinPairs> partial(nprobe);
  std::vector<uint8_t> probe_spill_ok(nparts, 1);
  // Leaf locks: workers hold nothing else while flushing a spill buffer.
  const std::unique_ptr<Mutex[]> part_mu(new Mutex[nparts]);
  if (nprobe > 0) {
    const size_t probe_rows = (probe.size() + nprobe - 1) / nprobe;
    std::atomic<size_t> next{0};
    TaskGroup tg(exec.pool);
    for (size_t w = 0; w < std::min(workers, nprobe); ++w) {
      tg.Run([&] {
        std::vector<std::string> bufs(nparts);
        std::vector<SpillPageWriter> writers;
        writers.reserve(nparts);
        for (size_t p = 0; p < nparts; ++p)
          writers.emplace_back(&probe, &bufs[p]);
        for (size_t m = next.fetch_add(1, std::memory_order_relaxed);
             m < nprobe; m = next.fetch_add(1, std::memory_order_relaxed)) {
          const size_t lo = m * probe_rows;
          const size_t hi = std::min(probe.size(), lo + probe_rows);
          JoinPairs& pout = partial[m];
          for (size_t i = lo; i < hi; ++i) {
            if (!probe.valid[i]) continue;
            const uint64_t h = probe.hashes[i] & hash_mask;
            const size_t p = h & part_mask;
            if (resident[p]) {
              parts[p].ForEachHashMatch(h, [&](uint32_t r) {
                if (!JoinKeyEquals(probe, i, build, r)) return;
                pout.emplace_back(static_cast<uint32_t>(i), r);
              });
            } else {
              writers[p].Add(static_cast<uint32_t>(i), i);
            }
          }
          for (size_t p = 0; p < nparts; ++p) {
            writers[p].Flush();
            if (bufs[p].empty()) continue;
            MutexLock lock(&part_mu[p]);
            Status st;
            if (!probe_runs[p].is_open())
              st = probe_runs[p].Open(dir, "p" + std::to_string(p));
            if (st.ok()) st = probe_runs[p].Append(bufs[p]);
            if (st.ok()) {
              sc.rows_written.fetch_add(writers[p].rows(),
                                        std::memory_order_relaxed);
              sc.pages_written.fetch_add(writers[p].pages(),
                                         std::memory_order_relaxed);
              sc.bytes_written.fetch_add(bufs[p].size(),
                                         std::memory_order_relaxed);
            } else {
              probe_spill_ok[p] = 0;  // guarded by part_mu[p]
            }
            bufs[p].clear();
            writers[p].ResetCounters();
          }
        }
      });
    }
  }
  JoinPairs pairs;
  size_t total = 0;
  for (const auto& m : partial) total += m.size();
  pairs.reserve(total);
  for (const auto& m : partial) pairs.insert(pairs.end(), m.begin(), m.end());

  // 6. Join the spilled partitions one at a time (index order). Any I/O
  // failure — including a probe flush that failed above — falls back to
  // recomputing that partition from the in-memory inputs.
  size_t spilled = 0;
  for (size_t p = 0; p < nparts; ++p) {
    if (resident[p]) continue;
    ++spilled;
    JoinPairs part_pairs;
    Status st;
    if (probe_spill_ok[p]) {
      st = JoinSpilledPartition(std::move(build_runs[p]),
                                std::move(probe_runs[p]), weights, exec, dir,
                                base_bits, 0, &sc, &part_pairs);
    } else {
      st = Status::IOError("probe-side spill failed");
      build_runs[p].Discard();
      probe_runs[p].Discard();
    }
    if (st.ok()) {
      pairs.insert(pairs.end(), part_pairs.begin(), part_pairs.end());
    } else {
      std::fprintf(stderr,
                   "htapdb: grace join partition %zu recomputed in memory "
                   "(%s)\n",
                   p, st.ToString().c_str());
      JoinPartitionInMemoryKeys(probe, build, hash_mask, part_mask, p,
                                &pairs);
    }
  }

  // 7. Restore nested-loop order: pairs are unique, so the (probe, build)
  // lexicographic sort is a total order identical to the serial join's.
  std::sort(pairs.begin(), pairs.end());

  js->partitions = nparts;
  js->parallel = exec.parallel();
  js->partitions_spilled = spilled;
  js->spill_rows_written = sc.rows_written.load(std::memory_order_relaxed);
  js->spill_bytes_written = sc.bytes_written.load(std::memory_order_relaxed);
  js->spill_bytes_read = sc.bytes_read;
  js->spill_pages_written = sc.pages_written.load(std::memory_order_relaxed);
  js->spill_pages_read = sc.pages_read;
  js->spill_max_recursion = sc.max_depth;
  return pairs;
}

}  // namespace

size_t EstimateRowsBytes(const std::vector<Row>& rows) {
  size_t bytes = 0;
  for (const Row& r : rows) bytes += r.MemoryBytes();
  return bytes;
}

std::vector<size_t> EstimateBatchRowBytes(
    const std::vector<ColumnBatch>& batches) {
  std::vector<size_t> out;
  out.reserve(TotalActiveRows(batches));
  for (const ColumnBatch& b : batches) {
    b.ForEachActive([&](size_t i) {
      // Mirrors Row::MemoryBytes for the materialized image of this row:
      // the Row shell, one Value per column, and string heap payloads.
      size_t bytes = sizeof(Row) + b.columns.size() * sizeof(Value);
      for (const ColumnVector& cv : b.columns)
        if (cv.type() == Type::kString && !cv.IsNull(i))
          bytes += cv.GetString(i).capacity();
      out.push_back(bytes);
    });
  }
  return out;
}

Value JoinKeyColumn::GetValue(size_t i) const {
  if (!valid[i]) return Value::Null();
  if (mixed) return boxed[i];
  switch (type) {
    case Type::kInt64: return Value(ints[i]);
    case Type::kDouble: return Value(doubles[i]);
    case Type::kString: return Value(strs[i]);
  }
  return Value::Null();
}

bool JoinKeyEquals(const JoinKeyColumn& a, size_t i, const JoinKeyColumn& b,
                   size_t j) {
  if (a.mixed || b.mixed) return a.GetValue(i) == b.GetValue(j);
  if (a.type == b.type) {
    switch (a.type) {
      case Type::kInt64: return a.ints[i] == b.ints[j];
      case Type::kDouble: return a.doubles[i] == b.doubles[j];
      case Type::kString: return a.strs[i] == b.strs[j];
    }
    return false;
  }
  // Cross-type: numeric pairs compare as doubles; numeric never equals a
  // string (Value::Compare semantics).
  if (a.type == Type::kString || b.type == Type::kString) return false;
  const double av =
      a.type == Type::kInt64 ? static_cast<double>(a.ints[i]) : a.doubles[i];
  const double bv =
      b.type == Type::kInt64 ? static_cast<double>(b.ints[j]) : b.doubles[j];
  return av == bv;
}

JoinKeyColumn ExtractJoinKeys(const std::vector<Row>& rows, int col) {
  JoinKeyColumn k;
  const auto c = static_cast<size_t>(col);
  const size_t n = rows.size();
  k.valid.assign(n, 0);
  k.hashes.assign(n, 0);

  // Pass 1: are the non-NULL keys homogeneously typed?
  bool seen = false;
  for (const Row& r : rows) {
    const Value& v = r.Get(c);
    if (v.is_null()) continue;
    if (!seen) {
      k.type = v.type();
      seen = true;
    } else if (v.type() != k.type) {
      k.mixed = true;
      break;
    }
  }

  if (k.mixed) {
    k.boxed.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      const Value& v = rows[i].Get(c);
      k.boxed.push_back(v);
      if (v.is_null()) continue;
      k.valid[i] = 1;
      k.hashes[i] = v.Hash();
    }
    return k;
  }

  switch (k.type) {
    case Type::kInt64:
      k.ints.assign(n, 0);
      for (size_t i = 0; i < n; ++i) {
        const Value& v = rows[i].Get(c);
        if (v.is_null()) continue;
        const int64_t x = v.AsInt64();
        k.ints[i] = x;
        k.hashes[i] = HashInt64(x);
        k.valid[i] = 1;
      }
      break;
    case Type::kDouble:
      k.doubles.assign(n, 0);
      for (size_t i = 0; i < n; ++i) {
        const Value& v = rows[i].Get(c);
        if (v.is_null()) continue;
        const double x = v.AsDouble();
        k.doubles[i] = x;
        k.hashes[i] = HashDouble(x);
        k.valid[i] = 1;
      }
      break;
    case Type::kString:
      k.strs.resize(n);
      for (size_t i = 0; i < n; ++i) {
        const Value& v = rows[i].Get(c);
        if (v.is_null()) continue;
        k.strs[i] = v.AsString();
        k.hashes[i] = HashString(k.strs[i]);
        k.valid[i] = 1;
      }
      break;
  }
  return k;
}

JoinKeyColumn ExtractJoinKeys(const std::vector<ColumnBatch>& batches,
                              int col) {
  JoinKeyColumn k;
  const auto c = static_cast<size_t>(col);
  const size_t n = TotalActiveRows(batches);
  k.valid.assign(n, 0);
  k.hashes.assign(n, 0);
  for (const ColumnBatch& b : batches) {
    if (b.rows() > 0) {
      k.type = b.columns[c].type();
      break;
    }
  }
  switch (k.type) {
    case Type::kInt64: k.ints.assign(n, 0); break;
    case Type::kDouble: k.doubles.assign(n, 0); break;
    case Type::kString: k.strs.resize(n); break;
  }
  size_t o = 0;
  for (const ColumnBatch& b : batches) {
    const ColumnVector& cv = b.columns[c];
    b.ForEachActive([&](size_t i) {
      if (!cv.IsNull(i)) {
        switch (k.type) {
          case Type::kInt64: {
            const int64_t x = cv.GetInt64(i);
            k.ints[o] = x;
            k.hashes[o] = HashInt64(x);
            break;
          }
          case Type::kDouble: {
            const double x = cv.GetDouble(i);
            k.doubles[o] = x;
            k.hashes[o] = HashDouble(x);
            break;
          }
          case Type::kString:
            k.strs[o] = cv.GetString(i);
            k.hashes[o] = HashString(k.strs[o]);
            break;
        }
        k.valid[o] = 1;
      }
      ++o;
    });
  }
  return k;
}

namespace {

/// Grace-budget weights when the caller supplies none: the key column's own
/// per-slot footprint (all that would spill anyway).
std::vector<size_t> KeySlotBytes(const JoinKeyColumn& k) {
  std::vector<size_t> w(k.size(), sizeof(uint32_t) + sizeof(int64_t));
  if (k.mixed) {
    for (size_t i = 0; i < k.size(); ++i) w[i] = k.boxed[i].MemoryBytes();
  } else if (k.type == Type::kString) {
    for (size_t i = 0; i < k.size(); ++i) w[i] += k.strs[i].capacity();
  }
  return w;
}

}  // namespace

JoinPairs HashJoinPairsKeys(const JoinKeyColumn& probe,
                            const JoinKeyColumn& build,
                            const ExecContext& exec, JoinStats* stats,
                            const std::vector<size_t>* build_weights) {
  const Stopwatch sw;
  JoinStats local;
  JoinStats* js = stats != nullptr ? stats : &local;
  js->build_rows = build.size();
  js->probe_rows = probe.size();
  const uint64_t hash_mask = exec.join_hash_mask;
  JoinPairs pairs;

  const size_t budget = exec.join_spill_budget_bytes;
  if (budget > 0) {
    std::vector<size_t> key_weights;
    if (build_weights == nullptr) {
      key_weights = KeySlotBytes(build);
      build_weights = &key_weights;
    }
    size_t est = 0;
    for (size_t w : *build_weights) est += w;
    if (est > budget) {
      // Grace regime: the build side does not fit the configured budget.
      // Checked before the serial fallback — spilling must trigger at any
      // thread count.
      pairs = GraceJoinPairsKeys(probe, build, *build_weights, exec, est, js);
      js->output_rows = pairs.size();
      js->seconds = sw.ElapsedSeconds();
      return pairs;
    }
  }

  if (!exec.parallel() || build.size() < exec.min_parallel_join_build) {
    // Serial regime: one partition, built and probed inline.
    std::vector<JoinPartitionTable> parts(1);
    parts[0].Reserve(build.size());
    for (size_t i = 0; i < build.size(); ++i) {
      if (!build.valid[i]) continue;
      parts[0].Insert(build.hashes[i] & hash_mask, static_cast<uint32_t>(i));
    }
    ProbePairsRangeKeys(probe, 0, probe.size(), build, parts,
                        /*part_mask=*/0, hash_mask, &pairs);
    js->partitions = 1;
    js->parallel = false;
  } else {
    // Radix-partitioned parallel regime (DESIGN.md §8).
    const size_t workers = exec.max_parallelism;
    const size_t nparts = JoinPartitionCount(workers);
    const uint64_t part_mask = nparts - 1;

    // 1. Partition pass: contiguous key chunks scatter (hash, slot) pairs
    // into per-chunk partition buffers. Workers never share a buffer.
    const size_t nchunks = std::clamp<size_t>(
        build.size() / kMinScatterRowsPerChunk, 1, workers);
    const size_t chunk_rows = (build.size() + nchunks - 1) / nchunks;
    std::vector<std::vector<std::vector<std::pair<uint64_t, uint32_t>>>>
        scatter(nchunks);
    {
      TaskGroup tg(exec.pool);
      for (size_t c = 0; c < nchunks; ++c) {
        tg.Run([&, c] {
          auto& buckets = scatter[c];
          buckets.resize(nparts);
          const size_t hi = std::min(build.size(), (c + 1) * chunk_rows);
          for (size_t i = c * chunk_rows; i < hi; ++i) {
            if (!build.valid[i]) continue;
            const uint64_t h = build.hashes[i] & hash_mask;
            buckets[h & part_mask].emplace_back(h, static_cast<uint32_t>(i));
          }
        });
      }
    }

    // 2. Build pass: each partition's table is an independent morsel.
    // Chunk buffers merge in chunk order, so per-hash chains hold build
    // rows in input order exactly as the serial build does.
    std::vector<JoinPartitionTable> parts(nparts);
    {
      TaskGroup tg(exec.pool);
      for (size_t p = 0; p < nparts; ++p) {
        tg.Run([&, p] {
          size_t total = 0;
          for (const auto& buckets : scatter) total += buckets[p].size();
          parts[p].Reserve(total);
          for (const auto& buckets : scatter)
            for (const auto& [h, idx] : buckets[p]) parts[p].Insert(h, idx);
        });
      }
    }

    // 3. Probe pass: probe chunks are morsels claimed through a shared
    // cursor; per-morsel pair outputs concatenate in morsel order,
    // preserving probe input order — byte-identical to the serial join.
    const size_t nprobe =
        probe.size() == 0
            ? 0
            : std::clamp<size_t>(probe.size() / kMinProbeRowsPerMorsel, 1,
                                 workers * 4);
    std::vector<JoinPairs> partial(nprobe);
    if (nprobe > 0) {
      const size_t probe_rows = (probe.size() + nprobe - 1) / nprobe;
      std::atomic<size_t> next{0};
      TaskGroup tg(exec.pool);
      for (size_t w = 0; w < std::min(workers, nprobe); ++w) {
        tg.Run([&] {
          for (size_t m = next.fetch_add(1, std::memory_order_relaxed);
               m < nprobe; m = next.fetch_add(1, std::memory_order_relaxed)) {
            const size_t lo = m * probe_rows;
            const size_t hi = std::min(probe.size(), lo + probe_rows);
            ProbePairsRangeKeys(probe, lo, hi, build, parts, part_mask,
                                hash_mask, &partial[m]);
          }
        });
      }
    }
    size_t total = 0;
    for (const auto& m : partial) total += m.size();
    pairs.reserve(total);
    for (const auto& m : partial)
      pairs.insert(pairs.end(), m.begin(), m.end());

    js->partitions = nparts;
    js->parallel = true;
  }

  js->output_rows = pairs.size();
  js->seconds = sw.ElapsedSeconds();
  return pairs;
}

JoinPairs HashJoinPairs(const std::vector<Row>& probe,
                        const std::vector<Row>& build, int probe_col,
                        int build_col, const ExecContext& exec,
                        JoinStats* stats) {
  const Stopwatch sw;
  JoinStats local;
  JoinStats* js = stats != nullptr ? stats : &local;
  js->build_rows = build.size();
  js->probe_rows = probe.size();

  // All regimes run on extracted key columns: typed values plus precomputed
  // hashes, so the serial and radix loops never box a Value, and the grace
  // path spills only (index, key) pages. The typed hashes equal Value::Hash,
  // keeping pair order byte-identical to the historical row-at-a-time join.
  // Grace-budget weights are the rows' materialized footprints, so a given
  // budget spills exactly when the historical row spill did.
  std::vector<size_t> weights;
  const std::vector<size_t>* wp = nullptr;
  if (exec.join_spill_budget_bytes > 0) {
    weights.reserve(build.size());
    for (const Row& r : build) weights.push_back(r.MemoryBytes());
    wp = &weights;
  }
  JoinPairs pairs =
      HashJoinPairsKeys(ExtractJoinKeys(probe, probe_col),
                        ExtractJoinKeys(build, build_col), exec, js, wp);

  js->build_rows = build.size();
  js->probe_rows = probe.size();
  js->output_rows = pairs.size();
  js->seconds = sw.ElapsedSeconds();
  return pairs;
}

std::vector<Row> MaterializeJoinPairs(const std::vector<Row>& probe,
                                      const std::vector<Row>& build,
                                      const JoinPairs& pairs,
                                      bool build_side_first,
                                      const ExecContext& exec) {
  std::vector<Row> out(pairs.size());
  const auto emit = [&](size_t lo, size_t hi) {
    for (size_t k = lo; k < hi; ++k) {
      const Row& l = probe[pairs[k].first];
      const Row& r = build[pairs[k].second];
      out[k] = build_side_first ? ConcatRows(r, l) : ConcatRows(l, r);
    }
  };
  if (exec.parallel() && pairs.size() >= 2 * kMinProbeRowsPerMorsel) {
    // Workers fill disjoint ranges of the pre-sized output in place.
    const size_t nchunks = std::min(exec.max_parallelism,
                                    pairs.size() / kMinProbeRowsPerMorsel);
    const size_t chunk = (pairs.size() + nchunks - 1) / nchunks;
    TaskGroup tg(exec.pool);
    for (size_t c = 0; c < nchunks; ++c)
      tg.Run([&, c] { emit(c * chunk, std::min(pairs.size(), (c + 1) * chunk)); });
  } else {
    emit(0, pairs.size());
  }
  return out;
}

std::vector<Row> HashJoin(const std::vector<Row>& left,
                          const std::vector<Row>& right, int left_col,
                          int right_col) {
  return HashJoin(left, right, left_col, right_col, ExecContext{}, nullptr);
}

std::vector<Row> HashJoin(const std::vector<Row>& left,
                          const std::vector<Row>& right, int left_col,
                          int right_col, const ExecContext& exec,
                          JoinStats* stats) {
  const Stopwatch sw;
  const JoinPairs pairs =
      HashJoinPairs(left, right, left_col, right_col, exec, stats);
  std::vector<Row> out = MaterializeJoinPairs(left, right, pairs,
                                              /*build_side_first=*/false,
                                              exec);
  if (stats != nullptr) stats->seconds = sw.ElapsedSeconds();
  return out;
}

namespace {

struct AggState {
  int64_t count = 0;
  double sum = 0;
  Value min, max;
  bool any = false;

  void Update(const Value& v) {
    ++count;
    if (v.is_null()) return;
    if (v.is_int64() || v.is_double()) sum += v.AsDouble();
    if (!any || v < min) min = v;
    if (!any || max < v) max = v;
    any = true;
  }

  void Merge(const AggState& o) {
    count += o.count;
    sum += o.sum;
    if (o.any) {
      if (!any || o.min < min) min = o.min;
      if (!any || max < o.max) max = o.max;
      any = true;
    }
  }
};

/// Hash of one batch cell, equal to cv.GetValue(i).Hash() without boxing —
/// Value::Hash delegates to the same typed primitives.
uint64_t HashCell(const ColumnVector& cv, size_t i) {
  if (cv.IsNull(i)) return HashNullValue();
  switch (cv.type()) {
    case Type::kInt64: return HashInt64(cv.GetInt64(i));
    case Type::kDouble: return HashDouble(cv.GetDouble(i));
    case Type::kString: return HashString(cv.GetString(i));
  }
  return HashNullValue();
}

/// Equal to (cv.GetValue(i) == key) — Value::Compare equality, where NULL
/// equals NULL (group keys bucket NULLs together) — without boxing the cell.
bool CellEqualsValue(const ColumnVector& cv, size_t i, const Value& key) {
  if (cv.IsNull(i)) return key.is_null();
  if (key.is_null()) return false;
  switch (cv.type()) {
    case Type::kInt64:
      if (key.is_string()) return false;
      if (key.is_int64()) return cv.GetInt64(i) == key.AsInt64();
      return static_cast<double>(cv.GetInt64(i)) == key.AsDouble();
    case Type::kDouble:
      if (key.is_string()) return false;
      return cv.GetDouble(i) == key.AsDouble();
    case Type::kString:
      return key.is_string() && cv.GetString(i) == key.AsString();
  }
  return false;
}

/// A (possibly partial) group-by hash table. Serial aggregation absorbs
/// every row into one table; parallel aggregation gives each worker its own
/// table over a disjoint row range and merges them single-threaded.
class GroupTable {
 public:
  GroupTable(const std::vector<int>& group_cols,
             const std::vector<AggSpec>& aggs)
      : group_cols_(group_cols), aggs_(aggs) {}

  void Absorb(const Row& row) {
    uint64_t h = 1469598103934665603ULL;
    for (int c : group_cols_)
      h = h * 1099511628211ULL ^ row.Get(static_cast<size_t>(c)).Hash();
    GroupData* gd = FindOrCreate(h, [&](const Row& key_row) {
      for (size_t i = 0; i < group_cols_.size(); ++i)
        if (row.Get(static_cast<size_t>(group_cols_[i])) != key_row.Get(i))
          return false;
      return true;
    }, [&] {
      Row key_row;
      for (int c : group_cols_)
        key_row.Append(row.Get(static_cast<size_t>(c)));
      return key_row;
    });
    for (size_t a = 0; a < aggs_.size(); ++a) {
      if (aggs_[a].column < 0)
        gd->states[a].Update(Value(static_cast<int64_t>(1)));
      else
        gd->states[a].Update(row.Get(static_cast<size_t>(aggs_[a].column)));
    }
  }

  /// Absorbs every active position of a batch. Group keys hash and compare
  /// through the typed cell helpers (no Value boxing on the hot path); a
  /// key row is boxed only when a new group materializes. State updates are
  /// bit-exact mirrors of Absorb on the row image, so a batch table and a
  /// row table over the same input finalize identically.
  void AbsorbBatch(const ColumnBatch& batch) {
    batch.ForEachActive([&](size_t i) {
      uint64_t h = 1469598103934665603ULL;
      for (int c : group_cols_)
        h = h * 1099511628211ULL ^
            HashCell(batch.columns[static_cast<size_t>(c)], i);
      GroupData* gd = FindOrCreate(h, [&](const Row& key_row) {
        for (size_t k = 0; k < group_cols_.size(); ++k)
          if (!CellEqualsValue(
                  batch.columns[static_cast<size_t>(group_cols_[k])], i,
                  key_row.Get(k)))
            return false;
        return true;
      }, [&] {
        Row key_row;
        for (int c : group_cols_)
          key_row.Append(batch.columns[static_cast<size_t>(c)].GetValue(i));
        return key_row;
      });
      for (size_t a = 0; a < aggs_.size(); ++a) {
        if (aggs_[a].column < 0)
          gd->states[a].Update(Value(static_cast<int64_t>(1)));
        else
          gd->states[a].Update(
              batch.columns[static_cast<size_t>(aggs_[a].column)].GetValue(i));
      }
    });
  }

  /// Merges another partial table into this one. Key rows hash identically
  /// in both tables (same FNV over the same group values), so the source
  /// bucket hash is reused directly.
  void MergeFrom(GroupTable&& other) {
    for (auto& [h, bucket] : other.groups_) {
      for (auto& theirs : bucket) {
        GroupData* mine = FindOrCreate(h, [&](const Row& key_row) {
          for (size_t i = 0; i < group_cols_.size(); ++i)
            if (theirs.key_row.Get(i) != key_row.Get(i)) return false;
          return true;
        }, [&] { return std::move(theirs.key_row); });
        for (size_t a = 0; a < aggs_.size(); ++a)
          mine->states[a].Merge(theirs.states[a]);
      }
    }
  }

  std::vector<Row> Finalize() {
    std::vector<Row> out;
    if (groups_.empty() && group_cols_.empty()) {
      // Global aggregate over zero rows: COUNT=0, others NULL.
      Row r;
      for (const auto& agg : aggs_)
        r.Append(agg.fn == AggSpec::Fn::kCount
                     ? Value(static_cast<int64_t>(0))
                     : Value::Null());
      out.push_back(std::move(r));
      return out;
    }
    for (auto& [h, bucket] : groups_) {
      for (auto& gd : bucket) {
        Row r = gd.key_row;
        for (size_t a = 0; a < aggs_.size(); ++a) {
          const AggState& s = gd.states[a];
          switch (aggs_[a].fn) {
            case AggSpec::Fn::kCount: r.Append(Value(s.count)); break;
            case AggSpec::Fn::kSum:
              r.Append(s.any ? Value(s.sum) : Value::Null());
              break;
            case AggSpec::Fn::kMin:
              r.Append(s.any ? s.min : Value::Null());
              break;
            case AggSpec::Fn::kMax:
              r.Append(s.any ? s.max : Value::Null());
              break;
            case AggSpec::Fn::kAvg:
              r.Append(s.any ? Value(s.sum / static_cast<double>(s.count))
                             : Value::Null());
              break;
          }
        }
        out.push_back(std::move(r));
      }
    }
    return out;
  }

 private:
  struct GroupData {
    Row key_row;
    std::vector<AggState> states;
  };

  template <typename MatchFn, typename MakeKeyFn>
  GroupData* FindOrCreate(uint64_t h, const MatchFn& matches,
                          const MakeKeyFn& make_key) {
    auto& bucket = groups_[h];
    for (auto& cand : bucket)
      if (matches(cand.key_row)) return &cand;
    GroupData fresh;
    fresh.key_row = make_key();
    fresh.states.resize(aggs_.size());
    bucket.push_back(std::move(fresh));
    return &bucket.back();
  }

  const std::vector<int>& group_cols_;
  const std::vector<AggSpec>& aggs_;
  std::unordered_map<uint64_t, std::vector<GroupData>> groups_;
};

/// Below this input size the fan-out overhead beats the win.
constexpr size_t kMinRowsPerAggWorker = 2048;

}  // namespace

std::vector<Row> HashAggregate(const std::vector<Row>& rows,
                               const std::vector<int>& group_cols,
                               const std::vector<AggSpec>& aggs) {
  GroupTable table(group_cols, aggs);
  for (const Row& row : rows) table.Absorb(row);
  return table.Finalize();
}

std::vector<Row> HashAggregate(const std::vector<Row>& rows,
                               const std::vector<int>& group_cols,
                               const std::vector<AggSpec>& aggs,
                               const ExecContext& exec) {
  size_t workers =
      exec.parallel()
          ? std::min(exec.max_parallelism,
                     std::max<size_t>(rows.size() / kMinRowsPerAggWorker, 1))
          : 1;
  if (workers <= 1) return HashAggregate(rows, group_cols, aggs);

  std::vector<GroupTable> tables;
  tables.reserve(workers);
  for (size_t w = 0; w < workers; ++w) tables.emplace_back(group_cols, aggs);
  const size_t chunk = (rows.size() + workers - 1) / workers;
  {
    TaskGroup tg(exec.pool);
    for (size_t w = 0; w < workers; ++w) {
      tg.Run([&, w] {
        const size_t lo = w * chunk;
        const size_t hi = std::min(rows.size(), lo + chunk);
        for (size_t i = lo; i < hi; ++i) tables[w].Absorb(rows[i]);
      });
    }
  }
  // Single-threaded combine in worker order (deterministic).
  for (size_t w = 1; w < workers; ++w)
    tables[0].MergeFrom(std::move(tables[w]));
  return tables[0].Finalize();
}

std::vector<Row> HashAggregate(const std::vector<ColumnBatch>& batches,
                               const std::vector<int>& group_cols,
                               const std::vector<AggSpec>& aggs,
                               const ExecContext& exec) {
  const size_t total = TotalActiveRows(batches);
  const size_t workers =
      exec.parallel()
          ? std::min({exec.max_parallelism,
                      std::max<size_t>(total / kMinRowsPerAggWorker, 1),
                      std::max<size_t>(batches.size(), 1)})
          : 1;
  if (workers <= 1) {
    GroupTable table(group_cols, aggs);
    for (const ColumnBatch& b : batches) table.AbsorbBatch(b);
    return table.Finalize();
  }
  // Parallel: each worker absorbs a contiguous range of whole batches into
  // its own partial table; tables combine single-threaded in worker order,
  // mirroring the row variant's determinism contract.
  std::vector<GroupTable> tables;
  tables.reserve(workers);
  for (size_t w = 0; w < workers; ++w) tables.emplace_back(group_cols, aggs);
  const size_t chunk = (batches.size() + workers - 1) / workers;
  {
    TaskGroup tg(exec.pool);
    for (size_t w = 0; w < workers; ++w) {
      tg.Run([&, w] {
        const size_t lo = w * chunk;
        const size_t hi = std::min(batches.size(), lo + chunk);
        for (size_t b = lo; b < hi; ++b) tables[w].AbsorbBatch(batches[b]);
      });
    }
  }
  for (size_t w = 1; w < workers; ++w)
    tables[0].MergeFrom(std::move(tables[w]));
  return tables[0].Finalize();
}

void SortLimit(std::vector<Row>* rows, int col, bool desc, size_t limit) {
  auto cmp = [col, desc](const Row& a, const Row& b) {
    const int c = a.Get(static_cast<size_t>(col))
                      .Compare(b.Get(static_cast<size_t>(col)));
    return desc ? c > 0 : c < 0;
  };
  if (limit != 0 && limit < rows->size()) {
    std::partial_sort(rows->begin(),
                      rows->begin() + static_cast<long>(limit), rows->end(),
                      cmp);
    rows->resize(limit);
  } else {
    std::stable_sort(rows->begin(), rows->end(), cmp);
  }
}

std::vector<Row> Project(const std::vector<Row>& rows,
                         const std::vector<int>& projection) {
  std::vector<Row> out;
  out.reserve(rows.size());
  for (const Row& r : rows) out.push_back(ProjectRow(r, projection));
  return out;
}

}  // namespace htap
