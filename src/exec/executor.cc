#include "exec/executor.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <unordered_map>
#include <utility>

#include "common/clock.h"

namespace htap {

namespace {

Row ProjectRow(const Row& row, const std::vector<int>& projection) {
  if (projection.empty()) return row;
  Row out;
  for (int c : projection) out.Append(row.Get(static_cast<size_t>(c)));
  return out;
}

/// Per-row-group cache of decoded segments so multi-conjunct predicates
/// decode each referenced column once per group, not once per conjunct.
class DecodedCache {
 public:
  explicit DecodedCache(const std::vector<Segment>& cols)
      : cols_(cols), slots_(cols.size()) {}

  const ColumnVector& Get(size_t col) {
    auto& slot = slots_[col];
    if (slot == nullptr)
      slot = std::make_unique<ColumnVector>(cols_[col].Decode());
    return *slot;
  }

 private:
  const std::vector<Segment>& cols_;
  std::vector<std::unique_ptr<ColumnVector>> slots_;
};

/// The "SIMD-friendly" columnar inner loop over a decoded buffer.
template <typename T>
void FilterTight(const std::vector<T>& vals, T x, CmpOp op,
                 std::vector<uint32_t>* sel) {
  size_t out = 0;
  switch (op) {
    case CmpOp::kEq:
      for (uint32_t i : *sel)
        if (vals[i] == x) (*sel)[out++] = i;
      break;
    case CmpOp::kNe:
      for (uint32_t i : *sel)
        if (vals[i] != x) (*sel)[out++] = i;
      break;
    case CmpOp::kLt:
      for (uint32_t i : *sel)
        if (vals[i] < x) (*sel)[out++] = i;
      break;
    case CmpOp::kLe:
      for (uint32_t i : *sel)
        if (vals[i] <= x) (*sel)[out++] = i;
      break;
    case CmpOp::kGt:
      for (uint32_t i : *sel)
        if (vals[i] > x) (*sel)[out++] = i;
      break;
    case CmpOp::kGe:
      for (uint32_t i : *sel)
        if (vals[i] >= x) (*sel)[out++] = i;
      break;
  }
  sel->resize(out);
}

/// Filters a selection vector in place with one comparison conjunct,
/// using a typed tight loop when the segment allows it. `cache` holds the
/// group's decoded segments; `col` is the segment's column index in it.
void FilterSelection(const Segment& seg, size_t col, CmpOp op,
                     const Value& lit, DecodedCache* cache,
                     std::vector<uint32_t>* sel) {
  // Fast paths: INT64/DOUBLE comparisons against a numeric literal over a
  // decoded buffer. Cross-type numeric comparisons go through AsDouble,
  // matching Value::Compare semantics.
  if (seg.type() == Type::kInt64 && lit.is_int64() && !seg.has_nulls()) {
    FilterTight(cache->Get(col).ints(), lit.AsInt64(), op, sel);
    return;
  }
  if (seg.type() == Type::kDouble && (lit.is_double() || lit.is_int64()) &&
      !seg.has_nulls()) {
    FilterTight(cache->Get(col).doubles(), lit.AsDouble(), op, sel);
    return;
  }
  // Generic path.
  size_t out = 0;
  for (uint32_t i : *sel) {
    const Value v = seg.Get(i);
    bool keep = false;
    if (!v.is_null() && !lit.is_null()) {
      const int c = v.Compare(lit);
      switch (op) {
        case CmpOp::kEq: keep = c == 0; break;
        case CmpOp::kNe: keep = c != 0; break;
        case CmpOp::kLt: keep = c < 0; break;
        case CmpOp::kLe: keep = c <= 0; break;
        case CmpOp::kGt: keep = c > 0; break;
        case CmpOp::kGe: keep = c >= 0; break;
      }
    }
    if (keep) (*sel)[out++] = i;
  }
  sel->resize(out);
}

/// Read-only state shared by every morsel of one HTAP scan.
struct HtapScanShared {
  const Predicate* pred;
  const std::vector<int>* projection;
  const std::unordered_map<Key, const DeltaEntry*>* overrides;
};

/// Scans one row group (one morsel) into `out`/`st`. Caller must hold the
/// table's scan latch shared.
void ScanGroup(const RowGroup& g, const HtapScanShared& s,
               std::vector<Row>* out, ScanStats* st) {
  const Predicate& pred = *s.pred;
  if (pred.CanSkipGroup(g.columns)) {
    ++st->groups_skipped;
    return;
  }
  // Initial selection: live, non-overridden positions.
  std::vector<uint32_t> sel;
  sel.reserve(g.num_rows);
  const bool any_deleted = g.deleted.AnySet();
  const auto& overrides = *s.overrides;
  for (uint32_t i = 0; i < g.num_rows; ++i) {
    if (any_deleted && g.deleted.Test(i)) continue;
    if (!overrides.empty() && overrides.count(g.keys[i]) != 0) continue;
    sel.push_back(i);
  }
  // Apply conjuncts column-at-a-time; non-conjunctive parts row-at-a-time.
  DecodedCache cache(g.columns);
  bool generic_needed = false;
  for (const Predicate* conj : pred.Conjuncts()) {
    if (conj->kind() == Predicate::Kind::kCompare) {
      const auto col = static_cast<size_t>(conj->column());
      FilterSelection(g.columns[col], col, conj->op(), conj->literal(),
                      &cache, &sel);
    } else {
      generic_needed = true;
    }
  }
  if (generic_needed) {
    size_t o = 0;
    for (uint32_t i : sel)
      if (pred.EvalColumns(g.columns, i)) sel[o++] = i;
    sel.resize(o);
  }
  // Materialize the projection.
  const std::vector<int>& projection = *s.projection;
  for (uint32_t i : sel) {
    Row r;
    if (projection.empty()) {
      for (const auto& col : g.columns) r.Append(col.Get(i));
    } else {
      for (int c : projection)
        r.Append(g.columns[static_cast<size_t>(c)].Get(i));
    }
    out->push_back(std::move(r));
    ++st->main_rows_emitted;
  }
}

}  // namespace

std::string QueryResult::ToString(size_t max_rows) const {
  std::string s;
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    if (i) s += " | ";
    s += schema.column(i).name;
  }
  s += "\n";
  for (size_t r = 0; r < rows.size() && r < max_rows; ++r) {
    for (size_t i = 0; i < rows[r].size(); ++i) {
      if (i) s += " | ";
      s += rows[r].Get(i).ToString();
    }
    s += "\n";
  }
  if (rows.size() > max_rows)
    s += "... (" + std::to_string(rows.size()) + " rows total)\n";
  return s;
}

std::vector<Row> ScanRowStore(const MvccRowStore& store, const Snapshot& snap,
                              const Predicate& pred,
                              const std::vector<int>& projection) {
  std::vector<Row> out;
  store.Scan(snap, [&](Key, const Row& row) {
    if (pred.Eval(row)) out.push_back(ProjectRow(row, projection));
    return true;
  });
  return out;
}

std::vector<Row> ScanRowStore(const MvccRowStore& store, const Snapshot& snap,
                              const Predicate& pred,
                              const std::vector<int>& projection,
                              const ExecContext& exec) {
  if (!exec.parallel())
    return ScanRowStore(store, snap, pred, projection);
  const std::vector<std::pair<Key, Key>> ranges =
      store.SplitKeyRanges(exec.max_parallelism);
  if (ranges.size() <= 1)
    return ScanRowStore(store, snap, pred, projection);

  std::vector<std::vector<Row>> partial(ranges.size());
  {
    TaskGroup tg(exec.pool);
    for (size_t i = 0; i < ranges.size(); ++i) {
      tg.Run([&, i] {
        store.ScanRange(snap, ranges[i].first, ranges[i].second,
                        [&](Key, const Row& row) {
                          if (pred.Eval(row))
                            partial[i].push_back(ProjectRow(row, projection));
                          return true;
                        });
      });
    }
  }
  size_t total = 0;
  for (const auto& p : partial) total += p.size();
  std::vector<Row> out;
  out.reserve(total);
  for (auto& p : partial)
    for (Row& r : p) out.push_back(std::move(r));
  return out;
}

std::vector<Row> ScanHtap(const ColumnTable& table, const DeltaReader* delta,
                          CSN snapshot, const Predicate& pred,
                          const std::vector<int>& projection,
                          const ExecContext& exec, ScanStats* stats) {
  ScanStats local;
  ScanStats* st = stats != nullptr ? stats : &local;

  // 1. Collect the delta override set: latest visible entry per key.
  std::unordered_map<Key, const DeltaEntry*> overrides;
  std::vector<DeltaEntry> delta_entries;
  if (delta != nullptr) {
    delta->ScanVisible(snapshot, [&](const DeltaEntry& e) {
      delta_entries.push_back(e);
    });
    st->delta_entries_read = delta_entries.size();
    for (const auto& e : delta_entries) overrides[e.key] = &e;
  }

  const HtapScanShared shared{&pred, &projection, &overrides};

  // 2. Scan the main column store, skipping deleted and overridden rows.
  // Hold the table's scan latch for the whole pass so Compact() cannot
  // invalidate group pointers mid-scan. One morsel per row group; merged
  // output preserves row-group order, so serial and parallel scans return
  // identical results.
  ReadGuard table_guard(table.latch());
  const size_t ngroups = table.num_groups_unlocked();
  st->groups_total = ngroups;

  // The delta-override partition is its own morsel: surviving latest-state
  // rows per key, non-deletes, in override-map iteration order (identical
  // for serial and parallel — the map is built identically in both).
  std::vector<Row> delta_out;
  ScanStats delta_st;
  auto delta_morsel = [&] {
    for (const auto& [key, e] : overrides) {
      if (e->op == ChangeOp::kDelete) continue;
      if (!pred.Eval(e->row)) continue;
      delta_out.push_back(ProjectRow(e->row, projection));
      ++delta_st.delta_rows_emitted;
    }
  };

  std::vector<Row> out;
  const size_t workers =
      exec.parallel() && ngroups > 1
          ? std::min(exec.max_parallelism, ngroups)
          : 1;
  if (workers <= 1) {
    for (size_t gi = 0; gi < ngroups; ++gi)
      ScanGroup(*table.group_unlocked(gi), shared, &out, st);
    delta_morsel();
  } else {
    // Workers claim group morsels through a shared cursor; per-group output
    // vectors keep the merge order-deterministic regardless of which worker
    // scanned which group.
    std::vector<std::vector<Row>> partial(ngroups);
    std::vector<ScanStats> wstats(workers);
    std::atomic<size_t> next{0};
    {
      TaskGroup tg(exec.pool);
      tg.Run(delta_morsel);
      for (size_t w = 0; w < workers; ++w) {
        tg.Run([&, w] {
          for (size_t gi = next.fetch_add(1, std::memory_order_relaxed);
               gi < ngroups;
               gi = next.fetch_add(1, std::memory_order_relaxed))
            ScanGroup(*table.group_unlocked(gi), shared, &partial[gi],
                      &wstats[w]);
        });
      }
    }
    for (const ScanStats& ws : wstats) {
      st->groups_skipped += ws.groups_skipped;
      st->main_rows_emitted += ws.main_rows_emitted;
    }
    size_t total = 0;
    for (const auto& p : partial) total += p.size();
    out.reserve(total + delta_out.size());
    for (auto& p : partial)
      for (Row& r : p) out.push_back(std::move(r));
  }

  // 3. Append the delta partition after the main groups (same position the
  // serial scan has always emitted it).
  st->delta_rows_emitted += delta_st.delta_rows_emitted;
  for (Row& r : delta_out) out.push_back(std::move(r));
  return out;
}

std::vector<Row> ScanHtap(const ColumnTable& table, const DeltaReader* delta,
                          CSN snapshot, const Predicate& pred,
                          const std::vector<int>& projection,
                          ScanStats* stats) {
  return ScanHtap(table, delta, snapshot, pred, projection, ExecContext{},
                  stats);
}

namespace {

/// Chained hash table over one radix partition of the build side. Chains
/// preserve build-input order per hash, so probing emits matches exactly in
/// nested-loop order — the property the serial/parallel byte-identity of
/// the join rests on.
class JoinPartitionTable {
 public:
  void Reserve(size_t rows) {
    slots_.reserve(rows);
    entries_.reserve(rows);
  }

  void Insert(uint64_t hash, uint32_t row) {
    const auto e = static_cast<uint32_t>(entries_.size());
    entries_.push_back(Entry{row, kEnd});
    auto [it, fresh] = slots_.try_emplace(hash, Chain{e, e});
    if (!fresh) {
      entries_[it->second.tail].next = e;
      it->second.tail = e;
    }
  }

  template <typename Fn>
  void ForEachHashMatch(uint64_t hash, const Fn& fn) const {
    const auto it = slots_.find(hash);
    if (it == slots_.end()) return;
    for (uint32_t e = it->second.head; e != kEnd; e = entries_[e].next)
      fn(entries_[e].row);
  }

 private:
  static constexpr uint32_t kEnd = 0xffffffffu;
  struct Chain {
    uint32_t head;
    uint32_t tail;
  };
  struct Entry {
    uint32_t row;
    uint32_t next;
  };
  std::unordered_map<uint64_t, Chain> slots_;
  std::vector<Entry> entries_;
};

Row ConcatRows(const Row& l, const Row& r) {
  std::vector<Value> vals;
  vals.reserve(l.size() + r.size());
  vals.insert(vals.end(), l.values().begin(), l.values().end());
  vals.insert(vals.end(), r.values().begin(), r.values().end());
  return Row(std::move(vals));
}

/// Probes left rows [lo, hi) against the partition tables. Two passes: a
/// hash-match pre-count sizes the output reservation (overcounting only on
/// hash collisions between unequal keys), then the emit pass confirms key
/// equality.
void ProbeRange(const std::vector<Row>& left, size_t lo, size_t hi,
                int left_col, const std::vector<Row>& right, int right_col,
                const std::vector<JoinPartitionTable>& parts,
                uint64_t part_mask, uint64_t hash_mask,
                std::vector<Row>* out) {
  const auto lc = static_cast<size_t>(left_col);
  const auto rc = static_cast<size_t>(right_col);
  std::vector<uint64_t> hashes(hi - lo);
  std::vector<uint8_t> has_key(hi - lo, 0);
  size_t estimate = 0;
  for (size_t i = lo; i < hi; ++i) {
    const Value& k = left[i].Get(lc);
    if (k.is_null()) continue;
    const uint64_t h = k.Hash() & hash_mask;
    hashes[i - lo] = h;
    has_key[i - lo] = 1;
    parts[h & part_mask].ForEachHashMatch(h, [&](uint32_t) { ++estimate; });
  }
  out->reserve(out->size() + estimate);
  for (size_t i = lo; i < hi; ++i) {
    if (!has_key[i - lo]) continue;
    const uint64_t h = hashes[i - lo];
    const Value& k = left[i].Get(lc);
    parts[h & part_mask].ForEachHashMatch(h, [&](uint32_t r) {
      if (right[r].Get(rc) != k) return;  // hash collision
      out->push_back(ConcatRows(left[i], right[r]));
    });
  }
}

/// Partition count: ~4 independent build morsels per worker for load
/// balance, power of two for mask addressing, capped at 64 so small builds
/// aren't shredded into allocation overhead.
size_t JoinPartitionCount(size_t workers) {
  size_t k = 16;
  while (k < workers * 4 && k < 64) k <<= 1;
  return k;
}

/// Below these sizes a scatter chunk / probe morsel isn't worth a task.
constexpr size_t kMinScatterRowsPerChunk = 8192;
constexpr size_t kMinProbeRowsPerMorsel = 4096;

}  // namespace

std::vector<Row> HashJoin(const std::vector<Row>& left,
                          const std::vector<Row>& right, int left_col,
                          int right_col) {
  return HashJoin(left, right, left_col, right_col, ExecContext{}, nullptr);
}

std::vector<Row> HashJoin(const std::vector<Row>& left,
                          const std::vector<Row>& right, int left_col,
                          int right_col, const ExecContext& exec,
                          JoinStats* stats) {
  const Stopwatch sw;
  JoinStats local;
  JoinStats* js = stats != nullptr ? stats : &local;
  js->build_rows = right.size();
  js->probe_rows = left.size();

  const auto rc = static_cast<size_t>(right_col);
  const uint64_t hash_mask = exec.join_hash_mask;
  std::vector<Row> out;

  if (!exec.parallel() || right.size() < exec.min_parallel_join_build) {
    // Serial path: one partition, built and probed inline.
    std::vector<JoinPartitionTable> parts(1);
    parts[0].Reserve(right.size());
    for (size_t i = 0; i < right.size(); ++i) {
      const Value& k = right[i].Get(rc);
      if (k.is_null()) continue;
      parts[0].Insert(k.Hash() & hash_mask, static_cast<uint32_t>(i));
    }
    ProbeRange(left, 0, left.size(), left_col, right, right_col, parts,
               /*part_mask=*/0, hash_mask, &out);
    js->partitions = 1;
    js->parallel = false;
    js->output_rows = out.size();
    js->seconds = sw.ElapsedSeconds();
    return out;
  }

  const size_t workers = exec.max_parallelism;
  const size_t nparts = JoinPartitionCount(workers);
  const uint64_t part_mask = nparts - 1;

  // 1. Partition pass: contiguous build chunks scatter (hash, row) pairs
  // into per-chunk partition buffers. Workers never share a buffer.
  const size_t nchunks = std::clamp<size_t>(
      right.size() / kMinScatterRowsPerChunk, 1, workers);
  const size_t chunk_rows = (right.size() + nchunks - 1) / nchunks;
  std::vector<std::vector<std::vector<std::pair<uint64_t, uint32_t>>>> scatter(
      nchunks);
  {
    TaskGroup tg(exec.pool);
    for (size_t c = 0; c < nchunks; ++c) {
      tg.Run([&, c] {
        auto& buckets = scatter[c];
        buckets.resize(nparts);
        const size_t hi = std::min(right.size(), (c + 1) * chunk_rows);
        for (size_t i = c * chunk_rows; i < hi; ++i) {
          const Value& k = right[i].Get(rc);
          if (k.is_null()) continue;
          const uint64_t h = k.Hash() & hash_mask;
          buckets[h & part_mask].emplace_back(h, static_cast<uint32_t>(i));
        }
      });
    }
  }

  // 2. Build pass: each partition's table is an independent morsel. Chunk
  // buffers merge in chunk order, so per-hash chains hold build rows in
  // input order exactly as the serial build does.
  std::vector<JoinPartitionTable> parts(nparts);
  {
    TaskGroup tg(exec.pool);
    for (size_t p = 0; p < nparts; ++p) {
      tg.Run([&, p] {
        size_t total = 0;
        for (const auto& buckets : scatter) total += buckets[p].size();
        parts[p].Reserve(total);
        for (const auto& buckets : scatter)
          for (const auto& [h, idx] : buckets[p]) parts[p].Insert(h, idx);
      });
    }
  }

  // 3. Probe pass: left chunks are morsels claimed through a shared cursor;
  // per-morsel outputs concatenate in morsel order, preserving left input
  // order — the parallel join is byte-identical to the serial one.
  const size_t nprobe = left.empty()
                            ? 0
                            : std::clamp<size_t>(
                                  left.size() / kMinProbeRowsPerMorsel, 1,
                                  workers * 4);
  std::vector<std::vector<Row>> partial(nprobe);
  if (nprobe > 0) {
    const size_t probe_rows = (left.size() + nprobe - 1) / nprobe;
    std::atomic<size_t> next{0};
    TaskGroup tg(exec.pool);
    for (size_t w = 0; w < std::min(workers, nprobe); ++w) {
      tg.Run([&] {
        for (size_t m = next.fetch_add(1, std::memory_order_relaxed);
             m < nprobe; m = next.fetch_add(1, std::memory_order_relaxed)) {
          const size_t lo = m * probe_rows;
          const size_t hi = std::min(left.size(), lo + probe_rows);
          ProbeRange(left, lo, hi, left_col, right, right_col, parts,
                     part_mask, hash_mask, &partial[m]);
        }
      });
    }
  }
  size_t total = 0;
  for (const auto& p : partial) total += p.size();
  out.reserve(total);
  for (auto& p : partial)
    for (Row& r : p) out.push_back(std::move(r));

  js->partitions = nparts;
  js->parallel = true;
  js->output_rows = out.size();
  js->seconds = sw.ElapsedSeconds();
  return out;
}

namespace {

struct AggState {
  int64_t count = 0;
  double sum = 0;
  Value min, max;
  bool any = false;

  void Update(const Value& v) {
    ++count;
    if (v.is_null()) return;
    if (v.is_int64() || v.is_double()) sum += v.AsDouble();
    if (!any || v < min) min = v;
    if (!any || max < v) max = v;
    any = true;
  }

  void Merge(const AggState& o) {
    count += o.count;
    sum += o.sum;
    if (o.any) {
      if (!any || o.min < min) min = o.min;
      if (!any || max < o.max) max = o.max;
      any = true;
    }
  }
};

/// A (possibly partial) group-by hash table. Serial aggregation absorbs
/// every row into one table; parallel aggregation gives each worker its own
/// table over a disjoint row range and merges them single-threaded.
class GroupTable {
 public:
  GroupTable(const std::vector<int>& group_cols,
             const std::vector<AggSpec>& aggs)
      : group_cols_(group_cols), aggs_(aggs) {}

  void Absorb(const Row& row) {
    uint64_t h = 1469598103934665603ULL;
    for (int c : group_cols_)
      h = h * 1099511628211ULL ^ row.Get(static_cast<size_t>(c)).Hash();
    GroupData* gd = FindOrCreate(h, [&](const Row& key_row) {
      for (size_t i = 0; i < group_cols_.size(); ++i)
        if (row.Get(static_cast<size_t>(group_cols_[i])) != key_row.Get(i))
          return false;
      return true;
    }, [&] {
      Row key_row;
      for (int c : group_cols_)
        key_row.Append(row.Get(static_cast<size_t>(c)));
      return key_row;
    });
    for (size_t a = 0; a < aggs_.size(); ++a) {
      if (aggs_[a].column < 0)
        gd->states[a].Update(Value(static_cast<int64_t>(1)));
      else
        gd->states[a].Update(row.Get(static_cast<size_t>(aggs_[a].column)));
    }
  }

  /// Merges another partial table into this one. Key rows hash identically
  /// in both tables (same FNV over the same group values), so the source
  /// bucket hash is reused directly.
  void MergeFrom(GroupTable&& other) {
    for (auto& [h, bucket] : other.groups_) {
      for (auto& theirs : bucket) {
        GroupData* mine = FindOrCreate(h, [&](const Row& key_row) {
          for (size_t i = 0; i < group_cols_.size(); ++i)
            if (theirs.key_row.Get(i) != key_row.Get(i)) return false;
          return true;
        }, [&] { return std::move(theirs.key_row); });
        for (size_t a = 0; a < aggs_.size(); ++a)
          mine->states[a].Merge(theirs.states[a]);
      }
    }
  }

  std::vector<Row> Finalize() {
    std::vector<Row> out;
    if (groups_.empty() && group_cols_.empty()) {
      // Global aggregate over zero rows: COUNT=0, others NULL.
      Row r;
      for (const auto& agg : aggs_)
        r.Append(agg.fn == AggSpec::Fn::kCount
                     ? Value(static_cast<int64_t>(0))
                     : Value::Null());
      out.push_back(std::move(r));
      return out;
    }
    for (auto& [h, bucket] : groups_) {
      for (auto& gd : bucket) {
        Row r = gd.key_row;
        for (size_t a = 0; a < aggs_.size(); ++a) {
          const AggState& s = gd.states[a];
          switch (aggs_[a].fn) {
            case AggSpec::Fn::kCount: r.Append(Value(s.count)); break;
            case AggSpec::Fn::kSum:
              r.Append(s.any ? Value(s.sum) : Value::Null());
              break;
            case AggSpec::Fn::kMin:
              r.Append(s.any ? s.min : Value::Null());
              break;
            case AggSpec::Fn::kMax:
              r.Append(s.any ? s.max : Value::Null());
              break;
            case AggSpec::Fn::kAvg:
              r.Append(s.any ? Value(s.sum / static_cast<double>(s.count))
                             : Value::Null());
              break;
          }
        }
        out.push_back(std::move(r));
      }
    }
    return out;
  }

 private:
  struct GroupData {
    Row key_row;
    std::vector<AggState> states;
  };

  template <typename MatchFn, typename MakeKeyFn>
  GroupData* FindOrCreate(uint64_t h, const MatchFn& matches,
                          const MakeKeyFn& make_key) {
    auto& bucket = groups_[h];
    for (auto& cand : bucket)
      if (matches(cand.key_row)) return &cand;
    GroupData fresh;
    fresh.key_row = make_key();
    fresh.states.resize(aggs_.size());
    bucket.push_back(std::move(fresh));
    return &bucket.back();
  }

  const std::vector<int>& group_cols_;
  const std::vector<AggSpec>& aggs_;
  std::unordered_map<uint64_t, std::vector<GroupData>> groups_;
};

/// Below this input size the fan-out overhead beats the win.
constexpr size_t kMinRowsPerAggWorker = 2048;

}  // namespace

std::vector<Row> HashAggregate(const std::vector<Row>& rows,
                               const std::vector<int>& group_cols,
                               const std::vector<AggSpec>& aggs) {
  GroupTable table(group_cols, aggs);
  for (const Row& row : rows) table.Absorb(row);
  return table.Finalize();
}

std::vector<Row> HashAggregate(const std::vector<Row>& rows,
                               const std::vector<int>& group_cols,
                               const std::vector<AggSpec>& aggs,
                               const ExecContext& exec) {
  size_t workers =
      exec.parallel()
          ? std::min(exec.max_parallelism,
                     std::max<size_t>(rows.size() / kMinRowsPerAggWorker, 1))
          : 1;
  if (workers <= 1) return HashAggregate(rows, group_cols, aggs);

  std::vector<GroupTable> tables;
  tables.reserve(workers);
  for (size_t w = 0; w < workers; ++w) tables.emplace_back(group_cols, aggs);
  const size_t chunk = (rows.size() + workers - 1) / workers;
  {
    TaskGroup tg(exec.pool);
    for (size_t w = 0; w < workers; ++w) {
      tg.Run([&, w] {
        const size_t lo = w * chunk;
        const size_t hi = std::min(rows.size(), lo + chunk);
        for (size_t i = lo; i < hi; ++i) tables[w].Absorb(rows[i]);
      });
    }
  }
  // Single-threaded combine in worker order (deterministic).
  for (size_t w = 1; w < workers; ++w)
    tables[0].MergeFrom(std::move(tables[w]));
  return tables[0].Finalize();
}

void SortLimit(std::vector<Row>* rows, int col, bool desc, size_t limit) {
  auto cmp = [col, desc](const Row& a, const Row& b) {
    const int c = a.Get(static_cast<size_t>(col))
                      .Compare(b.Get(static_cast<size_t>(col)));
    return desc ? c > 0 : c < 0;
  };
  if (limit != 0 && limit < rows->size()) {
    std::partial_sort(rows->begin(),
                      rows->begin() + static_cast<long>(limit), rows->end(),
                      cmp);
    rows->resize(limit);
  } else {
    std::stable_sort(rows->begin(), rows->end(), cmp);
  }
}

std::vector<Row> Project(const std::vector<Row>& rows,
                         const std::vector<int>& projection) {
  std::vector<Row> out;
  out.reserve(rows.size());
  for (const Row& r : rows) out.push_back(ProjectRow(r, projection));
  return out;
}

}  // namespace htap
