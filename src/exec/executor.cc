#include "exec/executor.h"

#include <algorithm>
#include <unordered_map>

namespace htap {

namespace {

Row ProjectRow(const Row& row, const std::vector<int>& projection) {
  if (projection.empty()) return row;
  Row out;
  for (int c : projection) out.Append(row.Get(static_cast<size_t>(c)));
  return out;
}

/// Filters a selection vector in place with one comparison conjunct,
/// using a typed tight loop when the segment allows it.
void FilterSelection(const Segment& seg, CmpOp op, const Value& lit,
                     std::vector<uint32_t>* sel) {
  size_t out = 0;
  // Fast path: INT64 comparisons against an INT64 literal over a decoded
  // buffer — this is the "SIMD-friendly" columnar inner loop.
  if (seg.type() == Type::kInt64 && lit.is_int64() && !seg.has_nulls()) {
    const ColumnVector decoded = seg.Decode();
    const auto& vals = decoded.ints();
    const int64_t x = lit.AsInt64();
    switch (op) {
      case CmpOp::kEq:
        for (uint32_t i : *sel)
          if (vals[i] == x) (*sel)[out++] = i;
        break;
      case CmpOp::kNe:
        for (uint32_t i : *sel)
          if (vals[i] != x) (*sel)[out++] = i;
        break;
      case CmpOp::kLt:
        for (uint32_t i : *sel)
          if (vals[i] < x) (*sel)[out++] = i;
        break;
      case CmpOp::kLe:
        for (uint32_t i : *sel)
          if (vals[i] <= x) (*sel)[out++] = i;
        break;
      case CmpOp::kGt:
        for (uint32_t i : *sel)
          if (vals[i] > x) (*sel)[out++] = i;
        break;
      case CmpOp::kGe:
        for (uint32_t i : *sel)
          if (vals[i] >= x) (*sel)[out++] = i;
        break;
    }
    sel->resize(out);
    return;
  }
  // Generic path.
  for (uint32_t i : *sel) {
    const Value v = seg.Get(i);
    bool keep = false;
    if (!v.is_null() && !lit.is_null()) {
      const int c = v.Compare(lit);
      switch (op) {
        case CmpOp::kEq: keep = c == 0; break;
        case CmpOp::kNe: keep = c != 0; break;
        case CmpOp::kLt: keep = c < 0; break;
        case CmpOp::kLe: keep = c <= 0; break;
        case CmpOp::kGt: keep = c > 0; break;
        case CmpOp::kGe: keep = c >= 0; break;
      }
    }
    if (keep) (*sel)[out++] = i;
  }
  sel->resize(out);
}

}  // namespace

std::string QueryResult::ToString(size_t max_rows) const {
  std::string s;
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    if (i) s += " | ";
    s += schema.column(i).name;
  }
  s += "\n";
  for (size_t r = 0; r < rows.size() && r < max_rows; ++r) {
    for (size_t i = 0; i < rows[r].size(); ++i) {
      if (i) s += " | ";
      s += rows[r].Get(i).ToString();
    }
    s += "\n";
  }
  if (rows.size() > max_rows)
    s += "... (" + std::to_string(rows.size()) + " rows total)\n";
  return s;
}

std::vector<Row> ScanRowStore(const MvccRowStore& store, const Snapshot& snap,
                              const Predicate& pred,
                              const std::vector<int>& projection) {
  std::vector<Row> out;
  store.Scan(snap, [&](Key, const Row& row) {
    if (pred.Eval(row)) out.push_back(ProjectRow(row, projection));
    return true;
  });
  return out;
}

std::vector<Row> ScanHtap(const ColumnTable& table, const DeltaReader* delta,
                          CSN snapshot, const Predicate& pred,
                          const std::vector<int>& projection,
                          ScanStats* stats) {
  ScanStats local;
  ScanStats* st = stats != nullptr ? stats : &local;

  // 1. Collect the delta override set: latest visible entry per key.
  std::unordered_map<Key, const DeltaEntry*> overrides;
  std::vector<DeltaEntry> delta_entries;
  if (delta != nullptr) {
    delta->ScanVisible(snapshot, [&](const DeltaEntry& e) {
      delta_entries.push_back(e);
    });
    st->delta_entries_read = delta_entries.size();
    for (const auto& e : delta_entries) overrides[e.key] = &e;
  }

  std::vector<Row> out;

  // 2. Scan the main column store, skipping deleted and overridden rows.
  // Hold the table's scan latch for the whole pass so Compact() cannot
  // invalidate group pointers mid-scan.
  ReadGuard table_guard(table.latch());
  const size_t ngroups = table.num_groups_unlocked();
  st->groups_total = ngroups;
  for (size_t gi = 0; gi < ngroups; ++gi) {
    const RowGroup* g = table.group_unlocked(gi);
    if (pred.CanSkipGroup(g->columns)) {
      ++st->groups_skipped;
      continue;
    }
    // Initial selection: live, non-overridden positions.
    std::vector<uint32_t> sel;
    sel.reserve(g->num_rows);
    const bool any_deleted = g->deleted.AnySet();
    for (uint32_t i = 0; i < g->num_rows; ++i) {
      if (any_deleted && g->deleted.Test(i)) continue;
      if (!overrides.empty() && overrides.count(g->keys[i]) != 0) continue;
      sel.push_back(i);
    }
    // Apply conjuncts column-at-a-time; non-conjunctive parts row-at-a-time.
    bool generic_needed = false;
    for (const Predicate* conj : pred.Conjuncts()) {
      if (conj->kind() == Predicate::Kind::kCompare) {
        FilterSelection(g->columns[static_cast<size_t>(conj->column())],
                        conj->op(), conj->literal(), &sel);
      } else {
        generic_needed = true;
      }
    }
    if (generic_needed) {
      size_t o = 0;
      for (uint32_t i : sel)
        if (pred.EvalColumns(g->columns, i)) sel[o++] = i;
      sel.resize(o);
    }
    // Materialize the projection.
    for (uint32_t i : sel) {
      Row r;
      if (projection.empty()) {
        for (const auto& col : g->columns) r.Append(col.Get(i));
      } else {
        for (int c : projection)
          r.Append(g->columns[static_cast<size_t>(c)].Get(i));
      }
      out.push_back(std::move(r));
      ++st->main_rows_emitted;
    }
  }

  // 3. Emit surviving delta rows (latest state per key, non-deletes).
  for (const auto& [key, e] : overrides) {
    if (e->op == ChangeOp::kDelete) continue;
    if (!pred.Eval(e->row)) continue;
    out.push_back(ProjectRow(e->row, projection));
    ++st->delta_rows_emitted;
  }
  return out;
}

std::vector<Row> HashJoin(const std::vector<Row>& left,
                          const std::vector<Row>& right, int left_col,
                          int right_col) {
  std::unordered_multimap<uint64_t, const Row*> build;
  build.reserve(right.size());
  for (const Row& r : right) {
    const Value& k = r.Get(static_cast<size_t>(right_col));
    if (k.is_null()) continue;
    build.emplace(k.Hash(), &r);
  }
  std::vector<Row> out;
  for (const Row& l : left) {
    const Value& k = l.Get(static_cast<size_t>(left_col));
    if (k.is_null()) continue;
    const auto range = build.equal_range(k.Hash());
    for (auto it = range.first; it != range.second; ++it) {
      const Row& r = *it->second;
      if (r.Get(static_cast<size_t>(right_col)) != k) continue;  // hash collision
      Row joined = l;
      for (const Value& v : r.values()) joined.Append(v);
      out.push_back(std::move(joined));
    }
  }
  return out;
}

namespace {

struct AggState {
  int64_t count = 0;
  double sum = 0;
  Value min, max;
  bool any = false;

  void Update(const Value& v) {
    ++count;
    if (v.is_null()) return;
    if (v.is_int64() || v.is_double()) sum += v.AsDouble();
    if (!any || v < min) min = v;
    if (!any || max < v) max = v;
    any = true;
  }
};

}  // namespace

std::vector<Row> HashAggregate(const std::vector<Row>& rows,
                               const std::vector<int>& group_cols,
                               const std::vector<AggSpec>& aggs) {
  struct GroupData {
    Row key_row;
    std::vector<AggState> states;
  };
  std::unordered_map<uint64_t, std::vector<GroupData>> groups;

  auto group_hash = [&](const Row& row) {
    uint64_t h = 1469598103934665603ULL;
    for (int c : group_cols)
      h = h * 1099511628211ULL ^ row.Get(static_cast<size_t>(c)).Hash();
    return h;
  };
  auto same_group = [&](const Row& row, const Row& key_row) {
    for (size_t i = 0; i < group_cols.size(); ++i)
      if (row.Get(static_cast<size_t>(group_cols[i])) != key_row.Get(i))
        return false;
    return true;
  };

  for (const Row& row : rows) {
    const uint64_t h = group_hash(row);
    auto& bucket = groups[h];
    GroupData* gd = nullptr;
    for (auto& cand : bucket)
      if (same_group(row, cand.key_row)) {
        gd = &cand;
        break;
      }
    if (gd == nullptr) {
      GroupData fresh;
      for (int c : group_cols)
        fresh.key_row.Append(row.Get(static_cast<size_t>(c)));
      fresh.states.resize(aggs.size());
      bucket.push_back(std::move(fresh));
      gd = &bucket.back();
    }
    for (size_t a = 0; a < aggs.size(); ++a) {
      if (aggs[a].column < 0)
        gd->states[a].Update(Value(static_cast<int64_t>(1)));
      else
        gd->states[a].Update(row.Get(static_cast<size_t>(aggs[a].column)));
    }
  }

  std::vector<Row> out;
  if (groups.empty() && group_cols.empty()) {
    // Global aggregate over zero rows: COUNT=0, others NULL.
    Row r;
    for (const auto& agg : aggs)
      r.Append(agg.fn == AggSpec::Fn::kCount ? Value(static_cast<int64_t>(0))
                                             : Value::Null());
    out.push_back(std::move(r));
    return out;
  }
  for (auto& [h, bucket] : groups) {
    for (auto& gd : bucket) {
      Row r = gd.key_row;
      for (size_t a = 0; a < aggs.size(); ++a) {
        const AggState& s = gd.states[a];
        switch (aggs[a].fn) {
          case AggSpec::Fn::kCount: r.Append(Value(s.count)); break;
          case AggSpec::Fn::kSum:
            r.Append(s.any ? Value(s.sum) : Value::Null());
            break;
          case AggSpec::Fn::kMin: r.Append(s.any ? s.min : Value::Null()); break;
          case AggSpec::Fn::kMax: r.Append(s.any ? s.max : Value::Null()); break;
          case AggSpec::Fn::kAvg:
            r.Append(s.any ? Value(s.sum / static_cast<double>(s.count))
                           : Value::Null());
            break;
        }
      }
      out.push_back(std::move(r));
    }
  }
  return out;
}

void SortLimit(std::vector<Row>* rows, int col, bool desc, size_t limit) {
  auto cmp = [col, desc](const Row& a, const Row& b) {
    const int c = a.Get(static_cast<size_t>(col))
                      .Compare(b.Get(static_cast<size_t>(col)));
    return desc ? c > 0 : c < 0;
  };
  if (limit != 0 && limit < rows->size()) {
    std::partial_sort(rows->begin(),
                      rows->begin() + static_cast<long>(limit), rows->end(),
                      cmp);
    rows->resize(limit);
  } else {
    std::stable_sort(rows->begin(), rows->end(), cmp);
  }
}

std::vector<Row> Project(const std::vector<Row>& rows,
                         const std::vector<int>& projection) {
  std::vector<Row> out;
  out.reserve(rows.size());
  for (const Row& r : rows) out.push_back(ProjectRow(r, projection));
  return out;
}

}  // namespace htap
