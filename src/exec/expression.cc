#include "exec/expression.h"

#include "types/schema.h"

namespace htap {

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return "=";
    case CmpOp::kNe: return "!=";
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
  }
  return "?";
}

Predicate Predicate::Compare(int column, CmpOp op, Value literal) {
  Predicate p;
  p.kind_ = Kind::kCompare;
  p.column_ = column;
  p.op_ = op;
  p.literal_ = std::move(literal);
  return p;
}

Predicate Predicate::And(std::vector<Predicate> children) {
  if (children.size() == 1) return std::move(children[0]);
  Predicate p;
  p.kind_ = Kind::kAnd;
  p.children_ = std::move(children);
  return p;
}

Predicate Predicate::Or(std::vector<Predicate> children) {
  if (children.size() == 1) return std::move(children[0]);
  Predicate p;
  p.kind_ = Kind::kOr;
  p.children_ = std::move(children);
  return p;
}

Predicate Predicate::Not(Predicate child) {
  Predicate p;
  p.kind_ = Kind::kNot;
  p.children_.push_back(std::move(child));
  return p;
}

Predicate Predicate::Between(int col, Value lo, Value hi) {
  std::vector<Predicate> cs;
  cs.push_back(Ge(col, std::move(lo)));
  cs.push_back(Le(col, std::move(hi)));
  return And(std::move(cs));
}

namespace {

bool CompareValues(const Value& lhs, CmpOp op, const Value& rhs) {
  if (lhs.is_null() || rhs.is_null()) return false;  // SQL NULL semantics
  const int c = lhs.Compare(rhs);
  switch (op) {
    case CmpOp::kEq: return c == 0;
    case CmpOp::kNe: return c != 0;
    case CmpOp::kLt: return c < 0;
    case CmpOp::kLe: return c <= 0;
    case CmpOp::kGt: return c > 0;
    case CmpOp::kGe: return c >= 0;
  }
  return false;
}

}  // namespace

bool Predicate::Eval(const Row& row) const {
  switch (kind_) {
    case Kind::kTrue:
      return true;
    case Kind::kCompare:
      return CompareValues(row.Get(static_cast<size_t>(column_)), op_,
                           literal_);
    case Kind::kAnd:
      for (const auto& c : children_)
        if (!c.Eval(row)) return false;
      return true;
    case Kind::kOr:
      for (const auto& c : children_)
        if (c.Eval(row)) return true;
      return false;
    case Kind::kNot:
      return !children_[0].Eval(row);
  }
  return false;
}

bool Predicate::EvalColumns(const std::vector<Segment>& segments,
                            size_t i) const {
  switch (kind_) {
    case Kind::kTrue:
      return true;
    case Kind::kCompare:
      return CompareValues(segments[static_cast<size_t>(column_)].Get(i), op_,
                           literal_);
    case Kind::kAnd:
      for (const auto& c : children_)
        if (!c.EvalColumns(segments, i)) return false;
      return true;
    case Kind::kOr:
      for (const auto& c : children_)
        if (c.EvalColumns(segments, i)) return true;
      return false;
    case Kind::kNot:
      return !children_[0].EvalColumns(segments, i);
  }
  return false;
}

bool Predicate::CanSkipGroup(const std::vector<Segment>& segments) const {
  switch (kind_) {
    case Kind::kCompare: {
      const Segment& seg = segments[static_cast<size_t>(column_)];
      return seg.CanSkip(CmpOpName(op_), literal_);
    }
    case Kind::kAnd:
      for (const auto& c : children_)
        if (c.CanSkipGroup(segments)) return true;  // one impossible conjunct
      return false;
    default:
      return false;  // kTrue / kOr / kNot: never prove emptiness
  }
}

std::vector<const Predicate*> Predicate::Conjuncts() const {
  std::vector<const Predicate*> out;
  if (kind_ == Kind::kAnd) {
    for (const auto& c : children_) {
      auto sub = c.Conjuncts();
      out.insert(out.end(), sub.begin(), sub.end());
    }
  } else if (kind_ != Kind::kTrue) {
    out.push_back(this);
  }
  return out;
}

double Predicate::DefaultSelectivity() const {
  switch (kind_) {
    case Kind::kTrue:
      return 1.0;
    case Kind::kCompare:
      switch (op_) {
        case CmpOp::kEq: return 0.05;
        case CmpOp::kNe: return 0.95;
        default: return 0.3;
      }
    case Kind::kAnd: {
      double s = 1.0;
      for (const auto& c : children_) s *= c.DefaultSelectivity();
      return s;
    }
    case Kind::kOr: {
      double not_s = 1.0;
      for (const auto& c : children_) not_s *= 1.0 - c.DefaultSelectivity();
      return 1.0 - not_s;
    }
    case Kind::kNot:
      return 1.0 - children_[0].DefaultSelectivity();
  }
  return 1.0;
}

std::vector<int> Predicate::ReferencedColumns() const {
  std::vector<int> out;
  if (kind_ == Kind::kCompare) {
    out.push_back(column_);
    return out;
  }
  for (const auto& c : children_) {
    for (int col : c.ReferencedColumns()) {
      bool present = false;
      for (int existing : out) present |= existing == col;
      if (!present) out.push_back(col);
    }
  }
  return out;
}

std::string Predicate::ToString(const Schema* schema) const {
  auto col_name = [&](int c) {
    if (schema != nullptr) return schema->column(static_cast<size_t>(c)).name;
    return "$" + std::to_string(c);
  };
  switch (kind_) {
    case Kind::kTrue:
      return "TRUE";
    case Kind::kCompare:
      return col_name(column_) + " " + CmpOpName(op_) + " " +
             literal_.ToString();
    case Kind::kAnd:
    case Kind::kOr: {
      std::string sep = kind_ == Kind::kAnd ? " AND " : " OR ";
      std::string s = "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i) s += sep;
        s += children_[i].ToString(schema);
      }
      return s + ")";
    }
    case Kind::kNot:
      return "NOT " + children_[0].ToString(schema);
  }
  return "?";
}

}  // namespace htap
