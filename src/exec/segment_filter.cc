#include "exec/segment_filter.h"

namespace htap {

namespace {

/// The tight refine loop: keeps selected positions where cmp(get(i), x).
/// `nulls` is null when the segment has no NULLs (the common case — the
/// inner condition folds away).
template <typename T, typename GetFn>
void FilterTypedLoop(CmpOp op, const T& x, const GetFn& get,
                     const Bitmap* nulls, std::vector<uint32_t>* sel) {
  const auto run = [&](auto cmp) {
    size_t out = 0;
    for (uint32_t i : *sel) {
      if (nulls != nullptr && nulls->Test(i)) continue;
      if (cmp(get(i), x)) (*sel)[out++] = i;
    }
    sel->resize(out);
  };
  switch (op) {
    case CmpOp::kEq: run([](const T& a, const T& b) { return a == b; }); break;
    case CmpOp::kNe: run([](const T& a, const T& b) { return a != b; }); break;
    case CmpOp::kLt: run([](const T& a, const T& b) { return a < b; }); break;
    case CmpOp::kLe: run([](const T& a, const T& b) { return a <= b; }); break;
    case CmpOp::kGt: run([](const T& a, const T& b) { return a > b; }); break;
    case CmpOp::kGe: run([](const T& a, const T& b) { return a >= b; }); break;
  }
}

/// Keeps selected positions where match[code(i)] — the dictionary and RLE
/// inner loop once the per-entry/per-run table is computed.
template <typename CodeFn>
void FilterByMatchTable(const std::vector<uint8_t>& match, const CodeFn& code,
                        const Bitmap* nulls, std::vector<uint32_t>* sel) {
  size_t out = 0;
  for (uint32_t i : *sel) {
    if (nulls != nullptr && nulls->Test(i)) continue;
    if (match[code(i)]) (*sel)[out++] = i;
  }
  sel->resize(out);
}

void DropNulls(const Bitmap& nulls, std::vector<uint32_t>* sel) {
  size_t out = 0;
  for (uint32_t i : *sel)
    if (!nulls.Test(i)) (*sel)[out++] = i;
  sel->resize(out);
}

/// Numeric-typed dispatch shared by PLAIN-int64 and FOR (both expose the
/// value through `geti`). An int64 literal compares in the integer domain,
/// a double literal through AsDouble — exactly Value::Compare.
template <typename GetIntFn>
void FilterInt64Domain(CmpOp op, const Value& lit, const GetIntFn& geti,
                       const Bitmap* nulls, std::vector<uint32_t>* sel) {
  if (lit.is_int64()) {
    FilterTypedLoop<int64_t>(op, lit.AsInt64(), geti, nulls, sel);
  } else {
    FilterTypedLoop<double>(
        op, lit.AsDouble(),
        [&](uint32_t i) { return static_cast<double>(geti(i)); }, nulls, sel);
  }
}

void FilterPlain(const EncodedColumn& col, CmpOp op, const Value& lit,
                 const Bitmap* nulls, std::vector<uint32_t>* sel) {
  switch (col.type) {
    case Type::kInt64:
      FilterInt64Domain(op, lit, [&](uint32_t i) { return col.ints[i]; },
                        nulls, sel);
      return;
    case Type::kDouble:
      FilterTypedLoop<double>(op, lit.AsDouble(),
                              [&](uint32_t i) { return col.doubles[i]; },
                              nulls, sel);
      return;
    case Type::kString:
      FilterTypedLoop<std::string>(
          op, lit.AsString(),
          [&](uint32_t i) -> const std::string& { return col.strings[i]; },
          nulls, sel);
      return;
  }
}

void FilterDictionary(const EncodedColumn& col, CmpOp op, const Value& lit,
                      const Bitmap* nulls, std::vector<uint32_t>* sel) {
  // Translate the literal into code space: one comparison per dictionary
  // entry, then the per-row loop is a byte-table lookup.
  const bool str = col.type == Type::kString;
  const size_t dict_size = str ? col.strings.size() : col.ints.size();
  std::vector<uint8_t> match(dict_size, 0);
  bool any = false;
  for (size_t d = 0; d < dict_size; ++d) {
    const Value v = str ? Value(col.strings[d]) : Value(col.ints[d]);
    if (CmpKeep(v.Compare(lit), op)) {
      match[d] = 1;
      any = true;
    }
  }
  if (!any) {
    sel->clear();
    return;
  }
  FilterByMatchTable(match, [&](uint32_t i) { return col.codes[i]; }, nulls,
                     sel);
}

void FilterRle(const EncodedColumn& col, CmpOp op, const Value& lit,
               const Bitmap* nulls, std::vector<uint32_t>* sel) {
  // One comparison per run, then a run-granular walk of the ascending
  // selection (no binary search per position).
  const size_t nruns = col.run_ends.size();
  std::vector<uint8_t> rmatch(nruns, 0);
  bool any = false;
  for (size_t r = 0; r < nruns; ++r) {
    Value v;
    switch (col.type) {
      case Type::kInt64: v = Value(col.ints[r]); break;
      case Type::kDouble: v = Value(col.doubles[r]); break;
      case Type::kString: v = Value(col.strings[r]); break;
    }
    if (CmpKeep(v.Compare(lit), op)) {
      rmatch[r] = 1;
      any = true;
    }
  }
  if (!any) {
    sel->clear();
    return;
  }
  size_t run = 0;
  size_t out = 0;
  for (uint32_t i : *sel) {
    while (col.run_ends[run] <= i) ++run;
    if (nulls != nullptr && nulls->Test(i)) continue;
    if (rmatch[run]) (*sel)[out++] = i;
  }
  sel->resize(out);
}

}  // namespace

bool SegmentCanSkip(const Segment& seg, CmpOp op, const Value& lit) {
  if (seg.min().is_null()) return true;  // empty or all-NULL segment
  switch (op) {
    case CmpOp::kEq: return lit < seg.min() || seg.max() < lit;
    case CmpOp::kLt: return !(seg.min() < lit);
    case CmpOp::kLe: return lit < seg.min();
    case CmpOp::kGt: return !(lit < seg.max());
    case CmpOp::kGe: return seg.max() < lit;
    case CmpOp::kNe: return false;
  }
  return false;
}

void FilterSegmentSelection(const Segment& seg, CmpOp op, const Value& lit,
                            std::vector<uint32_t>* sel) {
  if (sel->empty()) return;
  if (lit.is_null()) {  // comparisons against NULL are false
    sel->clear();
    return;
  }
  const EncodedColumn& col = seg.encoded();
  const Bitmap* nulls = seg.has_nulls() ? &col.nulls : nullptr;

  // Cross-class comparison (numeric column vs string literal or the
  // reverse) has one outcome for every non-NULL value: numbers sort before
  // strings. Resolve it without touching the payload.
  const bool col_numeric = col.type != Type::kString;
  const bool lit_numeric = !lit.is_string();
  if (col_numeric != lit_numeric) {
    if (!CmpKeep(col_numeric ? -1 : 1, op)) {
      sel->clear();
    } else if (nulls != nullptr) {
      DropNulls(*nulls, sel);
    }
    return;
  }

  switch (col.encoding) {
    case EncodingType::kPlain: FilterPlain(col, op, lit, nulls, sel); return;
    case EncodingType::kDictionary:
      FilterDictionary(col, op, lit, nulls, sel);
      return;
    case EncodingType::kRle: FilterRle(col, op, lit, nulls, sel); return;
    case EncodingType::kForBitPack:
      if (SegmentCanSkip(seg, op, lit)) {
        sel->clear();
        return;
      }
      FilterInt64Domain(op, lit, [&](uint32_t i) { return ForUnpackAt(col, i); },
                        nulls, sel);
      return;
  }
  // Backstop for encodings this kernel does not know (none today): the
  // scalar Value path, byte-identical by construction.
  size_t out = 0;
  for (uint32_t i : *sel) {
    const Value v = seg.Get(i);
    if (!v.is_null() && CmpKeep(v.Compare(lit), op)) (*sel)[out++] = i;
  }
  sel->resize(out);
}

void GatherSegment(const Segment& seg, const std::vector<uint32_t>& sel,
                   ColumnVector* out) {
  const EncodedColumn& col = seg.encoded();
  const Bitmap* nulls = seg.has_nulls() ? &col.nulls : nullptr;
  const auto is_null = [&](uint32_t i) {
    return nulls != nullptr && nulls->Test(i);
  };
  switch (col.encoding) {
    case EncodingType::kPlain:
      switch (col.type) {
        case Type::kInt64:
          for (uint32_t i : sel)
            is_null(i) ? out->AppendNull() : out->AppendInt64(col.ints[i]);
          return;
        case Type::kDouble:
          for (uint32_t i : sel)
            is_null(i) ? out->AppendNull() : out->AppendDouble(col.doubles[i]);
          return;
        case Type::kString:
          for (uint32_t i : sel)
            is_null(i) ? out->AppendNull() : out->AppendString(col.strings[i]);
          return;
      }
      return;
    case EncodingType::kDictionary:
      if (col.type == Type::kString) {
        for (uint32_t i : sel)
          is_null(i) ? out->AppendNull()
                     : out->AppendString(col.strings[col.codes[i]]);
      } else {
        for (uint32_t i : sel)
          is_null(i) ? out->AppendNull()
                     : out->AppendInt64(col.ints[col.codes[i]]);
      }
      return;
    case EncodingType::kRle: {
      size_t run = 0;
      for (uint32_t i : sel) {
        while (col.run_ends[run] <= i) ++run;
        if (is_null(i)) {
          out->AppendNull();
          continue;
        }
        switch (col.type) {
          case Type::kInt64: out->AppendInt64(col.ints[run]); break;
          case Type::kDouble: out->AppendDouble(col.doubles[run]); break;
          case Type::kString: out->AppendString(col.strings[run]); break;
        }
      }
      return;
    }
    case EncodingType::kForBitPack:
      for (uint32_t i : sel)
        is_null(i) ? out->AppendNull() : out->AppendInt64(ForUnpackAt(col, i));
      return;
  }
  for (uint32_t i : sel) out->AppendValue(seg.Get(i));  // backstop
}

}  // namespace htap
