// Predicates and aggregate specifications for the execution layer.
//
// Predicates are trees of comparisons against literals combined with
// AND/OR. Columns are referenced positionally (the planner resolves names).
// Conjunctive predicates drive zone-map skipping in the columnar scan.

#ifndef HTAP_EXEC_EXPRESSION_H_
#define HTAP_EXEC_EXPRESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "columnar/segment.h"
#include "types/row.h"

namespace htap {

enum class CmpOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CmpOpName(CmpOp op);

/// A boolean expression tree over a row.
class Predicate {
 public:
  enum class Kind : uint8_t { kTrue, kCompare, kAnd, kOr, kNot };

  /// Always-true predicate (scan everything).
  Predicate() : kind_(Kind::kTrue) {}

  static Predicate True() { return Predicate(); }
  static Predicate Compare(int column, CmpOp op, Value literal);
  static Predicate And(std::vector<Predicate> children);
  static Predicate Or(std::vector<Predicate> children);
  static Predicate Not(Predicate child);

  // Convenience builders.
  static Predicate Eq(int col, Value v) { return Compare(col, CmpOp::kEq, std::move(v)); }
  static Predicate Ne(int col, Value v) { return Compare(col, CmpOp::kNe, std::move(v)); }
  static Predicate Lt(int col, Value v) { return Compare(col, CmpOp::kLt, std::move(v)); }
  static Predicate Le(int col, Value v) { return Compare(col, CmpOp::kLe, std::move(v)); }
  static Predicate Gt(int col, Value v) { return Compare(col, CmpOp::kGt, std::move(v)); }
  static Predicate Ge(int col, Value v) { return Compare(col, CmpOp::kGe, std::move(v)); }
  /// lo <= col <= hi.
  static Predicate Between(int col, Value lo, Value hi);

  Kind kind() const { return kind_; }
  int column() const { return column_; }
  CmpOp op() const { return op_; }
  const Value& literal() const { return literal_; }
  const std::vector<Predicate>& children() const { return children_; }

  bool is_true() const { return kind_ == Kind::kTrue; }

  /// Evaluates against a full row. SQL three-valued logic collapsed to
  /// binary: comparisons against NULL are false.
  bool Eval(const Row& row) const;

  /// Evaluates against one position of a row group's segments.
  bool EvalColumns(const std::vector<Segment>& segments, size_t i) const;

  /// True if zone maps prove no row in these segments can match. Only
  /// conjunctive structure is exploited (OR nodes are never skipped on).
  bool CanSkipGroup(const std::vector<Segment>& segments) const;

  /// Flattens an AND tree into conjuncts (self if not an AND).
  std::vector<const Predicate*> Conjuncts() const;

  /// Estimated selectivity given no statistics (textbook constants); the
  /// optimizer refines this with real stats when available.
  double DefaultSelectivity() const;

  /// Set of columns referenced.
  std::vector<int> ReferencedColumns() const;

  std::string ToString(const Schema* schema = nullptr) const;

 private:
  Kind kind_;
  int column_ = -1;
  CmpOp op_ = CmpOp::kEq;
  Value literal_;
  std::vector<Predicate> children_;
};

/// One aggregate in a GROUP BY / scalar aggregate query.
struct AggSpec {
  enum class Fn : uint8_t { kCount, kSum, kMin, kMax, kAvg };
  Fn fn = Fn::kCount;
  int column = -1;  // -1 for COUNT(*)
  std::string name;

  static AggSpec Count(std::string name = "count") {
    return AggSpec{Fn::kCount, -1, std::move(name)};
  }
  static AggSpec Sum(int col, std::string name = "sum") {
    return AggSpec{Fn::kSum, col, std::move(name)};
  }
  static AggSpec Min(int col, std::string name = "min") {
    return AggSpec{Fn::kMin, col, std::move(name)};
  }
  static AggSpec Max(int col, std::string name = "max") {
    return AggSpec{Fn::kMax, col, std::move(name)};
  }
  static AggSpec Avg(int col, std::string name = "avg") {
    return AggSpec{Fn::kAvg, col, std::move(name)};
  }
};

}  // namespace htap

#endif  // HTAP_EXEC_EXPRESSION_H_
