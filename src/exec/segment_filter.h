// Predicate evaluation directly on encoded segment payloads, plus the
// typed gather that materializes a selection into a ColumnVector — the
// vectorized scan kernel (DESIGN.md §12).
//
// Instead of decoding a segment to values and comparing one Value at a
// time, FilterSegmentSelection works in the encoding's own domain:
//
//   PLAIN        typed tight loops over the raw int64/double/string buffer
//   DICTIONARY   the comparison runs once per dictionary entry into a
//                match table; the per-row loop is `match[codes[i]]`
//   RLE          the comparison runs once per run; the selection walk is
//                run-granular (one table lookup per selected position)
//   FOR_BITPACK  the segment zone map prunes before anything unpacks;
//                survivors compare in a tight unpack loop, no boxing
//
// Every path makes exactly the keep/drop decisions of the scalar
// `Value::Compare` fallback (NULL values and NULL literals never match),
// so swapping it into a scan cannot change results.

#ifndef HTAP_EXEC_SEGMENT_FILTER_H_
#define HTAP_EXEC_SEGMENT_FILTER_H_

#include <cstdint>
#include <vector>

#include "columnar/segment.h"
#include "exec/expression.h"

namespace htap {

/// True when a three-way compare result `c` (= value.Compare(literal))
/// satisfies `op`.
inline bool CmpKeep(int c, CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return c == 0;
    case CmpOp::kNe: return c != 0;
    case CmpOp::kLt: return c < 0;
    case CmpOp::kLe: return c <= 0;
    case CmpOp::kGt: return c > 0;
    case CmpOp::kGe: return c >= 0;
  }
  return false;
}

/// Zone-map skip test in CmpOp terms: true if no value in the segment's
/// [min, max] can satisfy `value op lit`. Same decisions as the string-op
/// Segment::CanSkip overload; all-NULL/empty segments always skip.
bool SegmentCanSkip(const Segment& seg, CmpOp op, const Value& lit);

/// Refines `sel` in place, keeping only positions whose value satisfies
/// `value op lit`, evaluating directly on the encoded payload as described
/// above. `sel` must be ascending (scan selections always are — the RLE
/// walk and relative order of the output depend on it) and stays ascending.
void FilterSegmentSelection(const Segment& seg, CmpOp op, const Value& lit,
                            std::vector<uint32_t>* sel);

/// Appends seg[pos] for every pos of `sel` (ascending) onto `out`, which
/// must have the segment's type. Typed per-encoding fast paths; NULLs are
/// preserved through the bitmap.
void GatherSegment(const Segment& seg, const std::vector<uint32_t>& sel,
                   ColumnVector* out);

}  // namespace htap

#endif  // HTAP_EXEC_SEGMENT_FILTER_H_
