// ColumnBatch: the unit operators exchange in the vectorized engine — a
// fixed-size slice of typed ColumnVectors plus a selection vector of active
// positions (DESIGN.md §12).
//
// Selection-vector semantics: `sel` holds ascending positions into the
// column vectors; before any filter runs (`filtered` false) an empty `sel`
// means every position is active, afterwards `sel` is exact. Scans emit
// compacted batches (all positions active); filters above the scan refine
// `sel` in place without copying column data. Conversion back to rows
// (BatchesToRows) visits only active positions, in order, so a batch
// pipeline's row image is exactly the row-at-a-time operator's output.

#ifndef HTAP_EXEC_BATCH_H_
#define HTAP_EXEC_BATCH_H_

#include <cstdint>
#include <vector>

#include "columnar/column_vector.h"
#include "exec/expression.h"
#include "types/row.h"
#include "types/schema.h"

namespace htap {

struct ColumnBatch {
  std::vector<ColumnVector> columns;  // all the same length
  std::vector<uint32_t> sel;          // ascending active positions
  /// False until a filter materializes `sel`: an empty `sel` then means
  /// "every position active" (the compacted-scan fast path). True once a
  /// filter has run — `sel` is authoritative, and an empty `sel` means no
  /// position survived.
  bool filtered = false;

  size_t rows() const { return columns.empty() ? 0 : columns[0].size(); }
  size_t active() const { return all_active() ? rows() : sel.size(); }
  bool all_active() const { return !filtered && sel.empty(); }

  /// Calls fn(position) for every active position, in order.
  template <typename Fn>
  void ForEachActive(const Fn& fn) const {
    if (all_active()) {
      const size_t n = rows();
      for (size_t i = 0; i < n; ++i) fn(i);
    } else {
      for (uint32_t i : sel) fn(i);
    }
  }
};

/// An empty batch with one typed vector per projected schema column (empty
/// projection = all columns), each reserving `reserve` slots.
ColumnBatch MakeBatch(const Schema& schema, const std::vector<int>& projection,
                      size_t reserve);

/// Refines the batch's selection in place with `columns[col] op lit`, using
/// typed tight loops over the decoded vectors. NULL cells and NULL literals
/// never match — the same decisions as Predicate::Eval on the row image.
void FilterBatch(ColumnBatch* batch, int col, CmpOp op, const Value& lit);

/// Sum of active() across batches.
size_t TotalActiveRows(const std::vector<ColumnBatch>& batches);

/// Flattens batches to rows in batch order, active positions only — the
/// bridge back to the row-at-a-time operators.
std::vector<Row> BatchesToRows(const std::vector<ColumnBatch>& batches);

/// The inverse bridge: packs rows into compacted batches of at most
/// `batch_rows` rows each (0 = one batch for everything), typed by
/// `schema` narrowed to `projection` (empty = all columns). Rows must match
/// the projected layout. BatchesToRows(RowsToBatches(rows, ...)) == rows.
/// Used when a join input's engine declines the batch scan: the rows it
/// returned join the batch pipeline instead of forcing the whole plan back
/// to row-at-a-time execution (DESIGN.md §13).
std::vector<ColumnBatch> RowsToBatches(const std::vector<Row>& rows,
                                       const Schema& schema,
                                       const std::vector<int>& projection,
                                       size_t batch_rows);

}  // namespace htap

#endif  // HTAP_EXEC_BATCH_H_
