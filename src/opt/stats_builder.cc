#include "opt/stats_builder.h"

#include <algorithm>

namespace htap {

void KmvSketch::Add(uint64_t hash) {
  if (mins_.size() >= k_ && hash >= *mins_.rbegin()) return;
  if (mins_.insert(hash).second && mins_.size() > k_)
    mins_.erase(std::prev(mins_.end()));
}

double KmvSketch::Estimate() const {
  if (mins_.size() < k_) return static_cast<double>(mins_.size());
  const double kth = static_cast<double>(*mins_.rbegin());
  if (kth <= 0) return static_cast<double>(mins_.size());
  constexpr double kHashSpace = 18446744073709551616.0;  // 2^64
  return (static_cast<double>(k_) - 1.0) * kHashSpace / kth;
}

TableStatsBuilder::TableStatsBuilder(size_t num_columns, size_t kmv_k)
    : kmv_k_(kmv_k) {
  cols_.resize(num_columns);
  for (ColumnAcc& c : cols_) c.sketch = KmvSketch(kmv_k_);
}

void TableStatsBuilder::Reset() {
  for (ColumnAcc& c : cols_) {
    c.min = Value();
    c.max = Value();
    c.has_bounds = false;
    c.sketch.Reset();
    c.values = 0;
    c.nulls = 0;
    c.width_sum = 0;
  }
  deletes_since_recompute_ = 0;
}

void TableStatsBuilder::AddRow(const Row& row) {
  const size_t n = std::min(cols_.size(), row.size());
  for (size_t c = 0; c < n; ++c) {
    ColumnAcc& acc = cols_[c];
    const Value& v = row.Get(c);
    if (v.is_null()) {
      ++acc.nulls;
      continue;
    }
    acc.sketch.Add(v.Hash());
    acc.width_sum +=
        v.is_string() ? static_cast<double>(v.AsString().size()) : 8.0;
    ++acc.values;
    if (!acc.has_bounds) {
      acc.min = v;
      acc.max = v;
      acc.has_bounds = true;
    } else {
      if (v < acc.min) acc.min = v;
      if (acc.max < v) acc.max = v;
    }
  }
}

void TableStatsBuilder::ApplyEntries(const std::vector<DeltaEntry>& entries) {
  for (const DeltaEntry& e : entries) {
    if (e.op == ChangeOp::kDelete)
      ++deletes_since_recompute_;
    else
      AddRow(e.row);
  }
}

void TableStatsBuilder::RecomputeFromColumnTable(const ColumnTable& table) {
  Reset();
  ReadGuard rg(table.latch());
  for (size_t g = 0; g < table.num_groups_unlocked(); ++g) {
    const RowGroup* group = table.group_unlocked(g);
    for (size_t i = 0; i < group->num_rows; ++i) {
      if (group->deleted.Test(i)) continue;
      AddRow(table.MaterializeRow(*group, i));
    }
  }
}

void TableStatsBuilder::RecomputeFromRows(const std::vector<Row>& rows) {
  Reset();
  for (const Row& r : rows) AddRow(r);
}

TableStats TableStatsBuilder::Snapshot(size_t row_count) const {
  TableStats st;
  st.row_count = row_count;
  st.columns.resize(cols_.size());
  for (size_t c = 0; c < cols_.size(); ++c) {
    const ColumnAcc& acc = cols_[c];
    ColumnStats& cs = st.columns[c];
    if (acc.has_bounds) {
      cs.min = acc.min;
      cs.max = acc.max;
    }
    cs.ndv = std::max(1.0, acc.sketch.Estimate());
    const size_t seen = acc.values + acc.nulls;
    cs.null_frac = seen == 0 ? 0 : static_cast<double>(acc.nulls) / seen;
    cs.avg_width =
        acc.values == 0 ? 8 : acc.width_sum / static_cast<double>(acc.values);
  }
  return st;
}

}  // namespace htap
