#include "opt/join_planner.h"

#include <algorithm>
#include <limits>
#include <set>

namespace htap {

bool ChooseBuildSideLeft(size_t left_rows, size_t right_rows) {
  return left_rows < right_rows;
}

std::vector<size_t> ChooseJoinOrder(
    size_t base_rows, const std::vector<JoinRelEstimate>& rels,
    const std::vector<std::vector<size_t>>& deps,
    std::vector<double>* step_estimates) {
  const size_t n = rels.size();
  std::vector<size_t> order;
  order.reserve(n);
  if (step_estimates != nullptr) {
    step_estimates->clear();
    step_estimates->reserve(n);
  }
  std::vector<uint8_t> done(n, 0);
  double cur = static_cast<double>(base_rows);
  for (size_t step = 0; step < n; ++step) {
    size_t best = n;
    double best_est = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < n; ++i) {
      if (done[i]) continue;
      const bool eligible =
          i >= deps.size() ||
          std::all_of(deps[i].begin(), deps[i].end(),
                      [&](size_t d) { return d < n && done[d] != 0; });
      if (!eligible) continue;
      const double est = cur * static_cast<double>(rels[i].rows) /
                         std::max(1.0, rels[i].key_ndv);
      if (est < best_est) {  // strict: ties keep the lowest index
        best_est = est;
        best = i;
      }
    }
    // A dependency cycle cannot arise from well-formed plans (a join key
    // can only reference columns of earlier clauses), but fall back to
    // plan order rather than loop forever.
    if (best == n) {
      for (size_t i = 0; i < n; ++i)
        if (!done[i]) {
          best = i;
          break;
        }
      best_est = cur;
    }
    done[best] = 1;
    order.push_back(best);
    if (step_estimates != nullptr) step_estimates->push_back(best_est);
    cur = std::max(best_est, 1.0);
  }
  return order;
}

size_t CountDistinctKeys(const std::vector<Row>& rows, int col) {
  const auto c = static_cast<size_t>(col);
  std::set<Value> keys;
  for (const Row& r : rows) {
    const Value& v = r.Get(c);
    if (!v.is_null()) keys.insert(v);
  }
  return keys.size();
}

size_t CountDistinctKeys(const JoinKeyColumn& keys) {
  std::set<Value> distinct;
  for (size_t i = 0; i < keys.size(); ++i) {
    if (keys.valid[i]) distinct.insert(keys.GetValue(i));
  }
  return distinct.size();
}

bool ChooseLateMaterialization(const std::vector<double>& step_out_rows,
                               const std::vector<size_t>& step_out_widths,
                               size_t output_cols) {
  if (step_out_rows.empty()) return true;
  double early = 0;
  for (size_t s = 0; s < step_out_rows.size(); ++s) {
    const size_t width =
        s < step_out_widths.size() ? step_out_widths[s] : output_cols;
    early += step_out_rows[s] * static_cast<double>(width);
  }
  const double late = kLateGatherPenalty * step_out_rows.back() *
                      static_cast<double>(output_cols);
  return late <= early;
}

}  // namespace htap
