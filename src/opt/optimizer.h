// Cost-based query optimization for HTAP (Table 2, QO row):
//  * table/column statistics and selectivity estimation,
//  * the hybrid row/column access-path chooser — the cost-based decision
//    between a row-store index lookup, a row-store scan, and a columnar
//    (delta + column) scan that TiDB and SQL Server make per query.

#ifndef HTAP_OPT_OPTIMIZER_H_
#define HTAP_OPT_OPTIMIZER_H_

#include <string>
#include <vector>

#include "exec/expression.h"
#include "types/row.h"
#include "types/schema.h"

namespace htap {

/// Per-column statistics (computed from a sample or a full pass).
struct ColumnStats {
  Value min, max;
  double ndv = 1;          // distinct-value estimate
  double null_frac = 0;
  double avg_width = 8;    // bytes per value
};

/// Per-table statistics.
struct TableStats {
  size_t row_count = 0;
  std::vector<ColumnStats> columns;

  /// Builds stats from rows (typically a sample or a maintenance pass).
  static TableStats Compute(const Schema& schema,
                            const std::vector<Row>& rows);
};

/// Estimated fraction of rows satisfying `pred` given `stats`. Uses
/// uniformity and independence assumptions — exactly the weakness the
/// survey's "Learned HTAP Query Optimizer" open problem calls out; see
/// bench_table2_qo for where this misestimates under skew.
double EstimateSelectivity(const Predicate& pred, const TableStats& stats);

/// Access paths the hybrid chooser picks between.
enum class AccessPath : uint8_t {
  kRowIndexLookup = 0,  // B+-tree point/range lookup on the primary key
  kRowFullScan = 1,     // full MVCC row-store scan
  kColumnScan = 2,      // columnar scan + delta union
};

const char* AccessPathName(AccessPath p);

/// Tunable unit costs (calibrated roughly to the in-memory engine; the
/// benchmarks sweep these to show crossovers).
struct CostModel {
  double row_seek_cost = 16.0;          // B+-tree traversal
  double row_scan_cost_per_row = 1.0;   // full row materialization + filter
  double col_scan_cost_per_value = 0.08;  // per row per referenced column
  double delta_entry_cost = 1.5;        // per staged delta entry unioned
  double output_row_cost = 0.4;         // materializing a qualifying row
};

/// Inputs describing one table access within a query.
struct AccessQuery {
  const TableStats* stats = nullptr;
  const Predicate* pred = nullptr;
  size_t columns_needed = 1;    // referenced + projected columns
  size_t total_columns = 1;
  size_t delta_entries = 0;     // staged (unmerged) delta size
  bool pk_point_lookup = false; // pred pins the PK to a point/narrow range
  bool column_store_available = true;
};

struct PathChoice {
  AccessPath path = AccessPath::kRowFullScan;
  double cost = 0;
  double est_selectivity = 1.0;
  std::string reason;
};

/// The hybrid row/column access-path decision.
PathChoice ChooseAccessPath(const CostModel& model, const AccessQuery& q);

}  // namespace htap

#endif  // HTAP_OPT_OPTIMIZER_H_
