// Join planning for hash joins (Table 2, QO row; DESIGN.md §9):
//  * build-side selection — build the hash table on the smaller input
//    instead of always the right side,
//  * greedy join-order selection for multi-join plans — execute the join
//    with the lowest estimated output cardinality first.
//
// Both decisions are pure functions over cardinalities so they are trivially
// deterministic; core/query_runner.cc applies them and restores the plan's
// nested-loop output order afterwards (pair-sort fixup for the build-side
// swap, hidden-index sort for reordered joins), keeping query results
// byte-identical to the unoptimized plan.

#ifndef HTAP_OPT_JOIN_PLANNER_H_
#define HTAP_OPT_JOIN_PLANNER_H_

#include <cstddef>
#include <vector>

#include "exec/executor.h"
#include "types/row.h"

namespace htap {

/// True when the hash join should build on the LEFT input: the left side is
/// strictly smaller than the right. Ties keep the conventional
/// build-on-right so single-table plans never churn.
bool ChooseBuildSideLeft(size_t left_rows, size_t right_rows);

/// Cardinality inputs for one candidate join relation.
struct JoinRelEstimate {
  size_t rows = 0;      // relation size after its pushed-down predicate
  double key_ndv = 1;   // distinct join keys in the relation
};

/// Greedy join ordering: starting from `base_rows`, repeatedly pick the
/// eligible clause minimizing the estimated intermediate cardinality
///   est = current_rows * rel.rows / max(1, rel.key_ndv)
/// (uniformity assumption: each probe row matches rows/ndv build rows).
/// `deps[i]` lists clause indexes that must run before clause i (its join
/// key references their output columns). Ties break toward the lowest
/// clause index, so the order is deterministic. Returns a permutation of
/// [0, rels.size()). When `step_estimates` is non-null it receives the
/// estimated output cardinality of each chosen step, in execution order —
/// the planner's est-vs-actual provenance (QueryExecInfo::join_est_rows).
std::vector<size_t> ChooseJoinOrder(
    size_t base_rows, const std::vector<JoinRelEstimate>& rels,
    const std::vector<std::vector<size_t>>& deps,
    std::vector<double>* step_estimates = nullptr);

/// Exact count of distinct non-NULL values in column `col` (the NDV input
/// above; computed from the already-scanned relation, so no estimation
/// error).
size_t CountDistinctKeys(const std::vector<Row>& rows, int col);

/// As above over an extracted join-key column — the batch pipeline's NDV
/// input (no row materialization).
size_t CountDistinctKeys(const JoinKeyColumn& keys);

/// Materialization-regime choice for the batch join pipeline (DESIGN.md
/// §13). Late materialization carries only (input, index) lineage through
/// the join tree and gathers payload columns once, after the last join —
/// the gathers are random-access, weighted kLateGatherPenalty per cell, but
/// touch only `output_cols` columns of the final `step_out_rows.back()`
/// rows. Early materialization (the row pipeline) concatenates full payload
/// rows at every step — sequential, but every intermediate pays its whole
/// width: cost Σ step_out_rows[s] * step_out_widths[s]. Returns true (late)
/// when the late estimate undercuts the early one; chains that shrink, or
/// plans consuming few columns (aggregates, narrow projections), choose
/// late, while wide fan-out explosions fall back to early. Empty
/// `step_out_rows` (0–1 joins, no estimates) defaults to late.
bool ChooseLateMaterialization(const std::vector<double>& step_out_rows,
                               const std::vector<size_t>& step_out_widths,
                               size_t output_cols);

/// Random-access gather penalty per cell in ChooseLateMaterialization's
/// late-regime cost (sequential early-regime copies count 1.0).
inline constexpr double kLateGatherPenalty = 2.0;

}  // namespace htap

#endif  // HTAP_OPT_JOIN_PLANNER_H_
