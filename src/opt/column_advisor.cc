#include "opt/column_advisor.h"

#include <algorithm>
#include <numeric>

namespace htap {

void ColumnAdvisor::RecordAccess(const std::string& table,
                                 const std::vector<int>& columns,
                                 double weight) {
  MutexLock lk(&mu_);
  auto& heat = heat_[table];
  for (int c : columns) {
    if (c < 0) continue;
    if (static_cast<size_t>(c) >= heat.size()) heat.resize(c + 1, 0.0);
    heat[static_cast<size_t>(c)] += weight;
  }
}

std::vector<double> ColumnAdvisor::Heat(const std::string& table) const {
  MutexLock lk(&mu_);
  const auto it = heat_.find(table);
  return it == heat_.end() ? std::vector<double>{} : it->second;
}

ColumnAdvisor::Selection ColumnAdvisor::Advise(
    const std::string& table, const std::vector<size_t>& col_bytes,
    size_t memory_budget_bytes) const {
  Selection sel;
  std::vector<double> heat = Heat(table);
  heat.resize(col_bytes.size(), 0.0);
  const double total_heat =
      std::accumulate(heat.begin(), heat.end(), 0.0);

  // Rank by heat density (heat per byte); break ties toward smaller columns.
  std::vector<int> order(col_bytes.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const double da =
        heat[static_cast<size_t>(a)] / static_cast<double>(col_bytes[static_cast<size_t>(a)] + 1);
    const double db =
        heat[static_cast<size_t>(b)] / static_cast<double>(col_bytes[static_cast<size_t>(b)] + 1);
    if (da != db) return da > db;
    return col_bytes[static_cast<size_t>(a)] < col_bytes[static_cast<size_t>(b)];
  });

  double covered = 0;
  for (int c : order) {
    if (heat[static_cast<size_t>(c)] <= 0) break;  // cold columns stay out
    const size_t bytes = col_bytes[static_cast<size_t>(c)];
    if (sel.bytes_used + bytes > memory_budget_bytes) continue;
    sel.columns.push_back(c);
    sel.bytes_used += bytes;
    covered += heat[static_cast<size_t>(c)];
  }
  std::sort(sel.columns.begin(), sel.columns.end());
  sel.heat_covered = total_heat > 0 ? covered / total_heat : 0.0;
  return sel;
}

void ColumnAdvisor::Decay() {
  MutexLock lk(&mu_);
  for (auto& [table, heat] : heat_)
    for (double& h : heat) h *= decay_;
}

std::vector<size_t> EstimateColumnBytes(const Schema& schema,
                                        const TableStats& stats) {
  std::vector<size_t> out(schema.num_columns(), 0);
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    const double width =
        c < stats.columns.size() ? stats.columns[c].avg_width : 8.0;
    out[c] = static_cast<size_t>(width * static_cast<double>(stats.row_count)) + 64;
  }
  return out;
}

}  // namespace htap
