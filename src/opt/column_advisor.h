// Workload-driven column selection (Table 2, QO row; §2.4 open problem).
//
// Mirrors Oracle 21c's Heatmap / MySQL Heatwave auto-loading: every query
// records which columns it touched; the advisor ranks columns by access
// heat per byte and greedily fills a memory budget. Architecture (c) uses
// this to decide which columns live in the in-memory column-store cluster;
// architecture (a) uses it to bound IMCU population.

#ifndef HTAP_OPT_COLUMN_ADVISOR_H_
#define HTAP_OPT_COLUMN_ADVISOR_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "opt/optimizer.h"
#include "types/schema.h"

namespace htap {

class ColumnAdvisor {
 public:
  /// Exponential decay applied per Advise() call so the heatmap follows
  /// workload drift.
  explicit ColumnAdvisor(double decay = 0.9) : decay_(decay) {}

  /// Records that a query touched `columns` of `table` (weight ~ work).
  void RecordAccess(const std::string& table, const std::vector<int>& columns,
                    double weight = 1.0);

  /// Per-column heat for a table (empty if never accessed).
  std::vector<double> Heat(const std::string& table) const;

  struct Selection {
    std::vector<int> columns;       // selected, descending benefit density
    size_t bytes_used = 0;
    double heat_covered = 0;        // fraction of total heat captured
  };

  /// Greedy knapsack: pick columns maximizing heat per byte within
  /// `memory_budget_bytes`. `col_bytes[i]` is the estimated in-memory size
  /// of column i (row_count * avg_width, typically).
  Selection Advise(const std::string& table,
                   const std::vector<size_t>& col_bytes,
                   size_t memory_budget_bytes) const;

  /// Applies decay (call between workload phases).
  void Decay();

 private:
  const double decay_;
  mutable Mutex mu_{LockRank::kAdvisor, "column-advisor"};
  std::unordered_map<std::string, std::vector<double>> heat_ GUARDED_BY(mu_);
};

/// Estimated in-memory bytes per column for a table.
std::vector<size_t> EstimateColumnBytes(const Schema& schema,
                                        const TableStats& stats);

}  // namespace htap

#endif  // HTAP_OPT_COLUMN_ADVISOR_H_
