// Incremental table-statistics maintenance (Table 2, QO row; DESIGN.md §10).
//
// The sync driver folds every merged delta batch into a TableStatsBuilder
// and republishes a TableStats snapshot to the catalog, so join planning can
// happen at plan time from metadata instead of paying an execution-time
// scan. NDV is tracked with a k-minimum-values sketch (exact below k
// distinct values); min/max only widen and deletes cannot shrink any
// estimate, so the builder periodically corrects drift with a full recompute
// over the compacted column store.

#ifndef HTAP_OPT_STATS_BUILDER_H_
#define HTAP_OPT_STATS_BUILDER_H_

#include <set>
#include <vector>

#include "columnar/column_table.h"
#include "delta/delta.h"
#include "opt/optimizer.h"
#include "types/row.h"
#include "types/schema.h"

namespace htap {

/// K-minimum-values distinct-count sketch over Value::Hash(). Exact while
/// fewer than k distinct hashes have been seen; beyond that it keeps the k
/// smallest hashes and estimates ndv ≈ (k-1) · 2^64 / kth_smallest — the
/// classic KMV estimator. Adds are idempotent, so replaying an upsert never
/// inflates the count.
class KmvSketch {
 public:
  explicit KmvSketch(size_t k = kDefaultK) : k_(k) {}

  void Add(uint64_t hash);
  double Estimate() const;
  void Reset() { mins_.clear(); }
  size_t k() const { return k_; }

  static constexpr size_t kDefaultK = 256;

 private:
  size_t k_;
  std::set<uint64_t> mins_;  // the k smallest distinct hashes seen
};

/// Accumulates per-column min/max, NDV, null-fraction, and width statistics
/// incrementally from sync-applied delta entries, with a full-recompute
/// escape hatch for delete drift. The builder does NOT track the live row
/// count — an upsert cannot be classified insert-vs-update from the delta
/// alone — so publishers pass the authoritative count (e.g.
/// ColumnTable::live_rows()) to Snapshot().
///
/// Not thread-safe; callers serialize (the sync driver already holds its
/// per-table merge mutex).
class TableStatsBuilder {
 public:
  explicit TableStatsBuilder(size_t num_columns,
                             size_t kmv_k = KmvSketch::kDefaultK);

  /// Widens min/max and feeds the NDV sketches for every upserted row;
  /// counts deletes toward deletes_since_recompute().
  void ApplyEntries(const std::vector<DeltaEntry>& entries);

  /// Accumulates one live row.
  void AddRow(const Row& row);

  /// Full recompute from the column table's live rows (takes the table's
  /// shared latch). Resets the delete-drift counter.
  void RecomputeFromColumnTable(const ColumnTable& table);

  /// Full recompute from materialized rows (the rebuild-sync path).
  void RecomputeFromRows(const std::vector<Row>& rows);

  /// Deletes applied since the last full recompute — the caller's
  /// compaction / recompute trigger.
  size_t deletes_since_recompute() const { return deletes_since_recompute_; }

  /// Snapshot as a TableStats; the live `row_count` is supplied by the
  /// caller (see the class comment).
  TableStats Snapshot(size_t row_count) const;

 private:
  struct ColumnAcc {
    Value min, max;
    bool has_bounds = false;
    KmvSketch sketch;
    size_t values = 0;  // non-null values accumulated
    size_t nulls = 0;
    double width_sum = 0;
  };

  void Reset();

  size_t kmv_k_;
  std::vector<ColumnAcc> cols_;
  size_t deletes_since_recompute_ = 0;
};

}  // namespace htap

#endif  // HTAP_OPT_STATS_BUILDER_H_
