#include "opt/optimizer.h"

#include <algorithm>
#include <unordered_set>

namespace htap {

TableStats TableStats::Compute(const Schema& schema,
                               const std::vector<Row>& rows) {
  TableStats st;
  st.row_count = rows.size();
  st.columns.resize(schema.num_columns());
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    ColumnStats& cs = st.columns[c];
    std::unordered_set<uint64_t> distinct;
    size_t nulls = 0;
    double width_sum = 0;
    bool first = true;
    for (const Row& r : rows) {
      const Value& v = r.Get(c);
      if (v.is_null()) {
        ++nulls;
        continue;
      }
      distinct.insert(v.Hash());
      width_sum += v.is_string() ? static_cast<double>(v.AsString().size())
                                 : 8.0;
      if (first) {
        cs.min = v;
        cs.max = v;
        first = false;
      } else {
        if (v < cs.min) cs.min = v;
        if (cs.max < v) cs.max = v;
      }
    }
    cs.ndv = std::max<double>(1.0, static_cast<double>(distinct.size()));
    cs.null_frac =
        rows.empty() ? 0 : static_cast<double>(nulls) / rows.size();
    cs.avg_width =
        rows.size() > nulls ? width_sum / static_cast<double>(rows.size() - nulls) : 8;
  }
  return st;
}

namespace {

double CompareSelectivity(const Predicate& p, const TableStats& stats) {
  const size_t c = static_cast<size_t>(p.column());
  if (c >= stats.columns.size()) return p.DefaultSelectivity();
  const ColumnStats& cs = stats.columns[c];

  switch (p.op()) {
    case CmpOp::kEq:
      return std::min(1.0, 1.0 / cs.ndv);
    case CmpOp::kNe:
      return 1.0 - std::min(1.0, 1.0 / cs.ndv);
    default:
      break;
  }
  // Range predicates: interpolate within [min, max] for numerics.
  if (!cs.min.is_null() && !cs.max.is_null() &&
      (cs.min.is_int64() || cs.min.is_double()) &&
      (p.literal().is_int64() || p.literal().is_double())) {
    const double lo = cs.min.AsDouble(), hi = cs.max.AsDouble();
    const double x = p.literal().AsDouble();
    if (hi <= lo) return 0.5;
    const double frac = std::clamp((x - lo) / (hi - lo), 0.0, 1.0);
    switch (p.op()) {
      case CmpOp::kLt:
      case CmpOp::kLe:
        return frac;
      case CmpOp::kGt:
      case CmpOp::kGe:
        return 1.0 - frac;
      default:
        break;
    }
  }
  return p.DefaultSelectivity();
}

}  // namespace

double EstimateSelectivity(const Predicate& pred, const TableStats& stats) {
  switch (pred.kind()) {
    case Predicate::Kind::kTrue:
      return 1.0;
    case Predicate::Kind::kCompare:
      return CompareSelectivity(pred, stats);
    case Predicate::Kind::kAnd: {
      double s = 1.0;  // independence assumption
      for (const auto& c : pred.children()) s *= EstimateSelectivity(c, stats);
      return s;
    }
    case Predicate::Kind::kOr: {
      double not_s = 1.0;
      for (const auto& c : pred.children())
        not_s *= 1.0 - EstimateSelectivity(c, stats);
      return 1.0 - not_s;
    }
    case Predicate::Kind::kNot:
      return 1.0 - EstimateSelectivity(pred.children()[0], stats);
  }
  return 1.0;
}

const char* AccessPathName(AccessPath p) {
  switch (p) {
    case AccessPath::kRowIndexLookup: return "row-index-lookup";
    case AccessPath::kRowFullScan: return "row-full-scan";
    case AccessPath::kColumnScan: return "column-scan";
  }
  return "?";
}

PathChoice ChooseAccessPath(const CostModel& model, const AccessQuery& q) {
  const double n = static_cast<double>(q.stats->row_count);
  const double sel = EstimateSelectivity(*q.pred, *q.stats);
  const double out_rows = n * sel;

  PathChoice best;
  best.est_selectivity = sel;

  // Row index lookup: only when the predicate pins the primary key.
  double idx_cost = -1;
  if (q.pk_point_lookup) {
    idx_cost = model.row_seek_cost + out_rows * model.output_row_cost;
  }
  const double row_cost =
      n * model.row_scan_cost_per_row + out_rows * model.output_row_cost;
  double col_cost = -1;
  if (q.column_store_available) {
    col_cost = n * static_cast<double>(q.columns_needed) *
                   model.col_scan_cost_per_value +
               static_cast<double>(q.delta_entries) * model.delta_entry_cost +
               out_rows * model.output_row_cost;
  }

  best.path = AccessPath::kRowFullScan;
  best.cost = row_cost;
  best.reason = "default row scan";
  if (idx_cost >= 0 && idx_cost < best.cost) {
    best.path = AccessPath::kRowIndexLookup;
    best.cost = idx_cost;
    best.reason = "predicate pins primary key";
  }
  if (col_cost >= 0 && col_cost < best.cost) {
    best.path = AccessPath::kColumnScan;
    best.cost = col_cost;
    best.reason = "columnar scan cheaper for " +
                  std::to_string(q.columns_needed) + "/" +
                  std::to_string(q.total_columns) + " columns";
  }
  return best;
}

}  // namespace htap
