// Catalog: table name/id registry shared by the facade, the engines, and
// the SQL binder; also the publication point for per-table statistics
// (DESIGN.md §10) — the sync driver publishes TableStats snapshots here and
// the join planner reads them at plan time.

#ifndef HTAP_CORE_CATALOG_H_
#define HTAP_CORE_CATALOG_H_

#include <map>
#include <string>
#include <utility>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/engine.h"
#include "opt/optimizer.h"
#include "txn/types.h"

namespace htap {

/// A statistics snapshot published for one table. `as_of_csn` is the commit
/// frontier the snapshot reflects — the planner compares it against the
/// current committed CSN to decide whether the stats are fresh enough to
/// plan from (ExecContext::stats_staleness_csns).
struct PublishedTableStats {
  TableStats stats;
  CSN as_of_csn = 0;
  uint64_t version = 0;  // bumps on every publish
};

class Catalog {
 public:
  Status AddTable(const std::string& name, Schema schema, TableInfo* out) {
    MutexLock lk(&mu_);
    if (by_name_.count(name) != 0)
      return Status::AlreadyExists("table exists: " + name);
    HTAP_RETURN_NOT_OK(schema.Validate());
    TableInfo info;
    info.id = next_id_++;
    info.name = name;
    info.schema = std::move(schema);
    by_name_[name] = info;
    if (out != nullptr) *out = by_name_[name];
    return Status::OK();
  }

  /// nullptr if absent. Pointers remain valid for the catalog's lifetime
  /// (tables are never dropped through this API).
  const TableInfo* Find(const std::string& name) const {
    MutexLock lk(&mu_);
    const auto it = by_name_.find(name);
    return it == by_name_.end() ? nullptr : &it->second;
  }

  std::vector<std::string> TableNames() const {
    MutexLock lk(&mu_);
    std::vector<std::string> out;
    for (const auto& [name, info] : by_name_) out.push_back(name);
    return out;
  }

  /// Publishes (replaces) a table's statistics snapshot. Writers are the
  /// engines' sync/maintenance paths; readers copy out under the same lock,
  /// so a publish never tears a concurrent planner's view.
  void PublishStats(const std::string& name, TableStats stats,
                    CSN as_of_csn) {
    MutexLock lk(&mu_);
    PublishedTableStats& p = stats_by_name_[name];
    p.stats = std::move(stats);
    p.as_of_csn = as_of_csn;
    ++p.version;
  }

  /// Copies out the latest published snapshot. False if the table has never
  /// published (the planner then falls back to execution-time sampling).
  bool GetStats(const std::string& name, PublishedTableStats* out) const {
    MutexLock lk(&mu_);
    const auto it = stats_by_name_.find(name);
    if (it == stats_by_name_.end()) return false;
    if (out != nullptr) *out = it->second;
    return true;
  }

 private:
  mutable Mutex mu_{LockRank::kCatalog, "catalog"};
  // Find() returns pointers into by_name_: std::map nodes are stable and
  // tables are never dropped, so escaped pointers stay valid (documented
  // contract above).
  std::map<std::string, TableInfo> by_name_ GUARDED_BY(mu_);
  std::map<std::string, PublishedTableStats> stats_by_name_ GUARDED_BY(mu_);
  uint32_t next_id_ GUARDED_BY(mu_) = 1;
};

}  // namespace htap

#endif  // HTAP_CORE_CATALOG_H_
