// Catalog: table name/id registry shared by the facade, the engines, and
// the SQL binder.

#ifndef HTAP_CORE_CATALOG_H_
#define HTAP_CORE_CATALOG_H_

#include <map>
#include <mutex>
#include <string>

#include "common/status.h"
#include "core/engine.h"

namespace htap {

class Catalog {
 public:
  Status AddTable(const std::string& name, Schema schema, TableInfo* out) {
    std::lock_guard<std::mutex> lk(mu_);
    if (by_name_.count(name) != 0)
      return Status::AlreadyExists("table exists: " + name);
    HTAP_RETURN_NOT_OK(schema.Validate());
    TableInfo info;
    info.id = next_id_++;
    info.name = name;
    info.schema = std::move(schema);
    by_name_[name] = info;
    if (out != nullptr) *out = by_name_[name];
    return Status::OK();
  }

  /// nullptr if absent. Pointers remain valid for the catalog's lifetime
  /// (tables are never dropped through this API).
  const TableInfo* Find(const std::string& name) const {
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = by_name_.find(name);
    return it == by_name_.end() ? nullptr : &it->second;
  }

  std::vector<std::string> TableNames() const {
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<std::string> out;
    for (const auto& [name, info] : by_name_) out.push_back(name);
    return out;
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, TableInfo> by_name_;
  uint32_t next_id_ = 1;
};

}  // namespace htap

#endif  // HTAP_CORE_CATALOG_H_
