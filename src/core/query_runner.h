// Shared plan execution: every engine supplies only a table-scan callback;
// joins, aggregation, sorting, and output-schema construction are common.

#ifndef HTAP_CORE_QUERY_RUNNER_H_
#define HTAP_CORE_QUERY_RUNNER_H_

#include <functional>

#include "core/catalog.h"
#include "core/plan.h"

namespace htap {

/// One base-table access requested by the runner.
struct ScanRequest {
  const TableInfo* table = nullptr;
  const Predicate* pred = nullptr;
  std::vector<int> projection;  // empty = all columns
  PathHint path = PathHint::kAuto;
  bool require_fresh = true;
};

/// Engine-supplied scan. Fills `stats`/`path_desc` (may be null).
using ScanFn = std::function<Result<std::vector<Row>>(
    const ScanRequest&, ScanStats* stats, std::string* path_desc)>;

/// Engine-supplied vectorized scan (DESIGN.md §12): emits ColumnBatches
/// instead of rows, with BatchesToRows(result) byte-identical to what the
/// row ScanFn returns for the same request. An engine declines a request
/// its batch path cannot serve (row-store access path, columns not loaded)
/// with Status::NotSupported — the runner then falls back to the row scan.
using BatchScanFn = std::function<Result<std::vector<ColumnBatch>>(
    const ScanRequest&, ScanStats* stats, std::string* path_desc)>;

/// Executes `plan` against `catalog` using `scan` for base access. `exec`
/// supplies the AP pool for the parallel hash join and aggregation
/// (default: serial). When `batch_scan` is provided, eligible plans run
/// vectorized: simple scans and single-table aggregates consume column
/// batches directly (DESIGN.md §12), and join plans — when
/// exec.vectorized_join is on and the planner's materialization cost model
/// agrees — run the batch-native late-materialization join pipeline
/// (DESIGN.md §13), carrying only lineage indices between join steps and
/// gathering payload columns once, after the last join. Inputs the engine
/// declines to batch-scan are bridged in as batches; the planner's early-
/// materialization choice falls back to the row join path. Results are
/// byte-identical in every regime.
Result<QueryResult> RunPlan(const QueryPlan& plan, const Catalog& catalog,
                            const ScanFn& scan, QueryExecInfo* info,
                            const ExecContext& exec = ExecContext{},
                            const BatchScanFn& batch_scan = nullptr);

/// Output schema the runner will produce for `plan` (for binders/tests).
Result<Schema> PlanOutputSchema(const QueryPlan& plan, const Catalog& catalog);

}  // namespace htap

#endif  // HTAP_CORE_QUERY_RUNNER_H_
