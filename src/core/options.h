// DatabaseOptions: everything configurable about an htapdb instance,
// chiefly which of the survey's four storage architectures to run.

#ifndef HTAP_CORE_OPTIONS_H_
#define HTAP_CORE_OPTIONS_H_

#include <cstdint>
#include <string>
#include <thread>

#include "common/clock.h"
#include "sim/dist_db.h"

namespace htap {

/// The survey's taxonomy (Figure 1 / Table 1).
enum class ArchitectureKind : uint8_t {
  /// (a) Primary row store + in-memory column store (Oracle dual-format,
  /// SQL Server CSI, DB2 BLU).
  kRowPlusInMemoryColumn = 0,
  /// (b) Distributed row store + column store replica (TiDB).
  kDistributedRowPlusColumnReplica = 1,
  /// (c) Disk row store + distributed in-memory column store (Heatwave).
  kDiskRowPlusDistributedColumn = 2,
  /// (d) Primary column store + delta row store (SAP HANA).
  kColumnPlusDeltaRow = 3,
};

const char* ArchitectureName(ArchitectureKind k);

struct DatabaseOptions {
  ArchitectureKind architecture = ArchitectureKind::kRowPlusInMemoryColumn;

  /// Directory for WAL and heap files; empty = fully in-memory WAL.
  std::string data_dir;
  bool wal_enabled = true;
  bool sync_on_commit = false;  // fsync the WAL group at commit

  /// Data-synchronization cadence (delta -> column store).
  Micros sync_interval_micros = 20000;
  size_t sync_entry_threshold = 8192;
  /// Start the background merge thread (off for deterministic tests that
  /// drive ForceSync explicitly).
  bool background_sync = true;

  /// HANA-style L1 delta spill threshold (architecture (d)).
  size_t l1_spill_threshold = 4096;

  /// Architecture (c): memory budget for the loaded-column store and the
  /// buffer-pool size of the disk heap.
  size_t column_memory_budget_bytes = 256u << 20;
  size_t buffer_pool_pages = 256;

  /// How often table statistics are recomputed (in commits).
  uint64_t stats_refresh_interval = 4096;

  /// Commit-path sharding (DESIGN.md §15): the transaction manager's
  /// in-flight CSN frontier and active-transaction map are partitioned
  /// across this many mutexes; the published committed CSN is the min of
  /// the per-shard frontiers. 1 = the old single-mutex behaviour.
  size_t commit_shards = 8;

  /// Plan-time join ordering (DESIGN.md §10): catalog statistics more than
  /// this many commits behind the engine's committed CSN are considered
  /// stale, and join planning falls back to the execution-time sampling
  /// path instead of trusting them.
  uint64_t stats_staleness_csns = 65536;

  /// Delete drift tolerated by incremental statistics maintenance: once the
  /// sync driver has merged this many deletes since the last full pass, it
  /// compacts the column table and fully recomputes the table's statistics.
  size_t stats_compact_delete_threshold = 8192;

  /// Vectorized batch execution (DESIGN.md §12): the scan emits fixed-size
  /// ColumnBatches of typed vectors instead of rows, predicates evaluate
  /// directly on the encoded segment data, and eligible plans (simple scans
  /// and single-table aggregates on a column path) run batch-at-a-time end
  /// to end. Output is byte-identical to the row path. Off = row-at-a-time
  /// everywhere.
  bool vectorized_exec = true;

  /// Rows per ColumnBatch the vectorized scan emits (0 = one batch per row
  /// group). Larger batches amortize dispatch; smaller batches stay cache-
  /// resident.
  size_t vectorized_batch_rows = 4096;

  /// Batch-native hash joins with late materialization (DESIGN.md §13):
  /// when every input of a join plan can scan as batches, join keys are
  /// extracted straight from the typed columns, only (input, index) lineage
  /// flows between join steps, and payload columns are gathered once after
  /// the last join. Requires vectorized_exec; the planner still falls back
  /// to the row pipeline when its cost model prefers early materialization.
  /// Output stays byte-identical to the row join path.
  bool vectorized_join = true;

  /// Per-segment compression advisor: when segments are (re)built at sync
  /// or compaction time, re-pick each segment's encoding from observed
  /// value statistics — the estimated-smallest encoding wins if it beats
  /// PLAIN by at least 1/8 (see columnar/compression_advisor.h). Off =
  /// the fixed ChooseEncoding thresholds.
  bool compression_advisor = true;

  /// Intra-query parallelism: size of the engine's AP scan pool. Morsel-
  /// driven scans, aggregations, and hash joins fan out across it; the
  /// resource scheduler throttles analytical CPU through its concurrency
  /// quota. 0 = hardware concurrency; 1 = fully serial execution.
  size_t parallel_scan_threads = 0;

  /// Serial-fallback threshold for the radix-partitioned parallel join:
  /// build sides smaller than this run the classic single-table hash join,
  /// since partitioning a tiny build never amortizes its scatter pass.
  size_t parallel_join_min_build_rows = 4096;

  /// Grace-join spill budget: when a hash join's estimated build-side
  /// footprint exceeds this many bytes, radix partitions that do not fit
  /// spill both sides to temporary on-disk runs and join
  /// partition-at-a-time (DESIGN.md §9). 0 = unlimited — never spill.
  size_t join_spill_budget_bytes = 0;

  /// Directory for the grace join's `htap-spill-*` run files; empty = the
  /// system temp directory.
  std::string join_spill_dir;

  /// Architecture (b): simulated cluster shape.
  sim::DistributedDb::Options dist;
  /// Virtual-time budget granted per pump while waiting on the simulator.
  Micros sim_step_micros = 1000;
  Micros sim_timeout_micros = 10'000'000;
};

/// Resolves `parallel_scan_threads` (0 = hardware concurrency).
inline size_t EffectiveParallelScanThreads(const DatabaseOptions& o) {
  if (o.parallel_scan_threads != 0) return o.parallel_scan_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace htap

#endif  // HTAP_CORE_OPTIONS_H_
