// RowTxnLayer: the shared OLTP substrate of the three single-process
// architectures (a), (c), (d) — a TransactionManager plus one MVCC row
// store per table, all writing one WAL. Engines compose this and add their
// architecture-specific AP side.

#ifndef HTAP_CORE_ROW_TXN_LAYER_H_
#define HTAP_CORE_ROW_TXN_LAYER_H_

#include <atomic>
#include <map>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include <memory>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "storage/mvcc_row_store.h"
#include "sync/sync.h"
#include "txn/txn_manager.h"
#include "wal/wal.h"

namespace htap {

class RowTxnLayer {
 public:
  explicit RowTxnLayer(WalWriter* wal,
                       size_t commit_shards =
                           TransactionManager::kDefaultCommitShards)
      : txn_mgr_(wal, commit_shards) {}

  Status AddTable(const TableInfo& info, WalWriter* wal) {
    if (stores_.count(info.id) != 0)
      return Status::AlreadyExists("table id in use");
    stores_[info.id] = std::make_unique<MvccRowStore>(info.id, info.schema,
                                                      &txn_mgr_, wal);
    return Status::OK();
  }

  MvccRowStore* store(uint32_t table_id) {
    const auto it = stores_.find(table_id);
    return it == stores_.end() ? nullptr : it->second.get();
  }
  const MvccRowStore* store(uint32_t table_id) const {
    const auto it = stores_.find(table_id);
    return it == stores_.end() ? nullptr : it->second.get();
  }

  TransactionManager* txn_mgr() { return &txn_mgr_; }

  std::unique_ptr<TxnContext> Begin() {
    auto ctx = std::make_unique<TxnContext>();
    ctx->local = txn_mgr_.Begin();
    return ctx;
  }

  Status Insert(TxnContext* txn, const TableInfo& table, const Row& row) {
    MvccRowStore* s = store(table.id);
    if (s == nullptr) return Status::NotFound("no such table");
    return s->Insert(txn->local.get(), row);
  }
  Status Update(TxnContext* txn, const TableInfo& table, const Row& row) {
    MvccRowStore* s = store(table.id);
    if (s == nullptr) return Status::NotFound("no such table");
    return s->Update(txn->local.get(), row);
  }
  Status Delete(TxnContext* txn, const TableInfo& table, Key key) {
    MvccRowStore* s = store(table.id);
    if (s == nullptr) return Status::NotFound("no such table");
    return s->Delete(txn->local.get(), key);
  }
  Status Get(TxnContext* txn, const TableInfo& table, Key key, Row* out) {
    MvccRowStore* s = store(table.id);
    if (s == nullptr) return Status::NotFound("no such table");
    return s->Get(txn->local->snapshot(), key, out);
  }
  Status Read(const TableInfo& table, Key key, Row* out) const {
    const MvccRowStore* s = store(table.id);
    if (s == nullptr) return Status::NotFound("no such table");
    return s->Get(txn_mgr_.CurrentSnapshot(), key, out);
  }
  Status Commit(TxnContext* txn) {
    txn->finished = true;
    return txn_mgr_.Commit(txn->local.get());
  }
  Status Abort(TxnContext* txn) {
    txn->finished = true;
    return txn_mgr_.Abort(txn->local.get());
  }

  size_t TotalRowStoreBytes() const {
    size_t b = 0;
    for (const auto& [id, s] : stores_) b += s->MemoryBytes();
    return b;
  }

 private:
  TransactionManager txn_mgr_;
  std::map<uint32_t, std::unique_ptr<MvccRowStore>> stores_;
};

/// Background merge driver shared by the local engines: one thread syncing
/// every registered synchronizer on interval/threshold triggers.
class SyncDaemon {
 public:
  SyncDaemon(TransactionManager* txn_mgr, Micros interval_micros,
             size_t entry_threshold)
      : txn_mgr_(txn_mgr),
        interval_micros_(interval_micros),
        entry_threshold_(entry_threshold) {}

  ~SyncDaemon() { Stop(); }

  void AddTask(DataSynchronizer* sync) {
    MutexLock lk(&tasks_mu_);
    tasks_.push_back(sync);
  }

  void Start() {
    if (thread_.joinable()) return;
    // order: relaxed — the std::thread constructor below synchronizes-with
    // the new thread, so the reset needs no edge of its own.
    stop_.store(false, std::memory_order_relaxed);
    thread_ = std::thread([this] { Loop(); });
  }

  void Stop() {
    // order: release pairs with Loop()'s acquire — everything written
    // before the stop request is visible to the loop's final iteration.
    stop_.store(true, std::memory_order_release);
    if (thread_.joinable()) thread_.join();
  }

  Status SyncAllNow() {
    const CSN target = txn_mgr_->LastCommittedCsn();
    MutexLock lk(&tasks_mu_);
    for (DataSynchronizer* t : tasks_) HTAP_RETURN_NOT_OK(t->SyncTo(target));
    return Status::OK();
  }

 private:
  void Loop() {
    Micros slept = 0;
    const Micros tick = 1000;
    // order: acquire pairs with Stop()'s release store.
    while (!stop_.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::microseconds(tick));
      slept += tick;
      bool threshold_hit = false;
      if (entry_threshold_ != 0) {
        MutexLock lk(&tasks_mu_);
        for (DataSynchronizer* t : tasks_)
          threshold_hit |= t->PendingEntries() >= entry_threshold_;
      }
      if (slept >= interval_micros_ || threshold_hit) {
        SyncAllNow();
        slept = 0;
      }
    }
  }

  TransactionManager* const txn_mgr_;
  const Micros interval_micros_;
  const size_t entry_threshold_;
  // Outermost lock in the system: held across SyncTo(), which reaches the
  // sync, table-latch, delta, and catalog locks (DESIGN.md §11).
  Mutex tasks_mu_{LockRank::kSyncDaemon, "sync-daemon-tasks"};
  std::vector<DataSynchronizer*> tasks_ GUARDED_BY(tasks_mu_);
  std::atomic<bool> stop_{false};
  // htap-lint: guarded-by — touched only from Start()/Stop()/dtor, which
  // the owning engine serializes; never from the daemon thread itself.
  std::thread thread_;
};

}  // namespace htap

#endif  // HTAP_CORE_ROW_TXN_LAYER_H_
