// Architecture (a): primary row store + in-memory column store.

#include <algorithm>

#include "core/engines.h"

namespace htap {

namespace {

/// Distinct columns a scan request touches (for advisor heat + costing).
std::vector<int> TouchedColumns(const ScanRequest& req) {
  std::vector<int> cols = req.pred->ReferencedColumns();
  for (int c : req.projection)
    if (std::find(cols.begin(), cols.end(), c) == cols.end())
      cols.push_back(c);
  if (cols.empty())
    for (size_t i = 0; i < req.table->schema.num_columns(); ++i)
      cols.push_back(static_cast<int>(i));
  return cols;
}

/// If the predicate is (a conjunction containing) pk = <const>, extract it.
bool ExtractPkPoint(const Predicate& pred, int pk_index, Key* key) {
  for (const Predicate* c : pred.Conjuncts()) {
    if (c->kind() == Predicate::Kind::kCompare && c->op() == CmpOp::kEq &&
        c->column() == pk_index && c->literal().is_int64()) {
      *key = c->literal().AsInt64();
      return true;
    }
  }
  return false;
}

std::unique_ptr<WalWriter> MakeWal(const DatabaseOptions& options,
                                   const std::string& name) {
  if (!options.wal_enabled) return nullptr;
  WalWriter::Options wo;
  if (!options.data_dir.empty())
    wo.path = options.data_dir + "/" + name + ".wal";
  wo.sync_on_commit = options.sync_on_commit;
  return std::make_unique<WalWriter>(wo);
}

}  // namespace

InMemoryHtapEngine::InMemoryHtapEngine(const DatabaseOptions& options,
                                       Catalog* catalog)
    : options_(options),
      catalog_(catalog),
      wal_(MakeWal(options, "inmemory")),
      layer_(wal_.get(), options.commit_shards),
      ap_(options_) {
  layer_.txn_mgr()->RegisterSink(this);
  layer_.txn_mgr()->RegisterSink(&freshness_);
  if (options_.background_sync) {
    daemon_ = std::make_unique<SyncDaemon>(layer_.txn_mgr(),
                                           options_.sync_interval_micros,
                                           options_.sync_entry_threshold);
    daemon_->Start();
  }
}

InMemoryHtapEngine::~InMemoryHtapEngine() {
  if (daemon_) daemon_->Stop();
}

Status InMemoryHtapEngine::CreateTable(const TableInfo& info) {
  HTAP_RETURN_NOT_OK(layer_.AddTable(info, wal_.get()));
  auto ts = std::make_unique<TableState>();
  ts->info = info;
  ts->delta = std::make_unique<InMemoryDeltaStore>();
  ts->columns = std::make_unique<ColumnTable>(info.schema);
  if (options_.compression_advisor) ts->columns->EnableCompressionAdvisor(true);
  ts->sync = std::make_unique<DataSynchronizer>(
      SyncStrategy::kInMemoryMerge, ts->columns.get(),
      std::make_unique<DeltaSourceAdapter<InMemoryDeltaStore>>(
          ts->delta.get()));
  // Every merge republishes incremental TableStats to the catalog, so join
  // planning can happen at plan time from metadata (DESIGN.md §10).
  ts->sync->EnableStatsMaintenance(
      [this, name = info.name](const TableStats& st, CSN as_of) {
        catalog_->PublishStats(name, st, as_of);
      },
      options_.stats_compact_delete_threshold);
  if (daemon_) daemon_->AddTask(ts->sync.get());
  MutexLock lk(&tables_mu_);
  tables_[info.id] = std::move(ts);
  return Status::OK();
}

std::unique_ptr<TxnContext> InMemoryHtapEngine::Begin() {
  return layer_.Begin();
}
Status InMemoryHtapEngine::Insert(TxnContext* t, const TableInfo& tbl,
                                  const Row& r) {
  return layer_.Insert(t, tbl, r);
}
Status InMemoryHtapEngine::Update(TxnContext* t, const TableInfo& tbl,
                                  const Row& r) {
  return layer_.Update(t, tbl, r);
}
Status InMemoryHtapEngine::Delete(TxnContext* t, const TableInfo& tbl,
                                  Key key) {
  return layer_.Delete(t, tbl, key);
}
Status InMemoryHtapEngine::Get(TxnContext* t, const TableInfo& tbl, Key key,
                               Row* out) {
  return layer_.Get(t, tbl, key, out);
}
Status InMemoryHtapEngine::Commit(TxnContext* t) { return layer_.Commit(t); }
Status InMemoryHtapEngine::Abort(TxnContext* t) { return layer_.Abort(t); }
Status InMemoryHtapEngine::Read(const TableInfo& tbl, Key key, Row* out) {
  return layer_.Read(tbl, key, out);
}

void InMemoryHtapEngine::OnCommit(const std::vector<ChangeEvent>& events) {
  MutexLock lk(&tables_mu_);
  for (auto& [tid, ts] : tables_) ts->delta->AppendBatch(events, tid);
}

ColumnTable* InMemoryHtapEngine::column_table(uint32_t table_id) {
  MutexLock lk(&tables_mu_);
  const auto it = tables_.find(table_id);
  return it == tables_.end() ? nullptr : it->second->columns.get();
}

InMemoryDeltaStore* InMemoryHtapEngine::delta(uint32_t table_id) {
  MutexLock lk(&tables_mu_);
  const auto it = tables_.find(table_id);
  return it == tables_.end() ? nullptr : it->second->delta.get();
}

TableStats InMemoryHtapEngine::RefreshedStats(TableState* ts) {
  const CSN now = layer_.txn_mgr()->LastCommittedCsn();
  MutexLock lk(&ts->stats_mu);
  if (ts->stats.row_count != 0 &&
      now < ts->stats_at_csn + options_.stats_refresh_interval)
    return ts->stats;
  const MvccRowStore* store = layer_.store(ts->info.id);
  std::vector<Row> sample;
  sample.reserve(2048);
  store->Scan(layer_.txn_mgr()->CurrentSnapshot(),
              [&](Key, const Row& r) {
                sample.push_back(r);
                return sample.size() < 2048;
              });
  ts->stats = TableStats::Compute(ts->info.schema, sample);
  ts->stats.row_count = store->ApproxRowCount();
  ts->stats_at_csn = now;
  return ts->stats;
}

AccessPath InMemoryHtapEngine::ResolvePath(const ScanRequest& req,
                                           TableState* ts, bool* pk_point,
                                           Key* pk_key) {
  const TableStats table_stats = RefreshedStats(ts);
  *pk_point = ExtractPkPoint(*req.pred, req.table->schema.pk_index(), pk_key);
  switch (req.path) {
    case PathHint::kForceRow: return AccessPath::kRowFullScan;
    case PathHint::kForceColumn: return AccessPath::kColumnScan;
    case PathHint::kAuto: break;
  }
  AccessQuery q;
  q.stats = &table_stats;
  q.pred = req.pred;
  q.columns_needed = TouchedColumns(req).size();
  q.total_columns = req.table->schema.num_columns();
  q.delta_entries = ts->delta->EntryCount();
  q.pk_point_lookup = *pk_point;
  q.column_store_available = true;
  return ChooseAccessPath(CostModel{}, q).path;
}

Result<std::vector<Row>> InMemoryHtapEngine::Scan(const ScanRequest& req,
                                                  ScanStats* stats,
                                                  std::string* path_desc) {
  TableState* ts;
  {
    MutexLock lk(&tables_mu_);
    const auto it = tables_.find(req.table->id);
    if (it == tables_.end()) return Status::NotFound("no such table");
    ts = it->second.get();
  }
  advisor_.RecordAccess(req.table->name, TouchedColumns(req));

  bool pk_point = false;
  Key pk_key = 0;
  const AccessPath path = ResolvePath(req, ts, &pk_point, &pk_key);
  if (path_desc != nullptr) *path_desc = AccessPathName(path);

  const Snapshot snap = layer_.txn_mgr()->CurrentSnapshot();
  const MvccRowStore* store = layer_.store(req.table->id);

  if (path == AccessPath::kRowIndexLookup && pk_point) {
    std::vector<Row> out;
    Row row;
    const Status st = store->Get(snap, pk_key, &row);
    if (st.ok() && req.pred->Eval(row)) {
      if (req.projection.empty()) {
        out.push_back(std::move(row));
      } else {
        Row proj;
        for (int c : req.projection) proj.Append(row.Get(static_cast<size_t>(c)));
        out.push_back(std::move(proj));
      }
    }
    return out;
  }
  if (path == AccessPath::kColumnScan) {
    const DeltaReader* delta = req.require_fresh ? ts->delta.get() : nullptr;
    return ScanHtap(*ts->columns, delta, snap.begin_csn, *req.pred,
                    req.projection, ap_.ctx(), stats);
  }
  return ScanRowStore(*store, snap, *req.pred, req.projection, ap_.ctx());
}

Result<std::vector<ColumnBatch>> InMemoryHtapEngine::BatchScan(
    const ScanRequest& req, ScanStats* stats, std::string* path_desc) {
  TableState* ts;
  {
    MutexLock lk(&tables_mu_);
    const auto it = tables_.find(req.table->id);
    if (it == tables_.end()) return Status::NotFound("no such table");
    ts = it->second.get();
  }
  bool pk_point = false;
  Key pk_key = 0;
  if (ResolvePath(req, ts, &pk_point, &pk_key) != AccessPath::kColumnScan)
    return Status::NotSupported("row access path");
  advisor_.RecordAccess(req.table->name, TouchedColumns(req));
  if (path_desc != nullptr)
    *path_desc = AccessPathName(AccessPath::kColumnScan);
  const Snapshot snap = layer_.txn_mgr()->CurrentSnapshot();
  const DeltaReader* delta = req.require_fresh ? ts->delta.get() : nullptr;
  return ScanHtapBatches(*ts->columns, delta, snap.begin_csn, *req.pred,
                         req.projection, ap_.ctx(), stats);
}

Result<QueryResult> InMemoryHtapEngine::Execute(const QueryPlan& plan,
                                                QueryExecInfo* info) {
  const ScanFn scan = [this](const ScanRequest& req, ScanStats* stats,
                             std::string* desc) {
    return Scan(req, stats, desc);
  };
  BatchScanFn batch_scan;
  if (ap_.vectorized)
    batch_scan = [this](const ScanRequest& req, ScanStats* stats,
                        std::string* desc) {
      return BatchScan(req, stats, desc);
    };
  return RunPlan(plan, *catalog_, scan, info,
                 ap_.ctx(layer_.txn_mgr()->LastCommittedCsn()), batch_scan);
}

Status InMemoryHtapEngine::ForceSync(const TableInfo& tbl) {
  MutexLock lk(&tables_mu_);
  const auto it = tables_.find(tbl.id);
  if (it == tables_.end()) return Status::NotFound("no such table");
  return it->second->sync->SyncTo(layer_.txn_mgr()->LastCommittedCsn());
}

FreshnessInfo InMemoryHtapEngine::Freshness(const TableInfo& tbl) {
  FreshnessInfo f;
  MutexLock lk(&tables_mu_);
  const auto it = tables_.find(tbl.id);
  if (it == tables_.end()) return f;
  f.committed_csn = layer_.txn_mgr()->LastCommittedCsn();
  f.visible_csn = it->second->columns->merged_csn();
  f.csn_lag = freshness_.CsnLag(f.committed_csn, f.visible_csn);
  f.time_lag_micros = freshness_.TimeLagMicros(f.visible_csn);
  f.fresh_visible_csn = f.committed_csn;  // fresh scans union the delta
  f.fresh_time_lag_micros = 0;
  f.pending_delta_entries = it->second->delta->EntryCount();
  return f;
}

EngineStats InMemoryHtapEngine::Stats() {
  EngineStats s;
  s.commits = layer_.txn_mgr()->commits();
  s.aborts = layer_.txn_mgr()->aborts();
  s.conflicts = layer_.txn_mgr()->conflicts();
  s.row_store_bytes = layer_.TotalRowStoreBytes();
  MutexLock lk(&tables_mu_);
  for (const auto& [tid, ts] : tables_) {
    const SyncStats ss = ts->sync->stats();
    s.merges += ss.merges;
    s.entries_merged += ss.entries_merged;
    s.column_store_bytes += ts->columns->MemoryBytes();
    s.delta_bytes += ts->delta->MemoryBytes();
    s.column_encodings.Merge(ts->columns->EncodingStats());
  }
  return s;
}

}  // namespace htap
