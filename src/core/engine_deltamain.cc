// Architecture (d): primary column store ("Main") + delta row store
// (SAP HANA's L1-delta / L2-delta / Main pipeline).
//
// Deviation noted in DESIGN.md: the MVCC row store retains committed row
// images as the correctness/recovery anchor (akin to HANA's persisted row
// images); the L1/L2 delta is the read-side staging pipeline whose spill
// and merge costs this architecture is characterized by.

#include "core/engines.h"

namespace htap {

namespace {

std::unique_ptr<WalWriter> MakeWal(const DatabaseOptions& options,
                                   const std::string& name) {
  if (!options.wal_enabled) return nullptr;
  WalWriter::Options wo;
  if (!options.data_dir.empty())
    wo.path = options.data_dir + "/" + name + ".wal";
  wo.sync_on_commit = options.sync_on_commit;
  return std::make_unique<WalWriter>(wo);
}

}  // namespace

DeltaMainHtapEngine::DeltaMainHtapEngine(const DatabaseOptions& options,
                                         Catalog* catalog)
    : options_(options),
      catalog_(catalog),
      wal_(MakeWal(options, "deltamain")),
      layer_(wal_.get(), options.commit_shards),
      ap_(options_) {
  layer_.txn_mgr()->RegisterSink(this);
  layer_.txn_mgr()->RegisterSink(&freshness_);
  if (options_.background_sync) {
    daemon_ = std::make_unique<SyncDaemon>(layer_.txn_mgr(),
                                           options_.sync_interval_micros,
                                           options_.sync_entry_threshold);
    daemon_->Start();
  }
}

DeltaMainHtapEngine::~DeltaMainHtapEngine() {
  if (daemon_) daemon_->Stop();
}

Status DeltaMainHtapEngine::CreateTable(const TableInfo& info) {
  HTAP_RETURN_NOT_OK(layer_.AddTable(info, wal_.get()));
  auto ts = std::make_unique<TableState>();
  ts->info = info;
  ts->delta =
      std::make_unique<L1L2DeltaStore>(info.schema, options_.l1_spill_threshold);
  ts->main = std::make_unique<ColumnTable>(info.schema);
  if (options_.compression_advisor) ts->main->EnableCompressionAdvisor(true);
  ts->sync = std::make_unique<DataSynchronizer>(
      SyncStrategy::kInMemoryMerge, ts->main.get(),
      std::make_unique<DeltaSourceAdapter<L1L2DeltaStore>>(ts->delta.get()));
  // Every L2->Main merge republishes incremental TableStats to the catalog
  // for plan-time join ordering (DESIGN.md §10).
  ts->sync->EnableStatsMaintenance(
      [this, name = info.name](const TableStats& st, CSN as_of) {
        catalog_->PublishStats(name, st, as_of);
      },
      options_.stats_compact_delete_threshold);
  if (daemon_) daemon_->AddTask(ts->sync.get());
  MutexLock lk(&tables_mu_);
  tables_[info.id] = std::move(ts);
  return Status::OK();
}

std::unique_ptr<TxnContext> DeltaMainHtapEngine::Begin() {
  return layer_.Begin();
}
Status DeltaMainHtapEngine::Insert(TxnContext* t, const TableInfo& tbl,
                                   const Row& r) {
  return layer_.Insert(t, tbl, r);
}
Status DeltaMainHtapEngine::Update(TxnContext* t, const TableInfo& tbl,
                                   const Row& r) {
  return layer_.Update(t, tbl, r);
}
Status DeltaMainHtapEngine::Delete(TxnContext* t, const TableInfo& tbl,
                                   Key key) {
  return layer_.Delete(t, tbl, key);
}
Status DeltaMainHtapEngine::Get(TxnContext* t, const TableInfo& tbl, Key key,
                                Row* out) {
  return layer_.Get(t, tbl, key, out);
}
Status DeltaMainHtapEngine::Commit(TxnContext* t) { return layer_.Commit(t); }
Status DeltaMainHtapEngine::Abort(TxnContext* t) { return layer_.Abort(t); }
Status DeltaMainHtapEngine::Read(const TableInfo& tbl, Key key, Row* out) {
  return layer_.Read(tbl, key, out);
}

void DeltaMainHtapEngine::OnCommit(const std::vector<ChangeEvent>& events) {
  // The TP commit path pays the L1 append (and occasionally the L1->L2
  // dictionary-encoding spill) — the cost behind Table 1's "Low TP
  // scalability" for this architecture.
  MutexLock lk(&tables_mu_);
  for (auto& [tid, ts] : tables_) ts->delta->AppendBatch(events, tid);
}

L1L2DeltaStore* DeltaMainHtapEngine::delta(uint32_t table_id) {
  MutexLock lk(&tables_mu_);
  const auto it = tables_.find(table_id);
  return it == tables_.end() ? nullptr : it->second->delta.get();
}

ColumnTable* DeltaMainHtapEngine::main(uint32_t table_id) {
  MutexLock lk(&tables_mu_);
  const auto it = tables_.find(table_id);
  return it == tables_.end() ? nullptr : it->second->main.get();
}

Result<std::vector<Row>> DeltaMainHtapEngine::Scan(const ScanRequest& req,
                                                   ScanStats* stats,
                                                   std::string* path_desc) {
  TableState* ts;
  {
    MutexLock lk(&tables_mu_);
    const auto it = tables_.find(req.table->id);
    if (it == tables_.end()) return Status::NotFound("no such table");
    ts = it->second.get();
  }
  // The column store IS the primary store here: everything except a forced
  // row scan goes Main + L2 + L1.
  if (req.path == PathHint::kForceRow) {
    if (path_desc != nullptr) *path_desc = "delta-row-scan";
    return ScanRowStore(*layer_.store(req.table->id),
                        layer_.txn_mgr()->CurrentSnapshot(), *req.pred,
                        req.projection, ap_.ctx());
  }
  if (path_desc != nullptr) *path_desc = "main+l2+l1-scan";
  const DeltaReader* delta = req.require_fresh ? ts->delta.get() : nullptr;
  return ScanHtap(*ts->main, delta,
                  layer_.txn_mgr()->CurrentSnapshot().begin_csn, *req.pred,
                  req.projection, ap_.ctx(), stats);
}

Result<std::vector<ColumnBatch>> DeltaMainHtapEngine::BatchScan(
    const ScanRequest& req, ScanStats* stats, std::string* path_desc) {
  TableState* ts;
  {
    MutexLock lk(&tables_mu_);
    const auto it = tables_.find(req.table->id);
    if (it == tables_.end()) return Status::NotFound("no such table");
    ts = it->second.get();
  }
  // The column store IS the primary store: only a forced row scan declines.
  if (req.path == PathHint::kForceRow)
    return Status::NotSupported("forced row scan");
  if (path_desc != nullptr) *path_desc = "main+l2+l1-scan";
  const DeltaReader* delta = req.require_fresh ? ts->delta.get() : nullptr;
  return ScanHtapBatches(*ts->main, delta,
                         layer_.txn_mgr()->CurrentSnapshot().begin_csn,
                         *req.pred, req.projection, ap_.ctx(), stats);
}

Result<QueryResult> DeltaMainHtapEngine::Execute(const QueryPlan& plan,
                                                 QueryExecInfo* info) {
  const ScanFn scan = [this](const ScanRequest& req, ScanStats* stats,
                             std::string* desc) {
    return Scan(req, stats, desc);
  };
  BatchScanFn batch_scan;
  if (ap_.vectorized)
    batch_scan = [this](const ScanRequest& req, ScanStats* stats,
                        std::string* desc) {
      return BatchScan(req, stats, desc);
    };
  return RunPlan(plan, *catalog_, scan, info,
                 ap_.ctx(layer_.txn_mgr()->LastCommittedCsn()), batch_scan);
}

Status DeltaMainHtapEngine::ForceSync(const TableInfo& tbl) {
  MutexLock lk(&tables_mu_);
  const auto it = tables_.find(tbl.id);
  if (it == tables_.end()) return Status::NotFound("no such table");
  return it->second->sync->SyncTo(layer_.txn_mgr()->LastCommittedCsn());
}

FreshnessInfo DeltaMainHtapEngine::Freshness(const TableInfo& tbl) {
  FreshnessInfo f;
  MutexLock lk(&tables_mu_);
  const auto it = tables_.find(tbl.id);
  if (it == tables_.end()) return f;
  f.committed_csn = layer_.txn_mgr()->LastCommittedCsn();
  f.visible_csn = it->second->main->merged_csn();
  f.csn_lag = freshness_.CsnLag(f.committed_csn, f.visible_csn);
  f.time_lag_micros = freshness_.TimeLagMicros(f.visible_csn);
  f.fresh_visible_csn = f.committed_csn;  // fresh scans union the delta
  f.fresh_time_lag_micros = 0;
  f.pending_delta_entries = it->second->delta->EntryCount();
  return f;
}

EngineStats DeltaMainHtapEngine::Stats() {
  EngineStats s;
  s.commits = layer_.txn_mgr()->commits();
  s.aborts = layer_.txn_mgr()->aborts();
  s.conflicts = layer_.txn_mgr()->conflicts();
  s.row_store_bytes = layer_.TotalRowStoreBytes();
  MutexLock lk(&tables_mu_);
  for (const auto& [tid, ts] : tables_) {
    const SyncStats ss = ts->sync->stats();
    s.merges += ss.merges;
    s.entries_merged += ss.entries_merged;
    s.column_store_bytes += ts->main->MemoryBytes();
    s.delta_bytes += ts->delta->MemoryBytes();
    s.column_encodings.Merge(ts->main->EncodingStats());
  }
  return s;
}

}  // namespace htap
