// The four architecture presets of the survey's taxonomy (Figure 1 /
// Table 1), each an HtapEngine:
//
//  (a) InMemoryHtapEngine   — primary row store + in-memory column store
//                             (Oracle dual-format / SQL Server CSI style).
//  (b) DistributedHtapEngine — distributed row store + column replica
//                             (TiDB style; wraps sim::DistributedDb).
//  (c) DiskHtapEngine       — disk row store + in-memory column-store
//                             cluster (MySQL Heatwave style).
//  (d) DeltaMainHtapEngine  — primary column store + delta row store
//                             (SAP HANA style).

#ifndef HTAP_CORE_ENGINES_H_
#define HTAP_CORE_ENGINES_H_

#include <memory>
#include <unordered_map>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "core/catalog.h"
#include "core/options.h"
#include "core/query_runner.h"
#include "core/row_txn_layer.h"
#include "opt/column_advisor.h"
#include "opt/optimizer.h"
#include "storage/disk_row_store.h"

namespace htap {

/// The engine-owned AP pool powering morsel-driven parallel scans,
/// aggregations, and hash joins. No pool is created when the effective
/// thread count is 1 (serial).
struct ApScanRuntime {
  std::unique_ptr<ThreadPool> pool;
  size_t threads = 1;
  size_t min_join_build = 4096;
  size_t spill_budget = 0;
  std::string spill_dir;
  uint64_t stats_staleness = 65536;
  size_t batch_rows = 4096;  // rows per ColumnBatch (DESIGN.md §12)
  bool vectorized = true;    // engine offers its batch scan to the runner
  bool vectorized_join = true;  // batch-native joins (DESIGN.md §13)

  explicit ApScanRuntime(const DatabaseOptions& options)
      : threads(EffectiveParallelScanThreads(options)),
        min_join_build(options.parallel_join_min_build_rows),
        spill_budget(options.join_spill_budget_bytes),
        spill_dir(options.join_spill_dir),
        stats_staleness(options.stats_staleness_csns),
        batch_rows(options.vectorized_batch_rows),
        vectorized(options.vectorized_exec),
        vectorized_join(options.vectorized_join) {
    if (threads > 1) pool = std::make_unique<ThreadPool>(threads, "ap-scan");
  }

  /// `committed_csn` is the engine's commit frontier at query start — the
  /// reference point for the planner's stats-staleness check.
  ExecContext ctx(CSN committed_csn = 0) const {
    ExecContext exec;
    exec.pool = pool.get();
    exec.max_parallelism = threads;
    exec.min_parallel_join_build = min_join_build;
    exec.join_spill_budget_bytes = spill_budget;
    exec.join_spill_dir = spill_dir;
    exec.committed_csn = committed_csn;
    exec.stats_staleness_csns = stats_staleness;
    exec.batch_rows = batch_rows;
    exec.vectorized_join = vectorized_join;
    return exec;
  }
};

// ---------------------------------------------------------------------------
// (a) Primary row store + in-memory column store
// ---------------------------------------------------------------------------

class InMemoryHtapEngine : public HtapEngine, public ChangeSink {
 public:
  InMemoryHtapEngine(const DatabaseOptions& options, Catalog* catalog);
  ~InMemoryHtapEngine() override;

  Status CreateTable(const TableInfo& info) override;
  std::unique_ptr<TxnContext> Begin() override;
  Status Insert(TxnContext* t, const TableInfo& tbl, const Row& r) override;
  Status Update(TxnContext* t, const TableInfo& tbl, const Row& r) override;
  Status Delete(TxnContext* t, const TableInfo& tbl, Key key) override;
  Status Get(TxnContext* t, const TableInfo& tbl, Key key, Row* out) override;
  Status Commit(TxnContext* t) override;
  Status Abort(TxnContext* t) override;
  Status Read(const TableInfo& tbl, Key key, Row* out) override;
  Result<QueryResult> Execute(const QueryPlan& plan,
                              QueryExecInfo* info) override;
  Status ForceSync(const TableInfo& tbl) override;
  FreshnessInfo Freshness(const TableInfo& tbl) override;
  EngineStats Stats() override;

  void OnCommit(const std::vector<ChangeEvent>& events) override;
  ThreadPool* ApScanPool() override { return ap_.pool.get(); }

  TransactionManager* txn_mgr() { return layer_.txn_mgr(); }
  ColumnTable* column_table(uint32_t table_id);
  InMemoryDeltaStore* delta(uint32_t table_id);

 private:
  struct TableState {
    // htap-lint: guarded-by — set in CreateTable before the state is
    // published into tables_; immutable afterwards.
    TableInfo info;
    std::unique_ptr<InMemoryDeltaStore> delta;
    std::unique_ptr<ColumnTable> columns;
    std::unique_ptr<DataSynchronizer> sync;
    // Plan-time row-store stats: refreshed from a snapshot scan while
    // concurrent queries copy them out, so they carry their own mutex.
    Mutex stats_mu{LockRank::kEngineTableStats, "inmemory-table-stats"};
    TableStats stats GUARDED_BY(stats_mu);
    uint64_t stats_at_csn GUARDED_BY(stats_mu) = 0;
  };

  Result<std::vector<Row>> Scan(const ScanRequest& req, ScanStats* stats,
                                std::string* path_desc);
  /// Vectorized scan: serves only the column access path, as ColumnBatches
  /// straight off the encoded segments; declines everything else with
  /// NotSupported (the runner falls back to Scan).
  Result<std::vector<ColumnBatch>> BatchScan(const ScanRequest& req,
                                             ScanStats* stats,
                                             std::string* path_desc);
  /// The access-path decision shared by Scan and BatchScan.
  AccessPath ResolvePath(const ScanRequest& req, TableState* ts,
                         bool* pk_point, Key* pk_key);
  /// Refreshes the sampled row-store stats if stale and returns a copy.
  TableStats RefreshedStats(TableState* ts);

  const DatabaseOptions options_;
  Catalog* catalog_;
  std::unique_ptr<WalWriter> wal_;
  // htap-lint: guarded-by — tables register only during engine init /
  // CreateTable (no concurrent phase); the txn manager and row stores
  // inside carry their own locks.
  RowTxnLayer layer_;
  FreshnessTracker freshness_;
  ColumnAdvisor advisor_;
  const ApScanRuntime ap_;  // config + pool, fixed at construction
  // TableState pointers are stable: entries are never erased, so a pointer
  // copied out under the lock stays valid for the engine's lifetime.
  std::unordered_map<uint32_t, std::unique_ptr<TableState>> tables_
      GUARDED_BY(tables_mu_);
  std::unique_ptr<SyncDaemon> daemon_;
  mutable Mutex tables_mu_{LockRank::kEngineTables, "inmemory-tables"};
};

// ---------------------------------------------------------------------------
// (d) Primary column store + delta row store
// ---------------------------------------------------------------------------

class DeltaMainHtapEngine : public HtapEngine, public ChangeSink {
 public:
  DeltaMainHtapEngine(const DatabaseOptions& options, Catalog* catalog);
  ~DeltaMainHtapEngine() override;

  Status CreateTable(const TableInfo& info) override;
  std::unique_ptr<TxnContext> Begin() override;
  Status Insert(TxnContext* t, const TableInfo& tbl, const Row& r) override;
  Status Update(TxnContext* t, const TableInfo& tbl, const Row& r) override;
  Status Delete(TxnContext* t, const TableInfo& tbl, Key key) override;
  Status Get(TxnContext* t, const TableInfo& tbl, Key key, Row* out) override;
  Status Commit(TxnContext* t) override;
  Status Abort(TxnContext* t) override;
  Status Read(const TableInfo& tbl, Key key, Row* out) override;
  Result<QueryResult> Execute(const QueryPlan& plan,
                              QueryExecInfo* info) override;
  Status ForceSync(const TableInfo& tbl) override;
  FreshnessInfo Freshness(const TableInfo& tbl) override;
  EngineStats Stats() override;

  void OnCommit(const std::vector<ChangeEvent>& events) override;
  ThreadPool* ApScanPool() override { return ap_.pool.get(); }

  L1L2DeltaStore* delta(uint32_t table_id);
  ColumnTable* main(uint32_t table_id);

 private:
  struct TableState {
    // htap-lint: guarded-by — set in CreateTable before the state is
    // published into tables_; immutable afterwards.
    TableInfo info;
    std::unique_ptr<L1L2DeltaStore> delta;   // L1 + L2
    std::unique_ptr<ColumnTable> main;       // the primary column store
    std::unique_ptr<DataSynchronizer> sync;
  };

  Result<std::vector<Row>> Scan(const ScanRequest& req, ScanStats* stats,
                                std::string* path_desc);
  /// Vectorized scan over Main + delta; declines only a forced row scan.
  Result<std::vector<ColumnBatch>> BatchScan(const ScanRequest& req,
                                             ScanStats* stats,
                                             std::string* path_desc);

  const DatabaseOptions options_;
  Catalog* catalog_;
  std::unique_ptr<WalWriter> wal_;
  // htap-lint: guarded-by — tables register only during engine init /
  // CreateTable (no concurrent phase); internals carry their own locks.
  RowTxnLayer layer_;  // the delta row store with MVCC semantics
  FreshnessTracker freshness_;
  const ApScanRuntime ap_;  // config + pool, fixed at construction
  std::unordered_map<uint32_t, std::unique_ptr<TableState>> tables_
      GUARDED_BY(tables_mu_);
  std::unique_ptr<SyncDaemon> daemon_;
  mutable Mutex tables_mu_{LockRank::kEngineTables, "deltamain-tables"};
};

// ---------------------------------------------------------------------------
// (c) Disk row store + distributed in-memory column store
// ---------------------------------------------------------------------------

class DiskHtapEngine : public HtapEngine, public ChangeSink {
 public:
  DiskHtapEngine(const DatabaseOptions& options, Catalog* catalog);
  ~DiskHtapEngine() override;

  Status CreateTable(const TableInfo& info) override;
  std::unique_ptr<TxnContext> Begin() override;
  Status Insert(TxnContext* t, const TableInfo& tbl, const Row& r) override;
  Status Update(TxnContext* t, const TableInfo& tbl, const Row& r) override;
  Status Delete(TxnContext* t, const TableInfo& tbl, Key key) override;
  Status Get(TxnContext* t, const TableInfo& tbl, Key key, Row* out) override;
  Status Commit(TxnContext* t) override;
  Status Abort(TxnContext* t) override;
  Status Read(const TableInfo& tbl, Key key, Row* out) override;
  Result<QueryResult> Execute(const QueryPlan& plan,
                              QueryExecInfo* info) override;
  Status ForceSync(const TableInfo& tbl) override;
  FreshnessInfo Freshness(const TableInfo& tbl) override;
  EngineStats Stats() override;

  void OnCommit(const std::vector<ChangeEvent>& events) override;
  ThreadPool* ApScanPool() override { return ap_.pool.get(); }

  /// Re-runs the column advisor and reloads the IMCS with the selected
  /// columns under the configured memory budget. Returns the selection.
  Result<ColumnAdvisor::Selection> RefreshColumnSelection(
      const TableInfo& tbl);

  /// Columns currently loaded in the IMCS for a table (base indexes).
  std::vector<int> LoadedColumns(uint32_t table_id) const;

 private:
  struct TableState {
    // htap-lint: guarded-by — set in CreateTable before the state is
    // published into tables_; immutable afterwards.
    TableInfo info;
    std::unique_ptr<DiskRowStore> heap;          // durable row heap
    std::unique_ptr<InMemoryDeltaStore> delta;   // staged changes for IMCS
    // The IMCS generation: RefreshColumnSelection replaces the pair
    // wholesale; readers copy the shared_ptr + loaded vector out under
    // tables_mu_ and the old store stays alive until the last scan drops it
    // (a scan must never dereference a generation it did not pin).
    std::shared_ptr<ColumnTable> imcs;           // loaded-column store
    // htap-lint: guarded-by — guarded by the owning engine's tables_mu_
    // (copied out with imcs under that lock); not expressible lexically
    // from a nested struct.
    std::vector<int> loaded;                     // base column indexes
    // Serializes "snapshot the current generation + drain the delta +
    // apply" so concurrent scans cannot apply drained batches out of commit
    // order (or drain entries into a superseded generation).
    Mutex merge_mu{LockRank::kEngineTableSync, "disk-imcs-merge"};
    Mutex stats_mu{LockRank::kEngineTableStats, "disk-table-stats"};
    TableStats stats GUARDED_BY(stats_mu);
    uint64_t stats_at_csn GUARDED_BY(stats_mu) = 0;
  };

  /// Column access resolved for one scan request: the access-path decision
  /// plus — when the IMCS is serving — the pinned generation and the
  /// predicate/projection remapped onto its loaded-column layout.
  struct ImcsAccess {
    AccessPath path = AccessPath::kRowFullScan;
    bool pk_point = false;
    Key pk_key = 0;
    bool imcs_ready = false;  // path == kColumnScan and capability held
    std::shared_ptr<ColumnTable> imcs;
    std::vector<int> loaded;
    Predicate pred;           // remapped onto the IMCS layout
    std::vector<int> proj;    // remapped projection
  };

  Result<std::vector<Row>> Scan(const ScanRequest& req, ScanStats* stats,
                                std::string* path_desc);
  /// Vectorized scan: serves only when the pinned IMCS generation holds
  /// every referenced column (NotSupported otherwise — the survey's
  /// "columns may not have been selected" caveat applies to batches too).
  Result<std::vector<ColumnBatch>> BatchScan(const ScanRequest& req,
                                             ScanStats* stats,
                                             std::string* path_desc);
  /// The path decision + IMCS pinning shared by Scan and BatchScan.
  Result<ImcsAccess> ResolveAccess(const ScanRequest& req, TableState* ts);
  /// Drains the delta up to `target` into the current IMCS generation and
  /// (optionally) returns the synced generation for the caller to scan.
  Status SyncImcs(TableState* ts, CSN target,
                  std::shared_ptr<ColumnTable>* imcs_out,
                  std::vector<int>* loaded_out);
  static Row ProjectToLoaded(const std::vector<int>& loaded, const Row& row);
  /// Refreshes the sampled row-store stats if stale (publishing to the
  /// catalog) and returns a copy.
  TableStats RefreshedStats(TableState* ts);

  const DatabaseOptions options_;
  Catalog* catalog_;
  std::unique_ptr<WalWriter> wal_;
  // htap-lint: guarded-by — tables register only during engine init /
  // CreateTable (no concurrent phase); internals carry their own locks.
  RowTxnLayer layer_;
  FreshnessTracker freshness_;
  ColumnAdvisor advisor_;
  const ApScanRuntime ap_;  // config + pool, fixed at construction
  // TableState pointers are stable (entries never erased); see (a).
  std::unordered_map<uint32_t, std::unique_ptr<TableState>> tables_
      GUARDED_BY(tables_mu_);
  mutable Mutex tables_mu_{LockRank::kEngineTables, "disk-tables"};
};

// ---------------------------------------------------------------------------
// (b) Distributed row store + column store replica
// ---------------------------------------------------------------------------

class DistributedHtapEngine : public HtapEngine {
 public:
  DistributedHtapEngine(const DatabaseOptions& options, Catalog* catalog);

  Status CreateTable(const TableInfo& info) override;
  std::unique_ptr<TxnContext> Begin() override;
  Status Insert(TxnContext* t, const TableInfo& tbl, const Row& r) override;
  Status Update(TxnContext* t, const TableInfo& tbl, const Row& r) override;
  Status Delete(TxnContext* t, const TableInfo& tbl, Key key) override;
  Status Get(TxnContext* t, const TableInfo& tbl, Key key, Row* out) override;
  Status Commit(TxnContext* t) override;
  Status Abort(TxnContext* t) override;
  Status Read(const TableInfo& tbl, Key key, Row* out) override;
  Result<QueryResult> Execute(const QueryPlan& plan,
                              QueryExecInfo* info) override;
  Status ForceSync(const TableInfo& tbl) override;
  FreshnessInfo Freshness(const TableInfo& tbl) override;
  EngineStats Stats() override;

  sim::DistributedDb* dist_db() { return db_.get(); }
  sim::SimEnv* env() { return &env_; }

 private:
  Result<std::vector<Row>> Scan(const ScanRequest& req, ScanStats* stats,
                                std::string* path_desc);
  /// Vectorized learner scan: ColumnBatches straight off the shard
  /// learners' column tables; declines only a forced row scan.
  Result<std::vector<ColumnBatch>> BatchScan(const ScanRequest& req,
                                             ScanStats* stats,
                                             std::string* path_desc);

  DatabaseOptions options_;
  Catalog* catalog_;
  sim::SimEnv env_;
  std::unique_ptr<sim::DistributedDb> db_;
  bool bootstrapped_ = false;
};

}  // namespace htap

#endif  // HTAP_CORE_ENGINES_H_
