// Architecture (c): disk row store + in-memory column store (Heatwave
// style). Transactions run against the MVCC layer (the buffer-cached OLTP
// working set) with write-through to a disk heap; analytical queries are
// pushed down to the IMCS when every referenced column is loaded, and fall
// back to scanning the disk heap (paying buffer-pool I/O) otherwise. The
// column advisor decides what is loaded under the memory budget.

#include <algorithm>

#include "core/engines.h"

namespace htap {

namespace {

std::unique_ptr<WalWriter> MakeWal(const DatabaseOptions& options,
                                   const std::string& name) {
  if (!options.wal_enabled) return nullptr;
  WalWriter::Options wo;
  const std::string dir = options.data_dir.empty() ? "/tmp" : options.data_dir;
  wo.path = dir + "/" + name + ".wal";
  wo.sync_on_commit = options.sync_on_commit;
  return std::make_unique<WalWriter>(wo);
}

std::vector<int> TouchedColumns(const ScanRequest& req) {
  std::vector<int> cols = req.pred->ReferencedColumns();
  for (int c : req.projection)
    if (std::find(cols.begin(), cols.end(), c) == cols.end())
      cols.push_back(c);
  if (cols.empty())
    for (size_t i = 0; i < req.table->schema.num_columns(); ++i)
      cols.push_back(static_cast<int>(i));
  return cols;
}

bool ExtractPkPoint(const Predicate& pred, int pk_index, Key* key) {
  for (const Predicate* c : pred.Conjuncts()) {
    if (c->kind() == Predicate::Kind::kCompare && c->op() == CmpOp::kEq &&
        c->column() == pk_index && c->literal().is_int64()) {
      *key = c->literal().AsInt64();
      return true;
    }
  }
  return false;
}

/// Remaps a base-schema predicate onto the IMCS's projected layout.
Predicate RemapPredicate(const Predicate& pred,
                         const std::vector<int>& base_to_imcs) {
  switch (pred.kind()) {
    case Predicate::Kind::kTrue:
      return Predicate::True();
    case Predicate::Kind::kCompare:
      return Predicate::Compare(
          base_to_imcs[static_cast<size_t>(pred.column())], pred.op(),
          pred.literal());
    case Predicate::Kind::kAnd:
    case Predicate::Kind::kOr:
    case Predicate::Kind::kNot: {
      std::vector<Predicate> children;
      for (const auto& c : pred.children())
        children.push_back(RemapPredicate(c, base_to_imcs));
      if (pred.kind() == Predicate::Kind::kAnd)
        return Predicate::And(std::move(children));
      if (pred.kind() == Predicate::Kind::kOr)
        return Predicate::Or(std::move(children));
      return Predicate::Not(std::move(children[0]));
    }
  }
  return Predicate::True();
}

/// Wraps a full-row delta so its entries appear in the IMCS's projected
/// layout during the delta+column union.
class ProjectingDeltaReader : public DeltaReader {
 public:
  ProjectingDeltaReader(const InMemoryDeltaStore* inner,
                        std::vector<int> loaded)
      : inner_(inner), loaded_(std::move(loaded)) {}

  void ScanVisible(CSN snapshot,
                   const std::function<void(const DeltaEntry&)>& visit)
      const override {
    inner_->ScanVisible(snapshot, [&](const DeltaEntry& e) {
      DeltaEntry proj;
      proj.op = e.op;
      proj.key = e.key;
      proj.csn = e.csn;
      if (e.op != ChangeOp::kDelete)
        for (int c : loaded_) proj.row.Append(e.row.Get(static_cast<size_t>(c)));
      visit(proj);
    });
  }
  size_t EntryCount() const override { return inner_->EntryCount(); }
  size_t MemoryBytes() const override { return inner_->MemoryBytes(); }

 private:
  const InMemoryDeltaStore* inner_;
  std::vector<int> loaded_;
};

}  // namespace

DiskHtapEngine::DiskHtapEngine(const DatabaseOptions& options,
                               Catalog* catalog)
    : options_(options),
      catalog_(catalog),
      wal_(MakeWal(options, "diskrow")),
      layer_(wal_.get(), options.commit_shards),
      ap_(options_) {
  layer_.txn_mgr()->RegisterSink(this);
  layer_.txn_mgr()->RegisterSink(&freshness_);
}

DiskHtapEngine::~DiskHtapEngine() = default;

Status DiskHtapEngine::CreateTable(const TableInfo& info) {
  HTAP_RETURN_NOT_OK(layer_.AddTable(info, wal_.get()));
  auto ts = std::make_unique<TableState>();
  ts->info = info;
  const std::string dir =
      options_.data_dir.empty() ? "/tmp" : options_.data_dir;
  ts->heap = std::make_unique<DiskRowStore>(dir + "/" + info.name + ".heap",
                                            info.schema,
                                            options_.buffer_pool_pages);
  HTAP_RETURN_NOT_OK(ts->heap->Open());
  ts->delta = std::make_unique<InMemoryDeltaStore>();
  // Start with every column loaded; RefreshColumnSelection applies the
  // advisor + budget once a workload has been observed.
  for (size_t c = 0; c < info.schema.num_columns(); ++c)
    ts->loaded.push_back(static_cast<int>(c));
  ts->imcs = std::make_shared<ColumnTable>(info.schema);
  if (options_.compression_advisor) ts->imcs->EnableCompressionAdvisor(true);
  MutexLock lk(&tables_mu_);
  tables_[info.id] = std::move(ts);
  return Status::OK();
}

std::unique_ptr<TxnContext> DiskHtapEngine::Begin() { return layer_.Begin(); }
Status DiskHtapEngine::Insert(TxnContext* t, const TableInfo& tbl,
                              const Row& r) {
  return layer_.Insert(t, tbl, r);
}
Status DiskHtapEngine::Update(TxnContext* t, const TableInfo& tbl,
                              const Row& r) {
  return layer_.Update(t, tbl, r);
}
Status DiskHtapEngine::Delete(TxnContext* t, const TableInfo& tbl, Key key) {
  return layer_.Delete(t, tbl, key);
}
Status DiskHtapEngine::Get(TxnContext* t, const TableInfo& tbl, Key key,
                           Row* out) {
  return layer_.Get(t, tbl, key, out);
}
Status DiskHtapEngine::Commit(TxnContext* t) { return layer_.Commit(t); }
Status DiskHtapEngine::Abort(TxnContext* t) { return layer_.Abort(t); }
Status DiskHtapEngine::Read(const TableInfo& tbl, Key key, Row* out) {
  return layer_.Read(tbl, key, out);
}

void DiskHtapEngine::OnCommit(const std::vector<ChangeEvent>& events) {
  MutexLock lk(&tables_mu_);
  for (const ChangeEvent& ev : events) {
    const auto it = tables_.find(ev.table_id);
    if (it == tables_.end()) continue;
    // Write-through to the durable heap (the "disk row store").
    if (ev.op == ChangeOp::kDelete)
      it->second->heap->Delete(ev.key);
    else
      it->second->heap->Put(ev.row);
  }
  for (auto& [tid, ts] : tables_) ts->delta->AppendBatch(events, tid);
}

Row DiskHtapEngine::ProjectToLoaded(const std::vector<int>& loaded,
                                    const Row& row) {
  Row out;
  for (int c : loaded) out.Append(row.Get(static_cast<size_t>(c)));
  return out;
}

Status DiskHtapEngine::SyncImcs(TableState* ts, CSN target,
                                std::shared_ptr<ColumnTable>* imcs_out,
                                std::vector<int>* loaded_out) {
  // merge_mu serializes drain+apply: two unserialized drains could apply
  // delta batches out of commit order, and a drain concurrent with
  // RefreshColumnSelection could lose its entries into a superseded
  // generation. It is taken *before* tables_mu_ (rank 280 < 300) so the
  // generation snapshot below is the one current for the whole merge.
  MutexLock merge_lk(&ts->merge_mu);
  std::shared_ptr<ColumnTable> imcs;
  std::vector<int> loaded;
  {
    MutexLock lk(&tables_mu_);
    imcs = ts->imcs;
    loaded = ts->loaded;
  }
  auto entries = ts->delta->DrainUpTo(target);
  std::vector<DeltaEntry> projected;
  projected.reserve(entries.size());
  for (DeltaEntry& e : entries) {
    DeltaEntry p;
    p.op = e.op;
    p.key = e.key;
    p.csn = e.csn;
    if (e.op != ChangeOp::kDelete) p.row = ProjectToLoaded(loaded, e.row);
    projected.push_back(std::move(p));
  }
  ApplyEntriesToColumnTable(imcs.get(), projected, target);
  if (imcs_out != nullptr) *imcs_out = std::move(imcs);
  if (loaded_out != nullptr) *loaded_out = std::move(loaded);
  return Status::OK();
}

TableStats DiskHtapEngine::RefreshedStats(TableState* ts) {
  const CSN now = layer_.txn_mgr()->LastCommittedCsn();
  MutexLock lk(&ts->stats_mu);
  if (ts->stats.row_count != 0 &&
      now < ts->stats_at_csn + options_.stats_refresh_interval)
    return ts->stats;
  const MvccRowStore* store = layer_.store(ts->info.id);
  std::vector<Row> sample;
  sample.reserve(2048);
  store->Scan(layer_.txn_mgr()->CurrentSnapshot(), [&](Key, const Row& r) {
    sample.push_back(r);
    return sample.size() < 2048;
  });
  ts->stats = TableStats::Compute(ts->info.schema, sample);
  ts->stats.row_count = store->ApproxRowCount();
  ts->stats_at_csn = now;
  // This architecture has no sync driver to maintain stats incrementally;
  // the sampling refresher doubles as the catalog publisher (DESIGN.md §10).
  catalog_->PublishStats(ts->info.name, ts->stats, now);
  return ts->stats;
}

Result<ColumnAdvisor::Selection> DiskHtapEngine::RefreshColumnSelection(
    const TableInfo& tbl) {
  TableState* ts;
  {
    MutexLock lk(&tables_mu_);
    const auto it = tables_.find(tbl.id);
    if (it == tables_.end()) return Status::NotFound("no such table");
    ts = it->second.get();
  }
  const TableStats table_stats = RefreshedStats(ts);
  const std::vector<size_t> col_bytes =
      EstimateColumnBytes(tbl.schema, table_stats);
  ColumnAdvisor::Selection sel =
      advisor_.Advise(tbl.name, col_bytes, options_.column_memory_budget_bytes);

  // The primary key column always rides along (delta-union identity).
  const int pk = tbl.schema.pk_index();
  if (std::find(sel.columns.begin(), sel.columns.end(), pk) ==
      sel.columns.end()) {
    sel.columns.insert(sel.columns.begin(), pk);
    std::sort(sel.columns.begin(), sel.columns.end());
  }

  // Rebuild the IMCS on the new projection from the durable heap, as a new
  // generation. merge_mu keeps SyncImcs out for the whole drain+rebuild, so
  // no merge can strand drained entries in the superseded generation; in-
  // flight scans keep their pinned shared_ptr alive until they finish.
  MutexLock merge_lk(&ts->merge_mu);
  auto imcs = std::make_shared<ColumnTable>(tbl.schema.Project(sel.columns));
  if (options_.compression_advisor) imcs->EnableCompressionAdvisor(true);
  ts->delta->DrainUpTo(kMaxCSN);  // heap already reflects these
  std::vector<Row> rows;
  HTAP_RETURN_NOT_OK(ts->heap->Scan([&](Key, const Row& r) {
    rows.push_back(ProjectToLoaded(sel.columns, r));
    return true;
  }));
  imcs->AppendBatch(rows, layer_.txn_mgr()->LastCommittedCsn());
  {
    MutexLock lk(&tables_mu_);
    ts->loaded = sel.columns;
    ts->imcs = std::move(imcs);
  }
  return sel;
}

std::vector<int> DiskHtapEngine::LoadedColumns(uint32_t table_id) const {
  MutexLock lk(&tables_mu_);
  const auto it = tables_.find(table_id);
  return it == tables_.end() ? std::vector<int>{} : it->second->loaded;
}

Result<DiskHtapEngine::ImcsAccess> DiskHtapEngine::ResolveAccess(
    const ScanRequest& req, TableState* ts) {
  ImcsAccess out;
  std::vector<int> loaded0;
  {
    MutexLock lk(&tables_mu_);
    loaded0 = ts->loaded;
  }
  const TableStats table_stats = RefreshedStats(ts);
  const std::vector<int> touched = TouchedColumns(req);

  // Pushdown is possible only if every referenced column is loaded — the
  // survey's "columns for a new query may have not been selected" caveat.
  const bool all_loaded = std::all_of(
      touched.begin(), touched.end(), [&](int c) {
        return std::find(loaded0.begin(), loaded0.end(), c) != loaded0.end();
      });
  const bool full_projection_ok =
      !req.projection.empty() ||
      loaded0.size() == req.table->schema.num_columns();
  const bool column_capable = all_loaded && full_projection_ok;

  out.pk_point =
      ExtractPkPoint(*req.pred, req.table->schema.pk_index(), &out.pk_key);

  switch (req.path) {
    case PathHint::kForceRow:
      out.path = AccessPath::kRowFullScan;
      break;
    case PathHint::kForceColumn:
      if (!column_capable)
        return Status::InvalidArgument("columns not loaded in IMCS");
      out.path = AccessPath::kColumnScan;
      break;
    case PathHint::kAuto: {
      AccessQuery q;
      q.stats = &table_stats;
      q.pred = req.pred;
      q.columns_needed = touched.size();
      q.total_columns = req.table->schema.num_columns();
      q.delta_entries = ts->delta->EntryCount();
      q.pk_point_lookup = out.pk_point;
      q.column_store_available = column_capable;
      out.path = ChooseAccessPath(CostModel{}, q).path;
      break;
    }
  }
  if (out.path != AccessPath::kColumnScan) return out;

  // Keep the IMCS current, then pin the synced generation. SyncImcs pins
  // the generation it merged into, so a concurrent RefreshColumnSelection
  // cannot free it under the scan that follows.
  std::shared_ptr<ColumnTable> imcs;
  std::vector<int> loaded;
  HTAP_RETURN_NOT_OK(
      SyncImcs(ts, layer_.txn_mgr()->LastCommittedCsn(), &imcs, &loaded));
  // Re-check against the generation actually pinned: a concurrent refresh
  // may have evicted a touched column since the capability check above.
  const bool still_capable =
      (!req.projection.empty() ||
       loaded.size() == req.table->schema.num_columns()) &&
      std::all_of(touched.begin(), touched.end(), [&](int c) {
        return std::find(loaded.begin(), loaded.end(), c) != loaded.end();
      });
  if (!still_capable) {
    if (req.path == PathHint::kForceColumn)
      return Status::InvalidArgument("columns not loaded in IMCS");
    return out;  // imcs_ready stays false: serve from the heap instead
  }
  out.imcs_ready = true;
  std::vector<int> base_to_imcs(req.table->schema.num_columns(), -1);
  for (size_t i = 0; i < loaded.size(); ++i)
    base_to_imcs[static_cast<size_t>(loaded[i])] = static_cast<int>(i);
  out.pred = RemapPredicate(*req.pred, base_to_imcs);
  for (int c : req.projection)
    out.proj.push_back(base_to_imcs[static_cast<size_t>(c)]);
  out.imcs = std::move(imcs);
  out.loaded = std::move(loaded);
  return out;
}

Result<std::vector<Row>> DiskHtapEngine::Scan(const ScanRequest& req,
                                              ScanStats* stats,
                                              std::string* path_desc) {
  TableState* ts;
  {
    MutexLock lk(&tables_mu_);
    const auto it = tables_.find(req.table->id);
    if (it == tables_.end()) return Status::NotFound("no such table");
    ts = it->second.get();
  }
  advisor_.RecordAccess(req.table->name, TouchedColumns(req));
  HTAP_ASSIGN_OR_RETURN(ImcsAccess acc, ResolveAccess(req, ts));

  if (acc.path == AccessPath::kRowIndexLookup && acc.pk_point) {
    if (path_desc != nullptr) *path_desc = "row-index-lookup";
    std::vector<Row> out;
    Row row;
    if (layer_.Read(*req.table, acc.pk_key, &row).ok() &&
        req.pred->Eval(row)) {
      if (req.projection.empty()) {
        out.push_back(std::move(row));
      } else {
        Row proj;
        for (int c : req.projection)
          proj.Append(row.Get(static_cast<size_t>(c)));
        out.push_back(std::move(proj));
      }
    }
    return out;
  }

  if (acc.path == AccessPath::kColumnScan && acc.imcs_ready) {
    if (path_desc != nullptr) *path_desc = "imcs-pushdown";
    ProjectingDeltaReader delta(ts->delta.get(), acc.loaded);
    return ScanHtap(*acc.imcs, req.require_fresh ? &delta : nullptr,
                    layer_.txn_mgr()->LastCommittedCsn(), acc.pred, acc.proj,
                    ap_.ctx(), stats);
  }

  // Row fallback: scan the disk heap through the buffer pool.
  if (path_desc != nullptr) *path_desc = "disk-heap-scan";
  std::vector<Row> out;
  HTAP_RETURN_NOT_OK(ts->heap->Scan([&](Key, const Row& row) {
    if (req.pred->Eval(row)) {
      if (req.projection.empty()) {
        out.push_back(row);
      } else {
        Row proj;
        for (int c : req.projection)
          proj.Append(row.Get(static_cast<size_t>(c)));
        out.push_back(std::move(proj));
      }
    }
    return true;
  }));
  return out;
}

Result<std::vector<ColumnBatch>> DiskHtapEngine::BatchScan(
    const ScanRequest& req, ScanStats* stats, std::string* path_desc) {
  TableState* ts;
  {
    MutexLock lk(&tables_mu_);
    const auto it = tables_.find(req.table->id);
    if (it == tables_.end()) return Status::NotFound("no such table");
    ts = it->second.get();
  }
  HTAP_ASSIGN_OR_RETURN(ImcsAccess acc, ResolveAccess(req, ts));
  if (acc.path != AccessPath::kColumnScan || !acc.imcs_ready)
    return Status::NotSupported("IMCS cannot serve this scan");
  // Record the access only once it is certain this path serves the query;
  // a decline falls back to Scan, which records unconditionally.
  advisor_.RecordAccess(req.table->name, TouchedColumns(req));
  if (path_desc != nullptr) *path_desc = "imcs-pushdown";
  ProjectingDeltaReader delta(ts->delta.get(), acc.loaded);
  return ScanHtapBatches(*acc.imcs, req.require_fresh ? &delta : nullptr,
                         layer_.txn_mgr()->LastCommittedCsn(), acc.pred,
                         acc.proj, ap_.ctx(), stats);
}

Result<QueryResult> DiskHtapEngine::Execute(const QueryPlan& plan,
                                            QueryExecInfo* info) {
  const ScanFn scan = [this](const ScanRequest& req, ScanStats* stats,
                             std::string* desc) {
    return Scan(req, stats, desc);
  };
  BatchScanFn batch_scan;
  if (ap_.vectorized)
    batch_scan = [this](const ScanRequest& req, ScanStats* stats,
                        std::string* desc) {
      return BatchScan(req, stats, desc);
    };
  return RunPlan(plan, *catalog_, scan, info,
                 ap_.ctx(layer_.txn_mgr()->LastCommittedCsn()), batch_scan);
}

Status DiskHtapEngine::ForceSync(const TableInfo& tbl) {
  TableState* ts;
  {
    MutexLock lk(&tables_mu_);
    const auto it = tables_.find(tbl.id);
    if (it == tables_.end()) return Status::NotFound("no such table");
    ts = it->second.get();
  }
  // SyncImcs takes merge_mu then tables_mu_; calling it with tables_mu_
  // held would invert the rank order.
  return SyncImcs(ts, layer_.txn_mgr()->LastCommittedCsn(), nullptr, nullptr);
}

FreshnessInfo DiskHtapEngine::Freshness(const TableInfo& tbl) {
  FreshnessInfo f;
  MutexLock lk(&tables_mu_);
  const auto it = tables_.find(tbl.id);
  if (it == tables_.end()) return f;
  f.committed_csn = layer_.txn_mgr()->LastCommittedCsn();
  f.visible_csn = it->second->imcs->merged_csn();
  f.csn_lag = freshness_.CsnLag(f.committed_csn, f.visible_csn);
  f.time_lag_micros = freshness_.TimeLagMicros(f.visible_csn);
  f.fresh_visible_csn = f.committed_csn;  // fresh scans union the delta
  f.fresh_time_lag_micros = 0;
  f.pending_delta_entries = it->second->delta->EntryCount();
  return f;
}

EngineStats DiskHtapEngine::Stats() {
  EngineStats s;
  s.commits = layer_.txn_mgr()->commits();
  s.aborts = layer_.txn_mgr()->aborts();
  s.conflicts = layer_.txn_mgr()->conflicts();
  s.row_store_bytes = layer_.TotalRowStoreBytes();
  MutexLock lk(&tables_mu_);
  for (const auto& [tid, ts] : tables_) {
    s.column_store_bytes += ts->imcs->MemoryBytes();
    s.column_encodings.Merge(ts->imcs->EncodingStats());
    s.delta_bytes += ts->delta->MemoryBytes();
    const BufferPoolStats bp = ts->heap->pool_stats();
    s.buffer_pool_hits += bp.hits;
    s.buffer_pool_misses += bp.misses;
  }
  return s;
}

}  // namespace htap
