#include "core/database.h"

namespace htap {

Database::Database(DatabaseOptions options) : options_(std::move(options)) {
  switch (options_.architecture) {
    case ArchitectureKind::kRowPlusInMemoryColumn:
      engine_ = std::make_unique<InMemoryHtapEngine>(options_, &catalog_);
      break;
    case ArchitectureKind::kDistributedRowPlusColumnReplica:
      engine_ = std::make_unique<DistributedHtapEngine>(options_, &catalog_);
      break;
    case ArchitectureKind::kDiskRowPlusDistributedColumn:
      engine_ = std::make_unique<DiskHtapEngine>(options_, &catalog_);
      break;
    case ArchitectureKind::kColumnPlusDeltaRow:
      engine_ = std::make_unique<DeltaMainHtapEngine>(options_, &catalog_);
      break;
  }
}

Result<std::unique_ptr<Database>> Database::Open(DatabaseOptions options) {
  auto db = std::unique_ptr<Database>(new Database(std::move(options)));
  if (db->engine_ == nullptr) return Status::Internal("engine init failed");
  return db;
}

Result<const TableInfo*> Database::Resolve(const std::string& table) const {
  const TableInfo* info = catalog_.Find(table);
  if (info == nullptr) return Status::NotFound("no table: " + table);
  return info;
}

Status Database::CreateTable(const std::string& name, Schema schema) {
  TableInfo info;
  HTAP_RETURN_NOT_OK(catalog_.AddTable(name, std::move(schema), &info));
  return engine_->CreateTable(info);
}

std::unique_ptr<DbTxn> Database::Begin() {
  return std::unique_ptr<DbTxn>(new DbTxn(this, engine_->Begin()));
}

Status Database::InsertRow(const std::string& table, const Row& row) {
  auto txn = Begin();
  HTAP_RETURN_NOT_OK(txn->Insert(table, row));
  return txn->Commit();
}

Status Database::UpdateRow(const std::string& table, const Row& row) {
  auto txn = Begin();
  HTAP_RETURN_NOT_OK(txn->Update(table, row));
  return txn->Commit();
}

Status Database::DeleteRow(const std::string& table, Key key) {
  auto txn = Begin();
  HTAP_RETURN_NOT_OK(txn->Delete(table, key));
  return txn->Commit();
}

Status Database::GetRow(const std::string& table, Key key, Row* out) {
  HTAP_ASSIGN_OR_RETURN(const TableInfo* info, Resolve(table));
  return engine_->Read(*info, key, out);
}

Result<QueryResult> Database::Query(const QueryPlan& plan,
                                    QueryExecInfo* info) {
  return engine_->Execute(plan, info);
}

Status Database::ForceSync(const std::string& table) {
  HTAP_ASSIGN_OR_RETURN(const TableInfo* info, Resolve(table));
  return engine_->ForceSync(*info);
}

Status Database::ForceSyncAll() {
  for (const std::string& name : catalog_.TableNames())
    HTAP_RETURN_NOT_OK(ForceSync(name));
  return Status::OK();
}

FreshnessInfo Database::Freshness(const std::string& table) {
  const TableInfo* info = catalog_.Find(table);
  return info == nullptr ? FreshnessInfo{} : engine_->Freshness(*info);
}

EngineStats Database::Stats() { return engine_->Stats(); }

// ---------------------------------------------------------------------------
// DbTxn
// ---------------------------------------------------------------------------

DbTxn::~DbTxn() {
  if (ctx_ != nullptr && !ctx_->finished) db_->engine_->Abort(ctx_.get());
}

Status DbTxn::Insert(const std::string& table, const Row& row) {
  HTAP_ASSIGN_OR_RETURN(const TableInfo* info, db_->Resolve(table));
  return db_->engine_->Insert(ctx_.get(), *info, row);
}

Status DbTxn::Update(const std::string& table, const Row& row) {
  HTAP_ASSIGN_OR_RETURN(const TableInfo* info, db_->Resolve(table));
  return db_->engine_->Update(ctx_.get(), *info, row);
}

Status DbTxn::Delete(const std::string& table, Key key) {
  HTAP_ASSIGN_OR_RETURN(const TableInfo* info, db_->Resolve(table));
  return db_->engine_->Delete(ctx_.get(), *info, key);
}

Status DbTxn::Get(const std::string& table, Key key, Row* out) {
  HTAP_ASSIGN_OR_RETURN(const TableInfo* info, db_->Resolve(table));
  return db_->engine_->Get(ctx_.get(), *info, key, out);
}

Status DbTxn::Commit() { return db_->engine_->Commit(ctx_.get()); }

Status DbTxn::Abort() { return db_->engine_->Abort(ctx_.get()); }

}  // namespace htap
