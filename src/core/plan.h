// Logical query plan: the engine-independent description of a SELECT that
// every architecture preset knows how to execute. Produced either directly
// (library API) or by the SQL layer.

#ifndef HTAP_CORE_PLAN_H_
#define HTAP_CORE_PLAN_H_

#include <string>
#include <vector>

#include "exec/executor.h"
#include "exec/expression.h"

namespace htap {

/// Access-path hint (kAuto lets the cost-based optimizer decide — the
/// hybrid row/column scan technique).
enum class PathHint : uint8_t { kAuto = 0, kForceRow = 1, kForceColumn = 2 };

/// One additional hash equi-join against `table`. `left_col` indexes the
/// combined layout of everything joined so far in plan order (base table
/// columns, then each prior join's columns); `right_col` indexes the joined
/// table's own layout. `where` is pushed down to the joined table's scan.
struct JoinClause {
  std::string table;
  Predicate where;
  int left_col = -1;
  int right_col = -1;
};

/// One table access with optional hash equi-joins, aggregation, and
/// sort/limit. Column indexes in `where` refer to the base table; after the
/// joins, combined rows are base columns followed by each join's columns in
/// plan order, and `group_by` / `aggs` / `order_by` / `projection` refer to
/// that combined layout. The runner may execute the joins in a different
/// order (greedy cardinality-based selection) and build on either side, but
/// the output is always byte-identical to executing them in plan order with
/// build-on-right (see DESIGN.md §9).
struct QueryPlan {
  std::string table;
  Predicate where;

  // Optional first join (the classic single-join form; kept as plain
  // fields so existing callers/binders stay source-compatible).
  bool has_join = false;
  std::string join_table;
  Predicate join_where;  // pushed down to the right side (its own layout)
  int left_col = -1;     // equi-join columns
  int right_col = -1;    // index within the right table's layout

  /// Further joins, applied after the `has_join` clause (if any). The
  /// effective join list is the legacy clause followed by these.
  std::vector<JoinClause> joins;

  // Optional aggregation (combined layout).
  std::vector<int> group_by;
  std::vector<AggSpec> aggs;

  // Output shaping.
  std::vector<int> projection;  // empty = all (ignored when aggs present)
  int order_by = -1;            // output-layout column; -1 = none
  bool order_desc = false;
  size_t limit = 0;  // 0 = no limit

  // HTAP execution knobs.
  PathHint path = PathHint::kAuto;
  /// false = the query tolerates stale data: engines may skip the delta
  /// union (pure column scan, the SingleStore technique).
  bool require_fresh = true;
};

/// What a query actually did — surfaced to benchmarks and EXPLAIN.
struct QueryExecInfo {
  std::string access_path;  // per AccessPathName or engine-specific
  ScanStats scan;

  /// True when the base access ran the vectorized batch pipeline
  /// (DESIGN.md §12) rather than row-at-a-time operators.
  bool vectorized = false;

  /// Aggregate over all executed joins (zero-initialized when the plan has
  /// none). Row/time/spill counters sum across steps; `partitions` is the
  /// maximum; `parallel` / `build_swapped` OR; `output_rows` is the final
  /// join's output. For single-join plans this equals the one step.
  JoinStats join;

  /// Per-join stats in execution order (which may differ from plan order —
  /// see QueryExecInfo::join_order).
  std::vector<JoinStats> join_steps;

  /// Plan-order clause index executed at each step; empty when the plan has
  /// fewer than two joins.
  std::vector<size_t> join_order;

  /// Join-planning provenance (DESIGN.md §10). True when the join order was
  /// chosen at plan time from published catalog statistics; false when the
  /// planner fell back to scanning the join tables and counting keys
  /// exactly (stats missing or staler than the bound).
  bool join_used_catalog_stats = false;
  /// Worst stats age across the referenced tables, in commits (stats path
  /// only).
  uint64_t join_stats_age_csns = 0;
  /// Estimated and actual output rows per executed join step (execution
  /// order, parallel to join_steps; filled when the plan has ≥2 joins).
  /// bench_table2_qo plots the q-error between these under skew.
  std::vector<double> join_est_rows;
  std::vector<size_t> join_actual_rows;

  double cost_estimate = 0;
  double est_selectivity = 1;
};

}  // namespace htap

#endif  // HTAP_CORE_PLAN_H_
