// Logical query plan: the engine-independent description of a SELECT that
// every architecture preset knows how to execute. Produced either directly
// (library API) or by the SQL layer.

#ifndef HTAP_CORE_PLAN_H_
#define HTAP_CORE_PLAN_H_

#include <string>
#include <vector>

#include "exec/executor.h"
#include "exec/expression.h"

namespace htap {

/// Access-path hint (kAuto lets the cost-based optimizer decide — the
/// hybrid row/column scan technique).
enum class PathHint : uint8_t { kAuto = 0, kForceRow = 1, kForceColumn = 2 };

/// One table access with an optional hash equi-join, aggregation, and
/// sort/limit. Column indexes in `where` refer to the base table; after a
/// join, combined rows are left columns followed by right columns, and
/// `group_by` / `aggs` / `order_by` / `projection` refer to that combined
/// layout.
struct QueryPlan {
  std::string table;
  Predicate where;

  // Optional join.
  bool has_join = false;
  std::string join_table;
  Predicate join_where;  // pushed down to the right side (its own layout)
  int left_col = -1;     // equi-join columns
  int right_col = -1;    // index within the right table's layout

  // Optional aggregation (combined layout).
  std::vector<int> group_by;
  std::vector<AggSpec> aggs;

  // Output shaping.
  std::vector<int> projection;  // empty = all (ignored when aggs present)
  int order_by = -1;            // output-layout column; -1 = none
  bool order_desc = false;
  size_t limit = 0;  // 0 = no limit

  // HTAP execution knobs.
  PathHint path = PathHint::kAuto;
  /// false = the query tolerates stale data: engines may skip the delta
  /// union (pure column scan, the SingleStore technique).
  bool require_fresh = true;
};

/// What a query actually did — surfaced to benchmarks and EXPLAIN.
struct QueryExecInfo {
  std::string access_path;  // per AccessPathName or engine-specific
  ScanStats scan;
  JoinStats join;           // zero-initialized when the plan has no join
  double cost_estimate = 0;
  double est_selectivity = 1;
};

}  // namespace htap

#endif  // HTAP_CORE_PLAN_H_
