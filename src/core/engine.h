// HtapEngine: the interface every architecture preset implements. The
// Database facade routes all table/transaction/query traffic through it.

#ifndef HTAP_CORE_ENGINE_H_
#define HTAP_CORE_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "columnar/encoding.h"
#include "common/clock.h"
#include "common/status.h"
#include "core/plan.h"
#include "sim/dist_db.h"
#include "txn/transaction.h"
#include "types/row.h"
#include "types/schema.h"

namespace htap {

class ThreadPool;

struct TableInfo {
  uint32_t id = 0;
  std::string name;
  Schema schema;
};

/// Per-transaction state. Local engines use the MVCC transaction; the
/// distributed engine buffers writes for 2PC at commit.
struct TxnContext {
  std::unique_ptr<Transaction> local;
  std::vector<sim::WriteOp> dist_writes;
  bool finished = false;
};

/// Freshness report for one table (the survey's central metric).
///
/// Two visibility frontiers matter: `visible_csn` is what a *merged-only*
/// (stale/column-only) scan reflects; `fresh_visible_csn` is what a
/// delta-unioning fresh scan reflects. For the single-process architectures
/// the latter equals the committed frontier (the in-memory delta is always
/// scannable); for the distributed architecture it is bounded by log
/// replication to the learner — the survey's "low freshness" for TiDB.
struct FreshnessInfo {
  CSN committed_csn = 0;  // newest commit in the system
  CSN visible_csn = 0;    // newest commit a merged-only scan reflects
  uint64_t csn_lag = 0;   // committed - visible
  Micros time_lag_micros = 0;
  CSN fresh_visible_csn = 0;  // newest commit a delta-union scan reflects
  Micros fresh_time_lag_micros = 0;
  size_t pending_delta_entries = 0;
};

/// Aggregate engine statistics (Stats() on the Database).
struct EngineStats {
  uint64_t commits = 0;
  uint64_t aborts = 0;
  uint64_t conflicts = 0;
  uint64_t merges = 0;
  uint64_t entries_merged = 0;
  size_t row_store_bytes = 0;
  size_t column_store_bytes = 0;
  size_t delta_bytes = 0;
  /// Column-store footprint by segment encoding (indexed by EncodingType),
  /// summed across the engine's tables. Shows what the compression advisor
  /// actually picked and where the column memory lives.
  EncodingBreakdown column_encodings;
  uint64_t buffer_pool_hits = 0;    // architecture (c)
  uint64_t buffer_pool_misses = 0;  // architecture (c)
  uint64_t sim_messages = 0;        // architecture (b)
};

class HtapEngine {
 public:
  virtual ~HtapEngine() = default;

  virtual Status CreateTable(const TableInfo& info) = 0;

  // ---- OLTP -----------------------------------------------------------
  virtual std::unique_ptr<TxnContext> Begin() = 0;
  virtual Status Insert(TxnContext* txn, const TableInfo& table,
                        const Row& row) = 0;
  virtual Status Update(TxnContext* txn, const TableInfo& table,
                        const Row& row) = 0;
  virtual Status Delete(TxnContext* txn, const TableInfo& table, Key key) = 0;
  /// Snapshot read within the transaction (reads its own writes where the
  /// architecture supports it).
  virtual Status Get(TxnContext* txn, const TableInfo& table, Key key,
                     Row* out) = 0;
  virtual Status Commit(TxnContext* txn) = 0;
  virtual Status Abort(TxnContext* txn) = 0;

  /// Latest-committed point read (no explicit transaction).
  virtual Status Read(const TableInfo& table, Key key, Row* out) = 0;

  // ---- OLAP -----------------------------------------------------------
  virtual Result<QueryResult> Execute(const QueryPlan& plan,
                                      QueryExecInfo* info) = 0;

  // ---- HTAP maintenance -------------------------------------------------
  virtual Status ForceSync(const TableInfo& table) = 0;
  virtual FreshnessInfo Freshness(const TableInfo& table) = 0;
  virtual EngineStats Stats() = 0;

  /// The pool executing parallel-scan morsels, or null when this engine
  /// runs analytics serially. The resource scheduler throttles analytical
  /// CPU through this pool's SetConcurrencyQuota.
  virtual ThreadPool* ApScanPool() { return nullptr; }
};

}  // namespace htap

#endif  // HTAP_CORE_ENGINE_H_
