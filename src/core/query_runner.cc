#include "core/query_runner.h"

#include <algorithm>

namespace htap {

namespace {

/// Combined (post-join) schema: left columns then right columns.
Schema CombinedSchema(const TableInfo& left, const TableInfo* right) {
  std::vector<ColumnDef> cols = left.schema.columns();
  if (right != nullptr)
    for (const auto& c : right->schema.columns()) cols.push_back(c);
  return Schema(std::move(cols), left.schema.pk_index());
}

Type AggOutputType(const AggSpec& agg, const Schema& input) {
  switch (agg.fn) {
    case AggSpec::Fn::kCount:
      return Type::kInt64;
    case AggSpec::Fn::kSum:
    case AggSpec::Fn::kAvg:
      return Type::kDouble;
    case AggSpec::Fn::kMin:
    case AggSpec::Fn::kMax:
      return agg.column >= 0
                 ? input.column(static_cast<size_t>(agg.column)).type
                 : Type::kInt64;
  }
  return Type::kDouble;
}

Schema OutputSchema(const QueryPlan& plan, const Schema& combined) {
  if (!plan.aggs.empty()) {
    std::vector<ColumnDef> cols;
    for (int g : plan.group_by)
      cols.push_back(combined.column(static_cast<size_t>(g)));
    for (const auto& agg : plan.aggs)
      cols.emplace_back(agg.name, AggOutputType(agg, combined));
    return Schema(std::move(cols), 0);
  }
  if (!plan.projection.empty()) return combined.Project(plan.projection);
  return combined;
}

}  // namespace

Result<Schema> PlanOutputSchema(const QueryPlan& plan,
                                const Catalog& catalog) {
  const TableInfo* left = catalog.Find(plan.table);
  if (left == nullptr) return Status::NotFound("no table: " + plan.table);
  const TableInfo* right = nullptr;
  if (plan.has_join) {
    right = catalog.Find(plan.join_table);
    if (right == nullptr)
      return Status::NotFound("no table: " + plan.join_table);
  }
  return OutputSchema(plan, CombinedSchema(*left, right));
}

Result<QueryResult> RunPlan(const QueryPlan& plan, const Catalog& catalog,
                            const ScanFn& scan, QueryExecInfo* info,
                            const ExecContext& exec) {
  const TableInfo* left = catalog.Find(plan.table);
  if (left == nullptr) return Status::NotFound("no table: " + plan.table);
  const TableInfo* right = nullptr;
  if (plan.has_join) {
    right = catalog.Find(plan.join_table);
    if (right == nullptr)
      return Status::NotFound("no table: " + plan.join_table);
  }

  QueryExecInfo local_info;
  QueryExecInfo* xi = info != nullptr ? info : &local_info;

  // Projection pushdown. Simple scans push the user's projection; single-
  // table aggregates push exactly the columns the aggregation consumes
  // (and remap the aggregate/group indexes onto the narrowed layout) — the
  // core benefit of columnar access. Joins work on full rows.
  const bool simple = !plan.has_join && plan.aggs.empty();
  const bool narrowed_agg = !plan.has_join && !plan.aggs.empty();

  std::vector<int> agg_scan_cols;       // pushed-down scan projection
  std::vector<int> remapped_groups = plan.group_by;
  std::vector<AggSpec> remapped_aggs = plan.aggs;
  if (narrowed_agg) {
    auto add_col = [&](int c) {
      if (c < 0) return;
      if (std::find(agg_scan_cols.begin(), agg_scan_cols.end(), c) ==
          agg_scan_cols.end())
        agg_scan_cols.push_back(c);
    };
    for (int c : plan.group_by) add_col(c);
    for (const AggSpec& a : plan.aggs) add_col(a.column);
    std::sort(agg_scan_cols.begin(), agg_scan_cols.end());
    auto pos_of = [&](int c) {
      return static_cast<int>(std::find(agg_scan_cols.begin(),
                                        agg_scan_cols.end(), c) -
                              agg_scan_cols.begin());
    };
    for (int& g : remapped_groups) g = pos_of(g);
    for (AggSpec& a : remapped_aggs)
      if (a.column >= 0) a.column = pos_of(a.column);
  }

  ScanRequest req;
  req.table = left;
  req.pred = &plan.where;
  if (simple)
    req.projection = plan.projection;
  else if (narrowed_agg)
    req.projection = agg_scan_cols;
  req.path = plan.path;
  req.require_fresh = plan.require_fresh;
  HTAP_ASSIGN_OR_RETURN(std::vector<Row> rows,
                        scan(req, &xi->scan, &xi->access_path));

  if (plan.has_join) {
    ScanRequest rreq;
    rreq.table = right;
    rreq.pred = &plan.join_where;
    rreq.path = plan.path;
    rreq.require_fresh = plan.require_fresh;
    HTAP_ASSIGN_OR_RETURN(std::vector<Row> rrows,
                          scan(rreq, nullptr, nullptr));
    // The join fans build/probe morsels onto the same AP pool as scans, so
    // the scheduler's OLAP concurrency quota bounds its in-flight morsels
    // exactly as it bounds scan morsels.
    rows = HashJoin(rows, rrows, plan.left_col, plan.right_col, exec,
                    &xi->join);
  }

  if (!plan.aggs.empty()) {
    rows = narrowed_agg
               ? HashAggregate(rows, remapped_groups, remapped_aggs, exec)
               : HashAggregate(rows, plan.group_by, plan.aggs, exec);
  } else if (!simple && !plan.projection.empty()) {
    rows = Project(rows, plan.projection);
  }

  if (plan.order_by >= 0)
    SortLimit(&rows, plan.order_by, plan.order_desc, plan.limit);
  else if (plan.limit != 0 && rows.size() > plan.limit)
    rows.resize(plan.limit);

  QueryResult result;
  result.schema = OutputSchema(plan, CombinedSchema(*left, right));
  result.rows = std::move(rows);
  result.stats = xi->scan;
  return result;
}

}  // namespace htap
