#include "core/query_runner.h"

#include <algorithm>
#include <utility>

#include "opt/join_planner.h"

namespace htap {

namespace {

/// One join clause resolved against the catalog.
struct BoundJoin {
  const TableInfo* table = nullptr;
  const Predicate* where = nullptr;
  int left_col = -1;   // plan-order combined layout
  int right_col = -1;  // the joined table's own layout
};

/// The effective join list: the legacy single-join fields (if set) followed
/// by plan.joins.
Result<std::vector<BoundJoin>> BindJoins(const QueryPlan& plan,
                                         const Catalog& catalog) {
  std::vector<BoundJoin> out;
  if (plan.has_join) {
    const TableInfo* t = catalog.Find(plan.join_table);
    if (t == nullptr) return Status::NotFound("no table: " + plan.join_table);
    out.push_back({t, &plan.join_where, plan.left_col, plan.right_col});
  }
  for (const JoinClause& jc : plan.joins) {
    const TableInfo* t = catalog.Find(jc.table);
    if (t == nullptr) return Status::NotFound("no table: " + jc.table);
    out.push_back({t, &jc.where, jc.left_col, jc.right_col});
  }
  return out;
}

/// Combined (post-join) schema: base columns, then each join's columns in
/// plan order.
Schema CombinedSchema(const TableInfo& base,
                      const std::vector<BoundJoin>& joins) {
  std::vector<ColumnDef> cols = base.schema.columns();
  for (const BoundJoin& j : joins)
    for (const auto& c : j.table->schema.columns()) cols.push_back(c);
  return Schema(std::move(cols), base.schema.pk_index());
}

Type AggOutputType(const AggSpec& agg, const Schema& input) {
  switch (agg.fn) {
    case AggSpec::Fn::kCount:
      return Type::kInt64;
    case AggSpec::Fn::kSum:
    case AggSpec::Fn::kAvg:
      return Type::kDouble;
    case AggSpec::Fn::kMin:
    case AggSpec::Fn::kMax:
      return agg.column >= 0
                 ? input.column(static_cast<size_t>(agg.column)).type
                 : Type::kInt64;
  }
  return Type::kDouble;
}

Schema OutputSchema(const QueryPlan& plan, const Schema& combined) {
  if (!plan.aggs.empty()) {
    std::vector<ColumnDef> cols;
    for (int g : plan.group_by)
      cols.push_back(combined.column(static_cast<size_t>(g)));
    for (const auto& agg : plan.aggs)
      cols.emplace_back(agg.name, AggOutputType(agg, combined));
    return Schema(std::move(cols), 0);
  }
  if (!plan.projection.empty()) return combined.Project(plan.projection);
  return combined;
}

/// Aggregates one executed join step into the plan-level JoinStats.
void FoldJoinStats(const JoinStats& step, JoinStats* total) {
  total->build_rows += step.build_rows;
  total->probe_rows += step.probe_rows;
  total->output_rows = step.output_rows;  // the last step's output
  total->partitions = std::max(total->partitions, step.partitions);
  total->parallel = total->parallel || step.parallel;
  total->build_swapped = total->build_swapped || step.build_swapped;
  total->partitions_spilled += step.partitions_spilled;
  total->spill_rows_written += step.spill_rows_written;
  total->spill_bytes_written += step.spill_bytes_written;
  total->spill_bytes_read += step.spill_bytes_read;
  total->spill_pages_written += step.spill_pages_written;
  total->spill_pages_read += step.spill_pages_read;
  total->join_batches += step.join_batches;
  total->rows_late_materialized += step.rows_late_materialized;
  total->spill_max_recursion =
      std::max(total->spill_max_recursion, step.spill_max_recursion);
  total->seconds += step.seconds;
}

/// Plan-order combined layout plus join-ordering dependencies, from the
/// schemas alone — no data access. A clause whose left_col lands inside an
/// earlier clause's column span must run after that clause.
struct JoinLayout {
  std::vector<size_t> width;              // schema width per clause
  std::vector<size_t> offset;             // combined-layout offset per clause
  std::vector<std::vector<size_t>> deps;  // clauses that must run earlier
  size_t total_cols = 0;
};

Status ComputeJoinLayout(const std::vector<BoundJoin>& joins,
                         size_t base_width, JoinLayout* lo) {
  const size_t njoins = joins.size();
  lo->width.resize(njoins);
  lo->offset.resize(njoins);
  lo->deps.assign(njoins, {});
  lo->total_cols = base_width;
  for (size_t j = 0; j < njoins; ++j) {
    lo->width[j] = joins[j].table->schema.columns().size();
    lo->offset[j] = lo->total_cols;
    lo->total_cols += lo->width[j];
  }
  for (size_t j = 0; j < njoins; ++j) {
    const int lc = joins[j].left_col;
    const int rc = joins[j].right_col;
    if (lc < 0 || static_cast<size_t>(lc) >= lo->offset[j] || rc < 0 ||
        static_cast<size_t>(rc) >= lo->width[j])
      return Status::InvalidArgument("join " + std::to_string(j) +
                                     ": key columns out of range");
    for (size_t k = 0; k < j; ++k)
      if (static_cast<size_t>(lc) >= lo->offset[k] &&
          static_cast<size_t>(lc) < lo->offset[k] + lo->width[k])
        lo->deps[j].push_back(k);
  }
  return Status::OK();
}

/// One hash join with build-side selection (DESIGN.md §9). `build_left` is
/// the planner's decision — from catalog-statistics estimates when the plan
/// was ordered at plan time, from exact input sizes otherwise. When
/// building on the left, the swapped join's pairs — (right, left) index
/// order — are re-sorted to (left, right) and materialized build-side-
/// first, so the output rows and their order are byte-identical to the
/// unswapped join in every regime.
std::vector<Row> JoinStep(const std::vector<Row>& cur,
                          const std::vector<Row>& right, int left_col,
                          int right_col, bool build_left,
                          const ExecContext& exec, JoinStats* step) {
  if (!build_left) {
    const JoinPairs pairs =
        HashJoinPairs(cur, right, left_col, right_col, exec, step);
    return MaterializeJoinPairs(cur, right, pairs,
                                /*build_side_first=*/false, exec);
  }
  JoinPairs pairs = HashJoinPairs(right, cur, right_col, left_col, exec, step);
  step->build_swapped = true;
  std::sort(pairs.begin(), pairs.end(),
            [](const std::pair<uint32_t, uint32_t>& a,
               const std::pair<uint32_t, uint32_t>& b) {
              return a.second != b.second ? a.second < b.second
                                          : a.first < b.first;
            });
  return MaterializeJoinPairs(right, cur, pairs, /*build_side_first=*/true,
                              exec);
}

/// Rounds a fractional cardinality estimate to a row count.
size_t RoundRows(double est) {
  return est <= 0 ? 0 : static_cast<size_t>(est + 0.5);
}

/// Plan-time cardinality estimates from published catalog statistics
/// (DESIGN.md §10). Succeeds only when the base table and every join table
/// have published stats no staler than exec.stats_staleness_csns commits
/// behind exec.committed_csn (0 = unknown frontier, trusted as fresh). On
/// success fills the filtered base-table estimate, one JoinRelEstimate per
/// clause, and the worst stats age observed.
bool CatalogJoinEstimates(const QueryPlan& plan, const Catalog& catalog,
                          const TableInfo& base,
                          const std::vector<BoundJoin>& joins,
                          const ExecContext& exec, size_t* base_rows,
                          std::vector<JoinRelEstimate>* rels,
                          uint64_t* max_age) {
  uint64_t worst = 0;
  const auto fetch = [&](const std::string& name, PublishedTableStats* p) {
    if (!catalog.GetStats(name, p)) return false;
    const uint64_t age = exec.committed_csn > p->as_of_csn
                             ? exec.committed_csn - p->as_of_csn
                             : 0;
    if (age > exec.stats_staleness_csns) return false;
    worst = std::max(worst, age);
    return true;
  };
  PublishedTableStats bp;
  if (!fetch(base.name, &bp)) return false;
  *base_rows = RoundRows(static_cast<double>(bp.stats.row_count) *
                         EstimateSelectivity(plan.where, bp.stats));
  for (size_t j = 0; j < joins.size(); ++j) {
    PublishedTableStats jp;
    if (!fetch(joins[j].table->name, &jp)) return false;
    const double rows = static_cast<double>(jp.stats.row_count) *
                        EstimateSelectivity(*joins[j].where, jp.stats);
    const size_t rc = static_cast<size_t>(joins[j].right_col);
    double ndv = rc < jp.stats.columns.size() ? jp.stats.columns[rc].ndv : 1.0;
    // A predicate that filters rows can only shrink the key domain.
    ndv = std::max(1.0, std::min(ndv, std::max(rows, 1.0)));
    (*rels)[j].rows = RoundRows(rows);
    (*rels)[j].key_ndv = ndv;
  }
  *max_age = worst;
  return true;
}

/// Executes the plan's joins over `*rows_io` (the scanned base table).
///
/// Join ordering is decided BEFORE any join table is read. When every
/// referenced table has fresh published statistics in the catalog, the
/// greedy order is chosen at plan time purely from metadata and the join
/// tables are then scanned lazily in execution order; otherwise the planner
/// falls back to the pre-stats behavior — scan every join table up front
/// and count distinct join keys exactly.
///
/// Join-order selection may execute clauses out of plan order; when it
/// does, every input grows a hidden int64 index column, and after the last
/// join the rows are sorted lexicographically by the hidden columns in PLAN
/// order — the tuple (base index, match index per clause) is unique and is
/// exactly the plan-order nested-loop order — then projected back to the
/// plan's combined layout. When the chosen order is plan order (always the
/// case for 0–1 joins), none of that machinery is engaged.
Status ExecuteJoins(const std::vector<BoundJoin>& joins, const TableInfo& base,
                    const Catalog& catalog, const ScanFn& scan,
                    const QueryPlan& plan, const ExecContext& exec,
                    QueryExecInfo* xi, std::vector<Row>* rows_io) {
  const size_t njoins = joins.size();
  const size_t base_width = base.schema.columns().size();

  JoinLayout layout;
  HTAP_RETURN_NOT_OK(ComputeJoinLayout(joins, base_width, &layout));
  const std::vector<size_t>& width = layout.width;
  const std::vector<size_t>& offset = layout.offset;
  const std::vector<std::vector<size_t>>& deps = layout.deps;
  const size_t total_cols = layout.total_cols;

  std::vector<std::vector<Row>> jrows(njoins);
  std::vector<uint8_t> scanned(njoins, 0);
  const auto scan_join = [&](size_t j) -> Status {
    if (scanned[j]) return Status::OK();
    ScanRequest rreq;
    rreq.table = joins[j].table;
    rreq.pred = joins[j].where;
    rreq.path = plan.path;
    rreq.require_fresh = plan.require_fresh;
    HTAP_ASSIGN_OR_RETURN(jrows[j], scan(rreq, nullptr, nullptr));
    scanned[j] = 1;
    return Status::OK();
  };

  // Greedy join-order selection (trivial for 0–1 joins).
  std::vector<size_t> order(njoins);
  for (size_t j = 0; j < njoins; ++j) order[j] = j;
  std::vector<JoinRelEstimate> rels(njoins);
  std::vector<double> est_steps;  // estimated output rows per executed step
  bool stats_planned = false;
  size_t base_est = 0;
  if (njoins > 1) {
    uint64_t age = 0;
    stats_planned = CatalogJoinEstimates(plan, catalog, base, joins, exec,
                                         &base_est, &rels, &age);
    if (stats_planned) {
      order = ChooseJoinOrder(base_est, rels, deps, &est_steps);
      xi->join_used_catalog_stats = true;
      xi->join_stats_age_csns = age;
    } else {
      // Sampling fallback: read every join table and count keys exactly.
      for (size_t j = 0; j < njoins; ++j) HTAP_RETURN_NOT_OK(scan_join(j));
      for (size_t j = 0; j < njoins; ++j) {
        rels[j].rows = jrows[j].size();
        rels[j].key_ndv = static_cast<double>(
            CountDistinctKeys(jrows[j], joins[j].right_col));
      }
      order = ChooseJoinOrder(rows_io->size(), rels, deps, &est_steps);
    }
    xi->join_order = order;
    xi->join_est_rows = est_steps;
  }
  bool reorder = false;
  for (size_t s = 0; s < njoins; ++s) reorder = reorder || order[s] != s;

  // Tag the base input with a hidden index column when the order changed
  // (join inputs are tagged as they are scanned, below).
  std::vector<Row> cur = std::move(*rows_io);
  if (reorder)
    for (size_t i = 0; i < cur.size(); ++i)
      cur[i].Append(Value(static_cast<int64_t>(i)));

  // phys_of_logical maps plan-order combined columns to their position in
  // the physical (execution-order, hidden-tagged) layout.
  std::vector<int> phys_of_logical(total_cols, -1);
  for (size_t c = 0; c < base_width; ++c)
    phys_of_logical[c] = static_cast<int>(c);
  const size_t base_hidden = base_width;        // valid when reorder
  std::vector<size_t> join_hidden(njoins, 0);   // valid when reorder
  size_t cur_width = base_width + (reorder ? 1 : 0);

  for (size_t s = 0; s < njoins; ++s) {
    const size_t j = order[s];
    HTAP_RETURN_NOT_OK(scan_join(j));  // no-op on the fallback path
    if (reorder)
      for (size_t i = 0; i < jrows[j].size(); ++i)
        jrows[j][i].Append(Value(static_cast<int64_t>(i)));
    const int lc_phys = phys_of_logical[static_cast<size_t>(joins[j].left_col)];
    if (lc_phys < 0)
      return Status::Internal("join order violated a key dependency");
    // Build-side selection: plan-time estimates when stats chose the order,
    // exact input sizes otherwise. Either way the output is restored to the
    // unswapped layout/order, so a misestimate can only cost time.
    const bool build_left =
        stats_planned
            ? ChooseBuildSideLeft(
                  s == 0 ? base_est : RoundRows(est_steps[s - 1]),
                  rels[j].rows)
            : ChooseBuildSideLeft(cur.size(), jrows[j].size());
    JoinStats step;
    cur = JoinStep(cur, jrows[j], lc_phys, joins[j].right_col, build_left,
                   exec, &step);
    std::vector<Row>().swap(jrows[j]);  // scanned side now folded into cur
    for (size_t c = 0; c < width[j]; ++c)
      phys_of_logical[offset[j] + c] = static_cast<int>(cur_width + c);
    if (reorder) join_hidden[j] = cur_width + width[j];
    cur_width += width[j] + (reorder ? 1 : 0);
    FoldJoinStats(step, &xi->join);
    xi->join_steps.push_back(step);
    if (njoins > 1) xi->join_actual_rows.push_back(cur.size());
  }

  if (reorder) {
    // Restore plan-order nested-loop order, then the plan-order layout.
    std::vector<size_t> sort_cols;
    sort_cols.push_back(base_hidden);
    for (size_t j = 0; j < njoins; ++j) sort_cols.push_back(join_hidden[j]);
    std::sort(cur.begin(), cur.end(), [&](const Row& a, const Row& b) {
      for (size_t c : sort_cols) {
        const int64_t av = a.Get(c).AsInt64();
        const int64_t bv = b.Get(c).AsInt64();
        if (av != bv) return av < bv;
      }
      return false;
    });
    cur = Project(cur, phys_of_logical);
  }

  *rows_io = std::move(cur);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Batch-native join pipeline with late materialization (DESIGN.md §13)
// ---------------------------------------------------------------------------

/// One join input's batch image plus derived per-row metadata. The dense
/// active index space (active positions in batch order) is the pipeline's
/// row identity — it equals the input's row index in the row pipeline, so
/// lineage tuples double as the row path's hidden-index columns.
struct BatchInput {
  std::vector<ColumnBatch> batches;
  bool batched_scan = false;  // served by the engine's batch scan
  /// dense active index -> (batch, position): the late-materialization
  /// gather map.
  std::vector<std::pair<uint32_t, uint32_t>> dense;
  /// Per-row payload footprint (grace-budget weights); filled only when a
  /// spill budget is set.
  std::vector<size_t> row_bytes;
  /// Extracted key columns, cached per column (NDV sampling and the join
  /// itself share one extraction).
  std::vector<std::pair<int, JoinKeyColumn>> key_cache;

  size_t rows() const { return dense.size(); }
};

void FinishBatchInput(BatchInput* in, bool want_weights) {
  in->dense.reserve(TotalActiveRows(in->batches));
  for (size_t b = 0; b < in->batches.size(); ++b)
    in->batches[b].ForEachActive([&](size_t i) {
      in->dense.emplace_back(static_cast<uint32_t>(b),
                             static_cast<uint32_t>(i));
    });
  if (want_weights) in->row_bytes = EstimateBatchRowBytes(in->batches);
}

const JoinKeyColumn& InputKeys(BatchInput* in, int col) {
  for (const auto& kv : in->key_cache)
    if (kv.first == col) return kv.second;
  in->key_cache.emplace_back(col, ExtractJoinKeys(in->batches, col));
  return in->key_cache.back().second;
}

/// Gathers `src` at positions `idx` into a new key column (the probe side's
/// keys viewed through the intermediate's lineage).
JoinKeyColumn GatherKeys(const JoinKeyColumn& src,
                         const std::vector<uint32_t>& idx) {
  JoinKeyColumn out;
  out.type = src.type;
  out.mixed = src.mixed;
  const size_t n = idx.size();
  out.valid.reserve(n);
  out.hashes.reserve(n);
  for (uint32_t i : idx) {
    out.valid.push_back(src.valid[i]);
    out.hashes.push_back(src.hashes[i]);
  }
  if (src.mixed) {
    out.boxed.reserve(n);
    for (uint32_t i : idx) out.boxed.push_back(src.boxed[i]);
    return out;
  }
  switch (src.type) {
    case Type::kInt64:
      out.ints.reserve(n);
      for (uint32_t i : idx) out.ints.push_back(src.ints[i]);
      break;
    case Type::kDouble:
      out.doubles.reserve(n);
      for (uint32_t i : idx) out.doubles.push_back(src.doubles[i]);
      break;
    case Type::kString:
      out.strs.reserve(n);
      for (uint32_t i : idx) out.strs.push_back(src.strs[i]);
      break;
  }
  return out;
}

/// Late materialization of one output column: appends rows [lo, hi) of the
/// final lineage, gathered from the input's batches, onto `dst`. The type
/// switch is hoisted out of the row loop — this is the only point where
/// payload values are touched.
void GatherColumn(const BatchInput& in, size_t col,
                  const std::vector<uint32_t>& lineage, size_t lo, size_t hi,
                  ColumnVector* dst) {
  for (size_t r = lo; r < hi; ++r) {
    const auto [b, p] = in.dense[lineage[r]];
    const ColumnVector& src = in.batches[b].columns[col];
    if (src.IsNull(p)) {
      dst->AppendNull();
      continue;
    }
    switch (dst->type()) {
      case Type::kInt64: dst->AppendInt64(src.GetInt64(p)); break;
      case Type::kDouble: dst->AppendDouble(src.GetDouble(p)); break;
      case Type::kString: dst->AppendString(src.GetString(p)); break;
    }
  }
}

/// Outcome of the batch join pipeline attempt.
struct BatchJoinOutcome {
  /// False when the planner's materialization cost model chose the row
  /// pipeline's early regime: the base table has still been scanned (its
  /// scan stats are recorded), and `rows` holds its row image for the
  /// caller to run ExecuteJoins over.
  bool executed = false;
  bool agg_done = false;    // `rows` is already the aggregated output
  bool projected = false;   // `rows` already carries plan.projection
  bool base_batched = false;  // base scan was served as batches
  std::vector<Row> rows;
};

/// Executes the plan's joins batch-at-a-time (DESIGN.md §13). Join keys are
/// extracted straight from the typed scan batches; between join steps only
/// lineage flows — one dense input index per joined input per intermediate
/// row — and payload columns are gathered exactly once, after the last
/// join and the reorder fixup, restricted to the columns the plan consumes
/// (aggregate inputs, the projection, or the full combined layout). Inputs
/// whose engine declines the batch scan are bridged in with RowsToBatches,
/// so a single row-only input no longer forces the whole plan back to
/// row-at-a-time execution. Ordering, build-side selection, swap fixups,
/// and the reorder sort mirror ExecuteJoins decision-for-decision, so the
/// output is byte-identical to the row pipeline in every regime.
Result<BatchJoinOutcome> ExecuteJoinsBatches(
    const std::vector<BoundJoin>& joins, const TableInfo& base,
    const Catalog& catalog, const ScanFn& scan, const BatchScanFn& batch_scan,
    const QueryPlan& plan, const ExecContext& exec, QueryExecInfo* xi) {
  BatchJoinOutcome out;
  const size_t njoins = joins.size();
  const size_t base_width = base.schema.columns().size();
  JoinLayout layout;
  HTAP_RETURN_NOT_OK(ComputeJoinLayout(joins, base_width, &layout));

  const bool want_weights = exec.join_spill_budget_bytes > 0;
  const size_t ninputs = njoins + 1;  // input 0 = base, input j+1 = join j
  std::vector<BatchInput> inputs(ninputs);
  std::vector<uint8_t> ready(ninputs, 0);
  const auto scan_input = [&](size_t t) -> Status {
    if (ready[t]) return Status::OK();
    ScanRequest req;
    req.table = t == 0 ? &base : joins[t - 1].table;
    req.pred = t == 0 ? &plan.where : joins[t - 1].where;
    req.path = plan.path;
    req.require_fresh = plan.require_fresh;
    ScanStats* ss = t == 0 ? &xi->scan : nullptr;
    std::string* ap = t == 0 ? &xi->access_path : nullptr;
    Result<std::vector<ColumnBatch>> b = batch_scan(req, ss, ap);
    if (b.ok()) {
      inputs[t].batches = std::move(b.value());
      inputs[t].batched_scan = true;
    } else if (b.status().IsNotSupported()) {
      HTAP_ASSIGN_OR_RETURN(const std::vector<Row> rows, scan(req, ss, ap));
      inputs[t].batches =
          RowsToBatches(rows, req.table->schema, {}, exec.batch_rows);
    } else {
      return b.status();
    }
    FinishBatchInput(&inputs[t], want_weights);
    ready[t] = 1;
    return Status::OK();
  };
  HTAP_RETURN_NOT_OK(scan_input(0));
  out.base_batched = inputs[0].batched_scan;

  // Join ordering: the same decision procedure as ExecuteJoins (catalog
  // estimates when fresh, exact sampling otherwise), with NDV counted off
  // the extracted key columns instead of materialized rows.
  std::vector<size_t> order(njoins);
  for (size_t j = 0; j < njoins; ++j) order[j] = j;
  std::vector<JoinRelEstimate> rels(njoins);
  std::vector<double> est_steps;
  bool stats_planned = false;
  size_t base_est = 0;
  uint64_t stats_age = 0;
  if (njoins > 1) {
    stats_planned = CatalogJoinEstimates(plan, catalog, base, joins, exec,
                                         &base_est, &rels, &stats_age);
    if (stats_planned) {
      order = ChooseJoinOrder(base_est, rels, layout.deps, &est_steps);
    } else {
      for (size_t j = 0; j < njoins; ++j) HTAP_RETURN_NOT_OK(scan_input(j + 1));
      for (size_t j = 0; j < njoins; ++j) {
        rels[j].rows = inputs[j + 1].rows();
        rels[j].key_ndv = static_cast<double>(CountDistinctKeys(
            InputKeys(&inputs[j + 1], joins[j].right_col)));
      }
      order = ChooseJoinOrder(inputs[0].rows(), rels, layout.deps, &est_steps);
    }
  }

  // Materialization-regime gate: when usable step estimates exist, the
  // planner may prefer early materialization — which IS the row pipeline —
  // so the batch attempt backs out before any join runs. 0–1 joins carry no
  // estimates and always run late.
  std::vector<size_t> step_widths;
  size_t cum_width = base_width;
  for (size_t s = 0; s < njoins; ++s) {
    cum_width += layout.width[order[s]];
    step_widths.push_back(cum_width);
  }
  std::vector<int> out_cols;
  std::vector<int> groups = plan.group_by;
  std::vector<AggSpec> aggs = plan.aggs;
  if (!plan.aggs.empty()) {
    const auto add_col = [&](int c) {
      if (c < 0) return;
      if (std::find(out_cols.begin(), out_cols.end(), c) == out_cols.end())
        out_cols.push_back(c);
    };
    for (int g : plan.group_by) add_col(g);
    for (const AggSpec& a : plan.aggs) add_col(a.column);
    std::sort(out_cols.begin(), out_cols.end());
    const auto pos_of = [&](int c) {
      return static_cast<int>(
          std::find(out_cols.begin(), out_cols.end(), c) - out_cols.begin());
    };
    for (int& g : groups) g = pos_of(g);
    for (AggSpec& a : aggs)
      if (a.column >= 0) a.column = pos_of(a.column);
    // COUNT(*) with no groups consumes no payload; gather one column so the
    // output batches still carry the row count.
    if (out_cols.empty()) out_cols.push_back(0);
  } else if (!plan.projection.empty()) {
    out_cols = plan.projection;
  } else {
    out_cols.resize(layout.total_cols);
    for (size_t c = 0; c < layout.total_cols; ++c)
      out_cols[c] = static_cast<int>(c);
  }
  if (!ChooseLateMaterialization(est_steps, step_widths, out_cols.size())) {
    out.rows = BatchesToRows(inputs[0].batches);
    return out;  // executed == false: run the row pipeline
  }

  if (njoins > 1) {
    if (stats_planned) {
      xi->join_used_catalog_stats = true;
      xi->join_stats_age_csns = stats_age;
    }
    xi->join_order = order;
    xi->join_est_rows = est_steps;
  }
  bool reorder = false;
  for (size_t s = 0; s < njoins; ++s) reorder = reorder || order[s] != s;

  // Lineage: lineage[t][r] is intermediate row r's dense index into input
  // t (meaningful once `joined[t]`). This is the only per-row state the
  // join steps carry.
  std::vector<std::vector<uint32_t>> lineage(ninputs);
  std::vector<uint8_t> joined(ninputs, 0);
  lineage[0].resize(inputs[0].rows());
  for (size_t i = 0; i < lineage[0].size(); ++i)
    lineage[0][i] = static_cast<uint32_t>(i);
  joined[0] = 1;
  size_t total_batches = inputs[0].batches.size();

  for (size_t s = 0; s < njoins; ++s) {
    const size_t j = order[s];
    const size_t t = j + 1;
    HTAP_RETURN_NOT_OK(scan_input(t));
    total_batches += inputs[t].batches.size();

    // The probe key lives in some already-joined input: map the combined-
    // layout left_col to (input, own-layout column) and gather its key
    // column through the lineage.
    const auto lc = static_cast<size_t>(joins[j].left_col);
    size_t kt = 0;
    int kc = joins[j].left_col;
    if (lc >= base_width) {
      for (size_t k = 0; k < njoins; ++k)
        if (lc >= layout.offset[k] && lc < layout.offset[k] + layout.width[k]) {
          kt = k + 1;
          kc = static_cast<int>(lc - layout.offset[k]);
          break;
        }
    }
    if (!joined[kt])
      return Status::Internal("join order violated a key dependency");
    const size_t cur_n = lineage[0].size();
    const JoinKeyColumn cur_keys = GatherKeys(InputKeys(&inputs[kt], kc),
                                              lineage[kt]);
    const JoinKeyColumn& in_keys = InputKeys(&inputs[t], joins[j].right_col);

    const bool build_left =
        stats_planned
            ? ChooseBuildSideLeft(
                  s == 0 ? base_est : RoundRows(est_steps[s - 1]),
                  rels[j].rows)
            : ChooseBuildSideLeft(cur_n, inputs[t].rows());
    JoinStats step;
    JoinPairs pairs;
    if (!build_left) {
      const std::vector<size_t>* wts =
          want_weights ? &inputs[t].row_bytes : nullptr;
      pairs = HashJoinPairsKeys(cur_keys, in_keys, exec, &step, wts);
    } else {
      // Build on the intermediate: its grace weight is the footprint of the
      // row it would materialize — the sum of its inputs' row footprints.
      std::vector<size_t> cur_weights;
      if (want_weights) {
        cur_weights.assign(cur_n, 0);
        for (size_t t2 = 0; t2 < ninputs; ++t2) {
          if (!joined[t2]) continue;
          for (size_t r = 0; r < cur_n; ++r)
            cur_weights[r] += inputs[t2].row_bytes[lineage[t2][r]];
        }
      }
      pairs = HashJoinPairsKeys(in_keys, cur_keys, exec, &step,
                                want_weights ? &cur_weights : nullptr);
      step.build_swapped = true;
      std::sort(pairs.begin(), pairs.end(),
                [](const std::pair<uint32_t, uint32_t>& a,
                   const std::pair<uint32_t, uint32_t>& b) {
                  return a.second != b.second ? a.second < b.second
                                              : a.first < b.first;
                });
    }

    // Advance the lineage — the batch pipeline's whole join step output.
    const size_t n = pairs.size();
    std::vector<std::vector<uint32_t>> next(ninputs);
    for (size_t t2 = 0; t2 < ninputs; ++t2)
      if (joined[t2] || t2 == t) next[t2].resize(n);
    for (size_t k = 0; k < n; ++k) {
      const uint32_t p = build_left ? pairs[k].second : pairs[k].first;
      const uint32_t b = build_left ? pairs[k].first : pairs[k].second;
      for (size_t t2 = 0; t2 < ninputs; ++t2)
        if (joined[t2]) next[t2][k] = lineage[t2][p];
      next[t][k] = b;
    }
    lineage = std::move(next);
    joined[t] = 1;

    FoldJoinStats(step, &xi->join);
    xi->join_steps.push_back(step);
    if (njoins > 1) xi->join_actual_rows.push_back(n);
  }

  if (reorder) {
    // Restore plan-order nested-loop order: the lineage tuple in plan order
    // is unique and is exactly the row pipeline's hidden-column sort key.
    const size_t n = lineage[0].size();
    std::vector<uint32_t> perm(n);
    for (size_t i = 0; i < n; ++i) perm[i] = static_cast<uint32_t>(i);
    std::sort(perm.begin(), perm.end(), [&](uint32_t a, uint32_t b) {
      for (size_t t = 0; t < ninputs; ++t)
        if (lineage[t][a] != lineage[t][b]) return lineage[t][a] < lineage[t][b];
      return false;
    });
    for (size_t t = 0; t < ninputs; ++t) {
      std::vector<uint32_t> sorted(n);
      for (size_t i = 0; i < n; ++i) sorted[i] = lineage[t][perm[i]];
      lineage[t] = std::move(sorted);
    }
  }

  // Late materialization: gather only the plan-consumed columns, chunked
  // into output batches. Payload values are touched here for the first
  // time — everything upstream moved indices.
  const Schema combined = CombinedSchema(base, joins);
  const size_t n = lineage[0].size();
  const size_t chunk =
      exec.batch_rows == 0 ? std::max<size_t>(n, 1) : exec.batch_rows;
  std::vector<ColumnBatch> obatches;
  for (size_t lo = 0; lo < n; lo += chunk) {
    const size_t hi = std::min(n, lo + chunk);
    ColumnBatch ob = MakeBatch(combined, out_cols, hi - lo);
    for (size_t oc = 0; oc < out_cols.size(); ++oc) {
      const auto c = static_cast<size_t>(out_cols[oc]);
      size_t t = 0;
      size_t in_col = c;
      if (c >= base_width) {
        for (size_t k = 0; k < njoins; ++k)
          if (c >= layout.offset[k] &&
              c < layout.offset[k] + layout.width[k]) {
            t = k + 1;
            in_col = c - layout.offset[k];
            break;
          }
      }
      GatherColumn(inputs[t], in_col, lineage[t], lo, hi, &ob.columns[oc]);
    }
    obatches.push_back(std::move(ob));
  }
  xi->join.join_batches += total_batches;
  xi->join.rows_late_materialized += n;

  if (!plan.aggs.empty()) {
    out.rows = HashAggregate(obatches, groups, aggs, exec);
    out.agg_done = true;
  } else {
    out.rows = BatchesToRows(obatches);
    out.projected = !plan.projection.empty();
  }
  out.executed = true;
  return out;
}

}  // namespace

Result<Schema> PlanOutputSchema(const QueryPlan& plan,
                                const Catalog& catalog) {
  const TableInfo* base = catalog.Find(plan.table);
  if (base == nullptr) return Status::NotFound("no table: " + plan.table);
  HTAP_ASSIGN_OR_RETURN(const std::vector<BoundJoin> joins,
                        BindJoins(plan, catalog));
  return OutputSchema(plan, CombinedSchema(*base, joins));
}

Result<QueryResult> RunPlan(const QueryPlan& plan, const Catalog& catalog,
                            const ScanFn& scan, QueryExecInfo* info,
                            const ExecContext& exec,
                            const BatchScanFn& batch_scan) {
  const TableInfo* base = catalog.Find(plan.table);
  if (base == nullptr) return Status::NotFound("no table: " + plan.table);
  HTAP_ASSIGN_OR_RETURN(const std::vector<BoundJoin> joins,
                        BindJoins(plan, catalog));

  QueryExecInfo local_info;
  QueryExecInfo* xi = info != nullptr ? info : &local_info;

  // Projection pushdown. Simple scans push the user's projection; single-
  // table aggregates push exactly the columns the aggregation consumes
  // (and remap the aggregate/group indexes onto the narrowed layout) — the
  // core benefit of columnar access. Joins work on full rows.
  const bool simple = joins.empty() && plan.aggs.empty();
  const bool narrowed_agg = joins.empty() && !plan.aggs.empty();

  std::vector<int> agg_scan_cols;       // pushed-down scan projection
  std::vector<int> remapped_groups = plan.group_by;
  std::vector<AggSpec> remapped_aggs = plan.aggs;
  if (narrowed_agg) {
    auto add_col = [&](int c) {
      if (c < 0) return;
      if (std::find(agg_scan_cols.begin(), agg_scan_cols.end(), c) ==
          agg_scan_cols.end())
        agg_scan_cols.push_back(c);
    };
    for (int c : plan.group_by) add_col(c);
    for (const AggSpec& a : plan.aggs) add_col(a.column);
    std::sort(agg_scan_cols.begin(), agg_scan_cols.end());
    auto pos_of = [&](int c) {
      return static_cast<int>(std::find(agg_scan_cols.begin(),
                                        agg_scan_cols.end(), c) -
                              agg_scan_cols.begin());
    };
    for (int& g : remapped_groups) g = pos_of(g);
    for (AggSpec& a : remapped_aggs)
      if (a.column >= 0) a.column = pos_of(a.column);
  }

  ScanRequest req;
  req.table = base;
  req.pred = &plan.where;
  if (simple)
    req.projection = plan.projection;
  else if (narrowed_agg)
    req.projection = agg_scan_cols;
  req.path = plan.path;
  req.require_fresh = plan.require_fresh;

  // Vectorized base access (DESIGN.md §12): for plans the batch pipeline
  // covers — simple scans and single-table aggregates — the scan emits
  // column batches and the aggregate consumes them directly. The engine
  // declines requests its batch path cannot serve (NotSupported), and the
  // runner falls back to the row scan; any other error is the query's.
  std::vector<Row> rows;
  bool agg_done = false;
  bool scanned = false;
  bool joins_done = false;
  bool projected = false;

  // Batch-native joins (DESIGN.md §13): when the engine offers a batch scan
  // and the knob is on, join plans run the late-materialization pipeline —
  // unless its cost model prefers the row pipeline's early regime, in which
  // case the already-scanned base rows feed ExecuteJoins below.
  if (batch_scan != nullptr && !joins.empty() && exec.vectorized_join) {
    HTAP_ASSIGN_OR_RETURN(
        BatchJoinOutcome bj,
        ExecuteJoinsBatches(joins, *base, catalog, scan, batch_scan, plan,
                            exec, xi));
    rows = std::move(bj.rows);
    scanned = true;
    if (bj.executed) {
      xi->vectorized = true;
      joins_done = true;
      agg_done = bj.agg_done;
      projected = bj.projected;
    }
  }

  if (batch_scan != nullptr && (simple || narrowed_agg)) {
    Result<std::vector<ColumnBatch>> batches =
        batch_scan(req, &xi->scan, &xi->access_path);
    if (batches.ok()) {
      xi->vectorized = true;
      scanned = true;
      if (narrowed_agg) {
        rows = HashAggregate(batches.value(), remapped_groups, remapped_aggs,
                             exec);
        agg_done = true;
      } else {
        rows = BatchesToRows(batches.value());
      }
    } else if (!batches.status().IsNotSupported()) {
      return batches.status();
    }
  }
  if (!scanned) {
    HTAP_ASSIGN_OR_RETURN(rows, scan(req, &xi->scan, &xi->access_path));
  }

  if (!joins.empty() && !joins_done) {
    // The joins fan build/probe morsels onto the same AP pool as scans, so
    // the scheduler's OLAP concurrency quota bounds their in-flight morsels
    // exactly as it bounds scan morsels.
    HTAP_RETURN_NOT_OK(
        ExecuteJoins(joins, *base, catalog, scan, plan, exec, xi, &rows));
  }

  if (!plan.aggs.empty() && !agg_done) {
    rows = narrowed_agg
               ? HashAggregate(rows, remapped_groups, remapped_aggs, exec)
               : HashAggregate(rows, plan.group_by, plan.aggs, exec);
  } else if (plan.aggs.empty() && !simple && !projected &&
             !plan.projection.empty()) {
    rows = Project(rows, plan.projection);
  }

  if (plan.order_by >= 0)
    SortLimit(&rows, plan.order_by, plan.order_desc, plan.limit);
  else if (plan.limit != 0 && rows.size() > plan.limit)
    rows.resize(plan.limit);

  QueryResult result;
  result.schema = OutputSchema(plan, CombinedSchema(*base, joins));
  result.rows = std::move(rows);
  result.stats = xi->scan;
  return result;
}

}  // namespace htap
