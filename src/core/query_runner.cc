#include "core/query_runner.h"

#include <algorithm>
#include <utility>

#include "opt/join_planner.h"

namespace htap {

namespace {

/// One join clause resolved against the catalog.
struct BoundJoin {
  const TableInfo* table = nullptr;
  const Predicate* where = nullptr;
  int left_col = -1;   // plan-order combined layout
  int right_col = -1;  // the joined table's own layout
};

/// The effective join list: the legacy single-join fields (if set) followed
/// by plan.joins.
Result<std::vector<BoundJoin>> BindJoins(const QueryPlan& plan,
                                         const Catalog& catalog) {
  std::vector<BoundJoin> out;
  if (plan.has_join) {
    const TableInfo* t = catalog.Find(plan.join_table);
    if (t == nullptr) return Status::NotFound("no table: " + plan.join_table);
    out.push_back({t, &plan.join_where, plan.left_col, plan.right_col});
  }
  for (const JoinClause& jc : plan.joins) {
    const TableInfo* t = catalog.Find(jc.table);
    if (t == nullptr) return Status::NotFound("no table: " + jc.table);
    out.push_back({t, &jc.where, jc.left_col, jc.right_col});
  }
  return out;
}

/// Combined (post-join) schema: base columns, then each join's columns in
/// plan order.
Schema CombinedSchema(const TableInfo& base,
                      const std::vector<BoundJoin>& joins) {
  std::vector<ColumnDef> cols = base.schema.columns();
  for (const BoundJoin& j : joins)
    for (const auto& c : j.table->schema.columns()) cols.push_back(c);
  return Schema(std::move(cols), base.schema.pk_index());
}

Type AggOutputType(const AggSpec& agg, const Schema& input) {
  switch (agg.fn) {
    case AggSpec::Fn::kCount:
      return Type::kInt64;
    case AggSpec::Fn::kSum:
    case AggSpec::Fn::kAvg:
      return Type::kDouble;
    case AggSpec::Fn::kMin:
    case AggSpec::Fn::kMax:
      return agg.column >= 0
                 ? input.column(static_cast<size_t>(agg.column)).type
                 : Type::kInt64;
  }
  return Type::kDouble;
}

Schema OutputSchema(const QueryPlan& plan, const Schema& combined) {
  if (!plan.aggs.empty()) {
    std::vector<ColumnDef> cols;
    for (int g : plan.group_by)
      cols.push_back(combined.column(static_cast<size_t>(g)));
    for (const auto& agg : plan.aggs)
      cols.emplace_back(agg.name, AggOutputType(agg, combined));
    return Schema(std::move(cols), 0);
  }
  if (!plan.projection.empty()) return combined.Project(plan.projection);
  return combined;
}

/// Aggregates one executed join step into the plan-level JoinStats.
void FoldJoinStats(const JoinStats& step, JoinStats* total) {
  total->build_rows += step.build_rows;
  total->probe_rows += step.probe_rows;
  total->output_rows = step.output_rows;  // the last step's output
  total->partitions = std::max(total->partitions, step.partitions);
  total->parallel = total->parallel || step.parallel;
  total->build_swapped = total->build_swapped || step.build_swapped;
  total->partitions_spilled += step.partitions_spilled;
  total->spill_rows_written += step.spill_rows_written;
  total->spill_bytes_written += step.spill_bytes_written;
  total->spill_bytes_read += step.spill_bytes_read;
  total->spill_max_recursion =
      std::max(total->spill_max_recursion, step.spill_max_recursion);
  total->seconds += step.seconds;
}

/// One hash join with build-side selection (DESIGN.md §9). `build_left` is
/// the planner's decision — from catalog-statistics estimates when the plan
/// was ordered at plan time, from exact input sizes otherwise. When
/// building on the left, the swapped join's pairs — (right, left) index
/// order — are re-sorted to (left, right) and materialized build-side-
/// first, so the output rows and their order are byte-identical to the
/// unswapped join in every regime.
std::vector<Row> JoinStep(const std::vector<Row>& cur,
                          const std::vector<Row>& right, int left_col,
                          int right_col, bool build_left,
                          const ExecContext& exec, JoinStats* step) {
  if (!build_left) {
    const JoinPairs pairs =
        HashJoinPairs(cur, right, left_col, right_col, exec, step);
    return MaterializeJoinPairs(cur, right, pairs,
                                /*build_side_first=*/false, exec);
  }
  JoinPairs pairs = HashJoinPairs(right, cur, right_col, left_col, exec, step);
  step->build_swapped = true;
  std::sort(pairs.begin(), pairs.end(),
            [](const std::pair<uint32_t, uint32_t>& a,
               const std::pair<uint32_t, uint32_t>& b) {
              return a.second != b.second ? a.second < b.second
                                          : a.first < b.first;
            });
  return MaterializeJoinPairs(right, cur, pairs, /*build_side_first=*/true,
                              exec);
}

/// Rounds a fractional cardinality estimate to a row count.
size_t RoundRows(double est) {
  return est <= 0 ? 0 : static_cast<size_t>(est + 0.5);
}

/// Plan-time cardinality estimates from published catalog statistics
/// (DESIGN.md §10). Succeeds only when the base table and every join table
/// have published stats no staler than exec.stats_staleness_csns commits
/// behind exec.committed_csn (0 = unknown frontier, trusted as fresh). On
/// success fills the filtered base-table estimate, one JoinRelEstimate per
/// clause, and the worst stats age observed.
bool CatalogJoinEstimates(const QueryPlan& plan, const Catalog& catalog,
                          const TableInfo& base,
                          const std::vector<BoundJoin>& joins,
                          const ExecContext& exec, size_t* base_rows,
                          std::vector<JoinRelEstimate>* rels,
                          uint64_t* max_age) {
  uint64_t worst = 0;
  const auto fetch = [&](const std::string& name, PublishedTableStats* p) {
    if (!catalog.GetStats(name, p)) return false;
    const uint64_t age = exec.committed_csn > p->as_of_csn
                             ? exec.committed_csn - p->as_of_csn
                             : 0;
    if (age > exec.stats_staleness_csns) return false;
    worst = std::max(worst, age);
    return true;
  };
  PublishedTableStats bp;
  if (!fetch(base.name, &bp)) return false;
  *base_rows = RoundRows(static_cast<double>(bp.stats.row_count) *
                         EstimateSelectivity(plan.where, bp.stats));
  for (size_t j = 0; j < joins.size(); ++j) {
    PublishedTableStats jp;
    if (!fetch(joins[j].table->name, &jp)) return false;
    const double rows = static_cast<double>(jp.stats.row_count) *
                        EstimateSelectivity(*joins[j].where, jp.stats);
    const size_t rc = static_cast<size_t>(joins[j].right_col);
    double ndv = rc < jp.stats.columns.size() ? jp.stats.columns[rc].ndv : 1.0;
    // A predicate that filters rows can only shrink the key domain.
    ndv = std::max(1.0, std::min(ndv, std::max(rows, 1.0)));
    (*rels)[j].rows = RoundRows(rows);
    (*rels)[j].key_ndv = ndv;
  }
  *max_age = worst;
  return true;
}

/// Executes the plan's joins over `*rows_io` (the scanned base table).
///
/// Join ordering is decided BEFORE any join table is read. When every
/// referenced table has fresh published statistics in the catalog, the
/// greedy order is chosen at plan time purely from metadata and the join
/// tables are then scanned lazily in execution order; otherwise the planner
/// falls back to the pre-stats behavior — scan every join table up front
/// and count distinct join keys exactly.
///
/// Join-order selection may execute clauses out of plan order; when it
/// does, every input grows a hidden int64 index column, and after the last
/// join the rows are sorted lexicographically by the hidden columns in PLAN
/// order — the tuple (base index, match index per clause) is unique and is
/// exactly the plan-order nested-loop order — then projected back to the
/// plan's combined layout. When the chosen order is plan order (always the
/// case for 0–1 joins), none of that machinery is engaged.
Status ExecuteJoins(const std::vector<BoundJoin>& joins, const TableInfo& base,
                    const Catalog& catalog, const ScanFn& scan,
                    const QueryPlan& plan, const ExecContext& exec,
                    QueryExecInfo* xi, std::vector<Row>* rows_io) {
  const size_t njoins = joins.size();
  const size_t base_width = base.schema.columns().size();

  // Combined layout, key validation, and ordering dependencies come from
  // the schemas alone — no data access. A clause whose left_col lands
  // inside an earlier clause's column span must run after that clause.
  std::vector<size_t> width(njoins);    // schema width per clause
  std::vector<size_t> offset(njoins);   // plan-order combined-layout offset
  size_t total_cols = base_width;
  for (size_t j = 0; j < njoins; ++j) {
    width[j] = joins[j].table->schema.columns().size();
    offset[j] = total_cols;
    total_cols += width[j];
  }
  std::vector<std::vector<size_t>> deps(njoins);
  for (size_t j = 0; j < njoins; ++j) {
    const int lc = joins[j].left_col;
    const int rc = joins[j].right_col;
    if (lc < 0 || static_cast<size_t>(lc) >= offset[j] || rc < 0 ||
        static_cast<size_t>(rc) >= width[j])
      return Status::InvalidArgument("join " + std::to_string(j) +
                                     ": key columns out of range");
    for (size_t k = 0; k < j; ++k)
      if (static_cast<size_t>(lc) >= offset[k] &&
          static_cast<size_t>(lc) < offset[k] + width[k])
        deps[j].push_back(k);
  }

  std::vector<std::vector<Row>> jrows(njoins);
  std::vector<uint8_t> scanned(njoins, 0);
  const auto scan_join = [&](size_t j) -> Status {
    if (scanned[j]) return Status::OK();
    ScanRequest rreq;
    rreq.table = joins[j].table;
    rreq.pred = joins[j].where;
    rreq.path = plan.path;
    rreq.require_fresh = plan.require_fresh;
    HTAP_ASSIGN_OR_RETURN(jrows[j], scan(rreq, nullptr, nullptr));
    scanned[j] = 1;
    return Status::OK();
  };

  // Greedy join-order selection (trivial for 0–1 joins).
  std::vector<size_t> order(njoins);
  for (size_t j = 0; j < njoins; ++j) order[j] = j;
  std::vector<JoinRelEstimate> rels(njoins);
  std::vector<double> est_steps;  // estimated output rows per executed step
  bool stats_planned = false;
  size_t base_est = 0;
  if (njoins > 1) {
    uint64_t age = 0;
    stats_planned = CatalogJoinEstimates(plan, catalog, base, joins, exec,
                                         &base_est, &rels, &age);
    if (stats_planned) {
      order = ChooseJoinOrder(base_est, rels, deps, &est_steps);
      xi->join_used_catalog_stats = true;
      xi->join_stats_age_csns = age;
    } else {
      // Sampling fallback: read every join table and count keys exactly.
      for (size_t j = 0; j < njoins; ++j) HTAP_RETURN_NOT_OK(scan_join(j));
      for (size_t j = 0; j < njoins; ++j) {
        rels[j].rows = jrows[j].size();
        rels[j].key_ndv = static_cast<double>(
            CountDistinctKeys(jrows[j], joins[j].right_col));
      }
      order = ChooseJoinOrder(rows_io->size(), rels, deps, &est_steps);
    }
    xi->join_order = order;
    xi->join_est_rows = est_steps;
  }
  bool reorder = false;
  for (size_t s = 0; s < njoins; ++s) reorder = reorder || order[s] != s;

  // Tag the base input with a hidden index column when the order changed
  // (join inputs are tagged as they are scanned, below).
  std::vector<Row> cur = std::move(*rows_io);
  if (reorder)
    for (size_t i = 0; i < cur.size(); ++i)
      cur[i].Append(Value(static_cast<int64_t>(i)));

  // phys_of_logical maps plan-order combined columns to their position in
  // the physical (execution-order, hidden-tagged) layout.
  std::vector<int> phys_of_logical(total_cols, -1);
  for (size_t c = 0; c < base_width; ++c)
    phys_of_logical[c] = static_cast<int>(c);
  const size_t base_hidden = base_width;        // valid when reorder
  std::vector<size_t> join_hidden(njoins, 0);   // valid when reorder
  size_t cur_width = base_width + (reorder ? 1 : 0);

  for (size_t s = 0; s < njoins; ++s) {
    const size_t j = order[s];
    HTAP_RETURN_NOT_OK(scan_join(j));  // no-op on the fallback path
    if (reorder)
      for (size_t i = 0; i < jrows[j].size(); ++i)
        jrows[j][i].Append(Value(static_cast<int64_t>(i)));
    const int lc_phys = phys_of_logical[static_cast<size_t>(joins[j].left_col)];
    if (lc_phys < 0)
      return Status::Internal("join order violated a key dependency");
    // Build-side selection: plan-time estimates when stats chose the order,
    // exact input sizes otherwise. Either way the output is restored to the
    // unswapped layout/order, so a misestimate can only cost time.
    const bool build_left =
        stats_planned
            ? ChooseBuildSideLeft(
                  s == 0 ? base_est : RoundRows(est_steps[s - 1]),
                  rels[j].rows)
            : ChooseBuildSideLeft(cur.size(), jrows[j].size());
    JoinStats step;
    cur = JoinStep(cur, jrows[j], lc_phys, joins[j].right_col, build_left,
                   exec, &step);
    std::vector<Row>().swap(jrows[j]);  // scanned side now folded into cur
    for (size_t c = 0; c < width[j]; ++c)
      phys_of_logical[offset[j] + c] = static_cast<int>(cur_width + c);
    if (reorder) join_hidden[j] = cur_width + width[j];
    cur_width += width[j] + (reorder ? 1 : 0);
    FoldJoinStats(step, &xi->join);
    xi->join_steps.push_back(step);
    if (njoins > 1) xi->join_actual_rows.push_back(cur.size());
  }

  if (reorder) {
    // Restore plan-order nested-loop order, then the plan-order layout.
    std::vector<size_t> sort_cols;
    sort_cols.push_back(base_hidden);
    for (size_t j = 0; j < njoins; ++j) sort_cols.push_back(join_hidden[j]);
    std::sort(cur.begin(), cur.end(), [&](const Row& a, const Row& b) {
      for (size_t c : sort_cols) {
        const int64_t av = a.Get(c).AsInt64();
        const int64_t bv = b.Get(c).AsInt64();
        if (av != bv) return av < bv;
      }
      return false;
    });
    cur = Project(cur, phys_of_logical);
  }

  *rows_io = std::move(cur);
  return Status::OK();
}

}  // namespace

Result<Schema> PlanOutputSchema(const QueryPlan& plan,
                                const Catalog& catalog) {
  const TableInfo* base = catalog.Find(plan.table);
  if (base == nullptr) return Status::NotFound("no table: " + plan.table);
  HTAP_ASSIGN_OR_RETURN(const std::vector<BoundJoin> joins,
                        BindJoins(plan, catalog));
  return OutputSchema(plan, CombinedSchema(*base, joins));
}

Result<QueryResult> RunPlan(const QueryPlan& plan, const Catalog& catalog,
                            const ScanFn& scan, QueryExecInfo* info,
                            const ExecContext& exec,
                            const BatchScanFn& batch_scan) {
  const TableInfo* base = catalog.Find(plan.table);
  if (base == nullptr) return Status::NotFound("no table: " + plan.table);
  HTAP_ASSIGN_OR_RETURN(const std::vector<BoundJoin> joins,
                        BindJoins(plan, catalog));

  QueryExecInfo local_info;
  QueryExecInfo* xi = info != nullptr ? info : &local_info;

  // Projection pushdown. Simple scans push the user's projection; single-
  // table aggregates push exactly the columns the aggregation consumes
  // (and remap the aggregate/group indexes onto the narrowed layout) — the
  // core benefit of columnar access. Joins work on full rows.
  const bool simple = joins.empty() && plan.aggs.empty();
  const bool narrowed_agg = joins.empty() && !plan.aggs.empty();

  std::vector<int> agg_scan_cols;       // pushed-down scan projection
  std::vector<int> remapped_groups = plan.group_by;
  std::vector<AggSpec> remapped_aggs = plan.aggs;
  if (narrowed_agg) {
    auto add_col = [&](int c) {
      if (c < 0) return;
      if (std::find(agg_scan_cols.begin(), agg_scan_cols.end(), c) ==
          agg_scan_cols.end())
        agg_scan_cols.push_back(c);
    };
    for (int c : plan.group_by) add_col(c);
    for (const AggSpec& a : plan.aggs) add_col(a.column);
    std::sort(agg_scan_cols.begin(), agg_scan_cols.end());
    auto pos_of = [&](int c) {
      return static_cast<int>(std::find(agg_scan_cols.begin(),
                                        agg_scan_cols.end(), c) -
                              agg_scan_cols.begin());
    };
    for (int& g : remapped_groups) g = pos_of(g);
    for (AggSpec& a : remapped_aggs)
      if (a.column >= 0) a.column = pos_of(a.column);
  }

  ScanRequest req;
  req.table = base;
  req.pred = &plan.where;
  if (simple)
    req.projection = plan.projection;
  else if (narrowed_agg)
    req.projection = agg_scan_cols;
  req.path = plan.path;
  req.require_fresh = plan.require_fresh;

  // Vectorized base access (DESIGN.md §12): for plans the batch pipeline
  // covers — simple scans and single-table aggregates — the scan emits
  // column batches and the aggregate consumes them directly. The engine
  // declines requests its batch path cannot serve (NotSupported), and the
  // runner falls back to the row scan; any other error is the query's.
  std::vector<Row> rows;
  bool agg_done = false;
  bool scanned = false;
  if (batch_scan != nullptr && (simple || narrowed_agg)) {
    Result<std::vector<ColumnBatch>> batches =
        batch_scan(req, &xi->scan, &xi->access_path);
    if (batches.ok()) {
      xi->vectorized = true;
      scanned = true;
      if (narrowed_agg) {
        rows = HashAggregate(batches.value(), remapped_groups, remapped_aggs,
                             exec);
        agg_done = true;
      } else {
        rows = BatchesToRows(batches.value());
      }
    } else if (!batches.status().IsNotSupported()) {
      return batches.status();
    }
  }
  if (!scanned) {
    HTAP_ASSIGN_OR_RETURN(rows, scan(req, &xi->scan, &xi->access_path));
  }

  if (!joins.empty()) {
    // The joins fan build/probe morsels onto the same AP pool as scans, so
    // the scheduler's OLAP concurrency quota bounds their in-flight morsels
    // exactly as it bounds scan morsels.
    HTAP_RETURN_NOT_OK(
        ExecuteJoins(joins, *base, catalog, scan, plan, exec, xi, &rows));
  }

  if (!plan.aggs.empty() && !agg_done) {
    rows = narrowed_agg
               ? HashAggregate(rows, remapped_groups, remapped_aggs, exec)
               : HashAggregate(rows, plan.group_by, plan.aggs, exec);
  } else if (plan.aggs.empty() && !simple && !plan.projection.empty()) {
    rows = Project(rows, plan.projection);
  }

  if (plan.order_by >= 0)
    SortLimit(&rows, plan.order_by, plan.order_desc, plan.limit);
  else if (plan.limit != 0 && rows.size() > plan.limit)
    rows.resize(plan.limit);

  QueryResult result;
  result.schema = OutputSchema(plan, CombinedSchema(*base, joins));
  result.rows = std::move(rows);
  result.stats = xi->scan;
  return result;
}

}  // namespace htap
