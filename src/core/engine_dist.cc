// Architecture (b): distributed row store + column store replica (TiDB
// style), backed by the deterministic simulator. The facade pumps virtual
// time while waiting for commits, so a single caller thread drives the
// whole cluster.

#include "core/engines.h"

namespace htap {

const char* ArchitectureName(ArchitectureKind k) {
  switch (k) {
    case ArchitectureKind::kRowPlusInMemoryColumn:
      return "primary-row+in-memory-column";
    case ArchitectureKind::kDistributedRowPlusColumnReplica:
      return "distributed-row+column-replica";
    case ArchitectureKind::kDiskRowPlusDistributedColumn:
      return "disk-row+distributed-column";
    case ArchitectureKind::kColumnPlusDeltaRow:
      return "primary-column+delta-row";
  }
  return "?";
}

DistributedHtapEngine::DistributedHtapEngine(const DatabaseOptions& options,
                                             Catalog* catalog)
    : options_(options), catalog_(catalog), env_(/*seed=*/11) {
  db_ = std::make_unique<sim::DistributedDb>(&env_, options.dist);
  db_->Bootstrap();
  bootstrapped_ = true;
}

Status DistributedHtapEngine::CreateTable(const TableInfo& info) {
  db_->RegisterTable(info.id, info.schema);
  return Status::OK();
}

std::unique_ptr<TxnContext> DistributedHtapEngine::Begin() {
  return std::make_unique<TxnContext>();
}

Status DistributedHtapEngine::Insert(TxnContext* t, const TableInfo& tbl,
                                     const Row& r) {
  if (r.size() != tbl.schema.num_columns())
    return Status::InvalidArgument("row arity mismatch");
  t->dist_writes.push_back(
      sim::WriteOp{tbl.id, ChangeOp::kInsert, r.GetKey(tbl.schema), r});
  return Status::OK();
}

Status DistributedHtapEngine::Update(TxnContext* t, const TableInfo& tbl,
                                     const Row& r) {
  if (r.size() != tbl.schema.num_columns())
    return Status::InvalidArgument("row arity mismatch");
  t->dist_writes.push_back(
      sim::WriteOp{tbl.id, ChangeOp::kUpdate, r.GetKey(tbl.schema), r});
  return Status::OK();
}

Status DistributedHtapEngine::Delete(TxnContext* t, const TableInfo& tbl,
                                     Key key) {
  t->dist_writes.push_back(sim::WriteOp{tbl.id, ChangeOp::kDelete, key, Row{}});
  return Status::OK();
}

Status DistributedHtapEngine::Get(TxnContext* t, const TableInfo& tbl,
                                  Key key, Row* out) {
  // Read-your-writes from the transaction's buffer first.
  for (auto it = t->dist_writes.rbegin(); it != t->dist_writes.rend(); ++it) {
    if (it->table_id == tbl.id && it->key == key) {
      if (it->op == ChangeOp::kDelete) return Status::NotFound("deleted");
      *out = it->row;
      return Status::OK();
    }
  }
  return Read(tbl, key, out);
}

Status DistributedHtapEngine::Commit(TxnContext* t) {
  t->finished = true;
  if (t->dist_writes.empty()) return Status::OK();
  bool done = false, committed = false;
  db_->ExecuteTxn(std::move(t->dist_writes), [&](bool ok) {
    done = true;
    committed = ok;
  });
  const Micros deadline = env_.Now() + options_.sim_timeout_micros;
  while (!done && env_.Now() < deadline)
    env_.RunUntil(env_.Now() + options_.sim_step_micros);
  if (!done) return Status::Timeout("simulated commit did not complete");
  return committed ? Status::OK()
                   : Status::Aborted("distributed transaction aborted");
}

Status DistributedHtapEngine::Abort(TxnContext* t) {
  t->finished = true;
  t->dist_writes.clear();
  return Status::OK();
}

Status DistributedHtapEngine::Read(const TableInfo& tbl, Key key, Row* out) {
  // Give in-flight replication a chance to settle, then read at the leader.
  env_.RunUntil(env_.Now() + 1);
  return db_->Read(tbl.id, key, out)
             ? Status::OK()
             : Status::NotFound("no such key (or no leader)");
}

Result<std::vector<Row>> DistributedHtapEngine::Scan(const ScanRequest& req,
                                                     ScanStats* stats,
                                                     std::string* path_desc) {
  if (path_desc != nullptr)
    *path_desc = req.require_fresh ? "learner-logdelta+column-scan"
                                   : "learner-column-scan";
  return db_->AnalyticalScan(req.table->id, *req.pred, req.projection,
                             /*include_delta=*/req.require_fresh, stats);
}

Result<std::vector<ColumnBatch>> DistributedHtapEngine::BatchScan(
    const ScanRequest& req, ScanStats* stats, std::string* path_desc) {
  if (req.path == PathHint::kForceRow)
    return Status::NotSupported("forced row scan");
  if (path_desc != nullptr)
    *path_desc = req.require_fresh ? "learner-logdelta+column-scan"
                                   : "learner-column-scan";
  return db_->AnalyticalScanBatches(req.table->id, *req.pred, req.projection,
                                    options_.vectorized_batch_rows,
                                    /*include_delta=*/req.require_fresh,
                                    stats);
}

Result<QueryResult> DistributedHtapEngine::Execute(const QueryPlan& plan,
                                                   QueryExecInfo* info) {
  const ScanFn scan = [this](const ScanRequest& req, ScanStats* stats,
                             std::string* desc) {
    return Scan(req, stats, desc);
  };
  BatchScanFn batch_scan;
  if (options_.vectorized_exec)
    batch_scan = [this](const ScanRequest& req, ScanStats* stats,
                        std::string* desc) {
      return BatchScan(req, stats, desc);
    };
  // The facade drives the simulator from one thread, so execution stays
  // serial; the context still carries the batch/join knobs.
  ExecContext exec;
  exec.min_parallel_join_build = options_.parallel_join_min_build_rows;
  exec.join_spill_budget_bytes = options_.join_spill_budget_bytes;
  exec.join_spill_dir = options_.join_spill_dir;
  exec.stats_staleness_csns = options_.stats_staleness_csns;
  exec.batch_rows = options_.vectorized_batch_rows;
  exec.vectorized_join = options_.vectorized_join;
  return RunPlan(plan, *catalog_, scan, info, exec, batch_scan);
}

Status DistributedHtapEngine::ForceSync(const TableInfo&) {
  // Let replication drain (a few network RTTs), then merge learner deltas.
  const Micros settle =
      4 * (options_.dist.net.base_latency_micros +
           options_.dist.net.jitter_micros) +
      options_.dist.raft.heartbeat_interval * 4;
  env_.RunUntil(env_.Now() + settle);
  db_->SyncLearners();
  return Status::OK();
}

FreshnessInfo DistributedHtapEngine::Freshness(const TableInfo& tbl) {
  FreshnessInfo f;
  f.committed_csn = db_->last_csn() > 0 ? db_->last_csn() - 1 : 0;
  f.visible_csn = db_->LearnerMergedCsn(tbl.id);
  f.csn_lag =
      f.committed_csn > f.visible_csn ? f.committed_csn - f.visible_csn : 0;
  if (f.csn_lag > 0) {
    const Micros t = db_->CommitTimeOf(f.visible_csn + 1);
    if (t > 0 && env_.Now() > t)
      f.time_lag_micros = env_.Now() - t;  // virtual-time lag
  }
  f.fresh_visible_csn = db_->LearnerReplicatedCsn(tbl.id);
  if (f.committed_csn > f.fresh_visible_csn) {
    const Micros t = db_->CommitTimeOf(f.fresh_visible_csn + 1);
    if (t > 0 && env_.Now() > t) f.fresh_time_lag_micros = env_.Now() - t;
  }
  return f;
}

EngineStats DistributedHtapEngine::Stats() {
  EngineStats s;
  s.commits = db_->committed();
  s.aborts = db_->aborted();
  s.sim_messages = db_->network()->messages_sent();
  return s;
}

}  // namespace htap
