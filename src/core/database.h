// Database: the public entry point of htapdb.
//
//   DatabaseOptions opts;
//   opts.architecture = ArchitectureKind::kRowPlusInMemoryColumn;
//   auto db = Database::Open(opts).ValueOrDie();
//   db->CreateTable("orders", Schema({{"id", Type::kInt64}, ...}));
//   auto txn = db->Begin();
//   txn->Insert("orders", Row{...});
//   txn->Commit();
//   auto result = db->ExecuteSql("SELECT COUNT(*) FROM orders");
//
// One Database embodies one of the survey's four HTAP architectures; the
// API is identical across them, which is what makes the Table 1 benchmark
// an apples-to-apples comparison.

#ifndef HTAP_CORE_DATABASE_H_
#define HTAP_CORE_DATABASE_H_

#include <memory>
#include <string>

#include "core/catalog.h"
#include "core/engines.h"
#include "core/options.h"

namespace htap {

class Database;

/// A transaction handle. Obtain via Database::Begin; end with exactly one
/// Commit or Abort (the destructor aborts a still-active transaction).
class DbTxn {
 public:
  ~DbTxn();
  DbTxn(const DbTxn&) = delete;
  DbTxn& operator=(const DbTxn&) = delete;

  Status Insert(const std::string& table, const Row& row);
  Status Update(const std::string& table, const Row& row);
  Status Delete(const std::string& table, Key key);
  /// Snapshot read (sees this transaction's own writes where supported).
  Status Get(const std::string& table, Key key, Row* out);

  Status Commit();
  Status Abort();

 private:
  friend class Database;
  DbTxn(Database* db, std::unique_ptr<TxnContext> ctx)
      : db_(db), ctx_(std::move(ctx)) {}

  Database* db_;
  std::unique_ptr<TxnContext> ctx_;
};

class Database {
 public:
  /// Opens a database with the requested architecture.
  static Result<std::unique_ptr<Database>> Open(DatabaseOptions options);

  ~Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  Status CreateTable(const std::string& name, Schema schema);

  // ---- OLTP ---------------------------------------------------------------
  std::unique_ptr<DbTxn> Begin();

  /// Autocommit conveniences.
  Status InsertRow(const std::string& table, const Row& row);
  Status UpdateRow(const std::string& table, const Row& row);
  Status DeleteRow(const std::string& table, Key key);
  /// Latest-committed point read.
  Status GetRow(const std::string& table, Key key, Row* out);

  // ---- OLAP ---------------------------------------------------------------
  Result<QueryResult> Query(const QueryPlan& plan,
                            QueryExecInfo* info = nullptr);

  /// Executes a SQL statement (see sql/ for the supported subset: CREATE
  /// TABLE, INSERT, UPDATE, DELETE, SELECT with WHERE/chained JOINs/
  /// GROUP BY/ORDER BY/LIMIT). DML autocommits. For SELECT, `info` (when
  /// non-null) receives execution details — join order, estimated vs.
  /// actual rows per join step, and stats provenance.
  Result<QueryResult> ExecuteSql(const std::string& sql,
                                 QueryExecInfo* info = nullptr);

  // ---- HTAP control ---------------------------------------------------
  /// Forces delta -> column-store synchronization for one table.
  Status ForceSync(const std::string& table);
  /// Forces it for every table.
  Status ForceSyncAll();
  FreshnessInfo Freshness(const std::string& table);
  EngineStats Stats();

  ArchitectureKind architecture() const { return options_.architecture; }
  const DatabaseOptions& options() const { return options_; }
  Catalog* catalog() { return &catalog_; }
  /// The underlying engine (benchmarks use architecture-specific hooks).
  HtapEngine* engine() { return engine_.get(); }
  /// The engine's AP morsel pool — scan, aggregation, and join morsels —
  /// (null when analytics run serially). Its concurrency quota throttles
  /// analytical CPU.
  ThreadPool* ap_scan_pool() { return engine_->ApScanPool(); }

 private:
  friend class DbTxn;
  explicit Database(DatabaseOptions options);

  Result<const TableInfo*> Resolve(const std::string& table) const;

  DatabaseOptions options_;
  Catalog catalog_;
  std::unique_ptr<HtapEngine> engine_;
};

}  // namespace htap

#endif  // HTAP_CORE_DATABASE_H_
