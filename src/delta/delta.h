// Delta stores: the write-side staging areas that give HTAP architectures
// their freshness/efficiency trade-offs (Table 2, AP + DS rows).
//
// Three designs from the survey, behind one read interface:
//  * InMemoryDeltaStore — row-wise in-memory delta (Oracle SMU, SQL Server
//    delta rowgroups, DB2 BLU shadow tables).
//  * L1L2DeltaStore     — SAP HANA's two-stage delta: L1 keeps raw rows,
//    spilling into a dictionary-encoded columnar L2, which merges into Main.
//  * LogDeltaStore      — TiDB/TiFlash-style: changes accumulate in encoded
//    "delta files" indexed by a B+-tree; reads must decode the files.

#ifndef HTAP_DELTA_DELTA_H_
#define HTAP_DELTA_DELTA_H_

#include <deque>
#include <functional>
#include <vector>

#include "columnar/column_vector.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "index/btree.h"
#include "txn/types.h"
#include "types/row.h"
#include "types/schema.h"

namespace htap {

/// One committed change staged in a delta store.
struct DeltaEntry {
  ChangeOp op = ChangeOp::kInsert;
  Key key = 0;
  Row row;  // empty for deletes
  CSN csn = 0;
};

/// Uniform read interface the HTAP scan path uses to union a delta with the
/// main column store.
class DeltaReader {
 public:
  virtual ~DeltaReader() = default;

  /// Visits entries with csn <= snapshot in commit order.
  virtual void ScanVisible(
      CSN snapshot, const std::function<void(const DeltaEntry&)>& visit)
      const = 0;

  /// Number of staged entries (all CSNs).
  virtual size_t EntryCount() const = 0;

  /// Approximate heap footprint.
  virtual size_t MemoryBytes() const = 0;
};

// ---------------------------------------------------------------------------
// In-memory row-wise delta
// ---------------------------------------------------------------------------

class InMemoryDeltaStore : public DeltaReader {
 public:
  void Append(const DeltaEntry& e);
  void AppendBatch(const std::vector<ChangeEvent>& events, uint32_t table_id);

  void ScanVisible(CSN snapshot,
                   const std::function<void(const DeltaEntry&)>& visit)
      const override;
  size_t EntryCount() const override;
  size_t MemoryBytes() const override;

  /// Removes and returns all entries with csn <= csn (the merge pipeline
  /// consumes these).
  std::vector<DeltaEntry> DrainUpTo(CSN csn);

  /// CSN of the newest staged entry (0 if empty).
  CSN max_csn() const;

 private:
  mutable Mutex mu_{LockRank::kDeltaStore, "delta-inmemory"};
  std::deque<DeltaEntry> entries_ GUARDED_BY(mu_);
  size_t mem_bytes_ GUARDED_BY(mu_) = 0;
};

// ---------------------------------------------------------------------------
// SAP HANA-style L1 (rows) -> L2 (columnar) delta
// ---------------------------------------------------------------------------

class L1L2DeltaStore : public DeltaReader {
 public:
  /// `l1_spill_threshold`: entries held row-wise before converting to L2.
  L1L2DeltaStore(Schema schema, size_t l1_spill_threshold = 4096);

  void Append(const DeltaEntry& e);
  void AppendBatch(const std::vector<ChangeEvent>& events, uint32_t table_id);

  void ScanVisible(CSN snapshot,
                   const std::function<void(const DeltaEntry&)>& visit)
      const override;
  size_t EntryCount() const override;
  size_t MemoryBytes() const override;

  /// Force L1 -> L2 conversion regardless of threshold.
  void SpillL1();

  /// Removes all entries with csn <= csn, returning them in commit order
  /// (L2 chunks first, then remaining L1) for the merge into Main.
  std::vector<DeltaEntry> DrainUpTo(CSN csn);

  size_t l1_size() const;
  size_t l2_size() const;

 private:
  /// One dictionary-encoded columnar chunk of spilled entries.
  struct L2Chunk {
    std::vector<ChangeOp> ops;
    std::vector<Key> keys;
    std::vector<CSN> csns;
    std::vector<ColumnVector> columns;  // one per schema column; row i valid
                                        // only when ops[i] != kDelete
    size_t num_rows = 0;
    CSN max_csn = 0;
    size_t MemoryBytes() const;
  };

  void SpillL1Locked() REQUIRES(mu_);
  DeltaEntry L2Entry(const L2Chunk& c, size_t i) const;

  const Schema schema_;
  const size_t l1_spill_threshold_;
  mutable Mutex mu_{LockRank::kDeltaStore, "delta-l1l2"};
  std::deque<DeltaEntry> l1_ GUARDED_BY(mu_);
  std::deque<L2Chunk> l2_ GUARDED_BY(mu_);
};

// ---------------------------------------------------------------------------
// TiDB-style log-based (disk) delta files
// ---------------------------------------------------------------------------

class LogDeltaStore : public DeltaReader {
 public:
  LogDeltaStore() = default;

  /// Seals a batch of changes into one encoded delta file.
  void AppendFile(const std::vector<DeltaEntry>& entries);
  void AppendBatch(const std::vector<ChangeEvent>& events, uint32_t table_id);

  void ScanVisible(CSN snapshot,
                   const std::function<void(const DeltaEntry&)>& visit)
      const override;
  size_t EntryCount() const override;
  size_t MemoryBytes() const override;

  /// Point lookup of the newest entry for a key (uses the B+-tree index —
  /// the survey's "delta items efficiently located with key lookups").
  bool LookupLatest(Key key, DeltaEntry* out) const;

  /// Removes all files whose max csn <= csn; returns their decoded entries
  /// in order (the log-based delta merge consumes these).
  std::vector<DeltaEntry> DrainUpTo(CSN csn);

  size_t num_files() const;
  /// Cumulative bytes decoded by reads — the "expensive delta read" cost the
  /// survey attributes to this design.
  uint64_t bytes_decoded() const { return bytes_decoded_; }

 private:
  struct DeltaFile {
    std::string blob;  // encoded entries
    size_t count = 0;
    CSN min_csn = 0, max_csn = 0;
  };

  static void EncodeEntry(const DeltaEntry& e, std::string* out);
  static bool DecodeEntry(const std::string& in, size_t* pos, DeltaEntry* out);

  mutable Mutex mu_{LockRank::kDeltaStore, "delta-log"};
  std::deque<DeltaFile> files_ GUARDED_BY(mu_);
  // key -> (file_seq << 32 | entry_idx), newest wins. The B+-tree has its
  // own internal latch (rank kBtree, acquired under mu_).
  BTree key_index_;
  uint64_t file_seq_base_ GUARDED_BY(mu_) = 0;  // seq of files_.front()
  mutable std::atomic<uint64_t> bytes_decoded_{0};
};

}  // namespace htap

#endif  // HTAP_DELTA_DELTA_H_
