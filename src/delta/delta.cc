#include "delta/delta.h"

#include <algorithm>

namespace htap {

namespace {

size_t EntryBytes(const DeltaEntry& e) {
  return sizeof(DeltaEntry) + e.row.MemoryBytes();
}

DeltaEntry FromEvent(const ChangeEvent& ev) {
  return DeltaEntry{ev.op, ev.key, ev.row, ev.csn};
}

}  // namespace

// ---------------------------------------------------------------------------
// InMemoryDeltaStore
// ---------------------------------------------------------------------------

void InMemoryDeltaStore::Append(const DeltaEntry& e) {
  MutexLock lk(&mu_);
  mem_bytes_ += EntryBytes(e);
  entries_.push_back(e);
}

void InMemoryDeltaStore::AppendBatch(const std::vector<ChangeEvent>& events,
                                     uint32_t table_id) {
  MutexLock lk(&mu_);
  for (const auto& ev : events) {
    if (ev.table_id != table_id) continue;
    entries_.push_back(FromEvent(ev));
    mem_bytes_ += EntryBytes(entries_.back());
  }
}

void InMemoryDeltaStore::ScanVisible(
    CSN snapshot, const std::function<void(const DeltaEntry&)>& visit) const {
  MutexLock lk(&mu_);
  for (const auto& e : entries_) {
    if (e.csn > snapshot) break;  // commit order: everything after is newer
    visit(e);
  }
}

size_t InMemoryDeltaStore::EntryCount() const {
  MutexLock lk(&mu_);
  return entries_.size();
}

size_t InMemoryDeltaStore::MemoryBytes() const {
  MutexLock lk(&mu_);
  return mem_bytes_;
}

std::vector<DeltaEntry> InMemoryDeltaStore::DrainUpTo(CSN csn) {
  MutexLock lk(&mu_);
  std::vector<DeltaEntry> out;
  while (!entries_.empty() && entries_.front().csn <= csn) {
    mem_bytes_ -= std::min(mem_bytes_, EntryBytes(entries_.front()));
    out.push_back(std::move(entries_.front()));
    entries_.pop_front();
  }
  return out;
}

CSN InMemoryDeltaStore::max_csn() const {
  MutexLock lk(&mu_);
  return entries_.empty() ? 0 : entries_.back().csn;
}

// ---------------------------------------------------------------------------
// L1L2DeltaStore
// ---------------------------------------------------------------------------

L1L2DeltaStore::L1L2DeltaStore(Schema schema, size_t l1_spill_threshold)
    : schema_(std::move(schema)), l1_spill_threshold_(l1_spill_threshold) {}

void L1L2DeltaStore::Append(const DeltaEntry& e) {
  MutexLock lk(&mu_);
  l1_.push_back(e);
  if (l1_.size() >= l1_spill_threshold_) SpillL1Locked();
}

void L1L2DeltaStore::AppendBatch(const std::vector<ChangeEvent>& events,
                                 uint32_t table_id) {
  MutexLock lk(&mu_);
  for (const auto& ev : events) {
    if (ev.table_id != table_id) continue;
    l1_.push_back(FromEvent(ev));
  }
  if (l1_.size() >= l1_spill_threshold_) SpillL1Locked();
}

void L1L2DeltaStore::SpillL1() {
  MutexLock lk(&mu_);
  SpillL1Locked();
}

void L1L2DeltaStore::SpillL1Locked() {
  if (l1_.empty()) return;
  L2Chunk chunk;
  chunk.num_rows = l1_.size();
  chunk.ops.reserve(l1_.size());
  chunk.keys.reserve(l1_.size());
  chunk.csns.reserve(l1_.size());
  for (size_t c = 0; c < schema_.num_columns(); ++c)
    chunk.columns.emplace_back(schema_.column(c).type);

  for (const DeltaEntry& e : l1_) {
    chunk.ops.push_back(e.op);
    chunk.keys.push_back(e.key);
    chunk.csns.push_back(e.csn);
    chunk.max_csn = std::max(chunk.max_csn, e.csn);
    for (size_t c = 0; c < schema_.num_columns(); ++c) {
      if (e.op == ChangeOp::kDelete)
        chunk.columns[c].AppendNull();
      else
        chunk.columns[c].AppendValue(e.row.Get(c));
    }
  }
  l1_.clear();
  l2_.push_back(std::move(chunk));
}

DeltaEntry L1L2DeltaStore::L2Entry(const L2Chunk& c, size_t i) const {
  DeltaEntry e;
  e.op = c.ops[i];
  e.key = c.keys[i];
  e.csn = c.csns[i];
  if (e.op != ChangeOp::kDelete) {
    for (size_t col = 0; col < c.columns.size(); ++col)
      e.row.Append(c.columns[col].GetValue(i));
  }
  return e;
}

void L1L2DeltaStore::ScanVisible(
    CSN snapshot, const std::function<void(const DeltaEntry&)>& visit) const {
  MutexLock lk(&mu_);
  // L2 chunks are strictly older than L1 (spill preserves order).
  for (const auto& chunk : l2_) {
    for (size_t i = 0; i < chunk.num_rows; ++i) {
      if (chunk.csns[i] > snapshot) return;
      visit(L2Entry(chunk, i));
    }
  }
  for (const auto& e : l1_) {
    if (e.csn > snapshot) return;
    visit(e);
  }
}

size_t L1L2DeltaStore::EntryCount() const {
  MutexLock lk(&mu_);
  size_t n = l1_.size();
  for (const auto& c : l2_) n += c.num_rows;
  return n;
}

size_t L1L2DeltaStore::L2Chunk::MemoryBytes() const {
  size_t b = sizeof(*this) + ops.capacity() + keys.capacity() * 8 +
             csns.capacity() * 8;
  for (const auto& col : columns) b += col.MemoryBytes();
  return b;
}

size_t L1L2DeltaStore::MemoryBytes() const {
  MutexLock lk(&mu_);
  size_t b = 0;
  for (const auto& e : l1_) b += EntryBytes(e);
  for (const auto& c : l2_) b += c.MemoryBytes();
  return b;
}

std::vector<DeltaEntry> L1L2DeltaStore::DrainUpTo(CSN csn) {
  MutexLock lk(&mu_);
  std::vector<DeltaEntry> out;
  while (!l2_.empty() && l2_.front().max_csn <= csn) {
    const L2Chunk& c = l2_.front();
    for (size_t i = 0; i < c.num_rows; ++i) out.push_back(L2Entry(c, i));
    l2_.pop_front();
  }
  // Partial L2 chunk: split it.
  if (!l2_.empty() && !l2_.front().csns.empty() && l2_.front().csns[0] <= csn) {
    L2Chunk& c = l2_.front();
    std::deque<DeltaEntry> keep;
    for (size_t i = 0; i < c.num_rows; ++i) {
      DeltaEntry e = L2Entry(c, i);
      if (e.csn <= csn)
        out.push_back(std::move(e));
      else
        keep.push_back(std::move(e));
    }
    l2_.pop_front();
    for (auto it = keep.rbegin(); it != keep.rend(); ++it)
      l1_.push_front(std::move(*it));  // demote remainder back to L1
  }
  while (!l1_.empty() && l1_.front().csn <= csn) {
    out.push_back(std::move(l1_.front()));
    l1_.pop_front();
  }
  return out;
}

size_t L1L2DeltaStore::l1_size() const {
  MutexLock lk(&mu_);
  return l1_.size();
}

size_t L1L2DeltaStore::l2_size() const {
  MutexLock lk(&mu_);
  size_t n = 0;
  for (const auto& c : l2_) n += c.num_rows;
  return n;
}

// ---------------------------------------------------------------------------
// LogDeltaStore
// ---------------------------------------------------------------------------

void LogDeltaStore::EncodeEntry(const DeltaEntry& e, std::string* out) {
  out->push_back(static_cast<char>(e.op));
  Value(e.key).EncodeTo(out);
  Value(static_cast<int64_t>(e.csn)).EncodeTo(out);
  e.row.EncodeTo(out);
}

bool LogDeltaStore::DecodeEntry(const std::string& in, size_t* pos,
                                DeltaEntry* out) {
  if (*pos >= in.size()) return false;
  out->op = static_cast<ChangeOp>(in[(*pos)++]);
  Value v;
  if (!Value::DecodeFrom(in, pos, &v) || !v.is_int64()) return false;
  out->key = v.AsInt64();
  if (!Value::DecodeFrom(in, pos, &v) || !v.is_int64()) return false;
  out->csn = static_cast<CSN>(v.AsInt64());
  return Row::DecodeFrom(in, pos, &out->row);
}

void LogDeltaStore::AppendFile(const std::vector<DeltaEntry>& entries) {
  if (entries.empty()) return;
  DeltaFile f;
  f.count = entries.size();
  f.min_csn = entries.front().csn;
  f.max_csn = entries.front().csn;
  for (const auto& e : entries) {
    f.min_csn = std::min(f.min_csn, e.csn);
    f.max_csn = std::max(f.max_csn, e.csn);
    EncodeEntry(e, &f.blob);
  }
  MutexLock lk(&mu_);
  const uint64_t seq = file_seq_base_ + files_.size();
  files_.push_back(std::move(f));
  for (size_t i = 0; i < entries.size(); ++i)
    key_index_.Insert(entries[i].key, (seq << 32) | i);
}

void LogDeltaStore::AppendBatch(const std::vector<ChangeEvent>& events,
                                uint32_t table_id) {
  std::vector<DeltaEntry> entries;
  for (const auto& ev : events)
    if (ev.table_id == table_id) entries.push_back(FromEvent(ev));
  AppendFile(entries);
}

void LogDeltaStore::ScanVisible(
    CSN snapshot, const std::function<void(const DeltaEntry&)>& visit) const {
  MutexLock lk(&mu_);
  for (const auto& f : files_) {
    if (f.min_csn > snapshot) break;
    // Reads must decode the file — the cost the survey flags for this design.
    bytes_decoded_.fetch_add(f.blob.size(), std::memory_order_relaxed);
    size_t pos = 0;
    DeltaEntry e;
    while (DecodeEntry(f.blob, &pos, &e)) {
      if (e.csn > snapshot) return;
      visit(e);
    }
  }
}

size_t LogDeltaStore::EntryCount() const {
  MutexLock lk(&mu_);
  size_t n = 0;
  for (const auto& f : files_) n += f.count;
  return n;
}

size_t LogDeltaStore::MemoryBytes() const {
  MutexLock lk(&mu_);
  size_t b = key_index_.MemoryBytes();
  for (const auto& f : files_) b += f.blob.capacity() + sizeof(DeltaFile);
  return b;
}

bool LogDeltaStore::LookupLatest(Key key, DeltaEntry* out) const {
  MutexLock lk(&mu_);
  uint64_t payload;
  if (!key_index_.Lookup(key, &payload)) return false;
  const uint64_t seq = payload >> 32;
  const uint32_t idx = static_cast<uint32_t>(payload & 0xffffffffu);
  if (seq < file_seq_base_) return false;  // stale index entry: file merged
  const DeltaFile& f = files_[seq - file_seq_base_];
  bytes_decoded_.fetch_add(f.blob.size(), std::memory_order_relaxed);
  size_t pos = 0;
  DeltaEntry e;
  uint32_t i = 0;
  while (DecodeEntry(f.blob, &pos, &e)) {
    if (i == idx) {
      *out = std::move(e);
      return true;
    }
    ++i;
  }
  return false;
}

std::vector<DeltaEntry> LogDeltaStore::DrainUpTo(CSN csn) {
  MutexLock lk(&mu_);
  std::vector<DeltaEntry> out;
  while (!files_.empty() && files_.front().max_csn <= csn) {
    const DeltaFile& f = files_.front();
    size_t pos = 0;
    DeltaEntry e;
    while (DecodeEntry(f.blob, &pos, &e)) out.push_back(std::move(e));
    files_.pop_front();
    ++file_seq_base_;
  }
  return out;
}

size_t LogDeltaStore::num_files() const {
  MutexLock lk(&mu_);
  return files_.size();
}

}  // namespace htap
