#include "benchlib/driver.h"

#include <atomic>
#include <cstdio>
#include <thread>

namespace htap {
namespace bench {

std::string DriverReport::ToString() const {
  char buf[512];
  snprintf(buf, sizeof(buf),
           "%.2fs | txn/min %.0f (NewOrder/min %.0f, aborted %llu) | "
           "queries/h %.0f (avg %.2fms) | freshness lag avg %.2fms max %.2fms",
           seconds, tpm_total, tpmc,
           static_cast<unsigned long long>(txns_aborted), qph,
           avg_query_micros / 1000.0, avg_freshness_lag_micros / 1000.0,
           max_freshness_lag_micros / 1000.0);
  return buf;
}

namespace {

struct SharedCounters {
  std::atomic<uint64_t> txns{0}, new_orders{0}, aborts{0}, queries{0};
  std::atomic<uint64_t> query_micros{0};
  std::atomic<uint64_t> fresh_sum{0};
  std::atomic<uint64_t> fresh_max{0};
  std::atomic<uint64_t> fresh_samples{0};
};

void RecordFreshness(Database* db, bool fresh_scans, SharedCounters* c) {
  const FreshnessInfo f = db->Freshness("orderline");
  const uint64_t lag = static_cast<uint64_t>(
      fresh_scans ? f.fresh_time_lag_micros : f.time_lag_micros);
  c->fresh_sum.fetch_add(lag, std::memory_order_relaxed);
  c->fresh_samples.fetch_add(1, std::memory_order_relaxed);
  uint64_t cur = c->fresh_max.load(std::memory_order_relaxed);
  while (lag > cur &&
         !c->fresh_max.compare_exchange_weak(cur, lag,
                                             std::memory_order_relaxed)) {
  }
}

// Runs after every worker has been joined, so the counter reads are plain
// statistics reads — relaxed is sufficient (the joins provide the ordering).
DriverReport Finalize(const SharedCounters& c, double seconds) {
  DriverReport r;
  r.seconds = seconds;
  r.txns_committed = c.txns.load(std::memory_order_relaxed);
  r.new_orders = c.new_orders.load(std::memory_order_relaxed);
  r.txns_aborted = c.aborts.load(std::memory_order_relaxed);
  r.queries_completed = c.queries.load(std::memory_order_relaxed);
  r.tpm_total = static_cast<double>(r.txns_committed) / seconds * 60.0;
  r.tpmc = static_cast<double>(r.new_orders) / seconds * 60.0;
  r.qph = static_cast<double>(r.queries_completed) / seconds * 3600.0;
  r.avg_query_micros =
      r.queries_completed > 0
          ? static_cast<double>(c.query_micros.load(std::memory_order_relaxed)) /
                static_cast<double>(r.queries_completed)
          : 0;
  const uint64_t samples = c.fresh_samples.load(std::memory_order_relaxed);
  r.avg_freshness_lag_micros =
      samples > 0
          ? static_cast<double>(c.fresh_sum.load(std::memory_order_relaxed)) /
                static_cast<double>(samples)
          : 0;
  r.max_freshness_lag_micros =
      static_cast<double>(c.fresh_max.load(std::memory_order_relaxed));
  return r;
}

}  // namespace

DriverReport RunMixedWorkload(Database* db, const ChConfig& ch,
                              const DriverConfig& cfg) {
  SharedCounters counters;
  auto queries = ChQueries();
  for (auto& q : queries) q.plan.require_fresh = cfg.olap_require_fresh;

  const bool simulator_backed =
      db->architecture() == ArchitectureKind::kDistributedRowPlusColumnReplica;
  Stopwatch clock;

  if (simulator_backed) {
    // Single caller thread drives the simulation: interleave OLTP batches
    // with OLAP queries in proportion to the configured client counts.
    ChTransactions txns(db, ch, cfg.seed);
    size_t qi = 0;
    const int txn_batch = std::max(1, cfg.oltp_clients * 4);
    while (clock.ElapsedMicros() < cfg.duration_micros) {
      for (int i = 0; i < txn_batch; ++i) {
        if (txns.RunOne().ok())
          counters.txns.fetch_add(1, std::memory_order_relaxed);
        else
          counters.aborts.fetch_add(1, std::memory_order_relaxed);
      }
      counters.new_orders.store(txns.new_orders(), std::memory_order_relaxed);
      if (cfg.olap_clients > 0) {
        const Stopwatch qt;
        auto res = db->Query(queries[qi % queries.size()].plan);
        ++qi;
        if (res.ok()) {
          counters.queries.fetch_add(1, std::memory_order_relaxed);
          counters.query_micros.fetch_add(
              static_cast<uint64_t>(qt.ElapsedMicros()),
              std::memory_order_relaxed);
          RecordFreshness(db, cfg.olap_require_fresh, &counters);
        }
      }
    }
    return Finalize(counters, clock.ElapsedSeconds());
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < cfg.oltp_clients; ++t) {
    workers.emplace_back([&, t] {
      ChTransactions txns(db, ch, cfg.seed + static_cast<uint64_t>(t) * 7919);
      // order: acquire pairs with the main thread's release stop store.
      while (!stop.load(std::memory_order_acquire)) {
        if (txns.RunOne().ok()) {
          counters.txns.fetch_add(1, std::memory_order_relaxed);
        } else {
          counters.aborts.fetch_add(1, std::memory_order_relaxed);
        }
      }
      counters.new_orders.fetch_add(txns.new_orders(),
                                    std::memory_order_relaxed);
    });
  }
  for (int t = 0; t < cfg.olap_clients; ++t) {
    workers.emplace_back([&, t] {
      size_t qi = static_cast<size_t>(t);
      // order: acquire pairs with the main thread's release stop store.
      while (!stop.load(std::memory_order_acquire)) {
        const Stopwatch qt;
        auto res = db->Query(queries[qi % queries.size()].plan);
        ++qi;
        if (res.ok()) {
          counters.queries.fetch_add(1, std::memory_order_relaxed);
          counters.query_micros.fetch_add(
              static_cast<uint64_t>(qt.ElapsedMicros()),
              std::memory_order_relaxed);
          RecordFreshness(db, cfg.olap_require_fresh, &counters);
        }
        if (cfg.olap_think_micros > 0) {
          const Micros executed = qt.ElapsedMicros();
          if (executed < cfg.olap_think_micros)
            std::this_thread::sleep_for(std::chrono::microseconds(
                cfg.olap_think_micros - executed));
        }
      }
    });
  }

  while (clock.ElapsedMicros() < cfg.duration_micros)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  // order: release pairs with the workers' acquire stop loads so the flag
  // acts as a clean shutdown edge.
  stop.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  return Finalize(counters, clock.ElapsedSeconds());
}

}  // namespace bench
}  // namespace htap
