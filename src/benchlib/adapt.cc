#include "benchlib/adapt.h"

namespace htap {
namespace bench {

Status SetupAdapt(Database* db, const AdaptConfig& config) {
  HTAP_RETURN_NOT_OK(db->CreateTable(
      "adapt_narrow", Schema({{"id", Type::kInt64},
                              {"a", Type::kInt64},
                              {"b", Type::kInt64}})));
  std::vector<ColumnDef> wide_cols = {{"id", Type::kInt64}};
  for (int c = 0; c < config.wide_cols; ++c)
    wide_cols.emplace_back("p" + std::to_string(c), Type::kDouble);
  HTAP_RETURN_NOT_OK(db->CreateTable("adapt_wide", Schema(wide_cols)));

  Random rng(config.seed);
  constexpr size_t kBatch = 512;
  for (size_t i = 0; i < config.narrow_rows;) {
    auto txn = db->Begin();
    for (size_t j = 0; j < kBatch && i < config.narrow_rows; ++j, ++i) {
      HTAP_RETURN_NOT_OK(txn->Insert(
          "adapt_narrow",
          Row{Value(static_cast<int64_t>(i)),
              Value(static_cast<int64_t>(rng.Uniform(1000))),
              Value(static_cast<int64_t>(rng.Uniform(1000000)))}));
    }
    HTAP_RETURN_NOT_OK(txn->Commit());
  }
  for (size_t i = 0; i < config.wide_rows;) {
    auto txn = db->Begin();
    for (size_t j = 0; j < kBatch && i < config.wide_rows; ++j, ++i) {
      Row row;
      row.Append(Value(static_cast<int64_t>(i)));
      for (int c = 0; c < config.wide_cols; ++c)
        row.Append(Value(rng.NextDouble() * 1000.0));
      HTAP_RETURN_NOT_OK(txn->Insert("adapt_wide", row));
    }
    HTAP_RETURN_NOT_OK(txn->Commit());
  }
  return Status::OK();
}

QueryPlan WideScanPlan(const AdaptConfig& config, int cols_touched,
                       PathHint path) {
  QueryPlan plan;
  plan.table = "adapt_wide";
  plan.path = path;
  if (cols_touched < 1) cols_touched = 1;
  if (cols_touched > config.wide_cols) cols_touched = config.wide_cols;
  plan.where = Predicate::Gt(1, Value(0.0));  // keep nearly everything
  for (int c = 0; c < cols_touched; ++c)
    plan.aggs.push_back(AggSpec::Sum(1 + c, "sum_p" + std::to_string(c)));
  return plan;
}

Status NarrowPointUpdate(Database* db, const AdaptConfig& config,
                         Random* rng) {
  const int64_t id =
      static_cast<int64_t>(rng->Uniform(config.narrow_rows));
  auto txn = db->Begin();
  Row row;
  HTAP_RETURN_NOT_OK(txn->Get("adapt_narrow", id, &row));
  row.Set(1, Value(row.Get(1).AsInt64() + 1));
  row.Set(2, Value(static_cast<int64_t>(rng->Uniform(1000000))));
  HTAP_RETURN_NOT_OK(txn->Update("adapt_narrow", row));
  return txn->Commit();
}

}  // namespace bench
}  // namespace htap
