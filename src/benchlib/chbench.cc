#include "benchlib/chbench.h"

namespace htap {
namespace bench {

// Column layouts (keep in sync with CreateChTables).
namespace warehouse {
enum { kId = 0, kName, kState, kYtd };
}
namespace district {
enum { kKey = 0, kWId, kDId, kName, kYtd, kNextOId };
}
namespace customer {
enum { kKey = 0, kWId, kDId, kCId, kName, kState, kBalance, kYtdPayment,
       kPaymentCnt };
}
namespace item {
enum { kId = 0, kName, kPrice, kCategory };
}
namespace stock {
enum { kKey = 0, kWId, kIId, kQuantity, kYtd, kOrderCnt };
}
namespace orders {
enum { kKey = 0, kWId, kDId, kOId, kCKey, kEntryD, kCarrierId, kOlCnt };
}
namespace orderline {
enum { kKey = 0, kOKey, kWId, kDId, kOId, kNumber, kIId, kQuantity, kAmount,
       kDeliveryD };
}

Status CreateChTables(Database* db) {
  HTAP_RETURN_NOT_OK(db->CreateTable(
      "warehouse", Schema({{"w_id", Type::kInt64},
                           {"w_name", Type::kString},
                           {"w_state", Type::kString},
                           {"w_ytd", Type::kDouble}})));
  HTAP_RETURN_NOT_OK(db->CreateTable(
      "district", Schema({{"d_key", Type::kInt64},
                          {"d_w_id", Type::kInt64},
                          {"d_id", Type::kInt64},
                          {"d_name", Type::kString},
                          {"d_ytd", Type::kDouble},
                          {"d_next_o_id", Type::kInt64}})));
  HTAP_RETURN_NOT_OK(db->CreateTable(
      "customer", Schema({{"c_key", Type::kInt64},
                          {"c_w_id", Type::kInt64},
                          {"c_d_id", Type::kInt64},
                          {"c_id", Type::kInt64},
                          {"c_name", Type::kString},
                          {"c_state", Type::kString},
                          {"c_balance", Type::kDouble},
                          {"c_ytd_payment", Type::kDouble},
                          {"c_payment_cnt", Type::kInt64}})));
  HTAP_RETURN_NOT_OK(db->CreateTable(
      "item", Schema({{"i_id", Type::kInt64},
                      {"i_name", Type::kString},
                      {"i_price", Type::kDouble},
                      {"i_category", Type::kInt64}})));
  HTAP_RETURN_NOT_OK(db->CreateTable(
      "stock", Schema({{"s_key", Type::kInt64},
                       {"s_w_id", Type::kInt64},
                       {"s_i_id", Type::kInt64},
                       {"s_quantity", Type::kInt64},
                       {"s_ytd", Type::kInt64},
                       {"s_order_cnt", Type::kInt64}})));
  HTAP_RETURN_NOT_OK(db->CreateTable(
      "orders", Schema({{"o_key", Type::kInt64},
                        {"o_w_id", Type::kInt64},
                        {"o_d_id", Type::kInt64},
                        {"o_id", Type::kInt64},
                        {"o_c_key", Type::kInt64},
                        {"o_entry_d", Type::kInt64},
                        {"o_carrier_id", Type::kInt64},
                        {"o_ol_cnt", Type::kInt64}})));
  return db->CreateTable(
      "orderline", Schema({{"ol_key", Type::kInt64},
                           {"ol_o_key", Type::kInt64},
                           {"ol_w_id", Type::kInt64},
                           {"ol_d_id", Type::kInt64},
                           {"ol_o_id", Type::kInt64},
                           {"ol_number", Type::kInt64},
                           {"ol_i_id", Type::kInt64},
                           {"ol_quantity", Type::kInt64},
                           {"ol_amount", Type::kDouble},
                           {"ol_delivery_d", Type::kInt64}}));
}

namespace {

const char* kStates[] = {"CA", "NY", "TX", "WA", "IL", "MA", "FL", "PA"};

/// Commits `rows` into `table` in batches to bound transaction size.
Status BatchInsert(Database* db, const std::string& table,
                   std::vector<Row> rows) {
  constexpr size_t kBatch = 256;
  size_t i = 0;
  while (i < rows.size()) {
    auto txn = db->Begin();
    for (size_t j = 0; j < kBatch && i < rows.size(); ++j, ++i)
      HTAP_RETURN_NOT_OK(txn->Insert(table, rows[i]));
    HTAP_RETURN_NOT_OK(txn->Commit());
  }
  return Status::OK();
}

}  // namespace

Status LoadChData(Database* db, const ChConfig& cfg) {
  Random rng(cfg.seed);

  std::vector<Row> rows;
  for (int i = 1; i <= cfg.items; ++i)
    rows.push_back(Row{Value(static_cast<int64_t>(i)),
                       Value("item_" + std::to_string(i)),
                       Value(1.0 + rng.NextDouble() * 99.0),
                       Value(static_cast<int64_t>(rng.Uniform(10)))});
  HTAP_RETURN_NOT_OK(BatchInsert(db, "item", std::move(rows)));

  rows.clear();
  for (int w = 1; w <= cfg.warehouses; ++w)
    rows.push_back(Row{Value(static_cast<int64_t>(w)),
                       Value("warehouse_" + std::to_string(w)),
                       Value(std::string(kStates[w % 8])),
                       Value(0.0)});
  HTAP_RETURN_NOT_OK(BatchInsert(db, "warehouse", std::move(rows)));

  rows.clear();
  for (int w = 1; w <= cfg.warehouses; ++w)
    for (int d = 1; d <= cfg.districts_per_warehouse; ++d)
      rows.push_back(Row{Value(DistrictKey(w, d)),
                         Value(static_cast<int64_t>(w)),
                         Value(static_cast<int64_t>(d)),
                         Value("district_" + std::to_string(d)),
                         Value(0.0),
                         Value(static_cast<int64_t>(
                             cfg.initial_orders_per_district + 1))});
  HTAP_RETURN_NOT_OK(BatchInsert(db, "district", std::move(rows)));

  rows.clear();
  for (int w = 1; w <= cfg.warehouses; ++w)
    for (int d = 1; d <= cfg.districts_per_warehouse; ++d)
      for (int c = 1; c <= cfg.customers_per_district; ++c)
        rows.push_back(Row{Value(CustomerKey(w, d, c)),
                           Value(static_cast<int64_t>(w)),
                           Value(static_cast<int64_t>(d)),
                           Value(static_cast<int64_t>(c)),
                           Value("customer_" + std::to_string(c)),
                           Value(std::string(kStates[rng.Uniform(8)])),
                           Value(-10.0),
                           Value(10.0),
                           Value(static_cast<int64_t>(1))});
  HTAP_RETURN_NOT_OK(BatchInsert(db, "customer", std::move(rows)));

  rows.clear();
  for (int w = 1; w <= cfg.warehouses; ++w)
    for (int i = 1; i <= cfg.items; ++i)
      rows.push_back(Row{Value(StockKey(w, i)),
                         Value(static_cast<int64_t>(w)),
                         Value(static_cast<int64_t>(i)),
                         Value(static_cast<int64_t>(10 + rng.Uniform(91))),
                         Value(static_cast<int64_t>(0)),
                         Value(static_cast<int64_t>(0))});
  HTAP_RETURN_NOT_OK(BatchInsert(db, "stock", std::move(rows)));

  std::vector<Row> order_rows, ol_rows;
  int64_t entry_clock = 1;
  for (int w = 1; w <= cfg.warehouses; ++w) {
    for (int d = 1; d <= cfg.districts_per_warehouse; ++d) {
      for (int o = 1; o <= cfg.initial_orders_per_district; ++o) {
        const int64_t ol_cnt = 5 + static_cast<int64_t>(rng.Uniform(11));
        const int64_t c = 1 + static_cast<int64_t>(
                                  rng.Uniform(static_cast<uint64_t>(
                                      cfg.customers_per_district)));
        order_rows.push_back(Row{Value(OrderKey(w, d, o)),
                                 Value(static_cast<int64_t>(w)),
                                 Value(static_cast<int64_t>(d)),
                                 Value(static_cast<int64_t>(o)),
                                 Value(CustomerKey(w, d, c)),
                                 Value(entry_clock++),
                                 Value(static_cast<int64_t>(rng.Uniform(10))),
                                 Value(ol_cnt)});
        for (int64_t l = 1; l <= ol_cnt; ++l) {
          const int64_t i =
              1 + static_cast<int64_t>(rng.Uniform(static_cast<uint64_t>(cfg.items)));
          const int64_t qty = 1 + static_cast<int64_t>(rng.Uniform(10));
          ol_rows.push_back(Row{Value(OrderLineKey(w, d, o, l)),
                                Value(OrderKey(w, d, o)),
                                Value(static_cast<int64_t>(w)),
                                Value(static_cast<int64_t>(d)),
                                Value(static_cast<int64_t>(o)),
                                Value(l),
                                Value(i),
                                Value(qty),
                                Value(static_cast<double>(qty) *
                                      (1.0 + rng.NextDouble() * 99.0)),
                                Value(entry_clock)});
        }
      }
    }
  }
  HTAP_RETURN_NOT_OK(BatchInsert(db, "orders", std::move(order_rows)));
  return BatchInsert(db, "orderline", std::move(ol_rows));
}

// ---------------------------------------------------------------------------
// Transactions
// ---------------------------------------------------------------------------

ChTransactions::ChTransactions(Database* db, const ChConfig& config,
                               uint64_t seed)
    : db_(db), config_(config), rng_(seed) {
  clock_ = 1000000 + static_cast<int64_t>(seed % 1000) * 100000;
}

Status ChTransactions::RunOne() {
  ++total_;
  const uint64_t pick = rng_.Uniform(100);
  Status st;
  if (pick < 45) {
    st = NewOrder();
    if (st.ok()) ++new_orders_;
  } else if (pick < 88) {
    st = Payment();
  } else if (pick < 92) {
    st = Delivery();
  } else {
    st = OrderStatus();
  }
  if (!st.ok()) ++aborts_;
  return st;
}

Status ChTransactions::NewOrder() {
  const int64_t w = 1 + static_cast<int64_t>(
                            rng_.Uniform(static_cast<uint64_t>(config_.warehouses)));
  const int64_t d = 1 + static_cast<int64_t>(rng_.Uniform(
                            static_cast<uint64_t>(config_.districts_per_warehouse)));
  const int64_t c = 1 + static_cast<int64_t>(rng_.Uniform(
                            static_cast<uint64_t>(config_.customers_per_district)));
  auto txn = db_->Begin();

  Row dist;
  HTAP_RETURN_NOT_OK(txn->Get("district", DistrictKey(w, d), &dist));
  const int64_t o_id = dist.Get(district::kNextOId).AsInt64();
  dist.Set(district::kNextOId, Value(o_id + 1));
  HTAP_RETURN_NOT_OK(txn->Update("district", dist));

  const int64_t ol_cnt = 5 + static_cast<int64_t>(rng_.Uniform(11));
  HTAP_RETURN_NOT_OK(txn->Insert(
      "orders", Row{Value(OrderKey(w, d, o_id)), Value(w), Value(d),
                    Value(o_id), Value(CustomerKey(w, d, c)), Value(++clock_),
                    Value(static_cast<int64_t>(0)), Value(ol_cnt)}));

  for (int64_t l = 1; l <= ol_cnt; ++l) {
    const int64_t i = rng_.NURand(8191, 1, config_.items);
    Row item_row;
    HTAP_RETURN_NOT_OK(txn->Get("item", i, &item_row));
    const double price = item_row.Get(item::kPrice).AsDouble();

    Row stock_row;
    HTAP_RETURN_NOT_OK(txn->Get("stock", StockKey(w, i), &stock_row));
    const int64_t qty = 1 + static_cast<int64_t>(rng_.Uniform(10));
    int64_t s_qty = stock_row.Get(stock::kQuantity).AsInt64();
    s_qty = s_qty - qty >= 10 ? s_qty - qty : s_qty - qty + 91;
    stock_row.Set(stock::kQuantity, Value(s_qty));
    stock_row.Set(stock::kYtd,
                  Value(stock_row.Get(stock::kYtd).AsInt64() + qty));
    stock_row.Set(stock::kOrderCnt,
                  Value(stock_row.Get(stock::kOrderCnt).AsInt64() + 1));
    HTAP_RETURN_NOT_OK(txn->Update("stock", stock_row));

    HTAP_RETURN_NOT_OK(txn->Insert(
        "orderline",
        Row{Value(OrderLineKey(w, d, o_id, l)), Value(OrderKey(w, d, o_id)),
            Value(w), Value(d), Value(o_id), Value(l), Value(i), Value(qty),
            Value(static_cast<double>(qty) * price),
            Value(static_cast<int64_t>(0))}));
  }
  return txn->Commit();
}

Status ChTransactions::Payment() {
  const int64_t w = 1 + static_cast<int64_t>(
                            rng_.Uniform(static_cast<uint64_t>(config_.warehouses)));
  const int64_t d = 1 + static_cast<int64_t>(rng_.Uniform(
                            static_cast<uint64_t>(config_.districts_per_warehouse)));
  const int64_t c = rng_.NURand(1023, 1, config_.customers_per_district);
  const double amount = 1.0 + rng_.NextDouble() * 4999.0;
  auto txn = db_->Begin();

  Row wh;
  HTAP_RETURN_NOT_OK(txn->Get("warehouse", w, &wh));
  wh.Set(warehouse::kYtd, Value(wh.Get(warehouse::kYtd).AsDouble() + amount));
  HTAP_RETURN_NOT_OK(txn->Update("warehouse", wh));

  Row dist;
  HTAP_RETURN_NOT_OK(txn->Get("district", DistrictKey(w, d), &dist));
  dist.Set(district::kYtd, Value(dist.Get(district::kYtd).AsDouble() + amount));
  HTAP_RETURN_NOT_OK(txn->Update("district", dist));

  Row cust;
  HTAP_RETURN_NOT_OK(txn->Get("customer", CustomerKey(w, d, c), &cust));
  cust.Set(customer::kBalance,
           Value(cust.Get(customer::kBalance).AsDouble() - amount));
  cust.Set(customer::kYtdPayment,
           Value(cust.Get(customer::kYtdPayment).AsDouble() + amount));
  cust.Set(customer::kPaymentCnt,
           Value(cust.Get(customer::kPaymentCnt).AsInt64() + 1));
  HTAP_RETURN_NOT_OK(txn->Update("customer", cust));
  return txn->Commit();
}

Status ChTransactions::Delivery() {
  const int64_t w = 1 + static_cast<int64_t>(
                            rng_.Uniform(static_cast<uint64_t>(config_.warehouses)));
  const int64_t d = 1 + static_cast<int64_t>(rng_.Uniform(
                            static_cast<uint64_t>(config_.districts_per_warehouse)));
  auto txn = db_->Begin();
  Row dist;
  HTAP_RETURN_NOT_OK(txn->Get("district", DistrictKey(w, d), &dist));
  const int64_t next = dist.Get(district::kNextOId).AsInt64();
  if (next <= 1) return txn->Commit();
  const int64_t o_id =
      1 + static_cast<int64_t>(rng_.Uniform(static_cast<uint64_t>(next - 1)));

  Row order;
  Status st = txn->Get("orders", OrderKey(w, d, o_id), &order);
  if (!st.ok()) return txn->Commit();  // already pruned / not found: no-op
  order.Set(orders::kCarrierId,
            Value(1 + static_cast<int64_t>(rng_.Uniform(10))));
  HTAP_RETURN_NOT_OK(txn->Update("orders", order));

  const int64_t ol_cnt = order.Get(orders::kOlCnt).AsInt64();
  for (int64_t l = 1; l <= ol_cnt; ++l) {
    Row ol;
    st = txn->Get("orderline", OrderLineKey(w, d, o_id, l), &ol);
    if (!st.ok()) continue;
    ol.Set(orderline::kDeliveryD, Value(++clock_));
    HTAP_RETURN_NOT_OK(txn->Update("orderline", ol));
  }
  return txn->Commit();
}

Status ChTransactions::OrderStatus() {
  const int64_t w = 1 + static_cast<int64_t>(
                            rng_.Uniform(static_cast<uint64_t>(config_.warehouses)));
  const int64_t d = 1 + static_cast<int64_t>(rng_.Uniform(
                            static_cast<uint64_t>(config_.districts_per_warehouse)));
  const int64_t c = 1 + static_cast<int64_t>(rng_.Uniform(
                            static_cast<uint64_t>(config_.customers_per_district)));
  auto txn = db_->Begin();
  Row cust;
  HTAP_RETURN_NOT_OK(txn->Get("customer", CustomerKey(w, d, c), &cust));
  Row dist;
  HTAP_RETURN_NOT_OK(txn->Get("district", DistrictKey(w, d), &dist));
  const int64_t last = dist.Get(district::kNextOId).AsInt64() - 1;
  Row order;
  txn->Get("orders", OrderKey(w, d, last), &order);  // may be absent
  return txn->Commit();
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

std::vector<ChQuery> ChQueries() {
  std::vector<ChQuery> qs;
  const size_t ol_cols = 10;   // orderline column count
  const size_t o_cols = 8;     // orders column count
  const size_t s_cols = 6;     // stock column count

  {  // Q1: pricing summary by line number.
    ChQuery q;
    q.name = "Q1";
    q.description = "orderline summary grouped by ol_number";
    q.plan.table = "orderline";
    q.plan.group_by = {orderline::kNumber};
    q.plan.aggs = {AggSpec::Count("count_order"),
                   AggSpec::Sum(orderline::kQuantity, "sum_qty"),
                   AggSpec::Sum(orderline::kAmount, "sum_amount"),
                   AggSpec::Avg(orderline::kAmount, "avg_amount")};
    q.plan.order_by = 0;
    qs.push_back(std::move(q));
  }
  {  // Q6: forecast revenue change.
    ChQuery q;
    q.name = "Q6";
    q.description = "revenue from mid-quantity lines";
    q.plan.table = "orderline";
    q.plan.where = Predicate::And({Predicate::Between(
                                       orderline::kQuantity, Value(int64_t{2}),
                                       Value(int64_t{8})),
                                   Predicate::Gt(orderline::kAmount,
                                                 Value(50.0))});
    q.plan.aggs = {AggSpec::Sum(orderline::kAmount, "revenue")};
    qs.push_back(std::move(q));
  }
  {  // Q3-ish: district revenue from recent orders (join).
    ChQuery q;
    q.name = "Q3";
    q.description = "revenue per district via orderline JOIN orders";
    q.plan.table = "orderline";
    q.plan.has_join = true;
    q.plan.join_table = "orders";
    q.plan.left_col = orderline::kOKey;
    q.plan.right_col = orders::kKey;
    q.plan.group_by = {static_cast<int>(ol_cols) + orders::kDId};
    q.plan.aggs = {AggSpec::Sum(orderline::kAmount, "revenue")};
    q.plan.order_by = 1;
    q.plan.order_desc = true;
    // Full CH shape adds the customer dimension (3-table chain).
    q.sql =
        "SELECT o_d_id, SUM(ol_amount) AS revenue FROM orderline "
        "JOIN orders ON ol_o_key = o_key "
        "JOIN customer ON o_c_key = c_key "
        "WHERE c_balance < 0 GROUP BY o_d_id ORDER BY revenue DESC";
    qs.push_back(std::move(q));
  }
  {  // Q4-ish: order-size distribution over an entry window.
    ChQuery q;
    q.name = "Q4";
    q.description = "order count by ol_cnt for an entry-date window";
    q.plan.table = "orders";
    q.plan.where = Predicate::Gt(orders::kEntryD, Value(int64_t{100}));
    q.plan.group_by = {orders::kOlCnt};
    q.plan.aggs = {AggSpec::Count("order_count")};
    q.plan.order_by = 0;
    qs.push_back(std::move(q));
  }
  {  // Q5-ish: sold volume per item category (stock JOIN item).
    ChQuery q;
    q.name = "Q5";
    q.description = "stock ytd volume per item category";
    q.plan.table = "stock";
    q.plan.has_join = true;
    q.plan.join_table = "item";
    q.plan.left_col = stock::kIId;
    q.plan.right_col = item::kId;
    q.plan.group_by = {static_cast<int>(s_cols) + item::kCategory};
    q.plan.aggs = {AggSpec::Sum(stock::kYtd, "volume")};
    q.plan.order_by = 1;
    q.plan.order_desc = true;
    // Full CH shape also walks stock back to its warehouse (3-table chain).
    q.sql =
        "SELECT i_category, SUM(s_ytd) AS volume FROM stock "
        "JOIN item ON s_i_id = i_id "
        "JOIN warehouse ON s_w_id = w_id "
        "GROUP BY i_category ORDER BY volume DESC";
    qs.push_back(std::move(q));
  }
  {  // Q12-ish: carrier distribution.
    ChQuery q;
    q.name = "Q12";
    q.description = "orders and avg size per carrier";
    q.plan.table = "orders";
    q.plan.group_by = {orders::kCarrierId};
    q.plan.aggs = {AggSpec::Count("order_count"),
                   AggSpec::Avg(orders::kOlCnt, "avg_lines")};
    q.plan.order_by = 0;
    qs.push_back(std::move(q));
  }
  {  // Q14-ish: revenue share of premium items (orderline JOIN item).
    ChQuery q;
    q.name = "Q14";
    q.description = "revenue by category for premium items";
    q.plan.table = "orderline";
    q.plan.has_join = true;
    q.plan.join_table = "item";
    q.plan.left_col = orderline::kIId;
    q.plan.right_col = item::kId;
    q.plan.join_where = Predicate::Gt(item::kPrice, Value(50.0));
    q.plan.group_by = {static_cast<int>(ol_cols) + item::kCategory};
    q.plan.aggs = {AggSpec::Sum(orderline::kAmount, "revenue")};
    // Full CH shape ties lines back to their order header (3-table chain).
    q.sql =
        "SELECT i_category, SUM(ol_amount) AS revenue FROM orderline "
        "JOIN item ON ol_i_id = i_id "
        "JOIN orders ON ol_o_key = o_key "
        "WHERE i_price > 50 GROUP BY i_category ORDER BY revenue DESC";
    qs.push_back(std::move(q));
  }
  {  // Q18-ish: top customers by ordered volume.
    ChQuery q;
    q.name = "Q18";
    q.description = "top-10 customers by total ordered lines";
    q.plan.table = "orders";
    q.plan.group_by = {orders::kCKey};
    q.plan.aggs = {AggSpec::Sum(orders::kOlCnt, "total_lines"),
                   AggSpec::Count("order_count")};
    q.plan.order_by = 1;
    q.plan.order_desc = true;
    q.plan.limit = 10;
    qs.push_back(std::move(q));
  }
  {  // Q19-ish: revenue from mid-priced items at given quantities.
    ChQuery q;
    q.name = "Q19";
    q.description = "revenue from quantity band joined to item price band";
    q.plan.table = "orderline";
    q.plan.has_join = true;
    q.plan.join_table = "item";
    q.plan.left_col = orderline::kIId;
    q.plan.right_col = item::kId;
    q.plan.where = Predicate::Between(orderline::kQuantity, Value(int64_t{3}),
                                      Value(int64_t{7}));
    q.plan.join_where =
        Predicate::Between(item::kPrice, Value(20.0), Value(80.0));
    q.plan.aggs = {AggSpec::Sum(orderline::kAmount, "revenue")};
    qs.push_back(std::move(q));
  }
  {  // Stock-level (TPC-C's analytical flavor).
    ChQuery q;
    q.name = "QSL";
    q.description = "low-stock item count";
    q.plan.table = "stock";
    q.plan.where = Predicate::Lt(stock::kQuantity, Value(int64_t{15}));
    q.plan.aggs = {AggSpec::Count("low_stock")};
    qs.push_back(std::move(q));
  }
  {  // Customer balance by state.
    ChQuery q;
    q.name = "QCB";
    q.description = "customer count and avg balance per state";
    q.plan.table = "customer";
    q.plan.group_by = {customer::kState};
    q.plan.aggs = {AggSpec::Count("customers"),
                   AggSpec::Avg(customer::kBalance, "avg_balance")};
    q.plan.order_by = 0;
    qs.push_back(std::move(q));
  }
  {  // Orders per district (freshness-sensitive: grows with NewOrders).
    ChQuery q;
    q.name = "QOD";
    q.description = "order count per district";
    q.plan.table = "orders";
    q.plan.group_by = {orders::kDId};
    q.plan.aggs = {AggSpec::Count("order_count")};
    q.plan.order_by = 1;
    q.plan.order_desc = true;
    qs.push_back(std::move(q));
  }
  (void)o_cols;
  return qs;
}

}  // namespace bench
}  // namespace htap
