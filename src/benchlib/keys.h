// Composite-key packing for the CH-benCHmark schema: htapdb primary keys
// are single INT64s, so TPC-C's composite business keys are bit-packed.

#ifndef HTAP_BENCHLIB_KEYS_H_
#define HTAP_BENCHLIB_KEYS_H_

#include "types/row.h"

namespace htap {
namespace bench {

// Field widths: warehouse 16 bits, district 8, customer/order 24, line 8.
inline Key DistrictKey(int64_t w, int64_t d) { return (w << 8) | d; }
inline Key CustomerKey(int64_t w, int64_t d, int64_t c) {
  return (w << 32) | (d << 24) | c;
}
inline Key OrderKey(int64_t w, int64_t d, int64_t o) {
  return (w << 32) | (d << 24) | o;
}
inline Key OrderLineKey(int64_t w, int64_t d, int64_t o, int64_t line) {
  return (w << 40) | (d << 32) | (o << 8) | line;
}
inline Key StockKey(int64_t w, int64_t i) { return (w << 24) | i; }

}  // namespace bench
}  // namespace htap

#endif  // HTAP_BENCHLIB_KEYS_H_
