// Mixed-workload driver: concurrent OLTP clients + OLAP clients against one
// Database, with the CH-benCHmark execution rule (both classes run
// continuously for a fixed duration) and its metrics (tpmC-like NewOrder
// rate, QphH-like query rate), plus freshness probes.

#ifndef HTAP_BENCHLIB_DRIVER_H_
#define HTAP_BENCHLIB_DRIVER_H_

#include "benchlib/chbench.h"
#include "common/clock.h"

namespace htap {
namespace bench {

struct DriverConfig {
  int oltp_clients = 2;
  int olap_clients = 1;
  Micros duration_micros = 1'000'000;
  bool olap_require_fresh = true;  // delta-union vs stale column-only scans
  /// Think time between analytical queries (0 = closed loop). A fixed
  /// OLAP arrival rate isolates merge-cadence effects from query-cost
  /// effects in the trade-off sweeps.
  Micros olap_think_micros = 0;
  uint64_t seed = 99;
};

struct DriverReport {
  double seconds = 0;
  uint64_t txns_committed = 0;
  uint64_t new_orders = 0;
  uint64_t txns_aborted = 0;
  uint64_t queries_completed = 0;
  double tpm_total = 0;     // committed transactions per minute
  double tpmc = 0;          // NewOrder transactions per minute
  double qph = 0;           // analytical queries per hour
  double avg_query_micros = 0;
  double avg_freshness_lag_micros = 0;  // sampled after each query
  double max_freshness_lag_micros = 0;

  std::string ToString() const;
};

/// Runs the mixed workload. Multi-threaded for the local architectures;
/// automatically degrades to an interleaved single-threaded loop for the
/// simulator-backed distributed architecture.
DriverReport RunMixedWorkload(Database* db, const ChConfig& ch,
                              const DriverConfig& cfg);

}  // namespace bench
}  // namespace htap

#endif  // HTAP_BENCHLIB_DRIVER_H_
