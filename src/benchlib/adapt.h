// ADAPT-style micro-benchmark tables (Arulraj et al., SIGMOD'16): one
// narrow table for point-op stress and one wide table for scan-projection
// sweeps — used by the QO and AP technique benches to vary the fraction of
// columns a query touches.

#ifndef HTAP_BENCHLIB_ADAPT_H_
#define HTAP_BENCHLIB_ADAPT_H_

#include "common/random.h"
#include "core/database.h"

namespace htap {
namespace bench {

struct AdaptConfig {
  size_t narrow_rows = 10000;
  size_t wide_rows = 5000;
  int wide_cols = 32;  // payload columns in the wide table (plus the key)
  uint64_t seed = 7;
};

/// Creates `adapt_narrow` (key + 2 ints) and `adapt_wide`
/// (key + wide_cols doubles) and loads them.
Status SetupAdapt(Database* db, const AdaptConfig& config);

/// A scan + aggregate touching the first `cols_touched` payload columns of
/// the wide table.
QueryPlan WideScanPlan(const AdaptConfig& config, int cols_touched,
                       PathHint path = PathHint::kAuto);

/// A point-update transaction against the narrow table.
Status NarrowPointUpdate(Database* db, const AdaptConfig& config, Random* rng);

}  // namespace bench
}  // namespace htap

#endif  // HTAP_BENCHLIB_ADAPT_H_
