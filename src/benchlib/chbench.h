// CH-benCHmark-style mixed workload (Cole et al., DBTest'11), rebuilt for
// htapdb: the TPC-C transactional schema and transaction profiles plus a
// suite of CH-style analytical queries over the same tables. This is the
// workload behind bench_table1_architectures and bench_chbench.

#ifndef HTAP_BENCHLIB_CHBENCH_H_
#define HTAP_BENCHLIB_CHBENCH_H_

#include <string>
#include <vector>

#include "benchlib/keys.h"
#include "common/random.h"
#include "core/database.h"

namespace htap {
namespace bench {

/// Scale parameters (reduced-but-faithful TPC-C shapes).
struct ChConfig {
  int warehouses = 2;
  int districts_per_warehouse = 10;
  int customers_per_district = 100;
  int items = 1000;
  int initial_orders_per_district = 30;
  uint64_t seed = 12345;
};

/// Creates the 7 CH tables on a database.
Status CreateChTables(Database* db);

/// Loads initial data per `config`.
Status LoadChData(Database* db, const ChConfig& config);

/// One client's transaction generator. Not thread-safe; one per worker.
class ChTransactions {
 public:
  ChTransactions(Database* db, const ChConfig& config, uint64_t seed);

  /// TPC-C-style mix: ~45% NewOrder, ~43% Payment, ~4% Delivery,
  /// ~8% OrderStatus. Returns the commit status of the transaction.
  Status RunOne();

  Status NewOrder();
  Status Payment();
  Status Delivery();
  Status OrderStatus();

  uint64_t new_orders() const { return new_orders_; }
  uint64_t total() const { return total_; }
  uint64_t aborts() const { return aborts_; }

 private:
  Database* db_;
  ChConfig config_;
  Random rng_;
  uint64_t new_orders_ = 0, total_ = 0, aborts_ = 0;
  int64_t clock_ = 0;  // synthetic order entry timestamp
};

/// One CH-style analytical query: name + plan builder. Queries whose CH
/// original touches three or more tables additionally carry a `sql` text
/// with the full multi-join chain; the `plan` stays the single-join
/// adaptation so existing per-plan drivers keep running unchanged.
struct ChQuery {
  std::string name;
  std::string description;
  QueryPlan plan;
  std::string sql;  // empty when the plan form is the full query
};

/// The 12 CH-style queries (plans single-join; Q3/Q5/Q14 also in SQL with
/// their multi-join chains; see DESIGN.md).
std::vector<ChQuery> ChQueries();

}  // namespace bench
}  // namespace htap

#endif  // HTAP_BENCHLIB_CHBENCH_H_
