// In-memory B+-tree mapping int64 keys to 64-bit payloads.
//
// Used as (1) the primary-key index of the MVCC row store (payload = pointer
// to the version chain), (2) the key index over TiDB-style log-delta files
// (payload = offset of the latest delta entry), and (3) secondary indexes.
//
// Concurrency: optimistic latch coupling (OLC, DESIGN.md §15). Every node
// carries a version word (obsolete bit | lock bit | counter). Readers take
// no latches: they read a node's stable version, read its fields, and
// validate that the version did not change before trusting what they read —
// restarting from the root otherwise. Writers CAS the lock bit into the
// version of only the node(s) they modify (leaf for plain inserts/erases;
// parent+child for splits) and never block on a latch: a failed CAS means a
// concurrent modification, so they release everything and restart. Structure
// shrinkage (leaf merges/borrows, root collapse) is serialized by `smo_mu_`
// (rank kBtree) — the one blocking path, taken only after an erase leaves a
// leaf underfull. Unlinked nodes are retired through the global EpochManager
// (common/ebr.h) so frees never race in-flight optimistic readers.
//
// All node fields that can change after publication are std::atomic, so the
// seqlock-style read/validate protocol is also race-free under TSan.

#ifndef HTAP_INDEX_BTREE_H_
#define HTAP_INDEX_BTREE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/status.h"
#include "types/row.h"

namespace htap {

/// B+-tree with configurable fanout. Keys are unique; Insert overwrites.
/// All public operations are safe to call from any number of threads.
class BTree {
 public:
  /// `order`: max children of an internal node (max keys = order-1).
  explicit BTree(int order = 64);
  ~BTree();

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  /// Inserts or overwrites. Returns true if the key was new.
  bool Insert(Key key, uint64_t payload);

  /// Removes the key. Returns true if it existed.
  bool Erase(Key key);

  /// Point lookup.
  bool Lookup(Key key, uint64_t* payload) const;

  /// Visits entries with lo <= key <= hi in order; stop early by returning
  /// false from the callback. Entries are visited from a validated snapshot
  /// of each leaf, so a scan never sees a torn node, but entries inserted or
  /// erased while the scan is in flight may or may not be reflected.
  void Scan(Key lo, Key hi,
            const std::function<bool(Key, uint64_t)>& visit) const;

  /// Visits all entries in order.
  void ScanAll(const std::function<bool(Key, uint64_t)>& visit) const;

  // order: acquire pairs with the release bumps inside Insert/Erase so a
  // thread that observes the count also sees the tree mutation behind it.
  size_t size() const { return size_.load(std::memory_order_acquire); }
  bool empty() const { return size() == 0; }
  int height() const { return height_.load(std::memory_order_acquire); }  // order: ^

  /// Approximate heap footprint in bytes.
  size_t MemoryBytes() const;

 private:
  struct Node;

  Node* NewNode(bool leaf);
  void RetireNode(Node* node);
  void FreeSubtree(Node* node);

  /// Optimistically walks from the root to the leaf that covers `key`.
  /// On success `*leaf`/`*version` hold the leaf and the version it was
  /// validated against. Returns false if a concurrent writer forced a
  /// restart (caller loops). Never takes latches.
  bool DescendToLeaf(Key key, Node** leaf, uint64_t* version) const;

  /// Splits the full root (leaf or internal) under its latch, growing the
  /// tree by one level. Caller restarts regardless of the outcome.
  void SplitRoot(Node* root, uint64_t root_version);

  /// Splits latched full `node`, returning the new right sibling (fully
  /// initialized but not yet linked into any parent) and the separator key.
  Node* SplitLockedNode(Node* node, Key* sep);

  /// Splits full `child` (the `idx`-th child of `parent`); both must be
  /// latched by the caller. Unlatches both before returning.
  void SplitChild(Node* parent, int idx, Node* child);

  /// Repairs an underfull leaf reached by `key`: merge it with an adjacent
  /// sibling under the same parent, then collapse empty root levels.
  /// Serialized by smo_mu_; latches the affected parent/leaf pair. Borrowing
  /// is intentionally omitted — moving entries between two live leaves
  /// without obsoleting either would let a concurrent latch-free scan skip
  /// the moved entry; merges obsolete the vacated node, forcing optimistic
  /// readers to restart (DESIGN.md §15).
  void RepairUnderflow(Key key);

  /// Merge step on a latched (parent, leaf) pair; unlatches both.
  void RepairLeafLocked(Node* parent, int idx, Node* leaf) REQUIRES(smo_mu_);

  /// Collapses root levels whose internal node has no separator left.
  void CollapseRoot() REQUIRES(smo_mu_);

  const int order_;      // capacity: a node holds at most order_-1 keys
  const int min_keys_;   // leaves below this (non-root) trigger a merge try

  std::atomic<Node*> root_;
  std::atomic<size_t> size_{0};
  std::atomic<int> height_{1};
  std::atomic<size_t> node_count_{1};

  /// Serializes structure-shrinking modifications (leaf borrow/merge, root
  /// collapse). Insert/lookup/scan never touch it.
  mutable Mutex smo_mu_{LockRank::kBtree, "btree-smo"};
};

}  // namespace htap

#endif  // HTAP_INDEX_BTREE_H_
