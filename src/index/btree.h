// In-memory B+-tree mapping int64 keys to 64-bit payloads.
//
// Used as (1) the primary-key index of the MVCC row store (payload = pointer
// to the version chain), (2) the key index over TiDB-style log-delta files
// (payload = offset of the latest delta entry), and (3) secondary indexes.
//
// Concurrency: one readers/writer latch for the whole tree. Fine-grained
// latch coupling is deliberately out of scope — the survey's claims under
// test concern architecture-level behaviour, not index microcontention.

#ifndef HTAP_INDEX_BTREE_H_
#define HTAP_INDEX_BTREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/latch.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/status.h"
#include "types/row.h"

namespace htap {

/// B+-tree with configurable fanout. Keys are unique; Insert overwrites.
class BTree {
 public:
  /// `order`: max children of an internal node (max keys = order-1).
  explicit BTree(int order = 64);
  ~BTree();

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  /// Inserts or overwrites. Returns true if the key was new.
  bool Insert(Key key, uint64_t payload);

  /// Removes the key. Returns true if it existed.
  bool Erase(Key key);

  /// Point lookup.
  bool Lookup(Key key, uint64_t* payload) const;

  /// Visits entries with lo <= key <= hi in order; stop early by returning
  /// false from the callback.
  void Scan(Key lo, Key hi,
            const std::function<bool(Key, uint64_t)>& visit) const;

  /// Visits all entries in order.
  void ScanAll(const std::function<bool(Key, uint64_t)>& visit) const;

  size_t size() const;
  bool empty() const { return size() == 0; }
  int height() const;

  /// Approximate heap footprint in bytes.
  size_t MemoryBytes() const;

 private:
  struct Node;

  Node* FindLeaf(Key key) const REQUIRES_SHARED(latch_);
  void InsertIntoParent(Node* left, Key sep, Node* right) REQUIRES(latch_);
  void RebalanceAfterErase(Node* node) REQUIRES(latch_);
  void FreeSubtree(Node* node) REQUIRES(latch_);

  const int order_;
  const int min_keys_;
  Node* root_ GUARDED_BY(latch_);
  size_t size_ GUARDED_BY(latch_) = 0;
  mutable RWLatch latch_{LockRank::kBtree, "btree"};
};

}  // namespace htap

#endif  // HTAP_INDEX_BTREE_H_
