#include "index/btree.h"

#include <cassert>
#include <limits>
#include <thread>
#include <utility>

#include "common/ebr.h"

namespace htap {

// Node layout for optimistic latch coupling. Every field that can change
// after the node is published is std::atomic: readers access them without
// latches and rely on version validation to discard torn states, and the
// all-atomic layout keeps the seqlock protocol race-free under TSan.
//
// `vals` doubles as the payload array (leaves, parallel to keys) and the
// child-pointer array (internal nodes, count+1 entries). Capacity is fixed
// at construction (order_ keys / order_+1 vals) so the arrays never move.
struct BTree::Node {
  static constexpr uint64_t kObsoleteBit = 1;  // unlinked; readers restart
  static constexpr uint64_t kLockedBit = 2;    // writer owns the node
  static constexpr uint64_t kVersionInc = 4;   // counter step per unlock

  Node(bool is_leaf, int key_capacity)
      : leaf(is_leaf),
        keys(new std::atomic<Key>[static_cast<size_t>(key_capacity)]),
        vals(new std::atomic<uint64_t>[static_cast<size_t>(key_capacity) + 1]) {
    // Zero every slot: a torn reader may index past `count`, and a stale
    // slot must then hold nullptr/0, never uninitialized bits.
    for (int i = 0; i < key_capacity; ++i)
      keys[i].store(0, std::memory_order_relaxed);
    for (int i = 0; i <= key_capacity; ++i)
      vals[i].store(0, std::memory_order_relaxed);
  }

  const bool leaf;
  std::atomic<uint64_t> version{0};
  std::atomic<uint32_t> count{0};
  std::atomic<Node*> next{nullptr};  // leaf chain (forward only)
  std::unique_ptr<std::atomic<Key>[]> keys;
  std::unique_ptr<std::atomic<uint64_t>[]> vals;

  Node* Child(int i) const {
    // order: acquire pairs with SetChild()'s release — the child's
    // pre-publication constructor writes must be visible before we
    // dereference the pointer.
    return reinterpret_cast<Node*>(vals[i].load(std::memory_order_acquire));
  }
  void SetChild(int i, Node* c) {
    // order: release pairs with Child()'s acquire: a freshly split
    // sibling's constructor writes (version/count/arrays are plain stores
    // until the node is published) must happen-before any reader that
    // reaches the node through this pointer.
    vals[i].store(reinterpret_cast<uint64_t>(c), std::memory_order_release);
  }

  /// Spins past any in-flight writer and returns an unlocked version word
  /// (which may carry the obsolete bit — callers must check).
  uint64_t StableVersion() const {
    // order: acquire pairs with the Unlock*() release stores — the version
    // read must happen-before the speculative field reads the caller will
    // validate against it.
    uint64_t v = version.load(std::memory_order_acquire);
    int spins = 0;
    while (v & kLockedBit) {
      if (++spins >= 128) {
        std::this_thread::yield();
        spins = 0;
      }
      v = version.load(std::memory_order_acquire);  // order: same edge
    }
    return v;
  }

  /// True iff the node has not been modified since `expected` was read.
  bool Validate(uint64_t expected) const {
    // order: the acquire fence orders every preceding speculative field
    // read before the version re-read below, so a torn read can never
    // survive an unchanged version; pairs with Unlock*()'s release.
    std::atomic_thread_fence(std::memory_order_acquire);
    return version.load(std::memory_order_relaxed) == expected;
  }

  /// Single-attempt writer latch: succeeds only if the version is still
  /// exactly `expected` (unlocked, not obsolete). On success every field
  /// is pinned to the state observed at `expected`.
  bool TryLock(uint64_t expected) {
    // order: acquire on success — the writer's field accesses must not
    // float above taking the latch; a failed CAS needs no edge (restart).
    return version.compare_exchange_strong(expected, expected | kLockedBit,
                                           std::memory_order_acquire,
                                           std::memory_order_relaxed);
  }

  /// Blocking writer latch for the single serialized SMO path. Returns
  /// false if the node became obsolete before we latched it.
  bool LockBlocking() {
    while (true) {
      const uint64_t v = StableVersion();
      if (v & kObsoleteBit) return false;
      if (TryLock(v)) return true;
    }
  }

  void Unlock() {
    // order: release publishes this writer's field stores to the next
    // StableVersion()/Validate() acquire; the self-load is latch-private.
    version.store(
        (version.load(std::memory_order_relaxed) & ~kLockedBit) + kVersionInc,
        std::memory_order_release);
  }

  /// Unlock + mark unlinked: every optimistic reader that still holds a
  /// reference observes the obsolete bit and restarts from the root.
  void UnlockObsolete() {
    // order: as Unlock() — release publishes the unlink and the obsolete
    // bit together, so a validating reader restarts instead of trusting
    // stale slots.
    version.store(((version.load(std::memory_order_relaxed) & ~kLockedBit) +
                   kVersionInc) |
                      kObsoleteBit,
                  std::memory_order_release);
  }

  int LowerBound(uint32_t cnt, Key key) const {
    int lo = 0, hi = static_cast<int>(cnt);
    while (lo < hi) {
      const int mid = (lo + hi) / 2;
      if (keys[mid].load(std::memory_order_relaxed) < key)
        lo = mid + 1;
      else
        hi = mid;
    }
    return lo;
  }

  /// First child whose subtree may contain `key`: children[i] holds keys in
  /// [keys[i-1], keys[i]).
  int UpperBound(uint32_t cnt, Key key) const {
    int lo = 0, hi = static_cast<int>(cnt);
    while (lo < hi) {
      const int mid = (lo + hi) / 2;
      if (keys[mid].load(std::memory_order_relaxed) <= key)
        lo = mid + 1;
      else
        hi = mid;
    }
    return lo;
  }
};

BTree::BTree(int order)
    : order_(order < 4 ? 4 : order),
      min_keys_((order_ - 1) / 2),
      root_(nullptr) {
  // order: release publishes the empty root's construction to the acquire
  // root_ loads in DescendToLeaf/Insert/Erase/Scan.
  root_.store(new Node(/*is_leaf=*/true, order_), std::memory_order_release);
}

BTree::~BTree() {
  FreeSubtree(root_.load(std::memory_order_relaxed));
  // Nodes this tree retired may still sit in the global limbo lists; give
  // the reclaimer a chance to drain them while the process is quiet.
  EpochManager::Global().Quiesce();
}

BTree::Node* BTree::NewNode(bool leaf) {
  node_count_.fetch_add(1, std::memory_order_relaxed);
  return new Node(leaf, order_);
}

// ebr: requires-pin — Retire() hands the node to the epoch reclaimer; the
// caller's pin anchors the grace period so concurrent readers that already
// reached the node stay safe.
void BTree::RetireNode(Node* node) {
  node_count_.fetch_sub(1, std::memory_order_relaxed);
  EpochManager::Global().Retire(
      node, [](void* p) { delete static_cast<Node*>(p); });
}

// ebr: unpinned-ok — destructor-only teardown; no reader can still hold a
// reference, so nodes are deleted directly instead of retired.
void BTree::FreeSubtree(Node* node) {
  if (!node->leaf) {
    const uint32_t cnt = node->count.load(std::memory_order_relaxed);
    for (uint32_t i = 0; i <= cnt; ++i) {
      Node* c = node->Child(static_cast<int>(i));
      if (c != nullptr) FreeSubtree(c);
    }
  }
  delete node;
}

// ebr: requires-pin — latch-free descent over retire-capable nodes; every
// public entry point (Lookup/Insert/Erase/Scan) pins around the call.
bool BTree::DescendToLeaf(Key key, Node** leaf, uint64_t* version) const {
  // order: acquire pairs with the release root_ stores in the constructor
  // and SplitRoot — the root's contents must be visible before we read it.
  Node* node = root_.load(std::memory_order_acquire);
  uint64_t v = node->StableVersion();
  // Re-check the root pointer *after* stabilizing the version: a root split
  // publishes the new root before unlocking the old one, so a descent that
  // stabilized a post-split version here would otherwise silently search
  // only the left half of the key space. order: acquire as above.
  if ((v & Node::kObsoleteBit) ||
      root_.load(std::memory_order_acquire) != node)
    return false;
  while (!node->leaf) {
    // order: count acquire pairs with the count-publishing release stores —
    // slots below cnt are then fully initialized.
    const uint32_t cnt = node->count.load(std::memory_order_acquire);
    const int idx = node->UpperBound(cnt, key);
    Node* child = node->Child(idx);
    if (child == nullptr) return false;  // torn read beyond live slots
    // Dereferencing before validating is safe: any pointer ever stored in a
    // live node stays allocated until an epoch grace period passes, and our
    // caller holds an epoch pin.
    const uint64_t cv = child->StableVersion();
    if (!node->Validate(v)) return false;
    if (cv & Node::kObsoleteBit) return false;
    node = child;
    v = cv;
  }
  *leaf = node;
  *version = v;
  return true;
}

bool BTree::Lookup(Key key, uint64_t* payload) const {
  EpochManager::Guard g(EpochManager::Global());
  while (true) {
    Node* leaf;
    uint64_t v;
    if (!DescendToLeaf(key, &leaf, &v)) continue;
    // order: count acquire — slots below cnt are initialized (pairs with
    // the release count publication in Insert/SplitLockedNode).
    const uint32_t cnt = leaf->count.load(std::memory_order_acquire);
    const int pos = leaf->LowerBound(cnt, key);
    bool found = false;
    uint64_t p = 0;
    if (pos < static_cast<int>(cnt) &&
        leaf->keys[pos].load(std::memory_order_relaxed) == key) {
      found = true;
      p = leaf->vals[pos].load(std::memory_order_relaxed);
    }
    if (!leaf->Validate(v)) continue;
    if (found) *payload = p;
    return found;
  }
}

bool BTree::Insert(Key key, uint64_t payload) {
  const uint32_t max_keys = static_cast<uint32_t>(order_ - 1);
  EpochManager::Guard g(EpochManager::Global());
  while (true) {
    // order: root acquire pairs with the release root_ publications
    // (constructor/SplitRoot); same for the re-check below.
    Node* node = root_.load(std::memory_order_acquire);
    uint64_t v = node->StableVersion();
    if ((v & Node::kObsoleteBit) ||
        root_.load(std::memory_order_acquire) != node)  // order: as above
      continue;
    // order: count acquire — slots below the count are initialized.
    if (node->count.load(std::memory_order_acquire) >= max_keys) {
      SplitRoot(node, v);  // grows the tree a level; restart either way
      continue;
    }
    bool restart = false;
    while (!node->leaf) {
      // order: count acquire — slots below cnt are initialized.
      const uint32_t cnt = node->count.load(std::memory_order_acquire);
      const int idx = node->UpperBound(cnt, key);
      Node* child = node->Child(idx);
      if (child == nullptr) {
        restart = true;
        break;
      }
      const uint64_t cv = child->StableVersion();
      if (!node->Validate(v)) {
        restart = true;
        break;
      }
      if (cv & Node::kObsoleteBit) {
        restart = true;
        break;
      }
      // order: count acquire — the split decision must see a fully
      // published count for the child.
      if (child->count.load(std::memory_order_acquire) >= max_keys) {
        // Eager split on the way down: the parent is known non-full, so the
        // level below always has room and splits never propagate upward.
        // TryLock pins each node to the state observed at its version, so a
        // successful pair of CAS latches proves parent is still non-full
        // and child still full.
        if (node->TryLock(v)) {
          if (child->TryLock(cv)) {
            SplitChild(node, idx, child);  // unlatches both
          } else {
            node->Unlock();
          }
        }
        restart = true;
        break;
      }
      node = child;
      v = cv;
    }
    if (restart) continue;
    if (!node->TryLock(v)) continue;
    const uint32_t cnt = node->count.load(std::memory_order_relaxed);
    const int pos = node->LowerBound(cnt, key);
    if (pos < static_cast<int>(cnt) &&
        node->keys[pos].load(std::memory_order_relaxed) == key) {
      node->vals[pos].store(payload, std::memory_order_relaxed);
      node->Unlock();
      return false;
    }
    for (int i = static_cast<int>(cnt); i > pos; --i) {
      node->keys[i].store(node->keys[i - 1].load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
      node->vals[i].store(node->vals[i - 1].load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
    }
    node->keys[pos].store(key, std::memory_order_relaxed);
    node->vals[pos].store(payload, std::memory_order_relaxed);
    // order: release publishes the new slot's key/val before the count that
    // makes it visible to concurrent acquire count readers.
    node->count.store(cnt + 1, std::memory_order_release);
    node->Unlock();
    size_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
}

// ebr: requires-pin — operates on latched retire-capable nodes mid-descent;
// callers (SplitRoot/SplitChild) run under the entry points' pins.
BTree::Node* BTree::SplitLockedNode(Node* node, Key* sep) {
  const uint32_t cnt = node->count.load(std::memory_order_relaxed);
  Node* right = NewNode(node->leaf);
  const uint32_t mid = cnt / 2;
  if (node->leaf) {
    for (uint32_t i = mid; i < cnt; ++i) {
      right->keys[i - mid].store(
          node->keys[i].load(std::memory_order_relaxed),
          std::memory_order_relaxed);
      right->vals[i - mid].store(
          node->vals[i].load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    }
    right->count.store(cnt - mid, std::memory_order_relaxed);
    *sep = right->keys[0].load(std::memory_order_relaxed);
    right->next.store(node->next.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    // order: release — chain-walking scans may reach `right` through this
    // store before the parent link is published, so its slots must be
    // visible first.
    node->next.store(right, std::memory_order_release);
  } else {
    // The middle key moves up; children right of it move to the sibling.
    *sep = node->keys[mid].load(std::memory_order_relaxed);
    for (uint32_t i = mid + 1; i < cnt; ++i)
      right->keys[i - mid - 1].store(
          node->keys[i].load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    for (uint32_t i = mid + 1; i <= cnt; ++i)
      right->vals[i - mid - 1].store(
          node->vals[i].load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    right->count.store(cnt - mid - 1, std::memory_order_relaxed);
  }
  // order: release — shrinking the count is the moment moved slots stop
  // being ours; acquire count readers must not see stale upper slots as
  // live.
  node->count.store(mid, std::memory_order_release);
  return right;
}

// ebr: requires-pin — latches and splits the (retire-capable) root; Insert
// holds the pin across the call.
void BTree::SplitRoot(Node* root, uint64_t root_version) {
  if (!root->TryLock(root_version)) return;
  // order: acquire pairs with the release root_ publication below.
  if (root_.load(std::memory_order_acquire) != root) {
    root->Unlock();
    return;
  }
  Key sep;
  Node* right = SplitLockedNode(root, &sep);
  Node* new_root = NewNode(/*leaf=*/false);
  new_root->keys[0].store(sep, std::memory_order_relaxed);
  new_root->SetChild(0, root);
  new_root->SetChild(1, right);
  new_root->count.store(1, std::memory_order_relaxed);
  // order: release publishes the new root *before* unlocking the old one:
  // a reader that stabilizes the old root's post-split version is then
  // guaranteed to see the new root pointer on its re-check and restart.
  root_.store(new_root, std::memory_order_release);
  height_.fetch_add(1, std::memory_order_relaxed);
  root->Unlock();
}

// ebr: requires-pin — both nodes are latched retire-capable tree nodes;
// Insert holds the pin across the call.
void BTree::SplitChild(Node* parent, int idx, Node* child) {
  Key sep;
  Node* right = SplitLockedNode(child, &sep);
  const uint32_t pcnt = parent->count.load(std::memory_order_relaxed);
  for (int i = static_cast<int>(pcnt); i > idx; --i)
    parent->keys[i].store(parent->keys[i - 1].load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  for (int i = static_cast<int>(pcnt) + 1; i > idx + 1; --i)
    parent->vals[i].store(parent->vals[i - 1].load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  parent->keys[idx].store(sep, std::memory_order_relaxed);
  parent->SetChild(idx + 1, right);
  // order: release publishes the shifted slots and the new separator before
  // the count that exposes them to acquire count readers.
  parent->count.store(pcnt + 1, std::memory_order_release);
  child->Unlock();
  parent->Unlock();
}

bool BTree::Erase(Key key) {
  bool need_repair = false;
  {
    EpochManager::Guard g(EpochManager::Global());
    while (true) {
      Node* leaf;
      uint64_t v;
      if (!DescendToLeaf(key, &leaf, &v)) continue;
      if (!leaf->TryLock(v)) continue;
      const uint32_t cnt = leaf->count.load(std::memory_order_relaxed);
      const int pos = leaf->LowerBound(cnt, key);
      if (pos >= static_cast<int>(cnt) ||
          leaf->keys[pos].load(std::memory_order_relaxed) != key) {
        leaf->Unlock();
        return false;
      }
      for (int i = pos; i + 1 < static_cast<int>(cnt); ++i) {
        leaf->keys[i].store(leaf->keys[i + 1].load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
        leaf->vals[i].store(leaf->vals[i + 1].load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
      }
      // order: release — the shrunken count must expose only fully shifted
      // slots to acquire count readers.
      leaf->count.store(cnt - 1, std::memory_order_release);
      // order: root acquire pairs with SplitRoot's release publication.
      need_repair = static_cast<int>(cnt - 1) < min_keys_ &&
                    leaf != root_.load(std::memory_order_acquire);
      leaf->Unlock();
      size_.fetch_sub(1, std::memory_order_relaxed);
      break;
    }
  }
  if (need_repair) RepairUnderflow(key);
  return true;
}

void BTree::RepairUnderflow(Key key) {
  MutexLock lk(&smo_mu_);
  EpochManager::Guard g(EpochManager::Global());
  // Top-down blocking-latch descent to the leaf that covers `key`, holding
  // only a (parent, child) pair. Blocking is safe here: every other writer
  // uses single-attempt latches and restarts instead of waiting, and there
  // is at most one SMO thread (smo_mu_), so no latch cycle can form.
  while (true) {
    // order: root acquire pairs with the release root_ publications; same
    // for the post-latch re-check below.
    Node* node = root_.load(std::memory_order_acquire);
    if (node->leaf) break;  // root leaf never needs repair
    if (!node->LockBlocking()) continue;
    if (root_.load(std::memory_order_acquire) != node) {  // order: as above
      node->Unlock();
      continue;
    }
    bool restart = false;
    while (true) {
      const uint32_t cnt = node->count.load(std::memory_order_relaxed);
      const int idx = node->UpperBound(cnt, key);
      Node* child = node->Child(idx);
      if (child == nullptr || !child->LockBlocking()) {
        node->Unlock();
        restart = true;
        break;
      }
      if (child->leaf) {
        RepairLeafLocked(node, idx, child);  // unlatches both
        break;
      }
      node->Unlock();
      node = child;
    }
    if (!restart) break;
  }
  CollapseRoot();
}

// ebr: requires-pin — merges retire leaf nodes out of the chain; the caller
// (RepairUnderflow) holds both smo_mu_ and the epoch pin.
void BTree::RepairLeafLocked(Node* parent, int idx, Node* leaf) {
  const uint32_t lcnt = leaf->count.load(std::memory_order_relaxed);
  const uint32_t pcnt = parent->count.load(std::memory_order_relaxed);
  const uint32_t max_keys = static_cast<uint32_t>(order_ - 1);
  if (static_cast<int>(lcnt) >= min_keys_) {  // refilled concurrently
    leaf->Unlock();
    parent->Unlock();
    return;
  }

  // Merge only within the shared parent, so the vacated node's leaf-chain
  // predecessor is always the surviving participant. A sibling too full to
  // absorb us leaves the leaf underfull — harmless for correctness, and a
  // later erase will retry. When the sibling sits at min_keys_ the merge
  // always fits: min + (min-1) <= order-2 < max_keys.
  if (idx > 0) {
    Node* left = parent->Child(idx - 1);
    left->LockBlocking();  // never obsolete: parent latched, we are the SMO
    const uint32_t ln = left->count.load(std::memory_order_relaxed);
    if (ln + lcnt <= max_keys) {
      // Fold leaf into its left sibling and unlink it.
      for (uint32_t i = 0; i < lcnt; ++i) {
        left->keys[ln + i].store(
            leaf->keys[i].load(std::memory_order_relaxed),
            std::memory_order_relaxed);
        left->vals[ln + i].store(
            leaf->vals[i].load(std::memory_order_relaxed),
            std::memory_order_relaxed);
      }
      // order: release — chain scans must see the bypassed link only after
      // the copied slots; the release count then exposes them as live.
      left->next.store(leaf->next.load(std::memory_order_relaxed),
                       std::memory_order_release);
      left->count.store(ln + lcnt, std::memory_order_release);  // order: ^
      for (int i = idx - 1; i + 1 < static_cast<int>(pcnt); ++i)
        parent->keys[i].store(
            parent->keys[i + 1].load(std::memory_order_relaxed),
            std::memory_order_relaxed);
      for (int i = idx; i < static_cast<int>(pcnt); ++i)
        parent->vals[i].store(
            parent->vals[i + 1].load(std::memory_order_relaxed),
            std::memory_order_relaxed);
      // order: release — shifted separator slots must be visible before the
      // shrunken count that exposes them.
      parent->count.store(pcnt - 1, std::memory_order_release);
      leaf->UnlockObsolete();
      RetireNode(leaf);
      left->Unlock();
      parent->Unlock();
      return;
    }
    left->Unlock();
  }
  if (idx < static_cast<int>(pcnt)) {
    Node* right = parent->Child(idx + 1);
    right->LockBlocking();
    const uint32_t rn = right->count.load(std::memory_order_relaxed);
    if (lcnt + rn <= max_keys) {
      // Fold the right sibling into leaf and unlink it.
      for (uint32_t i = 0; i < rn; ++i) {
        leaf->keys[lcnt + i].store(
            right->keys[i].load(std::memory_order_relaxed),
            std::memory_order_relaxed);
        leaf->vals[lcnt + i].store(
            right->vals[i].load(std::memory_order_relaxed),
            std::memory_order_relaxed);
      }
      // order: release — as the left-merge arm: publish copied slots before
      // the bypassed chain link and the count that exposes them.
      leaf->next.store(right->next.load(std::memory_order_relaxed),
                       std::memory_order_release);
      leaf->count.store(lcnt + rn, std::memory_order_release);  // order: ^
      for (int i = idx; i + 1 < static_cast<int>(pcnt); ++i)
        parent->keys[i].store(
            parent->keys[i + 1].load(std::memory_order_relaxed),
            std::memory_order_relaxed);
      for (int i = idx + 1; i < static_cast<int>(pcnt); ++i)
        parent->vals[i].store(
            parent->vals[i + 1].load(std::memory_order_relaxed),
            std::memory_order_relaxed);
      // order: release — shifted separator slots must be visible before the
      // shrunken count that exposes them.
      parent->count.store(pcnt - 1, std::memory_order_release);
      right->UnlockObsolete();
      RetireNode(right);
      leaf->Unlock();
      parent->Unlock();
      return;
    }
    right->Unlock();
  }
  leaf->Unlock();
  parent->Unlock();
}

// ebr: requires-pin — unlinks and retires an empty root; the caller
// (RepairUnderflow) holds both smo_mu_ and the epoch pin.
void BTree::CollapseRoot() {
  while (true) {
    // order: root/count acquire pairs with the release publications — the
    // root's slots must be visible before we judge it empty.
    Node* root = root_.load(std::memory_order_acquire);
    if (root->leaf || root->count.load(std::memory_order_acquire) != 0)
      return;
    if (!root->LockBlocking()) continue;
    // order: acquire re-check of root_, as above.
    if (root_.load(std::memory_order_acquire) != root ||
        root->count.load(std::memory_order_relaxed) != 0) {
      root->Unlock();  // raced a concurrent split that refilled the root
      continue;
    }
    Node* child = root->Child(0);
    // order: release publishes the demoted root to acquire root_ readers.
    root_.store(child, std::memory_order_release);
    root->UnlockObsolete();
    RetireNode(root);
    height_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void BTree::Scan(Key lo, Key hi,
                 const std::function<bool(Key, uint64_t)>& visit) const {
  if (lo > hi) return;
  EpochManager::Guard g(EpochManager::Global());
  Key cur = lo;
  std::vector<std::pair<Key, uint64_t>> buf;
  buf.reserve(static_cast<size_t>(order_));
restart:
  while (true) {
    Node* node;
    uint64_t v;
    if (!DescendToLeaf(cur, &node, &v)) continue;
    // Walk the leaf chain, snapshotting each leaf into `buf` and validating
    // before emitting — the callback never observes a torn node, and `cur`
    // makes retries/restarts exactly-once per key.
    while (true) {
      buf.clear();
      bool past_hi = false;
      // order: count acquire — slots below cnt are initialized.
      const uint32_t cnt = node->count.load(std::memory_order_acquire);
      for (uint32_t i = 0; i < cnt; ++i) {
        const Key k = node->keys[i].load(std::memory_order_relaxed);
        if (k < cur) continue;
        if (k > hi) {
          past_hi = true;
          break;
        }
        buf.emplace_back(k, node->vals[i].load(std::memory_order_relaxed));
      }
      // order: acquire pairs with the release next-link stores — the linked
      // sibling's slots must be visible before we walk into it.
      Node* next = node->next.load(std::memory_order_acquire);
      if (!node->Validate(v)) {
        v = node->StableVersion();
        if (v & Node::kObsoleteBit) goto restart;  // unlinked under us
        continue;  // modified in place: retry this leaf
      }
      for (const auto& [k, p] : buf) {
        if (!visit(k, p)) return;
        if (k == hi) return;
        cur = k + 1;  // k < hi, so no overflow
      }
      if (past_hi || next == nullptr) return;
      node = next;
      v = node->StableVersion();
      if (v & Node::kObsoleteBit) goto restart;
    }
  }
}

void BTree::ScanAll(const std::function<bool(Key, uint64_t)>& visit) const {
  Scan(std::numeric_limits<Key>::min(), std::numeric_limits<Key>::max(),
       visit);
}

size_t BTree::MemoryBytes() const {
  const size_t per_node = sizeof(Node) +
                          static_cast<size_t>(order_) * sizeof(Key) +
                          (static_cast<size_t>(order_) + 1) * sizeof(uint64_t);
  return node_count_.load(std::memory_order_relaxed) * per_node +
         sizeof(*this);
}

}  // namespace htap
