#include "index/btree.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace htap {

struct BTree::Node {
  bool leaf = true;
  std::vector<Key> keys;
  std::vector<uint64_t> payloads;   // leaves only; parallel to keys
  std::vector<Node*> children;      // internal only; keys.size()+1
  Node* parent = nullptr;
  Node* next = nullptr;             // leaf chain
  Node* prev = nullptr;

  int IndexInParent() const {
    for (size_t i = 0; i < parent->children.size(); ++i)
      if (parent->children[i] == this) return static_cast<int>(i);
    assert(false && "node not found in parent");
    return -1;
  }
};

BTree::BTree(int order)
    : order_(order < 4 ? 4 : order),
      min_keys_((order_ - 1) / 2),
      root_(new Node()) {}

BTree::~BTree() { FreeSubtree(root_); }

void BTree::FreeSubtree(Node* node) {
  if (!node->leaf)
    for (Node* c : node->children) FreeSubtree(c);
  delete node;
}

BTree::Node* BTree::FindLeaf(Key key) const {
  Node* n = root_;
  while (!n->leaf) {
    // First child whose subtree may contain `key`: children[i] holds keys in
    // [keys[i-1], keys[i]).
    const size_t i = static_cast<size_t>(
        std::upper_bound(n->keys.begin(), n->keys.end(), key) -
        n->keys.begin());
    n = n->children[i];
  }
  return n;
}

bool BTree::Insert(Key key, uint64_t payload) {
  WriteGuard g(latch_);
  Node* leaf = FindLeaf(key);
  const auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
  const size_t pos = static_cast<size_t>(it - leaf->keys.begin());
  if (it != leaf->keys.end() && *it == key) {
    leaf->payloads[pos] = payload;
    return false;
  }
  leaf->keys.insert(it, key);
  leaf->payloads.insert(leaf->payloads.begin() + static_cast<long>(pos),
                        payload);
  ++size_;

  if (static_cast<int>(leaf->keys.size()) < order_) return true;

  // Split the leaf.
  Node* right = new Node();
  right->leaf = true;
  const size_t mid = leaf->keys.size() / 2;
  right->keys.assign(leaf->keys.begin() + static_cast<long>(mid),
                     leaf->keys.end());
  right->payloads.assign(leaf->payloads.begin() + static_cast<long>(mid),
                         leaf->payloads.end());
  leaf->keys.resize(mid);
  leaf->payloads.resize(mid);
  right->next = leaf->next;
  if (right->next) right->next->prev = right;
  right->prev = leaf;
  leaf->next = right;
  InsertIntoParent(leaf, right->keys.front(), right);
  return true;
}

void BTree::InsertIntoParent(Node* left, Key sep, Node* right) {
  if (left->parent == nullptr) {
    Node* new_root = new Node();
    new_root->leaf = false;
    new_root->keys.push_back(sep);
    new_root->children = {left, right};
    left->parent = new_root;
    right->parent = new_root;
    root_ = new_root;
    return;
  }
  Node* parent = left->parent;
  right->parent = parent;
  const int idx = left->IndexInParent();
  parent->keys.insert(parent->keys.begin() + idx, sep);
  parent->children.insert(parent->children.begin() + idx + 1, right);

  if (static_cast<int>(parent->keys.size()) < order_) return;

  // Split the internal node: middle key moves up.
  Node* sibling = new Node();
  sibling->leaf = false;
  const size_t mid = parent->keys.size() / 2;
  const Key up = parent->keys[mid];
  sibling->keys.assign(parent->keys.begin() + static_cast<long>(mid) + 1,
                       parent->keys.end());
  sibling->children.assign(
      parent->children.begin() + static_cast<long>(mid) + 1,
      parent->children.end());
  for (Node* c : sibling->children) c->parent = sibling;
  parent->keys.resize(mid);
  parent->children.resize(mid + 1);
  InsertIntoParent(parent, up, sibling);
}

bool BTree::Erase(Key key) {
  WriteGuard g(latch_);
  Node* leaf = FindLeaf(key);
  const auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
  if (it == leaf->keys.end() || *it != key) return false;
  const size_t pos = static_cast<size_t>(it - leaf->keys.begin());
  leaf->keys.erase(it);
  leaf->payloads.erase(leaf->payloads.begin() + static_cast<long>(pos));
  --size_;
  RebalanceAfterErase(leaf);
  return true;
}

void BTree::RebalanceAfterErase(Node* node) {
  if (node == root_) {
    if (!node->leaf && node->keys.empty()) {
      root_ = node->children[0];
      root_->parent = nullptr;
      delete node;
    }
    return;
  }
  if (static_cast<int>(node->keys.size()) >= min_keys_) return;

  Node* parent = node->parent;
  const int idx = node->IndexInParent();
  Node* left = idx > 0 ? parent->children[static_cast<size_t>(idx) - 1] : nullptr;
  Node* right = static_cast<size_t>(idx) + 1 < parent->children.size()
                    ? parent->children[static_cast<size_t>(idx) + 1]
                    : nullptr;

  if (node->leaf) {
    if (left && static_cast<int>(left->keys.size()) > min_keys_) {
      node->keys.insert(node->keys.begin(), left->keys.back());
      node->payloads.insert(node->payloads.begin(), left->payloads.back());
      left->keys.pop_back();
      left->payloads.pop_back();
      parent->keys[static_cast<size_t>(idx) - 1] = node->keys.front();
      return;
    }
    if (right && static_cast<int>(right->keys.size()) > min_keys_) {
      node->keys.push_back(right->keys.front());
      node->payloads.push_back(right->payloads.front());
      right->keys.erase(right->keys.begin());
      right->payloads.erase(right->payloads.begin());
      parent->keys[static_cast<size_t>(idx)] = right->keys.front();
      return;
    }
    // Merge with a sibling (into the left one of the pair).
    Node* dst = left ? left : node;
    Node* src = left ? node : right;
    const int sep_idx = left ? idx - 1 : idx;
    dst->keys.insert(dst->keys.end(), src->keys.begin(), src->keys.end());
    dst->payloads.insert(dst->payloads.end(), src->payloads.begin(),
                         src->payloads.end());
    dst->next = src->next;
    if (dst->next) dst->next->prev = dst;
    parent->keys.erase(parent->keys.begin() + sep_idx);
    parent->children.erase(parent->children.begin() + sep_idx + 1);
    delete src;
    RebalanceAfterErase(parent);
    return;
  }

  // Internal node.
  if (left && static_cast<int>(left->keys.size()) > min_keys_) {
    node->keys.insert(node->keys.begin(),
                      parent->keys[static_cast<size_t>(idx) - 1]);
    parent->keys[static_cast<size_t>(idx) - 1] = left->keys.back();
    left->keys.pop_back();
    Node* moved = left->children.back();
    left->children.pop_back();
    moved->parent = node;
    node->children.insert(node->children.begin(), moved);
    return;
  }
  if (right && static_cast<int>(right->keys.size()) > min_keys_) {
    node->keys.push_back(parent->keys[static_cast<size_t>(idx)]);
    parent->keys[static_cast<size_t>(idx)] = right->keys.front();
    right->keys.erase(right->keys.begin());
    Node* moved = right->children.front();
    right->children.erase(right->children.begin());
    moved->parent = node;
    node->children.push_back(moved);
    return;
  }
  Node* dst = left ? left : node;
  Node* src = left ? node : right;
  const int sep_idx = left ? idx - 1 : idx;
  dst->keys.push_back(parent->keys[static_cast<size_t>(sep_idx)]);
  dst->keys.insert(dst->keys.end(), src->keys.begin(), src->keys.end());
  for (Node* c : src->children) c->parent = dst;
  dst->children.insert(dst->children.end(), src->children.begin(),
                       src->children.end());
  parent->keys.erase(parent->keys.begin() + sep_idx);
  parent->children.erase(parent->children.begin() + sep_idx + 1);
  delete src;
  RebalanceAfterErase(parent);
}

bool BTree::Lookup(Key key, uint64_t* payload) const {
  ReadGuard g(latch_);
  Node* leaf = FindLeaf(key);
  const auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
  if (it == leaf->keys.end() || *it != key) return false;
  *payload = leaf->payloads[static_cast<size_t>(it - leaf->keys.begin())];
  return true;
}

void BTree::Scan(Key lo, Key hi,
                 const std::function<bool(Key, uint64_t)>& visit) const {
  ReadGuard g(latch_);
  const Node* leaf = FindLeaf(lo);
  size_t i = static_cast<size_t>(
      std::lower_bound(leaf->keys.begin(), leaf->keys.end(), lo) -
      leaf->keys.begin());
  while (leaf) {
    for (; i < leaf->keys.size(); ++i) {
      if (leaf->keys[i] > hi) return;
      if (!visit(leaf->keys[i], leaf->payloads[i])) return;
    }
    leaf = leaf->next;
    i = 0;
  }
}

void BTree::ScanAll(const std::function<bool(Key, uint64_t)>& visit) const {
  Scan(std::numeric_limits<Key>::min(), std::numeric_limits<Key>::max(),
       visit);
}

size_t BTree::size() const {
  ReadGuard g(latch_);
  return size_;
}

int BTree::height() const {
  ReadGuard g(latch_);
  int h = 1;
  const Node* n = root_;
  while (!n->leaf) {
    n = n->children[0];
    ++h;
  }
  return h;
}

size_t BTree::MemoryBytes() const {
  ReadGuard g(latch_);
  // Estimate from entry count; exact accounting would require a full walk.
  return size_ * (sizeof(Key) + sizeof(uint64_t)) * 3 / 2 + sizeof(*this);
}

}  // namespace htap
