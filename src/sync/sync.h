// Data synchronization: moving committed changes from the TP-side delta
// stores into the main column store (Table 2, DS row), plus the freshness
// accounting that the AP scans and the resource scheduler consume.
//
// Three strategies from the survey:
//  * kInMemoryMerge — threshold-based change propagation out of an
//    in-memory delta (Oracle/SQL Server/DB2 BLU/HANA style).
//  * kLogMerge      — periodic merge of encoded log-delta files
//    (TiDB/TiFlash style; higher per-merge cost, scalable staging).
//  * kRebuild       — drop and rebuild the column store from the primary
//    row store (Oracle repopulation / SingleStore reload style; cheap
//    staging memory, expensive load).

#ifndef HTAP_SYNC_SYNC_H_
#define HTAP_SYNC_SYNC_H_

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <thread>

#include "columnar/column_table.h"
#include "common/clock.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "delta/delta.h"
#include "opt/stats_builder.h"
#include "storage/mvcc_row_store.h"
#include "txn/txn_manager.h"

namespace htap {

/// Where a synchronizer pulls staged changes from. The three delta stores
/// adapt to this via DeltaSourceAdapter.
class DeltaSource {
 public:
  virtual ~DeltaSource() = default;
  virtual std::vector<DeltaEntry> DrainUpTo(CSN csn) = 0;
  virtual size_t PendingEntries() const = 0;
};

template <typename DeltaT>
class DeltaSourceAdapter : public DeltaSource {
 public:
  explicit DeltaSourceAdapter(DeltaT* delta) : delta_(delta) {}
  std::vector<DeltaEntry> DrainUpTo(CSN csn) override {
    return delta_->DrainUpTo(csn);
  }
  size_t PendingEntries() const override { return delta_->EntryCount(); }

 private:
  DeltaT* delta_;
};

/// Tracks commit times so freshness can be reported in wall-clock terms as
/// well as CSN lag. Registered as a ChangeSink.
class FreshnessTracker : public ChangeSink {
 public:
  explicit FreshnessTracker(const Clock* clock = WallClock::Default())
      : clock_(clock) {}

  void OnCommit(const std::vector<ChangeEvent>& events) override;

  /// Number of commits not yet visible at `visible_csn`.
  uint64_t CsnLag(CSN committed_csn, CSN visible_csn) const {
    return committed_csn > visible_csn ? committed_csn - visible_csn : 0;
  }

  /// Age of the oldest committed-but-not-yet-visible change; 0 if fully
  /// fresh.
  Micros TimeLagMicros(CSN visible_csn) const;

 private:
  const Clock* clock_;
  mutable Mutex mu_{LockRank::kFreshness, "freshness-tracker"};
  std::deque<std::pair<CSN, Micros>> samples_ GUARDED_BY(mu_);  // (csn, time)
};

/// Statistics from merge activity (bench_table2_ds reads these).
struct SyncStats {
  uint64_t merges = 0;
  uint64_t entries_merged = 0;
  uint64_t rows_loaded = 0;        // rebuild strategy
  uint64_t merge_micros_total = 0;
  uint64_t last_merge_micros = 0;
};

enum class SyncStrategy : uint8_t {
  kInMemoryMerge = 0,
  kLogMerge = 1,
  kRebuild = 2,
};

const char* SyncStrategyName(SyncStrategy s);

/// Drives one table's column store to a target CSN using one strategy.
class DataSynchronizer {
 public:
  /// In-memory / log merge: `source` supplies drained delta entries.
  DataSynchronizer(SyncStrategy strategy, ColumnTable* table,
                   std::unique_ptr<DeltaSource> source,
                   const Clock* clock = WallClock::Default());

  /// Rebuild strategy: reads the primary row store directly.
  DataSynchronizer(ColumnTable* table, const MvccRowStore* primary,
                   const Clock* clock = WallClock::Default());

  SyncStrategy strategy() const { return strategy_; }

  /// Brings the column store up to `target_csn`. For merge strategies this
  /// drains and applies staged entries; for rebuild it reloads everything
  /// from the primary store at a snapshot.
  Status SyncTo(CSN target_csn);

  /// Snapshot of the merge statistics, copied out under the merge mutex —
  /// a background merge may be mutating them concurrently.
  SyncStats stats() const {
    MutexLock lk(&mu_);
    return stats_;
  }
  size_t PendingEntries() const {
    return source_ != nullptr ? source_->PendingEntries() : 0;
  }

  /// Statistics maintenance (DESIGN.md §10): after every merge the
  /// synchronizer folds the applied entries into an incremental
  /// TableStatsBuilder and calls `publish` with a fresh TableStats snapshot
  /// and the CSN it reflects (engines route this to Catalog::PublishStats).
  /// Deletes only accumulate drift in the incremental sketches, so once
  /// more than `compact_delete_threshold` deletes have been merged since
  /// the last full pass, the column table is compacted and the statistics
  /// fully recomputed from the surviving rows. The rebuild strategy always
  /// recomputes from the reloaded rows. Call before the first SyncTo.
  using StatsPublishFn = std::function<void(const TableStats&, CSN)>;
  void EnableStatsMaintenance(StatsPublishFn publish,
                              size_t compact_delete_threshold);

 private:
  const SyncStrategy strategy_;
  ColumnTable* const table_;
  const std::unique_ptr<DeltaSource> source_;  // never reseated
  const MvccRowStore* primary_ = nullptr;
  const Clock* clock_;
  SyncStats stats_ GUARDED_BY(mu_);
  // Stats maintenance state; mutated only under mu_ (SyncTo).
  std::unique_ptr<TableStatsBuilder> stats_builder_ GUARDED_BY(mu_);
  StatsPublishFn publish_stats_ GUARDED_BY(mu_);
  size_t compact_delete_threshold_ GUARDED_BY(mu_) = 0;
  mutable Mutex mu_{LockRank::kSyncMerge, "sync-merge"};  // one merge at a time
};

/// Applies a batch of delta entries (commit order) to a column table and
/// advances merged_csn to `up_to`. Shared by all merge paths, including the
/// learner replica apply loop.
void ApplyEntriesToColumnTable(ColumnTable* table,
                               const std::vector<DeltaEntry>& entries,
                               CSN up_to);

/// Periodic background sync driver: wakes every `interval`, syncs to the
/// latest committed CSN when the staged-entry threshold or interval hits.
class BackgroundSyncer {
 public:
  BackgroundSyncer(DataSynchronizer* sync, TransactionManager* txn_mgr,
                   Micros interval_micros, size_t entry_threshold);
  ~BackgroundSyncer();

  void Stop();
  /// Synchronously forces a merge to "now".
  Status ForceSync();

 private:
  void Loop();

  DataSynchronizer* const sync_;
  TransactionManager* const txn_mgr_;
  const Micros interval_micros_;
  const size_t entry_threshold_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace htap

#endif  // HTAP_SYNC_SYNC_H_
