#include "sync/sync.h"

#include <unordered_map>

namespace htap {

const char* SyncStrategyName(SyncStrategy s) {
  switch (s) {
    case SyncStrategy::kInMemoryMerge: return "in-memory-delta-merge";
    case SyncStrategy::kLogMerge: return "log-based-delta-merge";
    case SyncStrategy::kRebuild: return "rebuild-from-primary";
  }
  return "?";
}

void FreshnessTracker::OnCommit(const std::vector<ChangeEvent>& events) {
  if (events.empty()) return;
  MutexLock lk(&mu_);
  samples_.emplace_back(events.back().csn, clock_->NowMicros());
  // Bound memory: keep a generous window; freshness questions are about the
  // recent past.
  while (samples_.size() > 100000) samples_.pop_front();
}

Micros FreshnessTracker::TimeLagMicros(CSN visible_csn) const {
  MutexLock lk(&mu_);
  // Oldest commit newer than what is visible.
  for (const auto& [csn, t] : samples_) {
    if (csn > visible_csn) return clock_->NowMicros() - t;
  }
  return 0;
}

DataSynchronizer::DataSynchronizer(SyncStrategy strategy, ColumnTable* table,
                                   std::unique_ptr<DeltaSource> source,
                                   const Clock* clock)
    : strategy_(strategy),
      table_(table),
      source_(std::move(source)),
      clock_(clock) {}

DataSynchronizer::DataSynchronizer(ColumnTable* table,
                                   const MvccRowStore* primary,
                                   const Clock* clock)
    : strategy_(SyncStrategy::kRebuild),
      table_(table),
      primary_(primary),
      clock_(clock) {}

void ApplyEntriesToColumnTable(ColumnTable* table,
                               const std::vector<DeltaEntry>& entries,
                               CSN up_to) {
  // Fold the batch: last write per key wins; deletes drop pending upserts.
  std::vector<Row> to_append;
  std::vector<bool> dead;  // parallel to to_append
  std::unordered_map<Key, size_t> pos;
  std::vector<Key> deletes;

  for (const DeltaEntry& e : entries) {
    switch (e.op) {
      case ChangeOp::kInsert:
      case ChangeOp::kUpdate: {
        const auto it = pos.find(e.key);
        if (it != pos.end()) {
          to_append[it->second] = e.row;
          dead[it->second] = false;
        } else {
          pos[e.key] = to_append.size();
          to_append.push_back(e.row);
          dead.push_back(false);
        }
        break;
      }
      case ChangeOp::kDelete: {
        const auto it = pos.find(e.key);
        if (it != pos.end()) dead[it->second] = true;
        deletes.push_back(e.key);
        break;
      }
    }
  }

  for (Key k : deletes) table->DeleteKey(k, 0);
  std::vector<Row> batch;
  batch.reserve(to_append.size());
  for (size_t i = 0; i < to_append.size(); ++i)
    if (!dead[i]) batch.push_back(std::move(to_append[i]));
  table->AppendBatch(batch, up_to);
}

void DataSynchronizer::EnableStatsMaintenance(
    StatsPublishFn publish, size_t compact_delete_threshold) {
  MutexLock lk(&mu_);
  stats_builder_ =
      std::make_unique<TableStatsBuilder>(table_->schema().num_columns());
  publish_stats_ = std::move(publish);
  compact_delete_threshold_ = compact_delete_threshold;
}

Status DataSynchronizer::SyncTo(CSN target_csn) {
  MutexLock lk(&mu_);
  if (target_csn <= table_->merged_csn()) return Status::OK();
  const Micros t0 = clock_->NowMicros();

  if (strategy_ == SyncStrategy::kRebuild) {
    if (primary_ == nullptr)
      return Status::Internal("rebuild synchronizer has no primary store");
    // Full repopulation from a row-store snapshot.
    std::vector<Row> rows;
    rows.reserve(primary_->ApproxRowCount());
    const Snapshot snap{target_csn, 0};
    primary_->Scan(snap, [&](Key, const Row& r) {
      rows.push_back(r);
      return true;
    });
    table_->Clear();
    table_->AppendBatch(rows, target_csn);
    stats_.rows_loaded += rows.size();
    if (stats_builder_ != nullptr) {
      // A rebuild already holds the full live row set — recompute exactly.
      stats_builder_->RecomputeFromRows(rows);
      publish_stats_(stats_builder_->Snapshot(rows.size()), target_csn);
    }
  } else {
    if (source_ == nullptr)
      return Status::Internal("merge synchronizer has no delta source");
    const std::vector<DeltaEntry> entries = source_->DrainUpTo(target_csn);
    ApplyEntriesToColumnTable(table_, entries, target_csn);
    stats_.entries_merged += entries.size();
    if (stats_builder_ != nullptr) {
      stats_builder_->ApplyEntries(entries);
      if (stats_builder_->deletes_since_recompute() >
          compact_delete_threshold_) {
        // Delete drift: the sketches only widen, so compact away the dead
        // rows and recompute from what actually survives.
        table_->Compact();
        stats_builder_->RecomputeFromColumnTable(*table_);
      }
      publish_stats_(stats_builder_->Snapshot(table_->live_rows()),
                     target_csn);
    }
  }

  const Micros dt = clock_->NowMicros() - t0;
  ++stats_.merges;
  stats_.last_merge_micros = static_cast<uint64_t>(dt);
  stats_.merge_micros_total += static_cast<uint64_t>(dt);
  return Status::OK();
}

BackgroundSyncer::BackgroundSyncer(DataSynchronizer* sync,
                                   TransactionManager* txn_mgr,
                                   Micros interval_micros,
                                   size_t entry_threshold)
    : sync_(sync),
      txn_mgr_(txn_mgr),
      interval_micros_(interval_micros),
      entry_threshold_(entry_threshold),
      thread_([this] { Loop(); }) {}

BackgroundSyncer::~BackgroundSyncer() { Stop(); }

void BackgroundSyncer::Stop() {
  // order: release pairs with Loop()'s acquire poll; join() below is the
  // real synchronization, release just keeps the flag conventional.
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
}

Status BackgroundSyncer::ForceSync() {
  return sync_->SyncTo(txn_mgr_->LastCommittedCsn());
}

void BackgroundSyncer::Loop() {
  Micros slept = 0;
  const Micros tick = 1000;  // re-check stop and threshold every 1ms
  // order: acquire pairs with Stop()'s release store of the flag.
  while (!stop_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::microseconds(tick));
    slept += tick;
    const bool threshold_hit =
        entry_threshold_ != 0 && sync_->PendingEntries() >= entry_threshold_;
    if (slept >= interval_micros_ || threshold_hit) {
      sync_->SyncTo(txn_mgr_->LastCommittedCsn());
      slept = 0;
    }
  }
}

}  // namespace htap
