// Deterministic pseudo-random generators used by workload generators and
// property tests: a xorshift-based uniform generator and a Zipfian generator
// (Gray et al.) matching the skew used in TPC-C/YCSB-style workloads.

#ifndef HTAP_COMMON_RANDOM_H_
#define HTAP_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>
#include <string>

namespace htap {

/// Fast deterministic uniform PRNG (xorshift128+). Not thread-safe; give each
/// worker its own instance seeded differently.
class Random {
 public:
  explicit Random(uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    s0_ = seed ^ 0x2545F4914F6CDD1DULL;
    s1_ = seed * 0x9E3779B97F4A7C15ULL + 1;
    for (int i = 0; i < 8; ++i) Next64();
  }

  uint64_t Next64() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next64() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Random lowercase ASCII string of the given length.
  std::string NextString(size_t len) {
    std::string s(len, 'a');
    for (auto& c : s) c = static_cast<char>('a' + Uniform(26));
    return s;
  }

  /// TPC-C NURand non-uniform random: NURand(A, x, y).
  int64_t NURand(int64_t a, int64_t x, int64_t y) {
    const int64_t c = 7911;  // fixed run constant
    return (((UniformRange(0, a) | UniformRange(x, y)) + c) % (y - x + 1)) + x;
  }

 private:
  uint64_t s0_, s1_;
};

/// Zipfian-distributed integers in [0, n). theta in (0,1); higher = more skew.
/// Uses the classic Gray et al. rejection-free formula with cached constants.
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta = 0.99, uint64_t seed = 42)
      : n_(n), theta_(theta), rng_(seed) {
    zetan_ = Zeta(n_, theta_);
    zeta2_ = Zeta(2, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2_ / zetan_);
  }

  uint64_t Next() {
    const double u = rng_.NextDouble();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    return static_cast<uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  }

 private:
  static double Zeta(uint64_t n, double theta) {
    double sum = 0;
    for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(i, theta);
    return sum;
  }

  uint64_t n_;
  double theta_;
  Random rng_;
  double zetan_, zeta2_, alpha_, eta_;
};

}  // namespace htap

#endif  // HTAP_COMMON_RANDOM_H_
