// Lightweight synchronization primitives: a spin latch for short critical
// sections (version-chain manipulation) and a readers/writer latch for
// structures with scan-heavy access (B+-tree, column tables). Both carry
// thread-safety capability annotations and participate in the lock-rank
// checker (common/mutex.h, DESIGN.md §11).

#ifndef HTAP_COMMON_LATCH_H_
#define HTAP_COMMON_LATCH_H_

#include <atomic>
#include <thread>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace htap {

/// Test-and-test-and-set spin latch. Use only around a handful of
/// instructions; yields to the OS after a bounded number of spins so a
/// single-core host still makes progress.
class CAPABILITY("spin_latch") SpinLatch {
 public:
  explicit SpinLatch([[maybe_unused]] LockRank rank = LockRank::kLeaf,
                     [[maybe_unused]] const char* name = "spin_latch")
#if HTAP_LOCK_RANK_CHECKS
      : rank_(static_cast<uint16_t>(rank)), name_(name)
#endif
  {
  }

  SpinLatch(const SpinLatch&) = delete;
  SpinLatch& operator=(const SpinLatch&) = delete;

  void Lock() ACQUIRE() {
#if HTAP_LOCK_RANK_CHECKS
    lock_rank::OnAcquire(this, rank_, name_);
#endif
    int spins = 0;
    while (true) {
      // order: acquire pairs with Unlock()'s release — the previous
      // holder's writes are visible once we own the latch.
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      while (flag_.load(std::memory_order_relaxed)) {
        if (++spins > 128) {
          std::this_thread::yield();
          spins = 0;
        }
      }
    }
  }

  void Unlock() RELEASE() {
    // order: release publishes the critical section to the next acquirer.
    flag_.store(false, std::memory_order_release);
#if HTAP_LOCK_RANK_CHECKS
    lock_rank::OnRelease(this);
#endif
  }

  bool TryLock() TRY_ACQUIRE(true) {
    // order: acquire on success, as Lock().
    if (flag_.exchange(true, std::memory_order_acquire)) return false;
#if HTAP_LOCK_RANK_CHECKS
    lock_rank::OnTryAcquire(this, rank_, name_);
#endif
    return true;
  }

 private:
  std::atomic<bool> flag_{false};
#if HTAP_LOCK_RANK_CHECKS
  uint16_t rank_;
  const char* name_;
#endif
};

/// RAII guard for SpinLatch.
class SCOPED_CAPABILITY SpinGuard {
 public:
  explicit SpinGuard(SpinLatch& latch) ACQUIRE(latch) : latch_(latch) {
    latch_.Lock();
  }
  ~SpinGuard() RELEASE() { latch_.Unlock(); }
  SpinGuard(const SpinGuard&) = delete;
  SpinGuard& operator=(const SpinGuard&) = delete;

 private:
  SpinLatch& latch_;
};

/// Readers/writer latch: the annotated + ranked SharedMutex, under the name
/// call sites use for scan-heavy structures (B+-tree, column tables).
using RWLatch = SharedMutex;

class SCOPED_CAPABILITY ReadGuard {
 public:
  explicit ReadGuard(RWLatch& l) ACQUIRE_SHARED(l) : l_(l) { l_.LockShared(); }
  ~ReadGuard() RELEASE() { l_.UnlockShared(); }
  ReadGuard(const ReadGuard&) = delete;
  ReadGuard& operator=(const ReadGuard&) = delete;

 private:
  RWLatch& l_;
};

class SCOPED_CAPABILITY WriteGuard {
 public:
  explicit WriteGuard(RWLatch& l) ACQUIRE(l) : l_(l) { l_.Lock(); }
  ~WriteGuard() RELEASE() { l_.Unlock(); }
  WriteGuard(const WriteGuard&) = delete;
  WriteGuard& operator=(const WriteGuard&) = delete;

 private:
  RWLatch& l_;
};

#if !HTAP_LOCK_RANK_CHECKS
static_assert(sizeof(SpinLatch) == sizeof(std::atomic<bool>),
              "SpinLatch must add no state in release builds");
#endif

}  // namespace htap

#endif  // HTAP_COMMON_LATCH_H_
