// Lightweight synchronization primitives: a spin latch for short critical
// sections (version-chain manipulation) and a readers/writer latch for
// structures with scan-heavy access (B+-tree, column tables).

#ifndef HTAP_COMMON_LATCH_H_
#define HTAP_COMMON_LATCH_H_

#include <atomic>
#include <shared_mutex>
#include <thread>

namespace htap {

/// Test-and-test-and-set spin latch. Use only around a handful of
/// instructions; yields to the OS after a bounded number of spins so a
/// single-core host still makes progress.
class SpinLatch {
 public:
  void Lock() {
    int spins = 0;
    while (true) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      while (flag_.load(std::memory_order_relaxed)) {
        if (++spins > 128) {
          std::this_thread::yield();
          spins = 0;
        }
      }
    }
  }

  void Unlock() { flag_.store(false, std::memory_order_release); }

  bool TryLock() { return !flag_.exchange(true, std::memory_order_acquire); }

 private:
  std::atomic<bool> flag_{false};
};

/// RAII guard for SpinLatch.
class SpinGuard {
 public:
  explicit SpinGuard(SpinLatch& latch) : latch_(latch) { latch_.Lock(); }
  ~SpinGuard() { latch_.Unlock(); }
  SpinGuard(const SpinGuard&) = delete;
  SpinGuard& operator=(const SpinGuard&) = delete;

 private:
  SpinLatch& latch_;
};

/// Readers/writer latch; thin wrapper so call sites read as latches, not
/// generic mutexes.
class RWLatch {
 public:
  void LockShared() { mu_.lock_shared(); }
  void UnlockShared() { mu_.unlock_shared(); }
  void LockExclusive() { mu_.lock(); }
  void UnlockExclusive() { mu_.unlock(); }

  std::shared_mutex& native() { return mu_; }

 private:
  std::shared_mutex mu_;
};

class ReadGuard {
 public:
  explicit ReadGuard(RWLatch& l) : l_(l) { l_.LockShared(); }
  ~ReadGuard() { l_.UnlockShared(); }
  ReadGuard(const ReadGuard&) = delete;
  ReadGuard& operator=(const ReadGuard&) = delete;

 private:
  RWLatch& l_;
};

class WriteGuard {
 public:
  explicit WriteGuard(RWLatch& l) : l_(l) { l_.LockExclusive(); }
  ~WriteGuard() { l_.UnlockExclusive(); }
  WriteGuard(const WriteGuard&) = delete;
  WriteGuard& operator=(const WriteGuard&) = delete;

 private:
  RWLatch& l_;
};

}  // namespace htap

#endif  // HTAP_COMMON_LATCH_H_
