#include "common/ebr.h"

#include <cstdio>
#include <cstdlib>
#include <thread>
#include <utility>

namespace htap {

namespace {

std::atomic<uint64_t> g_manager_serial{1};
std::atomic<uint64_t> g_thread_serial{1};

uint64_t ThisThreadSerial() {
  thread_local uint64_t serial =
      g_thread_serial.fetch_add(1, std::memory_order_relaxed);
  return serial;
}

/// One-entry slot cache: the hot path (every index operation pins the
/// global manager) resolves to a serial compare + pointer load.
struct SlotCache {
  uint64_t manager_serial = 0;
  EpochManager::Slot* slot = nullptr;
};
thread_local SlotCache tl_slot_cache;

}  // namespace

EpochManager::EpochManager()
    : serial_(g_manager_serial.fetch_add(1, std::memory_order_relaxed)),
      slots_(kMaxSlots) {}

EpochManager::~EpochManager() {
  // By contract no thread touches the protected structures once the manager
  // dies; free everything still in limbo so ASan/LSan see no leaks.
  MutexLock lk(&limbo_mu_);
  for (auto& bucket : limbo_) {
    for (const LimboItem& item : bucket) {
      item.deleter(item.ptr);
      reclaimed_.fetch_add(1, std::memory_order_relaxed);
    }
    bucket.clear();
  }
}

EpochManager& EpochManager::Global() {
  // Function-local static: destroyed after main() returns (and after every
  // joined worker), so the destructor's limbo sweep leaves nothing for the
  // leak checker to find.
  static EpochManager mgr;
  return mgr;
}

EpochManager::Slot* EpochManager::ClaimSlot() {
  const uint64_t me = ThisThreadSerial();
  if (tl_slot_cache.manager_serial == serial_ &&
      tl_slot_cache.slot != nullptr &&
      tl_slot_cache.slot->owner.load(std::memory_order_relaxed) == me) {
    return tl_slot_cache.slot;
  }
  // Slow path: claim the first unowned slot (or find one we already own —
  // possible when the cache was evicted by another manager).
  // order: acquire pairs with the acq_rel high-water-mark CAS below so the
  // scanned prefix of slots_ is fully published.
  const size_t known = slot_count_.load(std::memory_order_acquire);
  for (size_t i = 0; i < kMaxSlots; ++i) {
    Slot& s = slots_[i];
    // order: acquire pairs with the claiming CAS's release half — a slot
    // observed as owned carries its owner's prior slot writes.
    uint64_t owner = s.owner.load(std::memory_order_acquire);
    if (owner == me) {
      tl_slot_cache = {serial_, &s};
      return &s;
    }
    // order: acq_rel — taking ownership both publishes our claim and
    // synchronizes with the previous owner's release (if any).
    if (owner == 0 &&
        s.owner.compare_exchange_strong(owner, me,
                                        std::memory_order_acq_rel)) {
      if (i >= known) {
        // Publish a high-water mark so epoch scans can stop early.
        // order: acq_rel pairs with the acquire loads in ClaimSlot and
        // TryAdvance.
        size_t cur = slot_count_.load(std::memory_order_relaxed);
        while (cur < i + 1 &&
               !slot_count_.compare_exchange_weak(
                   cur, i + 1, std::memory_order_acq_rel)) {
        }
      }
      tl_slot_cache = {serial_, &s};
      return &s;
    }
  }
  std::fprintf(stderr,
               "EpochManager: slot table exhausted (%zu threads)\n",
               kMaxSlots);
  std::abort();
}

EpochManager::Guard::Guard(EpochManager& mgr) : slot_(mgr.ClaimSlot()) {
  if (slot_->depth++ > 0) return;  // nested pin: already in an epoch
  // Publish our epoch and re-check: the store must land while the epoch is
  // still current, else a concurrent advance could free a generation we are
  // about to read. order: seq_cst on both sides — the pin store and
  // TryAdvance's scan need a single total order; acquire/release alone
  // would allow the store-then-recheck and scan-then-advance to interleave
  // unsafely (classic Dekker-style race).
  uint64_t e = mgr.epoch_.load(std::memory_order_seq_cst);
  while (true) {
    slot_->state.store(e, std::memory_order_seq_cst);  // order: see above
    // order: seq_cst re-check, same total-order argument.
    const uint64_t now = mgr.epoch_.load(std::memory_order_seq_cst);
    if (now == e) break;
    e = now;
  }
}

EpochManager::Guard::~Guard() {
  if (--slot_->depth > 0) return;
  // order: release — every protected read this pin covered happens-before
  // the quiescent announcement that lets TryAdvance move past us.
  slot_->state.store(kQuiescent, std::memory_order_release);
}

void EpochManager::Retire(void* ptr, void (*deleter)(void*)) {
  // order: seq_cst — the bucket choice must be consistent with the single
  // total order the pin/advance protocol establishes, else an item could
  // land in a generation the cranker is about to free.
  const uint64_t e = epoch_.load(std::memory_order_seq_cst);
  {
    MutexLock lk(&limbo_mu_);
    limbo_[e % 3].push_back(LimboItem{ptr, deleter});
  }
  // Amortized housekeeping: try to turn the crank every few retirements so
  // limbo stays bounded without a dedicated reclamation thread.
  if (retire_count_.fetch_add(1, std::memory_order_relaxed) % 64 == 63)
    TryAdvance();
}

bool EpochManager::TryAdvance() {
  // order: seq_cst — the epoch read, the slot scan, and the advancing CAS
  // must sit in one total order with Guard's pin-publish/re-check; see the
  // Dekker-style argument in Guard's constructor.
  const uint64_t e = epoch_.load(std::memory_order_seq_cst);
  // order: acquire pairs with ClaimSlot's high-water-mark acq_rel CAS.
  const size_t n = slot_count_.load(std::memory_order_acquire);
  for (size_t i = 0; i < n; ++i) {
    // order: seq_cst slot scan, same total-order argument as above.
    const uint64_t s = slots_[i].state.load(std::memory_order_seq_cst);
    if (s != kQuiescent && s != e) return false;  // a reader lags behind
  }
  uint64_t expected = e;
  // order: seq_cst advance CAS, same total-order argument as above.
  if (!epoch_.compare_exchange_strong(expected, e + 1,
                                      std::memory_order_seq_cst)) {
    return false;  // someone else advanced; let them do the freeing
  }
  // Generation e-1 is now two advances old: every pinned reader is at e or
  // e+1, and anything retired at e-1 was unlinked before they pinned.
  FreeBucket((e - 1) % 3);
  return true;
}

void EpochManager::FreeBucket(size_t idx) {
  std::vector<LimboItem> doomed;
  {
    MutexLock lk(&limbo_mu_);
    doomed.swap(limbo_[idx]);
  }
  for (const LimboItem& item : doomed) item.deleter(item.ptr);
  reclaimed_.fetch_add(doomed.size(), std::memory_order_relaxed);
}

void EpochManager::Quiesce() {
  // Three successful advances walk the window past every current bucket;
  // stop early the moment a pinned reader blocks progress.
  for (int i = 0; i < 3; ++i) {
    if (!TryAdvance()) return;
  }
}

size_t EpochManager::limbo_size() const {
  MutexLock lk(&limbo_mu_);
  return limbo_[0].size() + limbo_[1].size() + limbo_[2].size();
}

}  // namespace htap
