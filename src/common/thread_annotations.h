// Clang thread-safety ("capability") analysis macros, following the naming
// of the LLVM documentation. Under Clang every macro expands to the matching
// __attribute__ so that -Wthread-safety can prove locking discipline at
// compile time; under every other compiler they expand to nothing, so GCC
// builds are unaffected.
//
// Usage conventions in this codebase (see DESIGN.md §11):
//   - every mutex-protected member is declared with GUARDED_BY(mu_),
//   - every `...Locked()` / `..._unlocked()` helper that expects the caller
//     to hold a lock is declared with REQUIRES(mu_) / REQUIRES_SHARED(mu_),
//   - lock wrappers (htap::Mutex, htap::SharedMutex, SpinLatch, RWLatch) are
//     CAPABILITY types and the RAII guards are SCOPED_CAPABILITY types, so
//     the analysis crosses our own lock vocabulary.

#ifndef HTAP_COMMON_THREAD_ANNOTATIONS_H_
#define HTAP_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define HTAP_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define HTAP_THREAD_ANNOTATION_(x)  // no-op off Clang
#endif

// Type attributes -----------------------------------------------------------

/// Marks a class as a lock ("capability"); `x` names the capability kind in
/// diagnostics, e.g. CAPABILITY("mutex").
#define CAPABILITY(x) HTAP_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases a
/// capability (std::lock_guard-style).
#define SCOPED_CAPABILITY HTAP_THREAD_ANNOTATION_(scoped_lockable)

// Data-member attributes ----------------------------------------------------

/// The member may only be read/written while holding `x`.
#define GUARDED_BY(x) HTAP_THREAD_ANNOTATION_(guarded_by(x))

/// The pointed-to data (not the pointer itself) is protected by `x`.
#define PT_GUARDED_BY(x) HTAP_THREAD_ANNOTATION_(pt_guarded_by(x))

// Function attributes -------------------------------------------------------

/// Caller must hold `...` exclusively before calling; still held on return.
#define REQUIRES(...) \
  HTAP_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Caller must hold `...` at least shared before calling.
#define REQUIRES_SHARED(...) \
  HTAP_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// The function acquires the capability (and does not release it).
#define ACQUIRE(...) \
  HTAP_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Shared (reader) flavour of ACQUIRE.
#define ACQUIRE_SHARED(...) \
  HTAP_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// The function releases the capability (exclusive or shared).
#define RELEASE(...) \
  HTAP_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
  HTAP_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns `b`
/// (try-lock pattern).
#define TRY_ACQUIRE(b, ...) \
  HTAP_THREAD_ANNOTATION_(try_acquire_capability(b, __VA_ARGS__))

#define TRY_ACQUIRE_SHARED(b, ...) \
  HTAP_THREAD_ANNOTATION_(try_acquire_shared_capability(b, __VA_ARGS__))

/// Caller must NOT hold `...` (anti-deadlock assertion for re-entrancy).
#define EXCLUDES(...) HTAP_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// The function returns a reference to the capability `x`; lets guard
/// expressions like GUARDED_BY(table.latch()) resolve to the member latch.
#define RETURN_CAPABILITY(x) HTAP_THREAD_ANNOTATION_(lock_returned(x))

/// Asserts (without acquiring) that the capability is held — for helpers
/// reached only under a lock the analysis cannot see.
#define ASSERT_CAPABILITY(x) HTAP_THREAD_ANNOTATION_(assert_capability(x))

/// Escape hatch: disables the analysis for one function. Use only where a
/// restructure is genuinely impossible; every use needs a comment.
#define NO_THREAD_SAFETY_ANALYSIS \
  HTAP_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // HTAP_COMMON_THREAD_ANNOTATIONS_H_
