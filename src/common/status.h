// Status and Result<T>: the library-wide error-handling vocabulary.
//
// htapdb does not throw exceptions across public API boundaries. Every
// fallible operation returns either a Status (no payload) or a Result<T>
// (Status + value). The style follows RocksDB/Arrow.

#ifndef HTAP_COMMON_STATUS_H_
#define HTAP_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace htap {

/// Outcome of a fallible operation.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kNotFound,
    kAlreadyExists,
    kInvalidArgument,
    kConflict,       // write-write conflict; transaction must abort
    kAborted,        // transaction aborted (explicitly or by the system)
    kIOError,
    kCorruption,
    kNotSupported,
    kTimeout,
    kResourceExhausted,
    kInternal,
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg = "") {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status Conflict(std::string msg = "") {
    return Status(Code::kConflict, std::move(msg));
  }
  static Status Aborted(std::string msg = "") {
    return Status(Code::kAborted, std::move(msg));
  }
  static Status IOError(std::string msg = "") {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg = "") {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg = "") {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status Timeout(std::string msg = "") {
    return Status(Code::kTimeout, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg = "") {
    return Status(Code::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg = "") {
    return Status(Code::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsAlreadyExists() const { return code_ == Code::kAlreadyExists; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsConflict() const { return code_ == Code::kConflict; }
  bool IsAborted() const { return code_ == Code::kAborted; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsTimeout() const { return code_ == Code::kTimeout; }
  bool IsResourceExhausted() const {
    return code_ == Code::kResourceExhausted;
  }

  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Human-readable "CODE: message" string for logs and error surfaces.
  std::string ToString() const {
    if (ok()) return "OK";
    std::string name;
    switch (code_) {
      case Code::kOk: name = "OK"; break;
      case Code::kNotFound: name = "NotFound"; break;
      case Code::kAlreadyExists: name = "AlreadyExists"; break;
      case Code::kInvalidArgument: name = "InvalidArgument"; break;
      case Code::kConflict: name = "Conflict"; break;
      case Code::kAborted: name = "Aborted"; break;
      case Code::kIOError: name = "IOError"; break;
      case Code::kCorruption: name = "Corruption"; break;
      case Code::kNotSupported: name = "NotSupported"; break;
      case Code::kTimeout: name = "Timeout"; break;
      case Code::kResourceExhausted: name = "ResourceExhausted"; break;
      case Code::kInternal: name = "Internal"; break;
    }
    return msg_.empty() ? name : name + ": " + msg_;
  }

 private:
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  Code code_;
  std::string msg_;
};

/// A Status plus, on success, a value of type T.
template <typename T>
class Result {
 public:
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {                 // NOLINT
    assert(!status_.ok() && "OK Result must carry a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() {
    assert(ok());
    return *value_;
  }
  const T& value() const {
    assert(ok());
    return *value_;
  }
  T ValueOrDie() && {
    assert(ok());
    return std::move(*value_);
  }
  T value_or(T fallback) const { return ok() ? *value_ : std::move(fallback); }

  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagate a non-OK Status to the caller.
#define HTAP_RETURN_NOT_OK(expr)          \
  do {                                    \
    ::htap::Status _st = (expr);          \
    if (!_st.ok()) return _st;            \
  } while (0)

/// Evaluate a Result-returning expression; assign value or propagate Status.
#define HTAP_ASSIGN_OR_RETURN(lhs, expr)  \
  auto HTAP_CONCAT_(_res_, __LINE__) = (expr);            \
  if (!HTAP_CONCAT_(_res_, __LINE__).ok())                \
    return HTAP_CONCAT_(_res_, __LINE__).status();        \
  lhs = std::move(*HTAP_CONCAT_(_res_, __LINE__))

#define HTAP_CONCAT_INNER_(a, b) a##b
#define HTAP_CONCAT_(a, b) HTAP_CONCAT_INNER_(a, b)

}  // namespace htap

#endif  // HTAP_COMMON_STATUS_H_
