// Clocks. Real components use WallClock; the discrete-event simulator and
// freshness accounting use a VirtualClock that only advances when told to,
// which keeps distributed tests deterministic on any host.

#ifndef HTAP_COMMON_CLOCK_H_
#define HTAP_COMMON_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace htap {

/// Microseconds since an arbitrary epoch.
using Micros = int64_t;

/// Abstract time source.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual Micros NowMicros() const = 0;
};

/// Monotonic wall clock backed by std::chrono::steady_clock.
class WallClock : public Clock {
 public:
  Micros NowMicros() const override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  /// Process-wide shared instance.
  static WallClock* Default() {
    static WallClock clock;
    return &clock;
  }
};

/// Manually-advanced clock for deterministic simulation.
class VirtualClock : public Clock {
 public:
  Micros NowMicros() const override {
    // order: acquire pairs with the release advances — sim state written
    // before an advance is visible to anyone who observes the new time.
    return now_.load(std::memory_order_acquire);
  }

  void AdvanceTo(Micros t) {
    Micros cur = now_.load(std::memory_order_relaxed);
    // order: release on success pairs with NowMicros()'s acquire.
    while (t > cur &&
           !now_.compare_exchange_weak(cur, t, std::memory_order_release)) {
    }
  }

  // order: acq_rel — advances both publish prior sim state (release) and
  // observe earlier advances (acquire) so time is monotone across threads.
  void AdvanceBy(Micros d) { now_.fetch_add(d, std::memory_order_acq_rel); }

 private:
  std::atomic<Micros> now_{0};
};

/// Simple stopwatch over a Clock.
class Stopwatch {
 public:
  explicit Stopwatch(const Clock* clock = WallClock::Default())
      : clock_(clock), start_(clock->NowMicros()) {}

  Micros ElapsedMicros() const { return clock_->NowMicros() - start_; }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedMicros()) / 1e6;
  }
  void Restart() { start_ = clock_->NowMicros(); }

 private:
  const Clock* clock_;
  Micros start_;
};

}  // namespace htap

#endif  // HTAP_COMMON_CLOCK_H_
