#include "common/thread_pool.h"

namespace htap {

void TaskGroup::Run(std::function<void()> task) {
  if (pool_ == nullptr) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++pending_;
  }
  std::function<void()> wrapped = [this, task = std::move(task)] {
    task();
    std::lock_guard<std::mutex> lk(mu_);
    if (--pending_ == 0) cv_.notify_all();
  };
  // Pool shutting down: run on the caller so Wait() still terminates.
  if (!pool_->Submit(wrapped)) wrapped();
}

void TaskGroup::Wait() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [this] { return pending_ == 0; });
}

ThreadPool::ThreadPool(size_t num_threads, std::string name)
    : name_(std::move(name)) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

bool ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (shutdown_) return false;
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return true;
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk, [this] { return queue_.empty() && running_ == 0; });
}

size_t ThreadPool::QueueDepth() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queue_.size();
}

void ThreadPool::SetConcurrencyQuota(size_t quota) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    quota_ = quota;
  }
  cv_.notify_all();
}

size_t ThreadPool::concurrency_quota() const {
  std::lock_guard<std::mutex> lk(mu_);
  return quota_;
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] {
        return shutdown_ ||
               (!queue_.empty() && (quota_ == 0 || running_ < quota_));
      });
      if (shutdown_ && queue_.empty()) return;
      if (queue_.empty() || (quota_ != 0 && running_ >= quota_)) continue;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    task();
    {
      std::lock_guard<std::mutex> lk(mu_);
      --running_;
      if (queue_.empty() && running_ == 0) idle_cv_.notify_all();
    }
    cv_.notify_one();
  }
}

}  // namespace htap
