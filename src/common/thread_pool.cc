#include "common/thread_pool.h"

namespace htap {

void TaskGroup::Run(std::function<void()> task) {
  if (pool_ == nullptr) {
    task();
    return;
  }
  {
    MutexLock lk(&mu_);
    ++pending_;
  }
  std::function<void()> wrapped = [this, task = std::move(task)] {
    task();
    MutexLock lk(&mu_);
    if (--pending_ == 0) cv_.NotifyAll();
  };
  // Pool shutting down: run on the caller so Wait() still terminates.
  if (!pool_->Submit(wrapped)) wrapped();
}

void TaskGroup::Wait() {
  MutexLock lk(&mu_);
  while (pending_ != 0) cv_.Wait(mu_);
}

ThreadPool::ThreadPool(size_t num_threads, std::string name)
    : name_(std::move(name)) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lk(&mu_);
    shutdown_ = true;
  }
  cv_.NotifyAll();
  for (auto& t : threads_) t.join();
}

bool ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lk(&mu_);
    if (shutdown_) return false;
    queue_.push_back(std::move(task));
  }
  cv_.NotifyOne();
  return true;
}

void ThreadPool::Wait() {
  MutexLock lk(&mu_);
  while (!queue_.empty() || running_ != 0) idle_cv_.Wait(mu_);
}

size_t ThreadPool::QueueDepth() const {
  MutexLock lk(&mu_);
  return queue_.size();
}

void ThreadPool::SetConcurrencyQuota(size_t quota) {
  {
    MutexLock lk(&mu_);
    quota_ = quota;
  }
  cv_.NotifyAll();
}

size_t ThreadPool::concurrency_quota() const {
  MutexLock lk(&mu_);
  return quota_;
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lk(&mu_);
      while (!shutdown_ &&
             (queue_.empty() || (quota_ != 0 && running_ >= quota_))) {
        cv_.Wait(mu_);
      }
      if (shutdown_ && queue_.empty()) return;
      if (queue_.empty() || (quota_ != 0 && running_ >= quota_)) continue;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    task();
    {
      MutexLock lk(&mu_);
      --running_;
      if (queue_.empty() && running_ == 0) idle_cv_.NotifyAll();
    }
    cv_.NotifyOne();
  }
}

}  // namespace htap
