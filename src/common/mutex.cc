#include "common/mutex.h"

#include <cstdio>
#include <cstdlib>

namespace htap {
namespace lock_rank {
namespace {

// Per-thread stack of currently-held locks. Fixed-size: no allocation on the
// lock path, and 64 simultaneously-held locks per thread is far beyond any
// real nesting in this codebase (deepest observed chain is 5).
struct Held {
  const void* lock;
  uint16_t rank;
  const char* name;
};

constexpr int kMaxHeld = 64;
thread_local Held t_held[kMaxHeld];
thread_local int t_depth = 0;

[[noreturn]] void Die(const char* fmt, const char* a, unsigned ar,
                      const char* b, unsigned br) {
  std::fprintf(stderr, fmt, a, ar, b, br);
  std::fflush(stderr);
  std::abort();
}

void Record(const void* lock, uint16_t rank, const char* name) {
  if (t_depth >= kMaxHeld) {
    Die("htap lock-rank: held-lock stack overflow acquiring \"%s\" (rank %u);"
        " outermost held is \"%s\" (rank %u)\n",
        name, rank, t_held[0].name, t_held[0].rank);
  }
  t_held[t_depth++] = Held{lock, rank, name};
}

}  // namespace

void OnAcquire(const void* lock, uint16_t rank, const char* name) {
  // Validate against every held lock, not just the top: releases may be
  // non-LIFO, so the maximum held rank can sit anywhere in the stack.
  for (int i = 0; i < t_depth; ++i) {
    if (t_held[i].rank > rank) {
      Die("htap lock-rank violation: acquiring \"%s\" (rank %u) while "
          "holding \"%s\" (rank %u); see DESIGN.md #11 for the global "
          "lock order\n",
          name, rank, t_held[i].name, t_held[i].rank);
    }
  }
  Record(lock, rank, name);
}

void OnTryAcquire(const void* lock, uint16_t rank, const char* name) {
  // TryLock never blocks, so an out-of-order try-acquisition cannot
  // deadlock; record the hold without validating so that *subsequent*
  // blocking acquisitions are still checked against it.
  Record(lock, rank, name);
}

void OnRelease(const void* lock) {
  // Drop the most recent record for this lock; tolerate non-LIFO release.
  for (int i = t_depth - 1; i >= 0; --i) {
    if (t_held[i].lock == lock) {
      for (int j = i; j + 1 < t_depth; ++j) t_held[j] = t_held[j + 1];
      --t_depth;
      return;
    }
  }
  // Unlock of a lock this thread never recorded: only possible if a lock
  // was handed between threads (std::mutex forbids that) — ignore.
}

int HeldCountForTest() { return t_depth; }

}  // namespace lock_rank
}  // namespace htap
