// Annotated, ranked lock wrappers. htap::Mutex / htap::SharedMutex are
// drop-in replacements for std::mutex / std::shared_mutex that
//   (a) carry Clang thread-safety CAPABILITY annotations so -Wthread-safety
//       can follow our own lock vocabulary across the codebase, and
//   (b) in HTAP_LOCK_RANK builds carry a LockRank + name and feed a runtime
//       lock-rank checker: a thread-local stack of held ranks that aborts —
//       printing both lock names — the moment any thread acquires a lock
//       whose rank is lower than one it already holds. Capability analysis
//       is intra-procedural and cannot see cross-mutex ordering; the rank
//       checker covers exactly that gap (DESIGN.md §11).
//
// In release builds (HTAP_LOCK_RANK off) the rank/name are not stored and
// every check compiles away: sizeof(htap::Mutex) == sizeof(std::mutex),
// enforced by static_assert below. The toggle is a project-wide compile
// definition (not NDEBUG) so mixed translation units can never disagree on
// the wrapper layout (ODR).

#ifndef HTAP_COMMON_MUTEX_H_
#define HTAP_COMMON_MUTEX_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

#if !defined(HTAP_LOCK_RANK_CHECKS)
#if defined(HTAP_ENABLE_LOCK_RANK_CHECKS)
#define HTAP_LOCK_RANK_CHECKS 1
#else
#define HTAP_LOCK_RANK_CHECKS 0
#endif
#endif

namespace htap {

/// Global lock-acquisition order, ascending: a thread holding a lock of rank
/// R may only acquire locks of rank >= R. Equal ranks are permitted (no two
/// same-rank locks nest anywhere today; a future same-rank pair must order
/// by address or use TryLock). The ranking is derived from the real nesting
/// chains in the code — see DESIGN.md §11 for the evidence per edge.
enum class LockRank : uint16_t {
  kSyncDaemon = 100,    // SyncDaemon::tasks_mu_ (outermost: holds across SyncTo)
  kTxnCommit = 200,     // TransactionManager::publish_mu_ (orders sink publication)
  kTxnShard = 210,      // TransactionManager per-shard commit frontier (inflight CSNs)
  kTxnSinks = 250,      // TransactionManager::sinks_mu_ (held while notifying engines)
  kEngineTableSync = 280,  // per-TableState IMCS merge mutex (disk engine;
                           // held across the generation snapshot + drain)
  kEngineTables = 300,  // each engine's tables_mu_ (table-map + per-table state)
  kEngineTableStats = 350,  // per-TableState stats mutex (held across store sampling)
  kSyncMerge = 400,     // DataSynchronizer::mu_ / per-table IMCS merge mutex
  kDiskHeap = 450,      // DiskRowStore::mu_ (heap file + buffer pool)
  kTableLatch = 500,    // ColumnTable::latch_ (RWLatch over row groups)
  kDeltaStore = 550,    // delta-store mutexes (in-memory, L1/L2, log)
  kStoreChains = 600,   // MvccRowStore chain-directory stripes
  kBtree = 650,         // BTree::smo_mu_ (serializes merges/root collapse)
  kEbr = 660,           // EpochManager::limbo_mu_ (taken under SMO via Retire)
  kVersionChain = 700,  // per-VersionChain SpinLatch
  kTxnActive = 750,     // TransactionManager::active_mu_ (taken under chain latch
                        // via Visible() -> GetCommitInfo())
  kWal = 800,           // WalWriter::mu_ (taken under chain latch via LogDml)
  kCatalog = 850,       // Catalog::mu_ (innermost registry; published to from sync)
  kFreshness = 860,     // FreshnessTracker::mu_
  kAdvisor = 870,       // ColumnAdvisor::mu_
  kTaskGroup = 900,     // TaskGroup::mu_ (taken under table latch during fan-out)
  kThreadPool = 910,    // ThreadPool::mu_ (taken under TaskGroup::Run)
  kLeaf = 1000,         // default: strictly-leaf locks that never nest others
};

namespace lock_rank {

// Internals of the runtime checker; compiled unconditionally (tiny), called
// only when HTAP_LOCK_RANK_CHECKS is on. Exposed for lock_rank_test.
//
// OnAcquire: validate `rank` against every rank this thread already holds
// and abort with both names on violation, then record the hold.
// OnTryAcquire: record without validating (try-lock escape hatch — a failed
// ordering cannot deadlock because TryLock never blocks).
// OnRelease: drop the most recent record for `lock` (non-LIFO release ok).
void OnAcquire(const void* lock, uint16_t rank, const char* name);
void OnTryAcquire(const void* lock, uint16_t rank, const char* name);
void OnRelease(const void* lock);

/// Number of locks the calling thread currently holds (test hook).
int HeldCountForTest();

}  // namespace lock_rank

/// Annotated, ranked std::mutex. Also satisfies the standard Lockable
/// concept (lowercase lock/unlock/try_lock) so it works with
/// std::condition_variable_any and std::scoped_lock.
class CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex([[maybe_unused]] LockRank rank = LockRank::kLeaf,
                 [[maybe_unused]] const char* name = "mutex")
#if HTAP_LOCK_RANK_CHECKS
      : rank_(static_cast<uint16_t>(rank)), name_(name)
#endif
  {
  }

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() {
#if HTAP_LOCK_RANK_CHECKS
    lock_rank::OnAcquire(this, rank_, name_);
#endif
    mu_.lock();
  }

  void Unlock() RELEASE() {
    mu_.unlock();
#if HTAP_LOCK_RANK_CHECKS
    lock_rank::OnRelease(this);
#endif
  }

  bool TryLock() TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
#if HTAP_LOCK_RANK_CHECKS
    lock_rank::OnTryAcquire(this, rank_, name_);
#endif
    return true;
  }

  // Lockable concept (condition_variable_any, std::scoped_lock).
  void lock() ACQUIRE() { Lock(); }
  void unlock() RELEASE() { Unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return TryLock(); }

 private:
  std::mutex mu_;
#if HTAP_LOCK_RANK_CHECKS
  uint16_t rank_;
  const char* name_;
#endif
};

/// Annotated, ranked std::shared_mutex. Shared (reader) acquisitions obey
/// the same rank order as exclusive ones.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  explicit SharedMutex([[maybe_unused]] LockRank rank = LockRank::kLeaf,
                       [[maybe_unused]] const char* name = "shared_mutex")
#if HTAP_LOCK_RANK_CHECKS
      : rank_(static_cast<uint16_t>(rank)), name_(name)
#endif
  {
  }

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() {
#if HTAP_LOCK_RANK_CHECKS
    lock_rank::OnAcquire(this, rank_, name_);
#endif
    mu_.lock();
  }

  void Unlock() RELEASE() {
    mu_.unlock();
#if HTAP_LOCK_RANK_CHECKS
    lock_rank::OnRelease(this);
#endif
  }

  void LockShared() ACQUIRE_SHARED() {
#if HTAP_LOCK_RANK_CHECKS
    lock_rank::OnAcquire(this, rank_, name_);
#endif
    mu_.lock_shared();
  }

  void UnlockShared() RELEASE_SHARED() {
    mu_.unlock_shared();
#if HTAP_LOCK_RANK_CHECKS
    lock_rank::OnRelease(this);
#endif
  }

  bool TryLock() TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
#if HTAP_LOCK_RANK_CHECKS
    lock_rank::OnTryAcquire(this, rank_, name_);
#endif
    return true;
  }

 private:
  std::shared_mutex mu_;
#if HTAP_LOCK_RANK_CHECKS
  uint16_t rank_;
  const char* name_;
#endif
};

/// RAII exclusive lock on an htap::Mutex (std::lock_guard counterpart the
/// capability analysis understands).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// Condition variable paired with htap::Mutex. Waits relock through the
/// annotated/ranked Lock(), so the checker stays consistent across waits.
/// Call sites use explicit `while (!cond) cv.Wait(mu);` loops — predicate
/// lambdas are opaque to the capability analysis.
class CondVar {
 public:
  void Wait(Mutex& mu) REQUIRES(mu) { cv_.wait(mu); }
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

#if !HTAP_LOCK_RANK_CHECKS
// Zero-cost guarantee: with the checker off the wrappers are layout-identical
// to the standard types they wrap.
static_assert(sizeof(Mutex) == sizeof(std::mutex),
              "htap::Mutex must add no state in release builds");
static_assert(sizeof(SharedMutex) == sizeof(std::shared_mutex),
              "htap::SharedMutex must add no state in release builds");
#endif

}  // namespace htap

#endif  // HTAP_COMMON_MUTEX_H_
