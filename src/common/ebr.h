// Epoch-based memory reclamation (EBR) for optimistic, latch-free readers
// (DESIGN.md §15). A reader pins the current global epoch for the duration
// of its traversal; a writer that unlinks a node Retire()s it instead of
// freeing it. The global epoch only advances when every pinned thread has
// caught up to it, and a retired node is freed two epoch advances after its
// retirement — by which point no reader that could still hold a reference
// to it can be pinned. This is the classic three-epoch scheme (Fraser '04;
// crossbeam/folly use the same grace-period arithmetic).
//
// Usage:
//   EpochManager::Guard g(EpochManager::Global());   // pin (re-entrant)
//   ... traverse latch-free structure ...
//   // writer side, with the node already unlinked from every parent:
//   mgr.Retire(node, [](void* p) { delete static_cast<Node*>(p); });
//
// Threads register themselves lazily on first pin (a fixed slot table,
// claimed by CAS, cached in a thread_local). Slots are never returned — a
// dead thread's slot reads quiescent forever and never blocks advancement.
// The manager's destructor frees everything still in limbo (by then no
// thread may touch the protected structure).

#ifndef HTAP_COMMON_EBR_H_
#define HTAP_COMMON_EBR_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace htap {

class EpochManager {
 public:
  EpochManager();
  ~EpochManager();

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// Process-wide instance used by the B+-tree (one shared slot table keeps
  /// the per-operation pin to a single thread_local hit).
  static EpochManager& Global();

  struct Slot;

  /// RAII epoch pin. Re-entrant: nested guards on the same thread share one
  /// pin; only the outermost enters/leaves the epoch.
  class Guard {
   public:
    explicit Guard(EpochManager& mgr);
    ~Guard();
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    Slot* const slot_;
  };

  /// Defers `deleter(ptr)` until no pinned reader can still reach `ptr`.
  /// The caller must have already unlinked `ptr` from the shared structure.
  /// Safe to call while pinned (the free is deferred past our own pin).
  void Retire(void* ptr, void (*deleter)(void*));

  /// Advances the global epoch if every pinned thread has observed it, and
  /// frees the limbo generation that just became unreachable. Returns true
  /// if the epoch advanced. Cheap enough to call opportunistically.
  bool TryAdvance();

  /// Drives TryAdvance until everything retire-able has been freed or a
  /// pinned thread blocks further progress. With no concurrent pins this
  /// drains the limbo lists completely.
  void Quiesce();

  // Observability / test hooks.
  // order: acquire — a test that observes epoch N also sees the frees that
  // advancing to N implied.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }
  size_t limbo_size() const;                 // items awaiting reclamation
  uint64_t reclaimed() const {               // deleters run so far
    return reclaimed_.load(std::memory_order_relaxed);
  }
  // order: acquire pairs with ClaimSlot's high-water-mark publication.
  size_t registered_threads() const {
    return slot_count_.load(std::memory_order_acquire);
  }

  /// Slot table capacity: more distinct threads than this pinning one
  /// manager over its lifetime aborts (slots are never recycled).
  static constexpr size_t kMaxSlots = 512;

  struct alignas(64) Slot {
    /// Pinned epoch, or kQuiescent when the owning thread is not inside a
    /// guarded section.
    std::atomic<uint64_t> state{kQuiescent};
    /// Owning thread serial; 0 = unclaimed. Claimed once by CAS, kept for
    /// the thread's lifetime.
    std::atomic<uint64_t> owner{0};
    /// Guard nesting depth — touched only by the owning thread.
    uint32_t depth = 0;
  };

  static constexpr uint64_t kQuiescent = ~0ULL;

 private:
  struct LimboItem {
    void* ptr;
    void (*deleter)(void*);
  };

  Slot* ClaimSlot();
  void FreeBucket(size_t idx);

  /// Unique per-manager serial so a thread_local slot cache entry can never
  /// be mistaken for one belonging to a destroyed manager at the same
  /// address.
  const uint64_t serial_;

  std::atomic<uint64_t> epoch_{2};  // start above the free-window lookback
  std::atomic<size_t> slot_count_{0};
  // Sized kMaxSlots at construction and never reallocated; each Slot is
  // internally atomic, so the vector itself needs no lock.
  // htap-lint: guarded-by — fixed-size at construction; elements are
  // individually synchronized via their atomic fields.
  std::vector<Slot> slots_;

  // Three limbo generations, indexed by retirement epoch % 3. A bucket is
  // freed when the epoch has advanced twice past its generation, at which
  // point the index is about to be reused for the new epoch.
  mutable Mutex limbo_mu_{LockRank::kEbr, "ebr-limbo"};
  std::vector<LimboItem> limbo_[3] GUARDED_BY(limbo_mu_);

  std::atomic<uint64_t> reclaimed_{0};
  std::atomic<uint64_t> retire_count_{0};
};

}  // namespace htap

#endif  // HTAP_COMMON_EBR_H_
