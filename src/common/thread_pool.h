// Fixed-size thread pool with a resizable admission quota. The resource
// scheduler (src/sched) throttles OLTP/OLAP work not by killing threads but
// by adjusting each pool's quota of in-flight tasks, which behaves well even
// on single-core hosts.

#ifndef HTAP_COMMON_THREAD_POOL_H_
#define HTAP_COMMON_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace htap {

class ThreadPool;

/// Completion tracking for one batch of tasks on a shared pool. A query
/// fans its morsels out through Run() and blocks in Wait() for exactly its
/// own tasks — unlike ThreadPool::Wait(), which drains the whole pool and
/// would couple unrelated queries. Falls back to inline execution when the
/// pool is absent or shutting down, so callers never need a serial branch.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}
  ~TaskGroup() { Wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Schedules `task` on the pool (or runs it inline if there is none).
  void Run(std::function<void()> task);

  /// Blocks until every task passed to Run() has finished.
  void Wait();

 private:
  ThreadPool* const pool_;  // set at construction, never reseated
  Mutex mu_{LockRank::kTaskGroup, "task-group"};
  CondVar cv_;
  size_t pending_ GUARDED_BY(mu_) = 0;
};

/// A pool of worker threads draining a FIFO task queue.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads, std::string name = "pool");
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Returns false if the pool is shutting down.
  bool Submit(std::function<void()> task);

  /// Block until the queue is empty and all workers are idle.
  void Wait();

  /// Number of tasks waiting in the queue (diagnostic).
  size_t QueueDepth() const;

  /// Limit on concurrently running tasks; the scheduler adjusts this to
  /// reapportion CPU between OLTP and OLAP pools. 0 means "no limit".
  void SetConcurrencyQuota(size_t quota);
  size_t concurrency_quota() const;

  size_t num_threads() const { return threads_.size(); }
  const std::string& name() const { return name_; }

 private:
  void WorkerLoop();

  const std::string name_;
  mutable Mutex mu_{LockRank::kThreadPool, "thread-pool"};
  CondVar cv_;       // wakes workers
  CondVar idle_cv_;  // wakes Wait()
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  // htap-lint: guarded-by — filled in the constructor and joined in the
  // destructor only; no concurrent access phase exists.
  std::vector<std::thread> threads_;
  size_t running_ GUARDED_BY(mu_) = 0;
  size_t quota_ GUARDED_BY(mu_) = 0;  // 0 = unlimited
  bool shutdown_ GUARDED_BY(mu_) = false;
};

}  // namespace htap

#endif  // HTAP_COMMON_THREAD_POOL_H_
