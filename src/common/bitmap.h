// Dynamic bitset used for delete bitmaps and null bitmaps in the columnar
// store. Grows on demand; popcount and logical ops are provided for the
// scan paths.

#ifndef HTAP_COMMON_BITMAP_H_
#define HTAP_COMMON_BITMAP_H_

#include <bit>
#include <cstdint>
#include <vector>

namespace htap {

/// A growable bitmap. Bits default to 0. Not thread-safe; callers latch.
class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(size_t nbits) { Resize(nbits); }

  void Resize(size_t nbits) {
    nbits_ = nbits;
    words_.resize((nbits + 63) / 64, 0);
  }

  size_t size() const { return nbits_; }

  void Set(size_t i) {
    EnsureCapacity(i);
    words_[i >> 6] |= (1ULL << (i & 63));
  }

  void Clear(size_t i) {
    if (i >= nbits_) return;
    words_[i >> 6] &= ~(1ULL << (i & 63));
  }

  bool Test(size_t i) const {
    if (i >= nbits_) return false;
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  /// Number of set bits.
  size_t Count() const {
    size_t c = 0;
    for (uint64_t w : words_) c += static_cast<size_t>(std::popcount(w));
    return c;
  }

  bool AnySet() const {
    for (uint64_t w : words_)
      if (w != 0) return true;
    return false;
  }

  void ClearAll() {
    for (auto& w : words_) w = 0;
  }

  /// this |= other (sizes need not match; grows to fit).
  void UnionWith(const Bitmap& other) {
    if (other.nbits_ > nbits_) Resize(other.nbits_);
    for (size_t i = 0; i < other.words_.size(); ++i) words_[i] |= other.words_[i];
  }

  /// Raw words, for serialization.
  const std::vector<uint64_t>& words() const { return words_; }

  /// Approximate heap footprint in bytes.
  size_t MemoryBytes() const { return words_.capacity() * sizeof(uint64_t); }

 private:
  void EnsureCapacity(size_t i) {
    if (i >= nbits_) {
      nbits_ = i + 1;
      const size_t need = (nbits_ + 63) / 64;
      if (need > words_.size()) words_.resize(need, 0);
    }
  }

  size_t nbits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace htap

#endif  // HTAP_COMMON_BITMAP_H_
