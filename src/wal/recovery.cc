#include "wal/recovery.h"

#include <map>
#include <unordered_map>

namespace htap {

RecoveryStats ReplayWal(
    const std::vector<WalRecord>& records,
    const std::function<void(const WalRecord& rec, CSN csn)>& apply) {
  RecoveryStats stats;
  stats.records_scanned = records.size();

  // Pass 1: commit order (position of the commit record in the log).
  std::unordered_map<uint64_t, CSN> commit_csn;
  std::unordered_map<uint64_t, bool> aborted;
  CSN next_csn = 1;
  for (const WalRecord& r : records) {
    if (r.type == WalRecordType::kCommit) commit_csn[r.txn_id] = ++next_csn;
    if (r.type == WalRecordType::kAbort) aborted[r.txn_id] = true;
  }

  // Pass 2: redo DML of committed transactions, grouped per transaction,
  // in commit order. Buffer per txn to preserve intra-txn order while
  // emitting whole transactions by CSN.
  std::unordered_map<uint64_t, std::vector<const WalRecord*>> dml;
  for (const WalRecord& r : records) {
    switch (r.type) {
      case WalRecordType::kInsert:
      case WalRecordType::kUpdate:
      case WalRecordType::kDelete:
        if (commit_csn.count(r.txn_id) != 0) dml[r.txn_id].push_back(&r);
        break;
      default:
        break;
    }
  }

  std::map<CSN, uint64_t> by_csn;
  for (const auto& [txn, csn] : commit_csn) by_csn[csn] = txn;
  for (const auto& [csn, txn] : by_csn) {
    const auto it = dml.find(txn);
    if (it == dml.end()) continue;
    for (const WalRecord* r : it->second) {
      apply(*r, csn);
      ++stats.changes_applied;
    }
    stats.last_csn = csn;
  }

  stats.txns_committed = commit_csn.size();
  // Discarded = transactions that wrote DML but never committed.
  std::unordered_map<uint64_t, bool> seen;
  for (const WalRecord& r : records) {
    if (r.type == WalRecordType::kInsert || r.type == WalRecordType::kUpdate ||
        r.type == WalRecordType::kDelete) {
      if (commit_csn.count(r.txn_id) == 0 && !seen[r.txn_id]) {
        seen[r.txn_id] = true;
        ++stats.txns_discarded;
      }
    }
  }
  return stats;
}

}  // namespace htap
