#include "wal/wal.h"

#include <cstring>

namespace htap {

uint32_t WalChecksum(const char* data, size_t n) {
  uint64_t h = 14695981039346656037ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<uint8_t>(data[i]);
    h *= 1099511628211ULL;
  }
  return static_cast<uint32_t>(h ^ (h >> 32));
}

void WalRecord::EncodeTo(std::string* out) const {
  out->push_back(static_cast<char>(type));
  Value(static_cast<int64_t>(txn_id)).EncodeTo(out);
  Value(static_cast<int64_t>(table_id)).EncodeTo(out);
  Value(key).EncodeTo(out);
  Value(static_cast<int64_t>(csn)).EncodeTo(out);
  row.EncodeTo(out);
}

bool WalRecord::DecodeFrom(const std::string& in, size_t* pos,
                           WalRecord* out) {
  if (*pos >= in.size()) return false;
  out->type = static_cast<WalRecordType>(in[(*pos)++]);
  Value v;
  if (!Value::DecodeFrom(in, pos, &v) || !v.is_int64()) return false;
  out->txn_id = static_cast<uint64_t>(v.AsInt64());
  if (!Value::DecodeFrom(in, pos, &v) || !v.is_int64()) return false;
  out->table_id = static_cast<uint32_t>(v.AsInt64());
  if (!Value::DecodeFrom(in, pos, &v) || !v.is_int64()) return false;
  out->key = v.AsInt64();
  if (!Value::DecodeFrom(in, pos, &v) || !v.is_int64()) return false;
  out->csn = static_cast<CSN>(v.AsInt64());
  return Row::DecodeFrom(in, pos, &out->row);
}

WalWriter::WalWriter(Options options) : options_(std::move(options)) {
  if (!options_.path.empty()) {
    file_ = std::fopen(options_.path.c_str(), "wb");
  }
}

WalWriter::~WalWriter() {
  Sync();
  if (file_) std::fclose(file_);
}

uint64_t WalWriter::Append(const WalRecord& rec) {
  std::string payload;
  rec.EncodeTo(&payload);
  const uint32_t len = static_cast<uint32_t>(payload.size());
  const uint32_t crc = WalChecksum(payload.data(), payload.size());

  MutexLock lk(&mu_);
  const uint64_t lsn = tail_lsn_;
  char hdr[8];
  std::memcpy(hdr, &len, 4);
  std::memcpy(hdr + 4, &crc, 4);
  buffer_.append(hdr, 8);
  buffer_.append(payload);
  tail_lsn_ += 8 + payload.size();
  return lsn;
}

Status WalWriter::Sync() {
  MutexLock lk(&mu_);
  if (buffer_.empty()) return Status::OK();
  memory_log_.append(buffer_);
  if (file_) {
    const size_t n = std::fwrite(buffer_.data(), 1, buffer_.size(), file_);
    if (n != buffer_.size()) return Status::IOError("wal short write");
    if (options_.sync_on_commit) std::fflush(file_);
  }
  flushed_lsn_ = tail_lsn_;
  buffer_.clear();
  ++sync_count_;
  return Status::OK();
}

uint64_t WalWriter::TailLsn() const {
  MutexLock lk(&mu_);
  return tail_lsn_;
}

std::string WalWriter::ContentsForTest() const {
  MutexLock lk(&mu_);
  return memory_log_ + buffer_;
}

std::vector<WalRecord> WalReader::Parse(const std::string& contents) {
  std::vector<WalRecord> out;
  size_t pos = 0;
  while (pos + 8 <= contents.size()) {
    uint32_t len, crc;
    std::memcpy(&len, contents.data() + pos, 4);
    std::memcpy(&crc, contents.data() + pos + 4, 4);
    if (pos + 8 + len > contents.size()) break;  // torn tail
    const char* payload = contents.data() + pos + 8;
    if (WalChecksum(payload, len) != crc) break;  // corrupt tail
    std::string p(payload, len);
    size_t ppos = 0;
    WalRecord rec;
    if (!WalRecord::DecodeFrom(p, &ppos, &rec)) break;
    out.push_back(std::move(rec));
    pos += 8 + len;
  }
  return out;
}

Result<std::vector<WalRecord>> WalReader::ReadFile(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return Status::IOError("cannot open wal file: " + path);
  std::string contents;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) contents.append(buf, n);
  std::fclose(f);
  return Parse(contents);
}

}  // namespace htap
