// Crash recovery: redo-replay of a WAL into any state consumer.
//
// Two-pass ARIES-lite (redo-only; in-memory stores need no undo since
// uncommitted changes die with the process): pass 1 finds committed
// transactions in commit order; pass 2 re-applies their DML records with
// freshly assigned CSNs.

#ifndef HTAP_WAL_RECOVERY_H_
#define HTAP_WAL_RECOVERY_H_

#include <functional>
#include <vector>

#include "wal/wal.h"

namespace htap {

struct RecoveryStats {
  size_t records_scanned = 0;
  size_t txns_committed = 0;
  size_t txns_discarded = 0;  // uncommitted or explicitly aborted
  size_t changes_applied = 0;
  CSN last_csn = 0;
};

/// Replays committed changes in commit order. `apply` receives each DML
/// record with the CSN of its transaction.
RecoveryStats ReplayWal(
    const std::vector<WalRecord>& records,
    const std::function<void(const WalRecord& rec, CSN csn)>& apply);

}  // namespace htap

#endif  // HTAP_WAL_RECOVERY_H_
