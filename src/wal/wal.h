// Write-ahead log: record format, writer (with group commit), and reader.
//
// The WAL is the durability substrate for the MVCC+logging technique family
// (Table 2, TP row) and the source for log-shipped replication. Records are
// framed [u32 length][u32 checksum][payload]; payload uses the Value codec.
//
// The writer supports two backends: a real file (durable, used by the disk
// architectures and recovery tests) and an in-memory buffer (used by the
// simulator and by benchmarks that isolate CPU cost from I/O).

#ifndef HTAP_WAL_WAL_H_
#define HTAP_WAL_WAL_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "txn/types.h"

namespace htap {

/// Kinds of WAL records.
enum class WalRecordType : uint8_t {
  kBegin = 0,
  kInsert = 1,
  kUpdate = 2,
  kDelete = 3,
  kCommit = 4,
  kAbort = 5,
  kCheckpoint = 6,
};

/// One log record. DML records carry the table, key, and new row image
/// (redo-only logging; undo lives in memory).
struct WalRecord {
  WalRecordType type = WalRecordType::kBegin;
  uint64_t txn_id = 0;
  uint32_t table_id = 0;
  Key key = 0;
  Row row;       // insert/update payload
  CSN csn = 0;   // commit record: the commit CSN

  void EncodeTo(std::string* out) const;
  static bool DecodeFrom(const std::string& in, size_t* pos, WalRecord* out);
};

/// Append-only log writer. Thread-safe. Flush policy: DML appends buffer in
/// memory; Sync() (called at commit) flushes the group to the backend, so
/// concurrent committers share one flush (group commit).
class WalWriter {
 public:
  struct Options {
    std::string path;        // empty = in-memory only
    bool sync_on_commit = false;  // fsync each group (off: OS buffering)
  };

  explicit WalWriter(Options options);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends a record to the in-memory group buffer. Returns the LSN (byte
  /// offset the record will land at).
  uint64_t Append(const WalRecord& rec);

  /// Flushes all buffered records to the backend (group commit point).
  Status Sync();

  /// Bytes appended so far (buffered + flushed).
  uint64_t TailLsn() const;
  /// Number of Sync() calls that performed real work (diagnostic).
  uint64_t sync_count() const {
    MutexLock lk(&mu_);
    return sync_count_;
  }

  /// Copy of the full log contents (in-memory backend or test use).
  std::string ContentsForTest() const;

 private:
  const Options options_;
  mutable Mutex mu_{LockRank::kWal, "wal-writer"};
  std::string buffer_ GUARDED_BY(mu_);      // unflushed group
  std::string memory_log_ GUARDED_BY(mu_);  // in-memory backend (always kept;
                                            // cheap + used by replication)
  uint64_t tail_lsn_ GUARDED_BY(mu_) = 0;
  uint64_t flushed_lsn_ GUARDED_BY(mu_) = 0;
  uint64_t sync_count_ GUARDED_BY(mu_) = 0;
  FILE* file_ GUARDED_BY(mu_) = nullptr;
};

/// Reads a WAL file (or in-memory image) back into records. Tolerates a
/// truncated tail (torn final record), as crash recovery requires.
class WalReader {
 public:
  /// Parses `contents`; stops cleanly at corruption/truncation.
  static std::vector<WalRecord> Parse(const std::string& contents);

  /// Reads and parses a WAL file from disk.
  static Result<std::vector<WalRecord>> ReadFile(const std::string& path);
};

/// 32-bit checksum used to frame WAL records (FNV-1a folded).
uint32_t WalChecksum(const char* data, size_t n);

}  // namespace htap

#endif  // HTAP_WAL_WAL_H_
