// SpillRun: a temporary on-disk run of encoded bytes for out-of-core
// operators — currently the grace hash join (DESIGN.md §§9, 13), which
// spills oversized build/probe partitions here and reads them back
// partition-at-a-time.
//
// A run is append-then-read: the producer appends encoded bytes, the
// consumer calls ReadAll() once, and the file is unlinked on Discard() or
// destruction. Files are named `htap-spill-<pid>-<seq>-<tag>.run` inside
// the chosen directory (DefaultSpillDir() = the system temp directory), so
// tooling can find leaks by prefix — ci.sh fails the build if any
// `htap-spill-*` file survives a bench or test run.
//
// SpillPage is the unit the grace join writes: a column slice of join keys
// plus the rows' original input indices. Payload columns never spill — the
// join is late-materializing (DESIGN.md §13), so only (index, key) pairs go
// to disk and a partition rehydrates straight into a key column, not rows.
// A page is self-delimiting; a run is a concatenation of pages.

#ifndef HTAP_STORAGE_SPILL_FILE_H_
#define HTAP_STORAGE_SPILL_FILE_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/status.h"
#include "types/value.h"

namespace htap {

/// Directory spill runs are created in when the caller does not configure
/// one (DatabaseOptions::join_spill_dir / ExecContext::join_spill_dir):
/// std::filesystem::temp_directory_path(), falling back to "/tmp".
std::string DefaultSpillDir();

class SpillRun {
 public:
  SpillRun() = default;
  ~SpillRun() { Discard(); }

  SpillRun(SpillRun&& other) noexcept { *this = std::move(other); }
  SpillRun& operator=(SpillRun&& other) noexcept;
  SpillRun(const SpillRun&) = delete;
  SpillRun& operator=(const SpillRun&) = delete;

  /// Creates the backing file in `dir` (empty = DefaultSpillDir()). `tag`
  /// becomes part of the file name, e.g. "b12" for build partition 12.
  Status Open(const std::string& dir, const std::string& tag);

  bool is_open() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }
  size_t bytes() const { return bytes_; }

  /// Appends raw encoded bytes to the run.
  Status Append(const std::string& bytes);

  /// Flushes and reads the whole run back. The run stays open (ReadAll may
  /// be called again), but the common pattern is ReadAll then Discard.
  Result<std::string> ReadAll();

  /// Closes and unlinks the backing file. Idempotent.
  void Discard();

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  size_t bytes_ = 0;
};

/// One column slice of spilled join keys: the rows' original dense input
/// indices plus the key values, stored as a typed vector (or boxed Values
/// when the extracted key column mixed value types). NULL keys never join,
/// so pages carry no null bitmap; hashes are recomputed on rehydration via
/// the Value::Hash-consistent typed primitives.
struct SpillPage {
  std::vector<uint32_t> idx;      // original input indices, page-local order
  Type type = Type::kInt64;       // payload type when !boxed
  bool boxed = false;             // mixed-type key column: Value payload
  std::vector<int64_t> ints;      // type == kInt64, !boxed
  std::vector<double> doubles;    // type == kDouble, !boxed
  std::vector<std::string> strs;  // type == kString, !boxed
  std::vector<Value> vals;        // boxed only

  size_t rows() const { return idx.size(); }
};

/// Appends the page's binary image: row count, kind byte, raw little-endian
/// fixed-width slots for idx/ints/doubles, length-prefixed strings, and
/// Value::EncodeTo for boxed payloads. Pages are self-delimiting, so a run
/// holds any number back to back.
void EncodeSpillPage(const SpillPage& page, std::string* out);

/// Decodes one page starting at *pos, advancing *pos past it. Returns false
/// on malformed input (truncated page, unknown kind byte).
bool DecodeSpillPage(const std::string& in, size_t* pos, SpillPage* out);

}  // namespace htap

#endif  // HTAP_STORAGE_SPILL_FILE_H_
