// SpillRun: a temporary on-disk run of encoded records for out-of-core
// operators — currently the grace hash join (DESIGN.md §9), which spills
// oversized build/probe partitions here and reads them back
// partition-at-a-time.
//
// A run is append-then-read: the producer appends encoded bytes, the
// consumer calls ReadAll() once, and the file is unlinked on Discard() or
// destruction. Files are named `htap-spill-<pid>-<seq>-<tag>.run` inside
// the chosen directory (DefaultSpillDir() = the system temp directory), so
// tooling can find leaks by prefix — ci.sh fails the build if any
// `htap-spill-*` file survives a bench or test run.

#ifndef HTAP_STORAGE_SPILL_FILE_H_
#define HTAP_STORAGE_SPILL_FILE_H_

#include <cstdio>
#include <string>

#include "common/status.h"

namespace htap {

/// Directory spill runs are created in when the caller does not configure
/// one (DatabaseOptions::join_spill_dir / ExecContext::join_spill_dir):
/// std::filesystem::temp_directory_path(), falling back to "/tmp".
std::string DefaultSpillDir();

class SpillRun {
 public:
  SpillRun() = default;
  ~SpillRun() { Discard(); }

  SpillRun(SpillRun&& other) noexcept { *this = std::move(other); }
  SpillRun& operator=(SpillRun&& other) noexcept;
  SpillRun(const SpillRun&) = delete;
  SpillRun& operator=(const SpillRun&) = delete;

  /// Creates the backing file in `dir` (empty = DefaultSpillDir()). `tag`
  /// becomes part of the file name, e.g. "b12" for build partition 12.
  Status Open(const std::string& dir, const std::string& tag);

  bool is_open() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }
  size_t bytes() const { return bytes_; }

  /// Appends raw encoded bytes to the run.
  Status Append(const std::string& bytes);

  /// Flushes and reads the whole run back. The run stays open (ReadAll may
  /// be called again), but the common pattern is ReadAll then Discard.
  Result<std::string> ReadAll();

  /// Closes and unlinks the backing file. Idempotent.
  void Discard();

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  size_t bytes_ = 0;
};

}  // namespace htap

#endif  // HTAP_STORAGE_SPILL_FILE_H_
