#include "storage/spill_file.h"

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <utility>

namespace htap {

namespace {

/// Monotonic per-process sequence number: concurrent joins (and concurrent
/// partitions within one join) never collide on a file name.
std::atomic<uint64_t> g_spill_seq{0};

}  // namespace

std::string DefaultSpillDir() {
  std::error_code ec;
  const std::filesystem::path p = std::filesystem::temp_directory_path(ec);
  if (ec || p.empty()) return "/tmp";
  return p.string();
}

SpillRun& SpillRun::operator=(SpillRun&& other) noexcept {
  if (this != &other) {
    Discard();
    file_ = std::exchange(other.file_, nullptr);
    path_ = std::exchange(other.path_, {});
    bytes_ = std::exchange(other.bytes_, 0);
  }
  return *this;
}

Status SpillRun::Open(const std::string& dir, const std::string& tag) {
  Discard();
  const std::string d = dir.empty() ? DefaultSpillDir() : dir;
  path_ = d + "/htap-spill-" +
          std::to_string(static_cast<uint64_t>(::getpid())) + "-" +
          std::to_string(g_spill_seq.fetch_add(1, std::memory_order_relaxed)) +
          "-" + tag + ".run";
  file_ = std::fopen(path_.c_str(), "wb+");
  if (file_ == nullptr) {
    Status st = Status::IOError("cannot create spill run " + path_ + ": " +
                                std::strerror(errno));
    path_.clear();
    return st;
  }
  bytes_ = 0;
  return Status::OK();
}

Status SpillRun::Append(const std::string& bytes) {
  if (file_ == nullptr) return Status::Internal("spill run not open");
  if (bytes.empty()) return Status::OK();
  if (std::fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size())
    return Status::IOError("short write to spill run " + path_);
  bytes_ += bytes.size();
  return Status::OK();
}

Result<std::string> SpillRun::ReadAll() {
  if (file_ == nullptr) return Status::Internal("spill run not open");
  if (std::fflush(file_) != 0 || std::fseek(file_, 0, SEEK_SET) != 0)
    return Status::IOError("cannot rewind spill run " + path_);
  std::string out;
  out.resize(bytes_);
  if (bytes_ != 0 && std::fread(out.data(), 1, bytes_, file_) != bytes_)
    return Status::IOError("short read from spill run " + path_);
  // Leave the stream positioned at the end so further Appends stay valid.
  std::fseek(file_, 0, SEEK_END);
  return out;
}

void SpillRun::Discard() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  if (!path_.empty()) {
    std::error_code ec;
    std::filesystem::remove(path_, ec);  // best-effort; name is unique
    path_.clear();
  }
  bytes_ = 0;
}

namespace {

/// Page payload kinds. Distinct from Type so the boxed fallback has a tag.
enum PageKind : uint8_t {
  kPageInt64 = 0,
  kPageDouble = 1,
  kPageString = 2,
  kPageBoxed = 3,
};

template <typename T>
void PutRaw(T v, std::string* out) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool GetRaw(const std::string& in, size_t* pos, T* out) {
  if (in.size() - *pos < sizeof(T)) return false;
  std::memcpy(out, in.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

}  // namespace

void EncodeSpillPage(const SpillPage& page, std::string* out) {
  const auto n = static_cast<uint32_t>(page.idx.size());
  PutRaw(n, out);
  const PageKind kind = page.boxed  ? kPageBoxed
                        : page.type == Type::kInt64  ? kPageInt64
                        : page.type == Type::kDouble ? kPageDouble
                                                     : kPageString;
  out->push_back(static_cast<char>(kind));
  out->append(reinterpret_cast<const char*>(page.idx.data()),
              size_t{n} * sizeof(uint32_t));
  switch (kind) {
    case kPageInt64:
      out->append(reinterpret_cast<const char*>(page.ints.data()),
                  size_t{n} * sizeof(int64_t));
      break;
    case kPageDouble:
      out->append(reinterpret_cast<const char*>(page.doubles.data()),
                  size_t{n} * sizeof(double));
      break;
    case kPageString:
      for (const std::string& s : page.strs) {
        PutRaw(static_cast<uint32_t>(s.size()), out);
        out->append(s);
      }
      break;
    case kPageBoxed:
      for (const Value& v : page.vals) v.EncodeTo(out);
      break;
  }
}

bool DecodeSpillPage(const std::string& in, size_t* pos, SpillPage* out) {
  *out = SpillPage{};
  uint32_t n = 0;
  if (!GetRaw(in, pos, &n)) return false;
  if (in.size() - *pos < 1) return false;
  const auto kind = static_cast<uint8_t>(in[*pos]);
  ++*pos;
  if (kind > kPageBoxed) return false;
  if (in.size() - *pos < size_t{n} * sizeof(uint32_t)) return false;
  out->idx.resize(n);
  std::memcpy(out->idx.data(), in.data() + *pos, size_t{n} * sizeof(uint32_t));
  *pos += size_t{n} * sizeof(uint32_t);
  switch (static_cast<PageKind>(kind)) {
    case kPageInt64:
      out->type = Type::kInt64;
      if (in.size() - *pos < size_t{n} * sizeof(int64_t)) return false;
      out->ints.resize(n);
      std::memcpy(out->ints.data(), in.data() + *pos,
                  size_t{n} * sizeof(int64_t));
      *pos += size_t{n} * sizeof(int64_t);
      break;
    case kPageDouble:
      out->type = Type::kDouble;
      if (in.size() - *pos < size_t{n} * sizeof(double)) return false;
      out->doubles.resize(n);
      std::memcpy(out->doubles.data(), in.data() + *pos,
                  size_t{n} * sizeof(double));
      *pos += size_t{n} * sizeof(double);
      break;
    case kPageString:
      out->type = Type::kString;
      out->strs.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        uint32_t len = 0;
        if (!GetRaw(in, pos, &len) || in.size() - *pos < len) return false;
        out->strs.emplace_back(in.data() + *pos, len);
        *pos += len;
      }
      break;
    case kPageBoxed:
      out->boxed = true;
      out->vals.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        Value v;
        if (!Value::DecodeFrom(in, pos, &v)) return false;
        out->vals.push_back(std::move(v));
      }
      break;
  }
  return true;
}

}  // namespace htap
