#include "storage/spill_file.h"

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <utility>

namespace htap {

namespace {

/// Monotonic per-process sequence number: concurrent joins (and concurrent
/// partitions within one join) never collide on a file name.
std::atomic<uint64_t> g_spill_seq{0};

}  // namespace

std::string DefaultSpillDir() {
  std::error_code ec;
  const std::filesystem::path p = std::filesystem::temp_directory_path(ec);
  if (ec || p.empty()) return "/tmp";
  return p.string();
}

SpillRun& SpillRun::operator=(SpillRun&& other) noexcept {
  if (this != &other) {
    Discard();
    file_ = std::exchange(other.file_, nullptr);
    path_ = std::exchange(other.path_, {});
    bytes_ = std::exchange(other.bytes_, 0);
  }
  return *this;
}

Status SpillRun::Open(const std::string& dir, const std::string& tag) {
  Discard();
  const std::string d = dir.empty() ? DefaultSpillDir() : dir;
  path_ = d + "/htap-spill-" +
          std::to_string(static_cast<uint64_t>(::getpid())) + "-" +
          std::to_string(g_spill_seq.fetch_add(1)) + "-" + tag + ".run";
  file_ = std::fopen(path_.c_str(), "wb+");
  if (file_ == nullptr) {
    Status st = Status::IOError("cannot create spill run " + path_ + ": " +
                                std::strerror(errno));
    path_.clear();
    return st;
  }
  bytes_ = 0;
  return Status::OK();
}

Status SpillRun::Append(const std::string& bytes) {
  if (file_ == nullptr) return Status::Internal("spill run not open");
  if (bytes.empty()) return Status::OK();
  if (std::fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size())
    return Status::IOError("short write to spill run " + path_);
  bytes_ += bytes.size();
  return Status::OK();
}

Result<std::string> SpillRun::ReadAll() {
  if (file_ == nullptr) return Status::Internal("spill run not open");
  if (std::fflush(file_) != 0 || std::fseek(file_, 0, SEEK_SET) != 0)
    return Status::IOError("cannot rewind spill run " + path_);
  std::string out;
  out.resize(bytes_);
  if (bytes_ != 0 && std::fread(out.data(), 1, bytes_, file_) != bytes_)
    return Status::IOError("short read from spill run " + path_);
  // Leave the stream positioned at the end so further Appends stay valid.
  std::fseek(file_, 0, SEEK_END);
  return out;
}

void SpillRun::Discard() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  if (!path_.empty()) {
    std::error_code ec;
    std::filesystem::remove(path_, ec);  // best-effort; name is unique
    path_.clear();
  }
  bytes_ = 0;
}

}  // namespace htap
