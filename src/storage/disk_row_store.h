// Disk-backed row heap with an LRU buffer pool — the "disk row store" of
// architecture (c) (MySQL Heatwave's InnoDB side).
//
// Layout: an append-only heap file of fixed-size pages; each record is an
// upsert or tombstone for a key; an in-memory index maps each key to its
// newest record. Reads go through the buffer pool, so cold scans pay real
// page I/O — which is exactly the cost behind the survey's Table 1
// "Medium" AP rating when queries fall back to the row store.

#ifndef HTAP_STORAGE_DISK_ROW_STORE_H_
#define HTAP_STORAGE_DISK_ROW_STORE_H_

#include <cstdio>
#include <functional>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "types/row.h"
#include "types/schema.h"

namespace htap {

/// Fixed page size of the heap file.
inline constexpr size_t kDiskPageSize = 8192;

/// Counter snapshot of a BufferPool, copied out under the owner's lock.
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  size_t cached_pages = 0;
};

/// LRU page cache. Not internally synchronized: the owning DiskRowStore
/// serializes every call (and every counter read) under its own mutex.
class BufferPool {
 public:
  using LoadFn = std::function<Status(uint32_t, std::string*)>;
  using WriteFn = std::function<Status(uint32_t, const std::string&)>;

  explicit BufferPool(size_t capacity_pages)
      : capacity_(capacity_pages == 0 ? 1 : capacity_pages) {}

  void SetBackend(LoadFn loader, WriteFn writer) {
    loader_ = std::move(loader);
    writer_ = std::move(writer);
  }

  /// Returns the cached page, loading on a miss (may evict, writing back a
  /// dirty victim). Returned pointer is valid until the next pool call.
  Status Fetch(uint32_t page_id, std::string** out);

  /// Installs/overwrites a page image and marks it dirty.
  Status PutDirty(uint32_t page_id, std::string page);

  /// Writes back all dirty pages.
  Status FlushDirty();

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }
  size_t cached_pages() const { return frames_.size(); }

 private:
  struct Frame {
    std::string data;
    bool dirty = false;
    std::list<uint32_t>::iterator lru_it;
  };

  void Touch(uint32_t page_id, Frame& f);
  Status EvictIfNeeded();

  const size_t capacity_;
  LoadFn loader_;
  WriteFn writer_;
  std::unordered_map<uint32_t, Frame> frames_;
  std::list<uint32_t> lru_;  // front = most recent
  uint64_t hits_ = 0, misses_ = 0, evictions_ = 0;
};

class DiskRowStore {
 public:
  DiskRowStore(std::string path, Schema schema, size_t pool_pages = 64);
  ~DiskRowStore();

  /// Opens (creating if absent) and rebuilds the key index from the heap.
  Status Open();

  /// Upserts the row under its primary key.
  Status Put(const Row& row);
  Status Delete(Key key);
  Status Get(Key key, Row* out);

  /// Visits the newest record of every live key (unordered).
  Status Scan(const std::function<bool(Key, const Row&)>& visit);

  /// Flushes buffered pages to the file.
  Status Flush();

  size_t live_keys() const;
  uint32_t num_pages() const {
    MutexLock lk(&mu_);
    return num_pages_;
  }
  /// Buffer-pool counters, copied out under the store mutex (the pool itself
  /// is not internally synchronized, so no reference escapes).
  BufferPoolStats pool_stats() const {
    MutexLock lk(&mu_);
    return BufferPoolStats{pool_.hits(), pool_.misses(), pool_.evictions(),
                           pool_.cached_pages()};
  }
  const Schema& schema() const { return schema_; }

 private:
  struct RecordLoc {
    uint32_t page_id;
    uint32_t offset;
  };

  Status AppendRecord(bool tombstone, Key key, const Row& row) REQUIRES(mu_);
  Status LoadPageFromFile(uint32_t page_id, std::string* out) REQUIRES(mu_);
  Status WritePageToFile(uint32_t page_id, const std::string& data)
      REQUIRES(mu_);
  Status ReadRecordAt(RecordLoc loc, bool* tombstone, Key* key, Row* out)
      REQUIRES(mu_);
  static bool ParseRecord(const std::string& page, size_t* pos,
                          bool* tombstone, Key* key, Row* row);

  const std::string path_;
  const Schema schema_;
  mutable Mutex mu_{LockRank::kDiskHeap, "disk-row-store"};
  FILE* file_ GUARDED_BY(mu_) = nullptr;
  BufferPool pool_ GUARDED_BY(mu_);
  std::unordered_map<Key, RecordLoc> index_ GUARDED_BY(mu_);
  uint32_t num_pages_ GUARDED_BY(mu_) = 0;  // includes tail page once non-empty
  uint32_t tail_page_id_ GUARDED_BY(mu_) = 0;
  size_t tail_used_ GUARDED_BY(mu_) = 0;  // bytes used in the tail page
};

}  // namespace htap

#endif  // HTAP_STORAGE_DISK_ROW_STORE_H_
