#include "storage/disk_row_store.h"

#include <cstring>

namespace htap {

// ---------------------------------------------------------------------------
// BufferPool
// ---------------------------------------------------------------------------

void BufferPool::Touch(uint32_t page_id, Frame& f) {
  lru_.erase(f.lru_it);
  lru_.push_front(page_id);
  f.lru_it = lru_.begin();
}

Status BufferPool::EvictIfNeeded() {
  while (frames_.size() >= capacity_) {
    const uint32_t victim = lru_.back();
    Frame& f = frames_[victim];
    if (f.dirty) HTAP_RETURN_NOT_OK(writer_(victim, f.data));
    lru_.pop_back();
    frames_.erase(victim);
    ++evictions_;
  }
  return Status::OK();
}

Status BufferPool::Fetch(uint32_t page_id, std::string** out) {
  const auto it = frames_.find(page_id);
  if (it != frames_.end()) {
    ++hits_;
    Touch(page_id, it->second);
    *out = &it->second.data;
    return Status::OK();
  }
  ++misses_;
  HTAP_RETURN_NOT_OK(EvictIfNeeded());
  std::string data;
  HTAP_RETURN_NOT_OK(loader_(page_id, &data));
  lru_.push_front(page_id);
  Frame f;
  f.data = std::move(data);
  f.lru_it = lru_.begin();
  auto [ins_it, ok] = frames_.emplace(page_id, std::move(f));
  *out = &ins_it->second.data;
  return Status::OK();
}

Status BufferPool::PutDirty(uint32_t page_id, std::string page) {
  const auto it = frames_.find(page_id);
  if (it != frames_.end()) {
    it->second.data = std::move(page);
    it->second.dirty = true;
    Touch(page_id, it->second);
    return Status::OK();
  }
  HTAP_RETURN_NOT_OK(EvictIfNeeded());
  lru_.push_front(page_id);
  Frame f;
  f.data = std::move(page);
  f.dirty = true;
  f.lru_it = lru_.begin();
  frames_.emplace(page_id, std::move(f));
  return Status::OK();
}

Status BufferPool::FlushDirty() {
  for (auto& [id, f] : frames_) {
    if (!f.dirty) continue;
    HTAP_RETURN_NOT_OK(writer_(id, f.data));
    f.dirty = false;
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// DiskRowStore
// ---------------------------------------------------------------------------

DiskRowStore::DiskRowStore(std::string path, Schema schema, size_t pool_pages)
    : path_(std::move(path)), schema_(std::move(schema)), pool_(pool_pages) {
  pool_.SetBackend(
      [this](uint32_t id, std::string* out) { return LoadPageFromFile(id, out); },
      [this](uint32_t id, const std::string& data) {
        return WritePageToFile(id, data);
      });
}

DiskRowStore::~DiskRowStore() {
  Flush();
  if (file_) std::fclose(file_);
}

Status DiskRowStore::Open() {
  MutexLock lk(&mu_);
  file_ = std::fopen(path_.c_str(), "r+b");
  if (!file_) file_ = std::fopen(path_.c_str(), "w+b");
  if (!file_) return Status::IOError("cannot open heap file: " + path_);

  std::fseek(file_, 0, SEEK_END);
  const long size = std::ftell(file_);
  num_pages_ = static_cast<uint32_t>((size + kDiskPageSize - 1) /
                                     static_cast<long>(kDiskPageSize));

  // Rebuild the index by scanning every page; the newest record per key
  // wins (heap order == append order).
  index_.clear();
  for (uint32_t p = 0; p < num_pages_; ++p) {
    std::string page;
    HTAP_RETURN_NOT_OK(LoadPageFromFile(p, &page));
    size_t pos = 0;
    while (pos + 4 < page.size()) {
      const size_t rec_start = pos;
      bool tombstone;
      Key key;
      Row row;
      if (!ParseRecord(page, &pos, &tombstone, &key, &row)) break;
      if (tombstone)
        index_.erase(key);
      else
        index_[key] = RecordLoc{p, static_cast<uint32_t>(rec_start)};
    }
    if (p + 1 == num_pages_) {
      tail_page_id_ = p;
      tail_used_ = 0;
      // Find actual used bytes in the tail page.
      size_t q = 0;
      while (q + 4 < page.size()) {
        uint32_t len;
        std::memcpy(&len, page.data() + q, 4);
        if (len == 0 || q + 4 + len > page.size()) break;
        q += 4 + len;
      }
      tail_used_ = q;
    }
  }
  if (num_pages_ == 0) {
    tail_page_id_ = 0;
    tail_used_ = 0;
    num_pages_ = 1;
    HTAP_RETURN_NOT_OK(pool_.PutDirty(0, std::string(kDiskPageSize, '\0')));
  }
  return Status::OK();
}

bool DiskRowStore::ParseRecord(const std::string& page, size_t* pos,
                               bool* tombstone, Key* key, Row* row) {
  if (*pos + 4 > page.size()) return false;
  uint32_t len;
  std::memcpy(&len, page.data() + *pos, 4);
  if (len == 0 || *pos + 4 + len > page.size()) return false;
  size_t p = *pos + 4;
  *tombstone = page[p++] != 0;
  uint64_t k;
  std::memcpy(&k, page.data() + p, 8);
  p += 8;
  *key = static_cast<Key>(k);
  if (!*tombstone) {
    // Row payload occupies the rest of the record.
    const std::string payload = page.substr(p, *pos + 4 + len - p);
    size_t rp = 0;
    if (!Row::DecodeFrom(payload, &rp, row)) return false;
  }
  *pos += 4 + len;
  return true;
}

Status DiskRowStore::LoadPageFromFile(uint32_t page_id, std::string* out) {
  out->assign(kDiskPageSize, '\0');
  if (!file_) return Status::IOError("store not open");
  if (std::fseek(file_, static_cast<long>(page_id) *
                            static_cast<long>(kDiskPageSize),
                 SEEK_SET) != 0)
    return Status::IOError("seek failed");
  const size_t n = std::fread(out->data(), 1, kDiskPageSize, file_);
  (void)n;  // short read at EOF is fine: zero-filled
  return Status::OK();
}

Status DiskRowStore::WritePageToFile(uint32_t page_id,
                                     const std::string& data) {
  if (!file_) return Status::IOError("store not open");
  if (std::fseek(file_, static_cast<long>(page_id) *
                            static_cast<long>(kDiskPageSize),
                 SEEK_SET) != 0)
    return Status::IOError("seek failed");
  if (std::fwrite(data.data(), 1, kDiskPageSize, file_) != kDiskPageSize)
    return Status::IOError("short page write");
  return Status::OK();
}

Status DiskRowStore::AppendRecord(bool tombstone, Key key, const Row& row) {
  std::string body;
  body.push_back(tombstone ? 1 : 0);
  const uint64_t k = static_cast<uint64_t>(key);
  body.append(reinterpret_cast<const char*>(&k), 8);
  if (!tombstone) row.EncodeTo(&body);
  const uint32_t len = static_cast<uint32_t>(body.size());
  if (4 + len > kDiskPageSize)
    return Status::InvalidArgument("row exceeds page size");

  if (tail_used_ + 4 + len > kDiskPageSize) {
    // Tail page full: start a new one.
    ++tail_page_id_;
    ++num_pages_;
    tail_used_ = 0;
    HTAP_RETURN_NOT_OK(
        pool_.PutDirty(tail_page_id_, std::string(kDiskPageSize, '\0')));
  }

  std::string* page;
  HTAP_RETURN_NOT_OK(pool_.Fetch(tail_page_id_, &page));
  std::memcpy(page->data() + tail_used_, &len, 4);
  std::memcpy(page->data() + tail_used_ + 4, body.data(), body.size());
  const RecordLoc loc{tail_page_id_, static_cast<uint32_t>(tail_used_)};
  tail_used_ += 4 + len;
  HTAP_RETURN_NOT_OK(pool_.PutDirty(tail_page_id_, *page));

  if (tombstone)
    index_.erase(key);
  else
    index_[key] = loc;
  return Status::OK();
}

Status DiskRowStore::Put(const Row& row) {
  MutexLock lk(&mu_);
  if (row.size() != schema_.num_columns())
    return Status::InvalidArgument("row arity mismatch");
  return AppendRecord(false, row.GetKey(schema_), row);
}

Status DiskRowStore::Delete(Key key) {
  MutexLock lk(&mu_);
  if (index_.find(key) == index_.end()) return Status::NotFound("no such key");
  return AppendRecord(true, key, Row{});
}

Status DiskRowStore::ReadRecordAt(RecordLoc loc, bool* tombstone, Key* key,
                                  Row* out) {
  std::string* page;
  HTAP_RETURN_NOT_OK(pool_.Fetch(loc.page_id, &page));
  size_t pos = loc.offset;
  if (!ParseRecord(*page, &pos, tombstone, key, out))
    return Status::Corruption("bad record");
  return Status::OK();
}

Status DiskRowStore::Get(Key key, Row* out) {
  MutexLock lk(&mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) return Status::NotFound("no such key");
  bool tombstone;
  Key k;
  HTAP_RETURN_NOT_OK(ReadRecordAt(it->second, &tombstone, &k, out));
  if (tombstone || k != key) return Status::Corruption("index out of sync");
  return Status::OK();
}

Status DiskRowStore::Scan(const std::function<bool(Key, const Row&)>& visit) {
  MutexLock lk(&mu_);
  for (const auto& [key, loc] : index_) {
    bool tombstone;
    Key k;
    Row row;
    HTAP_RETURN_NOT_OK(ReadRecordAt(loc, &tombstone, &k, &row));
    if (!tombstone && !visit(key, row)) break;
  }
  return Status::OK();
}

Status DiskRowStore::Flush() {
  MutexLock lk(&mu_);
  if (!file_) return Status::OK();
  HTAP_RETURN_NOT_OK(pool_.FlushDirty());
  std::fflush(file_);
  return Status::OK();
}

size_t DiskRowStore::live_keys() const {
  MutexLock lk(&mu_);
  return index_.size();
}

}  // namespace htap
