// In-memory MVCC row store (Hekaton-style) — the primary store for
// architecture (a), the per-shard store for architecture (b), and the delta
// row store for architecture (d).
//
// Each key owns a version chain (newest first). Version begin/end fields
// hold a CSN or, while the writing transaction is in flight, its txn id
// (see txn/types.h). Conflict rule: first-updater-wins — touching a version
// whose end is already claimed aborts the later writer.

#ifndef HTAP_STORAGE_MVCC_ROW_STORE_H_
#define HTAP_STORAGE_MVCC_ROW_STORE_H_

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/latch.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/status.h"
#include "index/btree.h"
#include "txn/transaction.h"
#include "txn/types.h"
#include "types/row.h"
#include "types/schema.h"
#include "wal/wal.h"

namespace htap {

class TransactionManager;

/// One version of a row. begin/end encode lifetime per txn/types.h.
struct RowVersion {
  std::atomic<uint64_t> begin{0};
  std::atomic<uint64_t> end{kMaxCSN};
  Row data;
  RowVersion* older = nullptr;
};

/// Per-key chain of versions, newest first.
struct VersionChain {
  const Key key;  // chain identity, fixed at creation
  RowVersion* latest GUARDED_BY(latch) = nullptr;
  SpinLatch latch{LockRank::kVersionChain, "version-chain"};
};

/// A single-table MVCC row store with a B+-tree primary-key index.
class MvccRowStore {
 public:
  /// `wal` may be null (e.g. replica apply path logs elsewhere).
  MvccRowStore(uint32_t table_id, Schema schema, TransactionManager* txn_mgr,
               WalWriter* wal);
  ~MvccRowStore();

  MvccRowStore(const MvccRowStore&) = delete;
  MvccRowStore& operator=(const MvccRowStore&) = delete;

  const Schema& schema() const { return schema_; }
  uint32_t table_id() const { return table_id_; }

  // ---- Transactional DML ----------------------------------------------

  /// Inserts a new row. Fails with AlreadyExists if a visible version
  /// exists, Conflict on a concurrent uncommitted writer.
  Status Insert(Transaction* txn, const Row& row);

  /// Replaces the row at `row`'s key. NotFound if no visible version.
  Status Update(Transaction* txn, const Row& row);

  /// Deletes the row with the given key.
  Status Delete(Transaction* txn, Key key);

  // ---- Reads ------------------------------------------------------------

  /// Point read at a snapshot.
  Status Get(const Snapshot& snap, Key key, Row* out) const;

  /// Full scan at a snapshot, in key order. Return false to stop.
  void Scan(const Snapshot& snap,
            const std::function<bool(Key, const Row&)>& visit) const;

  /// Key-range scan [lo, hi] at a snapshot.
  void ScanRange(const Snapshot& snap, Key lo, Key hi,
                 const std::function<bool(Key, const Row&)>& visit) const;

  /// Splits the indexed key space into up to `n` contiguous [lo, hi] ranges
  /// of roughly equal key counts, covering the whole key domain (parallel
  /// scans partition work with these; keys inserted after the split still
  /// fall in some range). Returns a single full-domain range when the store
  /// is too small to be worth partitioning.
  std::vector<std::pair<Key, Key>> SplitKeyRanges(size_t n) const;

  // ---- Non-transactional apply (recovery, replica catch-up) -------------

  /// Applies an already-committed change at the given CSN, bypassing
  /// concurrency control.
  void ApplyCommitted(ChangeOp op, Key key, const Row& row, CSN csn);

  // ---- Maintenance -------------------------------------------------------

  /// Frees versions no longer visible to any snapshot at or after
  /// `watermark`. Returns number of versions reclaimed.
  size_t Vacuum(CSN watermark);

  /// Number of live (latest, non-deleted) rows — approximate under
  /// concurrency, exact when quiesced.
  size_t ApproxRowCount() const {
    return live_rows_.load(std::memory_order_relaxed);
  }
  size_t VersionCount() const {
    return versions_.load(std::memory_order_relaxed);
  }
  size_t MemoryBytes() const {
    return mem_bytes_.load(std::memory_order_relaxed);
  }

  // ---- TransactionManager internal hooks ---------------------------------
  // Not part of the public API; called during commit/abort processing.

  /// Settles live-row accounting for a committed undo entry.
  void AccountCommittedEntry(const UndoEntry& u);
  /// Physically rolls back one undo entry (latches the chain).
  void RollbackEntry(const UndoEntry& u);

 private:
  VersionChain* GetOrCreateChain(Key key);
  VersionChain* FindChain(Key key) const;

  /// Is `v` visible to `snap`? Resolves in-flight txn ids through the
  /// transaction manager.
  bool Visible(const RowVersion* v, const Snapshot& snap) const;

  void LogDml(Transaction* txn, WalRecordType type, Key key, const Row& row);

  const uint32_t table_id_;
  const Schema schema_;
  TransactionManager* const txn_mgr_;
  WalWriter* const wal_;

  BTree index_;  // key -> VersionChain* (optimistic latch coupling)

  // Chain ownership directory, striped by key hash so concurrent writers
  // creating chains for different keys rarely contend (a same-key race
  // serializes on its stripe and double-checks the index under the latch).
  // Chains are owned here and never freed until the store dies (keys are
  // never unindexed; fully-dead chains are invisible to scans).
  static constexpr size_t kChainStripes = 64;
  struct alignas(64) ChainStripe {
    SpinLatch latch{LockRank::kStoreChains, "row-store-chains"};
    std::deque<std::unique_ptr<VersionChain>> chains GUARDED_BY(latch);
  };
  ChainStripe& stripe(Key key) const {
    return stripes_[static_cast<uint64_t>(key) * 0x9E3779B97F4A7C15ULL >>
                    58];  // top 6 bits of a Fibonacci hash
  }
  mutable ChainStripe stripes_[kChainStripes];

  std::atomic<size_t> live_rows_{0};
  std::atomic<size_t> versions_{0};
  std::atomic<size_t> mem_bytes_{0};
};

}  // namespace htap

#endif  // HTAP_STORAGE_MVCC_ROW_STORE_H_
