#include "storage/mvcc_row_store.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "txn/txn_manager.h"

namespace htap {

MvccRowStore::MvccRowStore(uint32_t table_id, Schema schema,
                           TransactionManager* txn_mgr, WalWriter* wal)
    : table_id_(table_id),
      schema_(std::move(schema)),
      txn_mgr_(txn_mgr),
      wal_(wal) {}

MvccRowStore::~MvccRowStore() {
  for (ChainStripe& s : stripes_) {
    for (auto& chain : s.chains) {
      RowVersion* v = chain->latest;
      while (v != nullptr) {
        RowVersion* older = v->older;
        delete v;
        v = older;
      }
    }
  }
}

VersionChain* MvccRowStore::GetOrCreateChain(Key key) {
  uint64_t payload;
  if (index_.Lookup(key, &payload))
    return reinterpret_cast<VersionChain*>(payload);
  ChainStripe& s = stripe(key);
  SpinGuard g(s.latch);
  // Double-check under the stripe latch: a same-key writer hashes to the
  // same stripe, so another creation attempt is either visible in the index
  // by now or serialized behind us.
  if (index_.Lookup(key, &payload))
    return reinterpret_cast<VersionChain*>(payload);
  s.chains.push_back(std::unique_ptr<VersionChain>(new VersionChain{key}));
  VersionChain* chain = s.chains.back().get();
  index_.Insert(key, reinterpret_cast<uint64_t>(chain));
  mem_bytes_.fetch_add(sizeof(VersionChain) + 24, std::memory_order_relaxed);
  return chain;
}

VersionChain* MvccRowStore::FindChain(Key key) const {
  uint64_t payload;
  if (!index_.Lookup(key, &payload)) return nullptr;
  return reinterpret_cast<VersionChain*>(payload);
}

bool MvccRowStore::Visible(const RowVersion* v, const Snapshot& snap) const {
  // Resolve the begin stamp.
  while (true) {
    // order: acquire pairs with the release stores that stamp begin (writer
    // publish in Insert/Update, CSN re-stamp in TransactionManager::Commit)
    // so the version's data/older fields written before the stamp are
    // visible.
    const uint64_t raw_b = v->begin.load(std::memory_order_acquire);
    if (IsTxnId(raw_b)) {
      if (raw_b == snap.txn_id) break;  // our own write
      CSN csn;
      TxnState state;
      if (!txn_mgr_->GetCommitInfo(raw_b, &csn, &state)) continue;  // re-read
      if (state == TxnState::kCommitted && csn != 0 && csn <= snap.begin_csn)
        break;
      return false;  // active, aborted, or committed after our snapshot
    }
    if (raw_b > snap.begin_csn) return false;
    break;
  }
  // Resolve the end stamp.
  while (true) {
    // order: acquire pairs with the release end-stamp stores (delete/update
    // claim, commit re-stamp) — same publication edge as begin above.
    const uint64_t raw_e = v->end.load(std::memory_order_acquire);
    if (raw_e == kMaxCSN) return true;
    if (IsTxnId(raw_e)) {
      if (raw_e == snap.txn_id) return false;  // we superseded/deleted it
      CSN csn;
      TxnState state;
      if (!txn_mgr_->GetCommitInfo(raw_e, &csn, &state)) continue;  // re-read
      if (state == TxnState::kCommitted && csn != 0)
        return csn > snap.begin_csn;
      return true;  // deleter still in flight or aborted: visible to us
    }
    return raw_e > snap.begin_csn;
  }
}

void MvccRowStore::LogDml(Transaction* txn, WalRecordType type, Key key,
                          const Row& row) {
  if (wal_ == nullptr) return;
  WalRecord rec;
  rec.type = type;
  rec.txn_id = txn->id();
  rec.table_id = table_id_;
  rec.key = key;
  rec.row = row;
  wal_->Append(rec);
}

Status MvccRowStore::Insert(Transaction* txn, const Row& row) {
  if (row.size() != schema_.num_columns())
    return Status::InvalidArgument("row arity mismatch");
  const Key key = row.GetKey(schema_);
  VersionChain* chain = GetOrCreateChain(key);
  SpinGuard g(chain->latch);

  RowVersion* latest = chain->latest;
  if (latest != nullptr) {
    // order: acquire pairs with the commit-time release re-stamp
    // (TransactionManager::Commit), which runs without the chain latch.
    const uint64_t raw_b = latest->begin.load(std::memory_order_acquire);
    const uint64_t raw_e = latest->end.load(std::memory_order_acquire);  // order: ^
    if (raw_e == kMaxCSN) {
      // A live version exists (or is being created).
      if (IsTxnId(raw_b) && raw_b != txn->id()) {
        txn_mgr_->RecordConflict();
        return Status::Conflict("uncommitted insert by another txn");
      }
      return Status::AlreadyExists("key exists: " + std::to_string(key));
    }
    if (IsTxnId(raw_e) && raw_e != txn->id()) {
      txn_mgr_->RecordConflict();
      return Status::Conflict("uncommitted delete by another txn");
    }
    if (!IsTxnId(raw_e) && raw_e > txn->begin_csn()) {
      // Deleted after our snapshot began: write-write conflict under SI.
      txn_mgr_->RecordConflict();
      return Status::Conflict("key deleted after snapshot");
    }
  }

  auto* v = new RowVersion();
  // order: release so a latch-free reader that acquires this stamp also
  // sees the version's construction (Visible() reads data through it).
  v->begin.store(txn->id(), std::memory_order_release);
  v->data = row;
  v->older = latest;
  chain->latest = v;

  txn->undo().push_back(
      UndoEntry{UndoEntry::Kind::kInsert, this, chain, v, nullptr});
  txn->changes().push_back(
      ChangeEvent{table_id_, ChangeOp::kInsert, key, row, 0});
  LogDml(txn, WalRecordType::kInsert, key, row);
  versions_.fetch_add(1, std::memory_order_relaxed);
  mem_bytes_.fetch_add(sizeof(RowVersion) + row.MemoryBytes(),
                       std::memory_order_relaxed);
  return Status::OK();
}

Status MvccRowStore::Update(Transaction* txn, const Row& row) {
  if (row.size() != schema_.num_columns())
    return Status::InvalidArgument("row arity mismatch");
  const Key key = row.GetKey(schema_);
  VersionChain* chain = FindChain(key);
  if (chain == nullptr) return Status::NotFound("no such key");
  SpinGuard g(chain->latch);

  RowVersion* latest = chain->latest;
  if (latest == nullptr) return Status::NotFound("no such key");
  // order: acquire pairs with the commit-time release re-stamp
  // (TransactionManager::Commit), which runs without the chain latch.
  const uint64_t raw_b = latest->begin.load(std::memory_order_acquire);
  const uint64_t raw_e = latest->end.load(std::memory_order_acquire);  // order: ^

  if (raw_e != kMaxCSN) {
    if (IsTxnId(raw_e)) {
      if (raw_e == txn->id()) return Status::NotFound("deleted by this txn");
      txn_mgr_->RecordConflict();
      return Status::Conflict("row claimed by another txn");
    }
    if (raw_e > txn->begin_csn()) {
      txn_mgr_->RecordConflict();
      return Status::Conflict("row deleted after snapshot");
    }
    return Status::NotFound("row deleted");
  }
  if (IsTxnId(raw_b)) {
    if (raw_b != txn->id()) {
      txn_mgr_->RecordConflict();
      return Status::Conflict("uncommitted insert by another txn");
    }
    // Updating our own uncommitted version: mutate in place.
    mem_bytes_.fetch_add(row.MemoryBytes(), std::memory_order_relaxed);
    mem_bytes_.fetch_sub(
        std::min(mem_bytes_.load(std::memory_order_relaxed),
                 latest->data.MemoryBytes()),
        std::memory_order_relaxed);
    latest->data = row;
    txn->changes().push_back(
        ChangeEvent{table_id_, ChangeOp::kUpdate, key, row, 0});
    LogDml(txn, WalRecordType::kUpdate, key, row);
    return Status::OK();
  }
  if (raw_b > txn->begin_csn()) {
    txn_mgr_->RecordConflict();
    return Status::Conflict("row written after snapshot");
  }

  auto* v = new RowVersion();
  // order: release publishes the new version's construction to latch-free
  // stamp readers (same edge as the Insert path).
  v->begin.store(txn->id(), std::memory_order_release);
  v->data = row;
  v->older = latest;
  // order: release so the end claim is never reordered before the new
  // version's publication above.
  latest->end.store(txn->id(), std::memory_order_release);
  chain->latest = v;

  txn->undo().push_back(
      UndoEntry{UndoEntry::Kind::kUpdate, this, chain, v, latest});
  txn->changes().push_back(
      ChangeEvent{table_id_, ChangeOp::kUpdate, key, row, 0});
  LogDml(txn, WalRecordType::kUpdate, key, row);
  versions_.fetch_add(1, std::memory_order_relaxed);
  mem_bytes_.fetch_add(sizeof(RowVersion) + row.MemoryBytes(),
                       std::memory_order_relaxed);
  return Status::OK();
}

Status MvccRowStore::Delete(Transaction* txn, Key key) {
  VersionChain* chain = FindChain(key);
  if (chain == nullptr) return Status::NotFound("no such key");
  SpinGuard g(chain->latch);

  RowVersion* latest = chain->latest;
  if (latest == nullptr) return Status::NotFound("no such key");
  // order: acquire pairs with the commit-time release re-stamp
  // (TransactionManager::Commit), which runs without the chain latch.
  const uint64_t raw_b = latest->begin.load(std::memory_order_acquire);
  const uint64_t raw_e = latest->end.load(std::memory_order_acquire);  // order: ^

  if (raw_e != kMaxCSN) {
    if (IsTxnId(raw_e)) {
      if (raw_e == txn->id()) return Status::NotFound("already deleted");
      txn_mgr_->RecordConflict();
      return Status::Conflict("row claimed by another txn");
    }
    if (raw_e > txn->begin_csn()) {
      txn_mgr_->RecordConflict();
      return Status::Conflict("row deleted after snapshot");
    }
    return Status::NotFound("row deleted");
  }
  if (IsTxnId(raw_b) && raw_b != txn->id()) {
    txn_mgr_->RecordConflict();
    return Status::Conflict("uncommitted insert by another txn");
  }
  if (!IsTxnId(raw_b) && raw_b > txn->begin_csn()) {
    txn_mgr_->RecordConflict();
    return Status::Conflict("row written after snapshot");
  }

  // order: release so a latch-free Visible() that acquires this claim also
  // sees everything this txn wrote before it.
  latest->end.store(txn->id(), std::memory_order_release);
  txn->undo().push_back(
      UndoEntry{UndoEntry::Kind::kDelete, this, chain, nullptr, latest});
  txn->changes().push_back(
      ChangeEvent{table_id_, ChangeOp::kDelete, key, Row{}, 0});
  LogDml(txn, WalRecordType::kDelete, key, Row{});
  return Status::OK();
}

Status MvccRowStore::Get(const Snapshot& snap, Key key, Row* out) const {
  VersionChain* chain = FindChain(key);
  if (chain == nullptr) return Status::NotFound("no such key");
  SpinGuard g(chain->latch);
  for (const RowVersion* v = chain->latest; v != nullptr; v = v->older) {
    if (Visible(v, snap)) {
      *out = v->data;
      return Status::OK();
    }
  }
  return Status::NotFound("no visible version");
}

void MvccRowStore::Scan(
    const Snapshot& snap,
    const std::function<bool(Key, const Row&)>& visit) const {
  ScanRange(snap, std::numeric_limits<Key>::min(),
            std::numeric_limits<Key>::max(), visit);
}

void MvccRowStore::ScanRange(
    const Snapshot& snap, Key lo, Key hi,
    const std::function<bool(Key, const Row&)>& visit) const {
  index_.Scan(lo, hi, [&](Key key, uint64_t payload) {
    auto* chain = reinterpret_cast<VersionChain*>(payload);
    SpinGuard g(chain->latch);
    for (const RowVersion* v = chain->latest; v != nullptr; v = v->older) {
      if (Visible(v, snap)) return visit(key, v->data);
    }
    return true;  // no visible version for this key; keep scanning
  });
}

std::vector<std::pair<Key, Key>> MvccRowStore::SplitKeyRanges(size_t n) const {
  constexpr Key kLo = std::numeric_limits<Key>::min();
  constexpr Key kHi = std::numeric_limits<Key>::max();
  std::vector<std::pair<Key, Key>> ranges;
  const size_t total = index_.size();
  if (n <= 1 || total < 2 * n) {
    ranges.emplace_back(kLo, kHi);
    return ranges;
  }
  // One index pass collecting every stride-th key as a partition boundary.
  const size_t stride = (total + n - 1) / n;
  std::vector<Key> bounds;
  bounds.reserve(n);
  size_t i = 0;
  index_.ScanAll([&](Key k, uint64_t) {
    if (i != 0 && i % stride == 0) bounds.push_back(k);
    ++i;
    return true;
  });
  Key lo = kLo;
  for (Key b : bounds) {
    // b follows at least one smaller indexed key, so b > kLo and b-1 is safe.
    ranges.emplace_back(lo, b - 1);
    lo = b;
  }
  ranges.emplace_back(lo, kHi);
  return ranges;
}

void MvccRowStore::ApplyCommitted(ChangeOp op, Key key, const Row& row,
                                  CSN csn) {
  VersionChain* chain = GetOrCreateChain(key);
  SpinGuard g(chain->latch);
  switch (op) {
    case ChangeOp::kInsert:
    case ChangeOp::kUpdate: {
      auto* v = new RowVersion();
      // order: release/acquire — same begin/end publication edges as the
      // transactional DML paths; concurrent snapshot readers resolve these
      // stamps latch-free in Visible().
      v->begin.store(csn, std::memory_order_release);
      v->data = row;
      v->older = chain->latest;
      if (chain->latest != nullptr &&
          chain->latest->end.load(std::memory_order_acquire) ==  // order: ^
              kMaxCSN) {
        chain->latest->end.store(csn, std::memory_order_release);  // order: ^
      } else if (chain->latest == nullptr || op == ChangeOp::kInsert) {
        live_rows_.fetch_add(1, std::memory_order_relaxed);
      }
      chain->latest = v;
      versions_.fetch_add(1, std::memory_order_relaxed);
      mem_bytes_.fetch_add(sizeof(RowVersion) + row.MemoryBytes(),
                           std::memory_order_relaxed);
      break;
    }
    case ChangeOp::kDelete: {
      if (chain->latest != nullptr &&
          chain->latest->end.load(std::memory_order_acquire) ==  // order: ^
              kMaxCSN) {
        chain->latest->end.store(csn, std::memory_order_release);  // order: ^
        live_rows_.fetch_sub(1, std::memory_order_relaxed);
      }
      break;
    }
  }
}

void MvccRowStore::AccountCommittedEntry(const UndoEntry& u) {
  switch (u.kind) {
    case UndoEntry::Kind::kInsert:
      live_rows_.fetch_add(1, std::memory_order_relaxed);
      break;
    case UndoEntry::Kind::kDelete:
      live_rows_.fetch_sub(1, std::memory_order_relaxed);
      break;
    case UndoEntry::Kind::kUpdate:
      break;
  }
}

void MvccRowStore::RollbackEntry(const UndoEntry& u) {
  SpinGuard g(u.chain->latch);
  switch (u.kind) {
    case UndoEntry::Kind::kInsert: {
      assert(u.chain->latest == u.new_version);
      u.chain->latest = u.new_version->older;
      mem_bytes_.fetch_sub(
          std::min(mem_bytes_.load(std::memory_order_relaxed),
                   sizeof(RowVersion) + u.new_version->data.MemoryBytes()),
          std::memory_order_relaxed);
      delete u.new_version;
      versions_.fetch_sub(1, std::memory_order_relaxed);
      break;
    }
    case UndoEntry::Kind::kUpdate: {
      assert(u.chain->latest == u.new_version);
      u.chain->latest = u.old_version;
      // order: release — resurrecting the old version is a publication a
      // latch-free stamp reader may consume with its acquire load.
      u.old_version->end.store(kMaxCSN, std::memory_order_release);
      mem_bytes_.fetch_sub(
          std::min(mem_bytes_.load(std::memory_order_relaxed),
                   sizeof(RowVersion) + u.new_version->data.MemoryBytes()),
          std::memory_order_relaxed);
      delete u.new_version;
      versions_.fetch_sub(1, std::memory_order_relaxed);
      break;
    }
    case UndoEntry::Kind::kDelete: {
      u.old_version->end.store(kMaxCSN, std::memory_order_release);  // order: ^
      break;
    }
  }
}

size_t MvccRowStore::Vacuum(CSN watermark) {
  size_t reclaimed = 0;
  for (ChainStripe& s : stripes_) {
    SpinGuard chains_guard(s.latch);
    for (auto& chain_ptr : s.chains) {
      VersionChain* chain = chain_ptr.get();
      SpinGuard g(chain->latch);
      if (chain->latest == nullptr) continue;
      // Keep the latest version; free any older version whose end CSN is at
      // or below the watermark (unreachable by every active or future
      // snapshot).
      RowVersion* keep = chain->latest;
      RowVersion* v = keep->older;
      while (v != nullptr) {
        // order: acquire pairs with the commit-time release re-stamp so a
        // freshly retired CSN is read consistently with the version data.
        const uint64_t raw_e = v->end.load(std::memory_order_acquire);
        if (!IsTxnId(raw_e) && raw_e != kMaxCSN && raw_e <= watermark) {
          // This and everything older is dead.
          keep->older = nullptr;
          while (v != nullptr) {
            RowVersion* older = v->older;
            mem_bytes_.fetch_sub(
                std::min(mem_bytes_.load(std::memory_order_relaxed),
                         sizeof(RowVersion) + v->data.MemoryBytes()),
                std::memory_order_relaxed);
            delete v;
            versions_.fetch_sub(1, std::memory_order_relaxed);
            ++reclaimed;
            v = older;
          }
          break;
        }
        keep = v;
        v = v->older;
      }
    }
  }
  return reclaimed;
}

}  // namespace htap
