#include "sched/scheduler.h"

#include <algorithm>

namespace htap {

const char* SchedulingPolicyName(SchedulingPolicy p) {
  switch (p) {
    case SchedulingPolicy::kStatic: return "static";
    case SchedulingPolicy::kWorkloadDriven: return "workload-driven";
    case SchedulingPolicy::kFreshnessDriven: return "freshness-driven";
  }
  return "?";
}

ResourceScheduler::ResourceScheduler(Options options,
                                     std::function<Micros()> freshness_probe,
                                     std::function<void()> force_sync)
    : options_(options),
      freshness_probe_(std::move(freshness_probe)),
      force_sync_(std::move(force_sync)),
      oltp_pool_(options.oltp_threads, "oltp"),
      olap_pool_(options.olap_threads, "olap") {
  // Start with an even split of in-flight work.
  oltp_pool_.SetConcurrencyQuota(options.oltp_threads);
  SetOlapQuota(options.olap_threads);
  if (options_.policy != SchedulingPolicy::kStatic)
    controller_ = std::thread([this] { ControlLoop(); });
}

ResourceScheduler::~ResourceScheduler() { Stop(); }

void ResourceScheduler::Stop() {
  // order: release pairs with ControlLoop's acquire poll; join() below is
  // the real synchronization, release just keeps the flag conventional.
  stop_.store(true, std::memory_order_release);
  if (controller_.joinable()) controller_.join();
}

void ResourceScheduler::SubmitOltp(std::function<void()> task) {
  oltp_pool_.Submit([this, task = std::move(task)] {
    task();
    oltp_done_.fetch_add(1, std::memory_order_relaxed);
  });
}

void ResourceScheduler::SubmitOlap(std::function<void()> task) {
  olap_pool_.Submit([this, task = std::move(task)] {
    task();
    olap_done_.fetch_add(1, std::memory_order_relaxed);
  });
}

void ResourceScheduler::Drain() {
  oltp_pool_.Wait();
  olap_pool_.Wait();
}

void ResourceScheduler::ControlLoop() {
  // order: acquire pairs with Stop()'s release store of the flag.
  while (!stop_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(options_.adjust_interval_micros));
    switch (options_.policy) {
      case SchedulingPolicy::kWorkloadDriven:
        AdjustWorkloadDriven();
        break;
      case SchedulingPolicy::kFreshnessDriven:
        AdjustFreshnessDriven();
        break;
      case SchedulingPolicy::kStatic:
        break;
    }
  }
}

void ResourceScheduler::AdjustWorkloadDriven() {
  // Re-apportion in-flight quotas by queue pressure: the class with the
  // deeper backlog gets more concurrency (the survey's "decrease the
  // parallelism of OLAP while enlarging the OLTP threads" behaviour).
  const double q_tp = static_cast<double>(oltp_pool_.QueueDepth());
  const double q_ap = static_cast<double>(olap_pool_.QueueDepth());
  const size_t total = options_.oltp_threads + options_.olap_threads;
  if (q_tp + q_ap < 1) return;  // idle: leave quotas alone
  const double tp_share = (q_tp + 0.5) / (q_tp + q_ap + 1.0);
  size_t tp_quota = static_cast<size_t>(
      std::clamp(tp_share * static_cast<double>(total), 1.0,
                 static_cast<double>(total - 1)));
  oltp_pool_.SetConcurrencyQuota(tp_quota);
  SetOlapQuota(total - tp_quota);
}

void ResourceScheduler::SetOlapQuota(size_t quota) {
  olap_pool_.SetConcurrencyQuota(quota);
  // Throttle intra-query parallelism along with whole-query admission: the
  // quota bounds how many morsels of the engine's parallel scans and
  // radix-partitioned joins run at once, so shrinking it frees real CPU
  // for OLTP.
  if (options_.ap_scan_pool != nullptr)
    options_.ap_scan_pool->SetConcurrencyQuota(quota);
}

void ResourceScheduler::AdjustFreshnessDriven() {
  if (!freshness_probe_) return;
  const Micros lag = freshness_probe_();
  const ExecutionMode cur = mode();
  if (lag > options_.freshness_sla_micros) {
    // Freshness violated: enter shared mode and merge immediately.
    if (cur != ExecutionMode::kShared) {
      // order: release pairs with mode()'s acquire — a query routed by the
      // new mode also sees the scheduler state written before the switch.
      mode_.store(ExecutionMode::kShared, std::memory_order_release);
      mode_switches_.fetch_add(1, std::memory_order_relaxed);
    }
    if (force_sync_) force_sync_();
  } else if (cur == ExecutionMode::kShared &&
             lag < options_.freshness_sla_micros / 4) {
    // Comfortably fresh again: back to isolated execution for throughput.
    mode_.store(ExecutionMode::kIsolated, std::memory_order_release);  // order: ^
    mode_switches_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace htap
