// HTAP resource scheduling (Table 2, RS row): dynamic allocation of
// execution resources between the OLTP and OLAP workload classes.
//
// Two controllers from the survey:
//  * Workload-driven (SAP HANA / Siper style): watches queue pressure per
//    class and re-apportions worker concurrency quotas — high throughput,
//    freshness-blind.
//  * Freshness-driven (RDE style): watches the freshness signal and toggles
//    between ISOLATED execution (OLAP reads only the merged column store;
//    sync is lazy; maximal throughput) and SHARED execution (OLAP unions
//    the delta; sync is eager; maximal freshness).

#ifndef HTAP_SCHED_SCHEDULER_H_
#define HTAP_SCHED_SCHEDULER_H_

#include <atomic>
#include <functional>
#include <thread>

#include "common/clock.h"
#include "common/thread_pool.h"

namespace htap {

enum class SchedulingPolicy : uint8_t {
  kStatic = 0,           // fixed 50/50 split, no adaptation (baseline)
  kWorkloadDriven = 1,
  kFreshnessDriven = 2,
};

const char* SchedulingPolicyName(SchedulingPolicy p);

/// Execution mode toggled by the freshness-driven controller.
enum class ExecutionMode : uint8_t {
  kIsolated = 0,  // OLAP reads merged column data only; sync is periodic
  kShared = 1,    // OLAP unions the delta; sync is eager
};

class ResourceScheduler {
 public:
  struct Options {
    SchedulingPolicy policy = SchedulingPolicy::kStatic;
    size_t oltp_threads = 2;
    size_t olap_threads = 2;
    Micros adjust_interval_micros = 5000;
    Micros freshness_sla_micros = 20000;  // freshness-driven threshold
    /// The engine's AP morsel pool (Database::ap_scan_pool()), which runs
    /// scan, aggregation, and join build/probe morsels. When set, the OLAP
    /// concurrency quota is mirrored onto it, so throttling OLAP genuinely
    /// shrinks intra-query parallelism — joins included — rather than only
    /// queueing whole queries.
    ThreadPool* ap_scan_pool = nullptr;
  };

  /// `freshness_probe` returns the current visibility lag in microseconds;
  /// `force_sync` triggers an immediate merge. Both may be null when the
  /// policy does not need them.
  ResourceScheduler(Options options,
                    std::function<Micros()> freshness_probe = nullptr,
                    std::function<void()> force_sync = nullptr);
  ~ResourceScheduler();

  void SubmitOltp(std::function<void()> task);
  void SubmitOlap(std::function<void()> task);

  /// Waits for both queues to drain.
  void Drain();

  // order: acquire pairs with the control loop's release mode switches.
  ExecutionMode mode() const { return mode_.load(std::memory_order_acquire); }

  // Observability.
  uint64_t oltp_completed() const { return oltp_done_.load(std::memory_order_relaxed); }
  uint64_t olap_completed() const { return olap_done_.load(std::memory_order_relaxed); }
  uint64_t mode_switches() const { return mode_switches_.load(std::memory_order_relaxed); }
  size_t oltp_quota() const { return oltp_pool_.concurrency_quota(); }
  size_t olap_quota() const { return olap_pool_.concurrency_quota(); }

  void Stop();

 private:
  void ControlLoop();
  void AdjustWorkloadDriven();
  void AdjustFreshnessDriven();
  void SetOlapQuota(size_t quota);

  const Options options_;
  std::function<Micros()> freshness_probe_;
  std::function<void()> force_sync_;

  ThreadPool oltp_pool_;
  ThreadPool olap_pool_;

  std::atomic<ExecutionMode> mode_{ExecutionMode::kIsolated};
  std::atomic<uint64_t> oltp_done_{0};
  std::atomic<uint64_t> olap_done_{0};
  std::atomic<uint64_t> mode_switches_{0};

  std::atomic<bool> stop_{false};
  std::thread controller_;
};

}  // namespace htap

#endif  // HTAP_SCHED_SCHEDULER_H_
