// Sharded TPC-C-style workload driver for the sim cluster (DESIGN.md §14).
//
// Closed-loop clients issue NewOrder- and Payment-shaped multi-table
// transactions against a DistributedDb, hash-routed across shards. Each
// warehouse is anchored to a home shard by probing ShardOf() for keys that
// land there, so most transactions are single-shard; `cross_shard_fraction`
// of NewOrders source one order line from a remote warehouse and
// `cross_shard_fraction` of Payments pay a remote customer, exercising 2PC.
// A periodic analytical client scans order lines on the learners and samples
// the freshness-lag gauges.
//
// Everything is deterministic given a seed: values written are pure
// functions of the transaction parameters (no read-modify-write), so
// RPC-level retries stay idempotent and runs are byte-reproducible.

#ifndef HTAP_SIM_WORKLOAD_H_
#define HTAP_SIM_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "sim/dist_db.h"

namespace htap {
namespace sim {

/// Fixed table ids for the workload's mini TPC-C schema.
struct TpccTables {
  static constexpr uint32_t kWarehouse = 1;
  static constexpr uint32_t kDistrict = 2;
  static constexpr uint32_t kCustomer = 3;
  static constexpr uint32_t kOrder = 4;
  static constexpr uint32_t kOrderLine = 5;
  static constexpr uint32_t kStock = 6;
};

struct WorkloadOptions {
  int warehouses = 4;
  int districts_per_warehouse = 2;
  int customers_per_district = 8;
  int stock_items = 32;            // per warehouse
  int clients = 16;                // closed-loop terminals
  double new_order_pct = 0.45;
  double payment_pct = 0.45;       // remainder: single-row stock touches
  double cross_shard_fraction = 0.15;
  int order_lines_min = 3;
  int order_lines_max = 6;
  int max_txn_attempts = 8;        // client-level retry on abort
  Micros retry_backoff_micros = 20000;
  Micros think_time_micros = 1000; // between a client's transactions
  Micros ap_scan_interval = 200000;  // 0 disables the analytical client
  uint64_t seed = 42;
};

struct WorkloadStats {
  uint64_t new_orders_committed = 0;
  uint64_t new_orders_aborted = 0;
  uint64_t payments_committed = 0;
  uint64_t payments_aborted = 0;
  uint64_t stock_touches_committed = 0;
  uint64_t stock_touches_aborted = 0;
  uint64_t client_retries = 0;      // re-submissions after an abort
  uint64_t cross_shard_issued = 0;  // txns spanning >1 shard by design
  uint64_t ap_scans = 0;
  uint64_t ap_rows_read = 0;
  Micros repl_lag_max = 0;   // max FreshnessLag(replicated) seen by AP scans
  Micros merge_lag_max = 0;  // max FreshnessLag(merged) seen by AP scans
  Micros duration_micros = 0;

  uint64_t committed() const {
    return new_orders_committed + payments_committed + stock_touches_committed;
  }
  uint64_t aborted() const {
    return new_orders_aborted + payments_aborted + stock_touches_aborted;
  }
  /// TPC-C's headline metric in virtual time: committed NewOrders/minute.
  double TpmC() const {
    return duration_micros == 0
               ? 0.0
               : static_cast<double>(new_orders_committed) * 60e6 /
                     static_cast<double>(duration_micros);
  }
};

/// Drives a DistributedDb with the mixed workload. Use:
///   TpccWorkload w(&db, opts);
///   w.RegisterTables();   // before db.Bootstrap() is fine, or after
///   db.Bootstrap();
///   w.Load();             // populate warehouses (runs the sim)
///   w.Run(2'000'000);     // closed loop for 2 virtual seconds
class TpccWorkload {
 public:
  TpccWorkload(DistributedDb* db, WorkloadOptions options);

  /// Registers the six tables with the database.
  void RegisterTables();

  /// Synchronously (in virtual time) inserts the initial rows: warehouses,
  /// districts, customers, and stock.
  void Load();

  /// Runs `clients` closed-loop terminals plus the analytical client for
  /// `duration` of virtual time, then drains in-flight transactions.
  void Run(Micros duration);

  const WorkloadStats& stats() const { return stats_; }

  /// Home-shard key pool: the `index`-th key of `warehouse` that hashes to
  /// the warehouse's home shard (deterministic, probed at construction).
  Key HomeKey(int warehouse, int index) const {
    return home_keys_[static_cast<size_t>(warehouse)]
                     [static_cast<size_t>(index) % kHomeKeysPerWarehouse];
  }
  int HomeShard(int warehouse) const {
    return home_shards_[static_cast<size_t>(warehouse)];
  }

 private:
  static constexpr size_t kHomeKeysPerWarehouse = 4096;

  struct Txn {
    std::vector<WriteOp> writes;
    bool is_new_order = false;
    bool is_payment = false;
    bool cross_shard = false;
  };

  Txn MakeNewOrder(int client);
  Txn MakePayment(int client);
  Txn MakeStockTouch(int client);
  void RunClient(int client, Micros deadline);
  void SubmitWithRetry(int client, Txn txn, int attempts_left,
                       Micros deadline);
  void ScheduleApScan(Micros deadline);

  Key WarehouseKey(int w) const { return HomeKey(w, 0); }
  Key DistrictKey(int w, int d) const { return HomeKey(w, 1 + d); }
  Key CustomerKey(int w, int d, int c) const {
    return HomeKey(w, 1 + options_.districts_per_warehouse +
                          d * options_.customers_per_district + c);
  }
  Key StockKey(int w, int i) const {
    return HomeKey(w, 1 + options_.districts_per_warehouse +
                          options_.districts_per_warehouse *
                              options_.customers_per_district +
                          i);
  }
  Key OrderKey(int w, uint64_t serial) const;
  Key OrderLineKey(int w, uint64_t serial, int line) const;

  DistributedDb* db_;
  WorkloadOptions options_;
  Random rng_;
  WorkloadStats stats_;
  std::vector<int> home_shards_;
  std::vector<std::vector<Key>> home_keys_;
  uint64_t next_order_serial_ = 1;
  uint64_t inflight_ = 0;
};

}  // namespace sim
}  // namespace htap

#endif  // HTAP_SIM_WORKLOAD_H_
