// The survey's architecture (b): a TiDB-style distributed HTAP database on
// the simulated network.
//
//  * Data is hash-sharded; each shard is a Raft group of `replicas` voting
//    row-store replicas plus one non-voting LEARNER.
//  * Transactions: a gateway ("SQL engine") node fetches a commit timestamp
//    from a TSO node, then commits single-shard transactions with one Raft
//    proposal and multi-shard transactions with 2PC (Prepare/Commit
//    proposals through each shard's Raft log) — "2PC + Raft + logging".
//  * Learners apply the same Raft log into a LogDeltaStore (encoded delta
//    files) and periodically merge into a ColumnTable — "log-based delta
//    and column scan" with "log-based delta merge".
//
// Everything runs in virtual time, so throughput/scalability/freshness
// numbers are deterministic and host-independent.

#ifndef HTAP_SIM_DIST_DB_H_
#define HTAP_SIM_DIST_DB_H_

#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "columnar/column_table.h"
#include "delta/delta.h"
#include "exec/executor.h"
#include "sim/raft.h"
#include "types/row.h"
#include "types/schema.h"

namespace htap {
namespace sim {

/// One write in a distributed transaction.
struct WriteOp {
  uint32_t table_id = 0;
  ChangeOp op = ChangeOp::kInsert;
  Key key = 0;
  Row row;
};

/// Commands in the shard state machine's Raft log.
enum class ShardCmdType : uint8_t {
  kApplyWrites = 0,  // one-shot commit (single-shard transaction)
  kPrepare = 1,
  kCommitTxn = 2,
  kAbortTxn = 3,
};

/// The replicated state machine every member of a shard group applies.
/// Deterministic: all replicas (and the learner) reach identical state.
class ShardStateMachine {
 public:
  /// `change_sink`: called with the ChangeEvents of each applied commit
  /// (the learner wires this into its LogDeltaStore). May be null.
  explicit ShardStateMachine(
      std::function<void(const std::vector<ChangeEvent>&)> change_sink =
          nullptr)
      : change_sink_(std::move(change_sink)) {}

  /// Applies one encoded command; returns true if it represents a
  /// successful mutation (prepare-ok / committed).
  bool Apply(const std::string& payload);

  /// Reads the current value of a key (leader-side point reads).
  bool Get(uint32_t table_id, Key key, Row* out) const;
  size_t row_count() const;
  CSN last_applied_csn() const { return last_csn_; }

  /// Did transaction `txn_id`'s PREPARE succeed on this shard?
  bool PrepareSucceeded(uint64_t txn_id) const {
    return prepared_.count(txn_id) != 0;
  }

  // ---- Command codec ----
  static std::string EncodeApplyWrites(uint64_t txn_id, CSN csn,
                                       const std::vector<WriteOp>& writes);
  static std::string EncodePrepare(uint64_t txn_id,
                                   const std::vector<WriteOp>& writes);
  static std::string EncodeCommitTxn(uint64_t txn_id, CSN csn);
  static std::string EncodeAbortTxn(uint64_t txn_id);

 private:
  void ApplyWrites(CSN csn, const std::vector<WriteOp>& writes);
  static void EncodeWrites(const std::vector<WriteOp>& writes,
                           std::string* out);
  static bool DecodeWrites(const std::string& in, size_t* pos,
                           std::vector<WriteOp>* out);

  std::map<std::pair<uint32_t, Key>, Row> data_;
  std::unordered_map<Key, uint64_t> locks_;  // key -> preparing txn
  std::unordered_map<uint64_t, std::vector<WriteOp>> prepared_;
  CSN last_csn_ = 0;
  std::function<void(const std::vector<ChangeEvent>&)> change_sink_;
};

/// Per-shard learner replica state: encoded delta files + column store.
struct LearnerState {
  std::unordered_map<uint32_t, std::unique_ptr<LogDeltaStore>> deltas;
  std::unordered_map<uint32_t, std::unique_ptr<ColumnTable>> tables;
};

class DistributedDb {
 public:
  struct Options {
    int num_shards = 3;
    int replicas_per_shard = 3;
    bool with_learners = true;
    SimNetwork::Options net;
    RaftConfig raft;
    Micros gateway_cpu_cost = 10;   // per txn routing cost
    Micros tso_cpu_cost = 2;
    Micros learner_merge_interval = 50000;
  };

  DistributedDb(SimEnv* env, Options options);

  /// Registers a table (co-sharded by key with all others).
  void RegisterTable(uint32_t table_id, Schema schema);

  /// Runs elections until every shard has a leader.
  void Bootstrap();

  /// Executes a transaction asynchronously inside the simulation; `done`
  /// fires with commit/abort. Single-shard fast path, 2PC otherwise.
  void ExecuteTxn(std::vector<WriteOp> writes,
                  std::function<void(bool committed)> done);

  /// Leader-side point read (linearizable enough for the benches).
  bool Read(uint32_t table_id, Key key, Row* out);

  /// Columnar scan over the learner replicas (log-delta + column union
  /// when `include_delta`; pure column scan otherwise). Freshness depends
  /// on replication + merge lag.
  std::vector<Row> AnalyticalScan(uint32_t table_id, const Predicate& pred,
                                  const std::vector<int>& projection,
                                  bool include_delta = true,
                                  ScanStats* stats = nullptr);

  /// Vectorized learner scan (DESIGN.md §12/§13): the same shard walk,
  /// visibility, and stats as AnalyticalScan, but each shard's learner
  /// emits ColumnBatches of at most `batch_rows` rows (0 = one batch per
  /// row group), concatenated in shard order —
  /// BatchesToRows(result) is byte-identical to AnalyticalScan's output.
  std::vector<ColumnBatch> AnalyticalScanBatches(
      uint32_t table_id, const Predicate& pred,
      const std::vector<int>& projection, size_t batch_rows,
      bool include_delta = true, ScanStats* stats = nullptr);

  /// Forces all learner deltas to merge into their column tables.
  void SyncLearners();

  int ShardOf(Key key) const {
    return static_cast<int>((static_cast<uint64_t>(key) * 2654435761u) %
                            static_cast<uint64_t>(options_.num_shards));
  }

  RaftGroup* shard_group(int shard) { return groups_[shard].get(); }
  SimEnv* env() { return env_; }
  SimNetwork* network() { return &net_; }

  // Observability.
  uint64_t committed() const { return committed_; }
  uint64_t aborted() const { return aborted_; }
  CSN last_csn() const { return next_csn_; }
  /// Newest CSN visible to a learner scan of this table across all shards
  /// when merged only (no delta).
  CSN LearnerMergedCsn(uint32_t table_id) const;
  /// Newest CSN present in learner deltas+tables (replication frontier).
  CSN LearnerReplicatedCsn(uint32_t table_id) const;
  /// Virtual-time lag between last commit and the learner frontier.
  Micros CommitTimeOf(CSN csn) const;

 private:
  struct ShardRuntime {
    std::map<NodeId, std::unique_ptr<ShardStateMachine>> machines;
    NodeId learner_id = -1;
    LearnerState learner;
  };

  void WithLeader(int shard, int attempts,
                  std::function<void(RaftNode*)> fn,
                  std::function<void()> on_fail);
  void ScheduleLearnerMerge();
  void RunTwoPhaseCommit(uint64_t txn_id, CSN csn,
                         std::map<int, std::vector<WriteOp>> by_shard,
                         std::function<void(bool)> done);

  SimEnv* env_;
  Options options_;
  SimNetwork net_;
  std::unordered_map<uint32_t, Schema> schemas_;
  std::vector<std::unique_ptr<RaftGroup>> groups_;
  std::vector<ShardRuntime> shards_;
  NodeId gateway_id_, tso_id_;
  std::unique_ptr<SimNode> gateway_, tso_;
  uint64_t next_txn_id_ = 1;
  CSN next_csn_ = 1;
  uint64_t committed_ = 0, aborted_ = 0;
  std::map<CSN, Micros> commit_times_;
};

}  // namespace sim
}  // namespace htap

#endif  // HTAP_SIM_DIST_DB_H_
