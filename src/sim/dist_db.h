// The survey's architecture (b): a TiDB-style distributed HTAP database on
// the simulated network.
//
//  * Data is hash-sharded; each shard is a Raft group of `replicas` voting
//    row-store replicas plus one non-voting LEARNER.
//  * Transactions: a gateway ("SQL engine") node fetches a commit timestamp
//    from a TSO node, then commits single-shard transactions with one Raft
//    proposal and multi-shard transactions with 2PC (Prepare/Commit
//    proposals through each shard's Raft log) — "2PC + Raft + logging".
//  * Learners apply the same Raft log into a LogDeltaStore (encoded delta
//    files) and periodically merge into a ColumnTable — "log-based delta
//    and column scan" with "log-based delta merge".
//  * Every gateway→shard command travels the simulated network as an RPC
//    with timeout/retry/exponential-backoff, so leader-election windows,
//    crashes, partitions, and message loss are survived rather than
//    assumed away; 2PC decisions are driven to completion by a resolver
//    even when the deciding RPCs initially fail (DESIGN.md §14).
//
// Everything runs in virtual time, so throughput/scalability/freshness
// numbers are deterministic and host-independent.

#ifndef HTAP_SIM_DIST_DB_H_
#define HTAP_SIM_DIST_DB_H_

#include <array>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "columnar/column_table.h"
#include "delta/delta.h"
#include "exec/executor.h"
#include "sim/raft.h"
#include "types/row.h"
#include "types/schema.h"

namespace htap {
namespace sim {

/// One write in a distributed transaction.
struct WriteOp {
  uint32_t table_id = 0;
  ChangeOp op = ChangeOp::kInsert;
  Key key = 0;
  Row row;
};

/// Commands in the shard state machine's Raft log.
enum class ShardCmdType : uint8_t {
  kApplyWrites = 0,  // one-shot commit (single-shard transaction)
  kPrepare = 1,
  kCommitTxn = 2,
  kAbortTxn = 3,
};

/// The replicated state machine every member of a shard group applies.
/// Deterministic: all replicas (and the learner) reach identical state.
/// Commands are idempotent per txn_id — the gateway's RPC retries may
/// append the same command to the log more than once (a reply was lost,
/// not the request), and only the first application takes effect.
class ShardStateMachine {
 public:
  /// `change_sink`: called with the ChangeEvents of each applied commit
  /// (the learner wires this into its LogDeltaStore). May be null.
  explicit ShardStateMachine(
      std::function<void(const std::vector<ChangeEvent>&)> change_sink =
          nullptr)
      : change_sink_(std::move(change_sink)) {}

  /// Applies one encoded command; returns true if it represents a
  /// successful mutation (prepare-ok / committed).
  bool Apply(const std::string& payload);

  /// Reads the current value of a key (leader-side point reads).
  bool Get(uint32_t table_id, Key key, Row* out) const;
  size_t row_count() const;
  CSN last_applied_csn() const { return last_csn_; }

  /// Did transaction `txn_id`'s PREPARE succeed on this shard?
  bool PrepareSucceeded(uint64_t txn_id) const {
    return prepared_.count(txn_id) != 0;
  }
  size_t prepared_count() const { return prepared_.size(); }
  size_t locks_held() const { return locks_.size(); }

  /// Rows of one table, in key order (convergence assertions).
  std::vector<std::pair<Key, Row>> Rows(uint32_t table_id) const;

  // ---- Command codec ----
  static std::string EncodeApplyWrites(uint64_t txn_id, CSN csn,
                                       const std::vector<WriteOp>& writes);
  static std::string EncodePrepare(uint64_t txn_id,
                                   const std::vector<WriteOp>& writes);
  static std::string EncodeCommitTxn(uint64_t txn_id, CSN csn);
  static std::string EncodeAbortTxn(uint64_t txn_id);

 private:
  void ApplyWrites(CSN csn, const std::vector<WriteOp>& writes);
  static void EncodeWrites(const std::vector<WriteOp>& writes,
                           std::string* out);
  static bool DecodeWrites(const std::string& in, size_t* pos,
                           std::vector<WriteOp>* out);

  std::map<std::pair<uint32_t, Key>, Row> data_;
  std::unordered_map<Key, uint64_t> locks_;  // key -> preparing txn
  std::unordered_map<uint64_t, std::vector<WriteOp>> prepared_;
  // Txns whose outcome is final on this shard (applied or aborted): a
  // duplicate ApplyWrites/CommitTxn is a no-op, and a late duplicate
  // Prepare sequenced after the decision must not re-acquire locks.
  std::unordered_set<uint64_t> finished_;
  CSN last_csn_ = 0;
  std::function<void(const std::vector<ChangeEvent>&)> change_sink_;
};

/// Per-shard learner replica state: encoded delta files + column store.
struct LearnerState {
  std::unordered_map<uint32_t, std::unique_ptr<LogDeltaStore>> deltas;
  std::unordered_map<uint32_t, std::unique_ptr<ColumnTable>> tables;
};

/// Timeout/retry/backoff policy for gateway→shard-leader RPCs. An RPC is
/// retried (against the then-current leader) when no leader is known, the
/// attempt times out, or the leader replies "not committed" — which covers
/// leader-election windows, crashes, partitions, and message loss.
struct RpcRetryPolicy {
  int max_attempts = 16;
  Micros timeout_micros = 60000;       // per attempt, awaiting the reply
  Micros backoff_micros = 4000;        // initial backoff, grows geometrically
  double backoff_multiplier = 2.0;
  Micros max_backoff_micros = 100000;
};

/// Power-of-two-bucketed histogram over virtual-time latencies. Integer
/// arithmetic only, so bench output is byte-identical across hosts.
struct LatencyHistogram {
  static constexpr int kBuckets = 32;  // bucket i holds v with bit_width==i
  std::array<uint64_t, kBuckets> counts{};
  uint64_t total = 0;
  Micros sum = 0;
  Micros max = 0;

  void Record(Micros v);
  /// Inclusive upper bound (micros) of the bucket containing quantile `q`
  /// (0 < q <= 1); 0 when empty.
  Micros Quantile(double q) const;
  Micros Mean() const { return total == 0 ? 0 : sum / static_cast<Micros>(total); }
};

/// Cluster-wide observability snapshot (DESIGN.md §14 defines every
/// metric precisely).
struct ClusterStats {
  struct Shard {
    int shard = 0;
    NodeId leader = -1;          // -1 while no live leader
    uint64_t term = 0;           // leader's term (0 if none)
    uint64_t log_entries = 0;    // leader's Raft log length
    uint64_t elections_started = 0;  // summed over members, monotone
    uint64_t leader_changes = 0;     // elections won, summed over members
    uint64_t single_shard_commits = 0;
    uint64_t prepares_ok = 0;
    uint64_t prepares_failed = 0;
    uint64_t tpc_commits = 0;
    uint64_t tpc_aborts = 0;
  };
  struct TableFreshness {
    uint32_t table_id = 0;
    CSN leader_csn = 0;       // newest CSN assigned to a committed txn
    CSN replicated_csn = 0;   // LearnerReplicatedCsn
    CSN merged_csn = 0;       // LearnerMergedCsn
    Micros replication_lag_micros = 0;  // virtual-time age of oldest gap
    Micros merge_lag_micros = 0;
  };

  std::vector<Shard> shards;
  std::vector<TableFreshness> tables;
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t single_shard_txns = 0;
  uint64_t multi_shard_txns = 0;
  uint64_t rpc_attempts = 0;
  uint64_t rpc_timeouts = 0;
  uint64_t rpc_no_leader = 0;
  uint64_t rpc_retries = 0;
  uint64_t resolver_retries = 0;   // phase-2 decisions re-driven
  uint64_t unresolved_txns = 0;    // decisions not yet applied everywhere
  uint64_t crashes_injected = 0;
  uint64_t partitions_injected = 0;
  uint64_t messages_sent = 0;
  uint64_t messages_dropped = 0;
  LatencyHistogram commit_latency;  // gateway view, virtual micros
};

class DistributedDb {
 public:
  struct Options {
    int num_shards = 3;
    int replicas_per_shard = 3;
    bool with_learners = true;
    SimNetwork::Options net;
    RaftConfig raft;
    RpcRetryPolicy rpc;
    Micros gateway_cpu_cost = 10;   // per txn routing cost
    Micros tso_cpu_cost = 2;
    Micros learner_merge_interval = 50000;
    /// Cadence at which an un-applied 2PC decision is re-driven after its
    /// RPC retry budget is exhausted (e.g. a shard is partitioned away).
    Micros resolver_retry_interval = 100000;
  };

  DistributedDb(SimEnv* env, Options options);

  /// Registers a table (co-sharded by key with all others).
  void RegisterTable(uint32_t table_id, Schema schema);

  /// Runs elections until every shard has a leader.
  void Bootstrap();

  /// Executes a transaction asynchronously inside the simulation; `done`
  /// fires with commit/abort. Single-shard fast path, 2PC otherwise.
  void ExecuteTxn(std::vector<WriteOp> writes,
                  std::function<void(bool committed)> done);

  /// Leader-side point read (linearizable enough for the benches).
  bool Read(uint32_t table_id, Key key, Row* out);

  /// Columnar scan over the learner replicas (log-delta + column union
  /// when `include_delta`; pure column scan otherwise). Freshness depends
  /// on replication + merge lag.
  std::vector<Row> AnalyticalScan(uint32_t table_id, const Predicate& pred,
                                  const std::vector<int>& projection,
                                  bool include_delta = true,
                                  ScanStats* stats = nullptr);

  /// Vectorized learner scan (DESIGN.md §12/§13): the same shard walk,
  /// visibility, and stats as AnalyticalScan, but each shard's learner
  /// emits ColumnBatches of at most `batch_rows` rows (0 = one batch per
  /// row group), concatenated in shard order —
  /// BatchesToRows(result) is byte-identical to AnalyticalScan's output.
  std::vector<ColumnBatch> AnalyticalScanBatches(
      uint32_t table_id, const Predicate& pred,
      const std::vector<int>& projection, size_t batch_rows,
      bool include_delta = true, ScanStats* stats = nullptr);

  /// Forces all learner deltas to merge into their column tables.
  void SyncLearners();

  int ShardOf(Key key) const {
    return static_cast<int>((static_cast<uint64_t>(key) * 2654435761u) %
                            static_cast<uint64_t>(options_.num_shards));
  }

  RaftGroup* shard_group(int shard) { return groups_[shard].get(); }
  SimEnv* env() { return env_; }
  SimNetwork* network() { return &net_; }

  // ---- Fault injection (wired through SimNetwork/SimNode primitives) ----
  /// Crashes the current leader of `shard`; returns its id (-1 if none).
  NodeId CrashShardLeader(int shard);
  /// Restarts every crashed node in every shard group.
  void RestartDeadNodes();
  /// Partitions `node` from every other member of its shard group and
  /// from the gateway (a fully isolated machine).
  void IsolateNode(int shard, NodeId node);
  /// Heals all partitions.
  void HealNetwork() { net_.HealAll(); }
  /// Sets the network's message-loss probability (0 disables).
  void SetMessageLoss(double p) { net_.set_drop_probability(p); }

  // Observability.
  uint64_t committed() const { return committed_; }
  uint64_t aborted() const { return aborted_; }
  CSN last_csn() const { return next_csn_; }
  /// Newest CSN visible to a learner scan of this table across all shards
  /// when merged only (no delta).
  CSN LearnerMergedCsn(uint32_t table_id) const;
  /// Newest CSN present in learner deltas+tables (replication frontier).
  CSN LearnerReplicatedCsn(uint32_t table_id) const;
  /// Virtual-time lag between last commit and the learner frontier.
  Micros CommitTimeOf(CSN csn) const;
  /// Virtual-time age of the oldest committed change above `frontier`
  /// (0 when the frontier covers every commit) — the freshness-lag gauge
  /// behind ClusterStats::TableFreshness.
  Micros FreshnessLagMicros(CSN frontier) const;

  /// 2PC decisions not yet applied on every participant shard.
  size_t unresolved_txns() const { return pending_decisions_.size(); }
  /// True when every shard has a live leader, all Raft logs are fully
  /// applied on voters and learners, and no 2PC decision is outstanding.
  bool Converged() const;
  /// Rows of `table` as the shard leaders see them, sorted by key.
  std::vector<std::pair<Key, Row>> LeaderRows(uint32_t table_id) const;
  /// Rows of `table` as the learner row-state machines see them (the
  /// replication frontier, before any columnar merge), sorted by key.
  std::vector<std::pair<Key, Row>> LearnerRows(uint32_t table_id) const;

  /// Snapshot of every cluster counter/gauge (DESIGN.md §14).
  ClusterStats GetClusterStats() const;

 private:
  struct ShardRuntime {
    std::map<NodeId, std::unique_ptr<ShardStateMachine>> machines;
    NodeId learner_id = -1;
    LearnerState learner;
  };

  /// Per-shard gateway-side counters.
  struct ShardCounters {
    uint64_t single_shard_commits = 0;
    uint64_t prepares_ok = 0;
    uint64_t prepares_failed = 0;
    uint64_t tpc_commits = 0;
    uint64_t tpc_aborts = 0;
  };

  /// One gateway→shard RPC: command + retry chain state.
  struct RpcCall {
    int shard = 0;
    std::string cmd;
    bool want_vote = false;   // prepare RPCs carry the shard's 2PC vote
    uint64_t txn_id = 0;
    int attempts_left = 0;
    Micros backoff = 0;
    int attempt_serial = 0;   // stale timeouts/replies are ignored
    bool settled = false;
    std::function<void(bool ok, bool vote)> done;
  };

  /// A 2PC decision being driven to every participant; survives RPC
  /// failures (the resolver re-drives it until applied everywhere).
  struct PendingDecision {
    bool commit = false;
    CSN csn = 0;
    std::set<int> shards;  // still awaiting the decision
    Micros start = 0;      // gateway-side txn start (latency histogram)
    std::function<void(bool)> done;  // client callback, fires when empty
  };

  /// A commit-timestamp fetch from the TSO with timeout/retry (the
  /// allocation is not idempotent; a lost reply burns a CSN, which
  /// commit_times_ tolerates as a gap).
  struct TsoCall {
    bool settled = false;
    int serial = 0;
    int attempts_left = 0;
    std::function<void(bool ok, CSN csn)> done;
  };

  void CallShard(int shard, std::string cmd, bool want_vote, uint64_t txn_id,
                 std::function<void(bool ok, bool vote)> done);
  void StartRpcAttempt(std::shared_ptr<RpcCall> call);
  void RetryRpc(std::shared_ptr<RpcCall> call);
  void SettleRpc(std::shared_ptr<RpcCall> call, bool ok, bool vote);
  void FetchCsn(std::function<void(bool ok, CSN csn)> done);
  void StartTsoAttempt(std::shared_ptr<TsoCall> call);

  void ScheduleLearnerMerge();
  void RunTwoPhaseCommit(uint64_t txn_id, CSN csn,
                         std::map<int, std::vector<WriteOp>> by_shard,
                         Micros start, std::function<void(bool)> done);
  void DriveDecision(uint64_t txn_id, int shard);
  void FinishTxn(bool committed, CSN csn, Micros start,
                 std::function<void(bool)> done);

  SimEnv* env_;
  Options options_;
  SimNetwork net_;
  std::unordered_map<uint32_t, Schema> schemas_;
  std::vector<std::unique_ptr<RaftGroup>> groups_;
  std::vector<ShardRuntime> shards_;
  NodeId gateway_id_, tso_id_;
  std::unique_ptr<SimNode> gateway_, tso_;
  uint64_t next_txn_id_ = 1;
  CSN next_csn_ = 1;
  uint64_t committed_ = 0, aborted_ = 0;
  std::map<CSN, Micros> commit_times_;

  // Observability (gateway view).
  std::vector<ShardCounters> shard_counters_;
  LatencyHistogram commit_latency_;
  uint64_t single_shard_txns_ = 0, multi_shard_txns_ = 0;
  uint64_t rpc_attempts_ = 0, rpc_timeouts_ = 0, rpc_no_leader_ = 0;
  uint64_t rpc_retries_ = 0, resolver_retries_ = 0;
  uint64_t crashes_injected_ = 0, partitions_injected_ = 0;
  std::map<uint64_t, PendingDecision> pending_decisions_;
};

}  // namespace sim
}  // namespace htap

#endif  // HTAP_SIM_DIST_DB_H_
