#include "sim/raft.h"

#include <algorithm>
#include <memory>

namespace htap {
namespace sim {

const char* RaftRoleName(RaftRole r) {
  switch (r) {
    case RaftRole::kFollower: return "follower";
    case RaftRole::kCandidate: return "candidate";
    case RaftRole::kLeader: return "leader";
    case RaftRole::kLearner: return "learner";
  }
  return "?";
}

RaftNode::RaftNode(SimEnv* env, SimNetwork* net, NodeId id,
                   std::vector<NodeId> voters, std::vector<NodeId> learners,
                   RaftConfig config, RaftApplyFn apply)
    : SimNode(env, id),
      net_(net),
      voters_(std::move(voters)),
      learners_(std::move(learners)),
      config_(config),
      apply_(std::move(apply)) {
  if (!IsVoter()) role_ = RaftRole::kLearner;
}

bool RaftNode::IsVoter() const {
  return std::find(voters_.begin(), voters_.end(), id_) != voters_.end();
}

void RaftNode::Start() {
  if (role_ != RaftRole::kLearner) ArmElectionTimer();
}

void RaftNode::Crash() {
  SimNode::Crash();
  // Volatile state is lost.
  if (role_ != RaftRole::kLearner) role_ = RaftRole::kFollower;
  FailPendingProposals();
  next_index_.clear();
  match_index_.clear();
  append_inflight_.clear();
  votes_received_ = 0;
  ++timer_epoch_;  // cancels outstanding timers
}

void RaftNode::Restart() {
  SimNode::Restart();
  if (role_ != RaftRole::kLearner) {
    role_ = RaftRole::kFollower;
    ArmElectionTimer();
  }
}

void RaftNode::ArmElectionTimer() {
  const uint64_t epoch = ++timer_epoch_;
  const Micros span =
      config_.election_timeout_max - config_.election_timeout_min;
  const Micros timeout =
      config_.election_timeout_min +
      static_cast<Micros>(env_->rng().Uniform(
          static_cast<uint64_t>(span > 0 ? span : 1)));
  env_->Schedule(timeout, [this, epoch] {
    if (!alive_ || epoch != timer_epoch_) return;
    if (role_ == RaftRole::kLeader || role_ == RaftRole::kLearner) return;
    StartElection();
  });
}

void RaftNode::StartElection() {
  ++elections_started_;
  ++term_;
  role_ = RaftRole::kCandidate;
  voted_for_ = id_;
  votes_received_ = 1;  // self
  FailPendingProposals();
  ArmElectionTimer();  // retry if split

  const VoteArgs args{term_, id_, LastLogIndex(), LastLogTerm()};
  for (NodeId peer : voters_) {
    if (peer == id_) continue;
    RaftNode* p = resolve_(peer);
    net_->Send(id_, peer, [p, args] {
      p->Execute(p->config_.rpc_cpu_cost, [p, args] { p->HandleVote(args); });
    });
  }
  if (votes_received_ >= Majority()) BecomeLeader();  // single-voter group
}

void RaftNode::HandleVote(const VoteArgs& args) {
  if (args.term > term_) BecomeFollower(args.term);
  bool granted = false;
  if (args.term == term_ && (voted_for_ == -1 || voted_for_ == args.candidate)) {
    // §5.4.1 up-to-date check.
    const bool up_to_date =
        args.last_log_term > LastLogTerm() ||
        (args.last_log_term == LastLogTerm() &&
         args.last_log_index >= LastLogIndex());
    if (up_to_date) {
      granted = true;
      voted_for_ = args.candidate;
      ArmElectionTimer();
    }
  }
  const VoteReply reply{term_, granted, id_};
  RaftNode* c = resolve_(args.candidate);
  net_->Send(id_, args.candidate, [c, reply] {
    c->Execute(c->config_.rpc_cpu_cost,
               [c, reply] { c->HandleVoteReply(reply); });
  });
}

void RaftNode::HandleVoteReply(const VoteReply& reply) {
  if (reply.term > term_) {
    BecomeFollower(reply.term);
    return;
  }
  if (role_ != RaftRole::kCandidate || reply.term != term_ || !reply.granted)
    return;
  ++votes_received_;
  if (votes_received_ >= Majority()) BecomeLeader();
}

void RaftNode::BecomeFollower(uint64_t term) {
  if (term > term_) {
    term_ = term;
    voted_for_ = -1;
  }
  if (role_ == RaftRole::kLearner) return;
  const bool was_leader = role_ == RaftRole::kLeader;
  role_ = RaftRole::kFollower;
  if (was_leader) FailPendingProposals();
  ArmElectionTimer();
}

void RaftNode::BecomeLeader() {
  if (role_ != RaftRole::kCandidate) return;
  ++leaderships_won_;
  role_ = RaftRole::kLeader;
  leader_hint_ = id_;
  ++timer_epoch_;  // stop election timer
  next_index_.clear();
  match_index_.clear();
  for (NodeId peer : voters_) {
    next_index_[peer] = LastLogIndex() + 1;
    match_index_[peer] = 0;
  }
  for (NodeId peer : learners_) {
    next_index_[peer] = LastLogIndex() + 1;
    match_index_[peer] = 0;
  }
  append_inflight_.clear();
  match_index_[id_] = LastLogIndex();
  BroadcastAppend(/*force=*/true);
  ArmHeartbeat();
}

bool RaftNode::Propose(std::string payload,
                       std::function<void(bool, uint64_t)> on_commit) {
  if (!IsLeader()) return false;
  log_.push_back(RaftEntry{term_, std::move(payload)});
  const uint64_t index = LastLogIndex();
  match_index_[id_] = index;
  if (on_commit) pending_[index] = std::move(on_commit);
  if (voters_.size() == 1) AdvanceLeaderCommit();
  BroadcastAppend(/*force=*/false);
  return true;
}

void RaftNode::BroadcastAppend(bool force) {
  // force=false (Propose path): skip peers with an append already in
  // flight — their reply triggers the next send, which then carries every
  // entry queued meanwhile (natural batching). force=true (heartbeat,
  // new-leader probe): send regardless, recovering from dropped messages.
  if (!IsLeader()) return;
  for (NodeId peer : voters_)
    if (peer != id_ && (force || !append_inflight_[peer])) SendAppendTo(peer);
  for (NodeId peer : learners_)
    if (force || !append_inflight_[peer]) SendAppendTo(peer);
}

void RaftNode::ArmHeartbeat() {
  // Exactly one heartbeat chain per leadership: re-armed only from its own
  // tick, so Propose-triggered broadcasts never multiply timers.
  const uint64_t epoch = timer_epoch_;
  const uint64_t term_snapshot = term_;
  env_->Schedule(config_.heartbeat_interval, [this, epoch, term_snapshot] {
    if (!alive_ || epoch != timer_epoch_ || term_ != term_snapshot) return;
    if (role_ != RaftRole::kLeader) return;
    BroadcastAppend(/*force=*/true);
    ArmHeartbeat();
  });
}

void RaftNode::SendAppendTo(NodeId peer) {
  const uint64_t next = next_index_.count(peer) ? next_index_[peer]
                                                : LastLogIndex() + 1;
  AppendArgs args;
  args.term = term_;
  args.leader = id_;
  args.prev_index = next - 1;
  args.prev_term =
      args.prev_index == 0 ? 0 : log_[args.prev_index - 1].term;
  args.leader_commit = commit_index_;
  const uint64_t last = LastLogIndex();
  for (uint64_t i = next;
       i <= last && args.entries.size() < config_.max_entries_per_append; ++i)
    args.entries.push_back(log_[i - 1]);

  append_inflight_[peer] = true;
  RaftNode* p = resolve_(peer);
  net_->Send(id_, peer, [p, args] {
    const Micros cost = p->config_.rpc_cpu_cost +
                        static_cast<Micros>(args.entries.size()) *
                            p->config_.entry_cpu_cost;
    p->Execute(cost, [p, args] { p->HandleAppend(args); });
  });
}

void RaftNode::HandleAppend(const AppendArgs& args) {
  if (args.term > term_) BecomeFollower(args.term);
  AppendReply reply{term_, false, 0, id_};

  if (args.term == term_) {
    if (role_ == RaftRole::kCandidate) role_ = RaftRole::kFollower;
    leader_hint_ = args.leader;
    if (role_ != RaftRole::kLearner) ArmElectionTimer();

    // Log-matching check.
    const bool prev_ok =
        args.prev_index == 0 ||
        (args.prev_index <= LastLogIndex() &&
         log_[args.prev_index - 1].term == args.prev_term);
    if (prev_ok) {
      // Append/overwrite entries.
      uint64_t idx = args.prev_index;
      for (const RaftEntry& e : args.entries) {
        ++idx;
        if (idx <= LastLogIndex()) {
          if (log_[idx - 1].term != e.term) {
            log_.resize(idx - 1);  // conflict: truncate suffix
            log_.push_back(e);
          }
        } else {
          log_.push_back(e);
        }
      }
      reply.success = true;
      reply.match_index = args.prev_index + args.entries.size();
      if (args.leader_commit > commit_index_) {
        commit_index_ = std::min(args.leader_commit, LastLogIndex());
        ApplyCommitted();
      }
    }
  }

  RaftNode* l = resolve_(args.leader);
  net_->Send(id_, args.leader, [l, reply] {
    l->Execute(l->config_.rpc_cpu_cost,
               [l, reply] { l->HandleAppendReply(reply); });
  });
}

void RaftNode::HandleAppendReply(const AppendReply& reply) {
  if (reply.term > term_) {
    BecomeFollower(reply.term);
    return;
  }
  if (!IsLeader() || reply.term != term_) return;
  append_inflight_[reply.from] = false;
  if (reply.success) {
    match_index_[reply.from] =
        std::max(match_index_[reply.from], reply.match_index);
    next_index_[reply.from] = match_index_[reply.from] + 1;
    AdvanceLeaderCommit();
    if (next_index_[reply.from] <= LastLogIndex())
      SendAppendTo(reply.from);  // more to stream
  } else {
    // Back off and retry.
    uint64_t& next = next_index_[reply.from];
    next = next > 1 ? next - 1 : 1;
    SendAppendTo(reply.from);
  }
}

void RaftNode::AdvanceLeaderCommit() {
  // Find the highest index replicated on a majority with entry.term == term_.
  for (uint64_t n = LastLogIndex(); n > commit_index_; --n) {
    if (log_[n - 1].term != term_) break;  // §5.4.2: only own-term entries
    size_t count = 0;
    for (NodeId v : voters_)
      if (match_index_.count(v) && match_index_[v] >= n) ++count;
    if (count >= Majority()) {
      commit_index_ = n;
      ApplyCommitted();
      break;
    }
  }
}

void RaftNode::ApplyCommitted() {
  while (last_applied_ < commit_index_) {
    ++last_applied_;
    const RaftEntry& e = log_[last_applied_ - 1];
    if (apply_) apply_(last_applied_, e.payload);
    const auto it = pending_.find(last_applied_);
    if (it != pending_.end()) {
      auto cb = std::move(it->second);
      pending_.erase(it);
      cb(true, last_applied_);
    }
  }
}

void RaftNode::FailPendingProposals() {
  auto pending = std::move(pending_);
  pending_.clear();
  for (auto& [index, cb] : pending) cb(false, 0);
}

RaftGroup::RaftGroup(SimEnv* env, SimNetwork* net,
                     std::vector<NodeId> voter_ids,
                     std::vector<NodeId> learner_ids, RaftConfig config,
                     std::function<RaftApplyFn(NodeId)> apply_factory)
    : env_(env), voter_ids_(voter_ids), learner_ids_(learner_ids) {
  auto make = [&](NodeId id) {
    RaftApplyFn apply = apply_factory ? apply_factory(id) : RaftApplyFn{};
    nodes_[id] = std::make_unique<RaftNode>(env, net, id, voter_ids,
                                            learner_ids, config,
                                            std::move(apply));
  };
  for (NodeId id : voter_ids_) make(id);
  for (NodeId id : learner_ids_) make(id);
  for (auto& [id, node] : nodes_)
    node->SetPeerResolver([this](NodeId nid) { return nodes_.at(nid).get(); });
  for (auto& [id, node] : nodes_) node->Start();
}

RaftNode* RaftGroup::leader() const {
  // A partitioned stale leader can coexist with the real one until it sees
  // the higher term; prefer the highest-term claimant so clients route to
  // the leader that can actually commit.
  RaftNode* best = nullptr;
  for (auto& [id, node] : nodes_)
    if (node->IsLeader() && (best == nullptr || node->term() > best->term()))
      best = node.get();
  return best;
}

RaftNode* RaftGroup::WaitForLeader(Micros deadline_from_now) {
  const Micros deadline = env_->Now() + deadline_from_now;
  while (env_->Now() < deadline) {
    RaftNode* l = leader();
    if (l != nullptr) return l;
    if (env_->Idle()) break;
    env_->RunUntil(env_->Now() + 1000);
  }
  return leader();
}

}  // namespace sim
}  // namespace htap
