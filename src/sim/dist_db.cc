#include "sim/dist_db.h"

#include <algorithm>
#include <bit>

#include "sync/sync.h"

namespace htap {
namespace sim {

// ---------------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------------

void LatencyHistogram::Record(Micros v) {
  if (v < 0) v = 0;
  const int bucket = std::min<int>(
      kBuckets - 1, std::bit_width(static_cast<uint64_t>(v)));
  ++counts[static_cast<size_t>(bucket)];
  ++total;
  sum += v;
  max = std::max(max, v);
}

Micros LatencyHistogram::Quantile(double q) const {
  if (total == 0) return 0;
  const uint64_t target = std::max<uint64_t>(
      1, static_cast<uint64_t>(q * static_cast<double>(total) + 0.5));
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += counts[static_cast<size_t>(i)];
    if (seen >= target) {
      // Bucket i holds values whose bit_width is i: [2^(i-1), 2^i - 1].
      const Micros upper =
          i == 0 ? 0 : static_cast<Micros>((uint64_t{1} << i) - 1);
      return std::min(upper, max);
    }
  }
  return max;
}

// ---------------------------------------------------------------------------
// ShardStateMachine
// ---------------------------------------------------------------------------

void ShardStateMachine::EncodeWrites(const std::vector<WriteOp>& writes,
                                     std::string* out) {
  Value(static_cast<int64_t>(writes.size())).EncodeTo(out);
  for (const WriteOp& w : writes) {
    out->push_back(static_cast<char>(w.op));
    Value(static_cast<int64_t>(w.table_id)).EncodeTo(out);
    Value(w.key).EncodeTo(out);
    w.row.EncodeTo(out);
  }
}

bool ShardStateMachine::DecodeWrites(const std::string& in, size_t* pos,
                                     std::vector<WriteOp>* out) {
  Value n;
  if (!Value::DecodeFrom(in, pos, &n) || !n.is_int64()) return false;
  for (int64_t i = 0; i < n.AsInt64(); ++i) {
    WriteOp w;
    if (*pos >= in.size()) return false;
    w.op = static_cast<ChangeOp>(in[(*pos)++]);
    Value v;
    if (!Value::DecodeFrom(in, pos, &v) || !v.is_int64()) return false;
    w.table_id = static_cast<uint32_t>(v.AsInt64());
    if (!Value::DecodeFrom(in, pos, &v) || !v.is_int64()) return false;
    w.key = v.AsInt64();
    if (!Row::DecodeFrom(in, pos, &w.row)) return false;
    out->push_back(std::move(w));
  }
  return true;
}

std::string ShardStateMachine::EncodeApplyWrites(
    uint64_t txn_id, CSN csn, const std::vector<WriteOp>& writes) {
  std::string out;
  out.push_back(static_cast<char>(ShardCmdType::kApplyWrites));
  Value(static_cast<int64_t>(txn_id)).EncodeTo(&out);
  Value(static_cast<int64_t>(csn)).EncodeTo(&out);
  EncodeWrites(writes, &out);
  return out;
}

std::string ShardStateMachine::EncodePrepare(
    uint64_t txn_id, const std::vector<WriteOp>& writes) {
  std::string out;
  out.push_back(static_cast<char>(ShardCmdType::kPrepare));
  Value(static_cast<int64_t>(txn_id)).EncodeTo(&out);
  Value(static_cast<int64_t>(0)).EncodeTo(&out);
  EncodeWrites(writes, &out);
  return out;
}

std::string ShardStateMachine::EncodeCommitTxn(uint64_t txn_id, CSN csn) {
  std::string out;
  out.push_back(static_cast<char>(ShardCmdType::kCommitTxn));
  Value(static_cast<int64_t>(txn_id)).EncodeTo(&out);
  Value(static_cast<int64_t>(csn)).EncodeTo(&out);
  EncodeWrites({}, &out);
  return out;
}

std::string ShardStateMachine::EncodeAbortTxn(uint64_t txn_id) {
  std::string out;
  out.push_back(static_cast<char>(ShardCmdType::kAbortTxn));
  Value(static_cast<int64_t>(txn_id)).EncodeTo(&out);
  Value(static_cast<int64_t>(0)).EncodeTo(&out);
  EncodeWrites({}, &out);
  return out;
}

bool ShardStateMachine::Apply(const std::string& payload) {
  size_t pos = 0;
  if (payload.empty()) return false;
  const auto type = static_cast<ShardCmdType>(payload[pos++]);
  Value v;
  if (!Value::DecodeFrom(payload, &pos, &v) || !v.is_int64()) return false;
  const uint64_t txn_id = static_cast<uint64_t>(v.AsInt64());
  if (!Value::DecodeFrom(payload, &pos, &v) || !v.is_int64()) return false;
  const CSN csn = static_cast<CSN>(v.AsInt64());
  std::vector<WriteOp> writes;
  if (!DecodeWrites(payload, &pos, &writes)) return false;

  switch (type) {
    case ShardCmdType::kApplyWrites:
      if (finished_.count(txn_id) != 0) return true;  // duplicate: no-op
      finished_.insert(txn_id);
      ApplyWrites(csn, writes);
      return true;

    case ShardCmdType::kPrepare: {
      // A duplicate prepare sequenced after the txn's decision must not
      // re-acquire locks that the decision already released.
      if (finished_.count(txn_id) != 0) return true;
      // All-or-nothing lock acquisition; deterministic on every replica.
      for (const WriteOp& w : writes) {
        const auto it = locks_.find(w.key);
        if (it != locks_.end() && it->second != txn_id) return false;
      }
      for (const WriteOp& w : writes) locks_[w.key] = txn_id;
      prepared_[txn_id] = std::move(writes);
      return true;
    }

    case ShardCmdType::kCommitTxn: {
      if (finished_.count(txn_id) != 0) return true;  // duplicate: no-op
      const auto it = prepared_.find(txn_id);
      if (it == prepared_.end()) return false;
      finished_.insert(txn_id);
      ApplyWrites(csn, it->second);
      for (const WriteOp& w : it->second) locks_.erase(w.key);
      prepared_.erase(it);
      return true;
    }

    case ShardCmdType::kAbortTxn: {
      if (finished_.count(txn_id) != 0) return true;
      finished_.insert(txn_id);
      const auto it = prepared_.find(txn_id);
      if (it == prepared_.end()) return true;  // prepare never landed here
      for (const WriteOp& w : it->second) locks_.erase(w.key);
      prepared_.erase(it);
      return true;
    }
  }
  return false;
}

void ShardStateMachine::ApplyWrites(CSN csn,
                                    const std::vector<WriteOp>& writes) {
  std::vector<ChangeEvent> events;
  events.reserve(writes.size());
  for (const WriteOp& w : writes) {
    switch (w.op) {
      case ChangeOp::kInsert:
      case ChangeOp::kUpdate:
        data_[{w.table_id, w.key}] = w.row;
        break;
      case ChangeOp::kDelete:
        data_.erase({w.table_id, w.key});
        break;
    }
    events.push_back(ChangeEvent{w.table_id, w.op, w.key, w.row, csn});
  }
  last_csn_ = std::max(last_csn_, csn);
  if (change_sink_ && !events.empty()) change_sink_(events);
}

bool ShardStateMachine::Get(uint32_t table_id, Key key, Row* out) const {
  const auto it = data_.find({table_id, key});
  if (it == data_.end()) return false;
  *out = it->second;
  return true;
}

size_t ShardStateMachine::row_count() const { return data_.size(); }

std::vector<std::pair<Key, Row>> ShardStateMachine::Rows(
    uint32_t table_id) const {
  std::vector<std::pair<Key, Row>> out;
  for (auto it = data_.lower_bound({table_id, std::numeric_limits<Key>::min()});
       it != data_.end() && it->first.first == table_id; ++it)
    out.emplace_back(it->first.second, it->second);
  return out;
}

// ---------------------------------------------------------------------------
// DistributedDb
// ---------------------------------------------------------------------------

DistributedDb::DistributedDb(SimEnv* env, Options options)
    : env_(env), options_(options), net_(env, options.net) {
  gateway_id_ = 100000;
  tso_id_ = 100001;
  gateway_ = std::make_unique<SimNode>(env_, gateway_id_);
  tso_ = std::make_unique<SimNode>(env_, tso_id_);

  shards_.resize(static_cast<size_t>(options_.num_shards));
  shard_counters_.resize(static_cast<size_t>(options_.num_shards));
  for (int s = 0; s < options_.num_shards; ++s) {
    ShardRuntime& rt = shards_[static_cast<size_t>(s)];
    std::vector<NodeId> voters;
    for (int r = 0; r < options_.replicas_per_shard; ++r)
      voters.push_back(s * 100 + r);
    std::vector<NodeId> learners;
    if (options_.with_learners) {
      rt.learner_id = s * 100 + options_.replicas_per_shard;
      learners.push_back(rt.learner_id);
    }

    for (NodeId id : voters)
      rt.machines[id] = std::make_unique<ShardStateMachine>();
    if (options_.with_learners) {
      ShardRuntime* rtp = &rt;
      rt.machines[rt.learner_id] = std::make_unique<ShardStateMachine>(
          [rtp](const std::vector<ChangeEvent>& events) {
            for (auto& [tid, delta] : rtp->learner.deltas)
              delta->AppendBatch(events, tid);
          });
    }

    ShardRuntime* rtp = &rt;
    groups_.push_back(std::make_unique<RaftGroup>(
        env_, &net_, voters, learners, options_.raft,
        [rtp](NodeId id) -> RaftApplyFn {
          ShardStateMachine* sm = rtp->machines.at(id).get();
          return [sm](uint64_t, const std::string& payload) {
            sm->Apply(payload);
          };
        }));
  }
}

void DistributedDb::RegisterTable(uint32_t table_id, Schema schema) {
  schemas_.emplace(table_id, schema);
  for (auto& rt : shards_) {
    if (rt.learner_id < 0) continue;
    rt.learner.deltas[table_id] = std::make_unique<LogDeltaStore>();
    rt.learner.tables[table_id] = std::make_unique<ColumnTable>(schema);
  }
}

void DistributedDb::Bootstrap() {
  for (auto& g : groups_) g->WaitForLeader();
  if (options_.with_learners && options_.learner_merge_interval > 0)
    ScheduleLearnerMerge();
}

void DistributedDb::ScheduleLearnerMerge() {
  // Periodic learner merge, like TiFlash's background delta merge. The
  // event re-arms itself; simulations must use RunUntil (never Run).
  env_->Schedule(options_.learner_merge_interval, [this] {
    SyncLearners();
    ScheduleLearnerMerge();
  });
}

// ---- Gateway RPC layer (timeout / retry / backoff) ------------------------

void DistributedDb::CallShard(int shard, std::string cmd, bool want_vote,
                              uint64_t txn_id,
                              std::function<void(bool, bool)> done) {
  auto call = std::make_shared<RpcCall>();
  call->shard = shard;
  call->cmd = std::move(cmd);
  call->want_vote = want_vote;
  call->txn_id = txn_id;
  call->attempts_left = options_.rpc.max_attempts;
  call->backoff = options_.rpc.backoff_micros;
  call->done = std::move(done);
  StartRpcAttempt(std::move(call));
}

void DistributedDb::SettleRpc(std::shared_ptr<RpcCall> call, bool ok,
                              bool vote) {
  if (call->settled) return;
  call->settled = true;
  if (call->done) call->done(ok, vote);
}

void DistributedDb::RetryRpc(std::shared_ptr<RpcCall> call) {
  if (call->settled) return;
  if (--call->attempts_left <= 0) {
    SettleRpc(std::move(call), false, false);
    return;
  }
  ++rpc_retries_;
  // Invalidate the outstanding timeout so it cannot double-retry while
  // this retry waits out its backoff.
  ++call->attempt_serial;
  const Micros delay = call->backoff;
  call->backoff = std::min<Micros>(
      static_cast<Micros>(static_cast<double>(call->backoff) *
                          options_.rpc.backoff_multiplier),
      options_.rpc.max_backoff_micros);
  env_->Schedule(delay, [this, call = std::move(call)] {
    StartRpcAttempt(call);
  });
}

void DistributedDb::StartRpcAttempt(std::shared_ptr<RpcCall> call) {
  if (call->settled) return;
  ++rpc_attempts_;
  RaftNode* leader = groups_[static_cast<size_t>(call->shard)]->leader();
  if (leader == nullptr) {
    // Election window: back off and re-resolve.
    ++rpc_no_leader_;
    RetryRpc(std::move(call));
    return;
  }
  const int my = ++call->attempt_serial;
  const NodeId leader_id = leader->id();
  const int shard = call->shard;

  // Per-attempt timeout at the gateway; stale timeouts (a newer attempt
  // superseded this one) are ignored.
  env_->Schedule(options_.rpc.timeout_micros, [this, call, my] {
    if (!call->settled && call->attempt_serial == my) {
      ++rpc_timeouts_;
      RetryRpc(call);
    }
  });

  net_.Send(gateway_id_, leader_id, [this, call, my, leader, leader_id,
                                     shard] {
    leader->Execute(options_.raft.rpc_cpu_cost, [this, call, my, leader,
                                                 leader_id, shard] {
      // Replies travel the network back to the gateway. A success settles
      // the call even if it raced a newer attempt (the command is
      // idempotent); a failure only retries if it is the current attempt.
      auto reply = [this, call, my, leader_id](bool ok, bool vote) {
        net_.Send(leader_id, gateway_id_, [this, call, my, ok, vote] {
          if (call->settled) return;
          if (ok) {
            SettleRpc(call, true, vote);
          } else if (call->attempt_serial == my) {
            RetryRpc(call);
          }
        });
      };
      const bool accepted = leader->Propose(
          call->cmd,
          [this, call, leader_id, shard, reply](bool committed, uint64_t) {
            bool vote = true;
            if (committed && call->want_vote) {
              // Deterministic 2PC vote: read it off the serving node's
              // machine (the entry has been applied there).
              const auto& machines =
                  shards_[static_cast<size_t>(shard)].machines;
              const auto it = machines.find(leader_id);
              vote = it != machines.end() &&
                     it->second->PrepareSucceeded(call->txn_id);
            }
            reply(committed, vote);
          });
      if (!accepted) reply(false, false);  // lost leadership in flight
    });
  });
}

void DistributedDb::FetchCsn(std::function<void(bool, CSN)> done) {
  auto call = std::make_shared<TsoCall>();
  call->attempts_left = options_.rpc.max_attempts;
  call->done = std::move(done);
  StartTsoAttempt(std::move(call));
}

void DistributedDb::StartTsoAttempt(std::shared_ptr<TsoCall> call) {
  if (call->settled) return;
  if (--call->attempts_left < 0) {
    call->settled = true;
    call->done(false, 0);
    return;
  }
  const int my = ++call->serial;
  env_->Schedule(options_.rpc.timeout_micros, [this, call, my] {
    if (!call->settled && call->serial == my) {
      ++rpc_timeouts_;
      StartTsoAttempt(call);
    }
  });
  net_.Send(gateway_id_, tso_id_, [this, call] {
    tso_->Execute(options_.tso_cpu_cost, [this, call] {
      const CSN csn = next_csn_++;
      net_.Send(tso_id_, gateway_id_, [call, csn] {
        if (call->settled) return;
        call->settled = true;
        call->done(true, csn);
      });
    });
  });
}

// ---- Transactions ---------------------------------------------------------

void DistributedDb::FinishTxn(bool committed, CSN csn, Micros start,
                              std::function<void(bool)> done) {
  if (committed) {
    ++committed_;
    commit_times_[csn] = env_->Now();
    commit_latency_.Record(env_->Now() - start);
  } else {
    ++aborted_;
  }
  if (done) done(committed);
}

void DistributedDb::ExecuteTxn(std::vector<WriteOp> writes,
                               std::function<void(bool)> done) {
  const Micros start = env_->Now();
  gateway_->Execute(options_.gateway_cpu_cost, [this, start,
                                                writes = std::move(writes),
                                                done = std::move(done)]() mutable {
    std::map<int, std::vector<WriteOp>> by_shard;
    for (WriteOp& w : writes) by_shard[ShardOf(w.key)].push_back(std::move(w));
    if (by_shard.empty()) {
      done(true);
      return;
    }
    const uint64_t txn_id = next_txn_id_++;

    // Fetch a commit timestamp from the TSO (one retried round trip).
    FetchCsn([this, start, txn_id, by_shard = std::move(by_shard),
              done = std::move(done)](bool ok, CSN csn) mutable {
      if (!ok) {
        ++aborted_;
        done(false);
        return;
      }
      if (by_shard.size() == 1) {
        // Single-shard fast path: one Raft proposal.
        ++single_shard_txns_;
        const int shard = by_shard.begin()->first;
        CallShard(shard,
                  ShardStateMachine::EncodeApplyWrites(
                      txn_id, csn, by_shard.begin()->second),
                  /*want_vote=*/false, txn_id,
                  [this, shard, csn, start, done = std::move(done)](
                      bool committed, bool) {
                    if (committed)
                      ++shard_counters_[static_cast<size_t>(shard)]
                            .single_shard_commits;
                    FinishTxn(committed, csn, start, done);
                  });
      } else {
        ++multi_shard_txns_;
        RunTwoPhaseCommit(txn_id, csn, std::move(by_shard), start,
                          std::move(done));
      }
    });
  });
}

void DistributedDb::RunTwoPhaseCommit(
    uint64_t txn_id, CSN csn, std::map<int, std::vector<WriteOp>> by_shard,
    Micros start, std::function<void(bool)> done) {
  struct Phase1 {
    size_t waiting = 0;
    bool all_yes = true;
    std::vector<int> shards;
  };
  auto st = std::make_shared<Phase1>();
  for (const auto& [shard, writes] : by_shard) st->shards.push_back(shard);
  st->waiting = st->shards.size();

  // Phase 1: PREPARE on every shard through its Raft log. Each prepare RPC
  // retries through leader changes; its settled vote is final.
  for (const auto& [shard, writes] : by_shard) {
    const int s = shard;
    CallShard(
        s, ShardStateMachine::EncodePrepare(txn_id, writes),
        /*want_vote=*/true, txn_id,
        [this, st, s, txn_id, csn, start, done](bool ok, bool vote) {
          const bool yes = ok && vote;
          auto& counters = shard_counters_[static_cast<size_t>(s)];
          if (yes)
            ++counters.prepares_ok;
          else
            ++counters.prepares_failed;
          if (!yes) st->all_yes = false;
          if (--st->waiting != 0) return;

          // Decision point (presumed commit): all prepares are in the
          // Raft logs, so the outcome is now durable. Commit accounting
          // happens here; the client callback fires once every shard has
          // applied the decision (locks released everywhere).
          const bool commit = st->all_yes;
          if (commit) {
            ++committed_;
            commit_times_[csn] = env_->Now();
          } else {
            ++aborted_;
          }
          PendingDecision d;
          d.commit = commit;
          d.csn = csn;
          d.start = start;
          d.done = done;
          for (int sh : st->shards) {
            d.shards.insert(sh);
            auto& c = shard_counters_[static_cast<size_t>(sh)];
            if (commit)
              ++c.tpc_commits;
            else
              ++c.tpc_aborts;
          }
          pending_decisions_[txn_id] = std::move(d);
          for (int sh : st->shards) DriveDecision(txn_id, sh);
        });
  }
}

void DistributedDb::DriveDecision(uint64_t txn_id, int shard) {
  const auto it = pending_decisions_.find(txn_id);
  if (it == pending_decisions_.end() || it->second.shards.count(shard) == 0)
    return;
  const bool commit = it->second.commit;
  const std::string cmd =
      commit ? ShardStateMachine::EncodeCommitTxn(txn_id, it->second.csn)
             : ShardStateMachine::EncodeAbortTxn(txn_id);
  CallShard(shard, cmd, /*want_vote=*/false, txn_id,
            [this, txn_id, shard](bool ok, bool) {
              const auto it = pending_decisions_.find(txn_id);
              if (it == pending_decisions_.end()) return;
              if (ok) {
                it->second.shards.erase(shard);
                if (!it->second.shards.empty()) return;
                PendingDecision d = std::move(it->second);
                pending_decisions_.erase(it);
                if (d.commit)
                  commit_latency_.Record(env_->Now() - d.start);
                if (d.done) d.done(d.commit);
                return;
              }
              // RPC budget exhausted (shard partitioned / leaderless for
              // long): the resolver re-drives the decision until applied.
              ++resolver_retries_;
              env_->Schedule(options_.resolver_retry_interval,
                             [this, txn_id, shard] {
                               DriveDecision(txn_id, shard);
                             });
            });
}

// ---- Reads & scans --------------------------------------------------------

bool DistributedDb::Read(uint32_t table_id, Key key, Row* out) {
  const int shard = ShardOf(key);
  RaftNode* leader = groups_[static_cast<size_t>(shard)]->leader();
  if (leader == nullptr) return false;
  const auto& machines = shards_[static_cast<size_t>(shard)].machines;
  const auto it = machines.find(leader->id());
  if (it == machines.end()) return false;
  return it->second->Get(table_id, key, out);
}

std::vector<Row> DistributedDb::AnalyticalScan(
    uint32_t table_id, const Predicate& pred,
    const std::vector<int>& projection, bool include_delta,
    ScanStats* stats) {
  std::vector<Row> out;
  for (auto& rt : shards_) {
    if (rt.learner_id < 0) continue;
    const auto tit = rt.learner.tables.find(table_id);
    if (tit == rt.learner.tables.end()) continue;
    const DeltaReader* delta = nullptr;
    if (include_delta) {
      const auto dit = rt.learner.deltas.find(table_id);
      if (dit != rt.learner.deltas.end()) delta = dit->second.get();
    }
    ScanStats local;
    auto part = ScanHtap(*tit->second, delta, kMaxCSN, pred, projection,
                         &local);
    if (stats != nullptr) {
      stats->groups_total += local.groups_total;
      stats->groups_skipped += local.groups_skipped;
      stats->main_rows_emitted += local.main_rows_emitted;
      stats->delta_rows_emitted += local.delta_rows_emitted;
      stats->delta_entries_read += local.delta_entries_read;
    }
    out.insert(out.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  return out;
}

std::vector<ColumnBatch> DistributedDb::AnalyticalScanBatches(
    uint32_t table_id, const Predicate& pred,
    const std::vector<int>& projection, size_t batch_rows, bool include_delta,
    ScanStats* stats) {
  ExecContext exec;  // learner scans are serial; only the batch size matters
  exec.batch_rows = batch_rows;
  std::vector<ColumnBatch> out;
  for (auto& rt : shards_) {
    if (rt.learner_id < 0) continue;
    const auto tit = rt.learner.tables.find(table_id);
    if (tit == rt.learner.tables.end()) continue;
    const DeltaReader* delta = nullptr;
    if (include_delta) {
      const auto dit = rt.learner.deltas.find(table_id);
      if (dit != rt.learner.deltas.end()) delta = dit->second.get();
    }
    ScanStats local;
    auto part = ScanHtapBatches(*tit->second, delta, kMaxCSN, pred, projection,
                                exec, &local);
    if (stats != nullptr) {
      stats->groups_total += local.groups_total;
      stats->groups_skipped += local.groups_skipped;
      stats->main_rows_emitted += local.main_rows_emitted;
      stats->delta_rows_emitted += local.delta_rows_emitted;
      stats->delta_entries_read += local.delta_entries_read;
    }
    out.insert(out.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  return out;
}

void DistributedDb::SyncLearners() {
  for (auto& rt : shards_) {
    if (rt.learner_id < 0) continue;
    for (auto& [tid, delta] : rt.learner.deltas) {
      auto entries = delta->DrainUpTo(kMaxCSN);
      if (entries.empty()) continue;
      CSN up_to = rt.learner.tables[tid]->merged_csn();
      for (const auto& e : entries) up_to = std::max(up_to, e.csn);
      ApplyEntriesToColumnTable(rt.learner.tables[tid].get(), entries, up_to);
    }
  }
}

// ---- Fault injection ------------------------------------------------------

NodeId DistributedDb::CrashShardLeader(int shard) {
  RaftNode* leader = groups_[static_cast<size_t>(shard)]->leader();
  if (leader == nullptr) return -1;
  ++crashes_injected_;
  leader->Crash();
  return leader->id();
}

void DistributedDb::RestartDeadNodes() {
  for (auto& g : groups_) {
    for (NodeId id : g->voter_ids()) {
      RaftNode* n = g->node(id);
      if (!n->alive()) n->Restart();
    }
    for (NodeId id : g->learner_ids()) {
      RaftNode* n = g->node(id);
      if (!n->alive()) n->Restart();
    }
  }
}

void DistributedDb::IsolateNode(int shard, NodeId node) {
  ++partitions_injected_;
  RaftGroup* g = groups_[static_cast<size_t>(shard)].get();
  for (NodeId id : g->voter_ids())
    if (id != node) net_.Partition(node, id);
  for (NodeId id : g->learner_ids())
    if (id != node) net_.Partition(node, id);
  net_.Partition(node, gateway_id_);
}

// ---- Observability --------------------------------------------------------

CSN DistributedDb::LearnerMergedCsn(uint32_t table_id) const {
  CSN csn = 0;
  for (const auto& rt : shards_) {
    const auto it = rt.learner.tables.find(table_id);
    if (it != rt.learner.tables.end())
      csn = std::max(csn, it->second->merged_csn());
  }
  return csn;
}

CSN DistributedDb::LearnerReplicatedCsn(uint32_t) const {
  CSN csn = 0;
  for (const auto& rt : shards_) {
    if (rt.learner_id < 0) continue;
    const auto it = rt.machines.find(rt.learner_id);
    if (it != rt.machines.end())
      csn = std::max(csn, it->second->last_applied_csn());
  }
  return csn;
}

Micros DistributedDb::CommitTimeOf(CSN csn) const {
  const auto it = commit_times_.lower_bound(csn);
  return it == commit_times_.end() ? 0 : it->second;
}

Micros DistributedDb::FreshnessLagMicros(CSN frontier) const {
  if (commit_times_.empty()) return 0;
  if (frontier >= commit_times_.rbegin()->first) return 0;
  // Age of the oldest committed change the frontier has not yet covered.
  const auto it = commit_times_.upper_bound(frontier);
  if (it == commit_times_.end()) return 0;
  return env_->Now() - it->second;
}

bool DistributedDb::Converged() const {
  if (!pending_decisions_.empty()) return false;
  for (size_t s = 0; s < shards_.size(); ++s) {
    const RaftGroup* g = groups_[s].get();
    RaftNode* leader = g->leader();
    if (leader == nullptr) return false;
    const uint64_t commit = leader->commit_index();
    if (leader->last_applied() != commit) return false;
    for (NodeId id : g->voter_ids()) {
      RaftNode* n = g->node(id);
      if (!n->alive()) continue;  // a crashed voter catches up on Restart
      if (n->commit_index() != commit || n->last_applied() != commit)
        return false;
    }
    // The learner anchors freshness: it must be live and fully applied.
    for (NodeId id : g->learner_ids()) {
      RaftNode* n = g->node(id);
      if (!n->alive() || n->commit_index() != commit ||
          n->last_applied() != commit)
        return false;
    }
  }
  return true;
}

std::vector<std::pair<Key, Row>> DistributedDb::LeaderRows(
    uint32_t table_id) const {
  std::vector<std::pair<Key, Row>> out;
  for (size_t s = 0; s < shards_.size(); ++s) {
    RaftNode* leader = groups_[s]->leader();
    if (leader == nullptr) continue;
    const auto it = shards_[s].machines.find(leader->id());
    if (it == shards_[s].machines.end()) continue;
    auto part = it->second->Rows(table_id);
    out.insert(out.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

std::vector<std::pair<Key, Row>> DistributedDb::LearnerRows(
    uint32_t table_id) const {
  std::vector<std::pair<Key, Row>> out;
  for (const auto& rt : shards_) {
    if (rt.learner_id < 0) continue;
    const auto it = rt.machines.find(rt.learner_id);
    if (it == rt.machines.end()) continue;
    auto part = it->second->Rows(table_id);
    out.insert(out.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

ClusterStats DistributedDb::GetClusterStats() const {
  ClusterStats stats;
  stats.committed = committed_;
  stats.aborted = aborted_;
  stats.single_shard_txns = single_shard_txns_;
  stats.multi_shard_txns = multi_shard_txns_;
  stats.rpc_attempts = rpc_attempts_;
  stats.rpc_timeouts = rpc_timeouts_;
  stats.rpc_no_leader = rpc_no_leader_;
  stats.rpc_retries = rpc_retries_;
  stats.resolver_retries = resolver_retries_;
  stats.unresolved_txns = pending_decisions_.size();
  stats.crashes_injected = crashes_injected_;
  stats.partitions_injected = partitions_injected_;
  stats.messages_sent = net_.messages_sent();
  stats.messages_dropped = net_.messages_dropped();
  stats.commit_latency = commit_latency_;

  for (size_t s = 0; s < shards_.size(); ++s) {
    ClusterStats::Shard sh;
    sh.shard = static_cast<int>(s);
    const RaftGroup* g = groups_[s].get();
    RaftNode* leader = g->leader();
    if (leader != nullptr) {
      sh.leader = leader->id();
      sh.term = leader->term();
      sh.log_entries = leader->log_size();
    }
    for (NodeId id : g->voter_ids()) {
      sh.elections_started += g->node(id)->elections_started();
      sh.leader_changes += g->node(id)->leaderships_won();
    }
    const ShardCounters& c = shard_counters_[s];
    sh.single_shard_commits = c.single_shard_commits;
    sh.prepares_ok = c.prepares_ok;
    sh.prepares_failed = c.prepares_failed;
    sh.tpc_commits = c.tpc_commits;
    sh.tpc_aborts = c.tpc_aborts;
    stats.shards.push_back(sh);
  }

  std::vector<uint32_t> table_ids;
  table_ids.reserve(schemas_.size());
  for (const auto& [tid, schema] : schemas_) table_ids.push_back(tid);
  std::sort(table_ids.begin(), table_ids.end());
  const CSN leader_csn =
      commit_times_.empty() ? 0 : commit_times_.rbegin()->first;
  for (uint32_t tid : table_ids) {
    ClusterStats::TableFreshness f;
    f.table_id = tid;
    f.leader_csn = leader_csn;
    f.replicated_csn = LearnerReplicatedCsn(tid);
    f.merged_csn = LearnerMergedCsn(tid);
    f.replication_lag_micros = FreshnessLagMicros(f.replicated_csn);
    f.merge_lag_micros = FreshnessLagMicros(f.merged_csn);
    stats.tables.push_back(f);
  }
  return stats;
}

}  // namespace sim
}  // namespace htap
