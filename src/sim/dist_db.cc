#include "sim/dist_db.h"

#include <algorithm>

#include "sync/sync.h"

namespace htap {
namespace sim {

// ---------------------------------------------------------------------------
// ShardStateMachine
// ---------------------------------------------------------------------------

void ShardStateMachine::EncodeWrites(const std::vector<WriteOp>& writes,
                                     std::string* out) {
  Value(static_cast<int64_t>(writes.size())).EncodeTo(out);
  for (const WriteOp& w : writes) {
    out->push_back(static_cast<char>(w.op));
    Value(static_cast<int64_t>(w.table_id)).EncodeTo(out);
    Value(w.key).EncodeTo(out);
    w.row.EncodeTo(out);
  }
}

bool ShardStateMachine::DecodeWrites(const std::string& in, size_t* pos,
                                     std::vector<WriteOp>* out) {
  Value n;
  if (!Value::DecodeFrom(in, pos, &n) || !n.is_int64()) return false;
  for (int64_t i = 0; i < n.AsInt64(); ++i) {
    WriteOp w;
    if (*pos >= in.size()) return false;
    w.op = static_cast<ChangeOp>(in[(*pos)++]);
    Value v;
    if (!Value::DecodeFrom(in, pos, &v) || !v.is_int64()) return false;
    w.table_id = static_cast<uint32_t>(v.AsInt64());
    if (!Value::DecodeFrom(in, pos, &v) || !v.is_int64()) return false;
    w.key = v.AsInt64();
    if (!Row::DecodeFrom(in, pos, &w.row)) return false;
    out->push_back(std::move(w));
  }
  return true;
}

std::string ShardStateMachine::EncodeApplyWrites(
    uint64_t txn_id, CSN csn, const std::vector<WriteOp>& writes) {
  std::string out;
  out.push_back(static_cast<char>(ShardCmdType::kApplyWrites));
  Value(static_cast<int64_t>(txn_id)).EncodeTo(&out);
  Value(static_cast<int64_t>(csn)).EncodeTo(&out);
  EncodeWrites(writes, &out);
  return out;
}

std::string ShardStateMachine::EncodePrepare(
    uint64_t txn_id, const std::vector<WriteOp>& writes) {
  std::string out;
  out.push_back(static_cast<char>(ShardCmdType::kPrepare));
  Value(static_cast<int64_t>(txn_id)).EncodeTo(&out);
  Value(static_cast<int64_t>(0)).EncodeTo(&out);
  EncodeWrites(writes, &out);
  return out;
}

std::string ShardStateMachine::EncodeCommitTxn(uint64_t txn_id, CSN csn) {
  std::string out;
  out.push_back(static_cast<char>(ShardCmdType::kCommitTxn));
  Value(static_cast<int64_t>(txn_id)).EncodeTo(&out);
  Value(static_cast<int64_t>(csn)).EncodeTo(&out);
  EncodeWrites({}, &out);
  return out;
}

std::string ShardStateMachine::EncodeAbortTxn(uint64_t txn_id) {
  std::string out;
  out.push_back(static_cast<char>(ShardCmdType::kAbortTxn));
  Value(static_cast<int64_t>(txn_id)).EncodeTo(&out);
  Value(static_cast<int64_t>(0)).EncodeTo(&out);
  EncodeWrites({}, &out);
  return out;
}

bool ShardStateMachine::Apply(const std::string& payload) {
  size_t pos = 0;
  if (payload.empty()) return false;
  const auto type = static_cast<ShardCmdType>(payload[pos++]);
  Value v;
  if (!Value::DecodeFrom(payload, &pos, &v) || !v.is_int64()) return false;
  const uint64_t txn_id = static_cast<uint64_t>(v.AsInt64());
  if (!Value::DecodeFrom(payload, &pos, &v) || !v.is_int64()) return false;
  const CSN csn = static_cast<CSN>(v.AsInt64());
  std::vector<WriteOp> writes;
  if (!DecodeWrites(payload, &pos, &writes)) return false;

  switch (type) {
    case ShardCmdType::kApplyWrites:
      ApplyWrites(csn, writes);
      return true;

    case ShardCmdType::kPrepare: {
      // All-or-nothing lock acquisition; deterministic on every replica.
      for (const WriteOp& w : writes) {
        const auto it = locks_.find(w.key);
        if (it != locks_.end() && it->second != txn_id) return false;
      }
      for (const WriteOp& w : writes) locks_[w.key] = txn_id;
      prepared_[txn_id] = std::move(writes);
      return true;
    }

    case ShardCmdType::kCommitTxn: {
      const auto it = prepared_.find(txn_id);
      if (it == prepared_.end()) return false;
      ApplyWrites(csn, it->second);
      for (const WriteOp& w : it->second) locks_.erase(w.key);
      prepared_.erase(it);
      return true;
    }

    case ShardCmdType::kAbortTxn: {
      const auto it = prepared_.find(txn_id);
      if (it == prepared_.end()) return false;
      for (const WriteOp& w : it->second) locks_.erase(w.key);
      prepared_.erase(it);
      return true;
    }
  }
  return false;
}

void ShardStateMachine::ApplyWrites(CSN csn,
                                    const std::vector<WriteOp>& writes) {
  std::vector<ChangeEvent> events;
  events.reserve(writes.size());
  for (const WriteOp& w : writes) {
    switch (w.op) {
      case ChangeOp::kInsert:
      case ChangeOp::kUpdate:
        data_[{w.table_id, w.key}] = w.row;
        break;
      case ChangeOp::kDelete:
        data_.erase({w.table_id, w.key});
        break;
    }
    events.push_back(ChangeEvent{w.table_id, w.op, w.key, w.row, csn});
  }
  last_csn_ = std::max(last_csn_, csn);
  if (change_sink_ && !events.empty()) change_sink_(events);
}

bool ShardStateMachine::Get(uint32_t table_id, Key key, Row* out) const {
  const auto it = data_.find({table_id, key});
  if (it == data_.end()) return false;
  *out = it->second;
  return true;
}

size_t ShardStateMachine::row_count() const { return data_.size(); }

// ---------------------------------------------------------------------------
// DistributedDb
// ---------------------------------------------------------------------------

DistributedDb::DistributedDb(SimEnv* env, Options options)
    : env_(env), options_(options), net_(env, options.net) {
  gateway_id_ = 100000;
  tso_id_ = 100001;
  gateway_ = std::make_unique<SimNode>(env_, gateway_id_);
  tso_ = std::make_unique<SimNode>(env_, tso_id_);

  shards_.resize(static_cast<size_t>(options_.num_shards));
  for (int s = 0; s < options_.num_shards; ++s) {
    ShardRuntime& rt = shards_[static_cast<size_t>(s)];
    std::vector<NodeId> voters;
    for (int r = 0; r < options_.replicas_per_shard; ++r)
      voters.push_back(s * 100 + r);
    std::vector<NodeId> learners;
    if (options_.with_learners) {
      rt.learner_id = s * 100 + options_.replicas_per_shard;
      learners.push_back(rt.learner_id);
    }

    for (NodeId id : voters)
      rt.machines[id] = std::make_unique<ShardStateMachine>();
    if (options_.with_learners) {
      ShardRuntime* rtp = &rt;
      rt.machines[rt.learner_id] = std::make_unique<ShardStateMachine>(
          [rtp](const std::vector<ChangeEvent>& events) {
            for (auto& [tid, delta] : rtp->learner.deltas)
              delta->AppendBatch(events, tid);
          });
    }

    ShardRuntime* rtp = &rt;
    groups_.push_back(std::make_unique<RaftGroup>(
        env_, &net_, voters, learners, options_.raft,
        [rtp](NodeId id) -> RaftApplyFn {
          ShardStateMachine* sm = rtp->machines.at(id).get();
          return [sm](uint64_t, const std::string& payload) {
            sm->Apply(payload);
          };
        }));
  }
}

void DistributedDb::RegisterTable(uint32_t table_id, Schema schema) {
  schemas_.emplace(table_id, schema);
  for (auto& rt : shards_) {
    if (rt.learner_id < 0) continue;
    rt.learner.deltas[table_id] = std::make_unique<LogDeltaStore>();
    rt.learner.tables[table_id] = std::make_unique<ColumnTable>(schema);
  }
}

void DistributedDb::Bootstrap() {
  for (auto& g : groups_) g->WaitForLeader();
  if (options_.with_learners && options_.learner_merge_interval > 0)
    ScheduleLearnerMerge();
}

void DistributedDb::ScheduleLearnerMerge() {
  // Periodic learner merge, like TiFlash's background delta merge. The
  // event re-arms itself; simulations must use RunUntil (never Run).
  env_->Schedule(options_.learner_merge_interval, [this] {
    SyncLearners();
    ScheduleLearnerMerge();
  });
}

void DistributedDb::WithLeader(int shard, int attempts,
                               std::function<void(RaftNode*)> fn,
                               std::function<void()> on_fail) {
  RaftNode* leader = groups_[static_cast<size_t>(shard)]->leader();
  if (leader != nullptr) {
    fn(leader);
    return;
  }
  if (attempts <= 0) {
    on_fail();
    return;
  }
  env_->Schedule(5000, [this, shard, attempts, fn = std::move(fn),
                        on_fail = std::move(on_fail)]() mutable {
    WithLeader(shard, attempts - 1, std::move(fn), std::move(on_fail));
  });
}

void DistributedDb::ExecuteTxn(std::vector<WriteOp> writes,
                               std::function<void(bool)> done) {
  gateway_->Execute(options_.gateway_cpu_cost, [this, writes = std::move(writes),
                                                done = std::move(done)]() mutable {
    std::map<int, std::vector<WriteOp>> by_shard;
    for (WriteOp& w : writes) by_shard[ShardOf(w.key)].push_back(std::move(w));
    const uint64_t txn_id = next_txn_id_++;

    // Fetch a commit timestamp from the TSO (one network round trip).
    net_.Send(gateway_id_, tso_id_, [this, txn_id,
                                     by_shard = std::move(by_shard),
                                     done = std::move(done)]() mutable {
      tso_->Execute(options_.tso_cpu_cost, [this, txn_id,
                                            by_shard = std::move(by_shard),
                                            done = std::move(done)]() mutable {
        const CSN csn = next_csn_++;
        net_.Send(tso_id_, gateway_id_, [this, txn_id, csn,
                                         by_shard = std::move(by_shard),
                                         done = std::move(done)]() mutable {
          if (by_shard.size() == 1) {
            // Single-shard fast path: one Raft proposal.
            const int shard = by_shard.begin()->first;
            const std::string cmd = ShardStateMachine::EncodeApplyWrites(
                txn_id, csn, by_shard.begin()->second);
            WithLeader(
                shard, 40,
                [this, cmd, csn, done](RaftNode* leader) mutable {
                  const bool ok = leader->Propose(
                      cmd, [this, csn, done](bool committed, uint64_t) {
                        if (committed) {
                          ++committed_;
                          commit_times_[csn] = env_->Now();
                          done(true);
                        } else {
                          ++aborted_;
                          done(false);
                        }
                      });
                  if (!ok) {
                    ++aborted_;
                    done(false);
                  }
                },
                [this, done] {
                  ++aborted_;
                  done(false);
                });
          } else {
            RunTwoPhaseCommit(txn_id, csn, std::move(by_shard),
                              std::move(done));
          }
        });
      });
    });
  });
}

void DistributedDb::RunTwoPhaseCommit(
    uint64_t txn_id, CSN csn, std::map<int, std::vector<WriteOp>> by_shard,
    std::function<void(bool)> done) {
  struct TpcState {
    size_t waiting = 0;
    bool any_failed = false;
    std::vector<int> shards;
  };
  auto st = std::make_shared<TpcState>();
  for (const auto& [shard, writes] : by_shard) st->shards.push_back(shard);
  st->waiting = st->shards.size();

  auto self = this;
  auto finish_phase2 = [self, st, txn_id, csn, done](bool commit) {
    auto remaining = std::make_shared<size_t>(st->shards.size());
    for (int shard : st->shards) {
      const std::string cmd =
          commit ? ShardStateMachine::EncodeCommitTxn(txn_id, csn)
                 : ShardStateMachine::EncodeAbortTxn(txn_id);
      self->WithLeader(
          shard, 40,
          [cmd, remaining, commit, self, csn, done](RaftNode* leader) {
            leader->Propose(cmd, [remaining, commit, self, csn, done](
                                     bool, uint64_t) {
              if (--(*remaining) == 0) {
                if (commit) {
                  ++self->committed_;
                  self->commit_times_[csn] = self->env_->Now();
                } else {
                  ++self->aborted_;
                }
                done(commit);
              }
            });
          },
          [remaining, commit, self, done, csn] {
            if (--(*remaining) == 0) {
              if (commit) {
                ++self->committed_;
                self->commit_times_[csn] = self->env_->Now();
              } else {
                ++self->aborted_;
              }
              done(commit);
            }
          });
    }
  };

  // Phase 1: PREPARE on every shard through its Raft log.
  for (const auto& [shard, writes] : by_shard) {
    const std::string cmd = ShardStateMachine::EncodePrepare(txn_id, writes);
    const int shard_copy = shard;
    WithLeader(
        shard, 40,
        [this, cmd, st, txn_id, shard_copy, finish_phase2](RaftNode* leader) {
          const NodeId leader_id = leader->id();
          const bool ok = leader->Propose(
              cmd, [this, st, txn_id, shard_copy, leader_id, finish_phase2](
                       bool committed, uint64_t) {
                bool vote_yes = false;
                if (committed) {
                  // Deterministic outcome: read it off the leader's machine.
                  const auto& machines =
                      shards_[static_cast<size_t>(shard_copy)].machines;
                  const auto it = machines.find(leader_id);
                  vote_yes = it != machines.end() &&
                             it->second->PrepareSucceeded(txn_id);
                }
                if (!vote_yes) st->any_failed = true;
                if (--st->waiting == 0) finish_phase2(!st->any_failed);
              });
          if (!ok) {
            st->any_failed = true;
            if (--st->waiting == 0) finish_phase2(false);
          }
        },
        [st, finish_phase2] {
          st->any_failed = true;
          if (--st->waiting == 0) finish_phase2(false);
        });
  }
}

bool DistributedDb::Read(uint32_t table_id, Key key, Row* out) {
  const int shard = ShardOf(key);
  RaftNode* leader = groups_[static_cast<size_t>(shard)]->leader();
  if (leader == nullptr) return false;
  const auto& machines = shards_[static_cast<size_t>(shard)].machines;
  const auto it = machines.find(leader->id());
  if (it == machines.end()) return false;
  return it->second->Get(table_id, key, out);
}

std::vector<Row> DistributedDb::AnalyticalScan(
    uint32_t table_id, const Predicate& pred,
    const std::vector<int>& projection, bool include_delta,
    ScanStats* stats) {
  std::vector<Row> out;
  for (auto& rt : shards_) {
    if (rt.learner_id < 0) continue;
    const auto tit = rt.learner.tables.find(table_id);
    if (tit == rt.learner.tables.end()) continue;
    const DeltaReader* delta = nullptr;
    if (include_delta) {
      const auto dit = rt.learner.deltas.find(table_id);
      if (dit != rt.learner.deltas.end()) delta = dit->second.get();
    }
    ScanStats local;
    auto part = ScanHtap(*tit->second, delta, kMaxCSN, pred, projection,
                         &local);
    if (stats != nullptr) {
      stats->groups_total += local.groups_total;
      stats->groups_skipped += local.groups_skipped;
      stats->main_rows_emitted += local.main_rows_emitted;
      stats->delta_rows_emitted += local.delta_rows_emitted;
      stats->delta_entries_read += local.delta_entries_read;
    }
    out.insert(out.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  return out;
}

std::vector<ColumnBatch> DistributedDb::AnalyticalScanBatches(
    uint32_t table_id, const Predicate& pred,
    const std::vector<int>& projection, size_t batch_rows, bool include_delta,
    ScanStats* stats) {
  ExecContext exec;  // learner scans are serial; only the batch size matters
  exec.batch_rows = batch_rows;
  std::vector<ColumnBatch> out;
  for (auto& rt : shards_) {
    if (rt.learner_id < 0) continue;
    const auto tit = rt.learner.tables.find(table_id);
    if (tit == rt.learner.tables.end()) continue;
    const DeltaReader* delta = nullptr;
    if (include_delta) {
      const auto dit = rt.learner.deltas.find(table_id);
      if (dit != rt.learner.deltas.end()) delta = dit->second.get();
    }
    ScanStats local;
    auto part = ScanHtapBatches(*tit->second, delta, kMaxCSN, pred, projection,
                                exec, &local);
    if (stats != nullptr) {
      stats->groups_total += local.groups_total;
      stats->groups_skipped += local.groups_skipped;
      stats->main_rows_emitted += local.main_rows_emitted;
      stats->delta_rows_emitted += local.delta_rows_emitted;
      stats->delta_entries_read += local.delta_entries_read;
    }
    out.insert(out.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  return out;
}

void DistributedDb::SyncLearners() {
  for (auto& rt : shards_) {
    if (rt.learner_id < 0) continue;
    for (auto& [tid, delta] : rt.learner.deltas) {
      auto entries = delta->DrainUpTo(kMaxCSN);
      if (entries.empty()) continue;
      CSN up_to = rt.learner.tables[tid]->merged_csn();
      for (const auto& e : entries) up_to = std::max(up_to, e.csn);
      ApplyEntriesToColumnTable(rt.learner.tables[tid].get(), entries, up_to);
    }
  }
}

CSN DistributedDb::LearnerMergedCsn(uint32_t table_id) const {
  CSN csn = 0;
  for (const auto& rt : shards_) {
    const auto it = rt.learner.tables.find(table_id);
    if (it != rt.learner.tables.end())
      csn = std::max(csn, it->second->merged_csn());
  }
  return csn;
}

CSN DistributedDb::LearnerReplicatedCsn(uint32_t) const {
  CSN csn = 0;
  for (const auto& rt : shards_) {
    if (rt.learner_id < 0) continue;
    const auto it = rt.machines.find(rt.learner_id);
    if (it != rt.machines.end())
      csn = std::max(csn, it->second->last_applied_csn());
  }
  return csn;
}

Micros DistributedDb::CommitTimeOf(CSN csn) const {
  const auto it = commit_times_.lower_bound(csn);
  return it == commit_times_.end() ? 0 : it->second;
}

}  // namespace sim
}  // namespace htap
