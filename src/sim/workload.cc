#include "sim/workload.h"

#include <algorithm>

namespace htap {
namespace sim {

namespace {

Schema Cols(std::initializer_list<const char*> names) {
  std::vector<ColumnDef> defs;
  for (const char* n : names) defs.push_back({n, Type::kInt64});
  return Schema(defs);
}

}  // namespace

TpccWorkload::TpccWorkload(DistributedDb* db, WorkloadOptions options)
    : db_(db), options_(options), rng_(options.seed) {
  // Anchor each warehouse to a home shard and probe a deterministic pool of
  // keys that hash there, so intra-warehouse transactions are single-shard.
  const int shards = [&] {
    // ShardOf is pure; derive the shard count from it.
    int max_shard = 0;
    for (Key k = 0; k < 4096; ++k)
      max_shard = std::max(max_shard, db_->ShardOf(k));
    return max_shard + 1;
  }();
  home_shards_.resize(static_cast<size_t>(options_.warehouses));
  home_keys_.resize(static_cast<size_t>(options_.warehouses));
  for (int w = 0; w < options_.warehouses; ++w) {
    const int home = w % shards;
    home_shards_[static_cast<size_t>(w)] = home;
    auto& pool = home_keys_[static_cast<size_t>(w)];
    pool.reserve(kHomeKeysPerWarehouse);
    for (Key k = static_cast<Key>(w) * 1'000'000 + 1;
         pool.size() < kHomeKeysPerWarehouse; ++k)
      if (db_->ShardOf(k) == home) pool.push_back(k);
  }
}

void TpccWorkload::RegisterTables() {
  // Column 0 is the globally-unique routing key (the engine's primary-key
  // convention — ColumnTable upserts by it during the learner merge).
  db_->RegisterTable(TpccTables::kWarehouse, Cols({"w_key", "w_ytd"}));
  db_->RegisterTable(TpccTables::kDistrict,
                     Cols({"d_key", "d_next_o_id", "d_ytd"}));
  db_->RegisterTable(TpccTables::kCustomer,
                     Cols({"c_key", "c_balance", "c_payment_cnt"}));
  db_->RegisterTable(TpccTables::kOrder,
                     Cols({"o_key", "o_c_id", "o_ol_cnt", "o_entry_ts"}));
  db_->RegisterTable(
      TpccTables::kOrderLine,
      Cols({"ol_key", "ol_o_id", "ol_number", "ol_i_id", "ol_amount"}));
  db_->RegisterTable(TpccTables::kStock, Cols({"s_key", "s_order_cnt"}));
}

// Dynamic keys recycle slots of the home pool past the static rows; an
// overwrite of an old order is just an upsert with a newer CSN.
Key TpccWorkload::OrderKey(int w, uint64_t serial) const {
  const size_t static_rows =
      1 + static_cast<size_t>(options_.districts_per_warehouse) *
              (1 + static_cast<size_t>(options_.customers_per_district)) +
      static_cast<size_t>(options_.stock_items);
  const size_t slots = (kHomeKeysPerWarehouse - static_rows) / 4;
  return HomeKey(w, static_cast<int>(static_rows + serial % slots));
}

Key TpccWorkload::OrderLineKey(int w, uint64_t serial, int line) const {
  const size_t static_rows =
      1 + static_cast<size_t>(options_.districts_per_warehouse) *
              (1 + static_cast<size_t>(options_.customers_per_district)) +
      static_cast<size_t>(options_.stock_items);
  const size_t order_slots = (kHomeKeysPerWarehouse - static_rows) / 4;
  const size_t line_slots = kHomeKeysPerWarehouse - static_rows - order_slots;
  return HomeKey(
      w, static_cast<int>(static_rows + order_slots +
                          (serial * 16 + static_cast<uint64_t>(line)) %
                              line_slots));
}

void TpccWorkload::Load() {
  // One single-shard transaction per warehouse carrying its static rows.
  size_t done = 0;
  for (int w = 0; w < options_.warehouses; ++w) {
    std::vector<WriteOp> writes;
    writes.push_back({TpccTables::kWarehouse, ChangeOp::kInsert,
                      WarehouseKey(w),
                      Row{Value(WarehouseKey(w)), Value(int64_t{0})}});
    for (int d = 0; d < options_.districts_per_warehouse; ++d) {
      writes.push_back({TpccTables::kDistrict, ChangeOp::kInsert,
                        DistrictKey(w, d),
                        Row{Value(DistrictKey(w, d)), Value(int64_t{1}),
                            Value(int64_t{0})}});
      for (int c = 0; c < options_.customers_per_district; ++c)
        writes.push_back({TpccTables::kCustomer, ChangeOp::kInsert,
                          CustomerKey(w, d, c),
                          Row{Value(CustomerKey(w, d, c)), Value(int64_t{0}),
                              Value(int64_t{0})}});
    }
    for (int i = 0; i < options_.stock_items; ++i)
      writes.push_back({TpccTables::kStock, ChangeOp::kInsert, StockKey(w, i),
                        Row{Value(StockKey(w, i)), Value(int64_t{0})}});
    db_->ExecuteTxn(std::move(writes), [&done](bool) { ++done; });
  }
  SimEnv* env = db_->env();
  const Micros deadline = env->Now() + 30'000'000;
  while (done < static_cast<size_t>(options_.warehouses) &&
         env->Now() < deadline)
    env->RunUntil(env->Now() + 1000);
}

TpccWorkload::Txn TpccWorkload::MakeNewOrder(int client) {
  Txn txn;
  txn.is_new_order = true;
  const int w = static_cast<int>(
      rng_.Uniform(static_cast<uint64_t>(options_.warehouses)));
  const int d = static_cast<int>(
      rng_.Uniform(static_cast<uint64_t>(options_.districts_per_warehouse)));
  const int c = static_cast<int>(rng_.NURand(
      255, 0, options_.customers_per_district - 1));
  const uint64_t serial = next_order_serial_++;
  const int lines = static_cast<int>(rng_.UniformRange(
      options_.order_lines_min, options_.order_lines_max));
  const int64_t ts =
      db_->env()->Now() * 1000 + client;  // unique, deterministic

  // District "update" + order insert + order lines + stock touches. Values
  // are pure functions of (w, d, serial, line): idempotent under retry.
  txn.writes.push_back({TpccTables::kDistrict, ChangeOp::kUpdate,
                        DistrictKey(w, d),
                        Row{Value(DistrictKey(w, d)),
                            Value(static_cast<int64_t>(serial + 1)),
                            Value(static_cast<int64_t>(serial) * 10)}});
  txn.writes.push_back({TpccTables::kOrder, ChangeOp::kInsert,
                        OrderKey(w, serial),
                        Row{Value(OrderKey(w, serial)), Value(int64_t{c}),
                            Value(int64_t{lines}), Value(ts)}});
  for (int l = 0; l < lines; ++l) {
    int supply_w = w;
    if (l == 0 && rng_.Bernoulli(options_.cross_shard_fraction)) {
      // Source the first line's stock from a warehouse on another shard.
      for (int probe = 1; probe < options_.warehouses; ++probe) {
        const int cand = (w + probe) % options_.warehouses;
        if (HomeShard(cand) != HomeShard(w)) {
          supply_w = cand;
          break;
        }
      }
    }
    const int item = static_cast<int>(
        rng_.NURand(1023, 0, options_.stock_items - 1));
    txn.writes.push_back(
        {TpccTables::kOrderLine, ChangeOp::kInsert, OrderLineKey(w, serial, l),
         Row{Value(OrderLineKey(w, serial, l)),
             Value(static_cast<int64_t>(serial)), Value(int64_t{l}),
             Value(int64_t{item}),
             Value(static_cast<int64_t>(serial % 97) * (l + 1))}});
    txn.writes.push_back(
        {TpccTables::kStock, ChangeOp::kUpdate, StockKey(supply_w, item),
         Row{Value(StockKey(supply_w, item)),
             Value(static_cast<int64_t>(serial))}});
    if (HomeShard(supply_w) != HomeShard(w)) txn.cross_shard = true;
  }
  return txn;
}

TpccWorkload::Txn TpccWorkload::MakePayment(int client) {
  (void)client;
  Txn txn;
  txn.is_payment = true;
  const int w = static_cast<int>(
      rng_.Uniform(static_cast<uint64_t>(options_.warehouses)));
  const int d = static_cast<int>(
      rng_.Uniform(static_cast<uint64_t>(options_.districts_per_warehouse)));
  int cust_w = w;
  if (rng_.Bernoulli(options_.cross_shard_fraction)) {
    for (int probe = 1; probe < options_.warehouses; ++probe) {
      const int cand = (w + probe) % options_.warehouses;
      if (HomeShard(cand) != HomeShard(w)) {
        cust_w = cand;
        break;
      }
    }
  }
  const int c = static_cast<int>(rng_.NURand(
      255, 0, options_.customers_per_district - 1));
  const int64_t amount = rng_.UniformRange(1, 5000);

  txn.writes.push_back({TpccTables::kWarehouse, ChangeOp::kUpdate,
                        WarehouseKey(w),
                        Row{Value(WarehouseKey(w)), Value(amount)}});
  txn.writes.push_back(
      {TpccTables::kDistrict, ChangeOp::kUpdate, DistrictKey(w, d),
       Row{Value(DistrictKey(w, d)), Value(amount), Value(amount)}});
  txn.writes.push_back({TpccTables::kCustomer, ChangeOp::kUpdate,
                        CustomerKey(cust_w, d, c),
                        Row{Value(CustomerKey(cust_w, d, c)), Value(-amount),
                            Value(amount % 100)}});
  if (HomeShard(cust_w) != HomeShard(w)) txn.cross_shard = true;
  return txn;
}

TpccWorkload::Txn TpccWorkload::MakeStockTouch(int client) {
  (void)client;
  Txn txn;
  const int w = static_cast<int>(
      rng_.Uniform(static_cast<uint64_t>(options_.warehouses)));
  const int item = static_cast<int>(
      rng_.Uniform(static_cast<uint64_t>(options_.stock_items)));
  const int64_t v = rng_.UniformRange(1, 1'000'000);
  txn.writes.push_back({TpccTables::kStock, ChangeOp::kUpdate,
                        StockKey(w, item),
                        Row{Value(StockKey(w, item)), Value(v)}});
  return txn;
}

void TpccWorkload::SubmitWithRetry(int client, Txn txn, int attempts_left,
                                   Micros deadline) {
  ++inflight_;
  // Copy the writes: the retry path re-submits the identical transaction.
  std::vector<WriteOp> writes = txn.writes;
  db_->ExecuteTxn(
      std::move(writes),
      [this, client, txn = std::move(txn), attempts_left,
       deadline](bool committed) mutable {
        --inflight_;
        if (committed) {
          if (txn.is_new_order)
            ++stats_.new_orders_committed;
          else if (txn.is_payment)
            ++stats_.payments_committed;
          else
            ++stats_.stock_touches_committed;
        } else if (attempts_left > 1 && db_->env()->Now() < deadline) {
          ++stats_.client_retries;
          db_->env()->Schedule(
              options_.retry_backoff_micros,
              [this, client, txn = std::move(txn), attempts_left, deadline] {
                SubmitWithRetry(client, txn, attempts_left - 1, deadline);
              });
          return;  // not a terminal outcome yet
        } else {
          if (txn.is_new_order)
            ++stats_.new_orders_aborted;
          else if (txn.is_payment)
            ++stats_.payments_aborted;
          else
            ++stats_.stock_touches_aborted;
        }
        // Closed loop: think, then issue the client's next transaction.
        if (db_->env()->Now() < deadline)
          db_->env()->Schedule(options_.think_time_micros,
                               [this, client, deadline] {
                                 RunClient(client, deadline);
                               });
      });
}

void TpccWorkload::RunClient(int client, Micros deadline) {
  if (db_->env()->Now() >= deadline) return;
  const double roll = rng_.NextDouble();
  Txn txn;
  if (roll < options_.new_order_pct)
    txn = MakeNewOrder(client);
  else if (roll < options_.new_order_pct + options_.payment_pct)
    txn = MakePayment(client);
  else
    txn = MakeStockTouch(client);
  if (txn.cross_shard) ++stats_.cross_shard_issued;
  SubmitWithRetry(client, std::move(txn), options_.max_txn_attempts, deadline);
}

void TpccWorkload::ScheduleApScan(Micros deadline) {
  if (db_->env()->Now() >= deadline) return;
  db_->env()->Schedule(options_.ap_scan_interval, [this, deadline] {
    if (db_->env()->Now() > deadline) return;
    ++stats_.ap_scans;
    stats_.ap_rows_read +=
        db_->AnalyticalScan(TpccTables::kOrderLine, Predicate::True(), {},
                            /*include_delta=*/true)
            .size();
    stats_.repl_lag_max = std::max(
        stats_.repl_lag_max,
        db_->FreshnessLagMicros(
            db_->LearnerReplicatedCsn(TpccTables::kOrderLine)));
    stats_.merge_lag_max = std::max(
        stats_.merge_lag_max,
        db_->FreshnessLagMicros(db_->LearnerMergedCsn(TpccTables::kOrderLine)));
    ScheduleApScan(deadline);
  });
}

void TpccWorkload::Run(Micros duration) {
  SimEnv* env = db_->env();
  const Micros start = env->Now();
  const Micros deadline = start + duration;
  for (int c = 0; c < options_.clients; ++c) RunClient(c, deadline);
  if (options_.ap_scan_interval > 0) ScheduleApScan(deadline);
  env->RunUntil(deadline);
  // Drain: clients stop issuing past the deadline; finish what is in flight
  // (bounded — a partitioned shard can hold a decision open for a while).
  const Micros drain_deadline = deadline + 30'000'000;
  while (inflight_ > 0 && env->Now() < drain_deadline)
    env->RunUntil(env->Now() + 10'000);
  stats_.duration_micros = env->Now() - start;
}

}  // namespace sim
}  // namespace htap
