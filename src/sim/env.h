// Deterministic discrete-event simulation environment.
//
// The survey's distributed architectures (TiDB-style Raft clusters, the
// Heatwave column-store cluster) run multiple machines; this library runs
// them in one process on a virtual clock. Every network hop and every unit
// of simulated CPU work is an event; execution is fully deterministic given
// a seed, which makes the Raft/2PC property tests exact and the scalability
// benchmarks host-independent (reported in virtual time).

#ifndef HTAP_SIM_ENV_H_
#define HTAP_SIM_ENV_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <set>
#include <vector>

#include "common/clock.h"
#include "common/random.h"

namespace htap {
namespace sim {

using NodeId = int;

/// The event loop + virtual clock.
class SimEnv {
 public:
  explicit SimEnv(uint64_t seed = 7) : rng_(seed) {}

  Micros Now() const { return now_; }

  /// Schedules `fn` to run at Now() + delay.
  void Schedule(Micros delay, std::function<void()> fn) {
    queue_.push(Event{now_ + (delay < 0 ? 0 : delay), next_seq_++,
                      std::move(fn)});
  }

  /// Runs events until the queue is empty (or `max_events` fires).
  void Run(uint64_t max_events = ~0ULL) {
    uint64_t fired = 0;
    while (!queue_.empty() && fired < max_events) {
      Step();
      ++fired;
    }
  }

  /// Runs events with time <= deadline.
  void RunUntil(Micros deadline) {
    while (!queue_.empty() && queue_.top().time <= deadline) Step();
    if (now_ < deadline) now_ = deadline;
  }

  bool Idle() const { return queue_.empty(); }
  size_t pending_events() const { return queue_.size(); }
  Random& rng() { return rng_; }

 private:
  struct Event {
    Micros time;
    uint64_t seq;  // FIFO tie-break for determinism
    std::function<void()> fn;
    bool operator>(const Event& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  void Step() {
    Event e = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = e.time;
    e.fn();
  }

  Micros now_ = 0;
  uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  Random rng_;
};

/// Point-to-point message fabric with configurable latency, loss, and
/// partitions. Messages are delivery closures (the receiving node's handler
/// bound to decoded arguments).
class SimNetwork {
 public:
  struct Options {
    Micros base_latency_micros = 500;   // one-way
    Micros jitter_micros = 100;         // uniform [0, jitter)
    double drop_probability = 0.0;
  };

  SimNetwork(SimEnv* env, Options options) : env_(env), options_(options) {}

  /// Delivers `handler` on the destination after simulated latency, unless
  /// dropped or partitioned.
  void Send(NodeId from, NodeId to, std::function<void()> handler) {
    ++messages_sent_;
    if (Partitioned(from, to)) {
      ++messages_dropped_;
      return;
    }
    if (options_.drop_probability > 0 &&
        env_->rng().NextDouble() < options_.drop_probability) {
      ++messages_dropped_;
      return;
    }
    const Micros jitter =
        options_.jitter_micros > 0
            ? static_cast<Micros>(env_->rng().Uniform(
                  static_cast<uint64_t>(options_.jitter_micros)))
            : 0;
    env_->Schedule(options_.base_latency_micros + jitter, std::move(handler));
  }

  /// Runtime fault knob: message-loss probability for every subsequent
  /// Send (the constructor option seeds the initial value).
  void set_drop_probability(double p) { options_.drop_probability = p; }
  double drop_probability() const { return options_.drop_probability; }

  void Partition(NodeId a, NodeId b) {
    partitions_.insert({std::min(a, b), std::max(a, b)});
  }
  void Heal(NodeId a, NodeId b) {
    partitions_.erase({std::min(a, b), std::max(a, b)});
  }
  void HealAll() { partitions_.clear(); }
  bool Partitioned(NodeId a, NodeId b) const {
    return partitions_.count({std::min(a, b), std::max(a, b)}) != 0;
  }

  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t messages_dropped() const { return messages_dropped_; }
  SimEnv* env() { return env_; }

 private:
  SimEnv* env_;
  Options options_;
  std::set<std::pair<NodeId, NodeId>> partitions_;
  uint64_t messages_sent_ = 0;
  uint64_t messages_dropped_ = 0;
};

/// A simulated machine with a single-core CPU: work items serialize on the
/// busy-until cursor, which is what makes per-node throughput saturate and
/// sharding show real scalability curves in virtual time.
class SimNode {
 public:
  SimNode(SimEnv* env, NodeId id) : env_(env), id_(id) {}
  virtual ~SimNode() = default;

  NodeId id() const { return id_; }
  bool alive() const { return alive_; }

  /// Simulated crash: drops future work; volatile state reset is the
  /// subclass's job (see Raft).
  virtual void Crash() { alive_ = false; }
  virtual void Restart() {
    alive_ = true;
    busy_until_ = env_->Now();
  }

  /// Runs `fn` after `cpu_cost` of simulated CPU time, queueing behind any
  /// work already scheduled on this node.
  void Execute(Micros cpu_cost, std::function<void()> fn) {
    if (!alive_) return;
    const Micros start = std::max(busy_until_, env_->Now());
    busy_until_ = start + cpu_cost;
    const Micros delay = busy_until_ - env_->Now();
    env_->Schedule(delay, [this, fn = std::move(fn)] {
      if (alive_) fn();
    });
  }

  /// Total simulated CPU consumed (busy time).
  Micros busy_until() const { return busy_until_; }

 protected:
  SimEnv* env_;
  NodeId id_;
  bool alive_ = true;
  Micros busy_until_ = 0;
};

}  // namespace sim
}  // namespace htap

#endif  // HTAP_SIM_ENV_H_
