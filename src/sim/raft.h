// Raft consensus over the simulated network: leader election, log
// replication, commitment, and non-voting LEARNER replicas — the substrate
// of the survey's architecture (b) (TiDB ships Raft logs to row-store
// followers and columnar learners).
//
// The implementation follows the Raft paper's §5 rules. Persistent state
// (term, vote, log) survives Crash()/Restart(); volatile state does not.

#ifndef HTAP_SIM_RAFT_H_
#define HTAP_SIM_RAFT_H_

#include <functional>
#include <memory>
#include <map>
#include <string>
#include <vector>

#include "sim/env.h"

namespace htap {
namespace sim {

struct RaftEntry {
  uint64_t term = 0;
  std::string payload;
};

enum class RaftRole : uint8_t { kFollower, kCandidate, kLeader, kLearner };

const char* RaftRoleName(RaftRole r);

struct RaftConfig {
  Micros election_timeout_min = 15000;
  Micros election_timeout_max = 30000;
  Micros heartbeat_interval = 4000;
  Micros rpc_cpu_cost = 20;        // CPU to process one RPC
  Micros entry_cpu_cost = 5;       // CPU per log entry appended/applied
  size_t max_entries_per_append = 64;
};

/// Callback invoked exactly once per committed entry, in log order, on
/// every live node (voters and learners).
using RaftApplyFn =
    std::function<void(uint64_t index, const std::string& payload)>;

class RaftNode : public SimNode {
 public:
  /// `voters` lists ALL voting members (including this node if it votes);
  /// `learners` lists non-voting members. Call SetPeerResolver + Start
  /// after constructing the whole group.
  RaftNode(SimEnv* env, SimNetwork* net, NodeId id,
           std::vector<NodeId> voters, std::vector<NodeId> learners,
           RaftConfig config, RaftApplyFn apply);

  /// How the node finds other RaftNode instances by id.
  void SetPeerResolver(std::function<RaftNode*(NodeId)> resolver) {
    resolve_ = std::move(resolver);
  }

  /// Arms the first election timeout (learners skip straight to waiting).
  void Start();

  /// Leader-only: appends a command. `on_commit(true, index)` fires when
  /// the entry commits; `on_commit(false, 0)` if leadership is lost first.
  /// Returns false (and does not call back) if this node is not the leader.
  bool Propose(std::string payload,
               std::function<void(bool, uint64_t)> on_commit = nullptr);

  RaftRole role() const { return role_; }
  bool IsLeader() const { return alive_ && role_ == RaftRole::kLeader; }
  uint64_t term() const { return term_; }
  uint64_t commit_index() const { return commit_index_; }
  uint64_t last_applied() const { return last_applied_; }
  /// Elections this node has started (ClusterStats observability).
  uint64_t elections_started() const { return elections_started_; }
  /// Times this node has won an election (leader changes ≈ group sum).
  uint64_t leaderships_won() const { return leaderships_won_; }
  size_t log_size() const { return log_.size(); }
  const RaftEntry& log_entry(uint64_t index) const {
    return log_[index - 1];
  }

  void Crash() override;
  void Restart() override;

 private:
  struct AppendArgs {
    uint64_t term;
    NodeId leader;
    uint64_t prev_index, prev_term;
    std::vector<RaftEntry> entries;
    uint64_t leader_commit;
  };
  struct AppendReply {
    uint64_t term;
    bool success;
    uint64_t match_index;
    NodeId from;
  };
  struct VoteArgs {
    uint64_t term;
    NodeId candidate;
    uint64_t last_log_index, last_log_term;
  };
  struct VoteReply {
    uint64_t term;
    bool granted;
    NodeId from;
  };

  void HandleAppend(const AppendArgs& args);
  void HandleAppendReply(const AppendReply& reply);
  void HandleVote(const VoteArgs& args);
  void HandleVoteReply(const VoteReply& reply);

  void ArmElectionTimer();
  void StartElection();
  void BecomeFollower(uint64_t term);
  void BecomeLeader();
  void BroadcastAppend(bool force);
  void ArmHeartbeat();
  void SendAppendTo(NodeId peer);
  void AdvanceLeaderCommit();
  void ApplyCommitted();
  void FailPendingProposals();

  uint64_t LastLogIndex() const { return log_.size(); }
  uint64_t LastLogTerm() const { return log_.empty() ? 0 : log_.back().term; }
  size_t Majority() const { return voters_.size() / 2 + 1; }
  bool IsVoter() const;

  SimNetwork* net_;
  std::vector<NodeId> voters_;
  std::vector<NodeId> learners_;
  RaftConfig config_;
  RaftApplyFn apply_;
  std::function<RaftNode*(NodeId)> resolve_;

  // Persistent state (survives Crash/Restart).
  uint64_t term_ = 0;
  NodeId voted_for_ = -1;
  std::vector<RaftEntry> log_;  // log_[i] is entry index i+1

  // Observability counters (monotone; survive Crash/Restart).
  uint64_t elections_started_ = 0;
  uint64_t leaderships_won_ = 0;

  // Volatile state.
  RaftRole role_ = RaftRole::kFollower;
  uint64_t commit_index_ = 0;
  uint64_t last_applied_ = 0;
  NodeId leader_hint_ = -1;
  uint64_t timer_epoch_ = 0;
  size_t votes_received_ = 0;
  std::map<NodeId, uint64_t> next_index_;
  std::map<NodeId, uint64_t> match_index_;
  // Flow control: true while an AppendEntries to the peer awaits a reply.
  // Propose() skips such peers (their reply continues the stream, batching
  // queued entries); heartbeats send regardless and so double as the
  // retransmit timer when an append or its reply was dropped. Without this
  // cap a follower that falls behind gets the full unacked suffix re-sent
  // on every Propose, saturates its CPU, and never catches up.
  std::map<NodeId, bool> append_inflight_;
  std::map<uint64_t, std::function<void(bool, uint64_t)>> pending_;
};

/// A Raft group: constructs the nodes, wires the resolver, runs elections.
class RaftGroup {
 public:
  RaftGroup(SimEnv* env, SimNetwork* net, std::vector<NodeId> voter_ids,
            std::vector<NodeId> learner_ids, RaftConfig config,
            std::function<RaftApplyFn(NodeId)> apply_factory);

  RaftNode* node(NodeId id) const { return nodes_.at(id).get(); }
  /// The live leader with the highest term (a stale partitioned leader can
  /// coexist with the real one); nullptr if none elected.
  RaftNode* leader() const;
  const std::vector<NodeId>& voter_ids() const { return voter_ids_; }
  const std::vector<NodeId>& learner_ids() const { return learner_ids_; }

  /// Runs the sim until some node is a live leader (or deadline).
  RaftNode* WaitForLeader(Micros deadline_from_now = 2'000'000);

 private:
  SimEnv* env_;
  std::vector<NodeId> voter_ids_, learner_ids_;
  std::map<NodeId, std::unique_ptr<RaftNode>> nodes_;
};

}  // namespace sim
}  // namespace htap

#endif  // HTAP_SIM_RAFT_H_
