#include "columnar/encoding.h"

#include <algorithm>
#include <unordered_map>

namespace htap {

namespace {

/// Bits needed to represent `range` distinct offsets. A range of 0 (all
/// values equal, or an empty segment) needs no payload bits at all: the
/// frame base alone reconstructs every value.
uint8_t BitWidthFor(uint64_t range) {
  uint8_t w = 0;
  while (range > 0) {
    ++w;
    range >>= 1;
  }
  return w;
}

void PackBits(const std::vector<uint64_t>& offsets, uint8_t width,
              std::vector<uint64_t>* out) {
  out->assign((offsets.size() * width + 63) / 64, 0);
  if (width == 0) return;  // all offsets are 0; no payload words
  size_t bitpos = 0;
  for (uint64_t off : offsets) {
    const size_t word = bitpos >> 6;
    const size_t shift = bitpos & 63;
    (*out)[word] |= off << shift;
    if (shift + width > 64) (*out)[word + 1] |= off >> (64 - shift);
    bitpos += width;
  }
}

uint64_t UnpackBits(const std::vector<uint64_t>& packed, uint8_t width,
                    size_t i) {
  if (width == 0) return 0;
  const size_t bitpos = i * width;
  const size_t word = bitpos >> 6;
  const size_t shift = bitpos & 63;
  uint64_t v = packed[word] >> shift;
  if (shift + width > 64) v |= packed[word + 1] << (64 - shift);
  const uint64_t mask = width == 64 ? ~0ULL : ((1ULL << width) - 1);
  return v & mask;
}

template <typename T>
void EncodeRleTyped(const std::vector<T>& vals, std::vector<T>* run_vals,
                    std::vector<uint32_t>* run_ends) {
  size_t i = 0;
  while (i < vals.size()) {
    size_t j = i + 1;
    while (j < vals.size() && vals[j] == vals[i]) ++j;
    run_vals->push_back(vals[i]);
    run_ends->push_back(static_cast<uint32_t>(j));
    i = j;
  }
}

}  // namespace

const char* EncodingName(EncodingType t) {
  switch (t) {
    case EncodingType::kPlain: return "PLAIN";
    case EncodingType::kDictionary: return "DICTIONARY";
    case EncodingType::kRle: return "RLE";
    case EncodingType::kForBitPack: return "FOR_BITPACK";
  }
  return "?";
}

size_t EncodedColumn::MemoryBytes() const {
  size_t b = sizeof(*this);
  b += ints.capacity() * 8 + doubles.capacity() * 8;
  // Count the whole strings vector allocation (capacity, not size — slack
  // slots are real memory) plus each string's heap payload.
  b += strings.capacity() * sizeof(std::string);
  for (const auto& s : strings) b += s.capacity();
  b += codes.capacity() * 4 + run_ends.capacity() * 4 + packed.capacity() * 8;
  b += nulls.MemoryBytes();
  return b;
}

EncodedColumn Encode(const ColumnVector& in, EncodingType enc) {
  EncodedColumn out;
  out.type = in.type();
  out.num_values = static_cast<uint32_t>(in.size());
  out.nulls = in.nulls();

  // Resolve unsupported combinations to PLAIN.
  if (enc == EncodingType::kForBitPack && in.type() != Type::kInt64)
    enc = EncodingType::kPlain;
  if (enc == EncodingType::kDictionary && in.type() == Type::kDouble)
    enc = EncodingType::kPlain;
  out.encoding = enc;

  switch (enc) {
    case EncodingType::kPlain:
      switch (in.type()) {
        case Type::kInt64: out.ints = in.ints(); break;
        case Type::kDouble: out.doubles = in.doubles(); break;
        case Type::kString: out.strings = in.strings(); break;
      }
      break;

    case EncodingType::kDictionary: {
      out.codes.reserve(in.size());
      if (in.type() == Type::kString) {
        std::unordered_map<std::string, uint32_t> dict;
        for (size_t i = 0; i < in.size(); ++i) {
          const std::string& s = in.strings()[i];
          auto [it, inserted] =
              dict.emplace(s, static_cast<uint32_t>(out.strings.size()));
          if (inserted) out.strings.push_back(s);
          out.codes.push_back(it->second);
        }
      } else {
        std::unordered_map<int64_t, uint32_t> dict;
        for (size_t i = 0; i < in.size(); ++i) {
          const int64_t v = in.ints()[i];
          auto [it, inserted] =
              dict.emplace(v, static_cast<uint32_t>(out.ints.size()));
          if (inserted) out.ints.push_back(v);
          out.codes.push_back(it->second);
        }
      }
      break;
    }

    case EncodingType::kRle:
      switch (in.type()) {
        case Type::kInt64: EncodeRleTyped(in.ints(), &out.ints, &out.run_ends); break;
        case Type::kDouble:
          EncodeRleTyped(in.doubles(), &out.doubles, &out.run_ends);
          break;
        case Type::kString:
          EncodeRleTyped(in.strings(), &out.strings, &out.run_ends);
          break;
      }
      break;

    case EncodingType::kForBitPack: {
      const auto& vals = in.ints();
      if (vals.empty()) {
        out.ints = {0};
        out.bit_width = 0;
        break;
      }
      const auto [mn_it, mx_it] = std::minmax_element(vals.begin(), vals.end());
      const int64_t base = *mn_it;
      const uint64_t range =
          static_cast<uint64_t>(*mx_it) - static_cast<uint64_t>(base);
      if (range > (1ULL << 62)) {  // too wide: plain
        out.encoding = EncodingType::kPlain;
        out.ints = vals;
        break;
      }
      out.bit_width = BitWidthFor(range);
      out.ints = {base};
      std::vector<uint64_t> offsets;
      offsets.reserve(vals.size());
      for (int64_t v : vals)
        offsets.push_back(static_cast<uint64_t>(v) -
                          static_cast<uint64_t>(base));
      PackBits(offsets, out.bit_width, &out.packed);
      break;
    }
  }
  return out;
}

ColumnVector Decode(const EncodedColumn& col) {
  ColumnVector out(col.type);
  out.Reserve(col.num_values);
  for (size_t i = 0; i < col.num_values; ++i) out.AppendValue(EncodedGet(col, i));
  return out;
}

Value EncodedGet(const EncodedColumn& col, size_t i) {
  if (col.nulls.Test(i)) return Value::Null();
  switch (col.encoding) {
    case EncodingType::kPlain:
      switch (col.type) {
        case Type::kInt64: return Value(col.ints[i]);
        case Type::kDouble: return Value(col.doubles[i]);
        case Type::kString: return Value(col.strings[i]);
      }
      break;
    case EncodingType::kDictionary: {
      const uint32_t code = col.codes[i];
      if (col.type == Type::kString) return Value(col.strings[code]);
      return Value(col.ints[code]);
    }
    case EncodingType::kRle: {
      const auto it = std::upper_bound(col.run_ends.begin(),
                                       col.run_ends.end(),
                                       static_cast<uint32_t>(i));
      const size_t run = static_cast<size_t>(it - col.run_ends.begin());
      switch (col.type) {
        case Type::kInt64: return Value(col.ints[run]);
        case Type::kDouble: return Value(col.doubles[run]);
        case Type::kString: return Value(col.strings[run]);
      }
      break;
    }
    case EncodingType::kForBitPack: return Value(ForUnpackAt(col, i));
  }
  return Value::Null();
}

int64_t ForUnpackAt(const EncodedColumn& col, size_t i) {
  const uint64_t off = UnpackBits(col.packed, col.bit_width, i);
  return static_cast<int64_t>(static_cast<uint64_t>(col.ints[0]) + off);
}

EncodingType ChooseEncoding(const ColumnVector& in) {
  const size_t n = in.size();
  if (n < 16) return EncodingType::kPlain;

  // Sample run structure and distinct values.
  size_t runs = 1;
  for (size_t i = 1; i < n; ++i) {
    bool eq = false;
    switch (in.type()) {
      case Type::kInt64: eq = in.ints()[i] == in.ints()[i - 1]; break;
      case Type::kDouble: eq = in.doubles()[i] == in.doubles()[i - 1]; break;
      case Type::kString: eq = in.strings()[i] == in.strings()[i - 1]; break;
    }
    if (!eq) ++runs;
  }
  if (n / runs >= 8) return EncodingType::kRle;

  if (in.type() == Type::kString) {
    std::unordered_map<std::string, int> dict;
    for (const auto& s : in.strings()) {
      dict.emplace(s, 0);
      if (dict.size() > n / 4) return EncodingType::kPlain;
    }
    return EncodingType::kDictionary;
  }
  if (in.type() == Type::kInt64) {
    const auto [mn, mx] =
        std::minmax_element(in.ints().begin(), in.ints().end());
    const uint64_t range =
        static_cast<uint64_t>(*mx) - static_cast<uint64_t>(*mn);
    if (range < (1ULL << 32)) return EncodingType::kForBitPack;
  }
  return EncodingType::kPlain;
}

}  // namespace htap
