#include "columnar/column_table.h"

#include "columnar/compression_advisor.h"

namespace htap {

void ColumnTable::EnableCompressionAdvisor(bool on) {
  WriteGuard g(latch_);
  advise_encodings_ = on;
}

void ColumnTable::AppendBatch(const std::vector<Row>& rows, CSN up_to_csn) {
  if (!rows.empty()) {
    WriteGuard g(latch_);
    AppendBatchLocked(rows);
  }
  // order: release — freshness probes read merged_csn_ with acquire outside
  // the latch; the merged rows must be visible before the watermark.
  merged_csn_.store(up_to_csn, std::memory_order_release);
}

void ColumnTable::AppendBatchLocked(const std::vector<Row>& rows) {
  // Updates: delete-mark existing positions first.
  for (const Row& r : rows) {
    const Key key = r.GetKey(schema_);
    const auto it = key_index_.find(key);
    if (it != key_index_.end()) {
      groups_[it->second.first]->deleted.Set(it->second.second);
    }
  }

  auto group = std::make_unique<RowGroup>();
  group->num_rows = rows.size();
  group->keys.reserve(rows.size());
  for (const Row& r : rows) group->keys.push_back(r.GetKey(schema_));
  group->deleted.Resize(rows.size());

  group->columns.reserve(schema_.num_columns());
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    ColumnVector vec(schema_.column(c).type);
    vec.Reserve(rows.size());
    for (const Row& r : rows) vec.AppendValue(r.Get(c));
    group->columns.push_back(
        advise_encodings_
            ? Segment::BuildWithEncoding(vec, AdviseEncoding(vec).chosen)
            : Segment::Build(vec));
  }

  const uint32_t gidx = static_cast<uint32_t>(groups_.size());
  for (size_t i = 0; i < rows.size(); ++i)
    key_index_[group->keys[i]] = {gidx, static_cast<uint32_t>(i)};
  groups_.push_back(std::move(group));
}

bool ColumnTable::DeleteKey(Key key, CSN csn) {
  WriteGuard g(latch_);
  const auto it = key_index_.find(key);
  bool found = false;
  if (it != key_index_.end()) {
    groups_[it->second.first]->deleted.Set(it->second.second);
    key_index_.erase(it);
    found = true;
  }
  if (csn > merged_csn_.load(std::memory_order_relaxed))
    // order: release — as AppendBatch: the delete must be visible before
    // the watermark that advertises it.
    merged_csn_.store(csn, std::memory_order_release);
  return found;
}

void ColumnTable::Clear() {
  WriteGuard g(latch_);
  groups_.clear();
  key_index_.clear();
  // order: release — the reset store must not reorder before the clears.
  merged_csn_.store(0, std::memory_order_release);
}

size_t ColumnTable::Compact() {
  WriteGuard g(latch_);
  size_t before = 0, after = 0;
  for (auto& gp : groups_) before += gp->MemoryBytes();

  // Gather all live rows, rebuild as a fresh group list.
  std::vector<Row> live;
  for (const auto& gp : groups_) {
    for (size_t i = 0; i < gp->num_rows; ++i) {
      if (gp->deleted.Test(i)) continue;
      Row r;
      for (const auto& col : gp->columns) r.Append(col.Get(i));
      live.push_back(std::move(r));
    }
  }
  groups_.clear();
  key_index_.clear();
  if (!live.empty()) AppendBatchLocked(live);
  for (auto& gp : groups_) after += gp->MemoryBytes();
  return before > after ? before - after : 0;
}

size_t ColumnTable::num_groups() const {
  ReadGuard g(latch_);
  return groups_.size();
}

const RowGroup* ColumnTable::group(size_t i) const {
  ReadGuard g(latch_);
  return groups_[i].get();
}

Row ColumnTable::MaterializeRow(const RowGroup& g, size_t offset) const {
  Row r;
  for (const auto& col : g.columns) r.Append(col.Get(offset));
  return r;
}

bool ColumnTable::FindKey(Key key, size_t* group_idx, size_t* offset) const {
  ReadGuard g(latch_);
  const auto it = key_index_.find(key);
  if (it == key_index_.end()) return false;
  if (groups_[it->second.first]->deleted.Test(it->second.second)) return false;
  *group_idx = it->second.first;
  *offset = it->second.second;
  return true;
}

size_t ColumnTable::live_rows() const {
  ReadGuard g(latch_);
  size_t n = 0;
  for (const auto& gp : groups_) n += gp->num_rows - gp->deleted.Count();
  return n;
}

size_t ColumnTable::MemoryBytes() const {
  ReadGuard g(latch_);
  size_t b = sizeof(*this) + key_index_.size() * 24;
  for (const auto& gp : groups_) b += gp->MemoryBytes();
  return b;
}

EncodingBreakdown ColumnTable::EncodingStats() const {
  ReadGuard g(latch_);
  EncodingBreakdown out;
  for (const auto& gp : groups_) {
    for (const Segment& seg : gp->columns) {
      const auto e = static_cast<size_t>(seg.encoded().encoding);
      ++out.segments[e];
      out.bytes[e] += seg.MemoryBytes();
    }
  }
  return out;
}

}  // namespace htap
