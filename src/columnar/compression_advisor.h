// Per-segment compression advisor (the Hyrise-style encoding selector).
//
// ChooseEncoding (encoding.h) picks an encoding from coarse heuristics with
// fixed thresholds. The advisor instead *estimates the encoded size in
// bytes* of every applicable encoding from one pass of observed value
// statistics (row count, distinct values, run structure, integer range,
// null density) and picks the smallest — with a bias requiring a compressed
// encoding to beat PLAIN by at least 1/8 of PLAIN's footprint, so marginal
// wins do not pay dictionary/unpack overhead at scan time.
//
// It runs where segments are (re)built: column-table append at sync time
// and compaction. Opt-in per ColumnTable (EnableCompressionAdvisor), and
// wired on by default in the engines through
// DatabaseOptions::compression_advisor.

#ifndef HTAP_COLUMNAR_COMPRESSION_ADVISOR_H_
#define HTAP_COLUMNAR_COMPRESSION_ADVISOR_H_

#include "columnar/encoding.h"

namespace htap {

/// Estimated encoded footprint of one candidate encoding. `applicable` is
/// false when the encoding cannot represent the column (FOR on non-INT64,
/// dictionary on DOUBLE) — `bytes` is meaningless then.
struct EncodingEstimate {
  EncodingType encoding = EncodingType::kPlain;
  size_t bytes = 0;
  bool applicable = false;
};

/// The advisor's decision plus the per-encoding estimates it compared
/// (indexed by EncodingType), for stats surfacing and tests.
struct CompressionAdvice {
  EncodingType chosen = EncodingType::kPlain;
  std::array<EncodingEstimate, kNumEncodings> candidates{};
};

/// Observed value statistics the estimates derive from; filled by one pass
/// over the segment's values. Distinct/run/range counts are over the RAW
/// slot values (null placeholders included) because that is exactly what
/// the encoders consume — nulls ride in a separate bitmap.
struct SegmentValueStats {
  size_t rows = 0;
  size_t nulls = 0;
  size_t distinct = 0;       // distinct raw slot values
  size_t runs = 0;           // maximal equal-value runs of raw slot values
  size_t string_bytes = 0;   // total payload of all string cells
  size_t distinct_string_bytes = 0;  // payload of the distinct strings
  int64_t int_min = 0;       // raw-slot range — what the FOR encoder frames
  int64_t int_max = 0;
};

/// Collects SegmentValueStats from `values` in one pass.
SegmentValueStats CollectSegmentStats(const ColumnVector& values);

/// Re-picks the segment encoding from observed stats (see file header).
CompressionAdvice AdviseEncoding(const ColumnVector& values);

}  // namespace htap

#endif  // HTAP_COLUMNAR_COMPRESSION_ADVISOR_H_
