#include "columnar/segment.h"

namespace htap {

Segment Segment::Build(const ColumnVector& values) {
  return BuildWithEncoding(values, ChooseEncoding(values));
}

Segment Segment::BuildWithEncoding(const ColumnVector& values,
                                   EncodingType enc) {
  Segment s;
  s.data_ = Encode(values, enc);
  bool first = true;
  for (size_t i = 0; i < values.size(); ++i) {
    if (values.IsNull(i)) {
      s.has_nulls_ = true;
      continue;
    }
    const Value v = values.GetValue(i);
    if (first) {
      s.min_ = v;
      s.max_ = v;
      first = false;
    } else {
      if (v < s.min_) s.min_ = v;
      if (s.max_ < v) s.max_ = v;
    }
  }
  return s;
}

bool Segment::CanSkip(const std::string& op, const Value& v) const {
  if (min_.is_null()) return true;  // empty or all-NULL segment
  if (op == "=") return v < min_ || max_ < v;
  if (op == "<") return !(min_ < v);   // need min < v
  if (op == "<=") return v < min_;
  if (op == ">") return !(v < max_);   // need max > v
  if (op == ">=") return max_ < v;
  return false;  // "!=" and unknown ops: cannot skip
}

}  // namespace htap
