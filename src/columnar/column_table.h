// ColumnTable: the main column store. An append-only sequence of immutable
// row groups (IMCUs), each holding one Segment per column, a delete bitmap,
// and the primary keys decoded for fast delta-override checks. Updates are
// delete-old-position + append-new-row, applied by the sync pipeline.
//
// `merged_csn` is the freshness cursor: every committed change with
// CSN <= merged_csn is reflected here; newer changes still live in a delta
// store and must be unioned in by the scan (the in-memory delta and column
// scan technique, Table 2 AP row).

#ifndef HTAP_COLUMNAR_COLUMN_TABLE_H_
#define HTAP_COLUMNAR_COLUMN_TABLE_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "columnar/segment.h"
#include "common/bitmap.h"
#include "common/latch.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/status.h"
#include "txn/types.h"
#include "types/row.h"
#include "types/schema.h"

namespace htap {

/// One immutable horizontal slice of the table.
struct RowGroup {
  std::vector<Segment> columns;  // one per schema column
  std::vector<Key> keys;         // decoded PK per row (hot path)
  Bitmap deleted;                // positional delete bitmap
  size_t num_rows = 0;

  size_t MemoryBytes() const {
    size_t b = sizeof(*this) + keys.capacity() * sizeof(Key) +
               deleted.MemoryBytes();
    for (const auto& s : columns) b += s.MemoryBytes();
    return b;
  }
};

class ColumnTable {
 public:
  explicit ColumnTable(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }

  // ---- Sync-pipeline write API (single writer; scans may run concurrently)

  /// Appends a batch of rows as one new row group. Rows whose key already
  /// exists are treated as updates: the old position is delete-marked first.
  void AppendBatch(const std::vector<Row>& rows, CSN up_to_csn);

  /// Positionally delete-marks the row with this key. Returns false if the
  /// key is not present.
  bool DeleteKey(Key key, CSN csn);

  /// Drops all data (rebuild-from-primary begins with this).
  void Clear();

  /// Compacts groups: drops deleted rows and rebuilds segments. Returns
  /// bytes reclaimed (approximate).
  size_t Compact();

  /// Opt into the size-estimating compression advisor: segments built after
  /// this call (appends from the sync pipeline, Compact rebuilds) pick their
  /// encoding via AdviseEncoding instead of the ChooseEncoding heuristics.
  /// Default off so raw ColumnTable behavior is unchanged; the engines turn
  /// it on per DatabaseOptions::compression_advisor.
  void EnableCompressionAdvisor(bool on);

  // ---- Read API -----------------------------------------------------------

  size_t num_groups() const;
  /// Stable pointer to group i (groups are never removed, only compacted in
  /// place under the write latch; readers take the shared latch).
  const RowGroup* group(size_t i) const;

  /// Unlatched variants: caller must hold latch() shared for the duration
  /// of use (the scan path holds it across the whole pass).
  size_t num_groups_unlocked() const REQUIRES_SHARED(latch_) {
    return groups_.size();
  }
  const RowGroup* group_unlocked(size_t i) const REQUIRES_SHARED(latch_) {
    return groups_[i].get();
  }

  /// Reconstructs a full row from group/offset (for hybrid plans).
  Row MaterializeRow(const RowGroup& g, size_t offset) const;

  /// Looks up a key's position. Returns false if absent or deleted.
  bool FindKey(Key key, size_t* group_idx, size_t* offset) const;

  /// Rows not delete-marked.
  size_t live_rows() const;
  size_t MemoryBytes() const;

  /// Per-encoding segment counts and bytes across all row groups — the
  /// "where did the memory go" view Database stats surface.
  EncodingBreakdown EncodingStats() const;

  /// Freshness cursor: all committed changes at or below this CSN are
  /// reflected in this column store.
  CSN merged_csn() const { return merged_csn_; }
  void set_merged_csn(CSN csn) { merged_csn_ = csn; }

  /// The scan latch: scans hold shared, the sync pipeline holds exclusive.
  RWLatch& latch() const RETURN_CAPABILITY(latch_) { return latch_; }

 private:
  void AppendBatchLocked(const std::vector<Row>& rows) REQUIRES(latch_);

  const Schema schema_;
  bool advise_encodings_ GUARDED_BY(latch_) = false;
  std::vector<std::unique_ptr<RowGroup>> groups_ GUARDED_BY(latch_);
  std::unordered_map<Key, std::pair<uint32_t, uint32_t>> key_index_
      GUARDED_BY(latch_);
  std::atomic<CSN> merged_csn_{0};
  mutable RWLatch latch_{LockRank::kTableLatch, "column-table"};
};

}  // namespace htap

#endif  // HTAP_COLUMNAR_COLUMN_TABLE_H_
