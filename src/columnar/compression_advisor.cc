#include "columnar/compression_advisor.h"

#include <algorithm>
#include <unordered_set>

namespace htap {

namespace {

/// Bits needed for `range` distinct frame offsets (0 when all values are
/// equal — the base alone reconstructs them). Mirrors the FOR encoder.
uint8_t BitsFor(uint64_t range) {
  uint8_t w = 0;
  while (range > 0) {
    ++w;
    range >>= 1;
  }
  return w;
}

template <typename T>
size_t CountRuns(const std::vector<T>& vals) {
  if (vals.empty()) return 0;
  size_t runs = 1;
  for (size_t i = 1; i < vals.size(); ++i)
    if (!(vals[i] == vals[i - 1])) ++runs;
  return runs;
}

}  // namespace

SegmentValueStats CollectSegmentStats(const ColumnVector& values) {
  SegmentValueStats st;
  st.rows = values.size();
  for (size_t i = 0; i < st.rows; ++i)
    if (values.IsNull(i)) ++st.nulls;

  switch (values.type()) {
    case Type::kInt64: {
      const auto& v = values.ints();
      st.runs = CountRuns(v);
      std::unordered_set<int64_t> distinct(v.begin(), v.end());
      st.distinct = distinct.size();
      if (!v.empty()) {
        const auto [mn, mx] = std::minmax_element(v.begin(), v.end());
        st.int_min = *mn;
        st.int_max = *mx;
      }
      break;
    }
    case Type::kDouble: {
      const auto& v = values.doubles();
      st.runs = CountRuns(v);
      std::unordered_set<double> distinct(v.begin(), v.end());
      st.distinct = distinct.size();
      break;
    }
    case Type::kString: {
      const auto& v = values.strings();
      st.runs = CountRuns(v);
      std::unordered_set<std::string> distinct;
      for (const auto& s : v) {
        st.string_bytes += s.size();
        if (distinct.insert(s).second) st.distinct_string_bytes += s.size();
      }
      st.distinct = distinct.size();
      break;
    }
  }
  return st;
}

CompressionAdvice AdviseEncoding(const ColumnVector& values) {
  const SegmentValueStats st = CollectSegmentStats(values);
  const size_t n = st.rows;
  const Type type = values.type();

  // Payload-byte estimates per encoding, mirroring the shapes the encoders
  // emit (EncodedColumn::MemoryBytes counts the same vectors). The null
  // bitmap is identical across encodings, so it cancels out of the choice
  // and is left out of every estimate.
  const size_t value_bytes =
      type == Type::kString
          ? sizeof(std::string)  // per-slot header; payload added explicitly
          : 8;

  CompressionAdvice advice;
  auto& cand = advice.candidates;
  for (size_t e = 0; e < kNumEncodings; ++e)
    cand[e].encoding = static_cast<EncodingType>(e);

  const auto idx = [](EncodingType t) { return static_cast<size_t>(t); };

  // PLAIN: the raw slots.
  cand[idx(EncodingType::kPlain)].applicable = true;
  cand[idx(EncodingType::kPlain)].bytes = n * value_bytes + st.string_bytes;

  // DICTIONARY: one 4-byte code per slot plus the distinct entries.
  if (type != Type::kDouble) {
    auto& c = cand[idx(EncodingType::kDictionary)];
    c.applicable = true;
    c.bytes = n * 4 + st.distinct * value_bytes + st.distinct_string_bytes;
  }

  // RLE: one value and one 4-byte end offset per run. Run payloads are
  // approximated with the column's mean string length.
  {
    auto& c = cand[idx(EncodingType::kRle)];
    c.applicable = true;
    const size_t avg_len = n == 0 ? 0 : st.string_bytes / n;
    c.bytes = st.runs * (value_bytes + 4 + avg_len);
  }

  // FOR-BITPACK: the frame base plus bit_width bits per slot. Inapplicable
  // off INT64 or when the range overflows the encoder's 2^62 guard.
  if (type == Type::kInt64) {
    const uint64_t range = static_cast<uint64_t>(st.int_max) -
                           static_cast<uint64_t>(st.int_min);
    if (n == 0 || range <= (1ULL << 62)) {
      auto& c = cand[idx(EncodingType::kForBitPack)];
      c.applicable = true;
      c.bytes = 8 + (n * BitsFor(range) + 7) / 8;
    }
  }

  // Pick the smallest estimate, but only leave PLAIN for a compressed
  // encoding that wins by at least 1/8 of PLAIN's footprint — decode
  // overhead is not worth marginal savings. Ties keep the earlier encoding
  // in enum order (deterministic).
  const size_t plain = cand[idx(EncodingType::kPlain)].bytes;
  size_t best = plain - plain / 8;
  advice.chosen = EncodingType::kPlain;
  for (const EncodingType t : {EncodingType::kDictionary, EncodingType::kRle,
                               EncodingType::kForBitPack}) {
    const auto& c = cand[idx(t)];
    if (c.applicable && c.bytes < best) {
      advice.chosen = t;
      best = c.bytes;
    }
  }
  return advice;
}

}  // namespace htap
