// ColumnVector: the decoded, typed, contiguous column representation used
// by the columnar engine between encode/decode boundaries and as operator
// scratch space. The AP scan paths iterate these with tight loops the
// compiler can vectorize (the survey's "SIMD-style" columnar execution).

#ifndef HTAP_COLUMNAR_COLUMN_VECTOR_H_
#define HTAP_COLUMNAR_COLUMN_VECTOR_H_

#include <cassert>
#include <string>
#include <variant>
#include <vector>

#include "common/bitmap.h"
#include "types/value.h"

namespace htap {

/// A typed column of values with a null bitmap.
class ColumnVector {
 public:
  explicit ColumnVector(Type type = Type::kInt64) : type_(type) {
    switch (type) {
      case Type::kInt64: data_ = std::vector<int64_t>{}; break;
      case Type::kDouble: data_ = std::vector<double>{}; break;
      case Type::kString: data_ = std::vector<std::string>{}; break;
    }
  }

  Type type() const { return type_; }
  size_t size() const { return size_; }

  void Reserve(size_t n) {
    std::visit([n](auto& v) { v.reserve(n); }, data_);
  }

  void AppendInt64(int64_t v) { ints().push_back(v); ++size_; }
  void AppendDouble(double v) { doubles().push_back(v); ++size_; }
  void AppendString(std::string v) {
    strings().push_back(std::move(v));
    ++size_;
  }

  void AppendNull() {
    nulls_.Set(size_);
    switch (type_) {
      case Type::kInt64: ints().push_back(0); break;
      case Type::kDouble: doubles().push_back(0); break;
      case Type::kString: strings().push_back({}); break;
    }
    ++size_;
  }

  /// Appends a Value; NULL values go through the null bitmap.
  void AppendValue(const Value& v) {
    if (v.is_null()) {
      AppendNull();
      return;
    }
    switch (type_) {
      case Type::kInt64: AppendInt64(v.AsInt64()); break;
      case Type::kDouble: AppendDouble(v.AsDouble()); break;
      case Type::kString: AppendString(v.AsString()); break;
    }
  }

  bool IsNull(size_t i) const { return nulls_.Test(i); }

  int64_t GetInt64(size_t i) const { return ints()[i]; }
  double GetDouble(size_t i) const { return doubles()[i]; }
  const std::string& GetString(size_t i) const { return strings()[i]; }

  Value GetValue(size_t i) const {
    if (IsNull(i)) return Value::Null();
    switch (type_) {
      case Type::kInt64: return Value(GetInt64(i));
      case Type::kDouble: return Value(GetDouble(i));
      case Type::kString: return Value(GetString(i));
    }
    return Value::Null();
  }

  const std::vector<int64_t>& ints() const {
    return std::get<std::vector<int64_t>>(data_);
  }
  const std::vector<double>& doubles() const {
    return std::get<std::vector<double>>(data_);
  }
  const std::vector<std::string>& strings() const {
    return std::get<std::vector<std::string>>(data_);
  }
  std::vector<int64_t>& ints() { return std::get<std::vector<int64_t>>(data_); }
  std::vector<double>& doubles() {
    return std::get<std::vector<double>>(data_);
  }
  std::vector<std::string>& strings() {
    return std::get<std::vector<std::string>>(data_);
  }

  const Bitmap& nulls() const { return nulls_; }

  size_t MemoryBytes() const {
    size_t b = sizeof(*this) + nulls_.MemoryBytes();
    switch (type_) {
      case Type::kInt64: b += ints().capacity() * 8; break;
      case Type::kDouble: b += doubles().capacity() * 8; break;
      case Type::kString:
        // Whole vector allocation (slack slots included) + heap payloads.
        b += strings().capacity() * sizeof(std::string);
        for (const auto& s : strings()) b += s.capacity();
        break;
    }
    return b;
  }

 private:
  Type type_;
  std::variant<std::vector<int64_t>, std::vector<double>,
               std::vector<std::string>>
      data_;
  Bitmap nulls_;
  size_t size_ = 0;
};

}  // namespace htap

#endif  // HTAP_COLUMNAR_COLUMN_VECTOR_H_
