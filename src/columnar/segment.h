// Segment: one immutable encoded column within a row group, carrying a
// zone map (min/max) used by the scan paths to skip whole groups — the
// in-memory compression-unit design (Oracle IMCU / HANA Main) from the
// survey's architecture (a) and (d) discussions.

#ifndef HTAP_COLUMNAR_SEGMENT_H_
#define HTAP_COLUMNAR_SEGMENT_H_

#include "columnar/encoding.h"

namespace htap {

class Segment {
 public:
  Segment() = default;

  /// Builds a segment from decoded values, choosing the encoding
  /// automatically (or forcing one for tests/benchmarks).
  static Segment Build(const ColumnVector& values);
  static Segment BuildWithEncoding(const ColumnVector& values,
                                   EncodingType enc);

  size_t size() const { return data_.num_values; }
  Type type() const { return data_.type; }
  EncodingType encoding() const { return data_.encoding; }

  /// Zone map. Min/max ignore NULLs; for all-NULL segments both are NULL.
  const Value& min() const { return min_; }
  const Value& max() const { return max_; }
  bool has_nulls() const { return has_nulls_; }

  /// True if no value in [min,max] can satisfy `op value` — the scan skips
  /// the whole segment. op is one of "<", "<=", ">", ">=", "=", "!=".
  bool CanSkip(const std::string& op, const Value& v) const;

  Value Get(size_t i) const { return EncodedGet(data_, i); }
  bool IsNull(size_t i) const { return data_.nulls.Test(i); }
  ColumnVector Decode() const { return ::htap::Decode(data_); }

  const EncodedColumn& encoded() const { return data_; }

  size_t MemoryBytes() const { return data_.MemoryBytes(); }

 private:
  EncodedColumn data_;
  Value min_, max_;
  bool has_nulls_ = false;
};

}  // namespace htap

#endif  // HTAP_COLUMNAR_SEGMENT_H_
