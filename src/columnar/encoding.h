// Column encodings: PLAIN, DICTIONARY, RLE, and FOR-bit-packing.
//
// These are the compression techniques the surveyed systems use in their
// column stores (dictionary-encoded sorting merge in SAP HANA, IMCU
// compression units in Oracle, etc.). A heuristic analyzer picks the
// encoding per segment from value statistics.

#ifndef HTAP_COLUMNAR_ENCODING_H_
#define HTAP_COLUMNAR_ENCODING_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "columnar/column_vector.h"
#include "common/status.h"

namespace htap {

enum class EncodingType : uint8_t {
  kPlain = 0,
  kDictionary = 1,
  kRle = 2,
  kForBitPack = 3,  // frame-of-reference + bit packing (INT64 only)
};

inline constexpr size_t kNumEncodings = 4;

const char* EncodingName(EncodingType t);

/// Physical column-store footprint broken down by segment encoding, indexed
/// by EncodingType. Aggregated per ColumnTable and surfaced through
/// EngineStats / Database::Stats.
struct EncodingBreakdown {
  std::array<size_t, kNumEncodings> segments{};
  std::array<size_t, kNumEncodings> bytes{};

  void Merge(const EncodingBreakdown& o) {
    for (size_t e = 0; e < kNumEncodings; ++e) {
      segments[e] += o.segments[e];
      bytes[e] += o.bytes[e];
    }
  }
};

/// An encoded, immutable column payload.
struct EncodedColumn {
  EncodingType encoding = EncodingType::kPlain;
  Type type = Type::kInt64;
  uint32_t num_values = 0;

  // PLAIN: `ints`/`doubles`/`strings` hold raw values.
  // DICTIONARY: `strings` or `ints` hold the dictionary; `codes` the ids.
  // RLE: `ints`/`doubles`/`strings` hold run values; `run_ends[i]` is the
  //      exclusive end offset of run i (cumulative, binary-searchable).
  // FOR_BITPACK: `ints[0]` = frame base, `bit_width`, `packed` words.
  std::vector<int64_t> ints;
  std::vector<double> doubles;
  std::vector<std::string> strings;
  std::vector<uint32_t> codes;
  std::vector<uint32_t> run_ends;
  std::vector<uint64_t> packed;
  uint8_t bit_width = 0;
  Bitmap nulls;

  size_t MemoryBytes() const;
};

/// Encodes `in` with the given encoding. FOR-bit-pack on non-INT64 or
/// dictionary-on-double fall back to PLAIN.
EncodedColumn Encode(const ColumnVector& in, EncodingType enc);

/// Decodes back to a ColumnVector (encode∘decode == identity).
ColumnVector Decode(const EncodedColumn& col);

/// Picks an encoding from value statistics: RLE when average run length is
/// high, dictionary when NDV is small, FOR-bit-pack for narrow-range ints,
/// else plain.
EncodingType ChooseEncoding(const ColumnVector& in);

/// Random access into an encoded column without full materialization.
Value EncodedGet(const EncodedColumn& col, size_t i);

/// Typed random access into a FOR-bit-packed column (no Value boxing).
/// `col.encoding` must be kForBitPack; ignores the null bitmap — callers
/// mask nulls themselves. Handles bit_width == 0 (all values equal base).
int64_t ForUnpackAt(const EncodedColumn& col, size_t i);

}  // namespace htap

#endif  // HTAP_COLUMNAR_ENCODING_H_
