// Core transaction vocabulary: commit sequence numbers (CSNs), transaction
// ids, snapshots, and change events.
//
// Timestamp scheme (Hekaton-style): version begin/end fields hold either a
// CSN (high bit clear) or the id of the still-active transaction that wrote
// them (high bit set). Commit replaces txn ids with the commit CSN.

#ifndef HTAP_TXN_TYPES_H_
#define HTAP_TXN_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "types/row.h"

namespace htap {

/// Commit sequence number. Strictly increasing across commits; doubles as
/// the snapshot timestamp for readers.
using CSN = uint64_t;

/// Sentinel: version is the current (live) one.
inline constexpr CSN kMaxCSN = ~0ULL;

/// Transaction-id bit: raw timestamps with this bit set name an in-flight
/// transaction rather than a CSN.
inline constexpr uint64_t kTxnIdBit = 1ULL << 63;

inline bool IsTxnId(uint64_t raw) {
  return raw != kMaxCSN && (raw & kTxnIdBit) != 0;
}

/// A consistent read view: sees all versions committed at or before
/// `begin_csn`, plus its own transaction's writes (if txn_id != 0).
struct Snapshot {
  CSN begin_csn = 0;
  uint64_t txn_id = 0;  // 0 for read-only snapshot queries
};

/// Logical operation in a change stream / WAL record.
enum class ChangeOp : uint8_t { kInsert = 0, kUpdate = 1, kDelete = 2 };

inline const char* ChangeOpName(ChangeOp op) {
  switch (op) {
    case ChangeOp::kInsert: return "INSERT";
    case ChangeOp::kUpdate: return "UPDATE";
    case ChangeOp::kDelete: return "DELETE";
  }
  return "?";
}

/// A committed row change, as published to delta stores, replication
/// streams, and the column-store sync pipeline.
struct ChangeEvent {
  uint32_t table_id = 0;
  ChangeOp op = ChangeOp::kInsert;
  Key key = 0;
  Row row;       // full new image (empty for deletes)
  CSN csn = 0;   // commit CSN
};

/// Consumer of committed changes (delta stores, replicas, sync pipelines).
class ChangeSink {
 public:
  virtual ~ChangeSink() = default;
  /// Called once per commit, in commit (CSN) order, after the versions are
  /// stamped. Must not call back into the transaction manager.
  virtual void OnCommit(const std::vector<ChangeEvent>& events) = 0;
};

}  // namespace htap

#endif  // HTAP_TXN_TYPES_H_
