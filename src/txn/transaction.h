// Transaction object: snapshot, state, undo log, and pending change events.

#ifndef HTAP_TXN_TRANSACTION_H_
#define HTAP_TXN_TRANSACTION_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "txn/types.h"

namespace htap {

class MvccRowStore;
struct VersionChain;
struct RowVersion;

enum class TxnState : uint8_t { kActive = 0, kCommitted = 1, kAborted = 2 };

/// One entry in a transaction's undo log; enough to stamp on commit or roll
/// back on abort.
struct UndoEntry {
  enum class Kind : uint8_t { kInsert, kUpdate, kDelete };
  Kind kind;
  MvccRowStore* store = nullptr;
  VersionChain* chain = nullptr;
  RowVersion* new_version = nullptr;  // insert/update
  RowVersion* old_version = nullptr;  // update/delete (version whose end we set)
};

/// A transaction handle. Created by TransactionManager::Begin; must end in
/// exactly one Commit or Abort. Not thread-safe: one thread drives a txn.
class Transaction {
 public:
  Transaction(uint64_t id, CSN begin_csn) : id_(id), begin_csn_(begin_csn) {}

  uint64_t id() const { return id_; }
  CSN begin_csn() const { return begin_csn_; }
  // order: acquire pairs with set_commit_csn/set_state release — a scan
  // that observes kCommitted + CSN through GetCommitInfo must also see the
  // version stamps the committer wrote first.
  CSN commit_csn() const { return commit_csn_.load(std::memory_order_acquire); }

  TxnState state() const { return state_.load(std::memory_order_acquire); }  // order: ^
  bool active() const { return state() == TxnState::kActive; }

  Snapshot snapshot() const { return Snapshot{begin_csn_, id_}; }

  /// Undo log (row-store internal).
  std::vector<UndoEntry>& undo() { return undo_; }
  /// Change events to publish on commit.
  std::vector<ChangeEvent>& changes() { return changes_; }

  size_t num_writes() const { return undo_.size(); }

 private:
  friend class TransactionManager;

  // order: release pairs with the acquire accessors above — publishes the
  // commit outcome (and the stamps written before it) to concurrent scans.
  void set_state(TxnState s) { state_.store(s, std::memory_order_release); }
  // Atomic like state_: the committing thread stamps it under commit_mu_
  // while concurrent scans resolve it through GetCommitInfo, which holds
  // only active_mu_.
  void set_commit_csn(CSN csn) {
    commit_csn_.store(csn, std::memory_order_release);  // order: ^
  }

  const uint64_t id_;
  const CSN begin_csn_;
  std::atomic<CSN> commit_csn_{0};
  std::atomic<TxnState> state_{TxnState::kActive};
  std::vector<UndoEntry> undo_;
  std::vector<ChangeEvent> changes_;
};

}  // namespace htap

#endif  // HTAP_TXN_TRANSACTION_H_
