#include "txn/txn_manager.h"

#include <algorithm>

#include "storage/mvcc_row_store.h"

namespace htap {

TransactionManager::TransactionManager(WalWriter* wal, size_t commit_shards)
    : wal_(wal) {
  const size_t n = std::clamp<size_t>(commit_shards, 1, 64);
  shards_.reserve(n);
  active_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<CommitShard>());
    active_.push_back(std::make_unique<ActiveShard>());
  }
}

std::unique_ptr<Transaction> TransactionManager::Begin() {
  const uint64_t id = next_txn_id_.fetch_add(1, std::memory_order_relaxed);
  // order: acquire pairs with the acq_rel CAS in RecomputeCommitted — every
  // version stamped at or below this watermark is fully published before we
  // read at it.
  const CSN begin = committed_.load(std::memory_order_acquire);
  auto txn = std::make_unique<Transaction>(id, begin);
  ActiveShard& as = active_shard(id);
  {
    MutexLock lk(&as.mu);
    as.txns.emplace(id, txn.get());
  }
  return txn;
}

void TransactionManager::EraseActive(uint64_t txn_id) {
  ActiveShard& as = active_shard(txn_id);
  MutexLock lk(&as.mu);
  as.txns.erase(txn_id);
}

Status TransactionManager::Commit(Transaction* txn) {
  if (!txn->active()) return Status::Aborted("transaction not active");

  if (txn->undo().empty()) {
    // Read-only: nothing to stamp, log, or publish.
    txn->set_state(TxnState::kCommitted);
    EraseActive(txn->id());
    commits_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }

  if (wal_ != nullptr) {
    WalRecord rec;
    rec.type = WalRecordType::kCommit;
    rec.txn_id = txn->id();
    wal_->Append(rec);
    HTAP_RETURN_NOT_OK(wal_->Sync());  // group commit point
  }

  // Allocate the CSN and enter it into our shard's in-flight frontier in
  // one critical section: a concurrent frontier scan either sees this CSN
  // in the shard or runs before the allocation counter covered it — never
  // an allocated-but-invisible gap.
  CommitShard& cs = commit_shard(txn->id());
  CSN csn;
  {
    MutexLock lk(&cs.mu);
    // order: seq_cst — this increment and RecomputeCommitted's bound load
    // must agree on a single total order so an allocated CSN can never be
    // both past the bound and missing from every shard's frontier.
    csn = allocated_.fetch_add(1, std::memory_order_seq_cst) + 1;
    cs.inflight.insert(csn);
  }
  txn->set_commit_csn(csn);

  // Stamp versions: begin fields of created versions, end fields of
  // superseded/deleted ones; let the owning store settle its counters.
  // No lock needed — the fields are atomic and this CSN stays above the
  // published watermark until it leaves the frontier below.
  for (const UndoEntry& u : txn->undo()) {
    // order: release pairs with the acquire stamp loads in
    // MvccRowStore::Visible — a reader that sees the commit CSN also sees
    // the row data the transaction wrote.
    if (u.new_version != nullptr)
      u.new_version->begin.store(csn, std::memory_order_release);
    if (u.old_version != nullptr)
      u.old_version->end.store(csn, std::memory_order_release);  // order: ^
    u.store->AccountCommittedEntry(u);
  }
  txn->set_state(TxnState::kCommitted);

  // Queue change events before retiring the CSN so publication can never
  // run ahead of enqueue. The batch is moved out: the Transaction may be
  // destroyed as soon as we return, possibly before a later committer
  // drains this CSN from the queue.
  if (!txn->changes().empty()) {
    for (ChangeEvent& ev : txn->changes()) ev.csn = csn;
    MutexLock lk(&publish_mu_);
    pending_.emplace(csn, std::move(txn->changes()));
  }

  // Retire the CSN from the frontier: every version is stamped, so the
  // watermark may now advance past it.
  {
    MutexLock lk(&cs.mu);
    cs.inflight.erase(csn);
  }
  RecomputeCommitted();
  DrainPublishQueue();

  EraseActive(txn->id());
  commits_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

void TransactionManager::RecomputeCommitted() {
  // Load the allocation counter *before* scanning shards: a CSN allocated
  // after this load is > `bound` and cannot be missed; one allocated before
  // it is either still in its shard (we lock each shard, so we see it) or
  // already retired (fully stamped — safe to cover).
  // order: seq_cst — the other side of the total-order argument at the
  // fetch_add in Commit; see the comment block above.
  const CSN bound = allocated_.load(std::memory_order_seq_cst);
  CSN w = bound;
  for (const auto& shard : shards_) {
    MutexLock lk(&shard->mu);
    if (!shard->inflight.empty())
      w = std::min(w, *shard->inflight.begin() - 1);
  }
  CSN cur = committed_.load(std::memory_order_relaxed);
  // order: acq_rel — release publishes all version stamps at or below `w`
  // to Begin()'s acquire load; acquire keeps the monotonic-advance loop
  // from acting on a stale frontier.
  while (cur < w && !committed_.compare_exchange_weak(
                        cur, w, std::memory_order_acq_rel,
                        std::memory_order_relaxed)) {
  }
}

void TransactionManager::DrainPublishQueue() {
  MutexLock lk(&publish_mu_);
  while (!pending_.empty()) {
    const auto it = pending_.begin();
    // order: acquire pairs with the watermark CAS release — change events
    // drain only after every covered version stamp is visible.
    if (it->first > committed_.load(std::memory_order_acquire)) break;
    {
      // publish_mu_ (kTxnCommit) -> sinks_mu_ (kTxnSinks): ascending ranks.
      // Holding publish_mu_ across OnCommit keeps the global CSN order even
      // when several committers race to drain.
      MutexLock slk(&sinks_mu_);
      for (ChangeSink* sink : sinks_) sink->OnCommit(it->second);
    }
    pending_.erase(it);
  }
}

Status TransactionManager::Abort(Transaction* txn) {
  if (!txn->active()) return Status::Aborted("transaction not active");
  RollbackWrites(txn);
  if (wal_ != nullptr && !txn->undo().empty()) {
    WalRecord rec;
    rec.type = WalRecordType::kAbort;
    rec.txn_id = txn->id();
    wal_->Append(rec);  // no sync needed: abort is the default outcome
  }
  txn->set_state(TxnState::kAborted);
  EraseActive(txn->id());
  aborts_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

void TransactionManager::RollbackWrites(Transaction* txn) {
  auto& undo = txn->undo();
  for (auto it = undo.rbegin(); it != undo.rend(); ++it)
    it->store->RollbackEntry(*it);
}

bool TransactionManager::GetCommitInfo(uint64_t txn_id, CSN* commit_csn,
                                       TxnState* state) const {
  const ActiveShard& as = active_shard(txn_id);
  MutexLock lk(&as.mu);
  const auto it = as.txns.find(txn_id);
  if (it == as.txns.end()) return false;
  *state = it->second->state();
  *commit_csn = it->second->commit_csn();
  return true;
}

CSN TransactionManager::Watermark() const {
  // committed_ is loaded first and only grows, and every transaction that
  // begins after this load gets begin_csn >= wm, so the result is a valid
  // lower bound even though shards are scanned one at a time.
  // order: acquire pairs with the watermark CAS release (same edge as
  // Begin()); a vacuum driven by this bound must see the covered stamps.
  CSN wm = committed_.load(std::memory_order_acquire);
  for (const auto& shard : active_) {
    MutexLock lk(&shard->mu);
    for (const auto& [id, txn] : shard->txns) wm = std::min(wm, txn->begin_csn());
  }
  return wm;
}

void TransactionManager::RegisterSink(ChangeSink* sink) {
  MutexLock lk(&sinks_mu_);
  sinks_.push_back(sink);
}

void TransactionManager::UnregisterSink(ChangeSink* sink) {
  MutexLock lk(&sinks_mu_);
  sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), sink), sinks_.end());
}

}  // namespace htap
