#include "txn/txn_manager.h"

#include <algorithm>

#include "storage/mvcc_row_store.h"

namespace htap {

TransactionManager::TransactionManager(WalWriter* wal) : wal_(wal) {}

std::unique_ptr<Transaction> TransactionManager::Begin() {
  const uint64_t id = next_txn_id_.fetch_add(1, std::memory_order_relaxed);
  const CSN begin = clock_.load(std::memory_order_acquire);
  auto txn = std::make_unique<Transaction>(id, begin);
  {
    MutexLock lk(&active_mu_);
    active_.emplace(id, txn.get());
  }
  return txn;
}

Status TransactionManager::Commit(Transaction* txn) {
  if (!txn->active()) return Status::Aborted("transaction not active");

  if (txn->undo().empty()) {
    // Read-only: nothing to stamp, log, or publish.
    txn->set_state(TxnState::kCommitted);
    MutexLock lk(&active_mu_);
    active_.erase(txn->id());
    commits_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }

  if (wal_ != nullptr) {
    WalRecord rec;
    rec.type = WalRecordType::kCommit;
    rec.txn_id = txn->id();
    wal_->Append(rec);
    HTAP_RETURN_NOT_OK(wal_->Sync());  // group commit point
  }

  {
    MutexLock commit_lk(&commit_mu_);
    const CSN csn = clock_.load(std::memory_order_relaxed) + 1;
    txn->set_commit_csn(csn);

    // Stamp versions: begin fields of created versions, end fields of
    // superseded/deleted ones; let the owning store settle its counters.
    for (const UndoEntry& u : txn->undo()) {
      if (u.new_version != nullptr)
        u.new_version->begin.store(csn, std::memory_order_release);
      if (u.old_version != nullptr)
        u.old_version->end.store(csn, std::memory_order_release);
      u.store->AccountCommittedEntry(u);
    }
    txn->set_state(TxnState::kCommitted);
    // Make the CSN visible to new snapshots only after stamping, so a
    // snapshot at `csn` always sees fully stamped versions or resolves the
    // txn id through GetCommitInfo.
    clock_.store(csn, std::memory_order_release);

    // Publish in CSN order (still under commit_mu_).
    if (!txn->changes().empty()) {
      for (ChangeEvent& ev : txn->changes()) ev.csn = csn;
      MutexLock slk(&sinks_mu_);
      for (ChangeSink* sink : sinks_) sink->OnCommit(txn->changes());
    }
  }

  {
    MutexLock lk(&active_mu_);
    active_.erase(txn->id());
  }
  commits_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status TransactionManager::Abort(Transaction* txn) {
  if (!txn->active()) return Status::Aborted("transaction not active");
  RollbackWrites(txn);
  if (wal_ != nullptr && !txn->undo().empty()) {
    WalRecord rec;
    rec.type = WalRecordType::kAbort;
    rec.txn_id = txn->id();
    wal_->Append(rec);  // no sync needed: abort is the default outcome
  }
  txn->set_state(TxnState::kAborted);
  {
    MutexLock lk(&active_mu_);
    active_.erase(txn->id());
  }
  aborts_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

void TransactionManager::RollbackWrites(Transaction* txn) {
  auto& undo = txn->undo();
  for (auto it = undo.rbegin(); it != undo.rend(); ++it) it->store->RollbackEntry(*it);
}

bool TransactionManager::GetCommitInfo(uint64_t txn_id, CSN* commit_csn,
                                       TxnState* state) const {
  MutexLock lk(&active_mu_);
  const auto it = active_.find(txn_id);
  if (it == active_.end()) return false;
  *state = it->second->state();
  *commit_csn = it->second->commit_csn();
  return true;
}

CSN TransactionManager::Watermark() const {
  MutexLock lk(&active_mu_);
  CSN wm = clock_.load(std::memory_order_acquire);
  for (const auto& [id, txn] : active_) wm = std::min(wm, txn->begin_csn());
  return wm;
}

void TransactionManager::RegisterSink(ChangeSink* sink) {
  MutexLock lk(&sinks_mu_);
  sinks_.push_back(sink);
}

void TransactionManager::UnregisterSink(ChangeSink* sink) {
  MutexLock lk(&sinks_mu_);
  sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), sink), sinks_.end());
}

}  // namespace htap
