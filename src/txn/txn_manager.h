// TransactionManager: timestamp oracle, snapshot provider, commit/abort
// protocol, and commit-ordered change publication.
//
// This is the "MVCC + logging" technique of Table 2 (TP row): every DML
// writes a redo record into the WAL (via the row store), commit appends a
// commit record and group-syncs the log, then stamps versions with the
// commit CSN and publishes the change events to registered sinks (delta
// stores, replication streams) in strict CSN order.
//
// Commit structures are sharded (DESIGN.md §15): CSNs come from a single
// atomic counter, but the set of in-flight (allocated, not yet fully
// stamped) CSNs is partitioned across `commit_shards` mutexes keyed by txn
// id. The published committed CSN — what snapshots read — is the min over
// all shard frontiers minus one, capped by the allocation counter, so a
// snapshot can never observe a CSN whose versions are still being stamped.
// Sink publication stays globally CSN-ordered via a small pending queue
// drained under `publish_mu_`; no commit ever holds a global mutex across
// WAL sync, stamping, and publication the way the old `commit_mu_` did.

#ifndef HTAP_TXN_TXN_MANAGER_H_
#define HTAP_TXN_TXN_MANAGER_H_

#include <atomic>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "txn/transaction.h"
#include "txn/types.h"
#include "wal/wal.h"

namespace htap {

class TransactionManager {
 public:
  /// `wal` may be null (no durability; used by pure in-memory configs).
  /// `commit_shards` partitions the commit frontier + active-txn maps;
  /// values are clamped to [1, 64].
  explicit TransactionManager(WalWriter* wal = nullptr,
                              size_t commit_shards = kDefaultCommitShards);

  TransactionManager(const TransactionManager&) = delete;
  TransactionManager& operator=(const TransactionManager&) = delete;

  static constexpr size_t kDefaultCommitShards = 8;

  /// Starts a transaction with a snapshot of everything committed so far.
  std::unique_ptr<Transaction> Begin();

  /// Commits: WAL commit record + group sync, CSN assignment, version
  /// stamping, ordered change publication. After return the Transaction
  /// object may be destroyed.
  Status Commit(Transaction* txn);

  /// Rolls back all of the transaction's writes.
  Status Abort(Transaction* txn);

  /// Read-only snapshot at "now". Every version with a CSN at or below the
  /// snapshot is guaranteed fully stamped (min-frontier invariant).
  Snapshot CurrentSnapshot() const {
    // order: acquire pairs with the watermark CAS release in
    // RecomputeCommitted — stamps covered by the snapshot are visible.
    return Snapshot{committed_.load(std::memory_order_acquire), 0};
  }

  /// Latest committed CSN (the published min-frontier watermark).
  CSN LastCommittedCsn() const {
    return committed_.load(std::memory_order_acquire);  // order: ^
  }

  /// Highest CSN handed out so far (>= LastCommittedCsn; test hook).
  CSN LastAllocatedCsn() const {
    // order: acquire for symmetry with the seq_cst allocation site; callers
    // compare against the committed watermark read above.
    return allocated_.load(std::memory_order_acquire);
  }

  /// Commit state of an in-flight-or-committing transaction by id. Returns
  /// false if unknown (i.e. fully finished and stamped — caller re-reads the
  /// version stamp).
  bool GetCommitInfo(uint64_t txn_id, CSN* commit_csn, TxnState* state) const;

  /// Oldest begin CSN among active transactions (or the committed CSN if
  /// none): versions dead before this are unreachable and can be vacuumed.
  CSN Watermark() const;

  /// Registers a sink to receive committed changes in CSN order.
  void RegisterSink(ChangeSink* sink);
  void UnregisterSink(ChangeSink* sink);

  // Counters (diagnostics & benchmarks).
  uint64_t commits() const { return commits_.load(std::memory_order_relaxed); }
  uint64_t aborts() const { return aborts_.load(std::memory_order_relaxed); }
  uint64_t conflicts() const {
    return conflicts_.load(std::memory_order_relaxed);
  }
  void RecordConflict() { conflicts_.fetch_add(1, std::memory_order_relaxed); }

  WalWriter* wal() const { return wal_; }
  size_t commit_shard_count() const { return shards_.size(); }

 private:
  /// In-flight commit frontier for one shard: CSNs allocated to committing
  /// transactions whose versions are not yet fully stamped. Allocation and
  /// insertion happen atomically under `mu` so a frontier scan can never
  /// miss an allocated-but-uninserted CSN.
  struct alignas(64) CommitShard {
    Mutex mu{LockRank::kTxnShard, "txn-commit-shard"};
    std::set<CSN> inflight GUARDED_BY(mu);
  };

  struct alignas(64) ActiveShard {
    mutable Mutex mu{LockRank::kTxnActive, "txn-active"};
    std::unordered_map<uint64_t, Transaction*> txns GUARDED_BY(mu);
  };

  CommitShard& commit_shard(uint64_t txn_id) {
    return *shards_[txn_id % shards_.size()];
  }
  ActiveShard& active_shard(uint64_t txn_id) const {
    return *active_[txn_id % active_.size()];
  }

  void EraseActive(uint64_t txn_id);

  /// Recomputes committed_ = min over shards of (min inflight - 1), capped
  /// by allocated_, and publishes it monotonically (CAS-max).
  void RecomputeCommitted();

  /// Publishes every pending change batch whose CSN is covered by
  /// committed_, in CSN order, then drops it from the queue.
  void DrainPublishQueue();

  void RollbackWrites(Transaction* txn);

  WalWriter* const wal_;
  std::atomic<CSN> allocated_{1};   // last CSN handed to a committer
  std::atomic<CSN> committed_{1};   // published min-frontier watermark
  std::atomic<uint64_t> next_txn_id_{kTxnIdBit | 1};

  std::vector<std::unique_ptr<CommitShard>> shards_;
  std::vector<std::unique_ptr<ActiveShard>> active_;

  // Orders sink publication by CSN across concurrent committers. Pending
  // batches wait here until the watermark covers them.
  mutable Mutex publish_mu_{LockRank::kTxnCommit, "txn-publish"};
  std::map<CSN, std::vector<ChangeEvent>> pending_ GUARDED_BY(publish_mu_);

  Mutex sinks_mu_{LockRank::kTxnSinks, "txn-sinks"};
  std::vector<ChangeSink*> sinks_ GUARDED_BY(sinks_mu_);

  std::atomic<uint64_t> commits_{0};
  std::atomic<uint64_t> aborts_{0};
  std::atomic<uint64_t> conflicts_{0};
};

}  // namespace htap

#endif  // HTAP_TXN_TXN_MANAGER_H_
