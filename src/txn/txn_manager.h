// TransactionManager: timestamp oracle, snapshot provider, commit/abort
// protocol, and commit-ordered change publication.
//
// This is the "MVCC + logging" technique of Table 2 (TP row): every DML
// writes a redo record into the WAL (via the row store), commit appends a
// commit record and group-syncs the log, then stamps versions with the
// commit CSN and publishes the change events to registered sinks (delta
// stores, replication streams) in strict CSN order.

#ifndef HTAP_TXN_TXN_MANAGER_H_
#define HTAP_TXN_TXN_MANAGER_H_

#include <atomic>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "txn/transaction.h"
#include "txn/types.h"
#include "wal/wal.h"

namespace htap {

class TransactionManager {
 public:
  /// `wal` may be null (no durability; used by pure in-memory configs).
  explicit TransactionManager(WalWriter* wal = nullptr);

  TransactionManager(const TransactionManager&) = delete;
  TransactionManager& operator=(const TransactionManager&) = delete;

  /// Starts a transaction with a snapshot of everything committed so far.
  std::unique_ptr<Transaction> Begin();

  /// Commits: WAL commit record + group sync, CSN assignment, version
  /// stamping, ordered change publication. After return the Transaction
  /// object may be destroyed.
  Status Commit(Transaction* txn);

  /// Rolls back all of the transaction's writes.
  Status Abort(Transaction* txn);

  /// Read-only snapshot at "now".
  Snapshot CurrentSnapshot() const {
    return Snapshot{clock_.load(std::memory_order_acquire), 0};
  }

  /// Latest committed CSN.
  CSN LastCommittedCsn() const {
    return clock_.load(std::memory_order_acquire);
  }

  /// Commit state of an in-flight-or-committing transaction by id. Returns
  /// false if unknown (i.e. fully finished and stamped — caller re-reads the
  /// version stamp).
  bool GetCommitInfo(uint64_t txn_id, CSN* commit_csn, TxnState* state) const;

  /// Oldest begin CSN among active transactions (or the current clock if
  /// none): versions dead before this are unreachable and can be vacuumed.
  CSN Watermark() const;

  /// Registers a sink to receive committed changes in CSN order.
  void RegisterSink(ChangeSink* sink);
  void UnregisterSink(ChangeSink* sink);

  // Counters (diagnostics & benchmarks).
  uint64_t commits() const { return commits_.load(std::memory_order_relaxed); }
  uint64_t aborts() const { return aborts_.load(std::memory_order_relaxed); }
  uint64_t conflicts() const {
    return conflicts_.load(std::memory_order_relaxed);
  }
  void RecordConflict() { conflicts_.fetch_add(1, std::memory_order_relaxed); }

  WalWriter* wal() const { return wal_; }

 private:
  void RollbackWrites(Transaction* txn);

  WalWriter* const wal_;
  std::atomic<CSN> clock_{1};       // last committed CSN
  std::atomic<uint64_t> next_txn_id_{kTxnIdBit | 1};

  mutable Mutex active_mu_{LockRank::kTxnActive, "txn-active"};
  std::unordered_map<uint64_t, Transaction*> active_ GUARDED_BY(active_mu_);

  // Serializes CSN assignment + sink publication; guards no member directly
  // (the clock is atomic) — it provides the commit-order critical section.
  Mutex commit_mu_{LockRank::kTxnCommit, "txn-commit"};

  Mutex sinks_mu_{LockRank::kTxnSinks, "txn-sinks"};
  std::vector<ChangeSink*> sinks_ GUARDED_BY(sinks_mu_);

  std::atomic<uint64_t> commits_{0};
  std::atomic<uint64_t> aborts_{0};
  std::atomic<uint64_t> conflicts_{0};
};

}  // namespace htap

#endif  // HTAP_TXN_TXN_MANAGER_H_
