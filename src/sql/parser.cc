#include <cctype>

#include "sql/sql.h"

namespace htap {
namespace sql {

namespace {

// ---- Lexer -----------------------------------------------------------

struct Token {
  enum class Kind { kIdent, kNumber, kString, kSymbol, kEnd };
  Kind kind = Kind::kEnd;
  std::string text;   // uppercased for idents
  std::string raw;    // original spelling
};

class Lexer {
 public:
  explicit Lexer(const std::string& in) : in_(in) { Advance(); }

  const Token& peek() const { return cur_; }

  Token Take() {
    Token t = cur_;
    Advance();
    return t;
  }

  bool AcceptIdent(const std::string& upper) {
    if (cur_.kind == Token::Kind::kIdent && cur_.text == upper) {
      Advance();
      return true;
    }
    return false;
  }

  bool AcceptSymbol(const std::string& s) {
    if (cur_.kind == Token::Kind::kSymbol && cur_.text == s) {
      Advance();
      return true;
    }
    return false;
  }

  Status ExpectIdent(const std::string& upper) {
    if (!AcceptIdent(upper))
      return Status::InvalidArgument("expected " + upper + " near '" +
                                     cur_.raw + "'");
    return Status::OK();
  }

  Status ExpectSymbol(const std::string& s) {
    if (!AcceptSymbol(s))
      return Status::InvalidArgument("expected '" + s + "' near '" +
                                     cur_.raw + "'");
    return Status::OK();
  }

 private:
  void Advance() {
    while (pos_ < in_.size() && std::isspace(static_cast<unsigned char>(in_[pos_])))
      ++pos_;
    cur_ = Token{};
    if (pos_ >= in_.size()) {
      cur_.kind = Token::Kind::kEnd;
      return;
    }
    const char c = in_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos_;
      while (pos_ < in_.size() &&
             (std::isalnum(static_cast<unsigned char>(in_[pos_])) ||
              in_[pos_] == '_' || in_[pos_] == '.'))
        ++pos_;
      cur_.kind = Token::Kind::kIdent;
      cur_.raw = in_.substr(start, pos_ - start);
      cur_.text = cur_.raw;
      for (char& ch : cur_.text) ch = static_cast<char>(std::toupper(ch));
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && pos_ + 1 < in_.size() &&
         std::isdigit(static_cast<unsigned char>(in_[pos_ + 1])))) {
      size_t start = pos_;
      ++pos_;
      while (pos_ < in_.size() &&
             (std::isdigit(static_cast<unsigned char>(in_[pos_])) ||
              in_[pos_] == '.'))
        ++pos_;
      cur_.kind = Token::Kind::kNumber;
      cur_.raw = cur_.text = in_.substr(start, pos_ - start);
      return;
    }
    if (c == '\'') {
      ++pos_;
      size_t start = pos_;
      while (pos_ < in_.size() && in_[pos_] != '\'') ++pos_;
      cur_.kind = Token::Kind::kString;
      cur_.raw = cur_.text = in_.substr(start, pos_ - start);
      if (pos_ < in_.size()) ++pos_;  // closing quote
      return;
    }
    // Multi-char operators.
    static const char* two_char[] = {"<=", ">=", "!=", "<>"};
    for (const char* op : two_char) {
      if (in_.compare(pos_, 2, op) == 0) {
        cur_.kind = Token::Kind::kSymbol;
        cur_.raw = cur_.text = op;
        pos_ += 2;
        return;
      }
    }
    cur_.kind = Token::Kind::kSymbol;
    cur_.raw = cur_.text = std::string(1, c);
    ++pos_;
  }

  const std::string& in_;
  size_t pos_ = 0;
  Token cur_;
};

// ---- Parser ----------------------------------------------------------

class Parser {
 public:
  explicit Parser(const std::string& in) : lex_(in) {}

  Result<Statement> ParseStatement() {
    Statement stmt;
    if (lex_.AcceptIdent("SELECT")) {
      stmt.kind = Statement::Kind::kSelect;
      HTAP_RETURN_NOT_OK(ParseSelect(&stmt.select));
    } else if (lex_.AcceptIdent("CREATE")) {
      stmt.kind = Statement::Kind::kCreateTable;
      HTAP_RETURN_NOT_OK(ParseCreate(&stmt.create));
    } else if (lex_.AcceptIdent("INSERT")) {
      stmt.kind = Statement::Kind::kInsert;
      HTAP_RETURN_NOT_OK(ParseInsert(&stmt.insert));
    } else if (lex_.AcceptIdent("UPDATE")) {
      stmt.kind = Statement::Kind::kUpdate;
      HTAP_RETURN_NOT_OK(ParseUpdate(&stmt.update));
    } else if (lex_.AcceptIdent("DELETE")) {
      stmt.kind = Statement::Kind::kDelete;
      HTAP_RETURN_NOT_OK(ParseDelete(&stmt.del));
    } else {
      return Status::InvalidArgument("expected a statement keyword");
    }
    lex_.AcceptSymbol(";");
    if (lex_.peek().kind != Token::Kind::kEnd)
      return Status::InvalidArgument("trailing input after statement");
    return stmt;
  }

 private:
  Result<Value> ParseLiteral() {
    const Token t = lex_.Take();
    if (t.kind == Token::Kind::kNumber) {
      if (t.text.find('.') != std::string::npos)
        return Value(std::stod(t.text));
      return Value(static_cast<int64_t>(std::stoll(t.text)));
    }
    if (t.kind == Token::Kind::kString) return Value(t.raw);
    if (t.kind == Token::Kind::kIdent && t.text == "NULL") return Value::Null();
    return Status::InvalidArgument("expected literal near '" + t.raw + "'");
  }

  // expr := or_term; or_term := and_term (OR and_term)*;
  // and_term := factor (AND factor)*; factor := NOT factor | ( expr ) | cmp
  Result<Expr> ParseExpr() {
    HTAP_ASSIGN_OR_RETURN(Expr lhs, ParseAnd());
    while (lex_.AcceptIdent("OR")) {
      HTAP_ASSIGN_OR_RETURN(Expr rhs, ParseAnd());
      Expr e;
      e.kind = Expr::Kind::kOr;
      e.children = {std::move(lhs), std::move(rhs)};
      lhs = std::move(e);
    }
    return lhs;
  }

  Result<Expr> ParseAnd() {
    HTAP_ASSIGN_OR_RETURN(Expr lhs, ParseFactor());
    while (lex_.AcceptIdent("AND")) {
      HTAP_ASSIGN_OR_RETURN(Expr rhs, ParseFactor());
      Expr e;
      e.kind = Expr::Kind::kAnd;
      e.children = {std::move(lhs), std::move(rhs)};
      lhs = std::move(e);
    }
    return lhs;
  }

  Result<Expr> ParseFactor() {
    if (lex_.AcceptIdent("NOT")) {
      HTAP_ASSIGN_OR_RETURN(Expr inner, ParseFactor());
      Expr e;
      e.kind = Expr::Kind::kNot;
      e.children.push_back(std::move(inner));
      return e;
    }
    if (lex_.AcceptSymbol("(")) {
      HTAP_ASSIGN_OR_RETURN(Expr inner, ParseExpr());
      HTAP_RETURN_NOT_OK(lex_.ExpectSymbol(")"));
      return inner;
    }
    // column op literal | column BETWEEN lit AND lit
    const Token col = lex_.Take();
    if (col.kind != Token::Kind::kIdent)
      return Status::InvalidArgument("expected column near '" + col.raw + "'");
    if (lex_.AcceptIdent("BETWEEN")) {
      HTAP_ASSIGN_OR_RETURN(Value lo, ParseLiteral());
      HTAP_RETURN_NOT_OK(lex_.ExpectIdent("AND"));
      HTAP_ASSIGN_OR_RETURN(Value hi, ParseLiteral());
      Expr e;
      e.kind = Expr::Kind::kBetween;
      e.column = col.raw;
      Expr lo_e, hi_e;
      lo_e.kind = Expr::Kind::kLiteral;
      lo_e.literal = std::move(lo);
      hi_e.kind = Expr::Kind::kLiteral;
      hi_e.literal = std::move(hi);
      e.children = {std::move(lo_e), std::move(hi_e)};
      return e;
    }
    const Token op = lex_.Take();
    if (op.kind != Token::Kind::kSymbol)
      return Status::InvalidArgument("expected operator near '" + op.raw + "'");
    std::string o = op.text;
    if (o == "<>") o = "!=";
    if (o != "=" && o != "!=" && o != "<" && o != "<=" && o != ">" &&
        o != ">=")
      return Status::InvalidArgument("unknown operator '" + o + "'");
    HTAP_ASSIGN_OR_RETURN(Value lit, ParseLiteral());
    Expr e;
    e.kind = Expr::Kind::kCompare;
    e.column = col.raw;
    e.op = o;
    Expr lit_e;
    lit_e.kind = Expr::Kind::kLiteral;
    lit_e.literal = std::move(lit);
    e.children.push_back(std::move(lit_e));
    return e;
  }

  Status ParseSelect(SelectStmt* out) {
    // Select list.
    while (true) {
      SelectItem item;
      if (lex_.AcceptSymbol("*")) {
        item.kind = SelectItem::Kind::kStar;
      } else {
        const Token t = lex_.Take();
        if (t.kind != Token::Kind::kIdent)
          return Status::InvalidArgument("bad select item near '" + t.raw + "'");
        const std::string upper = t.text;
        if ((upper == "COUNT" || upper == "SUM" || upper == "AVG" ||
             upper == "MIN" || upper == "MAX") &&
            lex_.AcceptSymbol("(")) {
          item.kind = SelectItem::Kind::kAggregate;
          item.func = upper;
          if (lex_.AcceptSymbol("*")) {
            item.column = "*";
          } else {
            const Token arg = lex_.Take();
            if (arg.kind != Token::Kind::kIdent)
              return Status::InvalidArgument("bad aggregate argument");
            item.column = arg.raw;
          }
          HTAP_RETURN_NOT_OK(lex_.ExpectSymbol(")"));
        } else {
          item.kind = SelectItem::Kind::kColumn;
          item.column = t.raw;
        }
      }
      if (lex_.AcceptIdent("AS")) {
        const Token a = lex_.Take();
        if (a.kind != Token::Kind::kIdent)
          return Status::InvalidArgument("bad alias");
        item.alias = a.raw;
      }
      out->items.push_back(std::move(item));
      if (!lex_.AcceptSymbol(",")) break;
    }

    HTAP_RETURN_NOT_OK(lex_.ExpectIdent("FROM"));
    Token t = lex_.Take();
    if (t.kind != Token::Kind::kIdent)
      return Status::InvalidArgument("expected table name");
    out->table = t.raw;

    // Chained joins: any number of [INNER] JOIN t ON l = r clauses.
    while (true) {
      if (lex_.AcceptIdent("INNER")) {
        HTAP_RETURN_NOT_OK(lex_.ExpectIdent("JOIN"));
      } else if (!lex_.AcceptIdent("JOIN")) {
        break;
      }
      JoinSpec js;
      t = lex_.Take();
      if (t.kind != Token::Kind::kIdent)
        return Status::InvalidArgument("expected join table");
      js.table = t.raw;
      HTAP_RETURN_NOT_OK(lex_.ExpectIdent("ON"));
      const Token l = lex_.Take();
      HTAP_RETURN_NOT_OK(lex_.ExpectSymbol("="));
      const Token r = lex_.Take();
      if (l.kind != Token::Kind::kIdent || r.kind != Token::Kind::kIdent)
        return Status::InvalidArgument("bad join condition");
      js.left_col = l.raw;
      js.right_col = r.raw;
      out->joins.push_back(std::move(js));
    }

    if (lex_.AcceptIdent("WHERE")) {
      HTAP_ASSIGN_OR_RETURN(Expr e, ParseExpr());
      out->where = std::move(e);
    }
    if (lex_.AcceptIdent("GROUP")) {
      HTAP_RETURN_NOT_OK(lex_.ExpectIdent("BY"));
      while (true) {
        const Token g = lex_.Take();
        if (g.kind != Token::Kind::kIdent)
          return Status::InvalidArgument("bad GROUP BY column");
        out->group_by.push_back(g.raw);
        if (!lex_.AcceptSymbol(",")) break;
      }
    }
    if (lex_.AcceptIdent("ORDER")) {
      HTAP_RETURN_NOT_OK(lex_.ExpectIdent("BY"));
      const Token o = lex_.Take();
      if (o.kind != Token::Kind::kIdent)
        return Status::InvalidArgument("bad ORDER BY column");
      out->order_by = o.raw;
      if (lex_.AcceptIdent("DESC"))
        out->order_desc = true;
      else
        lex_.AcceptIdent("ASC");
    }
    if (lex_.AcceptIdent("LIMIT")) {
      const Token n = lex_.Take();
      if (n.kind != Token::Kind::kNumber)
        return Status::InvalidArgument("bad LIMIT");
      out->limit = static_cast<size_t>(std::stoull(n.text));
    }
    return Status::OK();
  }

  Status ParseCreate(CreateTableStmt* out) {
    HTAP_RETURN_NOT_OK(lex_.ExpectIdent("TABLE"));
    const Token t = lex_.Take();
    if (t.kind != Token::Kind::kIdent)
      return Status::InvalidArgument("expected table name");
    out->table = t.raw;
    HTAP_RETURN_NOT_OK(lex_.ExpectSymbol("("));
    bool pk_seen = false;
    while (true) {
      const Token name = lex_.Take();
      if (name.kind != Token::Kind::kIdent)
        return Status::InvalidArgument("expected column name");
      const Token type = lex_.Take();
      Type ty;
      if (type.text == "INT64" || type.text == "INT" || type.text == "BIGINT")
        ty = Type::kInt64;
      else if (type.text == "DOUBLE" || type.text == "FLOAT" ||
               type.text == "DECIMAL")
        ty = Type::kDouble;
      else if (type.text == "STRING" || type.text == "TEXT" ||
               type.text == "VARCHAR")
        ty = Type::kString;
      else
        return Status::InvalidArgument("unknown type '" + type.raw + "'");
      out->columns.emplace_back(name.raw, ty);
      if (lex_.AcceptIdent("PRIMARY")) {
        HTAP_RETURN_NOT_OK(lex_.ExpectIdent("KEY"));
        out->pk_index = static_cast<int>(out->columns.size()) - 1;
        pk_seen = true;
      }
      if (!lex_.AcceptSymbol(",")) break;
    }
    HTAP_RETURN_NOT_OK(lex_.ExpectSymbol(")"));
    if (!pk_seen) out->pk_index = 0;
    return Status::OK();
  }

  Status ParseInsert(InsertStmt* out) {
    HTAP_RETURN_NOT_OK(lex_.ExpectIdent("INTO"));
    const Token t = lex_.Take();
    if (t.kind != Token::Kind::kIdent)
      return Status::InvalidArgument("expected table name");
    out->table = t.raw;
    HTAP_RETURN_NOT_OK(lex_.ExpectIdent("VALUES"));
    while (true) {
      HTAP_RETURN_NOT_OK(lex_.ExpectSymbol("("));
      std::vector<Value> row;
      while (true) {
        HTAP_ASSIGN_OR_RETURN(Value v, ParseLiteral());
        row.push_back(std::move(v));
        if (!lex_.AcceptSymbol(",")) break;
      }
      HTAP_RETURN_NOT_OK(lex_.ExpectSymbol(")"));
      out->rows.push_back(std::move(row));
      if (!lex_.AcceptSymbol(",")) break;
    }
    return Status::OK();
  }

  Status ParseUpdate(UpdateStmt* out) {
    const Token t = lex_.Take();
    if (t.kind != Token::Kind::kIdent)
      return Status::InvalidArgument("expected table name");
    out->table = t.raw;
    HTAP_RETURN_NOT_OK(lex_.ExpectIdent("SET"));
    while (true) {
      const Token col = lex_.Take();
      if (col.kind != Token::Kind::kIdent)
        return Status::InvalidArgument("expected column in SET");
      HTAP_RETURN_NOT_OK(lex_.ExpectSymbol("="));
      HTAP_ASSIGN_OR_RETURN(Value v, ParseLiteral());
      out->assignments.emplace_back(col.raw, std::move(v));
      if (!lex_.AcceptSymbol(",")) break;
    }
    if (lex_.AcceptIdent("WHERE")) {
      HTAP_ASSIGN_OR_RETURN(Expr e, ParseExpr());
      out->where = std::move(e);
    }
    return Status::OK();
  }

  Status ParseDelete(DeleteStmt* out) {
    HTAP_RETURN_NOT_OK(lex_.ExpectIdent("FROM"));
    const Token t = lex_.Take();
    if (t.kind != Token::Kind::kIdent)
      return Status::InvalidArgument("expected table name");
    out->table = t.raw;
    if (lex_.AcceptIdent("WHERE")) {
      HTAP_ASSIGN_OR_RETURN(Expr e, ParseExpr());
      out->where = std::move(e);
    }
    return Status::OK();
  }

  Lexer lex_;
};

}  // namespace

Result<Statement> Parse(const std::string& input) {
  Parser p(input);
  return p.ParseStatement();
}

}  // namespace sql
}  // namespace htap
