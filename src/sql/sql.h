// A small SQL front end over the library API.
//
// Supported subset (enough for the examples and the CH-benCHmark queries):
//   CREATE TABLE t (col INT64|DOUBLE|STRING [PRIMARY KEY], ...)
//   INSERT INTO t VALUES (...), (...)
//   UPDATE t SET col = lit, ... [WHERE pred]
//   DELETE FROM t [WHERE pred]
//   SELECT items FROM t [[INNER] JOIN t2 ON col = col]... [WHERE pred]
//     [GROUP BY cols] [ORDER BY out_col [DESC]] [LIMIT n]
// where items are *, columns, or COUNT(*) / SUM / AVG / MIN / MAX(col)
// [AS alias]; predicates use =, !=, <>, <, <=, >, >=, BETWEEN..AND,
// AND/OR/NOT and parentheses. In aggregate queries the select list must
// name the GROUP BY columns first, then the aggregates.

#ifndef HTAP_SQL_SQL_H_
#define HTAP_SQL_SQL_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "types/schema.h"
#include "types/value.h"

namespace htap {
namespace sql {

// ---- AST -------------------------------------------------------------

struct Expr {
  enum class Kind { kColumn, kLiteral, kCompare, kAnd, kOr, kNot, kBetween };
  Kind kind = Kind::kLiteral;
  std::string column;       // kColumn (may be "table.col")
  Value literal;            // kLiteral
  std::string op;           // kCompare: =, !=, <, <=, >, >=
  std::vector<Expr> children;
};

struct SelectItem {
  enum class Kind { kStar, kColumn, kAggregate };
  Kind kind = Kind::kColumn;
  std::string column;  // kColumn or aggregate argument ("*" for COUNT(*))
  std::string func;    // COUNT/SUM/AVG/MIN/MAX
  std::string alias;
};

/// One [INNER] JOIN t ON l = r clause. The binder resolves each side of the
/// ON condition against either the tables joined so far or the new table
/// (written order is free), so chains like a JOIN b ON .. JOIN c ON .. bind
/// naturally onto QueryPlan::joins.
struct JoinSpec {
  std::string table;
  std::string left_col, right_col;  // as written; binder resolves sides
};

struct SelectStmt {
  std::vector<SelectItem> items;
  std::string table;
  std::vector<JoinSpec> joins;  // chained JOIN clauses, in written order
  std::optional<Expr> where;
  std::vector<std::string> group_by;
  std::string order_by;  // output column name/alias
  bool order_desc = false;
  size_t limit = 0;
};

struct CreateTableStmt {
  std::string table;
  std::vector<ColumnDef> columns;
  int pk_index = 0;
};

struct InsertStmt {
  std::string table;
  std::vector<std::vector<Value>> rows;
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, Value>> assignments;
  std::optional<Expr> where;
};

struct DeleteStmt {
  std::string table;
  std::optional<Expr> where;
};

struct Statement {
  enum class Kind { kSelect, kCreateTable, kInsert, kUpdate, kDelete };
  Kind kind = Kind::kSelect;
  SelectStmt select;
  CreateTableStmt create;
  InsertStmt insert;
  UpdateStmt update;
  DeleteStmt del;
};

/// Parses one SQL statement (trailing ';' optional).
Result<Statement> Parse(const std::string& input);

}  // namespace sql
}  // namespace htap

#endif  // HTAP_SQL_SQL_H_
