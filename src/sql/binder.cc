// Binds parsed SQL to the library API: name resolution against the
// catalog, Expr -> Predicate lowering, SELECT -> QueryPlan construction,
// and DML execution. Implements Database::ExecuteSql.

#include <algorithm>

#include "core/database.h"
#include "sql/sql.h"

namespace htap {

namespace {

using sql::Expr;
using sql::SelectItem;
using sql::Statement;

/// Strips an optional "table." prefix when it matches `table_name`.
std::string StripPrefix(const std::string& name,
                        const std::string& table_name) {
  const size_t dot = name.find('.');
  if (dot == std::string::npos) return name;
  std::string prefix = name.substr(0, dot);
  std::string rest = name.substr(dot + 1);
  auto ieq = [](const std::string& a, const std::string& b) {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i)
      if (std::tolower(a[i]) != std::tolower(b[i])) return false;
    return true;
  };
  return ieq(prefix, table_name) ? rest : name;
}

/// Resolves a (possibly qualified) column name within a single table.
int ResolveInTable(const std::string& name, const TableInfo& table) {
  return table.schema.FindColumn(StripPrefix(name, table.name));
}

/// One table participating in a (possibly multi-way) join, with its column
/// offset in the combined output layout (base columns first, then each
/// join's columns in plan order).
struct TableLayout {
  const TableInfo* info = nullptr;
  size_t offset = 0;
};

/// Resolves within a combined layout. Returns the combined column index,
/// -1 when no table has the column, -2 when an unqualified name matches
/// more than one table (qualify it as "table.col" to disambiguate).
int ResolveAcrossRaw(const std::string& name,
                     const std::vector<TableLayout>& tables) {
  int found = -1;
  for (const TableLayout& t : tables) {
    const int idx = ResolveInTable(name, *t.info);
    if (idx < 0) continue;
    if (found >= 0) return -2;
    found = idx + static_cast<int>(t.offset);
  }
  return found;
}

Result<int> ResolveAcross(const std::string& name,
                          const std::vector<TableLayout>& tables) {
  const int idx = ResolveAcrossRaw(name, tables);
  if (idx == -2) return Status::InvalidArgument("ambiguous column: " + name);
  if (idx < 0) return Status::InvalidArgument("unknown column: " + name);
  return idx;
}

CmpOp ParseCmpOp(const std::string& op) {
  if (op == "=") return CmpOp::kEq;
  if (op == "!=") return CmpOp::kNe;
  if (op == "<") return CmpOp::kLt;
  if (op == "<=") return CmpOp::kLe;
  if (op == ">") return CmpOp::kGt;
  return CmpOp::kGe;
}

/// Lowers an Expr to a Predicate with a caller-supplied column resolver.
Result<Predicate> LowerExpr(
    const Expr& e, const std::function<Result<int>(const std::string&)>& res) {
  switch (e.kind) {
    case Expr::Kind::kCompare: {
      HTAP_ASSIGN_OR_RETURN(int col, res(e.column));
      return Predicate::Compare(col, ParseCmpOp(e.op),
                                e.children[0].literal);
    }
    case Expr::Kind::kBetween: {
      HTAP_ASSIGN_OR_RETURN(int col, res(e.column));
      return Predicate::Between(col, e.children[0].literal,
                                e.children[1].literal);
    }
    case Expr::Kind::kAnd:
    case Expr::Kind::kOr: {
      std::vector<Predicate> children;
      for (const Expr& c : e.children) {
        HTAP_ASSIGN_OR_RETURN(Predicate p, LowerExpr(c, res));
        children.push_back(std::move(p));
      }
      return e.kind == Expr::Kind::kAnd ? Predicate::And(std::move(children))
                                        : Predicate::Or(std::move(children));
    }
    case Expr::Kind::kNot: {
      HTAP_ASSIGN_OR_RETURN(Predicate p, LowerExpr(e.children[0], res));
      return Predicate::Not(std::move(p));
    }
    default:
      return Status::InvalidArgument("unsupported expression");
  }
}

/// Columns referenced by an Expr.
void CollectColumns(const Expr& e, std::vector<std::string>* out) {
  if (e.kind == Expr::Kind::kCompare || e.kind == Expr::Kind::kBetween)
    out->push_back(e.column);
  for (const Expr& c : e.children) CollectColumns(c, out);
}

/// Splits a WHERE into per-table conjunct lists (index 0 = base table,
/// i >= 1 = joined table i-1). Flattens top-level ANDs; every remaining
/// conjunct must reference columns of exactly one table so it can be pushed
/// down to that table's scan.
Status ClassifyWhere(const Expr& where, const std::vector<TableLayout>& tables,
                     std::vector<std::vector<Expr>>* per_table) {
  if (where.kind == Expr::Kind::kAnd) {
    for (const Expr& c : where.children)
      HTAP_RETURN_NOT_OK(ClassifyWhere(c, tables, per_table));
    return Status::OK();
  }
  std::vector<std::string> cols;
  CollectColumns(where, &cols);
  int owner = -1;
  for (const std::string& name : cols) {
    const int combined = ResolveAcrossRaw(name, tables);
    if (combined == -2)
      return Status::InvalidArgument("ambiguous column: " + name);
    if (combined < 0)
      return Status::InvalidArgument("unknown column: " + name);
    int t = 0;
    for (size_t i = 0; i < tables.size(); ++i)
      if (combined >= static_cast<int>(tables[i].offset))
        t = static_cast<int>(i);
    if (owner >= 0 && owner != t)
      return Status::NotSupported(
          "predicates spanning multiple join tables are not supported");
    owner = t;
  }
  if (owner < 0) owner = 0;  // constant conjunct: evaluate at the base scan
  (*per_table)[static_cast<size_t>(owner)].push_back(where);
  return Status::OK();
}

AggSpec::Fn ParseAggFn(const std::string& f) {
  if (f == "COUNT") return AggSpec::Fn::kCount;
  if (f == "SUM") return AggSpec::Fn::kSum;
  if (f == "AVG") return AggSpec::Fn::kAvg;
  if (f == "MIN") return AggSpec::Fn::kMin;
  return AggSpec::Fn::kMax;
}

std::string DefaultAggName(const SelectItem& item) {
  if (!item.alias.empty()) return item.alias;
  std::string f = item.func;
  for (char& c : f) c = static_cast<char>(std::tolower(c));
  return item.column == "*" ? f : f + "_" + StripPrefix(item.column, "");
}

Result<QueryPlan> BindSelect(const sql::SelectStmt& stmt,
                             const Catalog& catalog,
                             std::vector<int>* out_perm) {
  const TableInfo* base = catalog.Find(stmt.table);
  if (base == nullptr)
    return Status::NotFound("no table: " + stmt.table);
  std::vector<size_t> agg_positions;

  QueryPlan plan;
  plan.table = stmt.table;

  // Combined layout built up clause by clause: base columns, then each
  // joined table's columns in written order. Chained JOINs bind exclusively
  // onto QueryPlan::joins (the legacy has_join fields stay unset).
  std::vector<TableLayout> tables;
  tables.push_back({base, 0});

  for (const sql::JoinSpec& js : stmt.joins) {
    const TableInfo* t = catalog.Find(js.table);
    if (t == nullptr) return Status::NotFound("no table: " + js.table);
    // ON columns: one side binds into the combined-so-far layout, the other
    // into the new table; either written order is accepted.
    int l = ResolveAcrossRaw(js.left_col, tables);
    int r = ResolveInTable(js.right_col, *t);
    int l_alt = -1;
    if (l < 0 || r < 0) {
      l_alt = ResolveAcrossRaw(js.right_col, tables);
      const int r_alt = ResolveInTable(js.left_col, *t);
      if (l_alt >= 0 && r_alt >= 0) {
        l = l_alt;
        r = r_alt;
      }
    }
    if (l < 0 || r < 0) {
      if (l == -2 || l_alt == -2)
        return Status::InvalidArgument("ambiguous column in join condition: " +
                                       js.left_col + " = " + js.right_col);
      return Status::InvalidArgument("cannot resolve join columns: " +
                                     js.left_col + " = " + js.right_col);
    }
    JoinClause jc;
    jc.table = js.table;
    jc.left_col = l;
    jc.right_col = r;
    plan.joins.push_back(std::move(jc));
    const TableLayout& last = tables.back();
    tables.push_back({t, last.offset + last.info->schema.num_columns()});
  }

  auto resolve_combined = [&tables](const std::string& name) {
    return ResolveAcross(name, tables);
  };

  if (stmt.where.has_value()) {
    std::vector<std::vector<Expr>> conj(tables.size());
    HTAP_RETURN_NOT_OK(ClassifyWhere(*stmt.where, tables, &conj));
    for (size_t t = 0; t < tables.size(); ++t) {
      if (conj[t].empty()) continue;
      const TableInfo& ti = *tables[t].info;
      auto res = [&ti](const std::string& n) -> Result<int> {
        const int i = ResolveInTable(n, ti);
        if (i < 0) return Status::InvalidArgument("unknown column: " + n);
        return i;
      };
      std::vector<Predicate> ps;
      for (const Expr& e : conj[t]) {
        HTAP_ASSIGN_OR_RETURN(Predicate p, LowerExpr(e, res));
        ps.push_back(std::move(p));
      }
      Predicate merged = ps.size() == 1 ? std::move(ps[0])
                                        : Predicate::And(std::move(ps));
      if (t == 0) {
        plan.where = std::move(merged);
      } else {
        plan.joins[t - 1].where = std::move(merged);
      }
    }
  }

  // GROUP BY + select list.
  const bool has_aggs = std::any_of(
      stmt.items.begin(), stmt.items.end(), [](const SelectItem& i) {
        return i.kind == SelectItem::Kind::kAggregate;
      });

  if (has_aggs) {
    for (const std::string& g : stmt.group_by) {
      HTAP_ASSIGN_OR_RETURN(int idx, resolve_combined(g));
      plan.group_by.push_back(idx);
    }
    // The runner emits [group columns..., aggregates...]; `out_perm` maps
    // each select item to its position there so the result can be reshaped
    // into the user's select-list order.
    std::vector<bool> group_used(plan.group_by.size(), false);
    size_t agg_serial = 0;
    for (const SelectItem& item : stmt.items) {
      if (item.kind == SelectItem::Kind::kColumn) {
        HTAP_ASSIGN_OR_RETURN(int idx, resolve_combined(item.column));
        bool matched = false;
        for (size_t g = 0; g < plan.group_by.size(); ++g) {
          if (!group_used[g] && plan.group_by[g] == idx) {
            group_used[g] = true;
            out_perm->push_back(static_cast<int>(g));
            matched = true;
            break;
          }
        }
        if (!matched)
          return Status::NotSupported(
              "non-aggregate select item must appear in GROUP BY: " +
              item.column);
      } else if (item.kind == SelectItem::Kind::kAggregate) {
        AggSpec agg;
        agg.fn = ParseAggFn(item.func);
        agg.name = DefaultAggName(item);
        if (item.column == "*") {
          agg.column = -1;
        } else {
          HTAP_ASSIGN_OR_RETURN(int idx, resolve_combined(item.column));
          agg.column = idx;
        }
        plan.aggs.push_back(std::move(agg));
        out_perm->push_back(-1);  // patched below once group count is known
        agg_positions.push_back(out_perm->size() - 1);
      } else {
        return Status::NotSupported("SELECT * cannot mix with aggregates");
      }
    }
    for (size_t a = 0; a < agg_positions.size(); ++a)
      (*out_perm)[agg_positions[a]] =
          static_cast<int>(plan.group_by.size() + a);
    (void)agg_serial;
    // Identity permutations need no reshaping.
    bool identity = out_perm->size() == plan.group_by.size() + plan.aggs.size();
    for (size_t i = 0; identity && i < out_perm->size(); ++i)
      identity = (*out_perm)[i] == static_cast<int>(i);
    if (identity) out_perm->clear();
  } else {
    if (!stmt.group_by.empty())
      return Status::NotSupported("GROUP BY without aggregates");
    for (const SelectItem& item : stmt.items) {
      if (item.kind == SelectItem::Kind::kStar) {
        plan.projection.clear();
        break;
      }
      HTAP_ASSIGN_OR_RETURN(int idx, resolve_combined(item.column));
      plan.projection.push_back(idx);
    }
  }

  // ORDER BY resolves against the runner's output layout (the final
  // select-list reshaping happens after sorting, on the same columns).
  if (!stmt.order_by.empty()) {
    int out_idx = -1;
    if (has_aggs) {
      // Aggregate aliases first, then group-by columns.
      for (size_t a = 0; a < plan.aggs.size(); ++a) {
        if (plan.aggs[a].name == stmt.order_by) {
          out_idx = static_cast<int>(plan.group_by.size() + a);
          break;
        }
      }
      if (out_idx < 0) {
        auto idx_res = resolve_combined(stmt.order_by);
        if (idx_res.ok()) {
          for (size_t g = 0; g < plan.group_by.size(); ++g) {
            if (*idx_res == plan.group_by[g]) {
              out_idx = static_cast<int>(g);
              break;
            }
          }
        }
      }
    } else if (!plan.projection.empty()) {
      HTAP_ASSIGN_OR_RETURN(int idx, resolve_combined(stmt.order_by));
      for (size_t p = 0; p < plan.projection.size(); ++p)
        if (plan.projection[p] == idx) out_idx = static_cast<int>(p);
    } else {
      HTAP_ASSIGN_OR_RETURN(int idx, resolve_combined(stmt.order_by));
      out_idx = idx;
    }
    if (out_idx < 0)
      return Status::InvalidArgument("ORDER BY column not in output: " +
                                     stmt.order_by);
    plan.order_by = out_idx;
    plan.order_desc = stmt.order_desc;
  }
  plan.limit = stmt.limit;
  return plan;
}

QueryResult MakeDmlResult(const std::string& counter_name, int64_t n) {
  QueryResult r;
  r.schema = Schema({ColumnDef(counter_name, Type::kInt64)});
  r.rows.push_back(Row{Value(n)});
  return r;
}

}  // namespace

Result<QueryResult> Database::ExecuteSql(const std::string& sql_text,
                                         QueryExecInfo* info) {
  HTAP_ASSIGN_OR_RETURN(Statement stmt, sql::Parse(sql_text));

  switch (stmt.kind) {
    case Statement::Kind::kCreateTable: {
      Schema schema(stmt.create.columns, stmt.create.pk_index);
      HTAP_RETURN_NOT_OK(CreateTable(stmt.create.table, std::move(schema)));
      return MakeDmlResult("tables_created", 1);
    }

    case Statement::Kind::kInsert: {
      const TableInfo* info = catalog_.Find(stmt.insert.table);
      if (info == nullptr)
        return Status::NotFound("no table: " + stmt.insert.table);
      auto txn = Begin();
      for (const auto& vals : stmt.insert.rows) {
        if (vals.size() != info->schema.num_columns())
          return Status::InvalidArgument("INSERT arity mismatch");
        HTAP_RETURN_NOT_OK(txn->Insert(stmt.insert.table, Row(vals)));
      }
      HTAP_RETURN_NOT_OK(txn->Commit());
      return MakeDmlResult("rows_inserted",
                           static_cast<int64_t>(stmt.insert.rows.size()));
    }

    case Statement::Kind::kUpdate: {
      const TableInfo* info = catalog_.Find(stmt.update.table);
      if (info == nullptr)
        return Status::NotFound("no table: " + stmt.update.table);
      // Resolve assignments.
      std::vector<std::pair<int, Value>> sets;
      for (const auto& [name, value] : stmt.update.assignments) {
        const int idx = ResolveInTable(name, *info);
        if (idx < 0) return Status::InvalidArgument("unknown column: " + name);
        sets.emplace_back(idx, value);
      }
      // Find matching rows via a row-path scan, then update in one txn.
      QueryPlan plan;
      plan.table = stmt.update.table;
      plan.path = PathHint::kForceRow;
      if (stmt.update.where.has_value()) {
        auto res = [&](const std::string& n) -> Result<int> {
          const int i = ResolveInTable(n, *info);
          if (i < 0) return Status::InvalidArgument("unknown column: " + n);
          return i;
        };
        HTAP_ASSIGN_OR_RETURN(Predicate p, LowerExpr(*stmt.update.where, res));
        plan.where = std::move(p);
      }
      HTAP_ASSIGN_OR_RETURN(QueryResult matched, Query(plan, nullptr));
      auto txn = Begin();
      for (Row row : matched.rows) {
        for (const auto& [idx, value] : sets)
          row.Set(static_cast<size_t>(idx), value);
        HTAP_RETURN_NOT_OK(txn->Update(stmt.update.table, row));
      }
      HTAP_RETURN_NOT_OK(txn->Commit());
      return MakeDmlResult("rows_updated",
                           static_cast<int64_t>(matched.rows.size()));
    }

    case Statement::Kind::kDelete: {
      const TableInfo* info = catalog_.Find(stmt.del.table);
      if (info == nullptr)
        return Status::NotFound("no table: " + stmt.del.table);
      QueryPlan plan;
      plan.table = stmt.del.table;
      plan.path = PathHint::kForceRow;
      plan.projection = {info->schema.pk_index()};
      if (stmt.del.where.has_value()) {
        auto res = [&](const std::string& n) -> Result<int> {
          const int i = ResolveInTable(n, *info);
          if (i < 0) return Status::InvalidArgument("unknown column: " + n);
          return i;
        };
        HTAP_ASSIGN_OR_RETURN(Predicate p, LowerExpr(*stmt.del.where, res));
        plan.where = std::move(p);
      }
      HTAP_ASSIGN_OR_RETURN(QueryResult matched, Query(plan, nullptr));
      auto txn = Begin();
      for (const Row& row : matched.rows)
        HTAP_RETURN_NOT_OK(txn->Delete(stmt.del.table, row.Get(0).AsInt64()));
      HTAP_RETURN_NOT_OK(txn->Commit());
      return MakeDmlResult("rows_deleted",
                           static_cast<int64_t>(matched.rows.size()));
    }

    case Statement::Kind::kSelect: {
      std::vector<int> out_perm;
      HTAP_ASSIGN_OR_RETURN(QueryPlan plan,
                            BindSelect(stmt.select, catalog_, &out_perm));
      HTAP_ASSIGN_OR_RETURN(QueryResult result, Query(plan, info));
      if (!out_perm.empty()) {
        // Reshape [groups..., aggs...] into the user's select-list order.
        std::vector<ColumnDef> cols;
        for (int p : out_perm)
          cols.push_back(result.schema.column(static_cast<size_t>(p)));
        for (Row& row : result.rows) {
          Row reshaped;
          for (int p : out_perm) reshaped.Append(row.Get(static_cast<size_t>(p)));
          row = std::move(reshaped);
        }
        result.schema = Schema(std::move(cols), 0);
      }
      return result;
    }
  }
  return Status::Internal("unreachable");
}

}  // namespace htap
