// Binds parsed SQL to the library API: name resolution against the
// catalog, Expr -> Predicate lowering, SELECT -> QueryPlan construction,
// and DML execution. Implements Database::ExecuteSql.

#include <algorithm>

#include "core/database.h"
#include "sql/sql.h"

namespace htap {

namespace {

using sql::Expr;
using sql::SelectItem;
using sql::Statement;

/// Strips an optional "table." prefix when it matches `table_name`.
std::string StripPrefix(const std::string& name,
                        const std::string& table_name) {
  const size_t dot = name.find('.');
  if (dot == std::string::npos) return name;
  std::string prefix = name.substr(0, dot);
  std::string rest = name.substr(dot + 1);
  auto ieq = [](const std::string& a, const std::string& b) {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i)
      if (std::tolower(a[i]) != std::tolower(b[i])) return false;
    return true;
  };
  return ieq(prefix, table_name) ? rest : name;
}

/// Resolves a (possibly qualified) column name within a single table.
int ResolveInTable(const std::string& name, const TableInfo& table) {
  return table.schema.FindColumn(StripPrefix(name, table.name));
}

/// Resolves within the combined (left ++ right) layout.
Result<int> ResolveCombined(const std::string& name, const TableInfo& left,
                            const TableInfo* right) {
  int idx = ResolveInTable(name, left);
  if (idx >= 0) return idx;
  if (right != nullptr) {
    idx = ResolveInTable(name, *right);
    if (idx >= 0) return idx + static_cast<int>(left.schema.num_columns());
  }
  return Status::InvalidArgument("unknown column: " + name);
}

CmpOp ParseCmpOp(const std::string& op) {
  if (op == "=") return CmpOp::kEq;
  if (op == "!=") return CmpOp::kNe;
  if (op == "<") return CmpOp::kLt;
  if (op == "<=") return CmpOp::kLe;
  if (op == ">") return CmpOp::kGt;
  return CmpOp::kGe;
}

/// Lowers an Expr to a Predicate with a caller-supplied column resolver.
Result<Predicate> LowerExpr(
    const Expr& e, const std::function<Result<int>(const std::string&)>& res) {
  switch (e.kind) {
    case Expr::Kind::kCompare: {
      HTAP_ASSIGN_OR_RETURN(int col, res(e.column));
      return Predicate::Compare(col, ParseCmpOp(e.op),
                                e.children[0].literal);
    }
    case Expr::Kind::kBetween: {
      HTAP_ASSIGN_OR_RETURN(int col, res(e.column));
      return Predicate::Between(col, e.children[0].literal,
                                e.children[1].literal);
    }
    case Expr::Kind::kAnd:
    case Expr::Kind::kOr: {
      std::vector<Predicate> children;
      for (const Expr& c : e.children) {
        HTAP_ASSIGN_OR_RETURN(Predicate p, LowerExpr(c, res));
        children.push_back(std::move(p));
      }
      return e.kind == Expr::Kind::kAnd ? Predicate::And(std::move(children))
                                        : Predicate::Or(std::move(children));
    }
    case Expr::Kind::kNot: {
      HTAP_ASSIGN_OR_RETURN(Predicate p, LowerExpr(e.children[0], res));
      return Predicate::Not(std::move(p));
    }
    default:
      return Status::InvalidArgument("unsupported expression");
  }
}

/// Columns referenced by an Expr.
void CollectColumns(const Expr& e, std::vector<std::string>* out) {
  if (e.kind == Expr::Kind::kCompare || e.kind == Expr::Kind::kBetween)
    out->push_back(e.column);
  for (const Expr& c : e.children) CollectColumns(c, out);
}

/// Splits the WHERE of a join into left-only and right-only conjuncts.
Status SplitJoinWhere(const Expr& where, const TableInfo& left,
                      const TableInfo& right, std::vector<Expr>* left_out,
                      std::vector<Expr>* right_out) {
  // Flatten top-level ANDs, classify each conjunct by referenced side.
  if (where.kind == Expr::Kind::kAnd) {
    for (const Expr& c : where.children)
      HTAP_RETURN_NOT_OK(SplitJoinWhere(c, left, right, left_out, right_out));
    return Status::OK();
  }
  std::vector<std::string> cols;
  CollectColumns(where, &cols);
  bool all_left = true, all_right = true;
  for (const std::string& c : cols) {
    if (ResolveInTable(c, left) < 0) all_left = false;
    if (ResolveInTable(c, right) < 0) all_right = false;
  }
  if (all_left) {
    left_out->push_back(where);
    return Status::OK();
  }
  if (all_right) {
    right_out->push_back(where);
    return Status::OK();
  }
  return Status::NotSupported(
      "predicates spanning both join sides are not supported");
}

AggSpec::Fn ParseAggFn(const std::string& f) {
  if (f == "COUNT") return AggSpec::Fn::kCount;
  if (f == "SUM") return AggSpec::Fn::kSum;
  if (f == "AVG") return AggSpec::Fn::kAvg;
  if (f == "MIN") return AggSpec::Fn::kMin;
  return AggSpec::Fn::kMax;
}

std::string DefaultAggName(const SelectItem& item) {
  if (!item.alias.empty()) return item.alias;
  std::string f = item.func;
  for (char& c : f) c = static_cast<char>(std::tolower(c));
  return item.column == "*" ? f : f + "_" + StripPrefix(item.column, "");
}

Result<QueryPlan> BindSelect(const sql::SelectStmt& stmt,
                             const Catalog& catalog,
                             std::vector<int>* out_perm) {
  const TableInfo* left = catalog.Find(stmt.table);
  if (left == nullptr)
    return Status::NotFound("no table: " + stmt.table);
  const TableInfo* right = nullptr;
  std::vector<size_t> agg_positions;

  QueryPlan plan;
  plan.table = stmt.table;

  if (!stmt.join_table.empty()) {
    right = catalog.Find(stmt.join_table);
    if (right == nullptr)
      return Status::NotFound("no table: " + stmt.join_table);
    plan.has_join = true;
    plan.join_table = stmt.join_table;
    // Join columns: try left name on the left table, right on the right;
    // accept either order.
    int l = ResolveInTable(stmt.join_left_col, *left);
    int r = ResolveInTable(stmt.join_right_col, *right);
    if (l < 0 || r < 0) {
      l = ResolveInTable(stmt.join_right_col, *left);
      r = ResolveInTable(stmt.join_left_col, *right);
    }
    if (l < 0 || r < 0)
      return Status::InvalidArgument("cannot resolve join columns");
    plan.left_col = l;
    plan.right_col = r;
  }

  auto resolve_combined = [&](const std::string& name) {
    return ResolveCombined(name, *left, right);
  };

  if (stmt.where.has_value()) {
    if (plan.has_join) {
      std::vector<Expr> lconj, rconj;
      HTAP_RETURN_NOT_OK(
          SplitJoinWhere(*stmt.where, *left, *right, &lconj, &rconj));
      auto res_left = [&](const std::string& n) -> Result<int> {
        const int i = ResolveInTable(n, *left);
        if (i < 0) return Status::InvalidArgument("unknown column: " + n);
        return i;
      };
      auto res_right = [&](const std::string& n) -> Result<int> {
        const int i = ResolveInTable(n, *right);
        if (i < 0) return Status::InvalidArgument("unknown column: " + n);
        return i;
      };
      std::vector<Predicate> lp, rp;
      for (const Expr& e : lconj) {
        HTAP_ASSIGN_OR_RETURN(Predicate p, LowerExpr(e, res_left));
        lp.push_back(std::move(p));
      }
      for (const Expr& e : rconj) {
        HTAP_ASSIGN_OR_RETURN(Predicate p, LowerExpr(e, res_right));
        rp.push_back(std::move(p));
      }
      if (!lp.empty()) plan.where = Predicate::And(std::move(lp));
      if (!rp.empty()) plan.join_where = Predicate::And(std::move(rp));
    } else {
      auto res = [&](const std::string& n) -> Result<int> {
        const int i = ResolveInTable(n, *left);
        if (i < 0) return Status::InvalidArgument("unknown column: " + n);
        return i;
      };
      HTAP_ASSIGN_OR_RETURN(Predicate p, LowerExpr(*stmt.where, res));
      plan.where = std::move(p);
    }
  }

  // GROUP BY + select list.
  const bool has_aggs = std::any_of(
      stmt.items.begin(), stmt.items.end(), [](const SelectItem& i) {
        return i.kind == SelectItem::Kind::kAggregate;
      });

  if (has_aggs) {
    for (const std::string& g : stmt.group_by) {
      HTAP_ASSIGN_OR_RETURN(int idx, resolve_combined(g));
      plan.group_by.push_back(idx);
    }
    // The runner emits [group columns..., aggregates...]; `out_perm` maps
    // each select item to its position there so the result can be reshaped
    // into the user's select-list order.
    std::vector<bool> group_used(plan.group_by.size(), false);
    size_t agg_serial = 0;
    for (const SelectItem& item : stmt.items) {
      if (item.kind == SelectItem::Kind::kColumn) {
        HTAP_ASSIGN_OR_RETURN(int idx, resolve_combined(item.column));
        bool matched = false;
        for (size_t g = 0; g < plan.group_by.size(); ++g) {
          if (!group_used[g] && plan.group_by[g] == idx) {
            group_used[g] = true;
            out_perm->push_back(static_cast<int>(g));
            matched = true;
            break;
          }
        }
        if (!matched)
          return Status::NotSupported(
              "non-aggregate select item must appear in GROUP BY: " +
              item.column);
      } else if (item.kind == SelectItem::Kind::kAggregate) {
        AggSpec agg;
        agg.fn = ParseAggFn(item.func);
        agg.name = DefaultAggName(item);
        if (item.column == "*") {
          agg.column = -1;
        } else {
          HTAP_ASSIGN_OR_RETURN(int idx, resolve_combined(item.column));
          agg.column = idx;
        }
        plan.aggs.push_back(std::move(agg));
        out_perm->push_back(-1);  // patched below once group count is known
        agg_positions.push_back(out_perm->size() - 1);
      } else {
        return Status::NotSupported("SELECT * cannot mix with aggregates");
      }
    }
    for (size_t a = 0; a < agg_positions.size(); ++a)
      (*out_perm)[agg_positions[a]] =
          static_cast<int>(plan.group_by.size() + a);
    (void)agg_serial;
    // Identity permutations need no reshaping.
    bool identity = out_perm->size() == plan.group_by.size() + plan.aggs.size();
    for (size_t i = 0; identity && i < out_perm->size(); ++i)
      identity = (*out_perm)[i] == static_cast<int>(i);
    if (identity) out_perm->clear();
  } else {
    if (!stmt.group_by.empty())
      return Status::NotSupported("GROUP BY without aggregates");
    for (const SelectItem& item : stmt.items) {
      if (item.kind == SelectItem::Kind::kStar) {
        plan.projection.clear();
        break;
      }
      HTAP_ASSIGN_OR_RETURN(int idx, resolve_combined(item.column));
      plan.projection.push_back(idx);
    }
  }

  // ORDER BY resolves against the runner's output layout (the final
  // select-list reshaping happens after sorting, on the same columns).
  if (!stmt.order_by.empty()) {
    int out_idx = -1;
    if (has_aggs) {
      // Aggregate aliases first, then group-by columns.
      for (size_t a = 0; a < plan.aggs.size(); ++a) {
        if (plan.aggs[a].name == stmt.order_by) {
          out_idx = static_cast<int>(plan.group_by.size() + a);
          break;
        }
      }
      if (out_idx < 0) {
        auto idx_res = resolve_combined(stmt.order_by);
        if (idx_res.ok()) {
          for (size_t g = 0; g < plan.group_by.size(); ++g) {
            if (*idx_res == plan.group_by[g]) {
              out_idx = static_cast<int>(g);
              break;
            }
          }
        }
      }
    } else if (!plan.projection.empty()) {
      HTAP_ASSIGN_OR_RETURN(int idx, resolve_combined(stmt.order_by));
      for (size_t p = 0; p < plan.projection.size(); ++p)
        if (plan.projection[p] == idx) out_idx = static_cast<int>(p);
    } else {
      HTAP_ASSIGN_OR_RETURN(int idx, resolve_combined(stmt.order_by));
      out_idx = idx;
    }
    if (out_idx < 0)
      return Status::InvalidArgument("ORDER BY column not in output: " +
                                     stmt.order_by);
    plan.order_by = out_idx;
    plan.order_desc = stmt.order_desc;
  }
  plan.limit = stmt.limit;
  return plan;
}

QueryResult MakeDmlResult(const std::string& counter_name, int64_t n) {
  QueryResult r;
  r.schema = Schema({ColumnDef(counter_name, Type::kInt64)});
  r.rows.push_back(Row{Value(n)});
  return r;
}

}  // namespace

Result<QueryResult> Database::ExecuteSql(const std::string& sql_text) {
  HTAP_ASSIGN_OR_RETURN(Statement stmt, sql::Parse(sql_text));

  switch (stmt.kind) {
    case Statement::Kind::kCreateTable: {
      Schema schema(stmt.create.columns, stmt.create.pk_index);
      HTAP_RETURN_NOT_OK(CreateTable(stmt.create.table, std::move(schema)));
      return MakeDmlResult("tables_created", 1);
    }

    case Statement::Kind::kInsert: {
      const TableInfo* info = catalog_.Find(stmt.insert.table);
      if (info == nullptr)
        return Status::NotFound("no table: " + stmt.insert.table);
      auto txn = Begin();
      for (const auto& vals : stmt.insert.rows) {
        if (vals.size() != info->schema.num_columns())
          return Status::InvalidArgument("INSERT arity mismatch");
        HTAP_RETURN_NOT_OK(txn->Insert(stmt.insert.table, Row(vals)));
      }
      HTAP_RETURN_NOT_OK(txn->Commit());
      return MakeDmlResult("rows_inserted",
                           static_cast<int64_t>(stmt.insert.rows.size()));
    }

    case Statement::Kind::kUpdate: {
      const TableInfo* info = catalog_.Find(stmt.update.table);
      if (info == nullptr)
        return Status::NotFound("no table: " + stmt.update.table);
      // Resolve assignments.
      std::vector<std::pair<int, Value>> sets;
      for (const auto& [name, value] : stmt.update.assignments) {
        const int idx = ResolveInTable(name, *info);
        if (idx < 0) return Status::InvalidArgument("unknown column: " + name);
        sets.emplace_back(idx, value);
      }
      // Find matching rows via a row-path scan, then update in one txn.
      QueryPlan plan;
      plan.table = stmt.update.table;
      plan.path = PathHint::kForceRow;
      if (stmt.update.where.has_value()) {
        auto res = [&](const std::string& n) -> Result<int> {
          const int i = ResolveInTable(n, *info);
          if (i < 0) return Status::InvalidArgument("unknown column: " + n);
          return i;
        };
        HTAP_ASSIGN_OR_RETURN(Predicate p, LowerExpr(*stmt.update.where, res));
        plan.where = std::move(p);
      }
      HTAP_ASSIGN_OR_RETURN(QueryResult matched, Query(plan, nullptr));
      auto txn = Begin();
      for (Row row : matched.rows) {
        for (const auto& [idx, value] : sets)
          row.Set(static_cast<size_t>(idx), value);
        HTAP_RETURN_NOT_OK(txn->Update(stmt.update.table, row));
      }
      HTAP_RETURN_NOT_OK(txn->Commit());
      return MakeDmlResult("rows_updated",
                           static_cast<int64_t>(matched.rows.size()));
    }

    case Statement::Kind::kDelete: {
      const TableInfo* info = catalog_.Find(stmt.del.table);
      if (info == nullptr)
        return Status::NotFound("no table: " + stmt.del.table);
      QueryPlan plan;
      plan.table = stmt.del.table;
      plan.path = PathHint::kForceRow;
      plan.projection = {info->schema.pk_index()};
      if (stmt.del.where.has_value()) {
        auto res = [&](const std::string& n) -> Result<int> {
          const int i = ResolveInTable(n, *info);
          if (i < 0) return Status::InvalidArgument("unknown column: " + n);
          return i;
        };
        HTAP_ASSIGN_OR_RETURN(Predicate p, LowerExpr(*stmt.del.where, res));
        plan.where = std::move(p);
      }
      HTAP_ASSIGN_OR_RETURN(QueryResult matched, Query(plan, nullptr));
      auto txn = Begin();
      for (const Row& row : matched.rows)
        HTAP_RETURN_NOT_OK(txn->Delete(stmt.del.table, row.Get(0).AsInt64()));
      HTAP_RETURN_NOT_OK(txn->Commit());
      return MakeDmlResult("rows_deleted",
                           static_cast<int64_t>(matched.rows.size()));
    }

    case Statement::Kind::kSelect: {
      std::vector<int> out_perm;
      HTAP_ASSIGN_OR_RETURN(QueryPlan plan,
                            BindSelect(stmt.select, catalog_, &out_perm));
      HTAP_ASSIGN_OR_RETURN(QueryResult result, Query(plan, nullptr));
      if (!out_perm.empty()) {
        // Reshape [groups..., aggs...] into the user's select-list order.
        std::vector<ColumnDef> cols;
        for (int p : out_perm)
          cols.push_back(result.schema.column(static_cast<size_t>(p)));
        for (Row& row : result.rows) {
          Row reshaped;
          for (int p : out_perm) reshaped.Append(row.Get(static_cast<size_t>(p)));
          row = std::move(reshaped);
        }
        result.schema = Schema(std::move(cols), 0);
      }
      return result;
    }
  }
  return Status::Internal("unreachable");
}

}  // namespace htap
