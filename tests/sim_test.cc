// Simulator substrate tests: deterministic event ordering, virtual time,
// per-node CPU serialization, network latency/partitions/drops.

#include <gtest/gtest.h>

#include "sim/env.h"

namespace htap {
namespace sim {
namespace {

TEST(SimEnvTest, EventsFireInTimeOrder) {
  SimEnv env;
  std::vector<int> order;
  env.Schedule(30, [&] { order.push_back(3); });
  env.Schedule(10, [&] { order.push_back(1); });
  env.Schedule(20, [&] { order.push_back(2); });
  env.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(env.Now(), 30);
}

TEST(SimEnvTest, SameTimeEventsFifo) {
  SimEnv env;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    env.Schedule(5, [&order, i] { order.push_back(i); });
  env.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(SimEnvTest, NestedSchedulingAdvancesClock) {
  SimEnv env;
  Micros when_inner = 0;
  env.Schedule(10, [&] {
    env.Schedule(15, [&] { when_inner = env.Now(); });
  });
  env.Run();
  EXPECT_EQ(when_inner, 25);
}

TEST(SimEnvTest, RunUntilStopsAtDeadline) {
  SimEnv env;
  int fired = 0;
  env.Schedule(10, [&] { ++fired; });
  env.Schedule(100, [&] { ++fired; });
  env.RunUntil(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(env.Now(), 50);
  EXPECT_EQ(env.pending_events(), 1u);
  env.RunUntil(200);
  EXPECT_EQ(fired, 2);
}

TEST(SimEnvTest, DeterministicGivenSeed) {
  auto run = [](uint64_t seed) {
    SimEnv env(seed);
    std::vector<uint64_t> vals;
    for (int i = 0; i < 5; ++i) vals.push_back(env.rng().Next64());
    return vals;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(SimNetworkTest, DeliversWithLatency) {
  SimEnv env;
  SimNetwork net(&env, {.base_latency_micros = 100, .jitter_micros = 0});
  Micros delivered_at = -1;
  net.Send(1, 2, [&] { delivered_at = env.Now(); });
  env.Run();
  EXPECT_EQ(delivered_at, 100);
  EXPECT_EQ(net.messages_sent(), 1u);
}

TEST(SimNetworkTest, PartitionBlocksBothDirections) {
  SimEnv env;
  SimNetwork net(&env, {.base_latency_micros = 10, .jitter_micros = 0});
  net.Partition(1, 2);
  int delivered = 0;
  net.Send(1, 2, [&] { ++delivered; });
  net.Send(2, 1, [&] { ++delivered; });
  net.Send(1, 3, [&] { ++delivered; });  // unaffected pair
  env.Run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(net.messages_dropped(), 2u);
  net.Heal(1, 2);
  net.Send(1, 2, [&] { ++delivered; });
  env.Run();
  EXPECT_EQ(delivered, 2);
}

TEST(SimNetworkTest, DropProbability) {
  SimEnv env;
  SimNetwork net(&env, {.base_latency_micros = 1,
                        .jitter_micros = 0,
                        .drop_probability = 0.5});
  int delivered = 0;
  for (int i = 0; i < 1000; ++i) net.Send(1, 2, [&] { ++delivered; });
  env.Run();
  EXPECT_GT(delivered, 300);
  EXPECT_LT(delivered, 700);
}

TEST(SimNodeTest, ExecuteSerializesCpuWork) {
  SimEnv env;
  SimNode node(&env, 1);
  std::vector<Micros> completions;
  // Three tasks of 100us submitted at t=0 finish at 100, 200, 300: the
  // single simulated core queues them.
  for (int i = 0; i < 3; ++i)
    node.Execute(100, [&] { completions.push_back(env.Now()); });
  env.Run();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_EQ(completions[0], 100);
  EXPECT_EQ(completions[1], 200);
  EXPECT_EQ(completions[2], 300);
}

TEST(SimNodeTest, CrashDropsWork) {
  SimEnv env;
  SimNode node(&env, 1);
  int ran = 0;
  node.Execute(10, [&] { ++ran; });
  node.Crash();
  node.Execute(10, [&] { ++ran; });  // ignored while dead
  env.Run();
  EXPECT_EQ(ran, 0);  // queued work is dropped on crash too
  node.Restart();
  node.Execute(10, [&] { ++ran; });
  env.Run();
  EXPECT_EQ(ran, 1);
}

}  // namespace
}  // namespace sim
}  // namespace htap
