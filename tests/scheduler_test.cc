// Resource-scheduler tests: task routing and counting, workload-driven
// quota shifting, freshness-driven mode switching.

#include <gtest/gtest.h>

#include <atomic>

#include "sched/scheduler.h"

namespace htap {
namespace {

TEST(SchedulerTest, RunsAndCountsBothClasses) {
  ResourceScheduler::Options opts;
  ResourceScheduler sched(opts);
  std::atomic<int> tp{0}, ap{0};
  for (int i = 0; i < 50; ++i) sched.SubmitOltp([&] { tp.fetch_add(1); });
  for (int i = 0; i < 20; ++i) sched.SubmitOlap([&] { ap.fetch_add(1); });
  sched.Drain();
  EXPECT_EQ(tp.load(), 50);
  EXPECT_EQ(ap.load(), 20);
  EXPECT_EQ(sched.oltp_completed(), 50u);
  EXPECT_EQ(sched.olap_completed(), 20u);
}

TEST(SchedulerTest, StaticPolicyKeepsQuotasFixed) {
  ResourceScheduler::Options opts;
  opts.policy = SchedulingPolicy::kStatic;
  opts.oltp_threads = 3;
  opts.olap_threads = 2;
  ResourceScheduler sched(opts);
  EXPECT_EQ(sched.oltp_quota(), 3u);
  EXPECT_EQ(sched.olap_quota(), 2u);
  EXPECT_EQ(sched.mode_switches(), 0u);
}

TEST(SchedulerTest, WorkloadDrivenShiftsQuotaTowardBacklog) {
  ResourceScheduler::Options opts;
  opts.policy = SchedulingPolicy::kWorkloadDriven;
  opts.oltp_threads = 4;
  opts.olap_threads = 4;
  opts.adjust_interval_micros = 1000;
  ResourceScheduler sched(opts);

  // Pile a deep OLTP backlog while OLAP sits idle; each task is slow
  // enough that the controller observes the queue.
  for (int i = 0; i < 400; ++i) {
    sched.SubmitOltp([] {
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_GT(sched.oltp_quota(), sched.olap_quota());
  sched.Drain();
}

TEST(SchedulerTest, FreshnessDrivenSwitchesModes) {
  std::atomic<Micros> lag{100000};  // violating the SLA
  std::atomic<int> syncs{0};
  ResourceScheduler::Options opts;
  opts.policy = SchedulingPolicy::kFreshnessDriven;
  opts.adjust_interval_micros = 1000;
  opts.freshness_sla_micros = 20000;
  ResourceScheduler sched(
      opts, [&] { return lag.load(); },
      [&] {
        syncs.fetch_add(1);
        lag.store(0);  // the forced merge restores freshness
      });

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(syncs.load(), 1);                        // SLA violation forced a sync
  EXPECT_GE(sched.mode_switches(), 2u);              // shared, then back
  EXPECT_EQ(sched.mode(), ExecutionMode::kIsolated);  // fresh again

  lag.store(50000);  // violate again
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(syncs.load(), 2);
  sched.Stop();
}

TEST(SchedulerTest, FreshnessDrivenStaysIsolatedWhenFresh) {
  std::atomic<int> syncs{0};
  ResourceScheduler::Options opts;
  opts.policy = SchedulingPolicy::kFreshnessDriven;
  opts.adjust_interval_micros = 1000;
  opts.freshness_sla_micros = 20000;
  ResourceScheduler sched(opts, [] { return Micros{100}; },
                          [&] { syncs.fetch_add(1); });
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  EXPECT_EQ(syncs.load(), 0);
  EXPECT_EQ(sched.mode(), ExecutionMode::kIsolated);
  EXPECT_EQ(sched.mode_switches(), 0u);
}

TEST(SchedulerPolicyTest, Names) {
  EXPECT_STREQ(SchedulingPolicyName(SchedulingPolicy::kStatic), "static");
  EXPECT_STREQ(SchedulingPolicyName(SchedulingPolicy::kWorkloadDriven),
               "workload-driven");
  EXPECT_STREQ(SchedulingPolicyName(SchedulingPolicy::kFreshnessDriven),
               "freshness-driven");
}

}  // namespace
}  // namespace htap
