// Execution-layer tests: predicate evaluation and zone-map skipping,
// row/HTAP scans, hash join, hash aggregation, sort/limit, projection.

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "txn/txn_manager.h"

namespace htap {
namespace {

Schema TestSchema() {
  return Schema({{"id", Type::kInt64}, {"v", Type::kInt64},
                 {"cat", Type::kString}, {"price", Type::kDouble}});
}

Row TRow(Key id, int64_t v, const std::string& cat, double price) {
  return Row{Value(id), Value(v), Value(cat), Value(price)};
}

TEST(PredicateTest, EvalBasics) {
  const Row r = TRow(1, 10, "a", 2.5);
  EXPECT_TRUE(Predicate::Eq(0, Value(int64_t{1})).Eval(r));
  EXPECT_FALSE(Predicate::Eq(0, Value(int64_t{2})).Eval(r));
  EXPECT_TRUE(Predicate::Gt(3, Value(2.0)).Eval(r));
  EXPECT_TRUE(Predicate::Eq(2, Value("a")).Eval(r));
  EXPECT_TRUE(Predicate::And({Predicate::Ge(1, Value(int64_t{10})),
                              Predicate::Le(1, Value(int64_t{10}))})
                  .Eval(r));
  EXPECT_TRUE(Predicate::Or({Predicate::Eq(0, Value(int64_t{9})),
                             Predicate::Eq(2, Value("a"))})
                  .Eval(r));
  EXPECT_TRUE(Predicate::Not(Predicate::Eq(0, Value(int64_t{9}))).Eval(r));
  EXPECT_TRUE(Predicate::True().Eval(r));
  EXPECT_TRUE(Predicate::Between(1, Value(int64_t{5}), Value(int64_t{15})).Eval(r));
}

TEST(PredicateTest, NullComparisonsAreFalse) {
  Row r{Value(int64_t{1}), Value::Null(), Value("a"), Value(1.0)};
  EXPECT_FALSE(Predicate::Eq(1, Value(int64_t{0})).Eval(r));
  EXPECT_FALSE(Predicate::Ne(1, Value(int64_t{0})).Eval(r));
  EXPECT_FALSE(Predicate::Lt(1, Value(int64_t{100})).Eval(r));
}

TEST(PredicateTest, ConjunctsFlattenNestedAnds) {
  auto p = Predicate::And(
      {Predicate::Eq(0, Value(int64_t{1})),
       Predicate::And({Predicate::Gt(1, Value(int64_t{2})),
                       Predicate::Lt(1, Value(int64_t{9}))})});
  EXPECT_EQ(p.Conjuncts().size(), 3u);
  EXPECT_EQ(Predicate::True().Conjuncts().size(), 0u);
}

TEST(PredicateTest, ReferencedColumnsDeduplicated) {
  auto p = Predicate::And({Predicate::Gt(1, Value(int64_t{0})),
                           Predicate::Lt(1, Value(int64_t{9})),
                           Predicate::Eq(3, Value(1.0))});
  const auto cols = p.ReferencedColumns();
  EXPECT_EQ(cols.size(), 2u);
}

TEST(PredicateTest, ToStringReadable) {
  Schema s = TestSchema();
  auto p = Predicate::And({Predicate::Ge(1, Value(int64_t{5})),
                           Predicate::Eq(2, Value("x"))});
  EXPECT_EQ(p.ToString(&s), "(v >= 5 AND cat = x)");
}

class ScanTest : public ::testing::Test {
 protected:
  ScanTest() : store_(1, TestSchema(), &mgr_, nullptr), table_(TestSchema()) {
    auto t = mgr_.Begin();
    for (int i = 0; i < 100; ++i) {
      const Row r = TRow(i, i % 10, i % 2 ? "odd" : "even", i * 1.5);
      store_.Insert(t.get(), r);
      rows_.push_back(r);
    }
    mgr_.Commit(t.get());
    // Column store gets the same rows in two groups.
    table_.AppendBatch({rows_.begin(), rows_.begin() + 50}, 1);
    table_.AppendBatch({rows_.begin() + 50, rows_.end()}, 2);
  }

  TransactionManager mgr_;
  MvccRowStore store_;
  ColumnTable table_;
  std::vector<Row> rows_;
};

TEST_F(ScanTest, RowScanWithPredicateAndProjection) {
  const auto out = ScanRowStore(store_, mgr_.CurrentSnapshot(),
                                Predicate::Eq(1, Value(int64_t{3})), {0, 3});
  EXPECT_EQ(out.size(), 10u);
  EXPECT_EQ(out[0].size(), 2u);
}

TEST_F(ScanTest, ColumnScanMatchesRowScan) {
  const auto pred = Predicate::And({Predicate::Ge(0, Value(int64_t{20})),
                                    Predicate::Eq(2, Value("even"))});
  auto row_out = ScanRowStore(store_, mgr_.CurrentSnapshot(), pred, {});
  auto col_out = ScanHtap(table_, nullptr, kMaxCSN - 1, pred, {});
  auto key_of = [](const Row& r) { return r.Get(0).AsInt64(); };
  std::sort(row_out.begin(), row_out.end(),
            [&](const Row& a, const Row& b) { return key_of(a) < key_of(b); });
  std::sort(col_out.begin(), col_out.end(),
            [&](const Row& a, const Row& b) { return key_of(a) < key_of(b); });
  EXPECT_EQ(row_out, col_out);
}

TEST_F(ScanTest, ZoneMapSkipsGroups) {
  ScanStats stats;
  // Keys 0..49 in group 0, 50..99 in group 1: id >= 80 skips group 0.
  const auto out = ScanHtap(table_, nullptr, kMaxCSN - 1,
                            Predicate::Ge(0, Value(int64_t{80})), {}, &stats);
  EXPECT_EQ(out.size(), 20u);
  EXPECT_EQ(stats.groups_total, 2u);
  EXPECT_EQ(stats.groups_skipped, 1u);
}

TEST_F(ScanTest, DeltaUnionOverridesMain) {
  InMemoryDeltaStore delta;
  DeltaEntry upd;
  upd.op = ChangeOp::kUpdate;
  upd.key = 10;
  upd.row = TRow(10, 777, "patched", 0.0);
  upd.csn = 50;
  delta.Append(upd);
  DeltaEntry del;
  del.op = ChangeOp::kDelete;
  del.key = 11;
  del.csn = 51;
  delta.Append(del);
  DeltaEntry ins;
  ins.op = ChangeOp::kInsert;
  ins.key = 1000;
  ins.row = TRow(1000, 1, "new", 9.9);
  ins.csn = 52;
  delta.Append(ins);

  ScanStats stats;
  const auto out = ScanHtap(table_, &delta, kMaxCSN - 1, Predicate::True(),
                            {}, &stats);
  EXPECT_EQ(out.size(), 100u);  // 100 - 1 delete + 1 insert
  EXPECT_EQ(stats.delta_rows_emitted, 2u);
  bool saw_patched = false, saw_11 = false;
  for (const Row& r : out) {
    if (r.Get(0).AsInt64() == 10) {
      EXPECT_EQ(r.Get(1).AsInt64(), 777);
      saw_patched = true;
    }
    if (r.Get(0).AsInt64() == 11) saw_11 = true;
  }
  EXPECT_TRUE(saw_patched);
  EXPECT_FALSE(saw_11);
}

TEST_F(ScanTest, DeltaSnapshotCutoff) {
  InMemoryDeltaStore delta;
  DeltaEntry del;
  del.op = ChangeOp::kDelete;
  del.key = 5;
  del.csn = 100;
  delta.Append(del);
  // Snapshot below the delete's CSN: row 5 still visible.
  const auto out = ScanHtap(table_, &delta, 99,
                            Predicate::Eq(0, Value(int64_t{5})), {});
  EXPECT_EQ(out.size(), 1u);
  const auto out2 = ScanHtap(table_, &delta, 100,
                             Predicate::Eq(0, Value(int64_t{5})), {});
  EXPECT_EQ(out2.size(), 0u);
}

TEST(HashJoinTest, InnerEquiJoin) {
  std::vector<Row> left = {Row{Value(int64_t{1}), Value("a")},
                           Row{Value(int64_t{2}), Value("b")},
                           Row{Value(int64_t{2}), Value("b2")}};
  std::vector<Row> right = {Row{Value(int64_t{2}), Value(10.0)},
                            Row{Value(int64_t{3}), Value(30.0)}};
  const auto out = HashJoin(left, right, 0, 0);
  ASSERT_EQ(out.size(), 2u);
  for (const Row& r : out) {
    EXPECT_EQ(r.size(), 4u);
    EXPECT_EQ(r.Get(0).AsInt64(), 2);
    EXPECT_DOUBLE_EQ(r.Get(3).AsDouble(), 10.0);
  }
}

TEST(HashJoinTest, NullKeysNeverMatch) {
  std::vector<Row> left = {Row{Value::Null(), Value("a")}};
  std::vector<Row> right = {Row{Value::Null(), Value(1.0)}};
  EXPECT_TRUE(HashJoin(left, right, 0, 0).empty());
}

TEST(HashAggregateTest, GlobalAggregates) {
  std::vector<Row> rows;
  for (int i = 1; i <= 10; ++i)
    rows.push_back(Row{Value(static_cast<int64_t>(i))});
  const auto out = HashAggregate(
      rows, {}, {AggSpec::Count("n"), AggSpec::Sum(0, "s"),
                 AggSpec::Min(0, "mn"), AggSpec::Max(0, "mx"),
                 AggSpec::Avg(0, "avg")});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].Get(0).AsInt64(), 10);
  EXPECT_DOUBLE_EQ(out[0].Get(1).AsDouble(), 55.0);
  EXPECT_EQ(out[0].Get(2).AsInt64(), 1);
  EXPECT_EQ(out[0].Get(3).AsInt64(), 10);
  EXPECT_DOUBLE_EQ(out[0].Get(4).AsDouble(), 5.5);
}

TEST(HashAggregateTest, GroupByWithNullsAndEmptyInput) {
  std::vector<Row> rows = {Row{Value("a"), Value(int64_t{1})},
                           Row{Value("a"), Value::Null()},
                           Row{Value("b"), Value(int64_t{5})}};
  auto out = HashAggregate(rows, {0},
                           {AggSpec::Count("n"), AggSpec::Sum(1, "s")});
  ASSERT_EQ(out.size(), 2u);
  SortLimit(&out, 0, false, 0);
  EXPECT_EQ(out[0].Get(0).AsString(), "a");
  EXPECT_EQ(out[0].Get(1).AsInt64(), 2);       // COUNT counts null rows too
  EXPECT_DOUBLE_EQ(out[0].Get(2).AsDouble(), 1.0);  // SUM skips nulls

  const auto empty = HashAggregate({}, {}, {AggSpec::Count("n"),
                                            AggSpec::Sum(0, "s")});
  ASSERT_EQ(empty.size(), 1u);
  EXPECT_EQ(empty[0].Get(0).AsInt64(), 0);
  EXPECT_TRUE(empty[0].Get(1).is_null());
  EXPECT_TRUE(HashAggregate({}, {0}, {AggSpec::Count("n")}).empty());
}

TEST(SortLimitTest, OrdersAndTruncates) {
  std::vector<Row> rows;
  for (int i = 0; i < 10; ++i)
    rows.push_back(Row{Value(static_cast<int64_t>((i * 7) % 10))});
  SortLimit(&rows, 0, /*desc=*/true, /*limit=*/3);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].Get(0).AsInt64(), 9);
  EXPECT_EQ(rows[2].Get(0).AsInt64(), 7);
}

TEST(ProjectTest, ReordersColumns) {
  std::vector<Row> rows = {Row{Value(int64_t{1}), Value("x"), Value(2.0)}};
  const auto out = Project(rows, {2, 0});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].Get(0).AsDouble(), 2.0);
  EXPECT_EQ(out[0].Get(1).AsInt64(), 1);
}

}  // namespace
}  // namespace htap
