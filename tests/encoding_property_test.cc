// Property tests for the encoding layer: encode∘decode identity across
// every encoding x value type x null pattern x size shape, the
// bit_width == 0 FOR edge (empty and all-equal segments), and the
// MemoryBytes audit (null bitmap + string heap payload included).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "columnar/encoding.h"
#include "common/random.h"

namespace htap {
namespace {

enum class NullPattern { kNone, kSparse, kDense, kAll };
enum class ValueShape { kAllEqual, kNarrow, kRuns, kRandom };

const char* NullPatternName(NullPattern p) {
  switch (p) {
    case NullPattern::kNone: return "none";
    case NullPattern::kSparse: return "sparse";
    case NullPattern::kDense: return "dense";
    case NullPattern::kAll: return "all";
  }
  return "?";
}

ColumnVector MakeColumn(Type type, size_t n, ValueShape shape,
                        NullPattern nulls, uint64_t seed) {
  Random rng(seed);
  ColumnVector v(type);
  for (size_t i = 0; i < n; ++i) {
    bool is_null = false;
    switch (nulls) {
      case NullPattern::kNone: break;
      case NullPattern::kSparse: is_null = i % 7 == 3; break;
      case NullPattern::kDense: is_null = i % 3 != 0; break;
      case NullPattern::kAll: is_null = true; break;
    }
    if (is_null) {
      v.AppendNull();
      continue;
    }
    uint64_t x = 0;
    switch (shape) {
      case ValueShape::kAllEqual: x = 42; break;
      case ValueShape::kNarrow: x = rng.Uniform(16); break;
      case ValueShape::kRuns: x = i / 50; break;
      case ValueShape::kRandom: x = rng.Uniform(1 << 20); break;
    }
    switch (type) {
      case Type::kInt64:
        v.AppendInt64(static_cast<int64_t>(x) - 8);
        break;
      case Type::kDouble:
        v.AppendDouble(static_cast<double>(x) * 0.5 - 3.25);
        break;
      case Type::kString:
        v.AppendString("k" + std::to_string(x));
        break;
    }
  }
  return v;
}

struct SizeShape {
  size_t n;
  ValueShape shape;
  NullPattern nulls;
};

// The core property: for every encoding, Decode(Encode(v)) == v slot for
// slot (nulls included), and EncodedGet agrees without materializing.
// Encodings that cannot represent the input (FOR on non-int, dictionary on
// double) fall back to PLAIN inside Encode, so the identity must hold for
// every (encoding, type) pair regardless.
TEST(EncodingPropertyTest, EncodeDecodeIdentityEverywhere) {
  const std::vector<SizeShape> shapes = {
      {0, ValueShape::kRandom, NullPattern::kNone},
      {1, ValueShape::kAllEqual, NullPattern::kNone},
      {1, ValueShape::kAllEqual, NullPattern::kAll},
      {2, ValueShape::kRandom, NullPattern::kSparse},
      {64, ValueShape::kAllEqual, NullPattern::kNone},
      {64, ValueShape::kRuns, NullPattern::kSparse},
      {100, ValueShape::kNarrow, NullPattern::kDense},
      {100, ValueShape::kRandom, NullPattern::kAll},
      {1000, ValueShape::kRandom, NullPattern::kSparse},
      {1000, ValueShape::kRuns, NullPattern::kNone},
  };
  const EncodingType encs[] = {EncodingType::kPlain, EncodingType::kDictionary,
                               EncodingType::kRle, EncodingType::kForBitPack};
  const Type types[] = {Type::kInt64, Type::kDouble, Type::kString};
  uint64_t seed = 0;
  for (Type t : types) {
    for (const SizeShape& s : shapes) {
      for (EncodingType e : encs) {
        SCOPED_TRACE(std::string(EncodingName(e)) + " n=" +
                     std::to_string(s.n) + " nulls=" +
                     NullPatternName(s.nulls));
        const ColumnVector v = MakeColumn(t, s.n, s.shape, s.nulls, ++seed);
        const EncodedColumn enc = Encode(v, e);
        EXPECT_EQ(enc.num_values, v.size());
        const ColumnVector out = Decode(enc);
        ASSERT_EQ(out.size(), v.size());
        for (size_t i = 0; i < v.size(); ++i) {
          ASSERT_EQ(out.IsNull(i), v.IsNull(i)) << "slot " << i;
          ASSERT_EQ(out.GetValue(i), v.GetValue(i)) << "slot " << i;
          ASSERT_EQ(EncodedGet(enc, i), v.GetValue(i)) << "slot " << i;
        }
      }
    }
  }
}

TEST(EncodingPropertyTest, EmptySegmentsRoundTripEveryEncoding) {
  for (EncodingType e :
       {EncodingType::kPlain, EncodingType::kDictionary, EncodingType::kRle,
        EncodingType::kForBitPack}) {
    for (Type t : {Type::kInt64, Type::kDouble, Type::kString}) {
      const EncodedColumn enc = Encode(ColumnVector(t), e);
      EXPECT_EQ(enc.num_values, 0u) << EncodingName(e);
      EXPECT_EQ(Decode(enc).size(), 0u) << EncodingName(e);
    }
  }
}

// All-equal values bit-pack with bit_width == 0: the payload is the frame
// base alone, zero packed words, and both unpack paths still read through.
TEST(EncodingPropertyTest, ForBitPackAllEqualUsesZeroBitWidth) {
  ColumnVector v(Type::kInt64);
  for (int i = 0; i < 128; ++i) v.AppendInt64(77);
  const EncodedColumn enc = Encode(v, EncodingType::kForBitPack);
  ASSERT_EQ(enc.encoding, EncodingType::kForBitPack);
  EXPECT_EQ(enc.bit_width, 0);
  EXPECT_TRUE(enc.packed.empty());
  ASSERT_EQ(enc.ints.size(), 1u);  // just the frame base
  for (size_t i = 0; i < v.size(); ++i) {
    EXPECT_EQ(ForUnpackAt(enc, i), 77);
    EXPECT_EQ(EncodedGet(enc, i).AsInt64(), 77);
  }
  const ColumnVector out = Decode(enc);
  ASSERT_EQ(out.size(), 128u);
  EXPECT_EQ(out.GetInt64(99), 77);
}

// MemoryBytes must see through to the real footprint: the string heap
// payload (not just vector headers) and the null bitmap.
TEST(EncodingPropertyTest, MemoryBytesCountsStringHeapAndNullBitmap) {
  ColumnVector shorts(Type::kString), longs(Type::kString);
  for (int i = 0; i < 256; ++i) {
    shorts.AppendString("s");
    longs.AppendString(std::string(100, 'x') + std::to_string(i));
  }
  for (EncodingType e :
       {EncodingType::kPlain, EncodingType::kDictionary, EncodingType::kRle}) {
    // 256 payloads x ~100 bytes dwarf any header slack; if MemoryBytes
    // ignored the heap payload the two would be within a few KiB.
    EXPECT_GT(Encode(longs, e).MemoryBytes(),
              Encode(shorts, e).MemoryBytes() + 256 * 50)
        << EncodingName(e);
  }

  ColumnVector with_nulls(Type::kInt64);
  for (int i = 0; i < 10000; ++i) {
    if (i % 2 == 0)
      with_nulls.AppendInt64(1);
    else
      with_nulls.AppendNull();
  }
  const EncodedColumn enc = Encode(with_nulls, EncodingType::kRle);
  EXPECT_GT(enc.nulls.MemoryBytes(), 0u);
  EXPECT_GE(enc.MemoryBytes(), enc.nulls.MemoryBytes());
}

}  // namespace
}  // namespace htap
